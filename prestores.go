// Package prestores is a library-scale reproduction of "Pre-Stores:
// Proactive Software-guided Movement of Data Down the Memory Hierarchy"
// (Wu, Lepers, Zwaenepoel — EuroSys 2025).
//
// A pre-store is the converse of a pre-fetch: an instruction that
// asynchronously moves data *down* the memory hierarchy. Two operations
// exist: Demote pushes data out of private CPU buffers and upper cache
// levels so it becomes globally visible early (cldemote / dc cvau), and
// Clean writes dirty data back to memory while keeping it cached
// (clwb). A third treatment, skipping the cache with non-temporal
// stores, is expressed by writing through Core.WriteNT.
//
// Because the paper's mechanisms live below the ISA (store buffers,
// replacement policies, device write granularities), the library ships
// a deterministic software-timed machine model: byte-accurate simulated
// memory, set-associative caches with realistic replacement, a
// coherence directory that can live on the memory device, and device
// models for DRAM, Optane-style persistent memory (256 B internal
// granularity) and CXL/FPGA-attached memory. Two machine presets mirror
// the paper's testbeds:
//
//	m := prestores.NewMachineA()     // x86 + Optane PMEM
//	m := prestores.NewMachineBFast() // ARM + low-latency FPGA memory
//	m := prestores.NewMachineBSlow() // ARM + high-latency FPGA memory
//
// A minimal use:
//
//	m := prestores.NewMachineA()
//	cpu := m.Core(0)
//	buf := m.Alloc(prestores.WindowPMEM, "data", 1<<20)
//	cpu.Write(buf.Base, payload)
//	cpu.Prestore(buf.Base, uint64(len(payload)), prestores.Clean)
//
// The DirtBuster tool (Analyze) discovers where pre-stores help: it
// samples a workload to find its write-intensive functions, traces them
// to detect sequential writes and writes-before-fences, computes
// re-read/re-write distances, and recommends demote, clean, skip, or
// nothing per function.
package prestores

import (
	"context"
	"fmt"
	"io"

	"prestores/internal/bench"
	"prestores/internal/dirtbuster"
	"prestores/internal/memdev"
	"prestores/internal/memspace"
	"prestores/internal/sim"
)

// Core simulator surface. These are aliases so the methods documented
// on the internal types are directly available to users of this
// package.
type (
	// Machine is a complete simulated system: cores, caches, coherence
	// directory, write-back queue, memory devices, and the
	// byte-addressable backing store.
	Machine = sim.Machine
	// Core is one simulated CPU core: loads, stores, non-temporal
	// stores, fences, atomics and pre-stores.
	Core = sim.Core
	// MachineConfig describes a machine; use NewMachine for custom
	// topologies.
	MachineConfig = sim.Config
	// MachineBConfig parameterizes Machine B's FPGA memory: unloaded
	// access latency in CPU cycles and link bandwidth in bytes per
	// second. Pass it to NewMachineB, or use MachineBFastConfig /
	// MachineBSlowConfig for the paper's two tunings as full
	// MachineConfig values.
	MachineBConfig = sim.MachineBConfig
	// Region is an allocated range of simulated physical memory.
	Region = memspace.Region
	// PrestoreOp selects the pre-store operation.
	PrestoreOp = sim.PrestoreOp
	// Device is a memory device model (DRAM, PMEM, remote).
	Device = memdev.Device
	// Event is one simulated operation, delivered to instrumentation
	// hooks (Machine.SetHook).
	Event = sim.Event
	// OpKind identifies a simulated operation in an Event.
	OpKind = sim.OpKind
)

// Pre-store operations (paper §2).
const (
	// Demote moves data down the cache hierarchy and publishes pending
	// private writes — cldemote on x86, dc cvau on ARM.
	Demote = sim.Demote
	// Clean writes dirty data back to memory, keeping it cached — clwb.
	Clean = sim.Clean
)

// Standard memory-window names used by the machine presets.
const (
	WindowDRAM   = sim.WindowDRAM
	WindowPMEM   = sim.WindowPMEM
	WindowRemote = sim.WindowRemote
)

// NewMachineA returns the paper's Machine A: a 2.1 GHz x86 socket with
// eager (TSO) store-buffer draining and Optane persistent memory whose
// internal write granularity (256 B) exceeds the CPU line size (64 B).
// Pre-stores help here by restoring the sequentiality of write-backs.
func NewMachineA() *Machine { return sim.MachineA() }

// NewMachineBFast returns the paper's Machine B with the low-latency
// FPGA configuration (60-cycle access, 10 GB/s): an ARM machine with a
// weak memory model whose coherence directory lives on the device.
// Pre-stores help here by publishing writes before fences need them.
func NewMachineBFast() *Machine { return sim.MachineBFast() }

// NewMachineBSlow returns Machine B with the high-latency FPGA
// configuration (200-cycle access, 1.5 GB/s).
func NewMachineBSlow() *Machine { return sim.MachineBSlow() }

// NewMachine builds a machine from a custom configuration. See
// MachineAConfig / MachineBFastConfig / MachineBSlowConfig below for
// starting points.
func NewMachine(cfg MachineConfig) *Machine { return sim.NewMachine(cfg) }

// NewMachineB builds Machine B with a custom FPGA tuning: the ARM
// testbed of NewMachineBFast / NewMachineBSlow with the remote memory's
// latency and bandwidth set from bc.
func NewMachineB(bc MachineBConfig) *Machine { return sim.MachineB(bc) }

// MachineAConfig returns Machine A's configuration for customization.
func MachineAConfig() MachineConfig { return sim.ConfigA() }

// MachineBFastConfig returns Machine B's low-latency FPGA configuration
// (60-cycle access, 10 GB/s) for customization.
func MachineBFastConfig() MachineConfig { return sim.ConfigBFast() }

// MachineBSlowConfig returns Machine B's high-latency FPGA
// configuration (200-cycle access, 1.5 GB/s) for customization.
func MachineBSlowConfig() MachineConfig { return sim.ConfigBSlow() }

// MachineBConfigFor returns Machine B's configuration for an arbitrary
// FPGA tuning, for customization beyond the two paper presets.
func MachineBConfigFor(bc MachineBConfig) MachineConfig { return sim.ConfigB(bc) }

// Prestore issues a pre-store over [addr, addr+size) on cpu. It is
// equivalent to cpu.Prestore and exists to mirror the paper's free
// function prestore(location, size, op).
func Prestore(cpu *Core, addr, size uint64, op PrestoreOp) {
	cpu.Prestore(addr, size, op)
}

// DirtBuster surface.
type (
	// Workload is an application DirtBuster can analyze.
	Workload = dirtbuster.Workload
	// AnalysisConfig tunes DirtBuster's thresholds; the zero value uses
	// the defaults from the paper's description.
	AnalysisConfig = dirtbuster.Config
	// Report is DirtBuster's output: write-intensity, per-function
	// sequentiality contexts, fence distances, and pre-store
	// recommendations. Render prints it in the paper's format.
	Report = dirtbuster.Report
)

// Analyze runs the DirtBuster pipeline (sampling, instrumentation,
// distance analysis, recommendation) on a workload.
func Analyze(w Workload, cfg AnalysisConfig) *Report {
	return dirtbuster.Analyze(w, cfg)
}

// Experiment-harness surface. Every table and figure of the paper is a
// registered experiment; this is the same registry cmd/prestore-bench
// sweeps and the prestored daemon serves over HTTP.
type (
	// Experiment is one registered paper experiment (a table or figure).
	Experiment = bench.Experiment
	// ExperimentResult records one experiment execution: wall time,
	// simulated-op throughput, the full captured output, and the
	// failure (panic, timeout or cancellation) if it did not complete.
	ExperimentResult = bench.Result
)

// Experiments returns the registered experiments in ID order.
func Experiments() []Experiment { return bench.All() }

// LookupExperiment finds a registered experiment by ID.
func LookupExperiment(id string) (Experiment, bool) { return bench.Lookup(id) }

// RunExperiment executes one registered experiment under the guarded
// harness — panic containment and cooperative cancellation — streaming
// its human-readable output to w as it is produced (w may be nil).
// Quick shrinks sweeps to smoke size. Cancelling ctx stops the
// experiment at its next iteration boundary; that and any panic are
// reported in the result's Err field, not the returned error, which is
// reserved for the first write error w reported. The complete output
// is always available in the result regardless of w.
func RunExperiment(ctx context.Context, w io.Writer, id string, quick bool) (ExperimentResult, error) {
	e, ok := bench.Lookup(id)
	if !ok {
		return ExperimentResult{}, fmt.Errorf("prestores: unknown experiment %q", id)
	}
	return bench.RunOneGuarded(ctx, w, e, bench.RunnerConfig{Quick: quick})
}
