package prestores_test

import (
	"fmt"

	"prestores"
)

// ExamplePrestore shows the basic pre-store flow: write data to
// simulated persistent memory, clean it, and observe that the device
// received it without write amplification.
func ExamplePrestore() {
	m := prestores.NewMachineA()
	cpu := m.Core(0)
	buf := m.Alloc(prestores.WindowPMEM, "records", 1<<16)

	payload := make([]byte, 1024)
	for off := uint64(0); off < buf.Size; off += 1024 {
		cpu.Write(buf.Base+off, payload)
		prestores.Prestore(cpu, buf.Base+off, 1024, prestores.Clean)
	}
	m.Drain()

	st := m.Device(prestores.WindowPMEM).Stats()
	fmt.Printf("received %d KiB, media wrote %d KiB, amplification %.2fx\n",
		st.BytesReceived/1024, st.MediaBytesWritten/1024, st.WriteAmplification())
	// Output:
	// received 64 KiB, media wrote 64 KiB, amplification 1.00x
}

// ExampleCore_Prestore_demote shows demotion: a dirty line leaves the
// private cache for the shared level, where other cores can reach it
// without a coherence round trip.
func ExampleCore_Prestore_demote() {
	m := prestores.NewMachineBFast()
	producer := m.Core(0)
	addr := m.Alloc(prestores.WindowRemote, "msg", 128).Base

	producer.Write(addr, make([]byte, 128))
	producer.Fence()
	fmt.Println("in producer L1:", producer.L1().Contains(addr))

	producer.Prestore(addr, 128, prestores.Demote)
	fmt.Println("after demote, in producer L1:", producer.L1().Contains(addr))
	fmt.Println("after demote, in shared LLC :", m.LLC().Contains(addr))
	// Output:
	// in producer L1: true
	// after demote, in producer L1: false
	// after demote, in shared LLC : true
}

// ExampleAnalyze runs DirtBuster on a workload that streams large
// buffers it never revisits — the textbook skip recommendation.
func ExampleAnalyze() {
	report := prestores.Analyze(prestores.Workload{
		Name:       "streamer",
		NewMachine: prestores.NewMachineA,
		Run: func(m *prestores.Machine) {
			c := m.Core(0)
			out := m.Alloc(prestores.WindowPMEM, "out", 8<<20)
			chunk := make([]byte, 4096)
			c.PushFunc("streamer.flush")
			for off := uint64(0); off+4096 <= out.Size; off += 4096 {
				c.Write(out.Base+off, chunk)
			}
			c.PopFunc()
		},
	}, prestores.AnalysisConfig{})

	fmt.Println("write-intensive:", report.WriteIntensive)
	fmt.Println("advice:", report.Advice("streamer.flush"))
	// Output:
	// write-intensive: true
	// advice: skip
}
