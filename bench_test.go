package prestores_test

import (
	"context"
	"io"
	"strings"
	"testing"

	"prestores/internal/bench"
)

// TestParallelRunnerMatchesSerial runs a fast cross-section of real
// experiments through the worker pool and checks the streamed output is
// byte-identical to the serial rendering. Run under -race this also
// proves the experiments share no mutable state: each builds its own
// private sim.Machine, so only the registry and writer plumbing are
// shared.
func TestParallelRunnerMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds")
	}
	var exps []bench.Experiment
	for _, id := range []string{"listing3", "skipvsclean", "ablate-dir", "x9"} {
		e, ok := bench.Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	var serial strings.Builder
	for _, e := range exps {
		bench.RunOne(context.Background(), &serial, e, true)
	}
	var par strings.Builder
	results, err := bench.Run(context.Background(), &par, exps, bench.RunnerConfig{Parallel: 4, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if par.String() != serial.String() {
		t.Fatalf("parallel output differs from serial:\n--- parallel ---\n%s\n--- serial ---\n%s",
			par.String(), serial.String())
	}
	for i, r := range results {
		if r.ID != exps[i].ID || r.Failed() || r.Output == "" || r.WallTime <= 0 {
			t.Fatalf("result %d malformed: %+v", i, r)
		}
	}
}

// benchExperiment runs a registered experiment once per benchmark
// iteration in quick mode. Each experiment regenerates one of the
// paper's tables or figures; run `go run ./cmd/prestore-bench -all` for
// the full-size sweeps and readable output.
func benchExperiment(b *testing.B, id string) {
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Run(context.Background(), io.Discard, true)
	}
}

// Table 1: device granularities.
func BenchmarkTable1DeviceGranularities(b *testing.B) { benchExperiment(b, "table1") }

// Table 2: DirtBuster classification of every evaluated application.
func BenchmarkTable2DirtBusterClassification(b *testing.B) { benchExperiment(b, "table2") }

// Figure 3: Listing 1 speedup and write amplification on Machine A.
func BenchmarkFig3Listing1CleanSpeedup(b *testing.B) { benchExperiment(b, "fig3") }

// Section 5, Listing 3: cleaning a constantly rewritten line.
func BenchmarkListing3HotLineCleanSlowdown(b *testing.B) { benchExperiment(b, "listing3") }

// Section 5: skip-vs-clean crossover on the re-read.
func BenchmarkSkipVsCleanCrossover(b *testing.B) { benchExperiment(b, "skipvsclean") }

// Figure 5: demote pre-store vs reads-before-fence on Machine B.
func BenchmarkFig5DemoteReadsBeforeFence(b *testing.B) { benchExperiment(b, "fig5") }

// Figure 7: TensorFlow training proxy, clean vs skip.
func BenchmarkFig7TensorTrainCleanVsSkip(b *testing.B) { benchExperiment(b, "fig7") }

// Figure 8: TensorFlow write amplification.
func BenchmarkFig8TensorWriteAmplification(b *testing.B) { benchExperiment(b, "fig8") }

// Figure 9: NAS kernels normalized runtime.
func BenchmarkFig9NASNormalizedRuntime(b *testing.B) { benchExperiment(b, "fig9") }

// Figure 10: CLHT YCSB-A throughput vs value size on Machine A.
func BenchmarkFig10CLHTValueSweep(b *testing.B) { benchExperiment(b, "fig10") }

// Figure 11: Masstree YCSB-A throughput vs value size on Machine A.
func BenchmarkFig11MasstreeValueSweep(b *testing.B) { benchExperiment(b, "fig11") }

// Figure 12: CLHT write amplification vs value size.
func BenchmarkFig12CLHTWriteAmplification(b *testing.B) { benchExperiment(b, "fig12") }

// Figure 13: CLHT on Machine B fast/slow.
func BenchmarkFig13CLHTMachineB(b *testing.B) { benchExperiment(b, "fig13") }

// Figure 14: Masstree on Machine B fast/slow.
func BenchmarkFig14MasstreeMachineB(b *testing.B) { benchExperiment(b, "fig14") }

// Section 7.3.2: X9 message-passing latency.
func BenchmarkX9MessageLatency(b *testing.B) { benchExperiment(b, "x9") }

// Section 7.4: pre-store overheads when misapplied.
func BenchmarkOverheadMisappliedPrestores(b *testing.B) { benchExperiment(b, "overhead") }

// Ablations (DESIGN.md §5).
func BenchmarkAblateDrainMode(b *testing.B)  { benchExperiment(b, "ablate-drain") }
func BenchmarkAblateLLCPolicy(b *testing.B)  { benchExperiment(b, "ablate-llc") }
func BenchmarkAblateDirectory(b *testing.B)  { benchExperiment(b, "ablate-dir") }
func BenchmarkAblatePMEMBuffer(b *testing.B) { benchExperiment(b, "ablate-pmembuf") }

// Section 7.2.3: pre-store gains across YCSB mixes.
func BenchmarkYCSBMixes(b *testing.B) { benchExperiment(b, "ycsb-mixes") }

// Extension: Machine C (CXL SSD) amplification.
func BenchmarkExtCXLSSD(b *testing.B) { benchExperiment(b, "ext-cxlssd") }

// Section 7.2.3: thread scaling of the CLHT experiment.
func BenchmarkKVThreadScaling(b *testing.B) { benchExperiment(b, "kv-threads") }

// Extensions: prefetcher orthogonality and sequential-writer logs.
func BenchmarkExtPrefetchOrthogonal(b *testing.B) { benchExperiment(b, "ext-prefetch") }
func BenchmarkExtSequentialLog(b *testing.B)      { benchExperiment(b, "ext-seqlog") }
