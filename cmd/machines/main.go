// Command machines prints the simulated machine configurations and the
// device-granularity table (paper Table 1).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"prestores/internal/bench"
	"prestores/internal/obs"
	"prestores/internal/sim"
	"prestores/internal/units"
)

func main() {
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "machines")
		return
	}
	if e, ok := bench.Lookup("table1"); ok {
		if err := bench.RunOne(context.Background(), os.Stdout, e, true); err != nil {
			fmt.Fprintln(os.Stderr, "machines:", err)
			os.Exit(1)
		}
	}
	fmt.Println()
	for _, m := range []*sim.Machine{sim.MachineA(), sim.MachineBFast(), sim.MachineBSlow(), sim.MachineC()} {
		cfg := m.Config()
		fmt.Printf("%s\n", m.Name())
		fmt.Printf("  cores=%d  line=%dB  clock=%.1fGHz  drain=%s  dir-on-device=%v  clean-to-POU=%v\n",
			cfg.Cores, cfg.LineSize, float64(cfg.Clock)/1e9, cfg.Drain, cfg.DirOnDevice, cfg.CleanToPOU)
		fmt.Printf("  L1 %s %d-way %s", units.Bytes(cfg.L1.Size), cfg.L1.Ways, cfg.L1.Policy)
		if cfg.L2.Size > 0 {
			fmt.Printf(" | L2 %s %d-way %s", units.Bytes(cfg.L2.Size), cfg.L2.Ways, cfg.L2.Policy)
		}
		fmt.Printf(" | LLC %s %d-way %s\n", units.Bytes(cfg.LLC.Size), cfg.LLC.Ways, cfg.LLC.Policy)
		for _, w := range cfg.Windows {
			d := w.Device
			fmt.Printf("  window %-6s %-8s granularity=%-5s read-lat=%d cyc\n",
				w.Name, d.Kind(), units.Bytes(d.InternalGranularity()), d.ReadLatency())
		}
		fmt.Println()
	}
}
