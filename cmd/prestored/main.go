// Command prestored serves the prestores stack as a daemon: paper
// experiments, DirtBuster analyses and trace analyses become HTTP jobs
// with progress streaming, a content-addressed result cache, and
// Prometheus metrics.
//
// Usage:
//
//	prestored                          # listen on :8344
//	prestored -addr :9000 -workers 4   # custom listen address and pool
//	prestored -queue 16 -job-timeout 10m
//	prestored -log-level debug         # structured logs (slog) to stderr
//	prestored -pprof                   # expose /debug/pprof on the same mux
//
// Cluster mode: a coordinator exposes the identical HTTP surface but
// runs no simulations itself — it routes each submit to a worker shard
// by consistent hashing of the request's content address (so the
// shards' result caches form a distributed cache), proxies status,
// stream, artifact and cancel calls to the owning shard, and requeues
// jobs to the next ring position when a shard dies. Clients, including
// prestore-bench -server, work against either unchanged:
//
//	prestored -addr :8345 &            # worker shard 1
//	prestored -addr :8346 &            # worker shard 2
//	prestored -addr :8344 -coordinator \
//	          -shards http://127.0.0.1:8345,http://127.0.0.1:8346
//
// Quick start against a running daemon:
//
//	curl -s localhost:8344/v1/experiments                      # registry
//	curl -s -X POST localhost:8344/v1/experiments \
//	     -d '{"id":"fig3","quick":true}'                       # submit
//	curl -s localhost:8344/v1/jobs/job-1                       # poll
//	curl -sN -X POST 'localhost:8344/v1/experiments?stream=1' \
//	     -d '{"id":"fig3","quick":true}'                       # stream
//	curl -s localhost:8344/metrics                             # scrape
//
// Autotuning: POST /v1/autotune runs a closed-loop search for the best
// pre-store plan over a single-point scenario spec (per-iteration
// NDJSON progress with ?stream=1; trajectory and winner artifacts at
// /v1/jobs/{id}/trajectory and .../winner). POST /v1/eval evaluates one
// single-point spec to raw metrics — the autotuner's measurement
// primitive, which a coordinator routes to its shards so the cluster
// evaluates each search generation in parallel (the search itself runs
// on the coordinator's embedded autotune host). The same request with
// the same seed reproduces the identical trajectory byte for byte,
// standalone or clustered.
//
// The first SIGINT/SIGTERM drains gracefully: the listener stops, new
// submits get 503, queued and running jobs complete (bounded by
// -drain-timeout). A second signal cancels the remaining jobs
// cooperatively and exits as soon as they stop.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prestores/internal/obs"
	"prestores/internal/server"
	"prestores/internal/server/cluster"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	workers := flag.Int("workers", 0, "job worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued-job bound; a full queue rejects submits with 429 (0 = default 64)")
	jobTimeout := flag.Duration("job-timeout", 15*time.Minute, "per-job wall-clock timeout (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute,
		"graceful-shutdown bound; jobs still running at the deadline are cancelled")
	checkpointBytes := flag.Int64("checkpoint-bytes", 0,
		"in-memory warm-state checkpoint cache bound shared by all jobs (0 = 1 GiB, negative disables)")
	checkpointDir := flag.String("checkpoint-dir", "",
		"warm-state checkpoint disk tier; checkpoints survive restarts (empty = memory only)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof on the listen address")
	coordinator := flag.Bool("coordinator", false,
		"run as a cluster coordinator routing jobs to -shards instead of simulating locally")
	shards := flag.String("shards", "",
		"comma-separated worker base URLs for -coordinator mode (e.g. http://w1:8344,http://w2:8344)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second,
		"coordinator health-probe period for worker shards")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "prestored")
		return
	}

	var level slog.Level
	switch strings.ToLower(*logLevel) {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		slog.New(slog.NewTextHandler(os.Stderr, nil)).
			Error("invalid -log-level (want debug, info, warn or error)", "got", *logLevel)
		os.Exit(2)
	}
	// Every log line whose context carries a span gets trace_id/span_id
	// attributes — grep one trace ID to follow a request end to end.
	log := slog.New(obs.NewLogHandler(
		slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))

	// The process-wide flight recorder: always on, bounded, lock-free.
	// Dumped via GET /v1/debug/flightrecorder, on a forced shutdown, and
	// on a main-goroutine panic.
	flight := obs.NewFlightRecorder(0)
	defer flight.DumpOnPanic(os.Stderr)

	// Both modes expose the same HTTP surface and the same
	// listen/drain lifecycle; only what sits behind the mux differs.
	var handler http.Handler
	var shutdown func(context.Context) error
	if *coordinator {
		if *shards == "" {
			log.Error("-coordinator requires -shards (comma-separated worker base URLs)")
			os.Exit(2)
		}
		var list []string
		for _, s := range strings.Split(*shards, ",") {
			if s = strings.TrimSpace(s); s != "" {
				list = append(list, s)
			}
		}
		coord, err := cluster.New(cluster.Config{
			Shards:        list,
			ProbeInterval: *probeInterval,
			Logger:        log,
			Instance:      *addr,
			Flight:        flight,
		})
		if err != nil {
			log.Error("coordinator startup failed", "err", err)
			os.Exit(2)
		}
		log.Info("coordinator mode", "shards", list)
		handler = coord.Handler()
		shutdown = coord.Shutdown
	} else {
		srv := server.New(server.Config{
			Workers:         *workers,
			QueueDepth:      *queue,
			JobTimeout:      *jobTimeout,
			CheckpointBytes: *checkpointBytes,
			CheckpointDir:   *checkpointDir,
			Logger:          log,
			EnablePprof:     *pprofFlag,
			Instance:        *addr,
			Flight:          flight,
		})
		handler = srv.Handler()
		shutdown = srv.Shutdown
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "pprof", *pprofFlag)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Info("draining (second signal forces)", "signal", sig.String())
	}

	// Stop accepting connections, then drain jobs. A second signal
	// collapses the drain window to an immediate cooperative cancel.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	go func() {
		<-sigc
		log.Warn("forcing shutdown")
		// A forced shutdown is exactly when the recent past matters:
		// dump the flight recorder before the jobs are cancelled.
		flight.Record("shutdown.forced", "", "", "second signal")
		flight.WriteText(os.Stderr)
		cancelDrain()
	}()

	lctx, cancelListen := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelListen()
	if err := hs.Shutdown(lctx); err != nil {
		hs.Close()
	}
	if err := shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Error("drain incomplete", "err", err)
		os.Exit(1)
	}
	log.Info("shutdown complete")
}
