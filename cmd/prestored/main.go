// Command prestored serves the prestores stack as a daemon: paper
// experiments, DirtBuster analyses and trace analyses become HTTP jobs
// with progress streaming, a content-addressed result cache, and
// Prometheus metrics.
//
// Usage:
//
//	prestored                          # listen on :8344
//	prestored -addr :9000 -workers 4   # custom listen address and pool
//	prestored -queue 16 -job-timeout 10m
//	prestored -log-level debug         # structured logs (slog) to stderr
//	prestored -pprof                   # expose /debug/pprof on the same mux
//
// Quick start against a running daemon:
//
//	curl -s localhost:8344/v1/experiments                      # registry
//	curl -s -X POST localhost:8344/v1/experiments \
//	     -d '{"id":"fig3","quick":true}'                       # submit
//	curl -s localhost:8344/v1/jobs/job-1                       # poll
//	curl -sN -X POST 'localhost:8344/v1/experiments?stream=1' \
//	     -d '{"id":"fig3","quick":true}'                       # stream
//	curl -s localhost:8344/metrics                             # scrape
//
// The first SIGINT/SIGTERM drains gracefully: the listener stops, new
// submits get 503, queued and running jobs complete (bounded by
// -drain-timeout). A second signal cancels the remaining jobs
// cooperatively and exits as soon as they stop.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prestores/internal/server"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	workers := flag.Int("workers", 0, "job worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued-job bound; a full queue rejects submits with 429 (0 = default 64)")
	jobTimeout := flag.Duration("job-timeout", 15*time.Minute, "per-job wall-clock timeout (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute,
		"graceful-shutdown bound; jobs still running at the deadline are cancelled")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof on the listen address")
	flag.Parse()

	var level slog.Level
	switch strings.ToLower(*logLevel) {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		slog.New(slog.NewTextHandler(os.Stderr, nil)).
			Error("invalid -log-level (want debug, info, warn or error)", "got", *logLevel)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv := server.New(server.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		JobTimeout:  *jobTimeout,
		Logger:      log,
		EnablePprof: *pprofFlag,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "pprof", *pprofFlag)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Info("draining (second signal forces)", "signal", sig.String())
	}

	// Stop accepting connections, then drain jobs. A second signal
	// collapses the drain window to an immediate cooperative cancel.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	go func() {
		<-sigc
		log.Warn("forcing shutdown")
		cancelDrain()
	}()

	lctx, cancelListen := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelListen()
	if err := hs.Shutdown(lctx); err != nil {
		hs.Close()
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Error("drain incomplete", "err", err)
		os.Exit(1)
	}
	log.Info("shutdown complete")
}
