// Command prestore-trace records a workload's full operation trace to a
// file and analyzes recordings offline — DirtBuster's intended usage as
// an optimization pass decoupled from the profiled run (paper §6.1).
//
// Recording streams chunks to disk as the workload runs (v2 chunked
// format), so peak memory stays flat no matter how long the trace is;
// analysis streams the chunks back in two bounded-memory passes.
// Recordings can also be shipped to a prestored daemon (or cluster
// coordinator) for remote sharded analysis.
//
// Usage:
//
//	prestore-trace -record tf.trace -workload tensorflow
//	prestore-trace -analyze tf.trace -line 64
//	prestore-trace -analyze tf.trace -pmcheck -pmbase 0x10000000000
//	prestore-trace -upload tf.trace -server http://localhost:8344
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"prestores/internal/bench"
	"prestores/internal/dirtbuster"
	"prestores/internal/obs"
	"prestores/internal/pmcheck"
	"prestores/internal/trace"
)

func main() {
	record := flag.String("record", "", "record the workload's trace to this file")
	analyze := flag.String("analyze", "", "analyze a recorded trace file")
	upload := flag.String("upload", "", "upload a recorded trace to -server and analyze it there")
	serverURL := flag.String("server", "", "prestored daemon or coordinator base URL for -upload")
	workload := flag.String("workload", "", "workload to record (see prestore-trace -list)")
	list := flag.Bool("list", false, "list recordable workloads")
	quick := flag.Bool("quick", true, "use smoke-sized workloads (full-size traces are huge)")
	chunk := flag.Int("chunk", trace.DefaultChunkRecords, "records per chunk when recording")
	name := flag.String("name", "trace", "application name for the analysis report")
	lineSize := flag.Uint64("line", 64, "cache line size of the recorded machine")
	report := flag.Bool("report", false, "print a perf-report-style per-function time profile")
	pmCheck := flag.Bool("pmcheck", false, "run the persistence checker instead of DirtBuster")
	pmBase := flag.Uint64("pmbase", 1<<40, "persistent range base for -pmcheck")
	pmSize := flag.Uint64("pmsize", 256<<30, "persistent range size for -pmcheck")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "prestore-trace")
		return
	}

	switch {
	case *list:
		for _, w := range bench.Table2Workloads(*quick) {
			fmt.Println(w.Name)
		}
	case *record != "" && *workload != "":
		doRecord(*record, *workload, *quick, *chunk)
	case *analyze != "" && *report:
		tb := loadTrace(*analyze)
		fmt.Printf("%-32s %10s %8s %8s %8s\n", "function", "cycles", "time%", "store%", "ops")
		for _, ft := range tb.TimeByFunction() {
			if ft.Fn == "" {
				ft.Fn = "(untagged)"
			}
			storePct := 0.0
			if ft.Cycles > 0 {
				storePct = 100 * float64(ft.StoreCyc) / float64(ft.Cycles)
			}
			fmt.Printf("%-32s %10d %7.1f%% %7.1f%% %8d\n",
				ft.Fn, ft.Cycles, ft.TimeShare*100, storePct, ft.Ops)
		}
	case *analyze != "" && *pmCheck:
		tb := loadTrace(*analyze)
		res := pmcheck.Check(tb, pmcheck.Config{
			Base: *pmBase, Size: *pmSize, LineSize: *lineSize,
		})
		fmt.Printf("pmcheck: %d line-stores checked, %d commits, %d violations\n",
			res.StoresChecked, res.Commits, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Println("  ", v)
		}
		if !res.Ok() {
			os.Exit(1)
		}
	case *analyze != "":
		// The DirtBuster path streams chunks in two bounded-memory
		// passes instead of decoding the whole trace.
		open := func() (dirtbuster.ChunkIter, error) {
			f, err := os.Open(*analyze)
			if err != nil {
				return nil, err
			}
			cr, err := trace.NewChunkReader(f)
			if err != nil {
				f.Close()
				return nil, err
			}
			return &closingIter{cr: cr, f: f}, nil
		}
		rep, err := dirtbuster.AnalyzeChunkSource(*name, open, *lineSize, dirtbuster.Config{})
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep.Render())
	case *upload != "" && *serverURL != "":
		doUpload(*serverURL, *upload, *name, *lineSize)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// doRecord streams the workload's trace to the file chunk by chunk:
// the writer's buffer holds at most one chunk of records, so peak RSS
// is flat in trace length.
func doRecord(path, workload string, quick bool, chunkRecords int) {
	for _, w := range bench.Table2Workloads(quick) {
		if w.Name != workload {
			continue
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		tw := trace.NewWriter(f, trace.WriterOptions{ChunkRecords: chunkRecords})
		line := dirtbuster.RecordStream(w, tw.Hook())
		if err := tw.Close(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d ops of %q (line size %dB) to %s in %d chunks\n",
			tw.Records(), w.Name, line, path, tw.Chunks())
		return
	}
	fmt.Fprintf(os.Stderr, "unknown workload %q; try -list\n", workload)
	os.Exit(2)
}

// loadTrace fully decodes a recording (v1 or v2) for the analyses that
// need the whole buffer in memory (-report, -pmcheck).
func loadTrace(path string) *trace.Buffer {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tb, err := trace.Decode(f)
	if err != nil {
		fatal(err)
	}
	return tb
}

// closingIter closes the underlying file when the chunk stream ends.
type closingIter struct {
	cr *trace.ChunkReader
	f  *os.File
}

func (it *closingIter) Next() (*trace.Chunk, error) {
	c, err := it.cr.Next()
	if err != nil {
		it.f.Close()
	}
	return c, err
}

const uploadPart = 4 << 20

// doUpload ships a recording to a prestored daemon (or cluster
// coordinator) with the resumable upload protocol, submits a chunked
// analysis of it and prints the report. Offset mismatches (409) are
// resumed from the server's offset, so a retried or interrupted upload
// never re-sends bytes the server already has.
func doUpload(base, path, app string, lineSize uint64) {
	base = strings.TrimRight(base, "/")
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var opened struct {
		Upload string `json:"upload"`
		Offset int64  `json:"offset"`
	}
	if err := postJSON(base+"/v1/traces?resume=1", nil, &opened); err != nil {
		fatal(err)
	}
	off := opened.Offset
	buf := make([]byte, uploadPart)
	for {
		n, rerr := f.ReadAt(buf, off)
		if n > 0 {
			newOff, err := putPart(base, opened.Upload, off, buf[:n])
			if err != nil {
				fatal(err)
			}
			off = newOff
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			fatal(rerr)
		}
	}
	var info struct {
		Address string `json:"address"`
		Chunks  int    `json:"chunks"`
		Records uint64 `json:"records"`
	}
	if err := postJSON(base+"/v1/traces/uploads/"+opened.Upload+"/commit", nil, &info); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "uploaded %d bytes as %s (%d chunks, %d records)\n",
		off, info.Address, info.Chunks, info.Records)

	spec := map[string]any{"trace": info.Address, "app": app, "line_size": lineSize}
	var st struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Result *struct {
			Err    string `json:"err,omitempty"`
			Output string `json:"output,omitempty"`
		} `json:"result,omitempty"`
	}
	if err := postJSON(base+"/v1/analyses", spec, &st); err != nil {
		fatal(err)
	}
	for st.State != "done" && st.State != "failed" && st.State != "cancelled" {
		time.Sleep(100 * time.Millisecond)
		if err := getJSON(base+"/v1/jobs/"+st.ID, &st); err != nil {
			fatal(err)
		}
	}
	if st.State != "done" {
		msg := st.State
		if st.Result != nil && st.Result.Err != "" {
			msg += ": " + st.Result.Err
		}
		fatal(fmt.Errorf("remote analysis %s", msg))
	}
	fmt.Print(st.Result.Output)
}

// putPart uploads one part, following a 409's offset so a disagreement
// with the server resolves in one extra round trip.
func putPart(base, id string, off int64, part []byte) (int64, error) {
	url := fmt.Sprintf("%s/v1/traces/uploads/%s?offset=%d", base, id, off)
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(part))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var ack struct {
		Offset int64  `json:"offset"`
		Error  string `json:"error,omitempty"`
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusConflict:
		if err := json.Unmarshal(body, &ack); err != nil {
			return 0, err
		}
		return ack.Offset, nil
	default:
		return 0, fmt.Errorf("upload part at %d: %d %s", off, resp.StatusCode, bytes.TrimSpace(body))
	}
}

func postJSON(url string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if resp.StatusCode >= 300 {
		return fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if resp.StatusCode >= 300 {
		return fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prestore-trace:", err)
	os.Exit(1)
}
