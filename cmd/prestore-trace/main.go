// Command prestore-trace records a workload's full operation trace to a
// file and analyzes recordings offline — DirtBuster's intended usage as
// an optimization pass decoupled from the profiled run (paper §6.1).
//
// Usage:
//
//	prestore-trace -record tf.trace -workload tensorflow
//	prestore-trace -analyze tf.trace -line 64
//	prestore-trace -analyze tf.trace -pmcheck -pmbase 0x10000000000
package main

import (
	"flag"
	"fmt"
	"os"

	"prestores/internal/bench"
	"prestores/internal/dirtbuster"
	"prestores/internal/pmcheck"
	"prestores/internal/trace"
)

func main() {
	record := flag.String("record", "", "record the workload's trace to this file")
	analyze := flag.String("analyze", "", "analyze a recorded trace file")
	workload := flag.String("workload", "", "workload to record (see prestore-trace -list)")
	list := flag.Bool("list", false, "list recordable workloads")
	name := flag.String("name", "trace", "application name for the analysis report")
	lineSize := flag.Uint64("line", 64, "cache line size of the recorded machine")
	report := flag.Bool("report", false, "print a perf-report-style per-function time profile")
	pmCheck := flag.Bool("pmcheck", false, "run the persistence checker instead of DirtBuster")
	pmBase := flag.Uint64("pmbase", 1<<40, "persistent range base for -pmcheck")
	pmSize := flag.Uint64("pmsize", 256<<30, "persistent range size for -pmcheck")
	flag.Parse()

	switch {
	case *list:
		for _, w := range bench.Table2Workloads(true) {
			fmt.Println(w.Name)
		}
	case *record != "" && *workload != "":
		for _, w := range bench.Table2Workloads(true) {
			if w.Name != *workload {
				continue
			}
			tb, line := dirtbuster.Record(w)
			f, err := os.Create(*record)
			if err != nil {
				fatal(err)
			}
			if err := tb.Encode(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("recorded %d ops of %q (line size %dB) to %s\n",
				tb.Len(), w.Name, line, *record)
			return
		}
		fmt.Fprintf(os.Stderr, "unknown workload %q; try -list\n", *workload)
		os.Exit(2)
	case *analyze != "":
		f, err := os.Open(*analyze)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tb, err := trace.Decode(f)
		if err != nil {
			fatal(err)
		}
		if *report {
			fmt.Printf("%-32s %10s %8s %8s %8s\n", "function", "cycles", "time%", "store%", "ops")
			for _, ft := range tb.TimeByFunction() {
				if ft.Fn == "" {
					ft.Fn = "(untagged)"
				}
				storePct := 0.0
				if ft.Cycles > 0 {
					storePct = 100 * float64(ft.StoreCyc) / float64(ft.Cycles)
				}
				fmt.Printf("%-32s %10d %7.1f%% %7.1f%% %8d\n",
					ft.Fn, ft.Cycles, ft.TimeShare*100, storePct, ft.Ops)
			}
			return
		}
		if *pmCheck {
			res := pmcheck.Check(tb, pmcheck.Config{
				Base: *pmBase, Size: *pmSize, LineSize: *lineSize,
			})
			fmt.Printf("pmcheck: %d line-stores checked, %d commits, %d violations\n",
				res.StoresChecked, res.Commits, len(res.Violations))
			for _, v := range res.Violations {
				fmt.Println("  ", v)
			}
			if !res.Ok() {
				os.Exit(1)
			}
			return
		}
		rep := dirtbuster.AnalyzeTrace(*name, tb, *lineSize, dirtbuster.Config{})
		fmt.Println(rep.Render())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prestore-trace:", err)
	os.Exit(1)
}
