// Command prestore-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	prestore-bench -list                  # list experiments
//	prestore-bench -run fig3              # one experiment
//	prestore-bench -run fig3,fig5         # several
//	prestore-bench -all                   # everything (slow)
//	prestore-bench -all -quick            # smoke-sized sweeps
//	prestore-bench -all -parallel 8       # worker pool (output unchanged)
//	prestore-bench -all -timeout 10m      # per-experiment wall-clock cap
//	prestore-bench -all -json BENCH.json  # machine-readable results
//	prestore-bench -all -quick -checkpoints /tmp/ckpt   # warm-start sweeps (same bytes, less time)
//	prestore-bench -all -server http://host:8344   # run on a prestored daemon
//	prestore-bench -run fig3 -quick -timeline t.json     # record a Perfetto timeline
//	prestore-bench -run fig3 -quick -linereport lines.json   # cache-line attribution
//	prestore-bench -dump-spec fig3        # print a spec-driven experiment's JSON spec
//	prestore-bench -spec my.json          # run a custom scenario spec locally
//	prestore-bench -spec my.json -server http://host:8344   # ... or on a daemon
//	prestore-bench -spec my.json -seed 7  # override the workload's RNG seed
//	prestore-bench -autotune my.json -seed 7 -trajectory traj.json   # search for the best pre-store plan
//	prestore-bench -autotune my.json -objective device_write_bytes -budget 64   # tune a different metric
//	prestore-bench -autotune my.json -server http://host:8344   # search on a daemon (or cluster)
//	prestore-bench -run fig3 -server http://host:8344 -spans s.json   # distributed trace artifact
//
// Experiments are independent (each builds its own simulated machine),
// so -parallel N runs them concurrently; output is flushed in
// deterministic ID order and is byte-identical to -parallel 1. A
// panicking or timed-out experiment is reported as failed without
// killing the sweep, and the process exits non-zero.
//
// With -server, experiments run on a prestored daemon instead of in
// process: every experiment is submitted up front (so the daemon's pool
// runs them concurrently and identical requests hit its result cache),
// then outputs are printed in ID order — byte-identical to a local run.
// SIGINT cancels the sweep; local or remote, in-flight experiments stop
// at their next iteration boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"prestores/internal/bench"
	"prestores/internal/checkpoint"
	"prestores/internal/obs"
	"prestores/internal/sim"
	"prestores/internal/telemetry"
)

// writeTelemetry flushes the recorded timeline and line report to the
// requested files after a local run; the text form of the line report
// goes to stderr alongside the sweep summary. A nil recorder (no
// telemetry flags) is a no-op.
func writeTelemetry(rec *telemetry.Recorder, timelinePath, lineReportPath string) error {
	if rec == nil {
		return nil
	}
	if timelinePath != "" {
		f, err := os.Create(timelinePath)
		if err != nil {
			return err
		}
		err = rec.WriteTimeline(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", timelinePath, err)
		}
		fmt.Fprintf(os.Stderr, "prestore-bench: wrote timeline (%d events, %d dropped) to %s\n",
			rec.Events(), rec.Dropped(), timelinePath)
	}
	if lineReportPath != "" {
		rep := rec.LineReport(256)
		f, err := os.Create(lineReportPath)
		if err != nil {
			return err
		}
		err = rep.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", lineReportPath, err)
		}
		rep.WriteText(os.Stderr)
		fmt.Fprintf(os.Stderr, "prestore-bench: wrote line report to %s\n", lineReportPath)
	}
	return nil
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment IDs to run")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"experiment worker-pool size (1 = serial; output is identical either way)")
	timeout := flag.Duration("timeout", 0,
		"per-experiment wall-clock timeout (0 = none; local runs only)")
	jsonPath := flag.String("json", "",
		"also write results as a JSON array to this file")
	serverURL := flag.String("server", "",
		"run experiments on a prestored daemon at this base URL instead of in process")
	specPath := flag.String("spec", "",
		"run a declarative scenario spec from this JSON file (locally, or on -server)")
	dumpSpec := flag.String("dump-spec", "",
		"print the declarative spec behind a spec-driven experiment and exit")
	cpuProfile := flag.String("cpuprofile", "",
		"write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "",
		"write a heap profile (taken after the sweep) to this file")
	timelinePath := flag.String("timeline", "",
		"record a simulated-cycle timeline and write it as Chrome trace-event JSON to this file (forces -parallel 1)")
	lineReportPath := flag.String("linereport", "",
		"record per-cache-line write attribution and write the report as JSON to this file (forces -parallel 1)")
	checkpointDir := flag.String("checkpoints", "",
		"warm-state checkpoint directory: sweeps fork sibling grid points from memoized post-warmup snapshots instead of reloading (output is byte-identical; local runs only)")
	autotunePath := flag.String("autotune", "",
		"search for the best pre-store plan over the scenario spec in this JSON file (locally, or on -server)")
	seedFlag := flag.Int64("seed", -1,
		"RNG seed: overrides workload.params.seed for -spec, seeds the -autotune search (-1 keeps defaults)")
	budget := flag.Int("budget", 0,
		"candidate evaluation budget for -autotune (0 = the engine default)")
	objective := flag.String("objective", "",
		"workload metric the -autotune search optimizes (default elapsed, minimized)")
	trajectoryPath := flag.String("trajectory", "",
		"write the -autotune search trajectory as JSON to this file")
	spansPath := flag.String("spans", "",
		"write the submission's distributed span timeline (client + server side, Chrome trace-event JSON) to this file; requires -server")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "prestore-bench")
		return
	}

	// Flag cross-validation, mirroring the -timeline rules: every flag
	// that silently does nothing in the selected mode is an error.
	if *autotunePath != "" {
		switch {
		case *specPath != "" || *run != "" || *all:
			fmt.Fprintln(os.Stderr, "prestore-bench: -autotune is its own mode and cannot be combined with -spec/-run/-all")
			os.Exit(2)
		case *timelinePath != "" || *lineReportPath != "":
			fmt.Fprintln(os.Stderr, "prestore-bench: -timeline/-linereport cannot be combined with -autotune; the search records its own telemetry probe (see the trajectory's probe section)")
			os.Exit(2)
		case *jsonPath != "":
			fmt.Fprintln(os.Stderr, "prestore-bench: -json records experiment sweeps; use -trajectory to save an -autotune search")
			os.Exit(2)
		}
	} else {
		if *budget != 0 || *objective != "" || *trajectoryPath != "" {
			fmt.Fprintln(os.Stderr, "prestore-bench: -budget/-objective/-trajectory only apply to -autotune")
			os.Exit(2)
		}
		if *seedFlag >= 0 && *specPath == "" {
			fmt.Fprintln(os.Stderr, "prestore-bench: -seed only applies to -spec (workload RNG) or -autotune (search RNG)")
			os.Exit(2)
		}
	}
	if *spansPath != "" {
		switch {
		case *serverURL == "":
			fmt.Fprintln(os.Stderr, "prestore-bench: -spans records a distributed trace and requires -server")
			os.Exit(2)
		case *specPath != "" || *autotunePath != "":
			fmt.Fprintln(os.Stderr, "prestore-bench: -spans follows experiment submissions (-run/-all); not supported for -spec/-autotune")
			os.Exit(2)
		}
	}

	var exps []bench.Experiment
	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	case *dumpSpec != "":
		if err := writeSpec(os.Stdout, *dumpSpec); err != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: %v\n", err)
			os.Exit(2)
		}
		return
	case *all:
		exps = bench.All()
	case *run != "":
		for _, id := range strings.Split(*run, ",") {
			e, ok := bench.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	case *specPath != "", *autotunePath != "": // handled below, after signal setup
	default:
		flag.Usage()
		os.Exit(2)
	}

	// Telemetry recording observes every machine the sweep builds via
	// the global registry, so it is inherently single-run: force serial
	// execution and refuse the remote path (a daemon job records
	// telemetry through the scenario spec's telemetry block instead).
	var rec *telemetry.Recorder
	if *timelinePath != "" || *lineReportPath != "" {
		if *serverURL != "" {
			fmt.Fprintln(os.Stderr, "prestore-bench: -timeline/-linereport record in process and cannot be combined with -server; submit a scenario spec with a telemetry block instead")
			os.Exit(2)
		}
		if *parallel != 1 {
			*parallel = 1
		}
		rec = telemetry.New(telemetry.Config{
			Timeline:   *timelinePath != "",
			LineReport: *lineReportPath != "",
		})
		cancelObs := sim.ObserveMachines(rec.Attach)
		defer cancelObs()
	}

	// SIGINT cancels the sweep cooperatively: in-flight experiments
	// stop at their next iteration boundary and are reported failed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Warm-state checkpointing: put a view of a disk-backed store on the
	// context; sweeps that declare a warm phase fork from it. The daemon
	// manages its own store, so the flag is local-only.
	var ckptView *checkpoint.View
	if *checkpointDir != "" {
		if *serverURL != "" {
			fmt.Fprintln(os.Stderr, "prestore-bench: -checkpoints is local-only; the daemon manages its own checkpoint store (-checkpoint-dir on prestored)")
			os.Exit(2)
		}
		store, err := checkpoint.NewStore(0, *checkpointDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: %v\n", err)
			os.Exit(1)
		}
		ckptView = store.View()
		ctx = checkpoint.NewContext(ctx, ckptView)
	}

	if *autotunePath != "" {
		err := runAutotuneFile(ctx, *autotunePath, autotuneOpts{
			server:     *serverURL,
			quick:      *quick,
			parallel:   *parallel,
			seed:       *seedFlag,
			budget:     *budget,
			objective:  *objective,
			trajectory: *trajectoryPath,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: %v\n", err)
			os.Exit(1)
		}
		if ckptView != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: checkpoints: %d hits, %d misses\n",
				ckptView.Hits(), ckptView.Misses())
		}
		return
	}

	if *specPath != "" {
		err := runSpecFile(ctx, os.Stdout, *specPath, *serverURL, *quick, *seedFlag)
		if err == nil {
			err = writeTelemetry(rec, *timelinePath, *lineReportPath)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: %v\n", err)
			os.Exit(1)
		}
		if ckptView != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: checkpoints: %d hits, %d misses\n",
				ckptView.Hits(), ckptView.Misses())
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	sweepStart := time.Now()
	opsBefore := sim.RetiredOps()
	var results []bench.Result
	var runErr error
	var spanCol *spanCollector
	if *spansPath != "" {
		spanCol = newSpanCollector()
	}
	if *serverURL != "" {
		results, runErr = runRemote(ctx, os.Stdout, *serverURL, exps, *quick, spanCol)
	} else {
		results, runErr = bench.Run(ctx, os.Stdout, exps, bench.RunnerConfig{
			Parallel: *parallel,
			Quick:    *quick,
			Timeout:  *timeout,
		})
	}
	sweepOps := sim.RetiredOps() - opsBefore
	sweepWall := time.Since(sweepStart)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "prestore-bench: sweep aborted: %v\n", runErr)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}

	if err := writeTelemetry(rec, *timelinePath, *lineReportPath); err != nil {
		fmt.Fprintf(os.Stderr, "prestore-bench: %v\n", err)
		os.Exit(1)
	}

	if spanCol != nil {
		if err := spanCol.write(*spansPath); err != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: %v\n", err)
			os.Exit(1)
		}
		err = bench.WriteJSON(f, results)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "prestore-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}

	failed := 0
	var wall time.Duration
	for i := range results {
		wall += results[i].WallTime
		if results[i].Failed() {
			failed++
			fmt.Fprintf(os.Stderr, "prestore-bench: %s: %s\n", results[i].ID, results[i].Err)
		}
	}
	fmt.Fprintf(os.Stderr, "prestore-bench: %d experiment(s), %s total experiment time, %d failed\n",
		len(results), wall.Round(time.Millisecond), failed)
	if ckptView != nil {
		fmt.Fprintf(os.Stderr, "prestore-bench: checkpoints: %d hits, %d misses\n",
			ckptView.Hits(), ckptView.Misses())
	}
	if *serverURL == "" {
		if s := sweepWall.Seconds(); s > 0 && sweepOps > 0 {
			fmt.Fprintf(os.Stderr, "prestore-bench: %d simulated ops in %s (%.2f Mops/s host throughput)\n",
				sweepOps, sweepWall.Round(time.Millisecond), float64(sweepOps)/s/1e6)
		}
	}
	if failed > 0 || runErr != nil {
		os.Exit(1)
	}
}
