// Command prestore-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	prestore-bench -list              # list experiments
//	prestore-bench -run fig3          # one experiment
//	prestore-bench -run fig3,fig5     # several
//	prestore-bench -all               # everything (slow)
//	prestore-bench -all -quick        # smoke-sized sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prestores/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment IDs to run")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	flag.Parse()

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
	case *all:
		bench.RunAll(os.Stdout, *quick)
	case *run != "":
		for _, id := range strings.Split(*run, ",") {
			e, ok := bench.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
				os.Exit(2)
			}
			bench.RunOne(os.Stdout, e, *quick)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
