package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"

	"prestores/internal/obs"
	"prestores/internal/telemetry"
)

// spanCollector assembles the -spans artifact for a remote sweep: the
// client's own spans (one root per submission, with submit and stream
// children) plus the server-side spans fetched from each finished
// job's /spans endpoint. Client and server sides share trace IDs —
// every request carries the client span as a traceparent header — so
// the merged artifact shows one tree per submission: client root,
// coordinator routing (when a cluster fronts the fleet), and the
// worker's queue-wait/run/checkpoint spans beneath it.
type spanCollector struct {
	tracer *obs.Tracer
	store  *obs.Store

	mu      sync.Mutex
	remote  []obs.Span
	dropped int
}

func newSpanCollector() *spanCollector {
	st := obs.NewStore(0, 0)
	return &spanCollector{
		tracer: &obs.Tracer{Service: "bench-client", Instance: "cli", Store: st},
		store:  st,
	}
}

// begin opens the client root span for one submission. The returned
// context carries the tracer and the span, so submitJob and streamOnce
// inject it as a traceparent header on every request they make. Nil
// collectors (no -spans) return the context untouched.
func (c *spanCollector) begin(ctx context.Context, id string) (context.Context, *obs.ActiveSpan) {
	if c == nil {
		return ctx, nil
	}
	ctx = obs.ContextWithTracer(ctx, c.tracer)
	return c.tracer.Start(ctx, "client", obs.KV("experiment", id))
}

// fetch pulls the server-side span timeline for a finished job and
// merges its raw spans into the artifact. Best-effort: a daemon
// without the endpoint or an unreachable shard degrades the artifact
// to the client's side of the story, never the sweep.
func (c *spanCollector) fetch(ctx context.Context, rc *remoteClient, base, id string) {
	if c == nil || id == "" {
		return
	}
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+id+"/spans", nil)
	if err != nil {
		return
	}
	resp, err := rc.api.Do(req)
	if err != nil {
		return
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	var remote struct {
		OtherData struct {
			Dropped int `json:"droppedSpans"`
		} `json:"otherData"`
		Spans []obs.Span `json:"spans"`
	}
	if json.Unmarshal(data, &remote) != nil {
		return
	}
	c.mu.Lock()
	c.remote = append(c.remote, remote.Spans...)
	c.dropped += remote.OtherData.Dropped
	c.mu.Unlock()
}

// write flushes the merged artifact as Chrome trace-event JSON.
func (c *spanCollector) write(path string) error {
	spans, dropped := c.store.All()
	c.mu.Lock()
	spans = append(spans, c.remote...)
	dropped += c.dropped
	c.mu.Unlock()

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = telemetry.WriteSpanTimeline(f, spans, dropped)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "prestore-bench: wrote %d spans (%d dropped) to %s\n",
		len(spans), dropped, path)
	return nil
}
