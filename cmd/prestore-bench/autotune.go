package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"prestores/internal/autotune"
	"prestores/internal/scenario"
)

// autotuneOpts carries the -autotune flag set into the driver.
type autotuneOpts struct {
	server     string // daemon base URL; empty runs in process
	quick      bool
	parallel   int
	seed       int64 // < 0 keeps the engine default
	budget     int
	objective  string
	trajectory string // trajectory JSON output path; empty skips it
}

func (o autotuneOpts) params() autotune.Params {
	par := autotune.Params{
		Budget:    o.budget,
		Objective: o.objective,
		Parallel:  o.parallel,
		Quick:     o.quick,
	}
	if o.seed >= 0 {
		par.Seed = uint64(o.seed)
	}
	return par
}

// runAutotuneFile searches for the best pre-store plan over the
// scenario spec in path. The engine's NDJSON progress stream goes to
// stdout as it happens (locally and remotely the same bytes — the
// reproducibility guarantee the tests pin); the human summary and the
// trajectory file note go to stderr.
func runAutotuneFile(ctx context.Context, path string, o autotuneOpts) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sp, err := scenario.Decode(data)
	if err != nil {
		return fmt.Errorf("%s: invalid scenario spec: %v", path, err)
	}
	if o.server != "" {
		return runAutotuneRemote(ctx, sp, o)
	}
	res, err := autotune.Run(ctx, sp, o.params(), autotune.Local{}, os.Stdout)
	if err != nil {
		return err
	}
	return finishAutotune(res.Trajectory, o.trajectory)
}

// runAutotuneRemote submits the search to a prestored daemon (or a
// cluster coordinator, which fans candidate evaluations across its
// shards), streams per-iteration progress, then pulls the trajectory
// artifact.
func runAutotuneRemote(ctx context.Context, sp scenario.Spec, o autotuneOpts) error {
	canon, err := sp.Canonical()
	if err != nil {
		return err
	}
	body, err := json.Marshal(struct {
		Spec json.RawMessage `json:"spec"`
		autotune.Params
	}{canon, o.params()})
	if err != nil {
		return err
	}
	base := strings.TrimRight(o.server, "/")
	rc := newRemoteClient()
	st, err := submitJob(ctx, rc, base, "/v1/autotune", body)
	if err != nil {
		return err
	}
	res := st.Result
	if res == nil {
		r, err := streamRemote(ctx, rc, os.Stdout, base, st.ID)
		if err != nil {
			cancelRemote(rc, base, []handle{{id: st.ID}})
			return err
		}
		res = r
	} else if _, err := io.WriteString(os.Stdout, res.Output); err != nil {
		return err
	}
	if res.Failed() {
		return fmt.Errorf("autotune failed: %s", res.Err)
	}

	raw, err := fetchArtifact(ctx, rc, base, st.ID, "trajectory")
	if err != nil {
		return err
	}
	traj, err := autotune.DecodeTrajectory(raw)
	if err != nil {
		return fmt.Errorf("daemon returned a bad trajectory artifact: %v", err)
	}
	return finishAutotune(traj, o.trajectory)
}

// fetchArtifact GETs one finished job artifact from the daemon.
func fetchArtifact(ctx context.Context, rc *remoteClient, base, id, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+id+"/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rc.api.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetching %s for job %s: daemon returned %s: %s",
			name, id, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}

// finishAutotune writes the trajectory file when asked and prints the
// winner summary trailer.
func finishAutotune(traj *autotune.Trajectory, path string) error {
	if path != "" {
		data, err := traj.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "prestore-bench: wrote trajectory (%d iterations) to %s\n",
			len(traj.Iterations), path)
	}
	plan, err := json.Marshal(traj.Winner.Plan)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"prestore-bench: autotune %s: winner at iteration %d with %s=%g, plan %s (%d evals, %d cache hits, converged=%v)\n",
		traj.Workload, traj.Winner.Iter, traj.Objective, traj.Winner.Objective,
		plan, traj.Evals, traj.CacheHits, traj.Converged)
	return nil
}
