package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"prestores/internal/bench"
	"prestores/internal/scenario"
)

// writeSpec prints the declarative spec behind a spec-driven
// experiment as indented JSON — ready to edit and feed back through
// -spec, locally or via POST /v1/scenarios.
func writeSpec(w io.Writer, id string) error {
	s, ok := bench.SpecFor(id)
	if !ok {
		return fmt.Errorf("experiment %q is not spec-driven (spec-driven: %s)",
			id, strings.Join(bench.SpecIDs(), ", "))
	}
	data, err := s.Canonical()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = w.Write(buf.Bytes())
	return err
}

// runSpecFile runs a scenario spec from a JSON file: validated here
// either way, then executed in process or submitted to a prestored
// daemon (whose output streams back byte-identical). A non-negative
// seed overrides the workload's own RNG seed parameter; workloads
// without a seed parameter reject it with the usual validation error.
func runSpecFile(ctx context.Context, w io.Writer, path, serverURL string, quick bool, seed int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sp, err := scenario.Decode(data)
	if err != nil {
		return fmt.Errorf("%s: invalid scenario spec: %v", path, err)
	}
	if seed >= 0 {
		if sp.Workload.Params == nil {
			sp.Workload.Params = map[string]any{}
		}
		sp.Workload.Params["seed"] = float64(seed)
		if err := sp.Validate(); err != nil {
			return fmt.Errorf("-seed %d: %v", seed, err)
		}
	}
	if serverURL != "" {
		return runSpecRemote(ctx, w, serverURL, sp, quick)
	}
	return bench.RunSpec(ctx, w, sp, quick)
}

// runSpecRemote submits the spec to a prestored daemon's /v1/scenarios
// endpoint and streams the job's output, or prints the cached result.
func runSpecRemote(ctx context.Context, w io.Writer, base string, sp scenario.Spec, quick bool) error {
	canon, err := sp.Canonical()
	if err != nil {
		return err
	}
	body, err := json.Marshal(struct {
		Spec  json.RawMessage `json:"spec"`
		Quick bool            `json:"quick"`
	}{canon, quick})
	if err != nil {
		return err
	}
	base = strings.TrimRight(base, "/")
	rc := newRemoteClient()
	st, err := submitJob(ctx, rc, base, "/v1/scenarios", body)
	if err != nil {
		return err
	}
	res := st.Result
	if res == nil {
		r, err := streamRemote(ctx, rc, w, base, st.ID)
		if err != nil {
			cancelRemote(rc, base, []handle{{id: st.ID}})
			return err
		}
		res = r
	} else if _, err := io.WriteString(w, res.Output); err != nil {
		return err
	}
	if res.Failed() {
		return fmt.Errorf("scenario failed: %s", res.Err)
	}
	return nil
}
