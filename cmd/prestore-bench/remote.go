package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"prestores/internal/bench"
)

// jobStatus and streamEvent mirror the prestored daemon's wire types
// (internal/server.JobStatus and its NDJSON stream events).
type jobStatus struct {
	ID     string        `json:"id"`
	State  string        `json:"state"`
	Cached bool          `json:"cached"`
	Error  string        `json:"error"`
	Result *bench.Result `json:"result"`
}

type streamEvent struct {
	Event string     `json:"event"`
	Data  string     `json:"data"`
	Job   *jobStatus `json:"job"`
}

// handle tracks one submitted experiment: the job ID to follow, or the
// already-final result when the submit was answered from the cache.
type handle struct {
	id  string
	res *bench.Result
}

// runRemote executes the sweep on a prestored daemon. All experiments
// are submitted up front — the daemon runs them on its worker pool and
// answers repeats from its result cache — then outputs are printed in
// input order, streaming the job whose turn it is. The bytes written to
// w are identical to a local bench.Run over the same experiments.
func runRemote(ctx context.Context, w io.Writer, base string, exps []bench.Experiment, quick bool) ([]bench.Result, error) {
	base = strings.TrimRight(base, "/")
	client := &http.Client{}
	results := make([]bench.Result, 0, len(exps))

	handles := make([]handle, len(exps))
	for i, e := range exps {
		st, err := submitRemote(ctx, client, base, e.ID, quick)
		if err != nil {
			cancelRemote(client, base, handles)
			return results, fmt.Errorf("submitting %s: %w", e.ID, err)
		}
		if st.Cached {
			handles[i] = handle{res: st.Result}
		} else {
			handles[i] = handle{id: st.ID}
		}
	}

	for i, h := range handles {
		res := h.res
		if res == nil {
			r, err := streamRemote(ctx, client, w, base, h.id)
			if err != nil {
				cancelRemote(client, base, handles[i:])
				return results, fmt.Errorf("streaming %s (%s): %w", exps[i].ID, h.id, err)
			}
			res = r
			// The stream already carried the output bytes; only the
			// failure trailer is local (it matches bench.Run's).
		} else if _, err := io.WriteString(w, res.Output); err != nil {
			cancelRemote(client, base, handles[i:])
			return results, err
		}
		if res.Failed() {
			fmt.Fprintf(w, "!!! %s failed: %s\n", res.ID, res.Err)
		}
		results = append(results, *res)
	}
	return results, nil
}

// submitRemote posts one experiment, retrying while the daemon's queue
// is full (429): queued jobs drain as the sweep progresses.
func submitRemote(ctx context.Context, client *http.Client, base, id string, quick bool) (*jobStatus, error) {
	body, _ := json.Marshal(map[string]any{"id": id, "quick": quick})
	return submitJob(ctx, client, base, "/v1/experiments", body)
}

// submitJob posts a job body to one of the daemon's submit endpoints,
// retrying while the queue is full (429).
func submitJob(ctx context.Context, client *http.Client, base, path string, body []byte) (*jobStatus, error) {
	for {
		req, err := http.NewRequestWithContext(ctx, "POST", base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			var st jobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return nil, fmt.Errorf("bad job handle: %v", err)
			}
			return &st, nil
		case http.StatusTooManyRequests:
			select {
			case <-time.After(100 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		default:
			return nil, fmt.Errorf("daemon returned %s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
	}
}

// streamRemote follows one job's NDJSON stream, copying output chunks
// to w as they arrive, and returns the final result.
func streamRemote(ctx context.Context, client *http.Client, w io.Writer, base, id string) (*bench.Result, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("daemon returned %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("bad stream line: %v", err)
		}
		switch ev.Event {
		case "output":
			if _, err := io.WriteString(w, ev.Data); err != nil {
				return nil, err
			}
		case "done":
			if ev.Job == nil || ev.Job.Result == nil {
				return nil, fmt.Errorf("done event without result")
			}
			return ev.Job.Result, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("stream ended without a done event")
}

// cancelRemote best-effort cancels jobs the client will no longer
// collect, so an aborted sweep does not leave the daemon simulating
// for nobody. Detached jobs need the explicit DELETE.
func cancelRemote(client *http.Client, base string, handles []handle) {
	for _, h := range handles {
		if h.id == "" {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		req, err := http.NewRequestWithContext(ctx, "DELETE", base+"/v1/jobs/"+h.id, nil)
		if err == nil {
			if resp, err := client.Do(req); err == nil {
				resp.Body.Close()
			}
		}
		cancel()
	}
}
