package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"prestores/internal/bench"
	"prestores/internal/obs"
	"prestores/internal/server/cluster"
)

// jobStatus and streamEvent mirror the prestored daemon's wire types
// (internal/server.JobStatus and its NDJSON stream events). A cluster
// coordinator speaks the identical surface, so the client is unaware
// whether it is talking to one daemon or a fleet.
type jobStatus struct {
	ID     string        `json:"id"`
	State  string        `json:"state"`
	Cached bool          `json:"cached"`
	Error  string        `json:"error"`
	Result *bench.Result `json:"result"`
}

type streamEvent struct {
	Event string     `json:"event"`
	Data  string     `json:"data"`
	Job   *jobStatus `json:"job"`
}

// remoteClient bundles the two HTTP clients a sweep needs: a timed one
// for unary calls — a hung daemon must fail a submit or cancel, not
// hang the sweep forever — and an untimed one for the long-lived NDJSON
// streams, whose legitimate lifetime is the experiment's runtime.
// Backoff paces 429 retries and stream reconnects; a fleet of clients
// facing one full queue spreads out instead of thundering in lockstep.
type remoteClient struct {
	api    *http.Client
	stream *http.Client
	bo     cluster.Backoff
}

// requestTimeout bounds one unary call (submit, cancel) end to end.
const requestTimeout = 30 * time.Second

func newRemoteClient() *remoteClient {
	return &remoteClient{
		api:    &http.Client{Timeout: requestTimeout},
		stream: &http.Client{},
		bo:     cluster.Backoff{Base: 100 * time.Millisecond, Cap: 10 * time.Second},
	}
}

// handle tracks one submitted experiment: the job ID to follow, or the
// already-final result when the submit was answered from the cache.
// ctx carries the submission's client span (when -spans is on) so
// stream reconnects keep propagating the same trace; root is that
// span, closed when the job's output has been fully collected.
type handle struct {
	id   string
	res  *bench.Result
	ctx  context.Context
	root *obs.ActiveSpan
}

// runRemote executes the sweep on a prestored daemon (or a cluster
// coordinator fronting a fleet of them). All experiments are submitted
// up front — the daemon runs them on its worker pool and answers
// repeats from its result cache — then outputs are printed in input
// order, streaming the job whose turn it is. The bytes written to w
// are identical to a local bench.Run over the same experiments.
func runRemote(ctx context.Context, w io.Writer, base string, exps []bench.Experiment, quick bool, spans *spanCollector) ([]bench.Result, error) {
	base = strings.TrimRight(base, "/")
	rc := newRemoteClient()
	results := make([]bench.Result, 0, len(exps))

	handles := make([]handle, len(exps))
	for i, e := range exps {
		sctx, root := spans.begin(ctx, e.ID)
		subCtx, sub := obs.Start(sctx, "submit")
		st, err := submitRemote(subCtx, rc, base, e.ID, quick)
		sub.End()
		if err != nil {
			root.End()
			cancelRemote(rc, base, handles)
			return results, fmt.Errorf("submitting %s: %w", e.ID, err)
		}
		if st.Cached {
			root.SetAttr("cached", "true")
			root.End()
			handles[i] = handle{res: st.Result}
		} else {
			handles[i] = handle{id: st.ID, ctx: sctx, root: root}
		}
	}

	for i, h := range handles {
		res := h.res
		if res == nil {
			strCtx, str := obs.Start(h.ctx, "stream", obs.KV("job", h.id))
			r, err := streamRemote(strCtx, rc, w, base, h.id)
			str.End()
			h.root.End()
			if err != nil {
				cancelRemote(rc, base, handles[i:])
				return results, fmt.Errorf("streaming %s (%s): %w", exps[i].ID, h.id, err)
			}
			res = r
			// The job is terminal: its server-side spans are complete
			// and safe to merge into the artifact.
			spans.fetch(ctx, rc, base, h.id)
			// The stream already carried the output bytes; only the
			// failure trailer is local (it matches bench.Run's).
		} else if _, err := io.WriteString(w, res.Output); err != nil {
			cancelRemote(rc, base, handles[i:])
			return results, err
		}
		if res.Failed() {
			fmt.Fprintf(w, "!!! %s failed: %s\n", res.ID, res.Err)
		}
		results = append(results, *res)
	}
	return results, nil
}

// submitRemote posts one experiment, retrying while the daemon's queue
// is full (429): queued jobs drain as the sweep progresses.
func submitRemote(ctx context.Context, rc *remoteClient, base, id string, quick bool) (*jobStatus, error) {
	body, _ := json.Marshal(map[string]any{"id": id, "quick": quick})
	return submitJob(ctx, rc, base, "/v1/experiments", body)
}

// submitJob posts a job body to one of the daemon's submit endpoints.
// 429s (queue full) are retried with capped exponential backoff and
// jitter; ctx is the total retry budget — its deadline or cancellation
// ends the loop mid-pause.
func submitJob(ctx context.Context, rc *remoteClient, base, path string, body []byte) (*jobStatus, error) {
	for attempt := 0; ; {
		req, err := http.NewRequestWithContext(ctx, "POST", base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		obs.InjectContext(ctx, req.Header)
		resp, err := rc.api.Do(req)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			var st jobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return nil, fmt.Errorf("bad job handle: %v", err)
			}
			return &st, nil
		case http.StatusTooManyRequests:
			if err := rc.bo.Sleep(ctx, attempt); err != nil {
				return nil, err
			}
			attempt++
		default:
			return nil, fmt.Errorf("daemon returned %s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
	}
}

// maxStreamReconnects bounds consecutive fruitless reconnect attempts;
// an attempt that delivers new output bytes resets the budget.
const maxStreamReconnects = 5

// streamRemote follows one job's NDJSON stream, copying output chunks
// to w as they arrive, and returns the final result. A mid-job
// disconnect is not fatal: the client tracks the bytes it has
// consumed and reconnects with ?offset=N, so the daemon replays only
// what is missing and no output byte is ever written twice.
func streamRemote(ctx context.Context, rc *remoteClient, w io.Writer, base, id string) (*bench.Result, error) {
	consumed := 0
	attempts := 0
	var lastErr error
	for {
		before := consumed
		res, retry, err := streamOnce(ctx, rc, w, base, id, &consumed)
		if err == nil {
			return res, nil
		}
		if !retry {
			return nil, err
		}
		lastErr = err
		if consumed > before {
			attempts = 0 // the connection was productive; fresh budget
		}
		if attempts >= maxStreamReconnects {
			return nil, fmt.Errorf("stream broken after %d reconnect attempts: %w", attempts, lastErr)
		}
		if serr := rc.bo.Sleep(ctx, attempts); serr != nil {
			return nil, serr
		}
		attempts++
	}
}

// streamOnce attaches to the job's stream at the current offset and
// copies until the done event. retry reports whether the failure was a
// transport loss worth reconnecting through (connection drop, truncated
// stream) as opposed to a definitive answer (HTTP error status, a local
// write failure, cancellation).
func streamOnce(ctx context.Context, rc *remoteClient, w io.Writer, base, id string, consumed *int) (res *bench.Result, retry bool, err error) {
	url := base + "/v1/jobs/" + id + "/stream"
	if *consumed > 0 {
		url += "?offset=" + strconv.Itoa(*consumed)
	}
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, false, err
	}
	obs.InjectContext(ctx, req.Header)
	resp, err := rc.stream.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, false, fmt.Errorf("daemon returned %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, false, fmt.Errorf("bad stream line: %v", err)
		}
		switch ev.Event {
		case "output":
			if _, err := io.WriteString(w, ev.Data); err != nil {
				return nil, false, err
			}
			*consumed += len(ev.Data)
		case "done":
			if ev.Job == nil || ev.Job.Result == nil {
				return nil, false, fmt.Errorf("done event without result")
			}
			return ev.Job.Result, false, nil
		}
	}
	if ctx.Err() != nil {
		return nil, false, ctx.Err()
	}
	if err := sc.Err(); err != nil {
		return nil, true, err
	}
	return nil, true, fmt.Errorf("stream ended without a done event")
}

// cancelRemote best-effort cancels jobs the client will no longer
// collect, so an aborted sweep does not leave the daemon simulating
// for nobody. Detached jobs need the explicit DELETE. The DELETEs run
// concurrently, each under its own short deadline: aborting a wide
// sweep must take one round-trip, not one per outstanding job.
func cancelRemote(rc *remoteClient, base string, handles []handle) {
	var wg sync.WaitGroup
	for _, h := range handles {
		if h.id == "" {
			continue
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, "DELETE", base+"/v1/jobs/"+id, nil)
			if err == nil {
				if resp, err := rc.api.Do(req); err == nil {
					resp.Body.Close()
				}
			}
		}(h.id)
	}
	wg.Wait()
}
