package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"prestores/internal/bench"
	"prestores/internal/server/cluster"
)

// testClient is a remoteClient with a near-instant backoff so retry
// tests run in milliseconds.
func testClient() *remoteClient {
	rc := newRemoteClient()
	rc.bo = cluster.Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond}
	return rc
}

func writeEvent(w http.ResponseWriter, ev streamEvent) {
	json.NewEncoder(w).Encode(ev)
}

// TestSubmitJobBacksOffThrough429 proves the 429 retry loop converges
// once the queue drains and counts every attempt (so the backoff is
// actually pacing, not spinning).
func TestSubmitJobBacksOffThrough429(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"job queue full"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"job-1","state":"queued"}`)
	}))
	defer ts.Close()

	st, err := submitJob(context.Background(), testClient(), ts.URL, "/v1/experiments", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-1" {
		t.Fatalf("job handle = %+v", st)
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("server saw %d submits, want 4 (3×429 + accept)", n)
	}
}

// TestSubmitJobHonorsContextBudget proves a permanently full queue
// does not retry forever: the context deadline is the total budget.
func TestSubmitJobHonorsContextBudget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := submitJob(ctx, testClient(), ts.URL, "/v1/experiments", []byte(`{}`))
	if err == nil || ctx.Err() == nil {
		t.Fatalf("submit against a stuck queue returned %v, want context deadline", err)
	}
}

// TestStreamRemoteReconnectsWithOffset is the mid-job disconnect fix:
// the daemon drops the stream after half the output; the client must
// reconnect asking for the bytes it has not consumed, and the final
// writer content must be exact with no duplicated bytes.
func TestStreamRemoteReconnectsWithOffset(t *testing.T) {
	const part1, part2 = "part1\n", "part2\n"
	var attempts atomic.Int64
	var gotOffset atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/stream") {
			t.Errorf("unexpected path %s", r.URL.Path)
			w.WriteHeader(http.StatusNotFound)
			return
		}
		switch attempts.Add(1) {
		case 1:
			writeEvent(w, streamEvent{Event: "status", Job: &jobStatus{ID: "job-1", State: "running"}})
			writeEvent(w, streamEvent{Event: "output", Data: part1})
			// connection ends without a done event: transport loss
		default:
			gotOffset.Store(r.URL.Query().Get("offset"))
			writeEvent(w, streamEvent{Event: "output", Data: part2})
			writeEvent(w, streamEvent{Event: "done", Job: &jobStatus{
				ID: "job-1", State: "done",
				Result: &bench.Result{ID: "e", Output: part1 + part2},
			}})
		}
	}))
	defer ts.Close()

	var out bytes.Buffer
	res, err := streamRemote(context.Background(), testClient(), &out, ts.URL, "job-1")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != part1+part2 {
		t.Fatalf("client wrote %q, want %q (no loss, no duplication)", out.String(), part1+part2)
	}
	if res.Output != part1+part2 {
		t.Fatalf("result output = %q", res.Output)
	}
	if n := attempts.Load(); n != 2 {
		t.Fatalf("server saw %d stream attaches, want 2", n)
	}
	if off := gotOffset.Load(); off != fmt.Sprint(len(part1)) {
		t.Fatalf("reconnect asked for offset %v, want %d", off, len(part1))
	}
}

// TestStreamRemoteBoundedReconnects proves the reconnect loop gives up
// after its budget when the daemon makes no progress.
func TestStreamRemoteBoundedReconnects(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		// 200 with no events at all: ends without done, no progress.
	}))
	defer ts.Close()

	var out bytes.Buffer
	_, err := streamRemote(context.Background(), testClient(), &out, ts.URL, "job-1")
	if err == nil || !strings.Contains(err.Error(), "reconnect attempts") {
		t.Fatalf("fruitless stream returned %v, want bounded-reconnects error", err)
	}
	if n := attempts.Load(); n != maxStreamReconnects+1 {
		t.Fatalf("server saw %d attaches, want %d", n, maxStreamReconnects+1)
	}
}

// TestStreamRemoteTerminalHTTPErrorDoesNotRetry: a definitive answer
// (404 unknown job) must fail fast, not burn the reconnect budget.
func TestStreamRemoteTerminalHTTPErrorDoesNotRetry(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"unknown job"}`)
	}))
	defer ts.Close()

	var out bytes.Buffer
	_, err := streamRemote(context.Background(), testClient(), &out, ts.URL, "job-9")
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("404 stream returned %v, want status error", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("server saw %d attaches for a 404, want 1", n)
	}
}

// TestCancelRemoteRunsConcurrently proves aborting a wide sweep costs
// one slow round-trip, not one per outstanding job.
func TestCancelRemoteRunsConcurrently(t *testing.T) {
	const jobs = 8
	const delay = 200 * time.Millisecond
	var deletes atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != "DELETE" {
			t.Errorf("unexpected method %s", r.Method)
		}
		time.Sleep(delay)
		deletes.Add(1)
		fmt.Fprint(w, `{"state":"cancelled"}`)
	}))
	defer ts.Close()

	handles := make([]handle, jobs)
	for i := range handles {
		handles[i].id = fmt.Sprintf("job-%d", i+1)
	}
	start := time.Now()
	cancelRemote(testClient(), ts.URL, handles)
	elapsed := time.Since(start)
	if n := deletes.Load(); n != jobs {
		t.Fatalf("%d DELETEs arrived, want %d", n, jobs)
	}
	if elapsed > jobs*delay/2 {
		t.Fatalf("cancelRemote took %v for %d jobs (serial would be ~%v); not concurrent", elapsed, jobs, jobs*delay)
	}
}
