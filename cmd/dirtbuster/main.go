// Command dirtbuster runs the DirtBuster analysis pipeline on one of
// the bundled workloads and prints the paper-format report: the
// write-intensive functions, their sequentiality contexts with re-read
// and re-write distances, fence proximity, and the pre-store
// recommendation for each.
//
// Usage:
//
//	dirtbuster -list                 # available workloads
//	dirtbuster -workload tensorflow  # analyze one workload
//	dirtbuster -workload all         # analyze everything (Table 2)
package main

import (
	"flag"
	"fmt"
	"os"

	"prestores/internal/bench"
	"prestores/internal/dirtbuster"
	"prestores/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list workloads and exit")
	workload := flag.String("workload", "", "workload to analyze (or 'all')")
	quick := flag.Bool("quick", true, "use smoke-sized workload inputs")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "dirtbuster")
		return
	}

	workloads := bench.Table2Workloads(*quick)
	switch {
	case *list:
		for _, w := range workloads {
			fmt.Println(w.Name)
		}
	case *workload == "all":
		for _, w := range workloads {
			rep := dirtbuster.Analyze(w, dirtbuster.Config{})
			fmt.Println(rep.Render())
		}
	case *workload != "":
		for _, w := range workloads {
			if w.Name == *workload {
				rep := dirtbuster.Analyze(w, dirtbuster.Config{})
				fmt.Println(rep.Render())
				return
			}
		}
		fmt.Fprintf(os.Stderr, "unknown workload %q; try -list\n", *workload)
		os.Exit(2)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
