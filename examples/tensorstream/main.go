// tensorstream: the paper's TensorFlow experiment (§7.2.1) in
// miniature — an Eigen-style tensor evaluator streaming results into
// large output tensors on Machine A. DirtBuster recommends *cleaning*
// the written packets (the small bias tensors are re-read immediately,
// so skipping the cache would backfire — Figure 7 shows skip losing).
package main

import (
	"fmt"

	"prestores"
	"prestores/internal/workloads/tensor"
)

func main() {
	fmt.Println("Tensor training proxy on machine A, batch-size sweep")
	fmt.Println()
	fmt.Printf("%6s  %14s  %12s  %12s\n", "batch", "baseline Mcyc", "clean", "skip")

	for _, batch := range []int{1, 16, 64} {
		cfg := tensor.TrainConfig{BatchSize: batch, Features: 2048, Steps: 1}
		run := func(mode tensor.Mode) tensor.TrainResult {
			cfg.Mode = mode
			return tensor.Train(prestores.NewMachineA(), cfg)
		}
		base := run(tensor.Baseline)
		clean := run(tensor.Clean)
		skip := run(tensor.Skip)
		fmt.Printf("%6d  %14.1f  %+11.1f%%  %+11.1f%%\n",
			batch, float64(base.Elapsed)/1e6,
			100*(float64(base.Elapsed)/float64(clean.Elapsed)-1),
			100*(float64(base.Elapsed)/float64(skip.Elapsed)-1))
	}

	fmt.Println("\nPositive = faster than baseline. Cleaning wins; skipping loses when")
	fmt.Println("the evaluator re-reads previously written packets (a[x] = f(a[x-4P])).")
}
