// Quickstart: write data to simulated persistent memory with and
// without a clean pre-store and observe the device-side write
// amplification and elapsed simulated time change — the paper's
// Listing 1 in miniature.
package main

import (
	"fmt"

	"prestores"
)

func main() {
	const (
		elemSize = 1024
		elems    = 16384
		writes   = 24576
	)

	for _, useClean := range []bool{false, true} {
		m := prestores.NewMachineA()
		cpu := m.Core(0)
		arr := m.Alloc(prestores.WindowPMEM, "elts", elemSize*elems)
		payload := make([]byte, elemSize)
		for i := range payload {
			payload[i] = byte(i)
		}

		rng := uint64(12345)
		start := cpu.Now()
		var total uint64
		for i := 0; i < writes; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			idx := (rng >> 33) % elems
			addr := arr.Base + idx*elemSize

			cpu.Write(addr, payload) // memcpy(&elts[idx], ...)
			if useClean {
				prestores.Prestore(cpu, addr, elemSize, prestores.Clean)
			}
			total += cpu.ReadU64(addr) // total += elt[idx].field
		}
		m.Drain()

		dev := m.Device(prestores.WindowPMEM)
		fmt.Printf("clean pre-store: %-5v  cycles: %10d  write amplification: %.2fx  (checksum %d)\n",
			useClean, cpu.Now()-start, dev.Stats().WriteAmplification(), total)
	}
	fmt.Println("\nCleaning directs the CPU to write dirty lines back in program order,")
	fmt.Println("so the PMEM's 256B internal blocks fill completely and media traffic drops.")
}
