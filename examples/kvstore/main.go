// kvstore: the paper's key-value experiment (§7.2.3) in miniature — a
// CLHT hash table under YCSB-A on Machine A, comparing how the PUT
// path crafts its values: plain stores, stores + clean pre-store
// (Listing 6), or non-temporal stores (skipping the cache).
package main

import (
	"fmt"

	"prestores"
	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/clht"
	"prestores/internal/workloads/kv"
	"prestores/internal/workloads/ycsb"
)

func main() {
	fmt.Println("CLHT under YCSB-A (50% GET / 50% PUT), 1KB values, machine A")
	fmt.Println()

	var baseline float64
	for _, mode := range []kv.CraftMode{kv.CraftBaseline, kv.CraftClean, kv.CraftSkip} {
		m := prestores.NewMachineA()
		store := clht.New(m, clht.Config{Buckets: 1 << 17, Overflow: 32 * units.MiB})
		heap := kv.NewValueHeap(m, sim.WindowPMEM, units.GiB)
		cfg := ycsb.Config{
			Records: 200_000, Ops: 3000, Threads: 10,
			ValueSize: 1024, Workload: ycsb.A, Craft: mode, Seed: 7,
		}
		ycsb.Load(m, store, heap, cfg)
		res := ycsb.Run(m, store, heap, cfg)
		if mode == kv.CraftBaseline {
			baseline = res.OpsPerSec
		}
		fmt.Printf("%-9s  %8.2fM ops/s  write amp %.2fx  speedup %.2fx\n",
			mode, res.OpsPerSec/1e6, res.WriteAmp, res.OpsPerSec/baseline)
	}

	fmt.Println("\nThe crafted values dominate the write stream; cleaning or skipping")
	fmt.Println("them keeps the PMEM from paying a full 256B media write per 64B line.")
}
