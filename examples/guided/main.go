// guided: the paper's full workflow end to end. An application is
// profiled by DirtBuster, which names the write-intensive function,
// reports its sequentiality contexts and re-use distances, and
// recommends a pre-store. The recommendation is then applied
// programmatically and the application re-measured — including the
// wrong alternatives, to show the recommendation was the right one.
package main

import (
	"fmt"

	"prestores"
	"prestores/internal/core"
	"prestores/internal/xrand"
)

// app writes 2 KiB records into a large PMEM log and immediately
// computes a digest of each record's header — sequential writes,
// re-read soon: the textbook clean case.
func app(m *prestores.Machine, choice core.Choice) uint64 {
	const (
		recSize = 2048
		recs    = 16384
		writes  = 20000
	)
	c := m.Core(0)
	log := m.Alloc(prestores.WindowPMEM, "app.log", recSize*recs)
	rng := xrand.New(7)
	payload := make([]byte, recSize)
	var digest uint64
	c.PushFunc("app.append")
	for i := 0; i < writes; i++ {
		idx := rng.Uint64n(recs)
		addr := log.Base + idx*recSize
		for b := range payload {
			payload[b] = byte(i + b)
		}
		c.Write(addr, payload)
		core.Apply(c, addr, recSize, choice) // the inserted pre-store
		digest += c.ReadU64(addr)            // header re-read
	}
	c.PopFunc()
	m.Drain()
	return digest
}

func main() {
	fmt.Println("Step 1-3: run DirtBuster on the unmodified application")
	fmt.Println()
	rep := prestores.Analyze(prestores.Workload{
		Name:       "applog",
		NewMachine: prestores.NewMachineA,
		Run:        func(m *prestores.Machine) { app(m, core.NoPrestore) },
	}, prestores.AnalysisConfig{})
	fmt.Println(rep.Render())

	advice := rep.Advice("app.append")
	fmt.Printf("Applying DirtBuster's advice (%s) and the alternatives:\n\n", advice)

	var baseCycles uint64
	var baseDigest uint64
	for _, choice := range []core.Choice{core.NoPrestore, core.Demote, core.Clean} {
		m := prestores.NewMachineA()
		digest := app(m, choice)
		cycles := uint64(m.Core(0).Now())
		amp := m.Device(prestores.WindowPMEM).Stats().WriteAmplification()
		if choice == core.NoPrestore {
			baseCycles, baseDigest = cycles, digest
		}
		marker := " "
		if choice == advice {
			marker = "*"
		}
		fmt.Printf("%s %-8v  %12d cycles  amp %.2fx  speedup %.2fx\n",
			marker, choice, cycles, amp, float64(baseCycles)/float64(cycles))
		if digest != baseDigest {
			panic("pre-store changed the application's result")
		}
	}
	fmt.Println("\n(* = DirtBuster's recommendation; note it beats both doing nothing")
	fmt.Println("   and the plausible-but-weaker alternative.)")
}
