// messaging: the paper's X9 experiment (§7.3.2, Listing 8) — a producer
// fills a message and publishes it with a compare-and-swap; a consumer
// polls and reads it. On the weak-memory Machine B the crafted message
// stays in private CPU buffers until the CAS forces it out; a demote
// pre-store publishes it in the background instead.
package main

import (
	"fmt"

	"prestores"
	"prestores/internal/sim"
	"prestores/internal/workloads/x9"
)

func main() {
	fmt.Println("X9 message passing, 512B messages, producer core 0 -> consumer core 1")
	fmt.Println()

	for _, mk := range []struct {
		name string
		mk   func() *prestores.Machine
	}{
		{"machine B-fast", sim.MachineBFast},
		{"machine B-slow", sim.MachineBSlow},
	} {
		var base float64
		for _, mode := range []x9.Mode{x9.Baseline, x9.Demote} {
			res := x9.Run(mk.mk(), x9.Config{Iters: 8000, MsgSize: 512, Mode: mode, Seed: 3})
			if mode == x9.Baseline {
				base = res.LatencyCyc
			}
			fmt.Printf("%s  %-8s  latency %6.0f cycles  (%.0f%% reduction)\n",
				mk.name, mode, res.LatencyCyc, 100*(1-res.LatencyCyc/base))
		}
		fmt.Println()
	}
}
