module prestores

go 1.22
