package prestores_test

import (
	"context"
	"strings"
	"testing"

	"prestores"
)

// TestQuickstartFlow exercises the public API end to end: allocate,
// write, pre-store, observe amplification — the README's first example.
func TestQuickstartFlow(t *testing.T) {
	m := prestores.NewMachineA()
	cpu := m.Core(0)
	buf := m.Alloc(prestores.WindowPMEM, "data", 1<<20)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for off := uint64(0); off < buf.Size; off += 1024 {
		cpu.Write(buf.Base+off, payload)
		prestores.Prestore(cpu, buf.Base+off, 1024, prestores.Clean)
	}
	m.Drain()
	dev := m.Device(prestores.WindowPMEM)
	if amp := dev.Stats().WriteAmplification(); amp > 1.05 {
		t.Fatalf("sequential cleaned writes amplified %.2fx", amp)
	}
	got := make([]byte, 1024)
	cpu.Read(buf.Base, got)
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatal("data corrupted")
		}
	}
}

func TestMachinePresets(t *testing.T) {
	if prestores.NewMachineA().LineSize() != 64 {
		t.Fatal("machine A line size")
	}
	if prestores.NewMachineBFast().LineSize() != 128 {
		t.Fatal("machine B line size")
	}
	slow := prestores.NewMachineBSlow()
	fast := prestores.NewMachineBFast()
	if slow.Device(prestores.WindowRemote).ReadLatency() <= fast.Device(prestores.WindowRemote).ReadLatency() {
		t.Fatal("B-slow not slower than B-fast")
	}
}

func TestCustomMachine(t *testing.T) {
	cfg := prestores.MachineAConfig()
	cfg.Cores = 2
	m := prestores.NewMachine(cfg)
	if m.Cores() != 2 {
		t.Fatal("custom core count ignored")
	}
}

// TestCustomMachineB exercises the Machine B customization surface the
// package doc promises: full-config helpers for both FPGA tunings and
// NewMachineB for arbitrary ones.
func TestCustomMachineB(t *testing.T) {
	cfg := prestores.MachineBFastConfig()
	cfg.Cores = 2
	m := prestores.NewMachine(cfg)
	if m.Cores() != 2 || m.LineSize() != 128 {
		t.Fatalf("customized B-fast: cores=%d line=%d", m.Cores(), m.LineSize())
	}
	fast := prestores.NewMachine(prestores.MachineBFastConfig())
	slow := prestores.NewMachine(prestores.MachineBSlowConfig())
	fl := fast.Device(prestores.WindowRemote).ReadLatency()
	sl := slow.Device(prestores.WindowRemote).ReadLatency()
	if fl != 60 || sl != 200 {
		t.Fatalf("B config latencies = %d / %d, want 60 / 200", fl, sl)
	}
	custom := prestores.NewMachineB(prestores.MachineBConfig{
		FPGALatency:   120,
		FPGABandwidth: 5e9,
	})
	if got := custom.Device(prestores.WindowRemote).ReadLatency(); got != 120 {
		t.Fatalf("custom B latency = %d, want 120", got)
	}
	viaCfg := prestores.NewMachine(prestores.MachineBConfigFor(prestores.MachineBConfig{
		FPGALatency:   120,
		FPGABandwidth: 5e9,
	}))
	if viaCfg.Device(prestores.WindowRemote).ReadLatency() != 120 {
		t.Fatal("MachineBConfigFor dropped the FPGA tuning")
	}
}

func TestAnalyzePublicSurface(t *testing.T) {
	rep := prestores.Analyze(prestores.Workload{
		Name:       "stream",
		NewMachine: prestores.NewMachineA,
		Run: func(m *prestores.Machine) {
			c := m.Core(0)
			c.PushFunc("stream.write")
			buf := make([]byte, 4096)
			r := m.Alloc(prestores.WindowPMEM, "s", 4096*1200)
			for i := uint64(0); i < 1200; i++ {
				c.Write(r.Base+i*4096, buf)
			}
			c.PopFunc()
		},
	}, prestores.AnalysisConfig{})
	if !rep.WriteIntensive {
		t.Fatal("streaming writer not write-intensive")
	}
	if !strings.Contains(rep.Render(), "Pre-store choice:") {
		t.Fatal("render missing recommendation")
	}
}

func TestHookSurface(t *testing.T) {
	m := prestores.NewMachineA()
	var stores int
	m.SetHook(func(ev prestores.Event, _ *prestores.Core) {
		if ev.Kind.String() == "store" {
			stores++
		}
	})
	m.Core(0).Write(1<<40, []byte{1})
	if stores != 1 {
		t.Fatalf("hook saw %d stores", stores)
	}
}

// TestExperimentSurface exercises the façade's experiment harness: the
// registry is visible, lookups work, and RunExperiment produces the
// same output bytes as the bench runner while honouring cancellation.
func TestExperimentSurface(t *testing.T) {
	if len(prestores.Experiments()) == 0 {
		t.Fatal("experiment registry empty")
	}
	if _, ok := prestores.LookupExperiment("listing3"); !ok {
		t.Fatal("listing3 not registered")
	}
	if _, ok := prestores.LookupExperiment("no-such"); ok {
		t.Fatal("bogus lookup succeeded")
	}
	if _, err := prestores.RunExperiment(context.Background(), nil, "no-such", true); err == nil {
		t.Fatal("RunExperiment accepted an unknown ID")
	}

	var sb strings.Builder
	res, err := prestores.RunExperiment(context.Background(), &sb, "listing3", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("listing3 failed: %s", res.Err)
	}
	if sb.String() != res.Output || res.Output == "" {
		t.Fatalf("streamed output (%d bytes) differs from captured result (%d bytes)",
			sb.Len(), len(res.Output))
	}

	// A pre-cancelled context stops the run before any simulation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = prestores.RunExperiment(ctx, nil, "listing3", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Err, "cancelled") {
		t.Fatalf("cancelled run reported %q", res.Err)
	}
}
