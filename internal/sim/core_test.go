package sim

import (
	"bytes"
	"testing"
	"testing/quick"

	"prestores/internal/xrand"
)

// pmemAddr returns an address inside Machine A's PMEM window.
func pmemAddr(off uint64) uint64 { return 1<<40 + off }

func TestReadAfterWrite(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	data := []byte("the quick brown fox jumps over the lazy dog")
	c.Write(pmemAddr(0), data)
	got := make([]byte, len(data))
	c.Read(pmemAddr(0), got)
	if !bytes.Equal(got, data) {
		t.Fatalf("read-after-write mismatch: %q", got)
	}
}

func TestZeroLengthReadIsFree(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	// Aligned and unaligned zero-byte reads: no line load, no cycles,
	// no load counted.
	for _, addr := range []uint64{pmemAddr(0), pmemAddr(13)} {
		before := c.Now()
		loads := c.Stats().Loads
		c.Read(addr, nil)
		c.Read(addr, []byte{})
		if c.Stats().Loads != loads {
			t.Fatalf("zero-length read at %#x counted %d loads",
				addr, c.Stats().Loads-loads)
		}
		if c.Now() != before {
			t.Fatalf("zero-length read at %#x cost %d cycles", addr, c.Now()-before)
		}
	}
	// A one-byte read still pays.
	var b [1]byte
	c.Read(pmemAddr(0), b[:])
	if c.Stats().Loads != 1 {
		t.Fatalf("1-byte read counted %d loads, want 1", c.Stats().Loads)
	}
}

func TestPrestoreOpStringOutOfRange(t *testing.T) {
	cases := map[PrestoreOp]string{
		Demote:         "demote",
		Clean:          "clean",
		PrestoreOp(2):  "PrestoreOp(2)",
		PrestoreOp(-1): "PrestoreOp(-1)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("PrestoreOp(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestReadAfterWriteQuick(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := pmemAddr(uint64(off))
		c.Write(addr, data)
		got := make([]byte, len(data))
		c.Read(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteNTDataIntegrity(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i * 3)
	}
	c.WriteNT(pmemAddr(4096), data)
	got := make([]byte, len(data))
	c.Read(pmemAddr(4096), got)
	if !bytes.Equal(got, data) {
		t.Fatal("NT write data lost")
	}
}

func TestMemsetMemcpy(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	c.Memset(pmemAddr(0), 300, 0x5A)
	c.Memcpy(pmemAddr(1000), pmemAddr(0), 300)
	got := make([]byte, 300)
	c.Read(pmemAddr(1000), got)
	for i, b := range got {
		if b != 0x5A {
			t.Fatalf("memcpy byte %d = %#x", i, b)
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	rng := xrand.New(4)
	prev := c.Now()
	for i := 0; i < 2000; i++ {
		switch rng.Intn(5) {
		case 0:
			c.Write(pmemAddr(rng.Uint64n(1<<20)), []byte{1, 2, 3})
		case 1:
			var b [8]byte
			c.Read(pmemAddr(rng.Uint64n(1<<20)), b[:])
		case 2:
			c.Fence()
		case 3:
			c.Prestore(pmemAddr(rng.Uint64n(1<<20)), 64, Clean)
		case 4:
			c.CAS(pmemAddr(rng.Uint64n(1<<20)&^7), 0, 1)
		}
		if now := c.Now(); now < prev {
			t.Fatalf("clock went backwards: %d -> %d", prev, now)
		} else {
			prev = now
		}
	}
}

func TestLazyFenceStallsMoreThanEager(t *testing.T) {
	measure := func(drain DrainMode) uint64 {
		cfg := ConfigB(MachineBConfig{FPGALatency: 200, FPGABandwidth: 10e9})
		cfg.Drain = drain
		m := NewMachine(cfg)
		c := m.Core(0)
		for i := uint64(0); i < 200; i++ {
			c.Memset(pmemAddr(i*128), 128, byte(i))
			// Independent work the eager drain can overlap with.
			c.Compute(400)
			c.Fence()
		}
		return uint64(c.Stats().FenceStall)
	}
	lazy, eager := measure(DrainLazy), measure(DrainEager)
	if lazy <= eager {
		t.Fatalf("lazy fence stall (%d) not greater than eager (%d)", lazy, eager)
	}
}

func TestDemoteReducesFenceStall(t *testing.T) {
	measure := func(demote bool) uint64 {
		m := MachineBSlow()
		c := m.Core(0)
		for i := uint64(0); i < 200; i++ {
			addr := pmemAddr(i * 128)
			c.Memset(addr, 128, byte(i))
			if demote {
				c.Prestore(addr, 128, Demote)
			}
			// Window shorter than the lazy drain age: without a
			// demote the store stays private until the fence.
			c.Compute(300)
			c.Fence()
		}
		return uint64(c.Stats().FenceStall)
	}
	base, dem := measure(false), measure(true)
	if dem >= base {
		t.Fatalf("demote did not reduce fence stalls: %d vs %d", dem, base)
	}
}

func TestCleanWritesBackAndKeepsCached(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	dev := m.Device(WindowPMEM)
	addr := pmemAddr(0)
	c.Write(addr, make([]byte, 64))
	c.Fence()
	before := dev.Stats().BytesReceived
	c.Prestore(addr, 64, Clean)
	c.Fence()
	if got := dev.Stats().BytesReceived; got != before+64 {
		t.Fatalf("clean pushed %d bytes, want 64", got-before)
	}
	if !c.L1().Contains(addr) {
		t.Fatal("clean evicted the line from L1 (must keep it cached)")
	}
	if c.L1().IsDirty(addr) {
		t.Fatal("line still dirty after clean")
	}
}

func TestCleanOfCleanLineIsFree(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	dev := m.Device(WindowPMEM)
	addr := pmemAddr(0)
	c.Write(addr, make([]byte, 64))
	c.Prestore(addr, 64, Clean)
	c.Fence()
	before := dev.Stats().BytesReceived
	c.Prestore(addr, 64, Clean) // second clean: nothing dirty
	c.Fence()
	if got := dev.Stats().BytesReceived; got != before {
		t.Fatalf("idempotent clean wrote %d bytes", got-before)
	}
}

func TestDemoteMovesToLLC(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	addr := pmemAddr(0)
	c.Write(addr, make([]byte, 64))
	c.Fence()
	if !c.L1().Contains(addr) {
		t.Fatal("setup: line not in L1")
	}
	c.Prestore(addr, 64, Demote)
	if c.L1().Contains(addr) {
		t.Fatal("demote left the line in L1")
	}
	if !m.LLC().Contains(addr) {
		t.Fatal("demote did not place the line in the LLC")
	}
	if !m.LLC().IsDirty(addr) {
		t.Fatal("demoted dirty line lost its dirty bit")
	}
}

func TestDemoteDoesNotWriteToMemory(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	dev := m.Device(WindowPMEM)
	addr := pmemAddr(0)
	c.Write(addr, make([]byte, 64))
	c.Fence()
	before := dev.Stats().BytesReceived
	c.Prestore(addr, 64, Demote)
	c.Fence()
	if got := dev.Stats().BytesReceived; got != before {
		t.Fatalf("demote wrote %d bytes to memory", got-before)
	}
}

func TestNTStoreBypassesCache(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	addr := pmemAddr(0)
	c.WriteNT(addr, make([]byte, 64))
	c.Fence()
	if c.L1().Contains(addr) || m.LLC().Contains(addr) {
		t.Fatal("NT store left the line cached")
	}
	if got := m.Device(WindowPMEM).Stats().BytesReceived; got != 64 {
		t.Fatalf("NT store sent %d bytes to the device", got)
	}
}

func TestNTStoreInvalidatesCachedCopy(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	addr := pmemAddr(0)
	c.Write(addr, []byte{1})
	c.Fence()
	c.WriteNT(addr, make([]byte, 64))
	if c.L1().Contains(addr) {
		t.Fatal("cached copy survived an NT store")
	}
}

func TestCASSemantics(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	addr := pmemAddr(0)
	c.WriteU64(addr, 5)
	c.Fence()
	if c.CAS(addr, 4, 9) {
		t.Fatal("CAS with wrong expected value succeeded")
	}
	if !c.CAS(addr, 5, 9) {
		t.Fatal("CAS with right expected value failed")
	}
	if got := c.ReadU64(addr); got != 9 {
		t.Fatalf("after CAS value = %d", got)
	}
}

func TestAtomicAdd(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	addr := pmemAddr(0)
	for i := uint64(1); i <= 10; i++ {
		if got := c.AtomicAdd(addr, 1); got != i {
			t.Fatalf("AtomicAdd #%d = %d", i, got)
		}
	}
}

func TestAtomicDrainsStoreBuffer(t *testing.T) {
	cfg := ConfigB(MachineBConfig{FPGALatency: 200, FPGABandwidth: 10e9})
	m := NewMachine(cfg)
	c := m.Core(0)
	c.Memset(pmemAddr(0), 1024, 1)
	before := c.Stats().FenceStall
	c.CAS(pmemAddr(8192), 0, 1)
	if c.Stats().FenceStall == before {
		t.Fatal("atomic did not wait for buffered stores")
	}
}

func TestStoreStallsOnInflightWriteback(t *testing.T) {
	// Rewriting a line whose clean is still in flight must wait —
	// Listing 3's pathology.
	m := MachineA()
	c := m.Core(0)
	addr := pmemAddr(0)
	for i := 0; i < 200; i++ {
		c.Memset(addr, 64, byte(i))
		c.Prestore(addr, 64, Clean)
	}
	perIter := float64(c.Now()) / 200
	if perIter < 50 {
		t.Fatalf("clean-rewrite loop too cheap: %.1f cyc/iter (no in-flight stall?)", perIter)
	}
}

func TestFunctionAnnotations(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	c.PushFunc("outer")
	c.PushFunc("inner")
	if got := c.CurrentFunc(); got != "inner" {
		t.Fatalf("CurrentFunc = %q", got)
	}
	chain := c.Callchain()
	if len(chain) != 2 || chain[0] != "outer" || chain[1] != "inner" {
		t.Fatalf("Callchain = %v", chain)
	}
	c.PopFunc()
	if got := c.CurrentFunc(); got != "outer" {
		t.Fatalf("after pop CurrentFunc = %q", got)
	}
	c.PopFunc()
	c.PopFunc() // extra pop is harmless
}

func TestHookSeesOps(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	var kinds []OpKind
	m.SetHook(func(ev Event, _ *Core) { kinds = append(kinds, ev.Kind) })
	c.Write(pmemAddr(0), []byte{1})
	var b [1]byte
	c.Read(pmemAddr(0), b[:])
	c.Fence()
	c.Prestore(pmemAddr(0), 64, Clean)
	m.SetHook(nil)
	c.Write(pmemAddr(64), []byte{1}) // not observed
	want := []OpKind{OpStore, OpLoad, OpFence, OpPrestoreClean}
	if len(kinds) != len(want) {
		t.Fatalf("hook saw %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", kinds, want)
		}
	}
}

func TestComputeAdvancesClockAndInstr(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	n0, i0 := c.Now(), c.Instructions()
	c.Compute(123)
	if c.Now()-n0 != 123 || c.Instructions()-i0 != 123 {
		t.Fatal("Compute accounting wrong")
	}
}

func TestSBForwarding(t *testing.T) {
	cfg := ConfigB(MachineBConfig{FPGALatency: 200, FPGABandwidth: 10e9})
	m := NewMachine(cfg) // lazy drain keeps the store buffered
	c := m.Core(0)
	c.Write(pmemAddr(0), []byte{42})
	var b [1]byte
	c.Read(pmemAddr(0), b[:])
	if b[0] != 42 {
		t.Fatal("forwarded wrong data")
	}
	if c.Stats().SBForwards == 0 {
		t.Fatal("load did not forward from the store buffer")
	}
}

func TestPrefetcherFillsNextLines(t *testing.T) {
	cfg := ConfigA()
	cfg.PrefetchDepth = 2
	m := NewMachine(cfg)
	c := m.Core(0)
	var b [8]byte
	c.Read(pmemAddr(0), b[:]) // demand miss
	if c.Stats().Prefetches != 2 {
		t.Fatalf("prefetches = %d, want 2", c.Stats().Prefetches)
	}
	if !m.LLC().Contains(pmemAddr(64)) || !m.LLC().Contains(pmemAddr(128)) {
		t.Fatal("next lines not prefetched into the LLC")
	}
	// The prefetched line must now be an LLC hit for another access.
	before := c.Stats().LoadMemFills
	c.Read(pmemAddr(64), b[:])
	if c.Stats().LoadMemFills != before {
		t.Fatal("prefetched line still missed to memory")
	}
}

func TestPrefetcherOffByDefault(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	var b [8]byte
	c.Read(pmemAddr(0), b[:])
	if c.Stats().Prefetches != 0 {
		t.Fatal("prefetcher active without configuration")
	}
}
