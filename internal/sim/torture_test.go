package sim

import (
	"testing"

	"prestores/internal/units"
	"prestores/internal/xrand"
)

// TestTortureRandomOps drives a machine with a long random operation
// stream across several cores and checks the global invariants the
// rest of the repository relies on:
//
//   - data read back always matches a reference model (per byte);
//   - core clocks never move backwards;
//   - instruction counters are monotonic;
//   - cache levels never exceed capacity;
//   - a final drain leaves no dirty private state behind a Flush.
func TestTortureRandomOps(t *testing.T) {
	for _, mk := range []struct {
		name string
		mk   func() *Machine
	}{
		{"machineA", MachineA},
		{"machineB", MachineBFast},
	} {
		mk := mk
		t.Run(mk.name, func(t *testing.T) {
			m := mk.mk()
			rng := xrand.New(0xf00d)
			const span = 1 << 22 // 4 MiB working window
			base := uint64(1) << 40
			ref := make([]byte, span)

			cores := []*Core{m.Core(0), m.Core(1), m.Core(2)}
			prevNow := make([]units.Cycles, len(cores))
			prevInstr := make([]uint64, len(cores))

			buf := make([]byte, 512)
			for step := 0; step < 30000; step++ {
				ci := rng.Intn(len(cores))
				c := cores[ci]
				off := rng.Uint64n(span - 512)
				n := rng.Uint64n(511) + 1
				switch rng.Intn(8) {
				case 0, 1, 2: // write
					for i := uint64(0); i < n; i++ {
						buf[i] = byte(rng.Uint32())
					}
					c.Write(base+off, buf[:n])
					copy(ref[off:], buf[:n])
				case 3: // NT write
					for i := uint64(0); i < n; i++ {
						buf[i] = byte(rng.Uint32())
					}
					c.WriteNT(base+off, buf[:n])
					copy(ref[off:], buf[:n])
				case 4, 5: // read + verify
					c.Read(base+off, buf[:n])
					for i := uint64(0); i < n; i++ {
						if buf[i] != ref[off+i] {
							t.Fatalf("step %d: byte %#x = %#x, want %#x",
								step, off+i, buf[i], ref[off+i])
						}
					}
				case 6: // pre-store
					op := Clean
					if rng.Uint32()%2 == 0 {
						op = Demote
					}
					c.Prestore(base+off, n, op)
				case 7: // ordering ops
					switch rng.Intn(3) {
					case 0:
						c.Fence()
					case 1:
						a := base + (off &^ 7)
						cur := m.Backing().ReadU64(a)
						c.CAS(a, cur, cur+1)
						var scratch [8]byte
						m.Backing().Read(a, scratch[:])
						copy(ref[off&^7:], scratch[:])
					case 2:
						c.Compute(rng.Uint64n(100))
					}
				}
				if now := c.Now(); now < prevNow[ci] {
					t.Fatalf("step %d: core %d clock went backwards", step, ci)
				} else {
					prevNow[ci] = now
				}
				if in := c.Instructions(); in < prevInstr[ci] {
					t.Fatalf("step %d: core %d instructions went backwards", step, ci)
				} else {
					prevInstr[ci] = in
				}
			}

			// Capacity invariants.
			for _, c := range cores {
				capacity := int(c.l1.Config().Size / c.l1.Config().LineSize)
				if v := c.l1.ValidLines(); v > capacity {
					t.Fatalf("L1 over capacity: %d > %d", v, capacity)
				}
			}
			llcCap := int(m.LLC().Config().Size / m.LLC().Config().LineSize)
			if v := m.LLC().ValidLines(); v > llcCap {
				t.Fatalf("LLC over capacity: %d > %d", v, llcCap)
			}

			// Flush leaves nothing dirty, and the data still matches.
			m.FlushCaches()
			dirty := 0
			for _, c := range cores {
				c.l1.DirtyLines(func(uint64) { dirty++ })
			}
			m.LLC().DirtyLines(func(uint64) { dirty++ })
			if dirty != 0 {
				t.Fatalf("%d dirty lines after FlushCaches", dirty)
			}
			final := make([]byte, span)
			m.Backing().Read(base, final)
			for i := range final {
				if final[i] != ref[i] {
					t.Fatalf("final byte %#x = %#x, want %#x", i, final[i], ref[i])
				}
			}
		})
	}
}

// TestTortureDeterminism re-runs an identical random stream and demands
// cycle-identical machines.
func TestTortureDeterminism(t *testing.T) {
	run := func() units.Cycles {
		m := MachineA()
		rng := xrand.New(0xcafe)
		c := m.Core(0)
		buf := make([]byte, 256)
		for step := 0; step < 20000; step++ {
			off := rng.Uint64n(1 << 22)
			switch rng.Intn(4) {
			case 0, 1:
				c.Write(1<<40+off, buf)
			case 2:
				c.Read(1<<40+off, buf)
			case 3:
				c.Prestore(1<<40+off, 256, Clean)
			}
		}
		m.Drain()
		return c.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical streams diverged: %d vs %d", a, b)
	}
}
