package sim

import (
	"bytes"
	"strings"
	"testing"

	"prestores/internal/xrand"
)

// snapStep drives one random operation against a random core, returning
// a small fingerprint of everything observable about the op: which core
// ran, its clock and instruction counter afterwards, and the data a
// read returned. Identical fingerprints step for step are the proof
// that a restored machine is indistinguishable from the original.
func snapStep(m *Machine, rng *xrand.PCG, buf []byte) [4]uint64 {
	const span = 1 << 21
	base := uint64(1) << 40
	ci := rng.Intn(3)
	c := m.Core(ci)
	off := rng.Uint64n(span - 512)
	n := rng.Uint64n(511) + 1
	var dataSum uint64
	switch rng.Intn(8) {
	case 0, 1, 2:
		for i := uint64(0); i < n; i++ {
			buf[i] = byte(rng.Uint32())
		}
		c.Write(base+off, buf[:n])
	case 3:
		for i := uint64(0); i < n; i++ {
			buf[i] = byte(rng.Uint32())
		}
		c.WriteNT(base+off, buf[:n])
	case 4, 5:
		c.Read(base+off, buf[:n])
		for i := uint64(0); i < n; i++ {
			dataSum = dataSum*1099511628211 + uint64(buf[i])
		}
	case 6:
		op := Clean
		if rng.Uint32()%2 == 0 {
			op = Demote
		}
		c.Prestore(base+off, n, op)
	case 7:
		switch rng.Intn(3) {
		case 0:
			c.Fence()
		case 1:
			a := base + (off &^ 7)
			cur := m.Backing().ReadU64(a)
			c.CAS(a, cur, cur+1)
		case 2:
			c.Compute(rng.Uint64n(100))
		}
	}
	return [4]uint64{uint64(ci), c.Now(), c.Instructions(), dataSum}
}

// TestSnapshotRestoreEquivalence is the restore-equivalence bar from
// the checkpoint design: run a machine mid-experiment, snapshot it,
// keep running and record every subsequent op; then restore the
// snapshot into a fresh machine and demand the identical op-for-op
// trace — same clocks, same instruction counts, same read data — and
// identical final state.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for _, mk := range []struct {
		name string
		mk   func() *Machine
	}{
		{"machineA", MachineA},
		{"machineB", MachineBFast},
	} {
		mk := mk
		t.Run(mk.name, func(t *testing.T) {
			const prefix, suffix = 6000, 3000

			m1 := mk.mk()
			rng := xrand.New(0xdecaf)
			buf := make([]byte, 512)
			for i := 0; i < prefix; i++ {
				snapStep(m1, rng, buf)
			}
			snapData, err := m1.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			rngState, rngInc := rng.State()

			trace1 := make([][4]uint64, suffix)
			for i := 0; i < suffix; i++ {
				trace1[i] = snapStep(m1, rng, buf)
			}
			m1.Drain()

			m2 := mk.mk()
			if err := m2.RestoreSnapshot(snapData); err != nil {
				t.Fatalf("RestoreSnapshot: %v", err)
			}
			// A snapshot of the freshly restored machine must reproduce
			// the original bytes: restore is lossless and the encoding is
			// canonical.
			resnap, err := m2.Snapshot()
			if err != nil {
				t.Fatalf("re-Snapshot: %v", err)
			}
			if !bytes.Equal(resnap, snapData) {
				t.Fatalf("snapshot of restored machine differs from original (%d vs %d bytes)",
					len(resnap), len(snapData))
			}

			rng2 := xrand.New(1)
			rng2.SetState(rngState, rngInc)
			buf2 := make([]byte, 512)
			for i := 0; i < suffix; i++ {
				if got := snapStep(m2, rng2, buf2); got != trace1[i] {
					t.Fatalf("suffix op %d diverged: restored %v, original %v", i, got, trace1[i])
				}
			}
			m2.Drain()

			for ci := 0; ci < m1.Cores(); ci++ {
				c1, c2 := m1.Core(ci), m2.Core(ci)
				if c1.Now() != c2.Now() {
					t.Errorf("core %d clock: original %d, restored %d", ci, c1.Now(), c2.Now())
				}
				if c1.Stats() != c2.Stats() {
					t.Errorf("core %d stats diverged:\n%+v\n%+v", ci, c1.Stats(), c2.Stats())
				}
				if c1.L1().Stats() != c2.L1().Stats() {
					t.Errorf("core %d L1 stats diverged", ci)
				}
			}
			if m1.LLC().Stats() != m2.LLC().Stats() {
				t.Errorf("LLC stats diverged")
			}
			if m1.Directory().Stats() != m2.Directory().Stats() {
				t.Errorf("directory stats diverged")
			}
			for _, w := range m1.Config().Windows {
				d2 := m2.Device(w.Name)
				if w.Device.Stats() != d2.Stats() {
					t.Errorf("device %q stats diverged:\n%+v\n%+v", w.Name, w.Device.Stats(), d2.Stats())
				}
			}
			final1 := make([]byte, 1<<21)
			final2 := make([]byte, 1<<21)
			m1.Backing().Read(1<<40, final1)
			m2.Backing().Read(1<<40, final2)
			if !bytes.Equal(final1, final2) {
				t.Errorf("backing memory diverged after suffix")
			}
		})
	}
}

// TestSnapshotConfigMismatch demands that restoring onto a machine with
// a different configuration fails loudly, before any state is applied.
func TestSnapshotConfigMismatch(t *testing.T) {
	m := MachineA()
	data, err := m.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	other := MachineBFast()
	err = other.RestoreSnapshot(data)
	if err == nil {
		t.Fatal("restore onto mismatched config succeeded, want error")
	}
	if !strings.Contains(err.Error(), "config hash") {
		t.Fatalf("error %q does not mention the config hash", err)
	}
}

// TestSnapshotCorruptPayload checks the decoder fails loudly on
// garbage, truncation and version skew instead of misreading state.
func TestSnapshotCorruptPayload(t *testing.T) {
	m := MachineA()
	data, err := m.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := MachineA().RestoreSnapshot(data[:len(data)/2]); err == nil {
		t.Error("truncated snapshot restored without error")
	}
	if err := MachineA().RestoreSnapshot([]byte("XXXXgarbage")); err == nil {
		t.Error("garbage restored without error")
	}
	bad := append([]byte(nil), data...)
	bad[5] = 99 // version field (little-endian u64 after 4-byte magic)
	if err := MachineA().RestoreSnapshot(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version skew error = %v, want version mismatch", err)
	}
}

// TestCheckpointCodec round-trips the envelope and rejects corrupt ones.
func TestCheckpointCodec(t *testing.T) {
	m := MachineA()
	m.Core(0).Write(1<<40, []byte("hello"))
	ck, err := m.NewCheckpoint("build-123", []byte("annex-bytes"))
	if err != nil {
		t.Fatalf("NewCheckpoint: %v", err)
	}
	enc := ck.Encode()
	dec, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if dec.Build != "build-123" || string(dec.Annex) != "annex-bytes" {
		t.Fatalf("round trip lost fields: %+v", dec)
	}
	if dec.ConfigHash != m.ConfigHash() {
		t.Fatalf("config hash %q, want %q", dec.ConfigHash, m.ConfigHash())
	}
	m2 := MachineA()
	if err := dec.Restore(m2); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	got := make([]byte, 5)
	m2.Backing().Read(1<<40, got)
	if string(got) != "hello" {
		t.Fatalf("restored memory %q, want %q", got, "hello")
	}

	if _, err := DecodeCheckpoint(enc[:10]); err == nil {
		t.Error("truncated checkpoint decoded without error")
	}
	if _, err := DecodeCheckpoint([]byte("NOPE....")); err == nil {
		t.Error("bad magic decoded without error")
	}
	if _, err := DecodeCheckpoint(append(enc, 0)); err == nil {
		t.Error("trailing bytes decoded without error")
	}
}

// TestSnapshotDeterministicEncoding: two machines driven through the
// same history serialize to identical bytes, which is what lets the
// checkpoint store share snapshots across grid points by key alone.
func TestSnapshotDeterministicEncoding(t *testing.T) {
	run := func() []byte {
		m := MachineA()
		rng := xrand.New(0xabcd)
		buf := make([]byte, 512)
		for i := 0; i < 4000; i++ {
			snapStep(m, rng, buf)
		}
		data, err := m.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		return data
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("identical histories produced different snapshots")
	}
}

// TestOpsCounter: machines attached to different counters report
// disjoint totals — the per-run accounting the bench harness relies on
// under -parallel.
func TestOpsCounter(t *testing.T) {
	var a, b OpsCounter
	ma := MachineA()
	ma.SetOpsSink(&a)
	mb := MachineA()
	mb.SetOpsSink(&b)
	ma.Core(0).Write(1<<40, make([]byte, 4096))
	mb.Core(0).Write(1<<40, make([]byte, 64))
	ma.Drain()
	mb.Drain()
	if a.Total() == 0 || b.Total() == 0 {
		t.Fatalf("counters empty: a=%d b=%d", a.Total(), b.Total())
	}
	if a.Total() == b.Total() {
		t.Fatalf("distinct workloads reported equal totals %d", a.Total())
	}
	sum := func(m *Machine) (n uint64) {
		for i := 0; i < m.Cores(); i++ {
			n += m.Core(i).Instructions()
		}
		return n
	}
	if wantA, wantB := sum(ma), sum(mb); a.Total() != wantA || b.Total() != wantB {
		t.Fatalf("counter totals a=%d b=%d, want %d and %d", a.Total(), b.Total(), wantA, wantB)
	}
}

// TestRestoredOpsAccounting: restoring a snapshot must not re-credit
// the producing run's instructions to this process's counters.
func TestRestoredOpsAccounting(t *testing.T) {
	m1 := MachineA()
	m1.Core(0).Write(1<<40, make([]byte, 4096))
	m1.Drain()
	data, err := m1.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	sum := func(m *Machine) (n uint64) {
		for i := 0; i < m.Cores(); i++ {
			n += m.Core(i).Instructions()
		}
		return n
	}

	var ops OpsCounter
	m2 := MachineA()
	m2.SetOpsSink(&ops)
	if err := m2.RestoreSnapshot(data); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	// Only ops retired after the restore may be counted — the restored
	// warmup instructions (sum(m2) at this point) belong to the run that
	// produced the snapshot. Drain itself retires a fence per core.
	atRestore := sum(m2)
	m2.Core(0).Write(1<<40, make([]byte, 64))
	m2.Drain()
	if got, want := ops.Total(), sum(m2)-atRestore; got != want {
		t.Fatalf("run counter credited %d ops, want %d (post-restore only)", got, want)
	}
	if ops.Total() >= sum(m2) {
		t.Fatal("run counter includes the restored warmup instructions")
	}
}
