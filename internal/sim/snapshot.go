package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"prestores/internal/memdev"
	"prestores/internal/snap"
)

// Snapshot format constants. The snapshot version covers the machine
// payload layout; the checkpoint version covers the outer envelope.
const (
	snapshotMagic   = "PSSN"
	snapshotVersion = 1

	checkpointMagic   = "PSCK"
	checkpointVersion = 1
)

// ConfigHash returns the SHA-256 (hex) of the machine configuration's
// canonical JSON encoding. Two machines with equal hashes are
// structurally identical — same cores, cache geometries, policies,
// seeds, windows and device parameters — so a snapshot taken on one
// restores exactly onto the other.
func (m *Machine) ConfigHash() string {
	data, err := json.Marshal(m.cfg)
	if err != nil {
		// The config came out of a successfully constructed machine;
		// failing to re-encode it is a programming error, not input.
		panic(fmt.Sprintf("sim: config hash: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Snapshot serializes all mutable machine state deterministically:
// per-core clocks, stats, private caches, store buffers and
// write-combining buffers; the shared LLC; the coherence directory; the
// write-back queue; the backing store's pages; and every window
// device's internal state. Two machines in identical states always
// produce identical bytes. The arena and configuration are not
// captured — a restore target is built by re-running the same
// deterministic construction (NewMachine plus the workload's Alloc
// calls), which reproduces them exactly.
//
// It returns an error if any window device does not support state
// snapshots.
func (m *Machine) Snapshot() ([]byte, error) {
	w := snap.NewWriter()
	w.Raw([]byte(snapshotMagic))
	w.U64(snapshotVersion)
	w.String(m.ConfigHash())
	w.Section("MACH")
	w.U64(uint64(len(m.cores)))
	for _, c := range m.cores {
		c.snapshotState(w)
	}
	m.llc.SnapshotState(w)
	m.dir.SnapshotState(w)
	m.wbq.snapshotState(w)
	m.backing.SnapshotState(w)
	w.U64(uint64(len(m.cfg.Windows)))
	for _, win := range m.cfg.Windows {
		ss, ok := win.Device.(memdev.StateSnapshotter)
		if !ok {
			return nil, fmt.Errorf("sim: device %q (%T) does not support state snapshots", win.Name, win.Device)
		}
		w.String(win.Name)
		ss.SnapshotState(w)
	}
	return w.Finish(), nil
}

// RestoreSnapshot overwrites the machine's mutable state with a
// snapshot produced by Snapshot on an identically-configured machine.
// The payload's config hash is checked against this machine's before
// any state is touched; a mismatch fails loudly. After a successful
// restore, every subsequent operation behaves — cycle for cycle,
// byte for byte — as it would have on the machine the snapshot was
// taken from.
//
// On a decode error partway through, the machine's state is undefined;
// callers must discard it.
func (m *Machine) RestoreSnapshot(data []byte) error {
	r := snap.NewReader(data)
	var magic [4]byte
	r.Raw(magic[:])
	if r.Err() == nil && string(magic[:]) != snapshotMagic {
		return fmt.Errorf("sim: not a machine snapshot (magic %q)", magic)
	}
	if v := r.U64(); r.Err() == nil && v != snapshotVersion {
		return fmt.Errorf("sim: unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	want := m.ConfigHash()
	if got := r.String(); r.Err() == nil && got != want {
		return fmt.Errorf("sim: snapshot config hash %.12s… does not match machine %.12s…", got, want)
	}
	if err := r.Err(); err != nil {
		return err
	}
	r.Section("MACH")
	if n := r.U64(); r.Err() == nil && n != uint64(len(m.cores)) {
		return fmt.Errorf("sim: snapshot has %d cores, machine has %d", n, len(m.cores))
	}
	for _, c := range m.cores {
		if err := c.restoreState(r); err != nil {
			return err
		}
	}
	if err := m.llc.RestoreState(r); err != nil {
		return err
	}
	if err := m.dir.RestoreState(r); err != nil {
		return err
	}
	if err := m.wbq.restoreState(r); err != nil {
		return err
	}
	if err := m.backing.RestoreState(r); err != nil {
		return err
	}
	if n := r.U64(); r.Err() == nil && n != uint64(len(m.cfg.Windows)) {
		return fmt.Errorf("sim: snapshot has %d windows, machine has %d", n, len(m.cfg.Windows))
	}
	for _, win := range m.cfg.Windows {
		name := r.String()
		if r.Err() == nil && name != win.Name {
			return fmt.Errorf("sim: snapshot window %q does not match machine window %q", name, win.Name)
		}
		ss, ok := win.Device.(memdev.StateSnapshotter)
		if !ok {
			return fmt.Errorf("sim: device %q (%T) does not support state snapshots", win.Name, win.Device)
		}
		if err := ss.RestoreState(r); err != nil {
			return err
		}
	}
	// The restored instruction counts were retired by the run that
	// produced the snapshot; marking them flushed keeps them out of this
	// process's throughput counters, so a warm-forked run reports only
	// the work it actually simulated.
	var total uint64
	for _, c := range m.cores {
		total += c.instr
	}
	m.opsFlushed = total
	m.lastWin = 0
	return r.Done()
}

// snapshotState serializes the core's mutable state. Live store-buffer
// entries are written with sbBase and restored at sbHead 0; because
// drains advance head and base together, a live entry's sequence number
// (and therefore every sbIndex key, present and future) is identical
// before and after the round trip.
func (c *Core) snapshotState(w *snap.Writer) {
	w.Section("CORE")
	w.U64(c.now)
	w.U64(c.instr)
	c.l1.SnapshotState(w)
	w.Bool(c.l2 != nil)
	if c.l2 != nil {
		c.l2.SnapshotState(w)
	}
	live := c.sb[c.sbHead:]
	w.U64(uint64(len(live)))
	for i := range live {
		e := &live[i]
		w.U64(e.line)
		w.Bool(e.started)
		w.Bool(e.cleaned)
		w.U64(e.issued)
		w.U64(e.readyAt)
	}
	w.U64(c.sbBase)
	for _, t := range c.drainSlots {
		w.U64(t)
	}
	for _, t := range c.loadSlots {
		w.U64(t)
	}
	w.U64(uint64(len(c.wc)))
	for _, e := range c.wc {
		w.U64(e.line)
		w.U64(e.mask)
	}
	w.U64(c.cleanBarrier)
	w.U64(uint64(len(c.fnStack)))
	for _, s := range c.fnStack {
		w.String(s)
	}
	w.U64(c.stats.Loads)
	w.U64(c.stats.Stores)
	w.U64(c.stats.NTStores)
	w.U64(c.stats.Fences)
	w.U64(c.stats.Atomics)
	w.U64(c.stats.Prestores)
	w.U64(c.stats.LoadL1Hits)
	w.U64(c.stats.LoadL2Hits)
	w.U64(c.stats.LoadLLCHits)
	w.U64(c.stats.LoadMemFills)
	w.U64(c.stats.SBForwards)
	w.U64(c.stats.Prefetches)
	w.U64(c.stats.FenceStall)
	w.U64(c.stats.SBStall)
	// scratch is a Memcpy bounce buffer, dead between calls; not state.
}

// restoreState overwrites the core's mutable state from r.
func (c *Core) restoreState(r *snap.Reader) error {
	r.Section("CORE")
	c.now = r.U64()
	c.instr = r.U64()
	if err := c.l1.RestoreState(r); err != nil {
		return err
	}
	hasL2 := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasL2 != (c.l2 != nil) {
		return fmt.Errorf("sim: core %d: snapshot L2 presence does not match machine", c.id)
	}
	if c.l2 != nil {
		if err := c.l2.RestoreState(r); err != nil {
			return err
		}
	}
	n := r.U64()
	c.sb = c.sb[:0]
	c.sbHead = 0
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		c.sb = append(c.sb, sbEntry{
			line:    r.U64(),
			started: r.Bool(),
			cleaned: r.Bool(),
			issued:  r.U64(),
			readyAt: r.U64(),
		})
	}
	c.sbBase = r.U64()
	c.sbRebuildIndex()
	for i := range c.drainSlots {
		c.drainSlots[i] = r.U64()
	}
	for i := range c.loadSlots {
		c.loadSlots[i] = r.U64()
	}
	nwc := r.U64()
	c.wc = c.wc[:0]
	for i := uint64(0); i < nwc && r.Err() == nil; i++ {
		c.wc = append(c.wc, wcEntry{line: r.U64(), mask: r.U64()})
	}
	c.cleanBarrier = r.U64()
	nfn := r.U64()
	c.fnStack = c.fnStack[:0]
	for i := uint64(0); i < nfn && r.Err() == nil; i++ {
		c.fnStack = append(c.fnStack, r.String())
	}
	c.stats.Loads = r.U64()
	c.stats.Stores = r.U64()
	c.stats.NTStores = r.U64()
	c.stats.Fences = r.U64()
	c.stats.Atomics = r.U64()
	c.stats.Prestores = r.U64()
	c.stats.LoadL1Hits = r.U64()
	c.stats.LoadL2Hits = r.U64()
	c.stats.LoadLLCHits = r.U64()
	c.stats.LoadMemFills = r.U64()
	c.stats.SBForwards = r.U64()
	c.stats.Prefetches = r.U64()
	c.stats.FenceStall = r.U64()
	c.stats.SBStall = r.U64()
	return r.Err()
}

// snapshotState serializes the write-back queue. In-flight entries are
// written sorted by line address, independent of the flat map's slot
// layout; the expiry sweep in track collects all expired keys in one
// Range pass, so rebuild order cannot influence timing.
func (q *wbQueue) snapshotState(w *snap.Writer) {
	w.Section("WBQ_")
	w.U64(uint64(len(q.pending)))
	for _, t := range q.pending {
		w.U64(t)
	}
	keys := make([]uint64, 0, q.inflight.Len())
	q.inflight.Range(func(k uint64, _ uint64) bool {
		keys = append(keys, k)
		return true
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		t, _ := q.inflight.Get(k)
		w.U64(k)
		w.U64(t)
	}
	w.U64(q.stalls)
}

// restoreState overwrites the write-back queue's state from r.
func (q *wbQueue) restoreState(r *snap.Reader) error {
	r.Section("WBQ_")
	n := r.U64()
	q.pending = q.pending[:0]
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		q.pending = append(q.pending, r.U64())
	}
	q.inflight.Clear()
	ni := r.U64()
	for i := uint64(0); i < ni && r.Err() == nil; i++ {
		k := r.U64()
		q.inflight.Put(k, r.U64())
	}
	q.stalls = r.U64()
	return r.Err()
}

// Checkpoint packages a machine snapshot with its provenance and an
// opaque workload annex (host-side state such as allocator cursors that
// lives outside the simulated memory). Checkpoints are what the warm-
// state forking layers store and exchange.
type Checkpoint struct {
	// Build is the producing build's version string. Consumers reject
	// checkpoints from other builds: simulator behaviour may have
	// changed, and a stale warm state would silently skew results.
	Build string
	// ConfigHash is the producing machine's ConfigHash, duplicated from
	// the machine payload so stores can filter without decoding it.
	ConfigHash string
	// Machine is the Machine.Snapshot payload.
	Machine []byte
	// Annex carries workload host-state, opaque to the sim layer.
	Annex []byte
}

// NewCheckpoint snapshots m and wraps it with provenance and the given
// workload annex.
func (m *Machine) NewCheckpoint(build string, annex []byte) (*Checkpoint, error) {
	data, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Checkpoint{Build: build, ConfigHash: m.ConfigHash(), Machine: data, Annex: annex}, nil
}

// Encode serializes the checkpoint.
func (c *Checkpoint) Encode() []byte {
	w := snap.NewWriter()
	w.Raw([]byte(checkpointMagic))
	w.U64(checkpointVersion)
	w.String(c.Build)
	w.String(c.ConfigHash)
	w.Bytes(c.Machine)
	w.Bytes(c.Annex)
	return w.Finish()
}

// DecodeCheckpoint parses a checkpoint envelope. The machine payload is
// not validated here; Restore does that against a concrete machine.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	r := snap.NewReader(data)
	var magic [4]byte
	r.Raw(magic[:])
	if r.Err() == nil && string(magic[:]) != checkpointMagic {
		return nil, fmt.Errorf("sim: not a checkpoint (magic %q)", magic)
	}
	if v := r.U64(); r.Err() == nil && v != checkpointVersion {
		return nil, fmt.Errorf("sim: unsupported checkpoint version %d (want %d)", v, checkpointVersion)
	}
	c := &Checkpoint{Build: r.String(), ConfigHash: r.String()}
	c.Machine = append([]byte(nil), r.Bytes()...)
	c.Annex = append([]byte(nil), r.Bytes()...)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// Restore applies the checkpoint's machine payload to m. The payload's
// config hash is verified against m before any state changes; on a
// decode error partway through, m is undefined and must be discarded.
func (c *Checkpoint) Restore(m *Machine) error {
	return m.RestoreSnapshot(c.Machine)
}
