package sim

import "prestores/internal/units"

// RunInterleaved executes iters iterations of body on each of the given
// cores, round-robin one iteration at a time. This cooperative
// interleaving is the simulator's model of concurrent threads: it mixes
// the cores' access streams at the shared LLC the way hardware
// multi-threading does (which is what degrades eviction sequentiality,
// §4.1), while keeping the simulation deterministic.
//
// body receives (thread index, iteration, core).
func RunInterleaved(cores []*Core, iters int, body func(t, i int, c *Core)) {
	for i := 0; i < iters; i++ {
		for t, c := range cores {
			body(t, i, c)
		}
	}
}

// Elapsed measures the simulated wall-clock of fn across the given
// cores: all cores are first synchronized, fn runs, and the result is
// the maximum per-core cycle advance.
func Elapsed(m *Machine, cores []*Core, fn func()) units.Cycles {
	m.SyncCores()
	start := m.MaxCycles()
	fn()
	var end units.Cycles
	for _, c := range cores {
		if c.now > end {
			end = c.now
		}
	}
	return end - start
}

// ElapsedAll is Elapsed over every core of the machine.
func ElapsedAll(m *Machine, fn func()) units.Cycles {
	return Elapsed(m, m.cores, fn)
}
