package sim

import (
	"encoding/json"
	"fmt"

	"prestores/internal/cache"
	"prestores/internal/memdev"
	"prestores/internal/units"
)

// This file gives Config a declarative form: JSON marshal/unmarshal
// (devices serialized through memdev.Spec), deterministic field-path
// validation, and a registry of named machine presets. It is the
// bridge the scenario layer (internal/scenario) uses so that the
// paper's machines and fully custom hierarchies travel the same path.

// cacheJSON mirrors cache.Config with the replacement policy as a
// string (cache.Policy.String / cache.ParsePolicy).
type cacheJSON struct {
	Name      string  `json:"name,omitempty"`
	Size      uint64  `json:"size,omitempty"`
	Ways      int     `json:"ways,omitempty"`
	LineSize  uint64  `json:"line_size,omitempty"`
	Policy    string  `json:"policy,omitempty"`
	RandomMix float64 `json:"random_mix,omitempty"`
	HashSets  bool    `json:"hash_sets,omitempty"`
	HitLat    uint64  `json:"hit_lat,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
}

func cacheToJSON(c cache.Config) cacheJSON {
	j := cacheJSON{
		Name: c.Name, Size: c.Size, Ways: c.Ways, LineSize: c.LineSize,
		RandomMix: c.RandomMix, HashSets: c.HashSets, HitLat: c.HitLat, Seed: c.Seed,
	}
	if c.Policy != 0 {
		j.Policy = c.Policy.String()
	}
	return j
}

func cacheFromJSON(level string, j cacheJSON) (cache.Config, error) {
	c := cache.Config{
		Name: j.Name, Size: j.Size, Ways: j.Ways, LineSize: j.LineSize,
		RandomMix: j.RandomMix, HashSets: j.HashSets, HitLat: j.HitLat, Seed: j.Seed,
	}
	if j.Policy != "" {
		p, err := cache.ParsePolicy(j.Policy)
		if err != nil {
			return c, fmt.Errorf("%s.policy: %v", level, err)
		}
		c.Policy = p
	}
	return c, nil
}

// windowJSON mirrors WindowSpec with the device as a memdev.Spec.
type windowJSON struct {
	Name   string      `json:"name"`
	Base   uint64      `json:"base"`
	Size   uint64      `json:"size"`
	Device memdev.Spec `json:"device"`
}

// configJSON is the wire form of Config.
type configJSON struct {
	Name          string       `json:"name,omitempty"`
	ClockHz       uint64       `json:"clock_hz,omitempty"`
	Cores         int          `json:"cores,omitempty"`
	LineSize      uint64       `json:"line_size,omitempty"`
	L1            cacheJSON    `json:"l1,omitempty"`
	L2            cacheJSON    `json:"l2,omitempty"`
	LLC           cacheJSON    `json:"llc,omitempty"`
	Drain         string       `json:"drain,omitempty"`
	LazyDrainAge  uint64       `json:"lazy_drain_age,omitempty"`
	SBEntries     int          `json:"sb_entries,omitempty"`
	MLP           int          `json:"mlp,omitempty"`
	WCEntries     int          `json:"wc_entries,omitempty"`
	WBQueueCap    int          `json:"wb_queue_cap,omitempty"`
	DirOnDevice   bool         `json:"dir_on_device,omitempty"`
	CleanToPOU    bool         `json:"clean_to_pou,omitempty"`
	PrefetchDepth int          `json:"prefetch_depth,omitempty"`
	Windows       []windowJSON `json:"windows"`
	Seed          uint64       `json:"seed,omitempty"`
}

// MarshalJSON serializes the Config, describing each window's device
// through memdev.Describe. Devices that are not registered memdev
// kinds (wrappers, test fakes) are not serializable.
func (c Config) MarshalJSON() ([]byte, error) {
	j := configJSON{
		Name:          c.Name,
		ClockHz:       uint64(c.Clock),
		Cores:         c.Cores,
		LineSize:      c.LineSize,
		L1:            cacheToJSON(c.L1),
		L2:            cacheToJSON(c.L2),
		LLC:           cacheToJSON(c.LLC),
		LazyDrainAge:  c.LazyDrainAge,
		SBEntries:     c.SBEntries,
		MLP:           c.MLP,
		WCEntries:     c.WCEntries,
		WBQueueCap:    c.WBQueueCap,
		DirOnDevice:   c.DirOnDevice,
		CleanToPOU:    c.CleanToPOU,
		PrefetchDepth: c.PrefetchDepth,
		Seed:          c.Seed,
	}
	if c.Drain != DrainEager {
		j.Drain = c.Drain.String()
	}
	for i, w := range c.Windows {
		spec, ok := memdev.Describe(w.Device)
		if !ok {
			return nil, fmt.Errorf("windows[%d].device: not a registered device kind", i)
		}
		j.Windows = append(j.Windows, windowJSON{Name: w.Name, Base: w.Base, Size: w.Size, Device: spec})
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a Config, building each window's device from
// its memdev.Spec. Errors name the offending field path.
func (c *Config) UnmarshalJSON(data []byte) error {
	var j configJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	out := Config{
		Name:          j.Name,
		Clock:         units.Hz(j.ClockHz),
		Cores:         j.Cores,
		LineSize:      j.LineSize,
		LazyDrainAge:  j.LazyDrainAge,
		SBEntries:     j.SBEntries,
		MLP:           j.MLP,
		WCEntries:     j.WCEntries,
		WBQueueCap:    j.WBQueueCap,
		DirOnDevice:   j.DirOnDevice,
		CleanToPOU:    j.CleanToPOU,
		PrefetchDepth: j.PrefetchDepth,
		Seed:          j.Seed,
	}
	var err error
	if out.L1, err = cacheFromJSON("l1", j.L1); err != nil {
		return err
	}
	if out.L2, err = cacheFromJSON("l2", j.L2); err != nil {
		return err
	}
	if out.LLC, err = cacheFromJSON("llc", j.LLC); err != nil {
		return err
	}
	switch j.Drain {
	case "", "eager":
		out.Drain = DrainEager
	case "lazy":
		out.Drain = DrainLazy
	default:
		return fmt.Errorf("drain: unknown drain mode %q (one of [eager lazy])", j.Drain)
	}
	for i, w := range j.Windows {
		dev, berr := w.Device.Build()
		if berr != nil {
			return fmt.Errorf("windows[%d].device.%v", i, berr)
		}
		out.Windows = append(out.Windows, WindowSpec{Name: w.Name, Base: w.Base, Size: w.Size, Device: dev})
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*c = out
	return nil
}

func validateCacheConfig(level string, c cache.Config) error {
	if c.Size == 0 {
		return nil // level disabled
	}
	if c.Ways <= 0 {
		return fmt.Errorf("%s.ways: must be positive when size is set (got %d)", level, c.Ways)
	}
	line := c.LineSize
	if line == 0 {
		line = 64
	}
	if line&(line-1) != 0 {
		return fmt.Errorf("%s.line_size: must be a power of two (got %d)", level, line)
	}
	if c.Size%(uint64(c.Ways)*line) != 0 {
		return fmt.Errorf("%s.size: must be a multiple of ways*line_size (got %d with %d ways of %d B lines)",
			level, c.Size, c.Ways, line)
	}
	if c.RandomMix < 0 || c.RandomMix > 1 {
		return fmt.Errorf("%s.random_mix: must be in [0,1] (got %g)", level, c.RandomMix)
	}
	return nil
}

// Validate checks a Config for structural problems fillDefaults cannot
// repair. Error strings are deterministic and name the offending field
// path (e.g. "windows[1].size: must be positive").
func (c Config) Validate() error {
	if c.Cores < 0 {
		return fmt.Errorf("cores: must be non-negative (got %d)", c.Cores)
	}
	if c.LineSize != 0 && c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("line_size: must be a power of two (got %d)", c.LineSize)
	}
	for _, lv := range []struct {
		name string
		cfg  cache.Config
	}{{"l1", c.L1}, {"l2", c.L2}, {"llc", c.LLC}} {
		if err := validateCacheConfig(lv.name, lv.cfg); err != nil {
			return err
		}
	}
	for _, n := range []struct {
		name string
		v    int
	}{
		{"sb_entries", c.SBEntries}, {"mlp", c.MLP}, {"wc_entries", c.WCEntries},
		{"wb_queue_cap", c.WBQueueCap}, {"prefetch_depth", c.PrefetchDepth},
	} {
		if n.v < 0 {
			return fmt.Errorf("%s: must be non-negative (got %d)", n.name, n.v)
		}
	}
	if len(c.Windows) == 0 {
		return fmt.Errorf("windows: at least one window is required")
	}
	for i, w := range c.Windows {
		if w.Name == "" {
			return fmt.Errorf("windows[%d].name: required", i)
		}
		if w.Size == 0 {
			return fmt.Errorf("windows[%d].size: must be positive", i)
		}
		if w.Base+w.Size < w.Base {
			return fmt.Errorf("windows[%d]: base+size overflows the address space", i)
		}
		if w.Device == nil {
			return fmt.Errorf("windows[%d].device: required", i)
		}
		for j := 0; j < i; j++ {
			prev := c.Windows[j]
			if w.Name == prev.Name {
				return fmt.Errorf("windows[%d].name: duplicates windows[%d] (%q)", i, j, w.Name)
			}
			if w.Base < prev.Base+prev.Size && prev.Base < w.Base+w.Size {
				return fmt.Errorf("windows[%d]: address range overlaps windows[%d]", i, j)
			}
		}
	}
	return nil
}

// Preset is a named machine configuration in the preset registry.
type Preset struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// presetList holds the registered machine presets in listing order.
var presetList = []struct {
	Preset
	build func() Config
}{
	{Preset{"machine-a", "x86 + Optane PMEM (paper Machine A: TSO, eager drain)"}, ConfigA},
	{Preset{"machine-b-fast", "ARM + FPGA, 60 cyc / 10 GB/s link (paper Machine B-fast)"}, ConfigBFast},
	{Preset{"machine-b-slow", "ARM + FPGA, 200 cyc / 1.5 GB/s link (paper Machine B-slow)"}, ConfigBSlow},
	{Preset{"machine-c", "x86 + byte-addressable CXL SSD (extension Machine C)"}, ConfigC},
}

// Presets lists the registered machine presets in stable order.
func Presets() []Preset {
	out := make([]Preset, len(presetList))
	for i, p := range presetList {
		out[i] = p.Preset
	}
	return out
}

// PresetConfig returns the configuration of a named preset.
func PresetConfig(name string) (Config, bool) {
	for _, p := range presetList {
		if p.Name == name {
			return p.build(), true
		}
	}
	return Config{}, false
}
