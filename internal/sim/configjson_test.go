package sim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestPresetRoundTrip checks, for every registered machine preset,
// that preset → JSON → Config reproduces the hand-written constructor
// exactly (ISSUE 4 satellite: round-trip equality for every preset).
func TestPresetRoundTrip(t *testing.T) {
	for _, p := range Presets() {
		want, ok := PresetConfig(p.Name)
		if !ok {
			t.Fatalf("PresetConfig(%q) missing", p.Name)
		}
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("%s: marshal: %v", p.Name, err)
		}
		var got Config
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v\njson: %s", p.Name, err, data)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round-trip mismatch\n got: %+v\nwant: %+v\njson: %s", p.Name, got, want, data)
		}
		// Second generation must be byte-stable (canonical form).
		data2, err := json.Marshal(got)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", p.Name, err)
		}
		if string(data) != string(data2) {
			t.Errorf("%s: marshal not byte-stable:\n first: %s\nsecond: %s", p.Name, data, data2)
		}
	}
}

func TestPresetsRegistered(t *testing.T) {
	var names []string
	for _, p := range Presets() {
		names = append(names, p.Name)
		if p.Description == "" {
			t.Errorf("preset %q has no description", p.Name)
		}
	}
	want := []string{"machine-a", "machine-b-fast", "machine-b-slow", "machine-c"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Presets() = %v, want %v", names, want)
	}
	if _, ok := PresetConfig("machine-z"); ok {
		t.Error("PresetConfig of unknown preset should report !ok")
	}
}

func TestConfigValidateFieldPaths(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Windows = nil }, "windows: at least one window is required"},
		{func(c *Config) { c.Windows[1].Size = 0 }, "windows[1].size: must be positive"},
		{func(c *Config) { c.Windows[1].Name = "" }, "windows[1].name: required"},
		{func(c *Config) { c.Windows[1].Name = c.Windows[0].Name },
			`windows[1].name: duplicates windows[0] ("dram")`},
		{func(c *Config) { c.Windows[1].Base = c.Windows[0].Base },
			"windows[1]: address range overlaps windows[0]"},
		{func(c *Config) { c.Windows[1].Device = nil }, "windows[1].device: required"},
		{func(c *Config) { c.LineSize = 96 }, "line_size: must be a power of two (got 96)"},
		{func(c *Config) { c.L1.Ways = -1 }, "l1.ways: must be positive when size is set (got -1)"},
		{func(c *Config) { c.LLC.Size = 100 },
			"llc.size: must be a multiple of ways*line_size (got 100 with 16 ways of 64 B lines)"},
		{func(c *Config) { c.MLP = -2 }, "mlp: must be non-negative (got -2)"},
	}
	for _, tc := range cases {
		cfg := ConfigA()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || err.Error() != tc.want {
			t.Errorf("Validate() = %v, want %q", err, tc.want)
		}
	}
	cfg := ConfigA()
	if err := cfg.Validate(); err != nil {
		t.Errorf("ConfigA should validate: %v", err)
	}
}

func TestConfigUnmarshalErrors(t *testing.T) {
	cases := []struct {
		json string
		want string
	}{
		{`{"drain":"sideways","windows":[]}`, `drain: unknown drain mode "sideways" (one of [eager lazy])`},
		{`{"l1":{"policy":"MRU"},"windows":[]}`, `l1.policy: unknown replacement policy "MRU" (one of [LRU PLRU FIFO Random QLRU SRRIP])`},
		{`{"windows":[{"name":"dram","base":0,"size":1024,"device":{"kind":"flash"}}]}`,
			`windows[0].device.kind: unknown device kind "flash" (one of [cxlssd dram pmem remote])`},
		{`{"windows":[]}`, "windows: at least one window is required"},
	}
	for _, tc := range cases {
		var c Config
		err := json.Unmarshal([]byte(tc.json), &c)
		if err == nil || err.Error() != tc.want {
			t.Errorf("Unmarshal(%s) error = %v, want %q", tc.json, err, tc.want)
		}
	}
}

// TestConfigBNaming locks the satellite bugfix: preset tunings keep
// their historical names, custom tunings are named from the actual
// parameters, and non-positive tunings are rejected.
func TestConfigBNaming(t *testing.T) {
	if got := ConfigB(MachineBFastOptions()).Name; got != "machine-B-fast (ARM + FPGA)" {
		t.Errorf("fast preset name = %q", got)
	}
	if got := ConfigB(MachineBSlowOptions()).Name; got != "machine-B-slow (ARM + FPGA)" {
		t.Errorf("slow preset name = %q", got)
	}
	// A custom low-latency tuning used to be mislabeled "fast"; a
	// custom tuning at >= 100 cycles was mislabeled "slow".
	got := ConfigB(MachineBConfig{FPGALatency: 120, FPGABandwidth: 8e9}).Name
	if want := "machine-B (ARM + FPGA, 120 cyc, 8 GB/s)"; got != want {
		t.Errorf("custom tuning name = %q, want %q", got, want)
	}
	if _, err := ConfigBChecked(MachineBConfig{FPGALatency: 0, FPGABandwidth: 10e9}); err == nil ||
		err.Error() != "fpga_latency: must be positive (got 0)" {
		t.Errorf("zero latency error = %v", err)
	}
	if _, err := ConfigBChecked(MachineBConfig{FPGALatency: 60, FPGABandwidth: -1}); err == nil ||
		err.Error() != "fpga_bandwidth: must be positive (got -1)" {
		t.Errorf("negative bandwidth error = %v", err)
	}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "fpga_bandwidth") {
			t.Errorf("ConfigB with invalid tuning: recover = %v", r)
		}
	}()
	ConfigB(MachineBConfig{FPGALatency: 60})
}
