package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"prestores/internal/cache"
	"prestores/internal/coherence"
	"prestores/internal/flatmap"
	"prestores/internal/memdev"
	"prestores/internal/memspace"
	"prestores/internal/units"
)

// retiredOps counts simulated operations (retired instructions) across
// every machine in the process. The bench harness samples it around an
// experiment to compute host-side simulation throughput (simulated
// ops per wall-clock second). Cores count locally and machines flush
// in bulk at Drain/ResetStats, so the hot path never touches the
// atomic.
var retiredOps atomic.Uint64

// RetiredOps returns the process-wide count of simulated operations
// flushed so far. Deltas around an experiment measure simulator
// throughput; with concurrent experiments the deltas attribute each
// other's ops, so per-experiment numbers are exact only when runs do
// not overlap.
func RetiredOps() uint64 { return retiredOps.Load() }

// Machine is a complete simulated system: cores, caches, directory,
// write-back queue, devices, and the byte-addressable backing store.
type Machine struct {
	cfg     Config
	cores   []*Core
	llc     *cache.Cache
	dir     *coherence.Directory
	wbq     *wbQueue
	arena   *memspace.Arena
	backing *memspace.Store

	windows []WindowSpec // sorted by base
	lastWin int          // index into windows of the last deviceFor hit
	hook    Hook
	memHook MemHook

	opsFlushed uint64      // portion of core instr counters already in retiredOps
	opsSink    *OpsCounter // per-run counter receiving the same flushes, or nil
}

// NewMachine builds a machine from cfg. It panics on malformed
// configurations (overlapping windows, bad cache geometry) so that
// machine presets fail loudly.
func NewMachine(cfg Config) *Machine {
	fillDefaults(&cfg)
	if len(cfg.Windows) == 0 {
		panic("sim: machine needs at least one memory window")
	}
	m := &Machine{
		cfg:     cfg,
		arena:   memspace.NewArena(),
		backing: memspace.NewStore(),
	}
	m.windows = append(m.windows, cfg.Windows...)
	sort.Slice(m.windows, func(i, j int) bool { return m.windows[i].Base < m.windows[j].Base })
	for _, w := range cfg.Windows {
		if err := m.arena.AddWindow(w.Name, w.Base, w.Size); err != nil {
			panic(err)
		}
	}
	llcCfg := cfg.LLC
	llcCfg.Seed = cfg.Seed ^ 0xbeef
	m.llc = cache.New(llcCfg)
	m.dir = coherence.New(m.deviceFor)
	m.dir.OnDie = !cfg.DirOnDevice
	m.dir.OnInvalidate = func(core int, line uint64) {
		c := m.cores[core]
		c.l1.Invalidate(line)
		if c.l2 != nil {
			c.l2.Invalidate(line)
		}
	}
	m.wbq = &wbQueue{cap: cfg.WBQueueCap}
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, newCore(m, i))
	}
	notifyMachineObservers(m)
	return m
}

// machineObservers holds callbacks notified of every machine built in
// the process. Experiments construct their machines internally, so
// external tooling (the telemetry recorder behind the CLI's -timeline
// flag) has no handle to call SetHook on; observers close that gap
// without threading a parameter through every experiment signature.
var (
	machineObsMu sync.Mutex
	machineObs   []*machineObserver
)

type machineObserver struct{ f func(*Machine) }

// ObserveMachines registers f to be called (synchronously, under the
// registry lock) with every Machine subsequently built by NewMachine,
// and returns a cancel function. Observers typically install hooks on
// the new machine. With concurrent experiments an observer sees
// machines from all of them; callers needing per-run isolation must
// serialize runs (or use a scoped mechanism such as the scenario
// layer's context observer).
func ObserveMachines(f func(*Machine)) (cancel func()) {
	o := &machineObserver{f: f}
	machineObsMu.Lock()
	machineObs = append(machineObs, o)
	machineObsMu.Unlock()
	return func() {
		machineObsMu.Lock()
		defer machineObsMu.Unlock()
		for i, x := range machineObs {
			if x == o {
				machineObs = append(machineObs[:i], machineObs[i+1:]...)
				break
			}
		}
	}
}

func notifyMachineObservers(m *Machine) {
	machineObsMu.Lock()
	defer machineObsMu.Unlock()
	for _, o := range machineObs {
		o.f(m)
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Name returns the machine name.
func (m *Machine) Name() string { return m.cfg.Name }

// LineSize returns the CPU cache-line size.
func (m *Machine) LineSize() uint64 { return m.cfg.LineSize }

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// Cores returns the number of cores.
func (m *Machine) Cores() int { return len(m.cores) }

// LLC returns the shared last-level cache (for stats and tests).
func (m *Machine) LLC() *cache.Cache { return m.llc }

// Directory returns the coherence directory (for stats and ablations).
func (m *Machine) Directory() *coherence.Directory { return m.dir }

// Backing returns the byte-addressable backing store. Reads through it
// bypass all timing — use for test verification and workload setup.
func (m *Machine) Backing() *memspace.Store { return m.backing }

// Arena returns the region allocator.
func (m *Machine) Arena() *memspace.Arena { return m.arena }

// SetHook installs the instrumentation hook (nil removes it).
func (m *Machine) SetHook(h Hook) { m.hook = h }

// SetMemHook installs the memory-system event hook (nil removes it).
// Mem events are purely observational: installing a hook never changes
// simulated timing.
func (m *Machine) SetMemHook(h MemHook) { m.memHook = h }

// deviceFor returns the device serving addr. It panics on an address
// outside every window — that is a workload bug worth failing loudly.
// Accesses cluster heavily by window, so the last hit is checked first.
func (m *Machine) deviceFor(addr uint64) memdev.Device {
	if w := &m.windows[m.lastWin]; addr >= w.Base && addr < w.Base+w.Size {
		return w.Device
	}
	for i := range m.windows {
		w := &m.windows[i]
		if addr >= w.Base && addr < w.Base+w.Size {
			m.lastWin = i
			return w.Device
		}
	}
	panic(fmt.Sprintf("sim: address %#x outside every memory window", addr))
}

// Device returns the device serving the named window, or nil.
func (m *Machine) Device(window string) memdev.Device {
	for _, w := range m.cfg.Windows {
		if w.Name == window {
			return w.Device
		}
	}
	return nil
}

// Alloc carves a line-aligned region from the named window. The
// backing store installs a flat page index over the region so that
// address translation inside it skips the page hash map.
func (m *Machine) Alloc(window, name string, size uint64) memspace.Region {
	r := m.arena.MustAlloc(window, name, size, m.cfg.LineSize)
	m.backing.Reserve(r.Base, r.Size)
	return r
}

// AllocAligned carves a region with explicit alignment.
func (m *Machine) AllocAligned(window, name string, size, align uint64) memspace.Region {
	r := m.arena.MustAlloc(window, name, size, align)
	m.backing.Reserve(r.Base, r.Size)
	return r
}

// Drain completes all outstanding work: fences every core, flushes
// non-temporal buffers, drains the write-back queue and device write
// buffers. The completion time is charged back to every core's clock —
// deferred write-backs are real work, and experiments that measure
// elapsed time must not get them for free. Call before reading device
// statistics.
func (m *Machine) Drain() {
	for _, c := range m.cores {
		c.Fence()
	}
	var now units.Cycles
	for _, c := range m.cores {
		if c.now > now {
			now = c.now
		}
	}
	now = m.wbq.drainAll(now)
	for _, w := range m.cfg.Windows {
		if t := w.Device.Flush(now); t > now {
			now = t
		}
	}
	for _, c := range m.cores {
		c.now = now
	}
	m.flushOps()
}

// flushOps publishes the cores' retired-op counts into the process-wide
// throughput counter. Called at natural synchronization points so the
// per-op path stays atomic-free.
func (m *Machine) flushOps() {
	var total uint64
	for _, c := range m.cores {
		total += c.instr
	}
	if d := total - m.opsFlushed; d > 0 {
		retiredOps.Add(d)
		if m.opsSink != nil {
			m.opsSink.add(d)
		}
		m.opsFlushed = total
	}
}

// FlushCaches writes every dirty line in every cache level back to its
// device (in arbitrary, set-major order — like a wbinvd) and
// invalidates nothing. Used between experiment phases.
func (m *Machine) FlushCaches() {
	var now units.Cycles
	for _, c := range m.cores {
		c.Fence()
		if c.now > now {
			now = c.now
		}
	}
	flushLevel := func(cc *cache.Cache) {
		var lines []uint64
		cc.DirtyLines(func(addr uint64) { lines = append(lines, addr) })
		for _, addr := range lines {
			cc.CleanLine(addr)
			start := now
			var accept units.Cycles
			now, accept = m.wbq.enqueue(now, now, addr, m.cfg.LineSize, m.deviceFor)
			if m.memHook != nil {
				// Core -1: a machine-wide flush, not attributable to a core.
				m.memHook(MemEvent{Core: -1, Kind: MemWriteBack, Addr: addr,
					Size: m.cfg.LineSize, Start: start, End: accept})
			}
		}
	}
	for _, c := range m.cores {
		flushLevel(c.l1)
		if c.l2 != nil {
			flushLevel(c.l2)
		}
	}
	flushLevel(m.llc)
	m.Drain()
}

// ResetStats clears all cache, directory, device and queue counters
// (cache and device *contents* are preserved).
func (m *Machine) ResetStats() {
	for _, c := range m.cores {
		c.l1.ResetStats()
		if c.l2 != nil {
			c.l2.ResetStats()
		}
		c.stats = CoreStats{}
	}
	m.llc.ResetStats()
	m.dir.ResetStats()
	m.wbq.stalls = 0
	for _, w := range m.cfg.Windows {
		w.Device.ResetStats()
	}
	m.flushOps()
}

// MaxCycles returns the highest core clock — the elapsed simulated time
// of a parallel region when cores started from a common point.
func (m *Machine) MaxCycles() units.Cycles {
	var max units.Cycles
	for _, c := range m.cores {
		if c.now > max {
			max = c.now
		}
	}
	return max
}

// SyncCores advances every core's clock to the machine-wide maximum — a
// barrier, used between experiment phases.
func (m *Machine) SyncCores() {
	max := m.MaxCycles()
	for _, c := range m.cores {
		c.now = max
	}
}

// Seconds converts cycles to seconds at this machine's clock.
func (m *Machine) Seconds(c units.Cycles) float64 {
	return units.Seconds(c, m.cfg.Clock)
}

// wbQueue is the machine-wide write-back queue: CLWB cleans, dirty
// evictions and non-temporal streams pass through it to the devices.
// It drains in FIFO order — which is precisely why clean pre-stores
// issued in program order reach the device sequentially, while dirty
// evictions arrive in whatever order the replacement policy produced.
type wbQueue struct {
	cap      int
	pending  []units.Cycles            // device-accept completion times, FIFO
	inflight flatmap.Map[units.Cycles] // line base -> accept completion
	reapKeys []uint64                  // scratch for track's expiry sweep
	stalls   uint64                    // cycles cores stalled on a full queue
}

// enqueue submits a write-back of size bytes at line-aligned addr. The
// write-back is asynchronous: the issuing core proceeds immediately
// unless the queue is full, in which case it stalls until the oldest
// entry is accepted by its device — the back-pressure that turns write
// amplification into lost time. dataReady is the earliest cycle the
// line's data is available (e.g. a buffered store still completing its
// acquisition). It returns the core's (possibly advanced) clock and the
// device-accept completion cycle.
func (q *wbQueue) enqueue(coreNow, dataReady units.Cycles, addr, size uint64, dev func(uint64) memdev.Device) (units.Cycles, units.Cycles) {
	q.reap(coreNow)
	// A full queue exerts back-pressure: the core stalls until enough
	// older write-backs have been accepted downstream. Accept times are
	// not globally monotonic (cores with different clocks share the
	// queue across devices of different speeds), so one stall may not
	// free a slot — stall to each successive accept time rather than
	// dropping the oldest entry, which would under-count stalls and
	// break the capacity invariant.
	for q.cap > 0 && len(q.pending) >= q.cap {
		if wait := q.pending[0]; wait > coreNow {
			q.stalls += wait - coreNow
			coreNow = wait
		}
		q.reap(coreNow) // retires at least the oldest entry
	}
	start := coreNow
	if dataReady > start {
		start = dataReady
	}
	// Write-backs of the same line serialize: a new one cannot start
	// until the previous one has been accepted downstream. This chain
	// is what makes clean-then-rewrite loops run at memory-write
	// latency (the paper's Listing 3 measures ~75x).
	if t, _ := q.inflight.Get(addr); t > start {
		start = t
	}
	accept := dev(addr).WriteLine(start, addr, size)
	q.pending = append(q.pending, accept)
	q.track(addr, accept, coreNow)
	return coreNow, accept
}

// track records the accept time of an in-flight write-back so that a
// store to the same line can be made to wait for it (a store cannot
// regain write permission on a line while its write-back is in flight).
func (q *wbQueue) track(line uint64, accept, now units.Cycles) {
	if q.inflight.Len() > 1<<16 {
		q.reapKeys = q.reapKeys[:0]
		q.inflight.Range(func(l uint64, t units.Cycles) bool {
			if t <= now {
				q.reapKeys = append(q.reapKeys, l)
			}
			return true
		})
		for _, l := range q.reapKeys {
			q.inflight.Delete(l)
		}
	}
	if t, _ := q.inflight.Get(line); t < accept {
		q.inflight.Put(line, accept)
	}
}

// inflightUntil returns the accept completion of any in-flight
// write-back of the line, or 0.
func (q *wbQueue) inflightUntil(line uint64) units.Cycles {
	t, _ := q.inflight.Get(line)
	return t
}

// reap removes entries whose device accept has completed.
func (q *wbQueue) reap(now units.Cycles) {
	i := 0
	for i < len(q.pending) && q.pending[i] <= now {
		i++
	}
	if i > 0 {
		q.pending = append(q.pending[:0], q.pending[i:]...)
	}
}

// drainAll waits for every pending write-back, returning the final
// completion cycle.
func (q *wbQueue) drainAll(now units.Cycles) units.Cycles {
	for _, t := range q.pending {
		if t > now {
			now = t
		}
	}
	q.pending = q.pending[:0]
	return now
}

// Stalls returns total cycles cores spent stalled on the full queue.
func (q *wbQueue) Stalls() uint64 { return q.stalls }
