package sim

import (
	"fmt"

	"prestores/internal/cache"
	"prestores/internal/flatmap"
	"prestores/internal/units"
)

// PrestoreOp selects the pre-store operation (paper §2).
type PrestoreOp int

const (
	// Demote moves data down the cache hierarchy: pending private
	// writes begin acquiring their lines in the background, and dirty
	// lines in private caches are pushed to the shared level
	// (cldemote / dc cvau).
	Demote PrestoreOp = iota
	// Clean writes dirty data back to memory but keeps it cached
	// (clwb). Write-backs drain in issue order, which is what restores
	// device-level sequentiality.
	Clean
)

// String returns the op name.
func (o PrestoreOp) String() string {
	switch o {
	case Demote:
		return "demote"
	case Clean:
		return "clean"
	default:
		return fmt.Sprintf("PrestoreOp(%d)", int(o))
	}
}

// CoreStats aggregates per-core counters.
type CoreStats struct {
	Loads     uint64
	Stores    uint64
	NTStores  uint64
	Fences    uint64
	Atomics   uint64
	Prestores uint64

	LoadL1Hits   uint64
	LoadL2Hits   uint64
	LoadLLCHits  uint64
	LoadMemFills uint64
	SBForwards   uint64
	Prefetches   uint64

	FenceStall units.Cycles // cycles stalled in fences/atomics waiting on drains
	SBStall    units.Cycles // cycles stalled on store-buffer capacity
}

// sbEntry is one store-buffer slot: a private, not-yet-visible write to
// one cache line.
type sbEntry struct {
	line    uint64
	started bool
	cleaned bool // a clwb was issued for this write generation
	issued  units.Cycles
	readyAt units.Cycles
}

// wcEntry tracks a non-temporal write-combining buffer.
type wcEntry struct {
	line uint64
	mask uint64 // 8-byte-chunk coverage bitmask
}

// Core is one simulated CPU core with private caches, a store buffer,
// and non-temporal write-combining buffers. Cores are not safe for
// concurrent use; parallelism is expressed with RunInterleaved.
type Core struct {
	m  *Machine
	id int

	now   units.Cycles
	instr uint64

	l1 *cache.Cache
	l2 *cache.Cache // nil when the machine has no private L2

	// sb holds the store buffer; the live entries are sb[sbHead:].
	// drainOldest advances sbHead instead of shifting the slice, and
	// sbAppend compacts the dead prefix away only when the backing
	// array fills — amortized O(1) per store instead of a full-buffer
	// copy per drain.
	sb     []sbEntry
	sbHead int
	// sbIndex maps a line to the sequence number of the newest store-
	// buffer entry for it, replacing the per-op linear scans. Sequence
	// numbers translate to slice positions via sbBase (the seq of
	// sb[sbHead]); entries whose seq has fallen below sbBase were
	// drained or fenced away and are treated as absent, so the index
	// never needs eager invalidation.
	sbIndex flatmap.Map[uint64]
	sbBase  uint64 // seq of sb[sbHead]

	drainSlots []units.Cycles // background drain engine (MLP-wide)
	loadSlots  []units.Cycles // load miss-queue slots (MLP-wide)

	wc []wcEntry // NT write-combining buffers, FIFO

	cleanBarrier units.Cycles // max accept time of any issued clwb/NT flush

	fnStack []string
	scratch []byte // Memcpy bounce buffer, reused across calls

	stats CoreStats
}

func newCore(m *Machine, id int) *Core {
	l1cfg := m.cfg.L1
	l1cfg.Seed = m.cfg.Seed ^ uint64(id)<<8 ^ 0x11
	c := &Core{
		m:          m,
		id:         id,
		l1:         cache.New(l1cfg),
		sb:         make([]sbEntry, 0, 2*m.cfg.SBEntries),
		drainSlots: make([]units.Cycles, m.cfg.MLP),
		loadSlots:  make([]units.Cycles, m.cfg.MLP),
	}
	if m.cfg.L2.Size > 0 {
		l2cfg := m.cfg.L2
		l2cfg.Seed = m.cfg.Seed ^ uint64(id)<<8 ^ 0x22
		c.l2 = cache.New(l2cfg)
	}
	return c
}

// sbLookup returns the position of the newest store-buffer entry for
// line, or -1. Index hits are validated against sbBase so that entries
// removed by drains or fences read as absent without the removal paths
// ever touching the map.
func (c *Core) sbLookup(line uint64) int {
	if len(c.sb) == c.sbHead {
		return -1
	}
	seq, ok := c.sbIndex.Get(line)
	if !ok || seq < c.sbBase {
		return -1
	}
	pos := c.sbHead + int(seq-c.sbBase)
	if pos >= len(c.sb) {
		return -1
	}
	return pos
}

// sbAppend adds a store-buffer entry and indexes it. The index holds
// stale keys for lines whose entries have drained; they are harmless
// (sbLookup rejects them) but are compacted away once enough pile up.
func (c *Core) sbAppend(e sbEntry) {
	if c.sbIndex.Len() >= 4096 {
		c.sbRebuildIndex()
	}
	if len(c.sb) == cap(c.sb) && c.sbHead > 0 {
		n := copy(c.sb, c.sb[c.sbHead:])
		c.sb = c.sb[:n]
		c.sbHead = 0
	}
	c.sbIndex.Put(e.line, c.sbBase+uint64(len(c.sb)-c.sbHead))
	c.sb = append(c.sb, e)
}

// sbRebuildIndex drops every stale key, re-indexing only live entries.
func (c *Core) sbRebuildIndex() {
	c.sbIndex.Clear()
	for i := c.sbHead; i < len(c.sb); i++ {
		c.sbIndex.Put(c.sb[i].line, c.sbBase+uint64(i-c.sbHead))
	}
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Now returns the core's cycle clock.
func (c *Core) Now() units.Cycles { return c.now }

// Instructions returns the core's retired-instruction counter.
func (c *Core) Instructions() uint64 { return c.instr }

// Stats returns the core's counters.
func (c *Core) Stats() CoreStats { return c.stats }

// L1 returns the core's private L1 (tests and stats).
func (c *Core) L1() *cache.Cache { return c.l1 }

// Machine returns the owning machine.
func (c *Core) Machine() *Machine { return c.m }

func (c *Core) lineBase(addr uint64) uint64 {
	return units.AlignDown(addr, c.m.cfg.LineSize)
}

// emit delivers the op to the machine's hook. The un-hooked fast path
// is a single nil check — the wrapper stays within the inlining budget,
// so simulation without instrumentation pays no call and builds no
// Event.
func (c *Core) emit(kind OpKind, addr, size uint64, cost units.Cycles) {
	if c.m.hook != nil {
		c.emitHooked(kind, addr, size, cost)
	}
}

func (c *Core) emitHooked(kind OpKind, addr, size uint64, cost units.Cycles) {
	fn := ""
	if n := len(c.fnStack); n > 0 {
		fn = c.fnStack[n-1]
	}
	c.m.hook(Event{Core: c.id, Kind: kind, Addr: addr, Size: size, Fn: fn,
		Instr: c.instr, Cost: uint64(cost)}, c)
}

// emitMem delivers a memory-system event to the machine's mem hook,
// mirroring emit's split: the un-hooked fast path is one nil check and
// builds nothing.
func (c *Core) emitMem(kind MemEventKind, addr, size uint64, start, end units.Cycles) {
	if c.m.memHook != nil {
		c.emitMemHooked(kind, addr, size, start, end)
	}
}

func (c *Core) emitMemHooked(kind MemEventKind, addr, size uint64, start, end units.Cycles) {
	c.m.memHook(MemEvent{Core: c.id, Kind: kind, Addr: addr, Size: size,
		Start: start, End: end})
}

// enqueueWB submits a line write-back through the machine queue
// (advancing the core clock on back-pressure), announces it to the mem
// hook, and returns the device-accept completion cycle.
func (c *Core) enqueueWB(line uint64) units.Cycles {
	start := c.now
	var accept units.Cycles
	c.now, accept = c.m.wbq.enqueue(c.now, c.now, line, c.m.cfg.LineSize, c.m.deviceFor)
	c.emitMem(MemWriteBack, line, c.m.cfg.LineSize, start, accept)
	return accept
}

// PushFunc annotates subsequent operations as executing inside fn —
// the simulator's stand-in for the symbol information PIN and perf
// recover from binaries.
func (c *Core) PushFunc(fn string) {
	c.fnStack = append(c.fnStack, fn)
	c.emit(OpFuncEnter, 0, 0, 0)
}

// PopFunc leaves the innermost annotated function.
func (c *Core) PopFunc() {
	c.emit(OpFuncExit, 0, 0, 0)
	if n := len(c.fnStack); n > 0 {
		c.fnStack = c.fnStack[:n-1]
	}
}

// Callchain returns a copy of the current function-annotation stack,
// innermost last.
func (c *Core) Callchain() []string {
	return append([]string(nil), c.fnStack...)
}

// AppendCallchain appends the current annotation stack to buf, joined
// by sep, and returns the extended buffer. Samplers use it with a
// reused scratch buffer to render callchains without the per-sample
// slice copy Callchain makes.
func (c *Core) AppendCallchain(buf []byte, sep byte) []byte {
	for i, fn := range c.fnStack {
		if i > 0 {
			buf = append(buf, sep)
		}
		buf = append(buf, fn...)
	}
	return buf
}

// CurrentFunc returns the innermost function annotation, or "".
func (c *Core) CurrentFunc() string {
	if n := len(c.fnStack); n > 0 {
		return c.fnStack[n-1]
	}
	return ""
}

// Compute advances the core by n instructions of on-core work (1 IPC).
func (c *Core) Compute(n uint64) {
	c.now += n
	c.instr += n
	c.emit(OpCompute, 0, n, n)
}

//
// ----- Loads -----
//

// Read performs a timed load of len(buf) bytes at addr into buf.
// Loads spanning multiple lines overlap their fills up to the machine's
// memory-level parallelism, as hardware miss queues do.
func (c *Core) Read(addr uint64, buf []byte) {
	start := c.now
	c.m.backing.Read(addr, buf)
	c.readLines(addr, uint64(len(buf)))
	c.emit(OpLoad, addr, uint64(len(buf)), c.now-start)
}

// readLines performs the timing of a [addr, addr+n) load. A
// zero-length load touches no line and is free.
func (c *Core) readLines(addr, n uint64) {
	if n == 0 {
		return
	}
	end := addr + n
	first := c.lineBase(addr)
	if first+c.m.cfg.LineSize >= end {
		// Single-line load — the common case — skips the miss-queue
		// slot machinery entirely.
		c.now = c.loadLineAt(first, c.now)
		return
	}
	for i := range c.loadSlots {
		c.loadSlots[i] = c.now
	}
	seq := c.now
	maxDone := c.now
	for line := first; line < end; line += c.m.cfg.LineSize {
		si := 0
		for i := range c.loadSlots {
			if c.loadSlots[i] < c.loadSlots[si] {
				si = i
			}
		}
		start := seq
		if c.loadSlots[si] > start {
			start = c.loadSlots[si]
		}
		done := c.loadLineAt(line, start)
		c.loadSlots[si] = done
		if done > maxDone {
			maxDone = done
		}
		seq++ // issue slot
	}
	c.now = maxDone
}

// ReadU64 performs a timed 8-byte load. It bypasses the byte-slice
// path: the backing store reads the word directly.
func (c *Core) ReadU64(addr uint64) uint64 {
	start := c.now
	v := c.m.backing.ReadU64(addr)
	c.readLines(addr, 8)
	c.emit(OpLoad, addr, 8, c.now-start)
	return v
}

// loadLine accounts one line-granular load at the core's clock.
func (c *Core) loadLine(line uint64) {
	c.now = c.loadLineAt(line, c.now)
}

// loadLineAt accounts one line-granular load starting at cycle `at`,
// returning the completion cycle without touching the core clock.
func (c *Core) loadLineAt(line uint64, at units.Cycles) units.Cycles {
	c.stats.Loads++
	c.instr++
	// Store-buffer forwarding.
	if c.sbLookup(line) >= 0 {
		c.stats.SBForwards++
		return at + c.l1.HitLatency()
	}
	if c.l1.Touch(line, false) { // recency touch on hit
		c.stats.LoadL1Hits++
		return at + c.l1.HitLatency()
	}
	if c.l2 != nil && c.l2.Touch(line, false) {
		c.stats.LoadL2Hits++
		c.fillL1Absent(line, false)
		return at + c.l2.HitLatency()
	}
	// Shared level: coherence first. The line is now known absent from
	// both private levels, so the fills below can skip their probes.
	done, forwarded := c.m.dir.Read(at, c.id, line)
	switch {
	case c.m.llc.Touch(line, false):
		c.stats.LoadLLCHits++
		done += c.m.llc.HitLatency()
	case forwarded:
		// Dirty copy pulled from another core's private cache; the
		// owner keeps its (now shared) copy and will write it back on
		// eviction, so the LLC copy fills clean.
		c.stats.LoadLLCHits++
		done += c.m.llc.HitLatency()
		c.fillLLCAbsent(line, false)
	default:
		c.stats.LoadMemFills++
		fillStart := done + c.m.llc.HitLatency()
		done = c.m.deviceFor(line).ReadLine(fillStart, line, c.m.cfg.LineSize)
		c.emitMem(MemFill, line, c.m.cfg.LineSize, fillStart, done)
		c.fillLLCAbsent(line, false)
		c.prefetchAfter(line)
	}
	c.fillPrivateAbsent(line, false)
	return done
}

// prefetchAfter implements the next-line hardware prefetcher: a demand
// miss pulls the following lines into the LLC in the background. The
// fills consume device read bandwidth but do not stall the core —
// moving data *up* the hierarchy early, the mirror image of a
// pre-store.
func (c *Core) prefetchAfter(line uint64) {
	for i := 1; i <= c.m.cfg.PrefetchDepth; i++ {
		next := line + uint64(i)*c.m.cfg.LineSize
		if c.m.llc.Contains(next) {
			continue
		}
		c.stats.Prefetches++
		done := c.m.deviceFor(next).ReadLine(c.now, next, c.m.cfg.LineSize)
		c.emitMem(MemPrefetch, next, c.m.cfg.LineSize, c.now, done)
		c.fillLLCAbsent(next, false)
	}
}

//
// ----- Stores -----
//

// Write performs a timed store of data at addr. The store enters the
// store buffer; on eager-drain machines (x86) its cache-line
// acquisition begins immediately in the background, on lazy-drain
// machines (ARM) it stays private until a fence, a demote, or buffer
// capacity forces it out.
func (c *Core) Write(addr uint64, data []byte) {
	start := c.now
	c.m.backing.Write(addr, data)
	c.storeLines(addr, uint64(len(data)))
	c.emit(OpStore, addr, uint64(len(data)), c.now-start)
}

// storeLines times a store over [addr, addr+n): the single-line common
// case issues directly, multi-line stores walk the span.
func (c *Core) storeLines(addr, n uint64) {
	first := c.lineBase(addr)
	end := addr + n
	if first >= end {
		return
	}
	if first+c.m.cfg.LineSize >= end {
		c.storeLine(first)
		return
	}
	for line := first; line < end; line += c.m.cfg.LineSize {
		c.storeLine(line)
	}
}

// WriteU64 performs a timed 8-byte store. It bypasses the byte-slice
// path: the backing store writes the word directly.
func (c *Core) WriteU64(addr, v uint64) {
	start := c.now
	c.m.backing.WriteU64(addr, v)
	c.storeLines(addr, 8)
	c.emit(OpStore, addr, 8, c.now-start)
}

// Memset performs a timed fill of n bytes at addr.
func (c *Core) Memset(addr, n uint64, v byte) {
	start := c.now
	c.m.backing.Fill(addr, n, v)
	c.storeLines(addr, n)
	c.emit(OpStore, addr, n, c.now-start)
}

// Memcpy performs a timed copy of n bytes from src to dst.
func (c *Core) Memcpy(dst, src, n uint64) {
	start := c.now
	if uint64(cap(c.scratch)) < n {
		c.scratch = make([]byte, n)
	}
	buf := c.scratch[:n]
	c.m.backing.Read(src, buf)
	c.readLines(src, n)
	c.emit(OpLoad, src, n, c.now-start)
	start = c.now
	c.m.backing.Write(dst, buf)
	c.storeLines(dst, n)
	c.emit(OpStore, dst, n, c.now-start)
}

func (c *Core) storeLine(line uint64) {
	c.stats.Stores++
	c.instr++
	c.now++ // issue cost
	// Coalesce with an existing buffer entry for the same line. A
	// cleaned entry belongs to the previous write generation — its
	// write-back is in flight — so a new store starts a new entry
	// (whose commit then waits for that write-back). Only the newest
	// entry per line can be uncleaned, so the index decides.
	if i := c.sbLookup(line); i >= 0 && !c.sb[i].cleaned {
		return
	}
	if len(c.sb)-c.sbHead >= c.m.cfg.SBEntries {
		c.drainOldest()
	}
	c.sbAppend(sbEntry{line: line, issued: c.now})
	if c.m.cfg.Drain == DrainEager {
		c.startEntry(&c.sb[len(c.sb)-1], c.now)
	}
}

// drainOldest retires the oldest store-buffer entry, stalling the core
// until its line acquisition completes.
func (c *Core) drainOldest() {
	e := &c.sb[c.sbHead]
	if !e.started {
		at := c.now
		if t := e.issued + c.m.cfg.LazyDrainAge; t < at {
			at = t
		}
		c.startEntry(e, at)
	}
	if e.readyAt > c.now {
		c.stats.SBStall += e.readyAt - c.now
		c.emitMem(MemSBDrain, e.line, c.m.cfg.LineSize, c.now, e.readyAt)
		c.now = e.readyAt
	}
	c.sbHead++
	c.sbBase++
	if c.sbHead == len(c.sb) {
		c.sb = c.sb[:0]
		c.sbHead = 0
	}
}

// startEntry begins the background acquisition (RFO + fill) of a store
// buffer entry's line through one of the MLP-wide drain slots.
func (c *Core) startEntry(e *sbEntry, at units.Cycles) {
	si := 0
	for i := range c.drainSlots {
		if c.drainSlots[i] < c.drainSlots[si] {
			si = i
		}
	}
	start := at
	if c.drainSlots[si] > start {
		start = c.drainSlots[si]
	}
	e.readyAt = c.acquireLine(start, e.line)
	c.drainSlots[si] = e.readyAt
	e.started = true
}

// acquireLine obtains the line in writable state in the L1, charging
// directory and fill costs starting at cycle `at`, and returns the
// completion cycle. Cache state mutates immediately (the simulator is
// single-threaded; only timing is deferred).
func (c *Core) acquireLine(at units.Cycles, line uint64) units.Cycles {
	// A line with an in-flight write-back cannot grant write permission
	// until the write-back is accepted downstream.
	if t := c.m.wbq.inflightUntil(line); t > at {
		at = t
	}
	excl, sharer := c.m.dir.Holds(c.id, line)
	if excl && c.l1.Touch(line, true) {
		return at + c.l1.HitLatency()
	}
	done, _ := c.m.dir.Write(at, c.id, line)
	switch {
	// A clear sharer bit proves the line absent from both private
	// levels, letting the RFO skip their tag probes entirely.
	case sharer && c.l1.Contains(line):
		done += c.l1.HitLatency()
		c.fillPrivate(line, true)
	case sharer && c.l2 != nil && c.l2.Contains(line):
		done += c.l2.HitLatency()
		if ev, evicted := c.l2.Insert(line, false); evicted {
			c.handlePrivateEvict(ev)
		}
		c.fillL1Absent(line, true)
	case c.m.llc.Touch(line, false):
		done += c.m.llc.HitLatency()
		c.fillPrivateAbsent(line, true)
	default:
		// Write-allocate: the line must be read from memory before it
		// can be partially updated (paper §4.2: "it needs to read the
		// full cache line prior to updating it").
		fillStart := done + c.m.llc.HitLatency()
		done = c.m.deviceFor(line).ReadLine(fillStart, line, c.m.cfg.LineSize)
		c.emitMem(MemFill, line, c.m.cfg.LineSize, fillStart, done)
		c.fillLLCAbsent(line, false)
		c.prefetchAfter(line) // L2 prefetchers also train on RFO misses
		c.fillPrivateAbsent(line, true)
	}
	return done
}

//
// ----- Cache fill/evict plumbing -----
//

// fillPrivate inserts the line into the private levels (dirty or not),
// cascading evictions downward. Callers that have just probed the
// private levels and missed use fillPrivateAbsent, which skips the
// redundant tag lookups.
func (c *Core) fillPrivate(line uint64, dirty bool) {
	if c.l2 != nil {
		if ev, evicted := c.l2.Insert(line, false); evicted {
			c.handlePrivateEvict(ev)
		}
	}
	c.fillL1(line, dirty)
}

// fillPrivateAbsent is fillPrivate for a line known absent from both
// private levels.
func (c *Core) fillPrivateAbsent(line uint64, dirty bool) {
	if c.l2 != nil {
		if ev, evicted := c.l2.Fill(line, false); evicted {
			c.handlePrivateEvict(ev)
		}
	}
	c.fillL1Absent(line, dirty)
}

func (c *Core) fillL1(line uint64, dirty bool) {
	ev, evicted := c.l1.Insert(line, dirty)
	if evicted {
		c.l1Evicted(ev)
	}
}

// fillL1Absent is fillL1 for a line known absent from the L1.
func (c *Core) fillL1Absent(line uint64, dirty bool) {
	ev, evicted := c.l1.Fill(line, dirty)
	if evicted {
		c.l1Evicted(ev)
	}
}

// l1Evicted absorbs an L1 victim into the L2 (or the shared level when
// the machine has no private L2).
func (c *Core) l1Evicted(ev cache.Eviction) {
	if c.l2 != nil {
		if ev2, e2 := c.l2.Insert(ev.Addr, ev.Dirty); e2 {
			c.handlePrivateEvict(ev2)
		}
		return
	}
	c.handlePrivateEvict(ev)
}

// handlePrivateEvict absorbs an eviction out of the last private level
// into the shared LLC.
func (c *Core) handlePrivateEvict(ev cache.Eviction) {
	if !c.l1.Contains(ev.Addr) && (c.l2 == nil || !c.l2.Contains(ev.Addr)) {
		c.m.dir.Evicted(c.id, ev.Addr)
	}
	c.insertLLC(ev.Addr, ev.Dirty)
}

// insertLLC inserts a line into the shared LLC, writing back any dirty
// victim. This is where the replacement policy's "random" victim order
// becomes the device's write-back order — the root of Problem #1.
func (c *Core) insertLLC(line uint64, dirty bool) {
	if ev, evicted := c.m.llc.Insert(line, dirty); evicted {
		if ev.Dirty {
			c.enqueueWB(ev.Addr)
		} else {
			c.emitMem(MemEvict, ev.Addr, c.m.cfg.LineSize, c.now, c.now)
		}
	}
}

// fillLLCAbsent is insertLLC for a line known absent from the LLC.
func (c *Core) fillLLCAbsent(line uint64, dirty bool) {
	if ev, evicted := c.m.llc.Fill(line, dirty); evicted {
		if ev.Dirty {
			c.enqueueWB(ev.Addr)
		} else {
			c.emitMem(MemEvict, ev.Addr, c.m.cfg.LineSize, c.now, c.now)
		}
	}
}

//
// ----- Fences and atomics -----
//

// Fence executes a full memory fence: every buffered store must become
// globally visible, every outstanding clwb and non-temporal write must
// be accepted, before the core proceeds.
func (c *Core) Fence() {
	start := c.now
	c.stats.Fences++
	c.instr++
	c.fenceInternal()
	c.emit(OpFence, 0, 0, c.now-start)
}

func (c *Core) fenceInternal() {
	start := c.now
	done := c.now
	// Publish buffered stores. On lazy-drain machines an entry that
	// has sat in the buffer longer than the drain age already began
	// its publication in the background — even weak-memory CPUs retire
	// old write-buffer entries when the interconnect is idle — so its
	// start time is backdated accordingly.
	for i := c.sbHead; i < len(c.sb); i++ {
		e := &c.sb[i]
		if !e.started {
			at := c.now
			if t := e.issued + c.m.cfg.LazyDrainAge; t < at {
				at = t
			}
			c.startEntry(e, at)
		}
		if e.readyAt > done {
			done = e.readyAt
		}
	}
	c.sbBase += uint64(len(c.sb) - c.sbHead)
	c.sb = c.sb[:0]
	c.sbHead = 0
	// Flush NT write-combining buffers and wait for their acceptance.
	if t := c.flushWC(); t > done {
		done = t
	}
	// Wait for outstanding clwb acceptances (sfence orders clwb).
	if c.cleanBarrier > done {
		done = c.cleanBarrier
	}
	if done > c.now {
		c.now = done
	}
	c.stats.FenceStall += c.now - start
}

// CAS performs a compare-and-swap on the 8 bytes at addr with full
// fence semantics, returning whether the swap happened. The target
// line's acquisition overlaps the store-buffer drain, as hardware
// overlaps the locked instruction's RFO with outstanding stores.
func (c *Core) CAS(addr, old, new uint64) bool {
	start := c.now
	c.stats.Atomics++
	c.instr++
	c.atomicTiming(addr)
	cur := c.m.backing.ReadU64(addr)
	ok := cur == old
	if ok {
		c.m.backing.WriteU64(addr, new)
		c.l1.Access(c.lineBase(addr), true)
	}
	c.emit(OpAtomic, addr, 8, c.now-start)
	return ok
}

// AtomicAdd performs a fetch-and-add on the 8 bytes at addr with full
// fence semantics, returning the new value.
func (c *Core) AtomicAdd(addr, delta uint64) uint64 {
	start := c.now
	c.stats.Atomics++
	c.instr++
	c.atomicTiming(addr)
	v := c.m.backing.ReadU64(addr) + delta
	c.m.backing.WriteU64(addr, v)
	c.l1.Access(c.lineBase(addr), true)
	c.emit(OpAtomic, addr, 8, c.now-start)
	return v
}

// atomicTiming charges the cost of an atomic read-modify-write: the
// target line is acquired exclusively while the store buffer drains in
// parallel; the operation completes when both are done.
func (c *Core) atomicTiming(addr uint64) {
	acqDone := c.acquireLine(c.now, c.lineBase(addr))
	c.fenceInternal()
	if acqDone > c.now {
		c.stats.FenceStall += acqDone - c.now
		c.now = acqDone
	}
}

//
// ----- Pre-stores and non-temporal stores -----
//

// Prestore issues a pre-store over [addr, addr+size) (paper §2): a
// non-blocking instruction directing the CPU to move the data down the
// memory hierarchy. Demote publishes pending private writes and pushes
// dirty private lines to the shared level; Clean additionally writes
// dirty lines back to memory (keeping them cached).
func (c *Core) Prestore(addr, size uint64, op PrestoreOp) {
	start := c.now
	end := addr + size
	for line := c.lineBase(addr); line < end; line += c.m.cfg.LineSize {
		c.stats.Prestores++
		c.instr++
		c.now++ // ~1-cycle issue cost (paper §5)
		switch {
		case op == Demote:
			c.demoteLine(line)
		case c.m.cfg.CleanToPOU:
			// ARM's dc cvau cleans to the point of unification — the
			// shared cache level, not the device (paper §2).
			c.demoteLine(line)
		default:
			c.cleanLine(line)
		}
	}
	if op == Demote {
		c.emit(OpPrestoreDemote, addr, size, c.now-start)
	} else {
		c.emit(OpPrestoreClean, addr, size, c.now-start)
	}
}

// demoteLine starts background publication of any buffered store to the
// line and pushes a dirty private copy down to the shared level.
func (c *Core) demoteLine(line uint64) {
	// Only the newest buffered entry for a line can be unstarted: older
	// duplicates were cleaned, and cleaning starts them.
	if i := c.sbLookup(line); i >= 0 && !c.sb[i].started {
		c.startEntry(&c.sb[i], c.now)
	}
	// Invalidate reports presence itself, so no pre-probe is needed.
	if present, dirty := c.l1.Invalidate(line); present {
		c.insertLLC(line, dirty)
	}
	if c.l2 != nil {
		if present, dirty := c.l2.Invalidate(line); present {
			c.insertLLC(line, dirty)
		}
	}
	c.m.dir.Downgrade(c.id, line)
}

// cleanLine initiates a write-back of the line's dirty data (wherever
// it is cached) while keeping the line cached — clwb semantics. If the
// line's store is still buffered, its publication is started and the
// entry is marked cleaned: a later store to the same line begins a new
// write generation whose commit waits for this write-back (the
// serialization behind Listing 3's slowdown).
func (c *Core) cleanLine(line uint64) {
	at := c.now
	dirty := false
	// Only the newest buffered entry for a line can be uncleaned (see
	// demoteLine), so the index lookup replaces the scan.
	if i := c.sbLookup(line); i >= 0 && !c.sb[i].cleaned {
		if !c.sb[i].started {
			c.startEntry(&c.sb[i], c.now)
		}
		if c.sb[i].readyAt > at {
			at = c.sb[i].readyAt
		}
		dirty = true
		c.sb[i].cleaned = true
	}
	if c.l1.CleanLine(line) {
		dirty = true
	}
	if c.l2 != nil && c.l2.CleanLine(line) {
		dirty = true
	}
	if c.m.llc.CleanLine(line) {
		dirty = true
	}
	if !dirty {
		return
	}
	accept := c.enqueueWB(line)
	if at > accept {
		accept = at // data not committed before the acquisition finishes
	}
	c.addCleanPending(accept)
	c.m.dir.Downgrade(c.id, line)
}

// addCleanPending records an outstanding clwb accept. A fence must wait
// for every outstanding clwb, which is exactly the maximum accept time
// issued so far (completed ones are in the past and delay nothing), so
// a single monotonic barrier suffices.
func (c *Core) addCleanPending(accept units.Cycles) {
	if accept > c.cleanBarrier {
		c.cleanBarrier = accept
	}
}

// WriteNT performs a non-temporal store ("skipping the cache", §5):
// data goes to memory through write-combining buffers without being
// cached; any cached copy is flushed and invalidated first.
func (c *Core) WriteNT(addr uint64, data []byte) {
	start := c.now
	c.m.backing.Write(addr, data)
	end := addr + uint64(len(data))
	for line := c.lineBase(addr); line < end; line += c.m.cfg.LineSize {
		lo, hi := addr, end
		if lo < line {
			lo = line
		}
		if hi > line+c.m.cfg.LineSize {
			hi = line + c.m.cfg.LineSize
		}
		c.ntStoreLine(line, lo, hi)
	}
	c.emit(OpStoreNT, addr, uint64(len(data)), c.now-start)
}

func (c *Core) ntStoreLine(line, lo, hi uint64) {
	c.stats.NTStores++
	c.instr++
	c.now++
	// An NT store to a cached line flushes and invalidates the copy.
	c.evictEverywhere(line)
	// Find or allocate a write-combining buffer for the line.
	idx := -1
	for i := range c.wc {
		if c.wc[i].line == line {
			idx = i
			break
		}
	}
	if idx < 0 {
		if len(c.wc) >= c.m.cfg.WCEntries {
			c.flushWCEntry(0)
		}
		c.wc = append(c.wc, wcEntry{line: line})
		idx = len(c.wc) - 1
	}
	for b := units.AlignDown(lo, 8); b < hi; b += 8 {
		c.wc[idx].mask |= 1 << ((b - line) / 8)
	}
	full := uint64(1)<<(c.m.cfg.LineSize/8) - 1
	if c.m.cfg.LineSize >= 512 {
		full = ^uint64(0)
	}
	if c.wc[idx].mask == full {
		c.flushWCEntry(idx)
	}
}

// evictEverywhere flushes (if dirty) and invalidates the line from all
// cache levels and the store buffer.
func (c *Core) evictEverywhere(line uint64) {
	removed := false
	for i := c.sbHead; i < len(c.sb); i++ {
		if c.sb[i].line == line {
			c.sb = append(c.sb[:i], c.sb[i+1:]...)
			removed = true
			i--
		}
	}
	if removed {
		// Mid-buffer removal shifts every later entry, so seq->position
		// arithmetic no longer holds; rebuild the index. NT stores are
		// rare relative to buffer operations, and the buffer is small.
		c.sbRebuildIndex()
	}
	wasDirty := false
	if _, d := c.l1.Invalidate(line); d {
		wasDirty = true
	}
	if c.l2 != nil {
		if _, d := c.l2.Invalidate(line); d {
			wasDirty = true
		}
	}
	if _, d := c.m.llc.Invalidate(line); d {
		wasDirty = true
	}
	if wasDirty {
		c.enqueueWB(line)
	}
	c.m.dir.Evicted(c.id, line)
}

// flushWCEntry streams write-combining buffer i to memory and returns
// the device-accept completion.
func (c *Core) flushWCEntry(i int) units.Cycles {
	e := c.wc[i]
	c.wc = append(c.wc[:i], c.wc[i+1:]...)
	accept := c.enqueueWB(e.line)
	c.addCleanPending(accept)
	return accept
}

// flushWC flushes all write-combining buffers, returning the last
// device-accept time.
func (c *Core) flushWC() units.Cycles {
	var last units.Cycles
	for len(c.wc) > 0 {
		if t := c.flushWCEntry(0); t > last {
			last = t
		}
	}
	return last
}
