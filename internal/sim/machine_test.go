package sim

import (
	"testing"

	"prestores/internal/memdev"
	"prestores/internal/units"
)

func TestMachinePresets(t *testing.T) {
	for _, m := range []*Machine{MachineA(), MachineBFast(), MachineBSlow()} {
		if m.Cores() == 0 {
			t.Fatalf("%s: no cores", m.Name())
		}
		if m.LLC() == nil || m.Directory() == nil {
			t.Fatalf("%s: missing LLC/directory", m.Name())
		}
	}
	a := MachineA()
	if a.LineSize() != 64 {
		t.Fatalf("machine A line size %d", a.LineSize())
	}
	if a.Device(WindowPMEM).Kind() != memdev.KindPMEM {
		t.Fatal("machine A PMEM window wrong kind")
	}
	b := MachineBFast()
	if b.LineSize() != 128 {
		t.Fatalf("machine B line size %d", b.LineSize())
	}
	if b.Device(WindowRemote).Kind() != memdev.KindRemote {
		t.Fatal("machine B remote window wrong kind")
	}
	if b.Device("nope") != nil {
		t.Fatal("unknown window returned a device")
	}
}

func TestMachineBLatencies(t *testing.T) {
	fast := MachineBFast().Device(WindowRemote).ReadLatency()
	slow := MachineBSlow().Device(WindowRemote).ReadLatency()
	if fast != 60 || slow != 200 {
		t.Fatalf("B latencies = %d / %d, want 60 / 200", fast, slow)
	}
}

func TestDeviceForPanicsOutsideWindows(t *testing.T) {
	m := MachineA()
	defer func() {
		if recover() == nil {
			t.Fatal("deviceFor outside windows did not panic")
		}
	}()
	m.Core(0).Read(1<<50, make([]byte, 8))
}

func TestAllocRegions(t *testing.T) {
	m := MachineA()
	r1 := m.Alloc(WindowPMEM, "a", 1000)
	r2 := m.Alloc(WindowPMEM, "b", 1000)
	if r1.Base%64 != 0 {
		t.Fatal("alloc not line-aligned")
	}
	if r2.Base < r1.End() {
		t.Fatal("regions overlap")
	}
	if m.Arena().WindowOf(r1.Base) != WindowPMEM {
		t.Fatal("region in wrong window")
	}
}

func TestDrainChargesCores(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	// Generate write-backs whose media writes outlast the issue phase.
	for i := uint64(0); i < 2000; i++ {
		c.Write(1<<40+i*4096, make([]byte, 64))
		c.Prestore(1<<40+i*4096, 64, Clean)
	}
	before := c.Now()
	m.Drain()
	if c.Now() < before {
		t.Fatal("drain rewound the clock")
	}
	// Every core ends at the same (drained) time.
	for i := 1; i < m.Cores(); i++ {
		if m.Core(i).Now() != c.Now() {
			t.Fatal("drain left cores unsynchronized")
		}
	}
}

func TestSyncCores(t *testing.T) {
	m := MachineA()
	m.Core(0).Compute(1000)
	m.SyncCores()
	for i := 0; i < m.Cores(); i++ {
		if m.Core(i).Now() != m.Core(0).Now() {
			t.Fatal("SyncCores failed")
		}
	}
}

func TestElapsed(t *testing.T) {
	m := MachineA()
	cores := []*Core{m.Core(0), m.Core(1)}
	el := Elapsed(m, cores, func() {
		m.Core(0).Compute(100)
		m.Core(1).Compute(250)
	})
	if el != 250 {
		t.Fatalf("Elapsed = %d, want 250 (max over cores)", el)
	}
}

func TestRunInterleavedDeterminism(t *testing.T) {
	run := func() units.Cycles {
		m := MachineA()
		cores := []*Core{m.Core(0), m.Core(1), m.Core(2)}
		RunInterleaved(cores, 500, func(tid, i int, c *Core) {
			addr := uint64(1<<40) + uint64(tid*1<<20+i*64)
			c.Write(addr, []byte{byte(i)})
		})
		return m.MaxCycles()
	}
	if run() != run() {
		t.Fatal("interleaved run is not deterministic")
	}
}

func TestRunInterleavedOrder(t *testing.T) {
	m := MachineA()
	cores := []*Core{m.Core(0), m.Core(1)}
	var order []int
	RunInterleaved(cores, 3, func(tid, i int, c *Core) {
		order = append(order, tid*10+i)
	})
	want := []int{0, 10, 1, 11, 2, 12}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestFlushCachesWritesDirtyData(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	dev := m.Device(WindowPMEM)
	c.Write(1<<40, make([]byte, 4096))
	c.Fence()
	m.FlushCaches()
	if dev.Stats().BytesReceived < 4096 {
		t.Fatalf("flush delivered %d bytes, want >= 4096", dev.Stats().BytesReceived)
	}
	if c.L1().IsDirty(1 << 40) {
		t.Fatal("dirty line survived FlushCaches")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	m := MachineA()
	c := m.Core(0)
	c.Write(1<<40, []byte{7})
	c.Fence()
	m.ResetStats()
	if m.Device(WindowPMEM).Stats().LineWrites != 0 {
		t.Fatal("device stats survived reset")
	}
	var b [1]byte
	c.Read(1<<40, b[:])
	if b[0] != 7 {
		t.Fatal("reset lost data")
	}
	if c.Stats().Loads != 1 {
		t.Fatal("core stats not restarted")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("machine without windows did not panic")
		}
	}()
	NewMachine(Config{})
}

func TestCrossCoreVisibility(t *testing.T) {
	m := MachineA()
	w, r := m.Core(0), m.Core(1)
	w.Write(1<<40, []byte{99})
	w.Fence()
	var b [1]byte
	r.Read(1<<40, b[:])
	if b[0] != 99 {
		t.Fatal("cross-core read missed published data")
	}
}

func TestRemoteInvalidationOnRFO(t *testing.T) {
	m := MachineBFast()
	a, b := m.Core(0), m.Core(1)
	addr := uint64(1 << 40)
	// Core B caches the line.
	var buf [1]byte
	a.Write(addr, []byte{1})
	a.Fence()
	b.Read(addr, buf[:])
	if !b.L1().Contains(addr) {
		t.Fatal("setup: line not in B's L1")
	}
	// Core A re-acquires it exclusively; B's copy must vanish.
	a.Write(addr, []byte{2})
	a.Fence()
	if b.L1().Contains(addr) {
		t.Fatal("stale copy survived a remote RFO")
	}
	b.Read(addr, buf[:])
	if buf[0] != 2 {
		t.Fatal("reader saw stale data")
	}
}

// scriptedDev is a memdev.Device whose WriteLine returns a
// pre-scripted sequence of accept times, so tests can force the
// non-monotonic accept orders a shared queue sees when devices of
// different speeds (or cores with different clocks) interleave.
type scriptedDev struct {
	accepts []units.Cycles
	i       int
}

func (d *scriptedDev) Name() string                                  { return "scripted" }
func (d *scriptedDev) Kind() memdev.Kind                             { return memdev.KindDRAM }
func (d *scriptedDev) InternalGranularity() uint64                   { return 64 }
func (d *scriptedDev) ReadLatency() units.Cycles                     { return 1 }
func (d *scriptedDev) Stats() memdev.Stats                           { return memdev.Stats{} }
func (d *scriptedDev) ResetStats()                                   {}
func (d *scriptedDev) Flush(now units.Cycles) units.Cycles           { return now }
func (d *scriptedDev) DirectoryAccess(now units.Cycles) units.Cycles { return now }
func (d *scriptedDev) ReadLine(now units.Cycles, addr, size uint64) units.Cycles {
	return now
}
func (d *scriptedDev) WriteLine(now units.Cycles, addr, size uint64) units.Cycles {
	a := d.accepts[d.i]
	d.i++
	return a
}

// TestWBQueueBackPressureNonMonotonic locks in the full-queue contract:
// a core stalls until a slot frees — even when accept times are out of
// FIFO order — and no pending entry is ever dropped, so every stall
// cycle is accounted and the capacity invariant holds.
func TestWBQueueBackPressureNonMonotonic(t *testing.T) {
	dev := &scriptedDev{accepts: []units.Cycles{100, 90, 300, 120, 310}}
	devFor := func(uint64) memdev.Device { return dev }
	q := &wbQueue{cap: 2}

	check := func(step int, gotNow, wantNow units.Cycles, wantStalls uint64) {
		t.Helper()
		if gotNow != wantNow {
			t.Fatalf("step %d: coreNow = %d, want %d", step, gotNow, wantNow)
		}
		if q.stalls != wantStalls {
			t.Fatalf("step %d: stalls = %d, want %d", step, q.stalls, wantStalls)
		}
		if len(q.pending) > q.cap {
			t.Fatalf("step %d: %d pending entries exceed cap %d", step, len(q.pending), q.cap)
		}
	}

	now, _ := q.enqueue(0, 0, 0, 64, devFor) // accept 100
	check(1, now, 0, 0)
	now, _ = q.enqueue(0, 0, 64, 64, devFor) // accept 90: older entry finishes later
	check(2, now, 0, 0)
	// Queue full. The oldest accept (100) gates the third enqueue; the
	// stall retires both entries (90 completed earlier, out of order).
	now, _ = q.enqueue(0, 0, 128, 64, devFor) // accept 300
	check(3, now, 100, 100)
	if len(q.pending) != 1 {
		t.Fatalf("step 3: %d pending, want 1", len(q.pending))
	}
	now, _ = q.enqueue(100, 100, 192, 64, devFor) // accept 120
	check(4, now, 100, 100)
	// Full again with pending = [300, 120]: the stall must reach 300
	// (not drop the oldest), adding 200 more stall cycles.
	now, _ = q.enqueue(100, 100, 256, 64, devFor) // accept 310
	check(5, now, 300, 300)
	if len(q.pending) != 1 || q.pending[0] != 310 {
		t.Fatalf("step 5: pending = %v, want [310]", q.pending)
	}
}

func TestDrainModeString(t *testing.T) {
	if DrainEager.String() != "eager" || DrainLazy.String() != "lazy" {
		t.Fatal("drain mode names")
	}
}

func TestPrestoreOpString(t *testing.T) {
	if Demote.String() != "demote" || Clean.String() != "clean" {
		t.Fatal("op names")
	}
}
