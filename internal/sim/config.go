// Package sim assembles the full machine model: cores with store
// buffers and private caches, a shared last-level cache, a coherence
// directory, a write-back queue, and the memory devices underneath.
//
// It exposes the two machine configurations the paper evaluates
// (Machine A: x86 + Optane PMEM; Machine B: ARM + FPGA memory in fast
// and slow variants) and the pre-store operations (demote and clean)
// plus non-temporal stores (skip).
//
// The simulator is deterministic and functionally single-threaded:
// simulated threads are interleaved cooperatively (RunInterleaved), and
// each core carries its own cycle clock, with devices arbitrating
// bandwidth through busy-until queues. Simulated data is real — bytes
// written through a core read back byte-identical — so the workloads
// built on top (key-value stores, matrices, message rings) are
// functionally testable, not just timing models.
package sim

import (
	"fmt"

	"prestores/internal/cache"
	"prestores/internal/memdev"
	"prestores/internal/units"
)

// DrainMode selects when the store buffer publishes writes.
type DrainMode int

const (
	// DrainEager models x86-TSO: stores begin acquiring their cache
	// line as soon as they issue, so by the time a fence executes most
	// of the buffer has already drained. This is why the paper expects
	// (and finds) little benefit from demote pre-stores on Machine A.
	DrainEager DrainMode = iota
	// DrainLazy models weak memory architectures (ARM): the CPU keeps
	// modifications private until forced by a fence, an atomic, or
	// buffer capacity — Problem #2 in the paper.
	DrainLazy
)

// String returns the drain-mode name.
func (m DrainMode) String() string {
	if m == DrainEager {
		return "eager"
	}
	return "lazy"
}

// WindowSpec binds an address window to a memory device.
type WindowSpec struct {
	Name   string
	Base   uint64
	Size   uint64
	Device memdev.Device
}

// Config describes a machine.
type Config struct {
	Name     string
	Clock    units.Hz
	Cores    int
	LineSize uint64

	L1  cache.Config // per-core
	L2  cache.Config // per-core; Size==0 disables the level
	LLC cache.Config // shared

	Drain DrainMode
	// LazyDrainAge is how long a lazily-buffered store stays private
	// before background retirement begins anyway (weak-memory CPUs
	// drain old write-buffer entries opportunistically). Demote
	// pre-stores matter for stores *younger* than this at the fence.
	LazyDrainAge units.Cycles
	SBEntries    int // store-buffer entries per core
	MLP          int // concurrent RFOs a fence drain can keep in flight
	WCEntries    int // non-temporal write-combining buffers per core
	WBQueueCap   int // machine write-back queue depth

	// DirOnDevice charges a device round trip for coherence-directory
	// state changes (Machine B / Enzian). When false the directory
	// update is considered folded into the memory access itself.
	DirOnDevice bool

	// CleanToPOU makes clean pre-stores write to the point of
	// unification (the shared cache level) instead of memory, as ARM's
	// dc cvau does (paper §2); Machine B sets this.
	CleanToPOU bool

	// PrefetchDepth enables a next-line hardware prefetcher: a demand
	// load miss pulls the following PrefetchDepth lines toward the
	// cache in the background. Pre-fetching moves data *up* the
	// hierarchy — the paper's framing makes pre-stores its converse —
	// and notably does nothing for write-back ordering (Problem #1).
	PrefetchDepth int

	Windows []WindowSpec
	Seed    uint64
}

// Standard window names used by the presets.
const (
	WindowDRAM   = "dram"
	WindowPMEM   = "pmem"
	WindowRemote = "fpga"
	WindowCXL    = "cxlssd"
)

func fillDefaults(cfg *Config) {
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = 64
	}
	if cfg.Clock == 0 {
		cfg.Clock = 2100 * units.MHz
	}
	if cfg.SBEntries == 0 {
		cfg.SBEntries = 56
	}
	if cfg.MLP == 0 {
		cfg.MLP = 4
	}
	if cfg.WCEntries == 0 {
		cfg.WCEntries = 8
	}
	if cfg.WBQueueCap == 0 {
		cfg.WBQueueCap = 32
	}
	if cfg.LazyDrainAge == 0 {
		cfg.LazyDrainAge = 1000
	}
}

// MachineA returns the paper's Machine A: a 2.1 GHz x86 Xeon-like
// socket with 64 B lines, an eager (TSO) store buffer, and Optane
// persistent memory behind the LLC. Cache sizes are scaled down ~8×
// from the physical part so the simulated working sets stay tractable;
// every experiment scales its footprint with the LLC so the ratios that
// produce each effect are preserved (DESIGN.md §6).
func MachineA() *Machine { return NewMachine(ConfigA()) }

// ConfigA returns Machine A's configuration, for experiments that need
// to ablate one knob before construction.
func ConfigA() Config {
	clock := 2100 * units.MHz
	cfg := Config{
		Name:     "machine-A (x86 + Optane PMEM)",
		Clock:    clock,
		Cores:    10,
		LineSize: 64,
		L1: cache.Config{
			Name: "L1d", Size: 32 * units.KiB, Ways: 8, LineSize: 64,
			Policy: cache.PLRU, HitLat: 4,
		},
		L2: cache.Config{
			Name: "L2", Size: 256 * units.KiB, Ways: 8, LineSize: 64,
			Policy: cache.PLRU, HitLat: 14,
		},
		LLC: cache.Config{
			Name: "LLC", Size: 4 * units.MiB, Ways: 16, LineSize: 64,
			Policy: cache.QLRU, RandomMix: 0.6, HitLat: 42,
		},
		Drain:       DrainEager,
		MLP:         10,
		DirOnDevice: false,
		Windows: []WindowSpec{
			{Name: WindowDRAM, Base: 0, Size: 64 * units.GiB,
				Device: memdev.NewDRAM(memdev.Config{Name: "ddr4", Clock: clock})},
			{Name: WindowPMEM, Base: 1 << 40, Size: 256 * units.GiB,
				Device: memdev.NewPMEM(memdev.Config{Name: "optane", Clock: clock})},
		},
	}
	return cfg
}

// MachineBConfig parameterizes the Enzian-like Machine B.
type MachineBConfig struct {
	// FPGALatency is the unloaded FPGA access latency in CPU cycles.
	FPGALatency units.Cycles
	// FPGABandwidth is the FPGA link bandwidth in bytes per second.
	FPGABandwidth float64
}

// Validate rejects physically meaningless tunings. FPGALatency and
// FPGABandwidth must both be positive: a zero latency or a zero (or
// negative/NaN) bandwidth would silently produce nonsense timings.
func (bc MachineBConfig) Validate() error {
	if bc.FPGALatency == 0 {
		return fmt.Errorf("fpga_latency: must be positive (got 0)")
	}
	if !(bc.FPGABandwidth > 0) {
		return fmt.Errorf("fpga_bandwidth: must be positive (got %g)", bc.FPGABandwidth)
	}
	return nil
}

// machineBName derives the machine name from the actual tuning: the
// two paper presets keep their historical names, and any other tuning
// is labeled with its parameters instead of being mislabeled as
// "fast" or "slow".
func machineBName(bc MachineBConfig) string {
	switch bc {
	case MachineBFastOptions():
		return "machine-B-fast (ARM + FPGA)"
	case MachineBSlowOptions():
		return "machine-B-slow (ARM + FPGA)"
	}
	return fmt.Sprintf("machine-B (ARM + FPGA, %d cyc, %.3g GB/s)",
		bc.FPGALatency, bc.FPGABandwidth/1e9)
}

// MachineBFastOptions returns the low-latency FPGA tuning (60 cycles,
// 10 GB/s — future high-end CXL memory).
func MachineBFastOptions() MachineBConfig {
	return MachineBConfig{FPGALatency: 60, FPGABandwidth: 10e9}
}

// MachineBSlowOptions returns the high-latency FPGA tuning (200 cycles,
// 1.5 GB/s — medium-tier CXL storage).
func MachineBSlowOptions() MachineBConfig {
	return MachineBConfig{FPGALatency: 200, FPGABandwidth: 1.5e9}
}

// MachineBFast returns Machine B with the low-latency FPGA
// configuration (60 cycles, 10 GB/s — future high-end CXL memory).
func MachineBFast() *Machine { return MachineB(MachineBFastOptions()) }

// MachineBSlow returns Machine B with the high-latency FPGA
// configuration (200 cycles, 1.5 GB/s — medium-tier CXL storage).
func MachineBSlow() *Machine { return MachineB(MachineBSlowOptions()) }

// ConfigBFast returns Machine B-fast's full configuration, for
// experiments that need to ablate one knob before construction.
func ConfigBFast() Config { return ConfigB(MachineBFastOptions()) }

// ConfigBSlow returns Machine B-slow's full configuration, for
// experiments that need to ablate one knob before construction.
func ConfigBSlow() Config { return ConfigB(MachineBSlowOptions()) }

// MachineB returns the paper's Machine B: an ARM ThunderX-1-like CPU
// (128 B lines, weak memory model, lazy store-buffer drain) that
// transparently caches FPGA memory; the coherence directory lives on
// the FPGA.
func MachineB(bc MachineBConfig) *Machine { return NewMachine(ConfigB(bc)) }

// ConfigB returns Machine B's configuration for the given FPGA tuning,
// for experiments that need to ablate one knob before construction.
// Invalid tunings panic; use ConfigBChecked to get the error instead.
func ConfigB(bc MachineBConfig) Config {
	cfg, err := ConfigBChecked(bc)
	if err != nil {
		panic("sim.ConfigB: " + err.Error())
	}
	return cfg
}

// ConfigBChecked returns Machine B's configuration for the given FPGA
// tuning, or an error naming the offending field for invalid tunings.
func ConfigBChecked(bc MachineBConfig) (Config, error) {
	if err := bc.Validate(); err != nil {
		return Config{}, err
	}
	clock := 2000 * units.MHz
	cfg := Config{
		Name:     machineBName(bc),
		Clock:    clock,
		Cores:    12,
		LineSize: 128,
		L1: cache.Config{
			Name: "L1d", Size: 32 * units.KiB, Ways: 32, LineSize: 128,
			Policy: cache.LRU, HitLat: 5,
		},
		// ThunderX-1 has no private L2; the shared L2 acts as the LLC.
		LLC: cache.Config{
			Name: "L2", Size: 4 * units.MiB, Ways: 16, LineSize: 128,
			Policy: cache.Random, HitLat: 40,
		},
		Drain:       DrainLazy,
		MLP:         2, // narrow in-order core: little memory-level parallelism
		DirOnDevice: true,
		CleanToPOU:  true,
		Windows: []WindowSpec{
			{Name: WindowDRAM, Base: 0, Size: 64 * units.GiB,
				Device: memdev.NewDRAM(memdev.Config{Name: "ddr4", Clock: clock, Granularity: 128})},
			{Name: WindowRemote, Base: 1 << 40, Size: 64 * units.GiB,
				Device: memdev.NewRemote(memdev.Config{
					Name:        "fpga",
					ReadLat:     bc.FPGALatency,
					BandwidthBS: bc.FPGABandwidth,
					Granularity: 128,
					Clock:       clock,
				})},
		},
	}
	return cfg, nil
}

// MachineC returns an extension configuration beyond the paper's
// testbeds: the x86 socket of Machine A fronting byte-addressable
// CXL-attached flash (Table 1's "CXL SSD" row, 512 B internal pages).
// Both of the paper's problems compound here: evictions amplify writes
// against the big flash pages, and the CXL link makes directory traffic
// expensive.
func MachineC() *Machine { return NewMachine(ConfigC()) }

// ConfigC returns Machine C's configuration.
func ConfigC() Config {
	cfg := ConfigA()
	cfg.Name = "machine-C (x86 + CXL SSD)"
	for i := range cfg.Windows {
		if cfg.Windows[i].Name == WindowPMEM {
			cfg.Windows[i] = WindowSpec{
				Name: WindowCXL, Base: cfg.Windows[i].Base, Size: cfg.Windows[i].Size,
				Device: memdev.NewCXLSSD(memdev.Config{Clock: cfg.Clock}),
			}
		}
	}
	return cfg
}
