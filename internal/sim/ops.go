package sim

import (
	"context"
	"sync/atomic"
)

// OpsCounter accumulates retired simulated operations for one
// experiment run. Unlike the process-wide RetiredOps counter, which
// concurrent experiments inflate for each other, an OpsCounter receives
// flushes only from the machines explicitly attached to it, so
// per-experiment throughput numbers stay exact under any parallelism.
//
// Machines flush in bulk at Drain/ResetStats, so the per-op simulator
// path never touches the counter; the atomic only makes the final read
// race-free against a machine flushing on another goroutine.
type OpsCounter struct {
	n atomic.Uint64
}

func (c *OpsCounter) add(d uint64) { c.n.Add(d) }

// Total returns the operations flushed into the counter so far.
func (c *OpsCounter) Total() uint64 { return c.n.Load() }

type opsSinkKey struct{}

// WithOpsSink returns a context carrying c, so machine construction
// sites can attach their machines to the surrounding run's counter via
// AttachOps without a parameter threaded through every experiment
// signature.
func WithOpsSink(ctx context.Context, c *OpsCounter) context.Context {
	return context.WithValue(ctx, opsSinkKey{}, c)
}

// OpsSinkFrom returns the context's ops counter, or nil.
func OpsSinkFrom(ctx context.Context) *OpsCounter {
	c, _ := ctx.Value(opsSinkKey{}).(*OpsCounter)
	return c
}

// SetOpsSink directs the machine's future retired-op flushes into c as
// well as the process-wide counter (nil detaches).
func (m *Machine) SetOpsSink(c *OpsCounter) { m.opsSink = c }

// AttachOps connects the machine to the context's ops counter, if one
// is present, and returns the machine for chaining at construction
// sites:
//
//	m := sim.MachineA().AttachOps(ctx)
func (m *Machine) AttachOps(ctx context.Context) *Machine {
	if c := OpsSinkFrom(ctx); c != nil {
		m.opsSink = c
	}
	return m
}
