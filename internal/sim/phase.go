package sim

// PhaseControl carries the warm-state forking hooks across a workload's
// warmup/measure boundary. The sweep layers (internal/bench,
// internal/scenario) construct one wired to a checkpoint store; the
// workload only declares where its warmup ends.
//
// A nil *PhaseControl is valid and means "no checkpointing": TryRestore
// reports a miss and WarmupDone does nothing, so workloads call both
// unconditionally and behave identically with or without a store.
type PhaseControl struct {
	// Restore attempts to fetch a warm snapshot and apply it to m,
	// returning the workload's annex bytes on a hit.
	Restore func(m *Machine) (annex []byte, ok bool)
	// Save persists m's post-warmup state together with the workload's
	// annex bytes.
	Save func(m *Machine, annex []byte)
}

// TryRestore attempts to fork m from a memoized warm state. On a hit
// the machine already carries the post-warmup state and the workload
// must skip its warmup phase, using the returned annex to reconstruct
// host-side state.
func (p *PhaseControl) TryRestore(m *Machine) (annex []byte, ok bool) {
	if p == nil || p.Restore == nil {
		return nil, false
	}
	return p.Restore(m)
}

// WarmupDone declares that m has just crossed the workload's
// warmup/measure boundary, offering the state for memoization along
// with the workload's host-state annex.
func (p *PhaseControl) WarmupDone(m *Machine, annex []byte) {
	if p == nil || p.Save == nil {
		return
	}
	p.Save(m, annex)
}
