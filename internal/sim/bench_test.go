package sim

import (
	"testing"

	"prestores/internal/xrand"
)

// The ops/sec benchmarks below are the simulator's throughput contract:
// every experiment funnels millions of simulated loads and stores
// through this path, so host-side cost per simulated op is what bounds
// the size of the configurations the harness can sweep. All of them
// run un-hooked and report allocations — the hot path is required to
// stay allocation-free (see DESIGN.md §6, "Performance architecture").

// benchFootprint is sized at 2× Machine A's LLC so the streams exercise
// the full hit/miss/evict/write-back pipeline, not just L1 hits.
const benchFootprint = 8 << 20

// benchAddrs precomputes a deterministic line-granular address stream
// so the timed loop measures the simulator, not the generator.
func benchAddrs(m *Machine, zipfian bool) []uint64 {
	region := m.Alloc(WindowDRAM, "bench", benchFootprint)
	lines := benchFootprint / m.LineSize()
	addrs := make([]uint64, 1<<16)
	if zipfian {
		z := xrand.NewZipf(xrand.New(42), lines, 0.99)
		for i := range addrs {
			addrs[i] = region.Base + z.Next()*m.LineSize()
		}
	} else {
		for i := range addrs {
			addrs[i] = region.Base + (uint64(i)%lines)*m.LineSize()
		}
	}
	return addrs
}

func benchCoreRead(b *testing.B, zipfian bool) {
	m := MachineA()
	c := m.Core(0)
	addrs := benchAddrs(m, zipfian)
	var buf [8]byte
	for _, a := range addrs { // warm caches and backing pages
		c.Read(a, buf[:])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(addrs[i&(len(addrs)-1)], buf[:])
	}
}

func BenchmarkCoreRead(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchCoreRead(b, false) })
	b.Run("zipf", func(b *testing.B) { benchCoreRead(b, true) })
}

func benchCoreWrite(b *testing.B, zipfian bool) {
	m := MachineA()
	c := m.Core(0)
	addrs := benchAddrs(m, zipfian)
	var buf [8]byte
	for _, a := range addrs {
		c.Write(a, buf[:])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Write(addrs[i&(len(addrs)-1)], buf[:])
	}
}

func BenchmarkCoreWrite(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchCoreWrite(b, false) })
	b.Run("zipf", func(b *testing.B) { benchCoreWrite(b, true) })
}

// BenchmarkCoreFence measures the store→fence pair that dominates
// persistence-ordered workloads (the paper's Listing 2 shape).
func BenchmarkCoreFence(b *testing.B) {
	m := MachineA()
	c := m.Core(0)
	addrs := benchAddrs(m, false)
	for _, a := range addrs {
		c.WriteU64(a, 1)
	}
	c.Fence()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.WriteU64(addrs[i&(len(addrs)-1)], uint64(i))
		c.Fence()
	}
}

func benchCorePrestore(b *testing.B, op PrestoreOp) {
	m := MachineA()
	c := m.Core(0)
	addrs := benchAddrs(m, false)
	for _, a := range addrs {
		// Warm with the full store+pre-store pair so the write-back
		// queue's in-flight tracking reaches steady-state size before
		// allocations are counted.
		c.WriteU64(a, 1)
		c.Prestore(a, 8, op)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&(len(addrs)-1)]
		c.WriteU64(a, uint64(i))
		c.Prestore(a, 8, op)
	}
}

func BenchmarkCorePrestore(b *testing.B) {
	b.Run("demote", func(b *testing.B) { benchCorePrestore(b, Demote) })
	b.Run("clean", func(b *testing.B) { benchCorePrestore(b, Clean) })
}
