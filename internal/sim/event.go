package sim

import (
	"fmt"

	"prestores/internal/units"
)

// OpKind identifies a simulated operation for instrumentation hooks.
type OpKind int

// Operation kinds delivered to hooks.
const (
	OpLoad OpKind = iota
	OpStore
	OpStoreNT
	OpFence
	OpAtomic // CAS / fetch-add; fence semantics
	OpPrestoreClean
	OpPrestoreDemote
	OpCompute
	OpFuncEnter
	OpFuncExit
)

// String returns the op-kind name.
func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpStoreNT:
		return "store-nt"
	case OpFence:
		return "fence"
	case OpAtomic:
		return "atomic"
	case OpPrestoreClean:
		return "prestore-clean"
	case OpPrestoreDemote:
		return "prestore-demote"
	case OpCompute:
		return "compute"
	case OpFuncEnter:
		return "func-enter"
	case OpFuncExit:
		return "func-exit"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// IsFenceSemantics reports whether the op orders memory accesses (the
// paper groups explicit fences and atomic instructions together).
func (k OpKind) IsFenceSemantics() bool { return k == OpFence || k == OpAtomic }

// Event describes one simulated operation, delivered to the machine's
// hook (DirtBuster's instrumentation layer and the profiler subscribe
// here — this is the simulator's equivalent of Intel PIN).
type Event struct {
	Core  int
	Kind  OpKind
	Addr  uint64
	Size  uint64
	Fn    string // innermost function annotation at the time of the op
	Instr uint64 // core instruction counter after the op
	// Cost is the number of cycles the operation advanced the issuing
	// core's clock — the basis for perf-style time attribution (the
	// paper classifies applications by the share of *time* spent in
	// store instructions, which on slow memories far exceeds the
	// instruction share).
	Cost uint64
}

// Hook receives every simulated operation when installed. The core
// pointer gives access to the function-annotation stack for callchain
// sampling. Hooks must not mutate machine state.
type Hook func(ev Event, core *Core)

// MemEventKind identifies a memory-system event: activity below the
// instruction stream — write-backs, fills, evictions, drain stalls —
// that no OpKind carries but that the paper's figures are made of
// (write-amplification curves are write-back streams, fence-stall
// breakdowns are drain timings).
type MemEventKind uint8

// Memory-system event kinds delivered to the mem hook.
const (
	// MemWriteBack is a dirty line entering the write-back queue toward
	// its device: a clwb clean, a dirty LLC eviction, or a non-temporal
	// stream. End is the device-accept completion cycle.
	MemWriteBack MemEventKind = iota
	// MemFill is a line read from its device into the LLC on a demand
	// load miss or a store's write-allocate RFO.
	MemFill
	// MemEvict is a clean LLC eviction: the line is dropped without any
	// device traffic.
	MemEvict
	// MemPrefetch is a next-line prefetcher fill: a background device
	// read that does not stall the issuing core.
	MemPrefetch
	// MemSBDrain is a core stalled retiring its oldest store-buffer
	// entry because the buffer hit capacity.
	MemSBDrain
)

// String returns the mem-event-kind name.
func (k MemEventKind) String() string {
	switch k {
	case MemWriteBack:
		return "write-back"
	case MemFill:
		return "fill"
	case MemEvict:
		return "evict"
	case MemPrefetch:
		return "prefetch"
	case MemSBDrain:
		return "sb-drain"
	default:
		return fmt.Sprintf("MemEventKind(%d)", int(k))
	}
}

// MemEvent describes one memory-system event. Start and End are the
// event's simulated-cycle interval on the issuing core's clock (equal
// for instantaneous events such as clean evictions).
type MemEvent struct {
	Core  int
	Kind  MemEventKind
	Addr  uint64
	Size  uint64
	Start units.Cycles
	End   units.Cycles
}

// MemHook receives every memory-system event when installed. Like Hook
// it is purely observational: implementations must not mutate machine
// state, and an installed hook never changes simulated timing.
type MemHook func(ev MemEvent)
