package sim

import "fmt"

// OpKind identifies a simulated operation for instrumentation hooks.
type OpKind int

// Operation kinds delivered to hooks.
const (
	OpLoad OpKind = iota
	OpStore
	OpStoreNT
	OpFence
	OpAtomic // CAS / fetch-add; fence semantics
	OpPrestoreClean
	OpPrestoreDemote
	OpCompute
	OpFuncEnter
	OpFuncExit
)

// String returns the op-kind name.
func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpStoreNT:
		return "store-nt"
	case OpFence:
		return "fence"
	case OpAtomic:
		return "atomic"
	case OpPrestoreClean:
		return "prestore-clean"
	case OpPrestoreDemote:
		return "prestore-demote"
	case OpCompute:
		return "compute"
	case OpFuncEnter:
		return "func-enter"
	case OpFuncExit:
		return "func-exit"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// IsFenceSemantics reports whether the op orders memory accesses (the
// paper groups explicit fences and atomic instructions together).
func (k OpKind) IsFenceSemantics() bool { return k == OpFence || k == OpAtomic }

// Event describes one simulated operation, delivered to the machine's
// hook (DirtBuster's instrumentation layer and the profiler subscribe
// here — this is the simulator's equivalent of Intel PIN).
type Event struct {
	Core  int
	Kind  OpKind
	Addr  uint64
	Size  uint64
	Fn    string // innermost function annotation at the time of the op
	Instr uint64 // core instruction counter after the op
	// Cost is the number of cycles the operation advanced the issuing
	// core's clock — the basis for perf-style time attribution (the
	// paper classifies applications by the share of *time* spent in
	// store instructions, which on slow memories far exceeds the
	// instruction share).
	Cost uint64
}

// Hook receives every simulated operation when installed. The core
// pointer gives access to the function-annotation stack for callchain
// sampling. Hooks must not mutate machine state.
type Hook func(ev Event, core *Core)
