package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// WarmPrefixKey returns the content-addressed identity of a spec's warm
// prefix: the SHA-256 of the spec's canonical JSON with every
// sweep-axis-varied field masked out, joined with the build version and
// the phase index. Two grid points of the same sweep — and two sweeps
// differing only in swept values or axis order — share the key; any
// change to a non-swept field (workload parameters, machine, quick
// overrides, even cosmetic fields) produces a different key, trading
// spurious misses for guaranteed correctness.
//
// The key deliberately does not resolve swept parameter values: the
// runner combines it at runtime with the machine's config hash and the
// workload's warm-parameter values, which is what distinguishes grid
// points whose swept values do change the warm phase (see warmRunKey).
func (s Spec) WarmPrefixKey(build string, phase int) (string, error) {
	masked := s

	// Swept parameter names, sorted — the axis order and value lists are
	// masked, only the set of swept names survives.
	axisParams := make([]string, 0, len(s.Policy.Axes))
	for _, a := range s.Policy.Axes {
		axisParams = append(axisParams, a.Param)
	}
	sort.Strings(axisParams)

	// Drop swept parameters from the workload params and quick
	// overrides: an axis overrides both, so their base values are dead.
	maskMap := func(in map[string]any) map[string]any {
		if in == nil {
			return nil
		}
		out := make(map[string]any, len(in))
		for k, v := range in {
			out[k] = v
		}
		for _, p := range axisParams {
			delete(out, p)
		}
		return out
	}
	masked.Workload.Params = maskMap(s.Workload.Params)
	masked.Run.Quick = maskMap(s.Run.Quick)
	masked.Policy.Axes = nil
	// The per-site op table is a measured-phase choice by the same
	// contract that masks the "op" axis (below): warm loads are
	// baseline-crafted. Masking it lets every candidate plan the
	// autotuner tries fork from one shared warm checkpoint.
	masked.Policy.Table = nil
	// Columns, footer and ops shape the rendered table, not the
	// simulation — but masking them would let two specs with different
	// non-swept content collide if a future field ever feeds simulation.
	// Keep them: a cosmetic change costing one cold load is the safe
	// direction. The "op" axis is masked with the rest of the axes; ops
	// never affect the warm phase (loads are baseline-crafted).

	canon, err := json.Marshal(masked)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "scenario\x00%s\x00%d\x00", build, phase)
	h.Write(canon)
	for _, p := range axisParams {
		fmt.Fprintf(h, "\x00axis:%s", p)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// warmRunKey narrows a spec's warm-prefix key to one grid point: the
// machine's config hash plus the effective values of the workload's
// declared warm parameters. Grid points differing only in measured-
// phase parameters (op, threads, mix, ...) map to the same run key and
// fork from the same checkpoint.
func warmRunKey(prefixKey, configHash string, warmParams []string, p Params) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s", prefixKey, configHash)
	names := append([]string(nil), warmParams...)
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "\x00%s=%v", n, p[n])
	}
	return hex.EncodeToString(h.Sum(nil))
}
