package scenario_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"prestores/internal/scenario"

	_ "prestores/internal/workloads/micro" // registers listing1/2/3
)

// smallSpec returns a valid spec cheap enough to execute in unit tests.
func smallSpec() scenario.Spec {
	return scenario.Spec{
		Version: 1,
		Name:    "unit",
		Machine: scenario.MachineSpec{Preset: "machine-a"},
		Workload: scenario.WorkloadSpec{
			Name:   "listing3",
			Params: map[string]any{"iters": 500},
		},
		Policy: scenario.PolicySpec{
			Ops: []string{"none", "clean"},
			Columns: []scenario.Column{
				{Title: "base cyc", Op: "none", Metric: "cycles_per_rew", Format: "f1"},
				{Title: "clean cyc", Op: "clean", Metric: "cycles_per_rew", Format: "f1"},
				{Title: "slowdown", Op: "clean", Metric: "cycles_per_rew", DenOp: "none", Format: "x2"},
			},
			Footer: []string{"(footer)"},
		},
	}
}

func TestValidateErrorFieldPaths(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*scenario.Spec)
		wantErr string
	}{
		{"bad version", func(s *scenario.Spec) { s.Version = 3 }, "version: must be 1 (got 3)"},
		{"missing workload", func(s *scenario.Spec) { s.Workload.Name = "" }, "workload.name: required"},
		{"unknown workload", func(s *scenario.Spec) { s.Workload.Name = "nope" },
			`workload.name: unknown workload "nope"`},
		{"unknown param", func(s *scenario.Spec) { s.Workload.Params["bogus"] = 1 },
			"workload.params.bogus: unknown parameter"},
		{"mistyped param", func(s *scenario.Spec) { s.Workload.Params["iters"] = "many" },
			"workload.params.iters: must be an integer (got many)"},
		{"no machine", func(s *scenario.Spec) { s.Machine.Preset = "" },
			"machine: one of machine.preset, machine.config"},
		{"two machines", func(s *scenario.Spec) {
			s.Policy.Axes = append(s.Policy.Axes, scenario.Axis{Param: "machine", Values: []any{"machine-a"}})
		}, "machine: machine.preset, machine.config, and a \"machine\" axis are mutually exclusive"},
		{"unknown preset", func(s *scenario.Spec) { s.Machine.Preset = "machine-z" },
			`machine.preset: unknown preset "machine-z"`},
		{"bad device window", func(s *scenario.Spec) {
			s.Machine.Devices = map[string]map[string]any{"nvram": {"read_lat": float64(9)}}
		}, "machine.devices.nvram: no such window"},
		{"bad device param", func(s *scenario.Spec) {
			s.Machine.Devices = map[string]map[string]any{"pmem": {"warp": float64(9)}}
		}, "machine.devices.pmem.warp: unknown device parameter"},
		{"unknown axis", func(s *scenario.Spec) {
			s.Policy.Axes = append(s.Policy.Axes, scenario.Axis{Param: "zoom", Values: []any{1}})
		}, `policy.axes[0].param: unknown axis "zoom"`},
		{"empty axis", func(s *scenario.Spec) {
			s.Policy.Axes = append(s.Policy.Axes, scenario.Axis{Param: "iters"})
		}, "policy.axes[0].values: at least one value required"},
		{"bad axis value", func(s *scenario.Spec) {
			s.Policy.Axes = append(s.Policy.Axes, scenario.Axis{Param: "iters", Values: []any{"lots"}})
		}, "policy.axes[0].values[0]: must be an integer (got lots)"},
		{"label mismatch", func(s *scenario.Spec) {
			s.Policy.Axes = append(s.Policy.Axes,
				scenario.Axis{Param: "iters", Values: []any{1, 2}, Labels: []string{"one"}})
		}, "policy.axes[0].labels: got 1 labels for 2 values"},
		{"empty telemetry", func(s *scenario.Spec) { s.Telemetry = &scenario.TelemetrySpec{} },
			"telemetry: at least one of timeline or line_report must be true"},
		{"negative telemetry ring", func(s *scenario.Spec) {
			s.Telemetry = &scenario.TelemetrySpec{Timeline: true, MaxEvents: -1}
		}, "telemetry.max_events: must be non-negative (got -1)"},
		{"oversized telemetry ring", func(s *scenario.Spec) {
			s.Telemetry = &scenario.TelemetrySpec{Timeline: true, MaxEvents: scenario.MaxTelemetryEvents + 1}
		}, "telemetry.max_events: 4194305 exceeds the limit of 4194304"},
		{"no ops", func(s *scenario.Spec) { s.Policy.Ops = nil },
			"policy.ops: at least one op required"},
		{"duplicate op", func(s *scenario.Spec) { s.Policy.Ops = []string{"none", "none"} },
			`policy.ops[1]: duplicate op "none"`},
		{"unknown op", func(s *scenario.Spec) { s.Policy.Ops = []string{"none", "warp"} },
			`policy.ops[1]: unknown op "warp"`},
		{"no columns", func(s *scenario.Spec) { s.Policy.Columns = nil },
			"policy.columns: at least one column required"},
		{"untitled column", func(s *scenario.Spec) { s.Policy.Columns[0].Title = "" },
			"policy.columns[0].title: required"},
		{"bad format", func(s *scenario.Spec) { s.Policy.Columns[0].Format = "hex" },
			`policy.columns[0].format: unknown format "hex"`},
		{"unknown metric", func(s *scenario.Spec) { s.Policy.Columns[0].Metric = "joy" },
			`policy.columns[0].metric: unknown metric "joy"`},
		{"op not in ops", func(s *scenario.Spec) { s.Policy.Columns[0].Op = "skip" },
			`policy.columns[0].op: "skip" not in policy.ops [none clean]`},
		{"negative budget", func(s *scenario.Spec) { s.Run.MaxPoints = -1 },
			"run.max_points: must be non-negative (got -1)"},
		{"grid too big", func(s *scenario.Spec) {
			s.Run.MaxPoints = 3
			s.Policy.Axes = append(s.Policy.Axes, scenario.Axis{Param: "iters", Values: []any{1, 2}})
		}, "policy.axes: grid of 4 points exceeds the budget of 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := smallSpec()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestExecRendersTable(t *testing.T) {
	s := smallSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := s.Exec(context.Background(), &out, true); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 { // header + one row + footer
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), got)
	}
	for _, want := range []string{"base cyc", "clean cyc", "slowdown"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("header missing %q: %q", want, lines[0])
		}
	}
	if !strings.HasSuffix(lines[1], "x") {
		t.Errorf("ratio cell not x-formatted: %q", lines[1])
	}
	if lines[2] != "(footer)" {
		t.Errorf("footer = %q", lines[2])
	}
}

func TestExecCancelledWritesNothingAfterHeader(t *testing.T) {
	s := smallSpec()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	if err := s.Exec(ctx, &out, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("cancelled run wrote %d lines, want header only:\n%s", len(lines), out.String())
	}
}

func TestKeyIsStableAndContentSensitive(t *testing.T) {
	a := smallSpec()
	b := smallSpec()
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("identical specs hash differently: %s vs %s", ka, kb)
	}
	if len(ka) != 64 {
		t.Fatalf("key is not a sha256 hex digest: %q", ka)
	}
	b.Workload.Params["iters"] = 501
	kc, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Fatal("different specs share a key")
	}
}

func TestDevicePatchChangesResults(t *testing.T) {
	fast := smallSpec()
	slow := smallSpec()
	slow.Machine.Devices = map[string]map[string]any{
		"pmem": {"write_lat": float64(5000)},
	}
	if err := slow.Validate(); err != nil {
		t.Fatal(err)
	}
	var fastOut, slowOut bytes.Buffer
	if err := fast.Exec(context.Background(), &fastOut, true); err != nil {
		t.Fatal(err)
	}
	if err := slow.Exec(context.Background(), &slowOut, true); err != nil {
		t.Fatal(err)
	}
	if fastOut.String() == slowOut.String() {
		t.Fatalf("patching pmem write_lat did not change the table:\n%s", fastOut.String())
	}
}
