package scenario

import (
	"testing"
)

func warmSpec() Spec {
	return Spec{
		Version: 1,
		Name:    "warmkey-test",
		Machine: MachineSpec{Preset: "machine-a"},
		Workload: WorkloadSpec{
			Name:   "ycsb",
			Params: map[string]any{"records": 400000, "value_size": 256, "threads": 10},
		},
		Policy: PolicySpec{
			Axes: []Axis{
				{Param: "value_size", Values: []any{64, 256, 1024}, Quick: []any{256}},
				{Param: "op", Values: []any{"none", "clean", "skip"}},
			},
			Columns: []Column{{Title: "value", Axis: "value_size"}},
		},
		Run: RunSpec{Quick: map[string]any{"records": 100000, "value_size": 512}},
	}
}

func key(t *testing.T, s Spec, build string, phase int) string {
	t.Helper()
	k, err := s.WarmPrefixKey(build, phase)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestWarmPrefixKeyInvariants pins the key's contract: invariant under
// everything a sweep axis masks (axis order, value lists, quick lists,
// labels, the swept parameters' base values), sensitive to everything
// else (non-swept parameters, machine, build, phase).
func TestWarmPrefixKeyInvariants(t *testing.T) {
	base := key(t, warmSpec(), "build-1", 0)

	// Determinism.
	if k := key(t, warmSpec(), "build-1", 0); k != base {
		t.Errorf("same spec hashed twice: %s vs %s", base, k)
	}

	same := map[string]func(*Spec){
		"axis order swapped": func(s *Spec) {
			s.Policy.Axes[0], s.Policy.Axes[1] = s.Policy.Axes[1], s.Policy.Axes[0]
		},
		"axis values changed": func(s *Spec) {
			s.Policy.Axes[0].Values = []any{4096}
		},
		"axis quick list changed": func(s *Spec) {
			s.Policy.Axes[0].Quick = []any{64, 1024}
		},
		"axis labels added": func(s *Spec) {
			s.Policy.Axes[1].Labels = []string{"base", "cl", "sk"}
		},
		"swept param's base value changed": func(s *Spec) {
			s.Workload.Params["value_size"] = 8192
		},
		"swept param's quick override changed": func(s *Spec) {
			s.Run.Quick["value_size"] = 64
		},
		"swept param's quick override removed": func(s *Spec) {
			delete(s.Run.Quick, "value_size")
		},
	}
	for name, mutate := range same {
		s := warmSpec()
		mutate(&s)
		if k := key(t, s, "build-1", 0); k != base {
			t.Errorf("%s: key changed (%s vs %s); sweep-masked fields must not affect it", name, k, base)
		}
	}

	diff := map[string]func(*Spec){
		"non-swept param changed": func(s *Spec) {
			s.Workload.Params["records"] = 50000
		},
		"non-swept quick override changed": func(s *Spec) {
			s.Run.Quick["records"] = 200000
		},
		"machine preset changed": func(s *Spec) {
			s.Machine.Preset = "machine-b-fast"
		},
		"seed changed": func(s *Spec) {
			s.Run.Seed = 7
		},
		"workload changed": func(s *Spec) {
			s.Workload.Name = "listing3"
		},
		"axis param set changed": func(s *Spec) {
			s.Policy.Axes[0].Param = "threads"
		},
	}
	for name, mutate := range diff {
		s := warmSpec()
		mutate(&s)
		if k := key(t, s, "build-1", 0); k == base {
			t.Errorf("%s: key unchanged; non-masked fields must affect it", name)
		}
	}

	if k := key(t, warmSpec(), "build-2", 0); k == base {
		t.Error("build change: key unchanged; checkpoints must not survive a simulator change")
	}
	if k := key(t, warmSpec(), "build-1", 1); k == base {
		t.Error("phase change: key unchanged")
	}

	// The original spec must not have been mutated by key computation.
	if got := warmSpec().Workload.Params["value_size"]; got != 256 {
		t.Errorf("spec mutated: value_size = %v", got)
	}
}

// TestWarmRunKey pins the per-grid-point narrowing: sensitive to the
// config hash and the declared warm parameters' effective values,
// insensitive to measured-phase parameters and declaration order.
func TestWarmRunKey(t *testing.T) {
	warm := []string{"store", "records", "value_size"}
	p := Params{"store": "clht", "records": 100000, "value_size": 256, "threads": 10, "mix": "A"}
	base := warmRunKey("prefix", "cfg-1", warm, p)

	if k := warmRunKey("prefix", "cfg-1", warm, p.clone()); k != base {
		t.Error("same inputs hashed twice differ")
	}
	if k := warmRunKey("prefix", "cfg-2", warm, p); k == base {
		t.Error("config hash ignored")
	}
	if k := warmRunKey("other", "cfg-1", warm, p); k == base {
		t.Error("prefix key ignored")
	}
	if k := warmRunKey("prefix", "cfg-1", []string{"records", "value_size", "store"}, p); k != base {
		t.Error("warm-param declaration order leaked into the key")
	}

	q := p.clone()
	q["threads"] = 4
	q["mix"] = "F"
	if k := warmRunKey("prefix", "cfg-1", warm, q); k != base {
		t.Error("measured-phase params leaked into the key; sibling grid points would never share a checkpoint")
	}
	q = p.clone()
	q["value_size"] = 1024
	if k := warmRunKey("prefix", "cfg-1", warm, q); k == base {
		t.Error("warm param value ignored; grid points with different loads would share a checkpoint")
	}
}

// FuzzWarmPrefixKey hammers the masking logic: for any parameter name
// and pair of values, a spec that sweeps that parameter must produce
// the same key regardless of the parameter's base value, and the key
// computation must be deterministic and never panic.
func FuzzWarmPrefixKey(f *testing.F) {
	f.Add("value_size", int64(64), int64(4096), true)
	f.Add("records", int64(100), int64(100000), false)
	f.Add("", int64(0), int64(0), true)
	f.Add("op", int64(1), int64(2), true)
	f.Add("machine", int64(-1), int64(1), false)
	f.Fuzz(func(t *testing.T, name string, v1, v2 int64, sweep bool) {
		// The base spec already sweeps some params; those are masked
		// whether or not this case adds an axis for them.
		for _, a := range warmSpec().Policy.Axes {
			if a.Param == name {
				sweep = true
			}
		}
		build := func(v int64) Spec {
			s := warmSpec()
			s.Workload.Params[name] = v
			if sweep {
				s.Policy.Axes = append(s.Policy.Axes, Axis{Param: name, Values: []any{v}})
			}
			return s
		}
		k1, err1 := build(v1).WarmPrefixKey("b", 0)
		k2, err2 := build(v2).WarmPrefixKey("b", 0)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error asymmetry: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if r1, _ := build(v1).WarmPrefixKey("b", 0); r1 != k1 {
			t.Fatalf("non-deterministic key for %q", name)
		}
		if sweep && k1 != k2 {
			t.Errorf("swept param %q: base value leaked into the key", name)
		}
		if !sweep && v1 != v2 && k1 == k2 {
			t.Errorf("non-swept param %q: value ignored by the key", name)
		}
	})
}
