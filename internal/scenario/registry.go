package scenario

import (
	"fmt"
	"sort"

	"prestores/internal/sim"
)

// Metrics is what one workload run reports: named scalar results
// (cycles, amplification factors, throughput). Column definitions in a
// Spec reference these names.
type Metrics map[string]float64

// Params carries a workload's decoded parameters. Values are JSON
// scalars (float64, bool, string) or native Go scalars when a spec is
// built in code; the typed getters below normalize. Validation against
// the workload's ParamDefs happens before Run sees the map, so getters
// are lenient.
type Params map[string]any

func asFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	case uint32:
		return float64(n), true
	}
	return 0, false
}

// Int returns the named integer parameter, or def when absent.
func (p Params) Int(name string, def int) int {
	if v, ok := p[name]; ok {
		if f, ok := asFloat(v); ok {
			return int(f)
		}
	}
	return def
}

// Uint64 returns the named integer parameter, or def when absent.
func (p Params) Uint64(name string, def uint64) uint64 {
	if v, ok := p[name]; ok {
		if f, ok := asFloat(v); ok {
			return uint64(f)
		}
	}
	return def
}

// Float returns the named float parameter, or def when absent.
func (p Params) Float(name string, def float64) float64 {
	if v, ok := p[name]; ok {
		if f, ok := asFloat(v); ok {
			return f
		}
	}
	return def
}

// Bool returns the named bool parameter, or def when absent.
func (p Params) Bool(name string, def bool) bool {
	if v, ok := p[name]; ok {
		if b, ok := v.(bool); ok {
			return b
		}
	}
	return def
}

// Str returns the named string parameter, or def when absent.
func (p Params) Str(name, def string) string {
	if v, ok := p[name]; ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return def
}

func (p Params) clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Param kinds.
const (
	KindInt    = "int"    // non-negative integer
	KindFloat  = "float"  // real number
	KindBool   = "bool"   // true/false
	KindString = "string" // free-form or enumerated string
)

// ParamDef declares one typed workload parameter for validation and
// the /v1/registry listing.
type ParamDef struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // KindInt, KindFloat, KindBool, KindString
	Help string `json:"help,omitempty"`
}

// Workload is one registered workload: a named, parameterized
// simulation entry point the scenario grid runner can invoke. Workload
// packages register themselves at init time via Register.
type Workload struct {
	Name        string
	Description string
	Params      []ParamDef // accepted parameters, for validation + registry
	Ops         []string   // supported pre-store ops (e.g. none, clean, skip, demote)
	MetricNames []string   // metric names Run reports, for column validation
	// Run executes the workload once on a fresh machine under the given
	// pre-store op and returns its metrics. Implementations must be
	// deterministic for fixed (machine config, op, params).
	Run func(m *sim.Machine, op string, p Params) (Metrics, error)
	// WarmParams lists the parameters that determine the workload's warm
	// (load) phase. Grid points differing only in other parameters or in
	// the pre-store op share one post-warmup machine state, so the runner
	// may fork them from a memoized checkpoint. Empty means the workload
	// declares no checkpointable phase boundary.
	WarmParams []string
	// RunPhased, when set, is the checkpoint-aware variant of Run: the
	// workload routes its warmup through pc (sim.PhaseControl), restoring
	// a memoized post-warmup state on a hit and offering its own on a
	// miss. Must produce metrics byte-identical to Run for the same
	// inputs — the golden guard runs both paths.
	RunPhased func(m *sim.Machine, op string, p Params, pc *sim.PhaseControl) (Metrics, error)
	// Sites names the workload's pre-store call sites, in declaration
	// order. A workload with sites resolves each site's op through
	// SiteOp, so a spec's policy.table (and the autotuner searching over
	// it) can choose demote/clean/skip per site instead of one op for
	// the whole run. Site ops apply to the measured phase only — the
	// warm phase is baseline-crafted regardless (the checkpoint contract
	// depends on this).
	Sites []string
}

// siteTableKey is the reserved Params key the grid runner uses to hand
// a spec's policy.table to the workload. It is injected at run time and
// never appears in a spec's workload.params (validation rejects unknown
// parameter names, and names are workload-declared).
const siteTableKey = "__site_table"

// SiteOp resolves the pre-store op for one named call site: the
// policy.table entry for the site when the run carries one, otherwise
// the row's op. Workloads with Sites call this once per site at the
// start of the measured phase.
func SiteOp(p Params, site, rowOp string) string {
	if t, ok := p[siteTableKey].(map[string]string); ok {
		if op, ok := t[site]; ok && op != "" {
			return op
		}
	}
	return rowOp
}

var workloadRegistry = map[string]Workload{}

// Register adds a workload to the registry; duplicate names and
// malformed registrations panic at init time.
func Register(w Workload) {
	if w.Name == "" || w.Run == nil {
		panic("scenario: workload registration needs a name and a Run func")
	}
	if _, dup := workloadRegistry[w.Name]; dup {
		panic("scenario: duplicate workload " + w.Name)
	}
	if len(w.Ops) == 0 {
		panic("scenario: workload " + w.Name + " registers no ops")
	}
	for _, p := range w.Params {
		switch p.Kind {
		case KindInt, KindFloat, KindBool, KindString:
		default:
			panic(fmt.Sprintf("scenario: workload %s param %s has unknown kind %q", w.Name, p.Name, p.Kind))
		}
	}
	seenSites := map[string]bool{}
	for _, site := range w.Sites {
		if site == "" || seenSites[site] {
			panic(fmt.Sprintf("scenario: workload %s has empty or duplicate site %q", w.Name, site))
		}
		seenSites[site] = true
	}
	workloadRegistry[w.Name] = w
}

// Get returns the named workload.
func Get(name string) (Workload, bool) {
	w, ok := workloadRegistry[name]
	return w, ok
}

// Workloads returns every registered workload sorted by name.
func Workloads() []Workload {
	out := make([]Workload, 0, len(workloadRegistry))
	for _, w := range workloadRegistry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WorkloadNames returns the registered workload names, sorted.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloadRegistry))
	for n := range workloadRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (w Workload) paramDef(name string) (ParamDef, bool) {
	for _, p := range w.Params {
		if p.Name == name {
			return p, true
		}
	}
	return ParamDef{}, false
}

func (w Workload) paramNames() []string {
	names := make([]string, len(w.Params))
	for i, p := range w.Params {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

func (w Workload) hasOp(op string) bool {
	for _, o := range w.Ops {
		if o == op {
			return true
		}
	}
	return false
}

func (w Workload) hasMetric(m string) bool {
	for _, n := range w.MetricNames {
		if n == m {
			return true
		}
	}
	return false
}
