package scenario_test

import (
	"bytes"
	"context"
	"testing"

	"prestores/internal/checkpoint"
	"prestores/internal/scenario"

	_ "prestores/internal/workloads/ycsb" // registers the phased ycsb workload
)

// TestExecWarmForkByteIdentity drives the declarative grid runner's
// checkpoint path: an op sweep over the ycsb workload with a checkpoint
// view on the context must produce the cold run's bytes exactly, with
// the sweep's sibling grid points forking from the first point's
// post-load snapshot.
func TestExecWarmForkByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real KV sweep twice; skipped with -short")
	}
	spec := scenario.Spec{
		Version: 1,
		Name:    "warm-exec",
		Machine: scenario.MachineSpec{Preset: "machine-a"},
		Workload: scenario.WorkloadSpec{
			Name: "ycsb",
			Params: map[string]any{
				"records": 20000, "ops": 400, "threads": 4, "value_size": 256,
			},
		},
		Policy: scenario.PolicySpec{
			Axes: []scenario.Axis{{Param: "op", Values: []any{"none", "clean", "skip"}}},
			Columns: []scenario.Column{
				{Title: "mode", Axis: "op"},
				{Title: "ops/s", Metric: "ops_per_sec", Format: "mops"},
				{Title: "amp", Metric: "write_amp", Format: "f2"},
			},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	run := func(ctx context.Context) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := spec.Exec(ctx, &buf, false); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cold := run(context.Background())

	store, err := checkpoint.NewStore(0, "")
	if err != nil {
		t.Fatal(err)
	}
	view := store.View()
	warm := run(checkpoint.NewContext(context.Background(), view))

	if !bytes.Equal(cold, warm) {
		t.Errorf("warm-forked Exec output differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	// Three ops share one load: the first misses, the rest fork.
	if view.Misses() != 1 || view.Hits() != 2 {
		t.Errorf("checkpoint traffic = %d hits, %d misses; want 2 hits, 1 miss", view.Hits(), view.Misses())
	}
}
