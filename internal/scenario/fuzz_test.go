package scenario_test

import (
	"testing"

	"prestores/internal/scenario"

	_ "prestores/internal/workloads/micro" // registers listing1/2/3
)

// fuzzSeeds are representative inputs: valid specs exercising every
// feature (device patches, machine/op axes, quick lists, footers),
// near-miss invalid specs, and plain garbage.
var fuzzSeeds = []string{
	``,
	`not json`,
	`null`,
	`[]`,
	`{}`,
	`{"version":1}`,
	`{"version":1,"workload":{"name":"listing3"},"machine":{"preset":"machine-a"},
	  "policy":{"ops":["none","clean"],"columns":[{"title":"cyc","op":"none","metric":"cycles_per_rew","format":"f1"}]}}`,
	`{"version":1,"workload":{"name":"listing1","params":{"elem_size":256,"volume":1048576}},
	  "machine":{"preset":"machine-a","devices":{"pmem":{"read_lat":500,"granularity":512}}},
	  "policy":{"ops":["none"],"axes":[{"param":"threads","values":[1,2],"quick":[1]}],
	    "columns":[{"title":"t","axis":"threads"},{"title":"amp","op":"none","metric":"write_amp","format":"f2"}]},
	  "run":{"quick":{"volume":262144},"seed":7,"max_points":16}}`,
	`{"version":1,"workload":{"name":"listing2"},
	  "policy":{"ops":["none","demote"],
	    "axes":[{"param":"machine","values":["machine-b-fast","machine-b-slow"],"labels":["F","S"]}],
	    "columns":[{"title":"m","axis":"machine"},
	      {"title":"gain","op":"none","metric":"cycles_per_iter","den_op":"demote","format":"pct"}],
	    "footer":["(a footer line)"]}}`,
	`{"version":1,"workload":{"name":"listing3"},"machine":{"preset":"machine-a"},
	  "policy":{"axes":[{"param":"op","values":["none","clean"]}],
	    "columns":[{"title":"mode","axis":"op"},{"title":"cyc","metric":"cycles_per_rew"}]}}`,
	`{"version":1,"workload":{"name":"listing3"},"machine":{"preset":"nope"},
	  "policy":{"ops":["none"],"columns":[{"title":"c","op":"none","metric":"elapsed"}]}}`,
	`{"version":1,"workload":{"name":"listing1","params":{"elem_size":1.5}},
	  "machine":{"preset":"machine-a"},
	  "policy":{"ops":["none"],"columns":[{"title":"c","op":"none","metric":"elapsed"}]}}`,
	`{"version":1,"workload":{"name":"listing3"},
	  "machine":{"config":{"cores":2,"clock_hz":1000000000,"line_size":64,
	    "l1":{"size":32768,"ways":8,"line_size":64},
	    "l2":{"size":262144,"ways":8,"line_size":64},
	    "llc":{"size":4194304,"ways":16,"line_size":64},
	    "sb_entries":56,"mlp":10,"wc_entries":16,"wb_queue_cap":64,
	    "windows":[{"name":"dram","base":0,"size":1073741824,"device":{"kind":"dram"}},
	      {"name":"pmem","base":1073741824,"size":1073741824,"device":{"kind":"pmem","read_lat":300}}]}},
	  "policy":{"ops":["none"],"columns":[{"title":"c","op":"none","metric":"elapsed"}]}}`,
}

// FuzzDecode throws arbitrary JSON at the spec decoder: it must return
// a validated spec or a deterministic error, and never panic. Valid
// specs must survive the canonical round trip with a stable key.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s1, err1 := scenario.Decode(data)
		s2, err2 := scenario.Decode(data)
		switch {
		case (err1 == nil) != (err2 == nil):
			t.Fatalf("nondeterministic decode: %v vs %v", err1, err2)
		case err1 != nil:
			if err1.Error() != err2.Error() {
				t.Fatalf("nondeterministic error: %q vs %q", err1, err2)
			}
			return
		}
		_ = s2
		c, err := s1.Canonical()
		if err != nil {
			t.Fatalf("canonical of valid spec failed: %v", err)
		}
		rt, err := scenario.Decode(c)
		if err != nil {
			t.Fatalf("canonical form of a valid spec failed to decode: %v\njson: %s", err, c)
		}
		k1, err := s1.Key()
		if err != nil {
			t.Fatal(err)
		}
		k2, err := rt.Key()
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("key changed across round trip: %s vs %s", k1, k2)
		}
	})
}
