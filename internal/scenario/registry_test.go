package scenario_test

import (
	"testing"

	"prestores/internal/scenario"
	"prestores/internal/workloads/kv"

	// Each workload package registers its scenario workloads (and kv
	// stores) in init; linking them all is the completeness oracle —
	// Register panics on duplicates, so each registers exactly once.
	_ "prestores/internal/btree"
	_ "prestores/internal/workloads/clht"
	_ "prestores/internal/workloads/masstree"
	_ "prestores/internal/workloads/nas"
	_ "prestores/internal/workloads/phoronix"
	_ "prestores/internal/workloads/tensor"
	_ "prestores/internal/workloads/x9"
	_ "prestores/internal/workloads/ycsb"
)

// TestRegistryComplete pins the full workload registry: every workload
// package registers, under its expected name, with a complete listing.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"btree", "listing1", "listing2", "listing3", "nas",
		"phoronix", "tensor-train", "x9", "ycsb",
	}
	got := scenario.WorkloadNames()
	if len(got) != len(want) {
		t.Fatalf("WorkloadNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WorkloadNames() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		w, ok := scenario.Get(name)
		if !ok {
			t.Fatalf("Get(%q) missing", name)
		}
		if w.Description == "" {
			t.Errorf("workload %s has no description", name)
		}
		if len(w.Ops) == 0 || len(w.MetricNames) == 0 {
			t.Errorf("workload %s listing incomplete: ops %v, metrics %v", name, w.Ops, w.MetricNames)
		}
	}
}

// TestStoreRegistryComplete pins the kv store registry the ycsb
// workload's "store" parameter selects from.
func TestStoreRegistryComplete(t *testing.T) {
	want := []string{"clht", "masstree"}
	got := kv.Stores()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("kv.Stores() = %v, want %v", got, want)
	}
}
