// Package scenario turns the repo's evaluation matrix into data: a
// versioned, JSON-serializable Spec names a machine (preset or fully
// parameterized), a registered workload with typed parameters, a
// pre-store policy (ops, placement window, sweep axes, table columns),
// and run controls (quick overrides, point budget, seed). The grid
// runner executes the spec deterministically and renders the same
// fixed-width tables internal/bench prints, so named experiments can
// be re-expressed as specs without disturbing the golden output guard,
// and the prestored daemon can serve arbitrary custom scenarios.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"prestores/internal/memdev"
	"prestores/internal/sim"
)

// Version is the spec schema version this package reads and writes.
const Version = 1

// DefaultMaxPoints bounds the sweep grid (rows × ops) when a spec does
// not set run.max_points — the daemon's guard against accidental or
// hostile combinatorial blow-ups.
const DefaultMaxPoints = 4096

// MachineSpec selects the machine: exactly one of a named preset, a
// full custom sim.Config, or a "machine" sweep axis in the policy.
// Devices optionally patches per-window device parameters on top of
// whichever machine each run uses (window name → memdev parameter map).
type MachineSpec struct {
	Preset  string                    `json:"preset,omitempty"`
	Config  *sim.Config               `json:"config,omitempty"`
	Devices map[string]map[string]any `json:"devices,omitempty"`
}

// WorkloadSpec names a registered workload and its parameters.
type WorkloadSpec struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params,omitempty"`
}

// Axis is one sweep dimension: a workload parameter name, or the
// special axes "machine" (values are preset names) and "op" (values
// are pre-store op names; rows then run that single op). The first
// axis varies slowest. Quick, when set, replaces Values in quick mode.
// Labels, when set, replace the rendered value in axis columns.
type Axis struct {
	Param  string   `json:"param"`
	Values []any    `json:"values"`
	Quick  []any    `json:"quick,omitempty"`
	Labels []string `json:"labels,omitempty"`
}

// Column defines one table column.
//   - Axis != "":  render that axis's value (or label) for the row.
//   - DenOp != "": ratio of Op's Metric over DenOp's DenMetric
//     (DenMetric defaults to Metric).
//   - otherwise:   the value of Metric from Op's run.
//
// With an "op" axis, Op and DenOp stay empty and Metric reads the
// row's single run.
type Column struct {
	Title     string `json:"title"`
	Axis      string `json:"axis,omitempty"`
	Op        string `json:"op,omitempty"`
	Metric    string `json:"metric,omitempty"`
	DenOp     string `json:"den_op,omitempty"`
	DenMetric string `json:"den_metric,omitempty"`
	Format    string `json:"format,omitempty"`
}

// PolicySpec is the pre-store policy under test: which ops each row
// runs, where pre-stored data is placed, the sweep axes, and how the
// resulting table is laid out.
type PolicySpec struct {
	Ops    []string `json:"ops,omitempty"`
	Window string   `json:"window,omitempty"` // placement: overrides the workload's "window" param
	// Table overrides the pre-store op per workload site (site name →
	// op). Sites the table does not name fall back to the row's op. Only
	// workloads that declare Sites accept a table; the autotuner searches
	// over this field.
	Table   map[string]string `json:"table,omitempty"`
	Axes    []Axis            `json:"axes,omitempty"`
	Columns []Column          `json:"columns"`
	Footer  []string          `json:"footer,omitempty"`
}

// RunSpec holds run controls.
type RunSpec struct {
	// Quick overrides workload parameters in quick mode (axis Quick
	// lists shrink the grid; these shrink per-run work).
	Quick map[string]any `json:"quick,omitempty"`
	// Seed, when non-zero, overrides the workload's "seed" parameter.
	Seed uint64 `json:"seed,omitempty"`
	// MaxPoints caps rows × ops; 0 means DefaultMaxPoints.
	MaxPoints int `json:"max_points,omitempty"`
	// ColdStart disables warm-state checkpoint forking for this spec
	// even when the runner has a checkpoint view: every point loads from
	// scratch. The autotuner's telemetry probe sets this so the recorded
	// events never depend on what happens to be in the checkpoint cache.
	ColdStart bool `json:"cold_start,omitempty"`
}

// TelemetrySpec opts a spec run into telemetry capture (see
// internal/telemetry). At least one of Timeline / LineReport must be
// set. The block is optional and omitted from the canonical form when
// absent, so specs without it keep their content-addressed identity.
type TelemetrySpec struct {
	// Timeline records a simulated-cycle timeline (Chrome trace-event
	// JSON, Perfetto-loadable).
	Timeline bool `json:"timeline,omitempty"`
	// LineReport records per-cache-line attribution and per-bucket
	// write amplification.
	LineReport bool `json:"line_report,omitempty"`
	// MaxEvents caps the timeline ring (0 = recorder default).
	MaxEvents int `json:"max_events,omitempty"`
	// BucketBytes sets the write-amp bucket size (0 = default).
	BucketBytes uint64 `json:"bucket_bytes,omitempty"`
}

// MaxTelemetryEvents bounds telemetry.max_events — the daemon's guard
// against a spec requesting an absurdly large ring.
const MaxTelemetryEvents = 4 << 20

// Spec is one complete declarative scenario.
type Spec struct {
	Version   int            `json:"version"`
	Name      string         `json:"name,omitempty"`
	Title     string         `json:"title,omitempty"`
	Paper     string         `json:"paper,omitempty"`
	Machine   MachineSpec    `json:"machine"`
	Workload  WorkloadSpec   `json:"workload"`
	Policy    PolicySpec     `json:"policy"`
	Run       RunSpec        `json:"run,omitempty"`
	Telemetry *TelemetrySpec `json:"telemetry,omitempty"`
}

// Decode parses a JSON spec strictly (unknown fields are errors) and
// validates it. Arbitrary input never panics; errors are deterministic.
func Decode(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, err
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Canonical returns the canonical JSON form of a validated spec:
// fixed struct field order, map keys sorted (encoding/json), no
// insignificant whitespace. Two specs with equal canonical bytes are
// the same scenario; the daemon's cache key hashes this form.
func (s Spec) Canonical() ([]byte, error) {
	return json.Marshal(s)
}

// Key returns the content-addressed identity of the spec: the hex
// SHA-256 of its canonical form.
func (s Spec) Key() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// formatNames lists the accepted column formats (see formatCell).
var formatNames = []string{"bytes", "cyc0", "drop0", "f0", "f1", "f2", "mops", "pct", "plain", "x2"}

func knownFormat(f string) bool {
	for _, n := range formatNames {
		if f == n {
			return true
		}
	}
	return false
}

// Formats returns the accepted column format names, sorted.
func Formats() []string {
	out := make([]string, len(formatNames))
	copy(out, formatNames)
	return out
}

func checkParamValue(path string, def ParamDef, v any) error {
	switch def.Kind {
	case KindBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("%s: must be a bool (got %v)", path, v)
		}
	case KindString:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("%s: must be a string (got %v)", path, v)
		}
	case KindFloat:
		if _, ok := asFloat(v); !ok {
			return fmt.Errorf("%s: must be a number (got %v)", path, v)
		}
	case KindInt:
		f, ok := asFloat(v)
		if !ok {
			return fmt.Errorf("%s: must be an integer (got %v)", path, v)
		}
		if f != float64(int64(f)) {
			return fmt.Errorf("%s: must be an integer (got %g)", path, f)
		}
		if f < 0 {
			return fmt.Errorf("%s: must be non-negative (got %g)", path, f)
		}
	}
	return nil
}

func checkParamMap(prefix string, w Workload, params map[string]any) error {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		def, ok := w.paramDef(k)
		if !ok {
			return fmt.Errorf("%s.%s: unknown parameter (workload %s accepts %v)",
				prefix, k, w.Name, w.paramNames())
		}
		if err := checkParamValue(prefix+"."+k, def, params[k]); err != nil {
			return err
		}
	}
	return nil
}

func presetNames() []string {
	ps := sim.Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// axis lookup helpers on the spec.

func (s *Spec) axisFor(param string) (Axis, bool) {
	for _, a := range s.Policy.Axes {
		if a.Param == param {
			return a, true
		}
	}
	return Axis{}, false
}

func (s *Spec) hasAxis(param string) bool {
	_, ok := s.axisFor(param)
	return ok
}

// Validate checks the spec against the registries. The first problem
// found is returned; error strings are deterministic and name the
// offending field path (e.g. "policy.axes[1].values[0]").
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("version: must be %d (got %d)", Version, s.Version)
	}

	// Workload first: axes and columns validate against it.
	if s.Workload.Name == "" {
		return fmt.Errorf("workload.name: required (one of %v)", WorkloadNames())
	}
	w, ok := Get(s.Workload.Name)
	if !ok {
		return fmt.Errorf("workload.name: unknown workload %q (one of %v)", s.Workload.Name, WorkloadNames())
	}
	if err := checkParamMap("workload.params", w, s.Workload.Params); err != nil {
		return err
	}

	// Machine: exactly one source.
	sources := 0
	if s.Machine.Preset != "" {
		sources++
	}
	if s.Machine.Config != nil {
		sources++
	}
	if s.hasAxis("machine") {
		sources++
	}
	switch {
	case sources == 0:
		return fmt.Errorf("machine: one of machine.preset, machine.config, or a %q axis is required", "machine")
	case sources > 1:
		return fmt.Errorf("machine: machine.preset, machine.config, and a %q axis are mutually exclusive", "machine")
	}
	if s.Machine.Preset != "" {
		if _, ok := sim.PresetConfig(s.Machine.Preset); !ok {
			return fmt.Errorf("machine.preset: unknown preset %q (one of %v)", s.Machine.Preset, presetNames())
		}
	}
	if s.Machine.Config != nil {
		if err := s.Machine.Config.Validate(); err != nil {
			return fmt.Errorf("machine.config.%v", err)
		}
	}
	if len(s.Machine.Devices) > 0 {
		if err := s.validateDevicePatches(); err != nil {
			return err
		}
	}

	// Axes.
	seenAxes := map[string]bool{}
	for i, a := range s.Policy.Axes {
		path := fmt.Sprintf("policy.axes[%d]", i)
		if a.Param == "" {
			return fmt.Errorf("%s.param: required", path)
		}
		if seenAxes[a.Param] {
			return fmt.Errorf("%s.param: duplicate axis %q", path, a.Param)
		}
		seenAxes[a.Param] = true
		var def ParamDef
		switch a.Param {
		case "machine", "op":
			def = ParamDef{Name: a.Param, Kind: KindString}
		default:
			d, ok := w.paramDef(a.Param)
			if !ok {
				return fmt.Errorf("%s.param: unknown axis %q (machine, op, or one of workload params %v)",
					path, a.Param, w.paramNames())
			}
			def = d
		}
		if len(a.Values) == 0 {
			return fmt.Errorf("%s.values: at least one value required", path)
		}
		for vi, v := range a.Values {
			if err := s.checkAxisValue(fmt.Sprintf("%s.values[%d]", path, vi), a.Param, def, v, w); err != nil {
				return err
			}
		}
		for vi, v := range a.Quick {
			if err := s.checkAxisValue(fmt.Sprintf("%s.quick[%d]", path, vi), a.Param, def, v, w); err != nil {
				return err
			}
		}
		if len(a.Labels) > 0 {
			if len(a.Labels) != len(a.Values) {
				return fmt.Errorf("%s.labels: got %d labels for %d values", path, len(a.Labels), len(a.Values))
			}
			if len(a.Quick) > 0 && len(a.Quick) != len(a.Values) {
				return fmt.Errorf("%s.labels: labels require quick and values to have equal length (got %d quick, %d values)",
					path, len(a.Quick), len(a.Values))
			}
		}
	}

	// Ops.
	opAxis := s.hasAxis("op")
	if opAxis && len(s.Policy.Ops) > 0 {
		return fmt.Errorf("policy.ops: must be empty when an %q axis is defined", "op")
	}
	if !opAxis {
		if len(s.Policy.Ops) == 0 {
			return fmt.Errorf("policy.ops: at least one op required (workload %s supports %v)", w.Name, w.Ops)
		}
		seenOps := map[string]bool{}
		for i, op := range s.Policy.Ops {
			if seenOps[op] {
				return fmt.Errorf("policy.ops[%d]: duplicate op %q", i, op)
			}
			seenOps[op] = true
			if !w.hasOp(op) {
				return fmt.Errorf("policy.ops[%d]: unknown op %q (workload %s supports %v)", i, op, w.Name, w.Ops)
			}
		}
	}

	// Per-site op table.
	if len(s.Policy.Table) > 0 {
		if len(w.Sites) == 0 {
			return fmt.Errorf("policy.table: workload %s declares no pre-store sites", w.Name)
		}
		sites := make([]string, 0, len(s.Policy.Table))
		for site := range s.Policy.Table {
			sites = append(sites, site)
		}
		sort.Strings(sites)
		for _, site := range sites {
			if !containsStr(w.Sites, site) {
				return fmt.Errorf("policy.table.%s: unknown site (workload %s has sites %v)", site, w.Name, w.Sites)
			}
			if op := s.Policy.Table[site]; !w.hasOp(op) {
				return fmt.Errorf("policy.table.%s: unknown op %q (workload %s supports %v)", site, s.Policy.Table[site], w.Name, w.Ops)
			}
		}
	}

	// Columns.
	if len(s.Policy.Columns) == 0 {
		return fmt.Errorf("policy.columns: at least one column required")
	}
	for i, c := range s.Policy.Columns {
		path := fmt.Sprintf("policy.columns[%d]", i)
		if c.Title == "" {
			return fmt.Errorf("%s.title: required", path)
		}
		if c.Format != "" && !knownFormat(c.Format) {
			return fmt.Errorf("%s.format: unknown format %q (one of %v)", path, c.Format, formatNames)
		}
		if c.Axis != "" {
			if !seenAxes[c.Axis] {
				return fmt.Errorf("%s.axis: no axis %q defined", path, c.Axis)
			}
			continue
		}
		if c.Metric == "" {
			return fmt.Errorf("%s.metric: required (workload %s reports %v)", path, w.Name, w.MetricNames)
		}
		if !w.hasMetric(c.Metric) {
			return fmt.Errorf("%s.metric: unknown metric %q (workload %s reports %v)", path, c.Metric, w.Name, w.MetricNames)
		}
		if c.DenMetric != "" && !w.hasMetric(c.DenMetric) {
			return fmt.Errorf("%s.den_metric: unknown metric %q (workload %s reports %v)", path, c.DenMetric, w.Name, w.MetricNames)
		}
		if opAxis {
			if c.Op != "" {
				return fmt.Errorf("%s.op: must be empty when op is an axis", path)
			}
			if c.DenOp != "" {
				return fmt.Errorf("%s.den_op: must be empty when op is an axis", path)
			}
			continue
		}
		if c.Op == "" {
			return fmt.Errorf("%s.op: required (policy.ops %v)", path, s.Policy.Ops)
		}
		if !containsStr(s.Policy.Ops, c.Op) {
			return fmt.Errorf("%s.op: %q not in policy.ops %v", path, c.Op, s.Policy.Ops)
		}
		if c.DenOp != "" && !containsStr(s.Policy.Ops, c.DenOp) {
			return fmt.Errorf("%s.den_op: %q not in policy.ops %v", path, c.DenOp, s.Policy.Ops)
		}
	}

	// Telemetry.
	if t := s.Telemetry; t != nil {
		if !t.Timeline && !t.LineReport {
			return fmt.Errorf("telemetry: at least one of timeline or line_report must be true")
		}
		if t.MaxEvents < 0 {
			return fmt.Errorf("telemetry.max_events: must be non-negative (got %d)", t.MaxEvents)
		}
		if t.MaxEvents > MaxTelemetryEvents {
			return fmt.Errorf("telemetry.max_events: %d exceeds the limit of %d", t.MaxEvents, MaxTelemetryEvents)
		}
	}

	// Run controls.
	if err := checkParamMap("run.quick", w, s.Run.Quick); err != nil {
		return err
	}
	if s.Run.MaxPoints < 0 {
		return fmt.Errorf("run.max_points: must be non-negative (got %d)", s.Run.MaxPoints)
	}
	budget := s.Run.MaxPoints
	if budget == 0 {
		budget = DefaultMaxPoints
	}
	points := 1
	for _, a := range s.Policy.Axes {
		points *= len(a.Values)
		if points > budget {
			break
		}
	}
	if !opAxis {
		points *= len(s.Policy.Ops)
	}
	if points > budget {
		return fmt.Errorf("policy.axes: grid of %d points exceeds the budget of %d (raise run.max_points)", points, budget)
	}
	return nil
}

func (s *Spec) checkAxisValue(path, param string, def ParamDef, v any, w Workload) error {
	switch param {
	case "machine":
		name, ok := v.(string)
		if !ok {
			return fmt.Errorf("%s: must be a preset name string (got %v)", path, v)
		}
		if _, ok := sim.PresetConfig(name); !ok {
			return fmt.Errorf("%s: unknown preset %q (one of %v)", path, name, presetNames())
		}
	case "op":
		op, ok := v.(string)
		if !ok {
			return fmt.Errorf("%s: must be an op name string (got %v)", path, v)
		}
		if !w.hasOp(op) {
			return fmt.Errorf("%s: unknown op %q (workload %s supports %v)", path, op, w.Name, w.Ops)
		}
	default:
		return checkParamValue(path, def, v)
	}
	return nil
}

// validateDevicePatches checks machine.devices against the windows of
// the machine(s) the spec can resolve.
func (s *Spec) validateDevicePatches() error {
	names := make([]string, 0, len(s.Machine.Devices))
	for n := range s.Machine.Devices {
		names = append(names, n)
	}
	sort.Strings(names)
	// Collect the base configs every row could use.
	var bases []sim.Config
	switch {
	case s.Machine.Config != nil:
		bases = append(bases, *s.Machine.Config)
	case s.Machine.Preset != "":
		cfg, _ := sim.PresetConfig(s.Machine.Preset)
		bases = append(bases, cfg)
	default:
		axis, _ := s.axisFor("machine")
		for _, v := range axis.Values {
			name, ok := v.(string)
			if !ok {
				continue // axis validation reports this
			}
			if cfg, ok := sim.PresetConfig(name); ok {
				bases = append(bases, cfg)
			}
		}
	}
	for _, win := range names {
		for _, base := range bases {
			found := false
			var windows []string
			for _, ws := range base.Windows {
				windows = append(windows, ws.Name)
				if ws.Name == win {
					found = true
					spec, ok := memdev.Describe(ws.Device)
					if !ok {
						return fmt.Errorf("machine.devices.%s: window device is not patchable", win)
					}
					if _, err := spec.Apply(s.Machine.Devices[win]); err != nil {
						return fmt.Errorf("machine.devices.%s.%v", win, err)
					}
				}
			}
			if !found {
				return fmt.Errorf("machine.devices.%s: no such window (machine %s has %v)", win, base.Name, windows)
			}
		}
	}
	return nil
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
