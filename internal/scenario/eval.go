package scenario

import (
	"context"
	"fmt"

	"prestores/internal/checkpoint"
)

// CheckSinglePoint reports whether the spec evaluates exactly one grid
// point — no sweep axes, exactly one op — which is what EvalPoint and
// the autotuner's candidate runs require. The returned error names the
// offending field, matching Validate's style.
func (s *Spec) CheckSinglePoint() error {
	if len(s.Policy.Axes) != 0 {
		return fmt.Errorf("policy.axes: single-point evaluation requires no sweep axes (got %d)", len(s.Policy.Axes))
	}
	if len(s.Policy.Ops) != 1 {
		return fmt.Errorf("policy.ops: single-point evaluation requires exactly one op (got %d)", len(s.Policy.Ops))
	}
	return nil
}

// EvalPoint runs a single-point spec and returns its raw metrics
// instead of a rendered table. This is the autotuner's measurement
// primitive: candidate plans differ only in policy.window/policy.table,
// so with a checkpoint view on the context every candidate forks from
// the same memoized post-warmup state (unless run.cold_start opts out).
// Metrics are deterministic for a fixed spec, warm or cold — the
// phased-run byte-identity guarantee covers them.
func (s *Spec) EvalPoint(ctx context.Context, quick bool) (Metrics, error) {
	if err := s.CheckSinglePoint(); err != nil {
		return nil, err
	}
	wl, ok := Get(s.Workload.Name)
	if !ok {
		return nil, fmt.Errorf("workload.name: unknown workload %q (one of %v)", s.Workload.Name, WorkloadNames())
	}
	base := s.baseParams(quick)
	m, err := s.buildMachine(s.Machine.Preset)
	if err != nil {
		return nil, err
	}
	m.AttachOps(ctx)
	if obs := observerFrom(ctx); obs != nil {
		obs(m)
	}
	op := s.Policy.Ops[0]
	if view := checkpoint.FromContext(ctx); view != nil && wl.RunPhased != nil && !s.Run.ColdStart {
		prefixKey, err := s.WarmPrefixKey(checkpoint.Build(), 0)
		if err != nil {
			return nil, err
		}
		key := warmRunKey(prefixKey, m.ConfigHash(), wl.WarmParams, base)
		metrics, err := wl.RunPhased(m, op, base, phaseControl(view, key))
		if err != nil {
			return nil, fmt.Errorf("workload %s, op %s: %w", wl.Name, op, err)
		}
		return metrics, nil
	}
	metrics, err := wl.Run(m, op, base)
	if err != nil {
		return nil, fmt.Errorf("workload %s, op %s: %w", wl.Name, op, err)
	}
	return metrics, nil
}

// WithPlan returns a copy of the spec carrying a different pre-store
// plan: the placement window and the per-site op table. The table map
// is copied; the rest of the spec is shared structurally, so callers
// must treat the result as immutable (the autotuner only re-encodes
// it). An empty window keeps the workload's own placement default.
func (s Spec) WithPlan(window string, table map[string]string) Spec {
	out := s
	out.Policy.Window = window
	if len(table) == 0 {
		out.Policy.Table = nil
	} else {
		t := make(map[string]string, len(table))
		for k, v := range table {
			t[k] = v
		}
		out.Policy.Table = t
	}
	return out
}
