package scenario

import (
	"context"
	"fmt"
	"io"

	"prestores/internal/checkpoint"
	"prestores/internal/memdev"
	"prestores/internal/sim"
	"prestores/internal/units"
)

// observerKey carries a machine observer through a context (see
// WithObserver).
type observerKey struct{}

// WithObserver returns a context that makes Exec call obs with every
// machine the spec run builds, before the workload runs on it. This is
// the scoped counterpart to sim.ObserveMachines: a daemon running
// concurrent jobs attaches each job's telemetry recorder to that job's
// machines only, via that job's context.
func WithObserver(ctx context.Context, obs func(*sim.Machine)) context.Context {
	return context.WithValue(ctx, observerKey{}, obs)
}

func observerFrom(ctx context.Context) func(*sim.Machine) {
	obs, _ := ctx.Value(observerKey{}).(func(*sim.Machine))
	return obs
}

// Exec runs a validated spec, writing its table to w. quick mode
// applies the axes' Quick value lists and the run.quick parameter
// overrides. The sweep checks ctx before each row and returns silently
// when cancelled, matching the hand-written experiments' contract with
// the bench harness.
func (s *Spec) Exec(ctx context.Context, w io.Writer, quick bool) error {
	wl, ok := Get(s.Workload.Name)
	if !ok {
		return fmt.Errorf("workload.name: unknown workload %q (one of %v)", s.Workload.Name, WorkloadNames())
	}

	base := s.baseParams(quick)

	// Effective axis values.
	axes := make([]Axis, len(s.Policy.Axes))
	copy(axes, s.Policy.Axes)
	for i := range axes {
		if quick && len(axes[i].Quick) > 0 {
			axes[i].Values = axes[i].Quick
		}
	}

	titles := make([]string, len(s.Policy.Columns))
	for i, c := range s.Policy.Columns {
		titles[i] = c.Title
	}
	header(w, titles...)

	// Warm-state forking: with a checkpoint view on the context and a
	// workload that declares a phase boundary, every grid point runs
	// through the phased path keyed by the spec's warm-prefix key.
	// run.cold_start opts the whole spec out.
	var prefixKey string
	if view := checkpoint.FromContext(ctx); view != nil && wl.RunPhased != nil && !s.Run.ColdStart {
		k, err := s.WarmPrefixKey(checkpoint.Build(), 0)
		if err != nil {
			return err
		}
		prefixKey = k
	}

	// Odometer over the axes; the first axis varies slowest.
	obs := observerFrom(ctx)
	idx := make([]int, len(axes))
	for {
		if ctx.Err() != nil {
			return nil
		}
		if err := s.runRow(ctx, w, wl, axes, idx, base, obs, prefixKey); err != nil {
			return err
		}
		// Advance.
		i := len(axes) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	for _, line := range s.Policy.Footer {
		fmt.Fprintln(w, line)
	}
	return nil
}

// baseParams assembles the effective base parameters for a run: spec
// params + quick overrides + policy placement + seed override + the
// per-site op table (under its reserved key, resolved by SiteOp).
func (s *Spec) baseParams(quick bool) Params {
	base := Params(s.Workload.Params).clone()
	if quick {
		for k, v := range s.Run.Quick {
			base[k] = v
		}
	}
	if s.Policy.Window != "" {
		base["window"] = s.Policy.Window
	}
	if s.Run.Seed != 0 {
		base["seed"] = s.Run.Seed
	}
	if len(s.Policy.Table) > 0 {
		t := make(map[string]string, len(s.Policy.Table))
		for k, v := range s.Policy.Table {
			t[k] = v
		}
		base[siteTableKey] = t
	}
	return base
}

// runRow executes one grid point (all its ops) and renders the row.
// With a non-empty prefixKey each op's run goes through the workload's
// phased path, forking from (or seeding) the context's checkpoint view.
func (s *Spec) runRow(ctx context.Context, w io.Writer, wl Workload, axes []Axis, idx []int, base Params, obs func(*sim.Machine), prefixKey string) error {
	params := base.clone()
	machinePreset := s.Machine.Preset
	ops := s.Policy.Ops
	for ai, a := range axes {
		v := a.Values[idx[ai]]
		switch a.Param {
		case "machine":
			machinePreset = v.(string)
		case "op":
			ops = []string{v.(string)}
		default:
			params[a.Param] = v
		}
	}

	results := make(map[string]Metrics, len(ops))
	for _, op := range ops {
		m, err := s.buildMachine(machinePreset)
		if err != nil {
			return err
		}
		m.AttachOps(ctx)
		if obs != nil {
			obs(m)
		}
		var metrics Metrics
		if prefixKey != "" {
			key := warmRunKey(prefixKey, m.ConfigHash(), wl.WarmParams, params)
			pc := phaseControl(checkpoint.FromContext(ctx), key)
			metrics, err = wl.RunPhased(m, op, params, pc)
		} else {
			metrics, err = wl.Run(m, op, params)
		}
		if err != nil {
			return fmt.Errorf("workload %s, op %s: %w", wl.Name, op, err)
		}
		results[op] = metrics
	}

	cells := make([]string, len(s.Policy.Columns))
	for ci, c := range s.Policy.Columns {
		cells[ci] = s.renderCell(c, axes, idx, ops, results)
	}
	row(w, cells...)
	return nil
}

func (s *Spec) renderCell(c Column, axes []Axis, idx []int, ops []string, results map[string]Metrics) string {
	if c.Axis != "" {
		for ai, a := range axes {
			if a.Param != c.Axis {
				continue
			}
			if len(a.Labels) > 0 {
				return a.Labels[idx[ai]]
			}
			return formatCell(c.Format, a.Values[idx[ai]])
		}
		return "?"
	}
	op := c.Op
	if op == "" && len(ops) == 1 {
		op = ops[0] // "op" axis: the row's single run
	}
	num := results[op][c.Metric]
	if c.DenOp != "" {
		den := c.DenMetric
		if den == "" {
			den = c.Metric
		}
		return formatCell(c.Format, num/results[c.DenOp][den])
	}
	return formatCell(c.Format, num)
}

// phaseControl wires a checkpoint view into a sim.PhaseControl for one
// grid point: restore forks the machine from the memoized post-warmup
// state under key; save encodes and stores it. Stale entries (build or
// config skew) count as misses; a restore that fails after the header
// matched panics rather than silently re-running the warmup on a
// half-mutated machine.
func phaseControl(view *checkpoint.View, key string) *sim.PhaseControl {
	return &sim.PhaseControl{
		Restore: func(m *sim.Machine) ([]byte, bool) {
			data, ok := view.Get(key)
			if !ok {
				return nil, false
			}
			ck, err := sim.DecodeCheckpoint(data)
			if err != nil || ck.Build != checkpoint.Build() || ck.ConfigHash != m.ConfigHash() {
				return nil, false
			}
			if err := ck.Restore(m); err != nil {
				panic(fmt.Sprintf("checkpoint %s: restore failed: %v", key[:12], err))
			}
			return ck.Annex, true
		},
		Save: func(m *sim.Machine, annex []byte) {
			ck, err := m.NewCheckpoint(checkpoint.Build(), annex)
			if err != nil {
				return // machine not snapshottable: later points load cold
			}
			view.Put(key, ck.Encode())
		},
	}
}

// buildMachine constructs a fresh machine for one run: preset or
// custom config, with device patches applied. Devices are rebuilt each
// time so runs never share device state.
func (s *Spec) buildMachine(preset string) (*sim.Machine, error) {
	var cfg sim.Config
	if preset != "" {
		c, ok := sim.PresetConfig(preset)
		if !ok {
			return nil, fmt.Errorf("machine.preset: unknown preset %q (one of %v)", preset, presetNames())
		}
		cfg = c
	} else if s.Machine.Config != nil {
		cfg = *s.Machine.Config
		// The spec's config holds live device instances; clone them so
		// repeated runs start from pristine device state.
		windows := make([]sim.WindowSpec, len(cfg.Windows))
		copy(windows, cfg.Windows)
		for i, ws := range windows {
			spec, ok := memdev.Describe(ws.Device)
			if !ok {
				return nil, fmt.Errorf("machine.config.windows[%d].device: not a registered device kind", i)
			}
			dev, err := spec.Build()
			if err != nil {
				return nil, fmt.Errorf("machine.config.windows[%d].device.%v", i, err)
			}
			windows[i].Device = dev
		}
		cfg.Windows = windows
	} else {
		return nil, fmt.Errorf("machine: no machine resolved for this row")
	}
	for i, ws := range cfg.Windows {
		patch, ok := s.Machine.Devices[ws.Name]
		if !ok {
			continue
		}
		spec, ok := memdev.Describe(ws.Device)
		if !ok {
			return nil, fmt.Errorf("machine.devices.%s: window device is not patchable", ws.Name)
		}
		patched, err := spec.Apply(patch)
		if err != nil {
			return nil, fmt.Errorf("machine.devices.%s.%v", ws.Name, err)
		}
		dev, err := patched.Build()
		if err != nil {
			return nil, fmt.Errorf("machine.devices.%s.%v", ws.Name, err)
		}
		cfg.Windows[i].Device = dev
	}
	return sim.NewMachine(cfg), nil
}

// formatCell renders one value. The formats replicate the hand-written
// experiments' fmt verbs exactly, so spec-ified experiments stay
// byte-identical to their legacy rendering:
//
//	plain  fmt.Sprint(v)
//	bytes  units.Bytes (value must be a non-negative integer)
//	f0/f1/f2  %.0f / %.1f / %.2f
//	x2     %.2fx (ratio)
//	pct    %+.1f%% of (ratio-1)*100
//	cyc0   %.0f cyc
//	drop0  -%.0f%% of 100*(1-ratio)
//	mops   %.2fM/s of v/1e6
func formatCell(format string, v any) string {
	f, isNum := asFloat(v)
	switch format {
	case "", "plain":
		return fmt.Sprint(v)
	case "bytes":
		if !isNum {
			return fmt.Sprint(v)
		}
		return units.Bytes(uint64(f))
	case "f0":
		return fmt.Sprintf("%.0f", f)
	case "f1":
		return fmt.Sprintf("%.1f", f)
	case "f2":
		return fmt.Sprintf("%.2f", f)
	case "x2":
		return fmt.Sprintf("%.2fx", f)
	case "pct":
		return fmt.Sprintf("%+.1f%%", (f-1)*100)
	case "cyc0":
		return fmt.Sprintf("%.0f cyc", f)
	case "drop0":
		return fmt.Sprintf("-%.0f%%", 100*(1-f))
	case "mops":
		return fmt.Sprintf("%.2fM/s", f/1e6)
	}
	return fmt.Sprint(v)
}

// header and row replicate internal/bench's fixed-width table layout
// ("%12s" cells, two-space separators) byte for byte.
func header(w io.Writer, cols ...string) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
}

func row(w io.Writer, cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
}
