package autotune

import (
	"bytes"
	"encoding/json"

	"prestores/internal/scenario"
	"prestores/internal/telemetry"
)

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// TrajectoryVersion is the schema version of the trajectory artifact.
const TrajectoryVersion = 1

// Iteration records one evaluated candidate plan, in evaluation order.
type Iteration struct {
	Iter   int    `json:"iter"`
	Source string `json:"source"` // baseline | seed | climb | restart
	Plan   Plan   `json:"plan"`
	// Metrics is the run's full metric map (json-sorted keys).
	Metrics   scenario.Metrics `json:"metrics"`
	Objective float64          `json:"objective"`
	// Best marks iterations that improved the global best when they were
	// evaluated; Accepted marks plans the search moved to.
	Best     bool `json:"best,omitempty"`
	Accepted bool `json:"accepted,omitempty"`
}

// Probe summarizes the cold telemetry probe and the decision rule it
// triggered.
type Probe struct {
	Totals   telemetry.LineTotals `json:"totals"`
	WriteAmp float64              `json:"write_amp"`
	SeedOp   string               `json:"seed_op"`
	Rule     string               `json:"rule"`
}

// Winner is the best plan the search found.
type Winner struct {
	Iter      int              `json:"iter"`
	Plan      Plan             `json:"plan"`
	Metrics   scenario.Metrics `json:"metrics"`
	Objective float64          `json:"objective"`
	// Spec is the canonical single-point spec carrying the winning plan;
	// re-evaluating it reproduces Metrics exactly.
	Spec json.RawMessage `json:"spec"`
}

// Trajectory is the search's full audit trail, rendered as the job's
// "trajectory" artifact. Its JSON encoding is byte-reproducible: no
// wall-clock state, fixed field order, sorted map keys.
type Trajectory struct {
	Version   int      `json:"version"`
	Workload  string   `json:"workload"`
	Objective string   `json:"objective"`
	Maximize  bool     `json:"maximize,omitempty"`
	Budget    int      `json:"budget"`
	Seed      uint64   `json:"seed"`
	Quick     bool     `json:"quick,omitempty"`
	Sites     []string `json:"sites"`
	// Windows is the searched window set; "" is the workload default.
	Windows    []string    `json:"windows"`
	Probe      *Probe      `json:"probe,omitempty"`
	Iterations []Iteration `json:"iterations"`
	Evals      int         `json:"evals"`
	CacheHits  int         `json:"cache_hits"`
	// Converged reports that the climb reached a local optimum with the
	// restart budget spent, rather than running out of evaluations.
	Converged bool   `json:"converged"`
	Winner    Winner `json:"winner"`
}

// JSON renders the trajectory as indented, newline-terminated JSON.
func (t *Trajectory) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeTrajectory parses a trajectory artifact strictly.
func DecodeTrajectory(data []byte) (*Trajectory, error) {
	var t Trajectory
	if err := strictUnmarshal(data, &t); err != nil {
		return nil, err
	}
	return &t, nil
}

// Result is what one search run produces.
type Result struct {
	Trajectory *Trajectory
	// WinnerSpec is the decoded form of Trajectory.Winner.Spec.
	WinnerSpec scenario.Spec
}

// Progress events, one NDJSON line each, written to the search's
// progress stream as it runs. Like the trajectory they carry no
// wall-clock state, so a re-run with the same inputs reproduces the
// stream byte for byte.
type evStart struct {
	Event     string   `json:"event"` // "start"
	Workload  string   `json:"workload"`
	Objective string   `json:"objective"`
	Maximize  bool     `json:"maximize,omitempty"`
	Budget    int      `json:"budget"`
	Seed      uint64   `json:"seed"`
	Quick     bool     `json:"quick,omitempty"`
	Sites     []string `json:"sites"`
	Windows   []string `json:"windows"`
}

type evProbe struct {
	Event    string               `json:"event"` // "probe"
	SeedOp   string               `json:"seed_op"`
	Rule     string               `json:"rule"`
	WriteAmp float64              `json:"write_amp"`
	Totals   telemetry.LineTotals `json:"totals"`
}

type evEval struct {
	Event     string  `json:"event"` // "eval"
	Iter      int     `json:"iter"`
	Source    string  `json:"source"`
	Plan      Plan    `json:"plan"`
	Objective float64 `json:"objective"`
	Best      bool    `json:"best,omitempty"`
}

type evMove struct {
	Event  string `json:"event"` // "move"
	Iter   int    `json:"iter"`
	Source string `json:"source"`
}

type evDone struct {
	Event     string  `json:"event"` // "done"
	Evals     int     `json:"evals"`
	CacheHits int     `json:"cache_hits"`
	Converged bool    `json:"converged"`
	Winner    int     `json:"winner"`
	Plan      Plan    `json:"plan"`
	Objective float64 `json:"objective"`
}
