package autotune

import (
	"context"

	"prestores/internal/scenario"
	"prestores/internal/telemetry"
)

// ProbeMaxLines caps the per-line list a probe's report carries. It
// matches the cap the daemon applies to its linereport job artifact, so
// a probe run locally and a probe fetched from a remote shard aggregate
// identical totals.
const ProbeMaxLines = 256

// Evaluator measures candidate plans for the search engine. The local
// implementation runs specs in process; the cluster coordinator
// substitutes one that fans candidates out across worker shards. Both
// must be deterministic and safe for concurrent calls.
type Evaluator interface {
	// Eval runs a single-point spec and returns its metrics.
	Eval(ctx context.Context, sp scenario.Spec, quick bool) (scenario.Metrics, error)
	// Probe runs a single-point spec (the search's baseline plan, with
	// run.cold_start set) under line-report telemetry and returns the
	// report the seeding rules consume.
	Probe(ctx context.Context, sp scenario.Spec, quick bool) (*telemetry.LineReport, error)
}

// Local evaluates candidates in process via scenario.EvalPoint. A
// checkpoint view on the context makes every candidate fork from the
// shared warm state; without one each candidate loads from scratch.
type Local struct{}

func (Local) Eval(ctx context.Context, sp scenario.Spec, quick bool) (scenario.Metrics, error) {
	return sp.EvalPoint(ctx, quick)
}

func (Local) Probe(ctx context.Context, sp scenario.Spec, quick bool) (*telemetry.LineReport, error) {
	rec := telemetry.New(telemetry.Config{LineReport: true})
	ctx = scenario.WithObserver(ctx, rec.Attach)
	if _, err := sp.EvalPoint(ctx, quick); err != nil {
		return nil, err
	}
	return rec.LineReport(ProbeMaxLines), nil
}
