package autotune

import "encoding/json"

// Plan is one candidate pre-store plan: the placement window plus a
// complete per-site op assignment. The search space is the cross
// product of the candidate windows and every per-site op choice.
type Plan struct {
	// Window is the placement window ("" keeps the workload's default).
	Window string `json:"window,omitempty"`
	// Table assigns an op (none/clean/skip/demote) to every site.
	Table map[string]string `json:"table"`
}

// key returns the plan's canonical identity. json.Marshal sorts map
// keys, so equal plans always produce equal keys; the search's eval
// cache and its final comparison tiebreak both use it.
func (p Plan) key() string {
	b, err := json.Marshal(p)
	if err != nil {
		// A map[string]string cannot fail to marshal.
		panic("autotune: plan marshal: " + err.Error())
	}
	return string(b)
}

func cloneTable(t map[string]string) map[string]string {
	out := make(map[string]string, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// uniformPlan assigns one op to every site.
func uniformPlan(window string, sites []string, op string) Plan {
	t := make(map[string]string, len(sites))
	for _, s := range sites {
		t[s] = op
	}
	return Plan{Window: window, Table: t}
}

// neighbors enumerates the plans one move away from cur, in
// deterministic order: each site (workload declaration order) switched
// to each other op (workload op order), then each alternative window
// with the table unchanged.
func neighbors(cur Plan, sites, ops, windows []string) []Plan {
	var out []Plan
	for _, site := range sites {
		for _, op := range ops {
			if op == cur.Table[site] {
				continue
			}
			t := cloneTable(cur.Table)
			t[site] = op
			out = append(out, Plan{Window: cur.Window, Table: t})
		}
	}
	for _, w := range windows {
		if w == cur.Window {
			continue
		}
		out = append(out, Plan{Window: w, Table: cloneTable(cur.Table)})
	}
	return out
}
