package autotune

import (
	"fmt"

	"prestores/internal/scenario"
	"prestores/internal/sim"
)

// Search limits. DefaultBudget is generous enough for every registered
// workload's plan space (sites×ops neighbors per generation plus
// restarts); MaxBudget is the daemon's guard against hostile requests.
const (
	DefaultBudget   = 32
	MaxBudget       = 512
	DefaultRestarts = 2
	MaxRestarts     = 16
)

// Params configures one autotuning search. The zero value is usable:
// Normalize fills defaults from the base spec's workload.
type Params struct {
	// Budget caps the number of candidate plan evaluations (the
	// telemetry probe is not counted). 0 means DefaultBudget.
	Budget int `json:"budget,omitempty"`
	// Seed seeds the search's restart RNG. The same (spec, params)
	// reproduces the same trajectory byte for byte.
	Seed uint64 `json:"seed,omitempty"`
	// Objective names the workload metric to optimize. Empty defaults to
	// "elapsed" when the workload reports it.
	Objective string `json:"objective,omitempty"`
	// Maximize flips the objective's direction (default: minimize).
	Maximize bool `json:"maximize,omitempty"`
	// Windows lists candidate placement windows to search in addition to
	// the base spec's own (policy.window, or the workload default when
	// empty). Empty keeps the window fixed and searches site ops only.
	Windows []string `json:"windows,omitempty"`
	// Restarts bounds the seeded random restarts taken after the climb
	// reaches a local optimum. Negative disables restarts; 0 means
	// DefaultRestarts.
	Restarts int `json:"restarts,omitempty"`
	// Parallel bounds concurrent candidate evaluations (0 = serial).
	// It never affects the trajectory, only wall time.
	Parallel int `json:"parallel,omitempty"`
	// Quick applies the spec's run.quick parameter overrides to every
	// candidate run, like the grid runner's quick mode.
	Quick bool `json:"quick,omitempty"`
}

// machineWindows resolves the window names of the machine a single-point
// spec runs on (preset or inline config — CheckSinglePoint has already
// ruled out a machine axis).
func machineWindows(s *scenario.Spec) (machine string, windows []string) {
	var cfg sim.Config
	if s.Machine.Config != nil {
		cfg = *s.Machine.Config
	} else {
		cfg, _ = sim.PresetConfig(s.Machine.Preset)
	}
	for _, w := range cfg.Windows {
		windows = append(windows, w.Name)
	}
	return cfg.Name, windows
}

// Normalize validates the base spec and search parameters together and
// returns the parameters with defaults applied. The daemon calls this
// before accepting a job (its errors become 400s) and keys its result
// cache on the normalized form; Run calls it again, so both agree.
func Normalize(base *scenario.Spec, par Params) (Params, error) {
	if err := base.Validate(); err != nil {
		return Params{}, err
	}
	if err := base.CheckSinglePoint(); err != nil {
		return Params{}, err
	}
	w, _ := scenario.Get(base.Workload.Name)
	if len(w.Sites) == 0 {
		return Params{}, fmt.Errorf("workload.name: workload %s declares no pre-store sites to tune", w.Name)
	}
	if !containsStr(w.Ops, "none") {
		return Params{}, fmt.Errorf("workload.name: workload %s does not support op %q (needed for the baseline plan)", w.Name, "none")
	}

	if par.Budget == 0 {
		par.Budget = DefaultBudget
	}
	if par.Budget < 0 {
		return Params{}, fmt.Errorf("budget: must be non-negative (got %d)", par.Budget)
	}
	if par.Budget > MaxBudget {
		return Params{}, fmt.Errorf("budget: %d exceeds the limit of %d", par.Budget, MaxBudget)
	}

	if par.Objective == "" {
		par.Objective = "elapsed"
	}
	if !containsStr(w.MetricNames, par.Objective) {
		return Params{}, fmt.Errorf("objective: unknown metric %q (workload %s reports %v)", par.Objective, w.Name, w.MetricNames)
	}

	machine, windows := machineWindows(base)
	for i, win := range par.Windows {
		if !containsStr(windows, win) {
			return Params{}, fmt.Errorf("windows[%d]: no such window %q (machine %s has %v)", i, win, machine, windows)
		}
	}

	switch {
	case par.Restarts == 0:
		par.Restarts = DefaultRestarts
	case par.Restarts < 0:
		par.Restarts = 0
	}
	if par.Restarts > MaxRestarts {
		return Params{}, fmt.Errorf("restarts: %d exceeds the limit of %d", par.Restarts, MaxRestarts)
	}

	if par.Parallel < 0 {
		return Params{}, fmt.Errorf("parallel: must be non-negative (got %d)", par.Parallel)
	}
	if par.Parallel == 0 {
		par.Parallel = 1
	}
	return par, nil
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
