package autotune

import "prestores/internal/telemetry"

// SeedPlan applies DirtBuster's decision rules to a baseline probe's
// line report and returns the pre-store op the search should start
// every site at, plus the name of the rule that fired:
//
//   - far-rewrites: lines are mostly rewritten at distances beyond what
//     the caches hold, so dirty data lingers until capacity eviction —
//     demote it down the hierarchy right after the write.
//   - far-rereads: data is rarely or distantly re-read, so keeping the
//     line cached buys nothing, but its dirty state still scrambles
//     eviction order — clean (write back, keep the copy) right after
//     the write.
//   - near-rereads (otherwise): the data is both rewritten and re-read
//     while cache-near; stores are not worth caching long-term, so
//     write them non-temporally (skip).
//
// The probe sees one aggregate over all sites, so this seeds a uniform
// plan; the hill climb then differentiates per site. When the report is
// empty (no tracked writes), or the workload does not support the
// chosen op, the baseline op "none" is kept.
func SeedPlan(rep *telemetry.LineReport, supported func(op string) bool) (op, rule string) {
	t := rep.Totals()
	switch {
	case t.Writes == 0:
		return "none", "no-writes"
	case t.Rewrites > 0 && 2*t.NearRewrites <= t.Rewrites:
		op, rule = "demote", "far-rewrites"
	case t.Rereads == 0 || 2*t.NearRereads <= t.Rereads:
		op, rule = "clean", "far-rereads"
	default:
		op, rule = "skip", "near-rereads"
	}
	if !supported(op) {
		return "none", rule + "-unsupported"
	}
	return op, rule
}
