package autotune

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"prestores/internal/scenario"
	"prestores/internal/telemetry"
	_ "prestores/internal/workloads/micro"
	_ "prestores/internal/workloads/sites"
)

// baseSpec is a single-point sites spec; the sites package pins
// {hot: demote, once: clean} as the unique elapsed optimum of its plan
// matrix, which is what the convergence tests assert the search finds.
func baseSpec() scenario.Spec {
	return scenario.Spec{
		Version:  scenario.Version,
		Machine:  scenario.MachineSpec{Preset: "machine-a"},
		Workload: scenario.WorkloadSpec{Name: "sites"},
		Policy: scenario.PolicySpec{
			Ops:     []string{"none"},
			Columns: []scenario.Column{{Title: "elapsed", Op: "none", Metric: "elapsed"}},
		},
	}
}

func runSearch(t *testing.T, par Params) (*Result, string) {
	t.Helper()
	var progress bytes.Buffer
	res, err := Run(context.Background(), baseSpec(), par, Local{}, &progress)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, progress.String()
}

// TestConvergesDeterministically is the optimizer convergence test: the
// search must find the known-best plan within the default budget, and
// the trajectory and progress stream must be byte-identical regardless
// of the Parallel setting.
func TestConvergesDeterministically(t *testing.T) {
	par := Params{Objective: "elapsed", Seed: 42}

	par.Parallel = 1
	serial, serialProgress := runSearch(t, par)
	par.Parallel = 4
	fanned, fannedProgress := runSearch(t, par)

	traj := serial.Trajectory
	want := map[string]string{"hot": "demote", "once": "clean"}
	if len(traj.Winner.Plan.Table) != len(want) {
		t.Fatalf("winner table = %v, want %v", traj.Winner.Plan.Table, want)
	}
	for site, op := range want {
		if got := traj.Winner.Plan.Table[site]; got != op {
			t.Errorf("winner[%s] = %q, want %q", site, got, op)
		}
	}
	if !traj.Converged {
		t.Errorf("search did not converge within budget %d (evals %d)", traj.Budget, traj.Evals)
	}
	if traj.Evals > traj.Budget {
		t.Errorf("evals %d exceeds budget %d", traj.Evals, traj.Budget)
	}
	if len(traj.Iterations) != traj.Evals {
		t.Errorf("got %d iterations for %d evals", len(traj.Iterations), traj.Evals)
	}
	base := traj.Iterations[0]
	if base.Source != "baseline" {
		t.Errorf("iteration 0 source = %q, want baseline", base.Source)
	}
	if traj.Winner.Objective >= base.Objective {
		t.Errorf("winner objective %g does not beat the all-none baseline %g",
			traj.Winner.Objective, base.Objective)
	}
	if traj.Probe == nil || traj.Probe.SeedOp == "" {
		t.Errorf("trajectory carries no probe summary: %+v", traj.Probe)
	}

	a, err := serial.Trajectory.JSON()
	if err != nil {
		t.Fatalf("trajectory JSON: %v", err)
	}
	b, err := fanned.Trajectory.JSON()
	if err != nil {
		t.Fatalf("trajectory JSON: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("trajectories differ between -parallel settings:\n%s\n---\n%s", a, b)
	}
	if serialProgress != fannedProgress {
		t.Errorf("progress streams differ between -parallel settings:\n%s\n---\n%s",
			serialProgress, fannedProgress)
	}
	if _, err := DecodeTrajectory(a); err != nil {
		t.Errorf("trajectory does not round-trip: %v", err)
	}

	// The recorded winner spec must reproduce the recorded metrics
	// exactly — the property the daemon's CI smoke re-checks over HTTP.
	m, err := Local{}.Eval(context.Background(), serial.WinnerSpec, false)
	if err != nil {
		t.Fatalf("re-eval winner spec: %v", err)
	}
	if len(m) != len(traj.Winner.Metrics) {
		t.Fatalf("re-eval metrics %v, want %v", m, traj.Winner.Metrics)
	}
	for k, v := range traj.Winner.Metrics {
		if m[k] != v {
			t.Errorf("re-eval %s = %v, want %v", k, m[k], v)
		}
	}
}

// TestBudgetBound pins that the budget is a hard cap on evaluations.
func TestBudgetBound(t *testing.T) {
	res, progress := runSearch(t, Params{Objective: "elapsed", Budget: 3, Seed: 1})
	traj := res.Trajectory
	if traj.Evals > 3 || len(traj.Iterations) > 3 {
		t.Errorf("budget 3 exceeded: evals %d, iterations %d", traj.Evals, len(traj.Iterations))
	}
	if traj.Converged {
		t.Errorf("a 3-eval search over 16 plans cannot have converged")
	}
	if !strings.Contains(progress, `"event":"done"`) {
		t.Errorf("progress stream has no done event:\n%s", progress)
	}
}

func report(stats ...telemetry.LineStat) *telemetry.LineReport {
	return &telemetry.LineReport{Lines: stats}
}

func TestSeedPlanRules(t *testing.T) {
	all := func(string) bool { return true }
	cases := []struct {
		name     string
		rep      *telemetry.LineReport
		sup      func(string) bool
		op, rule string
	}{
		{"empty", report(), all, "none", "no-writes"},
		{"far rewrites", report(telemetry.LineStat{Writes: 100, Rewrites: 50, NearRewrites: 10}), all, "demote", "far-rewrites"},
		{"no rereads", report(telemetry.LineStat{Writes: 100}), all, "clean", "far-rereads"},
		{"far rereads", report(telemetry.LineStat{Writes: 100, Rereads: 40, NearRereads: 5}), all, "clean", "far-rereads"},
		{"near everything", report(telemetry.LineStat{Writes: 100, Rewrites: 50, NearRewrites: 45, Rereads: 80, NearRereads: 70}), all, "skip", "near-rereads"},
		{"unsupported op", report(telemetry.LineStat{Writes: 100, Rewrites: 50, NearRewrites: 10}),
			func(op string) bool { return op != "demote" }, "none", "far-rewrites-unsupported"},
	}
	for _, tc := range cases {
		op, rule := SeedPlan(tc.rep, tc.sup)
		if op != tc.op || rule != tc.rule {
			t.Errorf("%s: SeedPlan = (%q, %q), want (%q, %q)", tc.name, op, rule, tc.op, tc.rule)
		}
	}
}

func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		spec func() scenario.Spec
		par  Params
		want string
	}{
		{"unknown objective", baseSpec, Params{Objective: "nope"}, "objective: unknown metric"},
		{"budget over limit", baseSpec, Params{Budget: MaxBudget + 1}, "exceeds the limit"},
		{"restarts over limit", baseSpec, Params{Restarts: MaxRestarts + 1}, "restarts:"},
		{"unknown window", baseSpec, Params{Windows: []string{"nvram"}}, "windows[0]"},
		{"negative parallel", baseSpec, Params{Parallel: -1}, "parallel:"},
		{"siteless workload", func() scenario.Spec {
			s := baseSpec()
			s.Workload.Name = "listing1"
			s.Policy.Columns = []scenario.Column{{Title: "e", Op: "none", Metric: "elapsed"}}
			return s
		}, Params{}, "no pre-store sites"},
		{"swept spec", func() scenario.Spec {
			s := baseSpec()
			s.Policy.Axes = []scenario.Axis{{Param: "rounds", Values: []any{1.0, 2.0}}}
			return s
		}, Params{}, "policy.axes"},
	}
	for _, tc := range cases {
		sp := tc.spec()
		_, err := Normalize(&sp, tc.par)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Normalize err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	sp := baseSpec()
	par, err := Normalize(&sp, Params{})
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if par.Budget != DefaultBudget || par.Objective != "elapsed" ||
		par.Restarts != DefaultRestarts || par.Parallel != 1 {
		t.Errorf("defaults = %+v", par)
	}
	// Restarts < 0 disables restarts rather than erroring.
	par, err = Normalize(&sp, Params{Restarts: -1})
	if err != nil || par.Restarts != 0 {
		t.Errorf("Restarts -1 -> (%d, %v), want (0, nil)", par.Restarts, err)
	}
}
