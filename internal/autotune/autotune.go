// Package autotune is the closed-loop DirtBuster: an iterative policy
// search that finds the best pre-store plan for a workload. Given a
// single-point scenario spec it first measures the all-none baseline
// and runs a cold telemetry probe, seeds a uniform plan from the
// paper's decision rules (demote on far rewrites, clean on far
// re-reads, skip otherwise), then hill-climbs deterministically over
// the per-site op table and candidate placement windows, with seeded
// random restarts out of local optima. Every candidate evaluation forks
// from the shared warm checkpoint when the runner has one, so the
// search costs one load phase plus cheap measured phases.
//
// The search is deterministic end to end: the same (spec, params)
// reproduces the same NDJSON progress stream and the same trajectory
// artifact byte for byte, regardless of the Parallel setting and of
// whether candidates run in process or across cluster shards.
package autotune

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"prestores/internal/obs"
	"prestores/internal/scenario"
	"prestores/internal/xrand"
)

type engine struct {
	base     scenario.Spec
	par      Params
	ev       Evaluator
	progress io.Writer
	rng      *xrand.PCG

	sites   []string // workload declaration order
	ops     []string // workload op order
	windows []string // searched windows; "" = workload default

	cache map[string]*Iteration // plan key → evaluated iteration
	iters []*Iteration
	best  *Iteration
	evals int
	hits  int
}

// Run executes one autotuning search over base's plan space and
// returns the full trajectory plus the winning spec. progress, when
// non-nil, receives one NDJSON event per line as the search advances.
func Run(ctx context.Context, base scenario.Spec, par Params, ev Evaluator, progress io.Writer) (*Result, error) {
	par, err := Normalize(&base, par)
	if err != nil {
		return nil, err
	}
	w, _ := scenario.Get(base.Workload.Name)
	// Candidate specs differ only in policy.window/policy.table;
	// telemetry stays off except for the explicit probe spec.
	base.Telemetry = nil

	e := &engine{
		base:     base,
		par:      par,
		ev:       ev,
		progress: progress,
		rng:      xrand.New(par.Seed),
		sites:    w.Sites,
		ops:      w.Ops,
		windows:  searchWindows(base.Policy.Window, par.Windows),
		cache:    map[string]*Iteration{},
	}
	e.emit(evStart{Event: "start", Workload: w.Name, Objective: par.Objective,
		Maximize: par.Maximize, Budget: par.Budget, Seed: par.Seed,
		Quick: par.Quick, Sites: e.sites, Windows: e.windows})

	// Iteration 0: the all-none baseline every improvement is judged
	// against.
	baseline := uniformPlan(base.Policy.Window, e.sites, "none")
	if _, err := e.evalBatch(ctx, []Plan{baseline}, "baseline"); err != nil {
		return nil, err
	}
	cur := e.cache[baseline.key()]

	// Cold telemetry probe of the baseline plan; its line report drives
	// the decision-rule seeding. ColdStart keeps the recorded events
	// independent of whatever the checkpoint cache holds.
	probeSpec := e.specFor(baseline)
	probeSpec.Run.ColdStart = true
	probeSpec.Telemetry = &scenario.TelemetrySpec{LineReport: true}
	rep, err := e.ev.Probe(ctx, probeSpec, par.Quick)
	if err != nil {
		return nil, fmt.Errorf("probe: %w", err)
	}
	seedOp, rule := SeedPlan(rep, func(op string) bool { return containsStr(w.Ops, op) })
	probe := &Probe{Totals: rep.Totals(), WriteAmp: rep.WriteAmp, SeedOp: seedOp, Rule: rule}
	e.emit(evProbe{Event: "probe", SeedOp: seedOp, Rule: rule,
		WriteAmp: probe.WriteAmp, Totals: probe.Totals})

	if seedOp != "none" && e.evals < par.Budget {
		seed := uniformPlan(base.Policy.Window, e.sites, seedOp)
		if _, err := e.evalBatch(ctx, []Plan{seed}, "seed"); err != nil {
			return nil, err
		}
		if it := e.cache[seed.key()]; it != nil && e.better(it, cur) {
			it.Accepted = true
			cur = it
			e.emit(evMove{Event: "move", Iter: it.Iter, Source: it.Source})
		}
	}

	// Deterministic hill climb: evaluate the full neighborhood of the
	// current plan, move to the best neighbor while it improves, restart
	// from a perturbation of the global best when stuck.
	restarts := 0
	converged := false
	for e.evals < par.Budget {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nbrs := neighbors(cur.Plan, e.sites, e.ops, e.windows)
		truncated, err := e.evalBatch(ctx, nbrs, "climb")
		if err != nil {
			return nil, err
		}
		var bestN *Iteration
		for _, p := range nbrs {
			if it, ok := e.cache[p.key()]; ok && (bestN == nil || e.better(it, bestN)) {
				bestN = it
			}
		}
		if bestN != nil && e.better(bestN, cur) {
			bestN.Accepted = true
			cur = bestN
			e.emit(evMove{Event: "move", Iter: bestN.Iter, Source: bestN.Source})
			continue
		}
		if truncated {
			// Budget ran out before the whole neighborhood was seen.
			break
		}
		// Local optimum: every neighbor evaluated, none better.
		if restarts >= par.Restarts || e.evals >= par.Budget {
			converged = true
			break
		}
		restarts++
		rp, ok := e.perturb()
		if !ok {
			converged = true
			break
		}
		if _, err := e.evalBatch(ctx, []Plan{rp}, "restart"); err != nil {
			return nil, err
		}
		it := e.cache[rp.key()]
		if it == nil {
			break
		}
		it.Accepted = true
		cur = it
		e.emit(evMove{Event: "move", Iter: it.Iter, Source: it.Source})
	}

	return e.finish(probe, converged)
}

// searchWindows builds the searched window list: the base spec's own
// placement first, then the extra candidates, deduplicated in order.
func searchWindows(baseWin string, extra []string) []string {
	out := []string{baseWin}
	for _, w := range extra {
		if !containsStr(out, w) {
			out = append(out, w)
		}
	}
	return out
}

func (e *engine) specFor(p Plan) scenario.Spec {
	return e.base.WithPlan(p.Window, p.Table)
}

// better reports whether a beats b: objective first (direction from
// Maximize), elapsed as the physical tiebreak, then the canonical plan
// key so the order is total and the winner unique.
func (e *engine) better(a, b *Iteration) bool {
	oa, ob := a.Objective, b.Objective
	if e.par.Maximize {
		oa, ob = ob, oa
	}
	if oa != ob {
		return oa < ob
	}
	ea, aok := a.Metrics["elapsed"]
	eb, bok := b.Metrics["elapsed"]
	if aok && bok && ea != eb {
		return ea < eb
	}
	return a.Plan.key() < b.Plan.key()
}

// evalBatch evaluates the uncached plans in order, bounded by
// par.Parallel in flight, and records results in candidate order so
// the trajectory never depends on completion timing. It reports
// whether the remaining budget truncated the batch.
func (e *engine) evalBatch(ctx context.Context, plans []Plan, source string) (truncated bool, err error) {
	var fresh []Plan
	seen := map[string]bool{}
	for _, p := range plans {
		k := p.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := e.cache[k]; ok {
			e.hits++
			continue
		}
		fresh = append(fresh, p)
	}
	if rem := e.par.Budget - e.evals; len(fresh) > rem {
		fresh = fresh[:rem]
		truncated = true
	}
	if len(fresh) == 0 {
		return truncated, nil
	}

	metrics := make([]scenario.Metrics, len(fresh))
	errs := make([]error, len(fresh))
	sem := make(chan struct{}, e.par.Parallel)
	var wg sync.WaitGroup
	for i := range fresh {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// One span per candidate evaluation: the fan-out's width and
			// stragglers become visible on the search job's trace.
			ctx, sp := obs.Start(ctx, "autotune.eval",
				obs.KV("plan", fresh[i].key()), obs.KV("source", source))
			metrics[i], errs[i] = e.ev.Eval(ctx, e.specFor(fresh[i]), e.par.Quick)
			sp.End()
		}(i)
	}
	wg.Wait()

	for i, p := range fresh {
		if errs[i] != nil {
			return truncated, fmt.Errorf("eval %s: %w", p.key(), errs[i])
		}
		e.evals++
		obj, ok := metrics[i][e.par.Objective]
		if !ok {
			return truncated, fmt.Errorf("eval %s: metrics missing objective %q", p.key(), e.par.Objective)
		}
		it := &Iteration{Iter: len(e.iters), Source: source, Plan: p, Metrics: metrics[i], Objective: obj}
		if e.best == nil || e.better(it, e.best) {
			e.best = it
			it.Best = true
		}
		e.iters = append(e.iters, it)
		e.cache[p.key()] = it
		e.emit(evEval{Event: "eval", Iter: it.Iter, Source: source, Plan: p,
			Objective: obj, Best: it.Best})
	}
	return truncated, nil
}

// perturb draws a one-site mutation of the global best plan that has
// not been evaluated yet. Draw count is bounded so a fully explored
// space ends the restarts instead of spinning.
func (e *engine) perturb() (Plan, bool) {
	if len(e.ops) < 2 {
		return Plan{}, false
	}
	for try := 0; try < 16; try++ {
		t := cloneTable(e.best.Plan.Table)
		site := e.sites[e.rng.Intn(len(e.sites))]
		op := e.ops[e.rng.Intn(len(e.ops))]
		if op == t[site] {
			continue
		}
		t[site] = op
		p := Plan{Window: e.best.Plan.Window, Table: t}
		if _, ok := e.cache[p.key()]; ok {
			continue
		}
		return p, true
	}
	return Plan{}, false
}

func (e *engine) finish(probe *Probe, converged bool) (*Result, error) {
	winSpec := e.specFor(e.best.Plan)
	canon, err := winSpec.Canonical()
	if err != nil {
		return nil, err
	}
	t := &Trajectory{
		Version:   TrajectoryVersion,
		Workload:  e.base.Workload.Name,
		Objective: e.par.Objective,
		Maximize:  e.par.Maximize,
		Budget:    e.par.Budget,
		Seed:      e.par.Seed,
		Quick:     e.par.Quick,
		Sites:     e.sites,
		Windows:   e.windows,
		Probe:     probe,
		Evals:     e.evals,
		CacheHits: e.hits,
		Converged: converged,
		Winner: Winner{
			Iter:      e.best.Iter,
			Plan:      e.best.Plan,
			Metrics:   e.best.Metrics,
			Objective: e.best.Objective,
			Spec:      json.RawMessage(canon),
		},
	}
	t.Iterations = make([]Iteration, len(e.iters))
	for i, it := range e.iters {
		t.Iterations[i] = *it
	}
	e.emit(evDone{Event: "done", Evals: e.evals, CacheHits: e.hits,
		Converged: converged, Winner: e.best.Iter, Plan: e.best.Plan,
		Objective: e.best.Objective})
	return &Result{Trajectory: t, WinnerSpec: winSpec}, nil
}

// emit writes one NDJSON progress line; progress failures are not the
// search's problem, so write errors are dropped.
func (e *engine) emit(ev any) {
	if e.progress == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	e.progress.Write(append(b, '\n'))
}
