package memdev

import "prestores/internal/units"

// DRAM models a conventional directly-attached DRAM channel: 64 B
// internal granularity (matching the CPU line), symmetric latencies and
// enough bandwidth that write amplification never arises.
type DRAM struct {
	cfg   Config
	q     queue
	stats Stats
}

// NewDRAM returns a DRAM device with the given configuration. Zero
// fields get conventional defaults (≈80 ns at 2.1 GHz, 64 B blocks).
func NewDRAM(cfg Config) *DRAM {
	if cfg.Name == "" {
		cfg.Name = "dram"
	}
	if cfg.ReadLat == 0 {
		cfg.ReadLat = 170
	}
	if cfg.WriteLat == 0 {
		cfg.WriteLat = 120
	}
	if cfg.DirLat == 0 {
		cfg.DirLat = cfg.ReadLat
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = 64
	}
	if cfg.BandwidthBS == 0 {
		cfg.BandwidthBS = 80e9 // ~80 GB/s aggregate
	}
	if cfg.Clock == 0 {
		cfg.Clock = 2100 * units.MHz
	}
	return &DRAM{cfg: cfg}
}

// Name implements Device.
func (d *DRAM) Name() string { return d.cfg.Name }

// Kind implements Device.
func (d *DRAM) Kind() Kind { return KindDRAM }

// InternalGranularity implements Device.
func (d *DRAM) InternalGranularity() uint64 { return d.cfg.Granularity }

// ReadLatency implements Device.
func (d *DRAM) ReadLatency() units.Cycles { return d.cfg.ReadLat }

// ReadLine implements Device.
func (d *DRAM) ReadLine(now units.Cycles, addr, size uint64) units.Cycles {
	d.stats.LineReads++
	d.stats.MediaBytesRead += size
	done, waited := d.q.admit(now, d.cfg.cyclesForRead(size))
	d.stats.StallCycles += waited
	return done + d.cfg.ReadLat
}

// WriteLine implements Device.
func (d *DRAM) WriteLine(now units.Cycles, addr, size uint64) units.Cycles {
	d.stats.LineWrites++
	d.stats.BytesReceived += size
	d.stats.MediaBytesWritten += size
	done, waited := d.q.admit(now, d.cfg.cyclesFor(size))
	d.stats.StallCycles += waited
	return done + d.cfg.WriteLat
}

// DirectoryAccess implements Device.
func (d *DRAM) DirectoryAccess(now units.Cycles) units.Cycles {
	d.stats.DirectoryOps++
	return now + d.cfg.DirLat
}

// Flush implements Device. DRAM holds no internal write buffer, so
// flush completes once the bandwidth queue drains.
func (d *DRAM) Flush(now units.Cycles) units.Cycles {
	if d.q.busyUntil > now {
		return d.q.busyUntil
	}
	return now
}

// Stats implements Device.
func (d *DRAM) Stats() Stats { return d.stats }

// ResetStats implements Device.
func (d *DRAM) ResetStats() { d.stats = Stats{} }
