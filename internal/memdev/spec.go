package memdev

import (
	"fmt"
	"sort"

	"prestores/internal/units"
)

// Spec is the declarative, JSON-serializable form of a device: a
// registered kind plus the full tunable surface of Config. A Spec with
// only Kind set builds the kind's default device; Describe returns the
// fully-defaulted Spec of a constructed device, so Spec → Build →
// Describe is the identity on effective parameters. Specs are what the
// scenario layer (internal/scenario) persists and what custom machine
// configurations are assembled from.
type Spec struct {
	Kind            string  `json:"kind"`
	Name            string  `json:"name,omitempty"`
	ReadLat         uint64  `json:"read_lat,omitempty"`          // cycles
	WriteLat        uint64  `json:"write_lat,omitempty"`         // cycles
	DirLat          uint64  `json:"dir_lat,omitempty"`           // cycles
	Granularity     uint64  `json:"granularity,omitempty"`       // bytes
	BandwidthBS     float64 `json:"bandwidth_bs,omitempty"`      // bytes/s
	ReadBandwidthBS float64 `json:"read_bandwidth_bs,omitempty"` // bytes/s
	ClockHz         float64 `json:"clock_hz,omitempty"`
	BufferEntries   int     `json:"buffer_entries,omitempty"`
}

// builder constructs a device of one kind from a (possibly partial)
// Config; each kind's New* constructor fills its own defaults.
type builder func(Config) Device

// kindRegistry maps kind names to constructors. Device kinds register
// at init time; the map is read-only afterwards.
var kindRegistry = map[string]builder{
	"dram":   func(c Config) Device { return NewDRAM(c) },
	"pmem":   func(c Config) Device { return NewPMEM(c) },
	"remote": func(c Config) Device { return NewRemote(c) },
	"cxlssd": func(c Config) Device { return NewCXLSSD(c) },
}

// Kinds returns the registered device kinds, sorted.
func Kinds() []string {
	out := make([]string, 0, len(kindRegistry))
	for k := range kindRegistry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParamNames returns the parameter-map keys Apply accepts, sorted.
// "kind" and "name" take strings; every other parameter is numeric.
func ParamNames() []string {
	return []string{
		"bandwidth_bs", "buffer_entries", "clock_hz", "dir_lat",
		"granularity", "kind", "name", "read_bandwidth_bs", "read_lat",
		"write_lat",
	}
}

// Validate checks the Spec without building it. Error strings are
// deterministic and name the offending field.
func (s Spec) Validate() error {
	if s.Kind == "" {
		return fmt.Errorf("kind: required (one of %v)", Kinds())
	}
	if _, ok := kindRegistry[s.Kind]; !ok {
		return fmt.Errorf("kind: unknown device kind %q (one of %v)", s.Kind, Kinds())
	}
	if s.BandwidthBS < 0 {
		return fmt.Errorf("bandwidth_bs: must be non-negative (got %g)", s.BandwidthBS)
	}
	if s.ReadBandwidthBS < 0 {
		return fmt.Errorf("read_bandwidth_bs: must be non-negative (got %g)", s.ReadBandwidthBS)
	}
	if s.ClockHz < 0 {
		return fmt.Errorf("clock_hz: must be non-negative (got %g)", s.ClockHz)
	}
	if s.BufferEntries < 0 {
		return fmt.Errorf("buffer_entries: must be non-negative (got %d)", s.BufferEntries)
	}
	if s.Granularity != 0 && (s.Granularity&(s.Granularity-1)) != 0 {
		return fmt.Errorf("granularity: must be a power of two (got %d)", s.Granularity)
	}
	return nil
}

// Build constructs the device the Spec describes. Zero fields keep the
// kind's defaults, exactly as the hand-written constructors behave.
func (s Spec) Build() (Device, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return kindRegistry[s.Kind](Config{
		Name:            s.Name,
		ReadLat:         s.ReadLat,
		WriteLat:        s.WriteLat,
		DirLat:          s.DirLat,
		Granularity:     s.Granularity,
		BandwidthBS:     s.BandwidthBS,
		ReadBandwidthBS: s.ReadBandwidthBS,
		Clock:           units.Hz(s.ClockHz),
		BufferEntries:   s.BufferEntries,
	}), nil
}

// Apply overlays a validated parameter map onto the Spec and returns
// the patched copy. Keys are the JSON field names (see ParamNames);
// unknown keys and mistyped values produce deterministic errors naming
// the key. Numeric parameters must be non-negative.
func (s Spec) Apply(params map[string]any) (Spec, error) {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := params[k]
		switch k {
		case "kind", "name":
			str, ok := v.(string)
			if !ok {
				return s, fmt.Errorf("%s: must be a string (got %v)", k, v)
			}
			if k == "kind" {
				s.Kind = str
			} else {
				s.Name = str
			}
		case "read_lat", "write_lat", "dir_lat", "granularity", "buffer_entries",
			"bandwidth_bs", "read_bandwidth_bs", "clock_hz":
			num, ok := v.(float64)
			if !ok {
				return s, fmt.Errorf("%s: must be a number (got %v)", k, v)
			}
			if num < 0 {
				return s, fmt.Errorf("%s: must be non-negative (got %g)", k, num)
			}
			switch k {
			case "bandwidth_bs":
				s.BandwidthBS = num
			case "read_bandwidth_bs":
				s.ReadBandwidthBS = num
			case "clock_hz":
				s.ClockHz = num
			default:
				if num != float64(uint64(num)) {
					return s, fmt.Errorf("%s: must be an integer (got %g)", k, num)
				}
				switch k {
				case "read_lat":
					s.ReadLat = uint64(num)
				case "write_lat":
					s.WriteLat = uint64(num)
				case "dir_lat":
					s.DirLat = uint64(num)
				case "granularity":
					s.Granularity = uint64(num)
				case "buffer_entries":
					s.BufferEntries = int(num)
				}
			}
		default:
			return s, fmt.Errorf("%s: unknown device parameter (known: %v)", k, ParamNames())
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// New builds a device of the registered kind from a validated
// parameter map — the scenario layer's entry point for fully
// parameterized devices.
func New(kind string, params map[string]any) (Device, error) {
	s, err := Spec{Kind: kind}.Apply(params)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

// Describe returns the fully-defaulted Spec of a constructed device:
// rebuilding from the returned Spec yields a device with identical
// effective configuration. Only the four registered concrete kinds are
// describable; wrappers and test fakes return false.
func Describe(d Device) (Spec, bool) {
	var cfg Config
	var kind string
	switch dev := d.(type) {
	case *DRAM:
		cfg, kind = dev.cfg, "dram"
	case *PMEM:
		cfg, kind = dev.cfg, "pmem"
	case *Remote:
		cfg, kind = dev.cfg, "remote"
	case *CXLSSD:
		cfg, kind = dev.cfg, "cxlssd"
	default:
		return Spec{}, false
	}
	return Spec{
		Kind:            kind,
		Name:            cfg.Name,
		ReadLat:         cfg.ReadLat,
		WriteLat:        cfg.WriteLat,
		DirLat:          cfg.DirLat,
		Granularity:     cfg.Granularity,
		BandwidthBS:     cfg.BandwidthBS,
		ReadBandwidthBS: cfg.ReadBandwidthBS,
		ClockHz:         float64(cfg.Clock),
		BufferEntries:   cfg.BufferEntries,
	}, true
}
