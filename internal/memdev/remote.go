package memdev

import "prestores/internal/units"

// Remote models cache-coherent memory reached over a long-latency link:
// the Enzian FPGA memory the paper evaluates as Machine B, or a
// CXL-attached memory expander. Latency and bandwidth are configurable,
// mirroring the paper's two configurations:
//
//   - Machine B-Fast: 60-cycle access, 10 GB/s (high-end CXL memory)
//   - Machine B-Slow: 200-cycle access, 1.5 GB/s (medium-tier CXL)
//
// The coherence directory lives on the device (as on Enzian, where the
// ARM core maintains the state of cached FPGA memory in the FPGA), so
// every line state change pays the link latency. That round trip,
// serialized behind fences, is what demote pre-stores overlap.
type Remote struct {
	cfg   Config
	q     queue
	stats Stats
}

// NewRemote returns a remote-memory device. Latency and bandwidth must
// be set by the caller; other zero fields get defaults.
func NewRemote(cfg Config) *Remote {
	if cfg.Name == "" {
		cfg.Name = "remote"
	}
	if cfg.WriteLat == 0 {
		cfg.WriteLat = cfg.ReadLat
	}
	if cfg.DirLat == 0 {
		cfg.DirLat = cfg.ReadLat
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = 128 // ThunderX line size
	}
	if cfg.Clock == 0 {
		cfg.Clock = 2000 * units.MHz
	}
	return &Remote{cfg: cfg}
}

// Name implements Device.
func (r *Remote) Name() string { return r.cfg.Name }

// Kind implements Device.
func (r *Remote) Kind() Kind { return KindRemote }

// InternalGranularity implements Device.
func (r *Remote) InternalGranularity() uint64 { return r.cfg.Granularity }

// ReadLatency implements Device.
func (r *Remote) ReadLatency() units.Cycles { return r.cfg.ReadLat }

// ReadLine implements Device.
func (r *Remote) ReadLine(now units.Cycles, addr, size uint64) units.Cycles {
	r.stats.LineReads++
	r.stats.MediaBytesRead += size
	done, waited := r.q.admit(now, r.cfg.cyclesForRead(size))
	r.stats.StallCycles += waited
	return done + r.cfg.ReadLat
}

// WriteLine implements Device. The FPGA interleaves requests across
// multiple internal memory controllers, so (unlike PMEM) sequentiality
// does not matter; only latency and aggregate bandwidth do.
func (r *Remote) WriteLine(now units.Cycles, addr, size uint64) units.Cycles {
	r.stats.LineWrites++
	r.stats.BytesReceived += size
	r.stats.MediaBytesWritten += size
	done, waited := r.q.admit(now, r.cfg.cyclesFor(size))
	r.stats.StallCycles += waited
	return done + r.cfg.WriteLat
}

// DirectoryAccess implements Device.
func (r *Remote) DirectoryAccess(now units.Cycles) units.Cycles {
	r.stats.DirectoryOps++
	return now + r.cfg.DirLat
}

// Flush implements Device.
func (r *Remote) Flush(now units.Cycles) units.Cycles {
	if r.q.busyUntil > now {
		return r.q.busyUntil
	}
	return now
}

// Stats implements Device.
func (r *Remote) Stats() Stats { return r.stats }

// ResetStats implements Device.
func (r *Remote) ResetStats() { r.stats = Stats{} }
