// Package memdev models the memory devices that sit below the simulated
// cache hierarchy: conventional DRAM, Optane-style persistent memory
// with a 256 B internal write granularity, and remote (CXL/FPGA) memory
// with configurable latency and bandwidth.
//
// Two properties of these devices drive the paper's results and are
// modeled explicitly:
//
//   - PMEM internally reads and writes 256 B blocks, four times the CPU
//     line size. Incoming 64 B line write-backs land in a small internal
//     write-combining buffer; a block whose lines all arrive before the
//     buffer entry is evicted costs one media write, while scattered
//     write-backs evict partially-filled entries and waste media
//     bandwidth. The ratio of media bytes written to bytes received is
//     the write amplification the paper measures with ipmctl.
//
//   - Remote memory has a long access latency, and the coherence
//     directory lives on the device (as on Enzian and on Intel parts,
//     where the directory is held in DRAM/PMEM). Every cache-line state
//     change therefore costs a device round trip.
package memdev

import (
	"fmt"

	"prestores/internal/units"
)

// Kind identifies the device technology.
type Kind int

// Device kinds.
const (
	KindDRAM Kind = iota
	KindPMEM
	KindRemote // CXL- or FPGA-attached memory
)

// String returns the device-kind name.
func (k Kind) String() string {
	switch k {
	case KindDRAM:
		return "DRAM"
	case KindPMEM:
		return "PMEM"
	case KindRemote:
		return "Remote"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Stats aggregates device-side traffic counters.
type Stats struct {
	LineReads  uint64 // line fills served to the cache
	LineWrites uint64 // line write-backs received from the cache

	BytesReceived     uint64 // line-write bytes received from the cache
	MediaBytesRead    uint64 // bytes read from the internal medium
	MediaBytesWritten uint64 // bytes written to the internal medium

	BlockFills    uint64 // internal buffer entries that filled completely
	PartialFlush  uint64 // internal buffer entries evicted partially dirty
	DirectoryOps  uint64 // coherence-directory accesses served
	StallCycles   uint64 // cycles requests waited on device bandwidth
	PeakQueueOver uint64 // max observed backlog (cycles) behind the queue
}

// WriteAmplification returns media bytes written per byte received.
// It returns 1 when the device has received no writes.
func (s Stats) WriteAmplification() float64 {
	if s.BytesReceived == 0 {
		return 1
	}
	return float64(s.MediaBytesWritten) / float64(s.BytesReceived)
}

// Device is a memory device attached below the cache hierarchy.
//
// All methods take the requester's current cycle and return the cycle
// at which the operation completes; the simulator is single-threaded,
// so devices serialize internally with simple busy-until bookkeeping.
type Device interface {
	Name() string
	Kind() Kind
	// InternalGranularity is the device's internal read/write unit in
	// bytes (Table 1 in the paper).
	InternalGranularity() uint64
	// ReadLatency is the unloaded media read latency in CPU cycles.
	ReadLatency() units.Cycles

	// ReadLine fetches the line at addr; returns the completion cycle.
	ReadLine(now units.Cycles, addr, size uint64) units.Cycles
	// WriteLine accepts a line write-back; returns the cycle at which
	// the device has accepted the data (media persistence may lag).
	WriteLine(now units.Cycles, addr, size uint64) units.Cycles
	// DirectoryAccess performs one coherence-directory state change.
	DirectoryAccess(now units.Cycles) units.Cycles
	// Flush drains internal buffers (end of run / explicit drain);
	// returns the completion cycle.
	Flush(now units.Cycles) units.Cycles

	Stats() Stats
	ResetStats()
}

// Config carries the tunables shared by all device models.
type Config struct {
	Name        string
	ReadLat     units.Cycles // unloaded read latency, CPU cycles
	WriteLat    units.Cycles // unloaded write-accept latency, CPU cycles
	DirLat      units.Cycles // directory round-trip latency, CPU cycles
	Granularity uint64       // internal media block size, bytes
	BandwidthBS float64      // media write bandwidth, bytes per second
	// ReadBandwidthBS is the media read bandwidth; zero means same as
	// BandwidthBS. Optane reads ~3x faster than it writes.
	ReadBandwidthBS float64
	Clock           units.Hz // CPU clock used to convert bandwidth
	// BufferEntries is the number of internal write-combining entries
	// (PMEM only); each entry covers one Granularity-sized block.
	BufferEntries int
}

func (c Config) cyclesFor(bytes uint64) units.Cycles {
	return units.CyclesForBytes(bytes, c.BandwidthBS, c.Clock)
}

func (c Config) cyclesForRead(bytes uint64) units.Cycles {
	bw := c.ReadBandwidthBS
	if bw == 0 {
		bw = c.BandwidthBS
	}
	return units.CyclesForBytes(bytes, bw, c.Clock)
}

// queue models a single shared bandwidth channel with busy-until
// semantics: a request arriving at cycle `now` that needs `service`
// cycles of channel time completes at max(now, busyUntil) + service.
type queue struct {
	busyUntil units.Cycles
}

// admit reserves service cycles on the channel starting no earlier than
// now, returning the completion cycle and the cycles spent waiting.
func (q *queue) admit(now, service units.Cycles) (done, waited units.Cycles) {
	start := now
	if q.busyUntil > start {
		waited = q.busyUntil - start
		start = q.busyUntil
	}
	q.busyUntil = start + service
	return q.busyUntil, waited
}
