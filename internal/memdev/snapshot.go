package memdev

import (
	"container/list"

	"prestores/internal/snap"
)

// StateSnapshotter is implemented by devices whose mutable state can be
// checkpointed. All devices in this package implement it; the machine
// refuses to snapshot a custom device that does not.
type StateSnapshotter interface {
	SnapshotState(w *snap.Writer)
	RestoreState(r *snap.Reader) error
}

func writeStats(w *snap.Writer, s *Stats) {
	w.U64(s.LineReads)
	w.U64(s.LineWrites)
	w.U64(s.BytesReceived)
	w.U64(s.MediaBytesRead)
	w.U64(s.MediaBytesWritten)
	w.U64(s.BlockFills)
	w.U64(s.PartialFlush)
	w.U64(s.DirectoryOps)
	w.U64(s.StallCycles)
	w.U64(s.PeakQueueOver)
}

func readStats(r *snap.Reader, s *Stats) {
	s.LineReads = r.U64()
	s.LineWrites = r.U64()
	s.BytesReceived = r.U64()
	s.MediaBytesRead = r.U64()
	s.MediaBytesWritten = r.U64()
	s.BlockFills = r.U64()
	s.PartialFlush = r.U64()
	s.DirectoryOps = r.U64()
	s.StallCycles = r.U64()
	s.PeakQueueOver = r.U64()
}

// writeWC serializes a write-combining buffer in LRU-list order, front
// (most recent) to back: eviction picks the back, so list order is
// behaviourally significant and must survive the round trip.
func writeWC(w *snap.Writer, lru *list.List) {
	w.U64(uint64(lru.Len()))
	for el := lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*wcEntry)
		w.U64(e.block)
		w.U64(e.dirty)
		w.U64(uint64(e.lines))
	}
}

// readWC rebuilds a write-combining buffer, preserving LRU order: the
// entries were written front-to-back, so PushBack reconstructs the same
// sequence.
func readWC(r *snap.Reader, entries map[uint64]*wcEntry, lru *list.List) {
	clear(entries)
	lru.Init()
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		e := &wcEntry{block: r.U64(), dirty: r.U64(), lines: uint(r.U64())}
		e.elem = lru.PushBack(e)
		entries[e.block] = e
	}
}

// SnapshotState implements StateSnapshotter.
func (d *DRAM) SnapshotState(w *snap.Writer) {
	w.Section("DRAM")
	w.U64(d.q.busyUntil)
	writeStats(w, &d.stats)
}

// RestoreState implements StateSnapshotter.
func (d *DRAM) RestoreState(r *snap.Reader) error {
	r.Section("DRAM")
	d.q.busyUntil = r.U64()
	readStats(r, &d.stats)
	return r.Err()
}

// SnapshotState implements StateSnapshotter.
func (d *Remote) SnapshotState(w *snap.Writer) {
	w.Section("RMOT")
	w.U64(d.q.busyUntil)
	writeStats(w, &d.stats)
}

// RestoreState implements StateSnapshotter.
func (d *Remote) RestoreState(r *snap.Reader) error {
	r.Section("RMOT")
	d.q.busyUntil = r.U64()
	readStats(r, &d.stats)
	return r.Err()
}

// SnapshotState implements StateSnapshotter.
func (p *PMEM) SnapshotState(w *snap.Writer) {
	w.Section("PMEM")
	w.U64(p.qRead.busyUntil)
	w.U64(p.qWrite.busyUntil)
	writeStats(w, &p.stats)
	writeWC(w, p.lru)
	// Read buffer: block bases in LRU order, front (most recent) first.
	w.U64(uint64(p.readLRU.Len()))
	for el := p.readLRU.Front(); el != nil; el = el.Next() {
		w.U64(el.Value.(uint64))
	}
}

// RestoreState implements StateSnapshotter.
func (p *PMEM) RestoreState(r *snap.Reader) error {
	r.Section("PMEM")
	p.qRead.busyUntil = r.U64()
	p.qWrite.busyUntil = r.U64()
	readStats(r, &p.stats)
	readWC(r, p.entries, p.lru)
	clear(p.readBuf)
	p.readLRU.Init()
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		block := r.U64()
		p.readBuf[block] = p.readLRU.PushBack(block)
	}
	return r.Err()
}

// SnapshotState implements StateSnapshotter.
func (d *CXLSSD) SnapshotState(w *snap.Writer) {
	w.Section("CXLS")
	w.U64(d.qRead.busyUntil)
	w.U64(d.qWrite.busyUntil)
	writeStats(w, &d.stats)
	writeWC(w, d.lru)
}

// RestoreState implements StateSnapshotter.
func (d *CXLSSD) RestoreState(r *snap.Reader) error {
	r.Section("CXLS")
	d.qRead.busyUntil = r.U64()
	d.qWrite.busyUntil = r.U64()
	readStats(r, &d.stats)
	readWC(r, d.entries, d.lru)
	return r.Err()
}
