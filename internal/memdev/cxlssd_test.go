package memdev

import (
	"testing"

	"prestores/internal/units"
)

func TestCXLSSDDefaults(t *testing.T) {
	d := NewCXLSSD(Config{})
	if d.InternalGranularity() != 512 {
		t.Fatalf("granularity = %d, want 512", d.InternalGranularity())
	}
	if d.Kind() != KindRemote {
		t.Fatal("kind")
	}
	if d.Name() != "cxl-ssd" {
		t.Fatal("name")
	}
}

func TestCXLSSDSequentialNoAmplification(t *testing.T) {
	d := NewCXLSSD(Config{})
	var now units.Cycles
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		now = d.WriteLine(now, addr, 64)
	}
	d.Flush(now)
	if amp := d.Stats().WriteAmplification(); amp != 1.0 {
		t.Fatalf("sequential amp = %v", amp)
	}
}

func TestCXLSSDIsolatedLineAmplification(t *testing.T) {
	d := NewCXLSSD(Config{})
	var now units.Cycles
	for i := 0; i < 500; i++ {
		now = d.WriteLine(now, uint64(i)*8192, 64)
	}
	d.Flush(now)
	// 512B pages / 64B lines: worst case 8x.
	if amp := d.Stats().WriteAmplification(); amp != 8.0 {
		t.Fatalf("isolated-line amp = %v, want 8.0", amp)
	}
}

func TestCXLSSDPartialPagesReadModifyWrite(t *testing.T) {
	d := NewCXLSSD(Config{BufferEntries: 2})
	var now units.Cycles
	// Three concurrent partial pages with 2 buffer entries: evictions.
	for i := 0; i < 60; i++ {
		now = d.WriteLine(now, uint64(i%3)*1<<20+uint64(i/3)*64, 64)
	}
	d.Flush(now)
	st := d.Stats()
	if st.PartialFlush == 0 {
		t.Fatal("no partial flushes despite buffer thrashing")
	}
	if st.MediaBytesRead == 0 {
		t.Fatal("partial flash pages must read-modify-write")
	}
}

func TestCXLSSDReadsServeFromBuffer(t *testing.T) {
	d := NewCXLSSD(Config{})
	d.WriteLine(0, 4096, 64)
	before := d.Stats().MediaBytesRead
	d.ReadLine(10, 4096, 64)
	if d.Stats().MediaBytesRead != before {
		t.Fatal("buffered page read went to media")
	}
}

func TestMachineCPreset(t *testing.T) {
	// Constructed via the sim package; verified here through the device
	// it exposes — avoids an import cycle with sim's own tests.
	d := NewCXLSSD(Config{Clock: 2100 * units.MHz})
	if d.DirectoryAccess(0) == 0 {
		t.Fatal("CXL directory access free")
	}
}
