package memdev

import (
	"reflect"
	"testing"

	"prestores/internal/units"
)

func TestKindsRegistered(t *testing.T) {
	want := []string{"cxlssd", "dram", "pmem", "remote"}
	if got := Kinds(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
}

// TestDescribeBuildIdentity checks that Describe∘Build is the identity
// on effective parameters for every kind: a device rebuilt from its own
// description behaves identically to the original.
func TestDescribeBuildIdentity(t *testing.T) {
	devices := []Device{
		NewDRAM(Config{Name: "ddr4", Clock: 2100 * units.MHz}),
		NewPMEM(Config{Name: "optane", Clock: 2100 * units.MHz}),
		NewRemote(Config{Name: "fpga", ReadLat: 60, BandwidthBS: 10e9, Granularity: 128, Clock: 2000 * units.MHz}),
		NewCXLSSD(Config{Clock: 2100 * units.MHz}),
	}
	for _, d := range devices {
		spec, ok := Describe(d)
		if !ok {
			t.Fatalf("Describe(%s) not describable", d.Name())
		}
		rebuilt, err := spec.Build()
		if err != nil {
			t.Fatalf("Build(%+v): %v", spec, err)
		}
		if !reflect.DeepEqual(d, rebuilt) {
			t.Errorf("%s: rebuilt device differs from original:\n  orig: %#v\n  rebuilt: %#v", d.Name(), d, rebuilt)
		}
		spec2, ok := Describe(rebuilt)
		if !ok || spec2 != spec {
			t.Errorf("%s: Describe(Build(spec)) = %+v, want %+v", d.Name(), spec2, spec)
		}
	}
}

func TestNewFromParams(t *testing.T) {
	d, err := New("remote", map[string]any{
		"name": "fpga", "read_lat": float64(200), "bandwidth_bs": 1.5e9,
		"granularity": float64(128), "clock_hz": 2000e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind() != KindRemote || d.ReadLatency() != 200 || d.InternalGranularity() != 128 {
		t.Fatalf("unexpected device: kind=%v lat=%d gran=%d", d.Kind(), d.ReadLatency(), d.InternalGranularity())
	}
}

// TestApplyErrors locks the deterministic error strings the scenario
// validator surfaces as 400s.
func TestApplyErrors(t *testing.T) {
	cases := []struct {
		params map[string]any
		want   string
	}{
		{map[string]any{"bogus": 1.0}, "bogus: unknown device parameter (known: [bandwidth_bs buffer_entries clock_hz dir_lat granularity kind name read_bandwidth_bs read_lat write_lat])"},
		{map[string]any{"read_lat": "fast"}, "read_lat: must be a number (got fast)"},
		{map[string]any{"read_lat": -5.0}, "read_lat: must be non-negative (got -5)"},
		{map[string]any{"read_lat": 1.5}, "read_lat: must be an integer (got 1.5)"},
		{map[string]any{"kind": 7.0}, "kind: must be a string (got 7)"},
		{map[string]any{"kind": "flash"}, `kind: unknown device kind "flash" (one of [cxlssd dram pmem remote])`},
		{map[string]any{"granularity": 96.0}, "granularity: must be a power of two (got 96)"},
	}
	for _, c := range cases {
		base := Spec{Kind: "dram"}
		_, err := base.Apply(c.params)
		if err == nil || err.Error() != c.want {
			t.Errorf("Apply(%v) error = %v, want %q", c.params, err, c.want)
		}
	}
	empty := Spec{}
	if _, err := empty.Build(); err == nil {
		t.Error("Build of empty spec should fail")
	}
}
