package memdev

import (
	"container/list"

	"prestores/internal/units"
)

// CXLSSD models byte-addressable CXL-attached flash storage — the
// fourth row of the paper's Table 1 ("CXL SSD, 256B/512B with current
// technologies"). It combines the two pathologies the paper studies:
// a remote-memory access latency *and* an internal write granularity
// far above the CPU line size, so non-sequential evictions amplify
// writes even more than on Optane, and fences stall on the link.
//
// The model mirrors PMEM's: incoming line write-backs stage in an
// internal write buffer keyed by flash-page-sized blocks; fully
// populated blocks retire with one media program, partially populated
// ones cost a read-modify-write (charged as a media read plus the
// program).
type CXLSSD struct {
	cfg    Config
	qRead  queue
	qWrite queue

	backlogWindow units.Cycles

	entries map[uint64]*wcEntry
	lru     *list.List
	stats   Stats
}

// NewCXLSSD returns a CXL SSD device. Zero config fields get defaults
// representative of current CXL flash prototypes: 512 B internal pages,
// ~1.2 µs reads, ~2 GB/s programs.
func NewCXLSSD(cfg Config) *CXLSSD {
	if cfg.Name == "" {
		cfg.Name = "cxl-ssd"
	}
	if cfg.ReadLat == 0 {
		cfg.ReadLat = 2500 // ~1.2us at 2.1GHz
	}
	if cfg.WriteLat == 0 {
		cfg.WriteLat = 300
	}
	if cfg.DirLat == 0 {
		cfg.DirLat = 600 // link round trip
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = 512
	}
	if cfg.BandwidthBS == 0 {
		cfg.BandwidthBS = 2e9
	}
	if cfg.ReadBandwidthBS == 0 {
		cfg.ReadBandwidthBS = 6e9
	}
	if cfg.Clock == 0 {
		cfg.Clock = 2100 * units.MHz
	}
	if cfg.BufferEntries == 0 {
		cfg.BufferEntries = 32
	}
	d := &CXLSSD{
		cfg:     cfg,
		entries: make(map[uint64]*wcEntry),
		lru:     list.New(),
	}
	d.backlogWindow = 4 * units.Cycles(cfg.BufferEntries) * cfg.cyclesFor(cfg.Granularity)
	return d
}

// Name implements Device.
func (d *CXLSSD) Name() string { return d.cfg.Name }

// Kind implements Device.
func (d *CXLSSD) Kind() Kind { return KindRemote }

// InternalGranularity implements Device.
func (d *CXLSSD) InternalGranularity() uint64 { return d.cfg.Granularity }

// ReadLatency implements Device.
func (d *CXLSSD) ReadLatency() units.Cycles { return d.cfg.ReadLat }

// ReadLine implements Device.
func (d *CXLSSD) ReadLine(now units.Cycles, addr, size uint64) units.Cycles {
	d.stats.LineReads++
	block := units.AlignDown(addr, d.cfg.Granularity)
	if _, buffered := d.entries[block]; buffered {
		return now + d.cfg.WriteLat
	}
	d.stats.MediaBytesRead += d.cfg.Granularity
	done, waited := d.qRead.admit(now, d.cfg.cyclesForRead(d.cfg.Granularity))
	d.stats.StallCycles += waited
	return done + d.cfg.ReadLat
}

// WriteLine implements Device.
func (d *CXLSSD) WriteLine(now units.Cycles, addr, size uint64) units.Cycles {
	d.stats.LineWrites++
	d.stats.BytesReceived += size
	gran := d.cfg.Granularity
	for cur := units.AlignDown(addr, gran); cur < addr+size; cur += gran {
		d.stageLine(now, cur, addr, size)
	}
	accepted := now + d.cfg.WriteLat
	if lag := d.qWrite.busyUntil; lag > now+d.backlogWindow {
		accepted = lag - d.backlogWindow + d.cfg.WriteLat
	}
	return accepted
}

func (d *CXLSSD) stageLine(now units.Cycles, cur, addr, size uint64) {
	gran := d.cfg.Granularity
	const lineSize = 64
	e := d.entries[cur]
	if e == nil {
		if len(d.entries) >= d.cfg.BufferEntries {
			d.evictOldest(now)
		}
		e = &wcEntry{block: cur, lines: uint(gran / lineSize)}
		e.elem = d.lru.PushFront(e)
		d.entries[cur] = e
	} else {
		d.lru.MoveToFront(e.elem)
	}
	lo, hi := addr, addr+size
	if lo < cur {
		lo = cur
	}
	if hi > cur+gran {
		hi = cur + gran
	}
	for b := units.AlignDown(lo, lineSize); b < hi; b += lineSize {
		e.dirty |= 1 << ((b - cur) / lineSize)
	}
	if e.full() {
		d.stats.BlockFills++
		d.retire(now, e, false)
	}
}

func (d *CXLSSD) evictOldest(now units.Cycles) {
	e := d.lru.Back().Value.(*wcEntry)
	if !e.full() {
		d.stats.PartialFlush++
		// Partial flash pages need a read-modify-write.
		d.stats.MediaBytesRead += d.cfg.Granularity
		_, waited := d.qRead.admit(now, d.cfg.cyclesForRead(d.cfg.Granularity))
		d.stats.StallCycles += waited
	}
	d.retire(now, e, true)
}

func (d *CXLSSD) retire(now units.Cycles, e *wcEntry, evict bool) {
	d.stats.MediaBytesWritten += d.cfg.Granularity
	_, waited := d.qWrite.admit(now, d.cfg.cyclesFor(d.cfg.Granularity))
	d.stats.StallCycles += waited
	d.lru.Remove(e.elem)
	delete(d.entries, e.block)
}

// DirectoryAccess implements Device.
func (d *CXLSSD) DirectoryAccess(now units.Cycles) units.Cycles {
	d.stats.DirectoryOps++
	return now + d.cfg.DirLat
}

// Flush implements Device.
func (d *CXLSSD) Flush(now units.Cycles) units.Cycles {
	for d.lru.Len() > 0 {
		d.evictOldest(now)
	}
	done := now
	if d.qWrite.busyUntil > done {
		done = d.qWrite.busyUntil
	}
	if d.qRead.busyUntil > done {
		done = d.qRead.busyUntil
	}
	return done
}

// Stats implements Device.
func (d *CXLSSD) Stats() Stats { return d.stats }

// ResetStats implements Device.
func (d *CXLSSD) ResetStats() { d.stats = Stats{} }
