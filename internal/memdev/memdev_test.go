package memdev

import (
	"testing"

	"prestores/internal/units"
)

func TestKindString(t *testing.T) {
	if KindDRAM.String() != "DRAM" || KindPMEM.String() != "PMEM" || KindRemote.String() != "Remote" {
		t.Fatal("kind names wrong")
	}
}

func TestDRAMDefaults(t *testing.T) {
	d := NewDRAM(Config{})
	if d.InternalGranularity() != 64 {
		t.Fatalf("granularity = %d", d.InternalGranularity())
	}
	if d.Kind() != KindDRAM {
		t.Fatal("kind")
	}
	done := d.ReadLine(100, 0, 64)
	if done <= 100 {
		t.Fatal("read has no latency")
	}
}

func TestDRAMNoAmplification(t *testing.T) {
	d := NewDRAM(Config{})
	var now units.Cycles
	for i := 0; i < 100; i++ {
		now = d.WriteLine(now, uint64(i)*64, 64)
	}
	if amp := d.Stats().WriteAmplification(); amp != 1.0 {
		t.Fatalf("DRAM amplification = %v, want 1.0", amp)
	}
}

func TestPMEMSequentialNoAmplification(t *testing.T) {
	p := NewPMEM(Config{})
	var now units.Cycles
	// Write 1 MiB of 64B lines strictly in order.
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		now = p.WriteLine(now, addr, 64)
	}
	p.Flush(now)
	st := p.Stats()
	if amp := st.WriteAmplification(); amp != 1.0 {
		t.Fatalf("sequential amplification = %v, want exactly 1.0", amp)
	}
	if st.BlockFills == 0 {
		t.Fatal("no full-block retirements for a sequential stream")
	}
	if st.PartialFlush != 0 {
		t.Fatalf("sequential stream caused %d partial flushes", st.PartialFlush)
	}
}

func TestPMEMRandomAmplification(t *testing.T) {
	p := NewPMEM(Config{})
	var now units.Cycles
	// One isolated 64B line per 256B block, far apart: worst case.
	for i := 0; i < 1000; i++ {
		now = p.WriteLine(now, uint64(i)*4096, 64)
	}
	p.Flush(now)
	if amp := p.Stats().WriteAmplification(); amp != 4.0 {
		t.Fatalf("isolated-line amplification = %v, want 4.0", amp)
	}
}

func TestPMEMCoalescingWindow(t *testing.T) {
	// Lines of a block written within the buffer window coalesce even
	// when interleaved with other blocks.
	p := NewPMEM(Config{BufferEntries: 8})
	var now units.Cycles
	for i := 0; i < 400; i += 4 {
		blockA := uint64(i) * 256
		blockB := uint64(i+100000) * 256
		for sub := uint64(0); sub < 4; sub++ {
			now = p.WriteLine(now, blockA+sub*64, 64)
			now = p.WriteLine(now, blockB+sub*64, 64)
		}
	}
	p.Flush(now)
	if amp := p.Stats().WriteAmplification(); amp != 1.0 {
		t.Fatalf("two interleaved streams should coalesce: amp = %v", amp)
	}
}

func TestPMEMWindowOverflow(t *testing.T) {
	// More concurrent streams than buffer entries: partial flushes.
	p := NewPMEM(Config{BufferEntries: 4})
	var now units.Cycles
	const streams = 32
	for round := 0; round < 64; round++ {
		for s := uint64(0); s < streams; s++ {
			addr := s*1<<20 + uint64(round)*64
			now = p.WriteLine(now, addr, 64)
		}
	}
	p.Flush(now)
	if amp := p.Stats().WriteAmplification(); amp < 2.0 {
		t.Fatalf("buffer-thrashing streams should amplify: amp = %v", amp)
	}
}

func TestPMEMReadBuffer(t *testing.T) {
	p := NewPMEM(Config{})
	var now units.Cycles
	// Four line fills within one 256B block: one media read.
	for sub := uint64(0); sub < 4; sub++ {
		now = p.ReadLine(now, 4096+sub*64, 64)
	}
	if got := p.Stats().MediaBytesRead; got != 256 {
		t.Fatalf("media read %d bytes, want 256 (read combining)", got)
	}
}

func TestPMEMWriteBufferServesReads(t *testing.T) {
	p := NewPMEM(Config{})
	p.WriteLine(0, 8192, 64)
	before := p.Stats().MediaBytesRead
	p.ReadLine(10, 8192, 64)
	if p.Stats().MediaBytesRead != before {
		t.Fatal("read of write-buffered block went to media")
	}
}

func TestPMEMFlushDrainsBuffer(t *testing.T) {
	p := NewPMEM(Config{})
	p.WriteLine(0, 0, 64)
	if p.BufferedBlocks() != 1 {
		t.Fatalf("buffered = %d", p.BufferedBlocks())
	}
	p.Flush(100)
	if p.BufferedBlocks() != 0 {
		t.Fatal("flush left buffered blocks")
	}
	if p.Stats().MediaBytesWritten != 256 {
		t.Fatalf("flush wrote %d media bytes", p.Stats().MediaBytesWritten)
	}
}

func TestPMEMBackpressure(t *testing.T) {
	// Sustained isolated-line writes must eventually slow acceptance to
	// the media rate.
	p := NewPMEM(Config{})
	var now units.Cycles
	var last units.Cycles
	for i := 0; i < 5000; i++ {
		last = p.WriteLine(now, uint64(i)*4096, 64)
		now += 10 // core issues much faster than media writes drain
	}
	if last <= now {
		t.Fatalf("no back-pressure: accept %d <= issue %d", last, now)
	}
}

func TestRemoteLatencyConfig(t *testing.T) {
	fast := NewRemote(Config{ReadLat: 60, BandwidthBS: 10e9, Clock: 2000 * units.MHz})
	slow := NewRemote(Config{ReadLat: 200, BandwidthBS: 1.5e9, Clock: 2000 * units.MHz})
	df := fast.ReadLine(0, 0, 128)
	ds := slow.ReadLine(0, 0, 128)
	if ds <= df {
		t.Fatalf("slow read (%d) not slower than fast (%d)", ds, df)
	}
	if fast.DirectoryAccess(0) != 60 {
		t.Fatalf("directory access = %d, want the device latency", fast.DirectoryAccess(0))
	}
}

func TestRemoteBandwidthQueue(t *testing.T) {
	r := NewRemote(Config{ReadLat: 60, BandwidthBS: 1.5e9, Clock: 2000 * units.MHz})
	// Burst of writes at the same instant must serialize on bandwidth.
	var lastDone units.Cycles
	for i := 0; i < 10; i++ {
		done := r.WriteLine(0, uint64(i)*128, 128)
		if done <= lastDone {
			t.Fatalf("write %d finished at %d, not after %d", i, done, lastDone)
		}
		lastDone = done
	}
	if r.Stats().StallCycles == 0 {
		t.Fatal("burst caused no queueing")
	}
}

func TestStatsWriteAmplificationZero(t *testing.T) {
	var s Stats
	if s.WriteAmplification() != 1 {
		t.Fatal("zero-traffic amplification should be 1")
	}
}

func TestResetStats(t *testing.T) {
	p := NewPMEM(Config{})
	p.WriteLine(0, 0, 64)
	p.ResetStats()
	if p.Stats().LineWrites != 0 {
		t.Fatal("ResetStats kept counters")
	}
}
