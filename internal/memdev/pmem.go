package memdev

import (
	"container/list"

	"prestores/internal/units"
)

// PMEM models an Optane-style persistent memory DIMM set.
//
// The device receives CPU-line-sized (64 B) write-backs but its medium
// reads and writes 256 B blocks. Incoming lines are staged in a small
// internal write-combining buffer (the "XPBuffer"); an entry whose four
// lines all arrive before it is evicted costs exactly one media block
// write, while an entry evicted partially filled still costs a full
// block write. Media traffic divided by received traffic is the write
// amplification reported by ipmctl and reproduced in Figures 3, 8
// and 12 of the paper.
type PMEM struct {
	cfg Config
	// qRead and qWrite model the device's internally scheduled read and
	// write channels: Optane reads ~3x faster than it writes and the
	// controller prioritizes reads, so a write backlog does not stall
	// line fills.
	qRead  queue
	qWrite queue
	// backlogWindow is how many cycles of media-write backlog the
	// internal buffering absorbs before write acceptance (the WPQ)
	// pushes back on the CPU.
	backlogWindow units.Cycles

	entries map[uint64]*wcEntry // keyed by block base address
	lru     *list.List          // front = most recently used

	// Read buffer: recently read media blocks. Sequential 64 B line
	// fills within one 256 B block hit here and cost no extra media
	// traffic, mirroring the device's internal read combining.
	readBuf  map[uint64]*list.Element // block base -> element in readLRU
	readLRU  *list.List               // values are block base addresses
	readBufN int
	stats    Stats
}

type wcEntry struct {
	block uint64 // block base address
	dirty uint64 // bitmask of dirty line-sized sub-blocks
	lines uint   // number of sub-blocks in the block
	elem  *list.Element
}

func (e *wcEntry) full() bool { return e.dirty == (uint64(1)<<e.lines)-1 }

// NewPMEM returns a PMEM device. Zero config fields get defaults that
// mirror published Optane characteristics (≈300-cycle reads, 256 B
// internal blocks, a 64-entry internal write buffer, ~9 GB/s media
// bandwidth).
func NewPMEM(cfg Config) *PMEM {
	if cfg.Name == "" {
		cfg.Name = "pmem"
	}
	if cfg.ReadLat == 0 {
		cfg.ReadLat = 320
	}
	if cfg.WriteLat == 0 {
		cfg.WriteLat = 120
	}
	if cfg.DirLat == 0 {
		cfg.DirLat = cfg.ReadLat
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = 256
	}
	if cfg.BandwidthBS == 0 {
		cfg.BandwidthBS = 3e9 // Optane sustained media write bandwidth
	}
	if cfg.ReadBandwidthBS == 0 {
		cfg.ReadBandwidthBS = 15e9
	}
	if cfg.Clock == 0 {
		cfg.Clock = 2100 * units.MHz
	}
	if cfg.BufferEntries == 0 {
		cfg.BufferEntries = 32
	}
	p := &PMEM{
		cfg:      cfg,
		entries:  make(map[uint64]*wcEntry),
		lru:      list.New(),
		readBuf:  make(map[uint64]*list.Element),
		readLRU:  list.New(),
		readBufN: cfg.BufferEntries,
	}
	// The write-pending queue in front of the media absorbs several
	// buffer-drains worth of backlog before acceptance pushes back;
	// bursty interleaved cleans must not stall fences while the medium
	// has slack on average.
	p.backlogWindow = 4 * units.Cycles(cfg.BufferEntries) * cfg.cyclesFor(cfg.Granularity)
	return p
}

// Name implements Device.
func (p *PMEM) Name() string { return p.cfg.Name }

// Kind implements Device.
func (p *PMEM) Kind() Kind { return KindPMEM }

// InternalGranularity implements Device.
func (p *PMEM) InternalGranularity() uint64 { return p.cfg.Granularity }

// ReadLatency implements Device.
func (p *PMEM) ReadLatency() units.Cycles { return p.cfg.ReadLat }

// BufferEntries returns the internal write-combining capacity.
func (p *PMEM) BufferEntries() int { return p.cfg.BufferEntries }

// ReadLine implements Device. A read that hits a buffered block is
// served from the internal buffer without media traffic.
func (p *PMEM) ReadLine(now units.Cycles, addr, size uint64) units.Cycles {
	p.stats.LineReads++
	block := units.AlignDown(addr, p.cfg.Granularity)
	if _, buffered := p.entries[block]; buffered {
		return now + p.cfg.WriteLat // write-buffer hit: near-controller latency
	}
	if el, ok := p.readBuf[block]; ok {
		p.readLRU.MoveToFront(el)
		return now + p.cfg.WriteLat // read-buffer hit
	}
	p.stats.MediaBytesRead += p.cfg.Granularity
	done, waited := p.qRead.admit(now, p.cfg.cyclesForRead(p.cfg.Granularity))
	p.stats.StallCycles += waited
	if p.readLRU.Len() >= p.readBufN {
		back := p.readLRU.Back()
		delete(p.readBuf, back.Value.(uint64))
		p.readLRU.Remove(back)
	}
	p.readBuf[block] = p.readLRU.PushFront(block)
	return done + p.cfg.ReadLat
}

// WriteLine implements Device. The returned cycle is when the device
// has accepted the line into its write-pending queue. Acceptance is
// fast while the media-write backlog fits the internal buffering; once
// the backlog exceeds it, acceptance degrades to the media write rate —
// the back-pressure that makes write amplification cost performance.
func (p *PMEM) WriteLine(now units.Cycles, addr, size uint64) units.Cycles {
	p.stats.LineWrites++
	p.stats.BytesReceived += size

	gran := p.cfg.Granularity
	for cur := units.AlignDown(addr, gran); cur < addr+size; cur += gran {
		p.stageLine(now, cur, addr, size)
	}
	accepted := now + p.cfg.WriteLat
	if lag := p.qWrite.busyUntil; lag > now+p.backlogWindow {
		accepted = lag - p.backlogWindow + p.cfg.WriteLat
	}
	return accepted
}

// stageLine marks the sub-lines of block `cur` covered by [addr,
// addr+size) dirty in the write buffer, evicting or retiring entries as
// needed.
func (p *PMEM) stageLine(now units.Cycles, cur, addr, size uint64) {
	gran := p.cfg.Granularity
	const lineSize = 64 // sub-block tracking granularity
	e := p.entries[cur]
	if e == nil {
		if len(p.entries) >= p.cfg.BufferEntries {
			p.evictOldest(now)
		}
		e = &wcEntry{block: cur, lines: uint(gran / lineSize)}
		e.elem = p.lru.PushFront(e)
		p.entries[cur] = e
	} else {
		p.lru.MoveToFront(e.elem)
	}
	lo, hi := addr, addr+size
	if lo < cur {
		lo = cur
	}
	if hi > cur+gran {
		hi = cur + gran
	}
	for b := units.AlignDown(lo, lineSize); b < hi; b += lineSize {
		e.dirty |= 1 << ((b - cur) / lineSize)
	}
	if e.full() {
		// Fully-populated block: retire to media immediately; this is
		// the cheap path sequential write-backs take.
		p.stats.BlockFills++
		p.retire(now, e)
	}
}

// evictOldest writes the least-recently-used buffer entry to the medium
// and returns the cycle at which buffer space is available again.
func (p *PMEM) evictOldest(now units.Cycles) units.Cycles {
	back := p.lru.Back()
	e := back.Value.(*wcEntry)
	if !e.full() {
		p.stats.PartialFlush++
	}
	return p.retire(now, e)
}

// retire writes entry e's full block to the medium and frees the entry.
func (p *PMEM) retire(now units.Cycles, e *wcEntry) units.Cycles {
	p.stats.MediaBytesWritten += p.cfg.Granularity
	done, waited := p.qWrite.admit(now, p.cfg.cyclesFor(p.cfg.Granularity))
	p.stats.StallCycles += waited
	p.lru.Remove(e.elem)
	delete(p.entries, e.block)
	return done
}

// DirectoryAccess implements Device. Intel parts hold the coherence
// directory in DRAM/PMEM, so a state change costs a device round trip.
func (p *PMEM) DirectoryAccess(now units.Cycles) units.Cycles {
	p.stats.DirectoryOps++
	return now + p.cfg.DirLat
}

// Flush implements Device: drains the internal write buffer to media.
func (p *PMEM) Flush(now units.Cycles) units.Cycles {
	done := now
	for p.lru.Len() > 0 {
		if t := p.evictOldest(done); t > done {
			done = t
		}
	}
	if p.qWrite.busyUntil > done {
		done = p.qWrite.busyUntil
	}
	if p.qRead.busyUntil > done {
		done = p.qRead.busyUntil
	}
	return done
}

// BufferedBlocks returns the number of blocks currently staged in the
// internal write buffer (exposed for tests).
func (p *PMEM) BufferedBlocks() int { return len(p.entries) }

// Stats implements Device.
func (p *PMEM) Stats() Stats { return p.stats }

// ResetStats implements Device.
func (p *PMEM) ResetStats() { p.stats = Stats{} }
