package bench

import (
	"context"
	"fmt"
	"io"

	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/clht"
	"prestores/internal/workloads/kv"
	"prestores/internal/workloads/masstree"
	"prestores/internal/workloads/ycsb"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "CLHT, YCSB-A on Machine A: throughput vs value size",
		Paper: "Fig 10: skip up to 2.9x, clean up to 2.3x over baseline",
		Run: func(ctx context.Context, w io.Writer, quick bool) {
			runKVA(ctx, w, quick, "clht", []kv.CraftMode{kv.CraftBaseline, kv.CraftClean, kv.CraftSkip})
		},
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Masstree, YCSB-A on Machine A: throughput vs value size",
		Paper: "Fig 11: skip up to 2.5x, clean up to 1.9x over baseline",
		Run: func(ctx context.Context, w io.Writer, quick bool) {
			runKVA(ctx, w, quick, "masstree", []kv.CraftMode{kv.CraftBaseline, kv.CraftClean, kv.CraftSkip})
		},
	})
	register(Experiment{
		ID:    "fig12",
		Title: "CLHT, YCSB-A on Machine A: write amplification vs value size",
		Paper: "Fig 12: baseline ~3.8x at >=256B values; skip and clean eliminate it",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "CLHT, YCSB-A (1KB values) on Machine B fast/slow",
		Paper: "Fig 13: cleaning (dc cvau -> demote to L2) 52% faster on B-fast",
		Run: func(ctx context.Context, w io.Writer, quick bool) {
			runKVB(ctx, w, quick, "clht")
		},
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Masstree, YCSB-A (1KB values) on Machine B fast/slow",
		Paper: "Fig 14: cleaning 25% faster",
		Run: func(ctx context.Context, w io.Writer, quick bool) {
			runKVB(ctx, w, quick, "masstree")
		},
	})
	// x9 is registered as a declarative scenario spec in spec.go.
}

// kvSetup builds a machine + store + heap sized per DESIGN.md §6. The
// machine attaches to ctx's per-run ops counter when one is present.
func kvSetup(ctx context.Context, mk func() *sim.Machine, which, window string, quick bool) (*sim.Machine, kv.Store, *kv.ValueHeap, ycsb.Config) {
	m := mk().AttachOps(ctx)
	records := uint64(400_000)
	ops := 6000
	if quick {
		records = 100_000
		ops = 1500
	}
	var store kv.Store
	if which == "clht" {
		store = clht.New(m, clht.Config{Window: window, Buckets: 1 << 18, Overflow: 64 * units.MiB})
	} else {
		store = masstree.New(m, masstree.Config{Window: window, PoolNodes: 1 << 17})
	}
	heap := kv.NewValueHeap(m, window, 4*units.GiB)
	cfg := ycsb.Config{
		Records: records, Ops: ops, Threads: 10,
		Workload: ycsb.A, Window: window, Seed: 99,
	}
	return m, store, heap, cfg
}

func runKVA(ctx context.Context, w io.Writer, quick bool, which string, modes []kv.CraftMode) {
	sizes := []uint32{64, 128, 256, 1024, 4096}
	if quick {
		sizes = []uint32{256, 1024}
	}
	header(w, "value", "baseline", "clean", "clean gain", "skip", "skip gain")
	for _, vsz := range sizes {
		results := map[kv.CraftMode]ycsb.Result{}
		for _, mode := range modes {
			if cancelled(ctx) {
				return
			}
			m, store, heap, cfg := kvSetup(ctx, sim.MachineA, which, sim.WindowPMEM, quick)
			cfg.ValueSize = vsz
			cfg.Craft = mode
			kvLoad(ctx, m, store, heap, cfg)
			results[mode] = ycsb.Run(m, store, heap, cfg)
		}
		base := results[kv.CraftBaseline]
		clean := results[kv.CraftClean]
		skip := results[kv.CraftSkip]
		row(w, units.Bytes(uint64(vsz)),
			mops(base.OpsPerSec), mops(clean.OpsPerSec),
			fmt.Sprintf("%.2fx", clean.OpsPerSec/base.OpsPerSec),
			mops(skip.OpsPerSec),
			fmt.Sprintf("%.2fx", skip.OpsPerSec/base.OpsPerSec))
	}
}

func runFig12(ctx context.Context, w io.Writer, quick bool) {
	sizes := []uint32{64, 128, 256, 1024, 4096}
	if quick {
		sizes = []uint32{256, 1024}
	}
	header(w, "value", "base amp", "clean amp", "skip amp")
	for _, vsz := range sizes {
		amps := map[kv.CraftMode]float64{}
		for _, mode := range []kv.CraftMode{kv.CraftBaseline, kv.CraftClean, kv.CraftSkip} {
			if cancelled(ctx) {
				return
			}
			m, store, heap, cfg := kvSetup(ctx, sim.MachineA, "clht", sim.WindowPMEM, quick)
			cfg.ValueSize = vsz
			cfg.Craft = mode
			kvLoad(ctx, m, store, heap, cfg)
			amps[mode] = ycsb.Run(m, store, heap, cfg).WriteAmp
		}
		row(w, units.Bytes(uint64(vsz)),
			f2(amps[kv.CraftBaseline]), f2(amps[kv.CraftClean]), f2(amps[kv.CraftSkip]))
	}
}

func runKVB(ctx context.Context, w io.Writer, quick bool, which string) {
	header(w, "machine", "baseline", "clean", "improvement")
	for _, mk := range []struct {
		name string
		mk   func() *sim.Machine
	}{{"B-fast", sim.MachineBFast}, {"B-slow", sim.MachineBSlow}} {
		results := map[kv.CraftMode]ycsb.Result{}
		// On ARM the "clean" patch compiles to dc cvau, which our
		// machines model via CleanToPOU (paper §2 / §7.3.1).
		for _, mode := range []kv.CraftMode{kv.CraftBaseline, kv.CraftClean} {
			if cancelled(ctx) {
				return
			}
			m, store, heap, cfg := kvSetup(ctx, mk.mk, which, sim.WindowRemote, quick)
			cfg.ValueSize = 1024
			cfg.Craft = mode
			kvLoad(ctx, m, store, heap, cfg)
			results[mode] = ycsb.Run(m, store, heap, cfg)
		}
		base, clean := results[kv.CraftBaseline], results[kv.CraftClean]
		row(w, mk.name, mops(base.OpsPerSec), mops(clean.OpsPerSec),
			pct(clean.OpsPerSec/base.OpsPerSec))
	}
}
