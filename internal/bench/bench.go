// Package bench is the experiment harness: one registered experiment
// per table and figure of the paper's evaluation, each regenerating the
// same rows/series the paper reports, plus the ablations called out in
// DESIGN.md. The cmd/prestore-bench binary, the prestored daemon
// (internal/server) and the root bench_test.go drive this registry.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
)

// Experiment regenerates one table or figure.
type Experiment struct {
	// ID is the short handle, e.g. "fig3" or "table2".
	ID string
	// Title describes the experiment.
	Title string
	// Paper summarizes what the paper reports, for side-by-side reading.
	Paper string
	// Run executes the experiment, writing its table to w. quick mode
	// shrinks sweeps for smoke tests and testing.B use. Implementations
	// check ctx at sweep-iteration boundaries (see cancelled) and return
	// early once it is done; the runner detects the cancellation and
	// reports the experiment failed with its partial output.
	Run func(ctx context.Context, w io.Writer, quick bool)
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs panic at init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// cancelled reports whether ctx is done. Experiment sweep loops call it
// at iteration boundaries, so a timeout, a client disconnect or a
// daemon shutdown stops simulation work at the next boundary instead of
// burning a worker until the sweep would have finished on its own.
func cancelled(ctx context.Context) bool { return ctx.Err() != nil }

// RunAll executes every experiment in ID order on a single worker; it
// is Run with Parallel: 1 over the full registry.
func RunAll(ctx context.Context, w io.Writer, quick bool) error {
	_, err := Run(ctx, w, All(), RunnerConfig{Parallel: 1, Quick: quick})
	return err
}

// RunOne executes a single experiment with its header. It returns the
// first error w reported; once a write fails, the remaining output is
// discarded (experiments keep their plain io.Writer contract, so the
// latched error is how a hung-up sink surfaces).
func RunOne(ctx context.Context, w io.Writer, e Experiment, quick bool) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "\n=== %s: %s ===\n", e.ID, e.Title)
	fmt.Fprintf(ew, "paper: %s\n", e.Paper)
	if ew.err == nil && !cancelled(ctx) {
		e.Run(ctx, ew, quick)
	}
	return ew.err
}

// errWriter latches the first write error and discards everything
// after it. Experiments write through fmt helpers that drop errors, so
// this is what lets RunOne and the runner notice a dead sink.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

// header prints a column header row.
func header(w io.Writer, cols ...string) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
}

// row prints a data row matching header's layout.
func row(w io.Writer, cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", (ratio-1)*100) }

func mops(v float64) string { return fmt.Sprintf("%.2fM/s", v/1e6) }
