// Package bench is the experiment harness: one registered experiment
// per table and figure of the paper's evaluation, each regenerating the
// same rows/series the paper reports, plus the ablations called out in
// DESIGN.md. The cmd/prestore-bench binary and the root bench_test.go
// drive this registry.
package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment regenerates one table or figure.
type Experiment struct {
	// ID is the short handle, e.g. "fig3" or "table2".
	ID string
	// Title describes the experiment.
	Title string
	// Paper summarizes what the paper reports, for side-by-side reading.
	Paper string
	// Run executes the experiment, writing its table to w. quick mode
	// shrinks sweeps for smoke tests and testing.B use.
	Run func(w io.Writer, quick bool)
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs panic at init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RunAll executes every experiment in ID order on a single worker; it
// is Run with Parallel: 1 over the full registry.
func RunAll(w io.Writer, quick bool) {
	Run(w, All(), RunnerConfig{Parallel: 1, Quick: quick})
}

// RunOne executes a single experiment with its header.
func RunOne(w io.Writer, e Experiment, quick bool) {
	fmt.Fprintf(w, "\n=== %s: %s ===\n", e.ID, e.Title)
	fmt.Fprintf(w, "paper: %s\n", e.Paper)
	e.Run(w, quick)
}

// header prints a column header row.
func header(w io.Writer, cols ...string) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
}

// row prints a data row matching header's layout.
func row(w io.Writer, cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", (ratio-1)*100) }

func mops(v float64) string { return fmt.Sprintf("%.2fM/s", v/1e6) }
