// Golden-determinism guard. This file is an external test package so
// it can drive the experiments the way real consumers do — through the
// exported runner API and through the prestored HTTP daemon — and
// assert all of them produce the same bytes.
package bench_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"prestores/internal/bench"
	"prestores/internal/server"
)

// goldenIDs is a cross-section of the registry covering every subsystem
// the experiments exercise: directory/drain ablations, both device
// extensions, the headline figures, the listing microbenchmarks, and
// the multi-core table.
var goldenIDs = []string{
	"ablate-dir", "ablate-drain", "ext-cxlssd", "ext-seqlog",
	"fig3", "fig5", "listing3", "skipvsclean", "table1", "x9",
}

// goldenSHA256 is the SHA-256 of the concatenated -quick output of
// goldenIDs, in that order. The simulator is deterministic by design —
// fixed seeds, no timing dependence — so this hash must be stable
// across runs, across -parallel settings, and across performance
// refactors. If an intentional model change shifts the numbers, rerun
//
//	go run ./cmd/prestore-bench -quick -run \
//	  ablate-dir,ablate-drain,ext-cxlssd,ext-seqlog,fig3,fig5,listing3,skipvsclean,table1,x9 \
//	  | sha256sum
//
// and update the constant in the same commit that explains the change.
const goldenSHA256 = "001281f3bccc41f60a5ad26f76bf982231f2806b799de97970a160407ddb3424"

func goldenExperiments(t *testing.T) []bench.Experiment {
	t.Helper()
	exps := make([]bench.Experiment, 0, len(goldenIDs))
	for _, id := range goldenIDs {
		e, ok := bench.Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	return exps
}

// TestGoldenOutput locks the experiment output down to the byte. It is
// the regression oracle that lets hot-path rewrites proceed safely:
// any accidental change to timing, accounting, or formatting shows up
// as a hash mismatch here before it silently corrupts paper figures.
func TestGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("golden cross-section takes a few seconds; skipped with -short")
	}
	exps := goldenExperiments(t)
	var buf bytes.Buffer
	results, err := bench.Run(context.Background(), &buf, exps, bench.RunnerConfig{Parallel: 4, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var totalOps uint64
	for i := range results {
		if results[i].Failed() {
			t.Fatalf("%s failed: %s", results[i].ID, results[i].Err)
		}
		totalOps += results[i].SimOps
	}
	// Per-experiment SimOps is exact under any -parallel setting (each
	// run counts through its own context-attached counter).
	if totalOps == 0 {
		t.Error("sweep retired zero simulated ops")
	}
	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != goldenSHA256 {
		t.Errorf("golden output hash = %s; want %s\n"+
			"If the model changed intentionally, update goldenSHA256 (see comment).", got, goldenSHA256)
	}
}

// TestGoldenOutputThroughServer extends the guard across the prestored
// daemon: an experiment's output served over HTTP — both the uncached
// run and the cache hit that follows it — must be byte-identical to
// RunOne in process. If the service layer ever reformats, truncates or
// re-times output, this catches it.
func TestGoldenOutputThroughServer(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment; skipped with -short")
	}
	e, ok := bench.Lookup("listing3")
	if !ok {
		t.Fatal("experiment listing3 not registered")
	}
	var want bytes.Buffer
	if err := bench.RunOne(context.Background(), &want, e, true); err != nil {
		t.Fatal(err)
	}

	s := server.New(server.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	}()

	submit := func() server.JobStatus {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/experiments", "application/json",
			bytes.NewReader([]byte(`{"id":"listing3","quick":true}`)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st server.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	poll := func(id string) server.JobStatus {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st server.JobStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			switch st.State {
			case "done", "failed", "cancelled":
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %s", id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	first := submit()
	if first.Cached {
		t.Fatalf("fresh daemon served from cache: %+v", first)
	}
	st := poll(first.ID)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("uncached run: %+v", st)
	}
	if st.Result.Output != want.String() {
		t.Fatalf("uncached server output differs from RunOne:\n got: %q\nwant: %q",
			st.Result.Output, want.String())
	}

	second := submit()
	if !second.Cached || second.Result == nil {
		t.Fatalf("identical resubmit not served from cache: %+v", second)
	}
	if second.Result.Output != want.String() {
		t.Fatalf("cached server output differs from RunOne:\n got: %q\nwant: %q",
			second.Result.Output, want.String())
	}
}
