package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// goldenIDs is a cross-section of the registry covering every subsystem
// the experiments exercise: directory/drain ablations, both device
// extensions, the headline figures, the listing microbenchmarks, and
// the multi-core table.
var goldenIDs = []string{
	"ablate-dir", "ablate-drain", "ext-cxlssd", "ext-seqlog",
	"fig3", "fig5", "listing3", "skipvsclean", "table1", "x9",
}

// goldenSHA256 is the SHA-256 of the concatenated -quick output of
// goldenIDs, in that order. The simulator is deterministic by design —
// fixed seeds, no timing dependence — so this hash must be stable
// across runs, across -parallel settings, and across performance
// refactors. If an intentional model change shifts the numbers, rerun
//
//	go run ./cmd/prestore-bench -quick -run \
//	  ablate-dir,ablate-drain,ext-cxlssd,ext-seqlog,fig3,fig5,listing3,skipvsclean,table1,x9 \
//	  | sha256sum
//
// and update the constant in the same commit that explains the change.
const goldenSHA256 = "001281f3bccc41f60a5ad26f76bf982231f2806b799de97970a160407ddb3424"

// TestGoldenOutput locks the experiment output down to the byte. It is
// the regression oracle that lets hot-path rewrites proceed safely:
// any accidental change to timing, accounting, or formatting shows up
// as a hash mismatch here before it silently corrupts paper figures.
func TestGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("golden cross-section takes a few seconds; skipped with -short")
	}
	exps := make([]Experiment, 0, len(goldenIDs))
	for _, id := range goldenIDs {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	var buf bytes.Buffer
	results := Run(&buf, exps, RunnerConfig{Parallel: 4, Quick: true})
	var totalOps uint64
	for i := range results {
		if results[i].Failed() {
			t.Fatalf("%s failed: %s", results[i].ID, results[i].Err)
		}
		totalOps += results[i].SimOps
	}
	// Per-experiment SimOps is approximate under parallel runs (ops land
	// in a shared process-wide counter), but the sweep total must move.
	if totalOps == 0 {
		t.Error("sweep retired zero simulated ops")
	}
	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != goldenSHA256 {
		t.Errorf("golden output hash = %s; want %s\n"+
			"If the model changed intentionally, update goldenSHA256 (see comment).", got, goldenSHA256)
	}
}
