package bench

import (
	"context"
	"fmt"
	"io"

	"prestores/internal/cache"
	"prestores/internal/memdev"
	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/micro"
)

func init() {
	register(Experiment{
		ID:    "ablate-drain",
		Title: "Ablation: store-buffer drain mode (Problem #2's cause)",
		Paper: "DESIGN.md #1: with an eager (x86-style) drain, demote pre-stores should stop helping on Machine B",
		Run:   runAblateDrain,
	})
	register(Experiment{
		ID:    "ablate-llc",
		Title: "Ablation: LLC replacement policy (Problem #1's cause)",
		Paper: "DESIGN.md #2: strict LRU should lower the baseline's write amplification vs QLRU/random",
		Run:   runAblateLLC,
	})
	register(Experiment{
		ID:    "ablate-dir",
		Title: "Ablation: directory location (on-device vs on-die)",
		Paper: "DESIGN.md #4: an on-die directory removes the state-change round trip from both columns; the residual demote win is the overlapped data read",
		Run:   runAblateDir,
	})
	register(Experiment{
		ID:    "ablate-pmembuf",
		Title: "Ablation: PMEM internal write-buffer capacity",
		Paper: "DESIGN.md #3: a smaller coalescing window raises baseline amplification; cleaning stays at 1.0",
		Run:   runAblatePMEMBuf,
	})
}

func runAblateDrain(ctx context.Context, w io.Writer, quick bool) {
	iters := 20000
	if quick {
		iters = 5000
	}
	header(w, "drain", "reads", "base cyc", "demote cyc", "improvement")
	for _, drain := range []sim.DrainMode{sim.DrainLazy, sim.DrainEager} {
		for _, n := range []int{20, 80} {
			if cancelled(ctx) {
				return
			}
			mk := func() *sim.Machine {
				cfg := sim.ConfigB(sim.MachineBConfig{FPGALatency: 60, FPGABandwidth: 10e9})
				cfg.Drain = drain
				return sim.NewMachine(cfg).AttachOps(ctx)
			}
			l2 := micro.Listing2Config{Elements: 100000, Reads: n, Iters: iters, Seed: 7}
			l2.Mode = micro.Baseline
			base := micro.RunListing2(mk(), l2)
			l2.Mode = micro.DemotePrestore
			dem := micro.RunListing2(mk(), l2)
			row(w, drain.String(), fmt.Sprint(n),
				fmt.Sprintf("%.0f", base.CyclesPerIter),
				fmt.Sprintf("%.0f", dem.CyclesPerIter),
				pct(base.CyclesPerIter/dem.CyclesPerIter))
		}
	}
}

func runAblateLLC(ctx context.Context, w io.Writer, quick bool) {
	esz := uint64(1024)
	vol := fig3Volume(quick)
	header(w, "llc policy", "base amp", "clean amp", "speedup")
	for _, pol := range []cache.Policy{cache.QLRU, cache.PLRU, cache.LRU, cache.Random, cache.SRRIP} {
		if cancelled(ctx) {
			return
		}
		mk := func() *sim.Machine {
			cfg := sim.ConfigA()
			cfg.LLC.Policy = pol
			return sim.NewMachine(cfg).AttachOps(ctx)
		}
		l1 := micro.Listing1Config{
			ElemSize: esz, Elements: int(32 * units.MiB / esz),
			Threads: 2, Iters: int(vol / esz / 2), ReRead: true, Seed: 42,
		}
		l1.Mode = micro.Baseline
		base := micro.RunListing1(mk(), l1)
		l1.Mode = micro.CleanPrestore
		clean := micro.RunListing1(mk(), l1)
		row(w, pol.String(), f2(base.WriteAmp), f2(clean.WriteAmp),
			fmt.Sprintf("%.2fx", float64(base.Elapsed)/float64(clean.Elapsed)))
	}
}

func runAblateDir(ctx context.Context, w io.Writer, quick bool) {
	iters := 20000
	if quick {
		iters = 5000
	}
	header(w, "directory", "base cyc", "demote cyc", "improvement")
	for _, onDevice := range []bool{true, false} {
		if cancelled(ctx) {
			return
		}
		mk := func() *sim.Machine {
			cfg := sim.ConfigB(sim.MachineBConfig{FPGALatency: 200, FPGABandwidth: 1.5e9})
			cfg.DirOnDevice = onDevice
			return sim.NewMachine(cfg).AttachOps(ctx)
		}
		l2 := micro.Listing2Config{Elements: 100000, Reads: 80, Iters: iters, Seed: 7}
		l2.Mode = micro.Baseline
		base := micro.RunListing2(mk(), l2)
		l2.Mode = micro.DemotePrestore
		dem := micro.RunListing2(mk(), l2)
		loc := "on-device"
		if !onDevice {
			loc = "on-die"
		}
		row(w, loc,
			fmt.Sprintf("%.0f", base.CyclesPerIter),
			fmt.Sprintf("%.0f", dem.CyclesPerIter),
			pct(base.CyclesPerIter/dem.CyclesPerIter))
	}
}

func runAblatePMEMBuf(ctx context.Context, w io.Writer, quick bool) {
	esz := uint64(1024)
	vol := fig3Volume(quick)
	header(w, "buf entries", "base amp", "clean amp")
	for _, entries := range []int{8, 32, 128} {
		if cancelled(ctx) {
			return
		}
		mk := func() *sim.Machine {
			cfg := sim.ConfigA()
			for i := range cfg.Windows {
				if cfg.Windows[i].Name == sim.WindowPMEM {
					cfg.Windows[i].Device = newPMEMWithBuffer(entries)
				}
			}
			return sim.NewMachine(cfg).AttachOps(ctx)
		}
		l1 := micro.Listing1Config{
			ElemSize: esz, Elements: int(32 * units.MiB / esz),
			Threads: 2, Iters: int(vol / esz / 2), ReRead: true, Seed: 42,
		}
		l1.Mode = micro.Baseline
		base := micro.RunListing1(mk(), l1)
		l1.Mode = micro.CleanPrestore
		clean := micro.RunListing1(mk(), l1)
		row(w, fmt.Sprint(entries), f2(base.WriteAmp), f2(clean.WriteAmp))
	}
}

// newPMEMWithBuffer builds Machine A's Optane device with an explicit
// internal buffer capacity.
func newPMEMWithBuffer(entries int) memdev.Device {
	return memdev.NewPMEM(memdev.Config{
		Name:          "optane",
		Clock:         2100 * units.MHz,
		BufferEntries: entries,
	})
}
