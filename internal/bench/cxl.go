package bench

import (
	"context"
	"fmt"
	"io"

	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/micro"
)

func init() {
	register(Experiment{
		ID:    "ext-cxlssd",
		Title: "Extension: Listing 1 on Machine C (x86 + CXL SSD, 512B pages)",
		Paper: "Beyond the paper's testbeds: Table 1 lists CXL SSDs at 256-512B; with 512B pages the worst-case amplification doubles to 8x and cleaning still removes it",
		Run:   runCXLSSD,
	})
}

func runCXLSSD(ctx context.Context, w io.Writer, quick bool) {
	sizes := []uint64{512, 2048, 8192}
	vol := uint64(24 * units.MiB)
	if quick {
		sizes = []uint64{2048}
		vol = 8 * units.MiB
	}
	header(w, "elem", "base amp", "clean amp", "speedup")
	for _, esz := range sizes {
		if cancelled(ctx) {
			return
		}
		cfg := micro.Listing1Config{
			ElemSize: esz, Elements: int(32 * units.MiB / esz),
			Threads: 2, Iters: int(vol / esz / 2),
			ReRead: true, Window: sim.WindowCXL, Seed: 42,
		}
		cfg.Mode = micro.Baseline
		base := micro.RunListing1(sim.MachineC(), cfg)
		cfg.Mode = micro.CleanPrestore
		clean := micro.RunListing1(sim.MachineC(), cfg)
		row(w, units.Bytes(esz), f2(base.WriteAmp), f2(clean.WriteAmp),
			fmt.Sprintf("%.2fx", float64(base.Elapsed)/float64(clean.Elapsed)))
	}
}
