package bench

import (
	"context"
	"fmt"
	"io"

	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/micro"
)

func init() {
	register(Experiment{
		ID:    "ext-prefetch",
		Title: "Extension: hardware prefetching is orthogonal to pre-storing",
		Paper: "Intro/§8: pre-fetching moves data up; it cannot fix the write-back ordering of Problem #1 — only pre-stores do",
		Run:   runPrefetchOrthogonal,
	})
	// ext-seqlog is registered as a declarative scenario spec in spec.go.
}

// runPrefetchOrthogonal runs Listing 1 with and without a next-line
// prefetcher, crossed with the clean pre-store.
func runPrefetchOrthogonal(ctx context.Context, w io.Writer, quick bool) {
	esz := uint64(1024)
	vol := fig3Volume(quick)
	header(w, "prefetch", "mode", "cyc/op", "write amp")
	for _, depth := range []int{0, 2} {
		for _, mode := range []micro.Mode{micro.Baseline, micro.CleanPrestore} {
			if cancelled(ctx) {
				return
			}
			cfg := sim.ConfigA()
			cfg.PrefetchDepth = depth
			m := sim.NewMachine(cfg).AttachOps(ctx)
			res := micro.RunListing1(m, micro.Listing1Config{
				ElemSize: esz, Elements: int(32 * units.MiB / esz),
				Threads: 2, Iters: int(vol / esz / 2),
				Mode: mode, ReRead: true, Seed: 42,
			})
			pf := "off"
			if depth > 0 {
				pf = fmt.Sprintf("next-%d", depth)
			}
			row(w, pf, mode.String(),
				fmt.Sprintf("%.0f", res.ElapsedPerOp), f2(res.WriteAmp))
		}
	}
	fmt.Fprintln(w, "(prefetching cannot lower the baseline's amplification; cleaning can)")
}
