package bench

import (
	"context"
	"fmt"
	"io"

	"prestores/internal/core"
	"prestores/internal/dirtbuster"
	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/clht"
	"prestores/internal/workloads/kv"
	"prestores/internal/workloads/masstree"
	"prestores/internal/workloads/micro"
	"prestores/internal/workloads/nas"
	"prestores/internal/workloads/phoronix"
	"prestores/internal/workloads/tensor"
	"prestores/internal/workloads/x9"
	"prestores/internal/workloads/ycsb"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "DirtBuster classification of the evaluated applications",
		Paper: "Table 2: write-intensive?, sequential writes?, writes before fence? per application",
		Run:   runTable2,
	})
}

// Table2Workloads returns the DirtBuster-analyzable application set in
// the paper's Table 2 order (the NAS kernels plus TensorFlow, X9 and
// the key-value stores; the non-write-intensive Phoronix entries are
// represented by the read/compute-bound NAS kernels).
func Table2Workloads(quick bool) []dirtbuster.Workload {
	scale := func(k nas.Kernel) int {
		if quick {
			return quickScale(k)
		}
		return 0
	}
	var out []dirtbuster.Workload
	// The Phoronix rows the paper screens out in step 1 (Table 2's
	// upper half): not write-intensive, never instrumented further.
	phx := []struct {
		name string
		run  func(m *sim.Machine)
	}{
		{"pytorch(numpy-proxy)", func(m *sim.Machine) { phoronix.Numpy(m, 1<<15, 1) }},
		{"numpy", func(m *sim.Machine) { phoronix.Numpy(m, 1<<15, 2) }},
		{"lzma", func(m *sim.Machine) { phoronix.Gzip(m, 1<<17, 3) }},
		{"c-ray", func(m *sim.Machine) { phoronix.CRay(m, 1<<11, 4) }},
		{"build-kernel", func(m *sim.Machine) { phoronix.BuildKernel(m, 12, 5) }},
		{"gzip", func(m *sim.Machine) { phoronix.Gzip(m, 1<<16, 6) }},
		{"rust-prime", func(m *sim.Machine) { phoronix.RustPrime(m, 8000, 7) }},
	}
	for _, w := range phx {
		out = append(out, dirtbuster.Workload{Name: w.name, NewMachine: sim.MachineA, Run: w.run})
	}
	out = append(out, dirtbuster.Workload{
		Name:       "tensorflow",
		NewMachine: sim.MachineA,
		Run: func(m *sim.Machine) {
			cfg := trainCfg(8, tensor.Baseline, quick)
			cfg.Steps = 1
			tensor.Train(m, cfg)
		},
	})
	out = append(out, dirtbuster.Workload{
		Name:       "x9",
		NewMachine: sim.MachineBFast,
		Run: func(m *sim.Machine) {
			x9.Run(m, x9.Config{Iters: 2000, MsgSize: 512, Seed: 3})
		},
	})
	for _, which := range []string{"clht", "masstree"} {
		which := which
		out = append(out, dirtbuster.Workload{
			Name:       which,
			NewMachine: sim.MachineA,
			Run: func(m *sim.Machine) {
				var store kv.Store
				if which == "clht" {
					store = clht.New(m, clht.Config{Buckets: 1 << 16, Overflow: 16 * units.MiB})
				} else {
					store = masstree.New(m, masstree.Config{})
				}
				heap := kv.NewValueHeap(m, sim.WindowPMEM, units.GiB)
				cfg := ycsb.Config{Records: 50_000, Ops: 1000, Threads: 4,
					ValueSize: 1024, Workload: ycsb.A, Seed: 5}
				ycsb.Load(m, store, heap, cfg)
				ycsb.Run(m, store, heap, cfg)
			},
		})
	}
	for _, k := range nas.Kernels {
		k := k
		out = append(out, dirtbuster.Workload{
			Name:       "nas-" + string(k),
			NewMachine: sim.MachineA,
			Run: func(m *sim.Machine) {
				nas.Run(m, nas.Config{Kernel: k, Iters: 1, Seed: 3, Scale: scale(k)})
			},
		})
	}
	out = append(out, dirtbuster.Workload{
		Name:       "listing1",
		NewMachine: sim.MachineA,
		Run: func(m *sim.Machine) {
			micro.RunListing1(m, micro.Listing1Config{
				ElemSize: 1024, Elements: 8192, Threads: 2, Iters: 3000,
				ReRead: true, Seed: 5,
			})
		},
	})
	return out
}

func runTable2(ctx context.Context, w io.Writer, quick bool) {
	header(w, "application", "write-int", "sequential", "before-fence", "choice")
	for _, wl := range Table2Workloads(quick) {
		if cancelled(ctx) {
			return
		}
		// Attach this run's machines to the surrounding ops counter;
		// Table2Workloads keeps its context-free signature for the CLI
		// consumers.
		mk := wl.NewMachine
		wl.NewMachine = func() *sim.Machine { return mk().AttachOps(ctx) }
		rep := dirtbuster.Analyze(wl, dirtbuster.Config{})
		seq, fence := "", ""
		choice := core.NoPrestore
		if rep.WriteIntensive {
			for _, f := range rep.Functions {
				if f.Choice == core.NoPrestore {
					continue
				}
				if f.SeqWriteShare >= rep.Config.MinSeqShare {
					seq = "yes"
				}
				if f.HasFences && f.WritesBeforeFence >= rep.Config.MinFenceShare {
					fence = "yes"
				}
				if choice == core.NoPrestore {
					choice = f.Choice // top-ranked function's advice
				}
			}
		}
		wi := "no"
		if rep.WriteIntensive {
			wi = "yes"
		}
		row(w, wl.Name, wi, orDash(seq), orDash(fence), choice.String())
	}
	fmt.Fprintln(w, "(choice = recommendation for the top write-intensive function)")
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
