package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"prestores/internal/sim"
)

// Result records one experiment execution under the runner: what ran,
// how long it took on the wall clock, everything it printed, and the
// failure (panic or timeout) if it did not complete. Results are what
// the -json emitter serializes, so benchmark trajectories can be diffed
// across revisions.
type Result struct {
	ID       string        `json:"id"`
	Title    string        `json:"title"`
	WallTime time.Duration `json:"wall_time_ns"`
	// SimOps is the number of simulated operations the process retired
	// while this experiment ran, and SimOpsPerSec divides it by the
	// wall time: the simulator's host-side throughput. With Parallel > 1
	// concurrent experiments retire ops into the same process-wide
	// counter, so per-experiment figures are exact only at -parallel 1;
	// the sweep-wide aggregate is always meaningful.
	SimOps       uint64  `json:"sim_ops"`
	SimOpsPerSec float64 `json:"sim_ops_per_sec"`
	Output       string  `json:"output"`
	Err          string  `json:"err,omitempty"`
}

// Failed reports whether the experiment did not complete normally.
func (r *Result) Failed() bool { return r.Err != "" }

// RunnerConfig tunes the experiment runner.
type RunnerConfig struct {
	// Parallel is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	// Experiments are independent — each constructs its own private
	// sim.Machine — so they scale across cores. 1 reproduces the serial
	// runner exactly.
	Parallel int
	// Quick shrinks sweeps for smoke tests.
	Quick bool
	// Timeout bounds each experiment's wall-clock time; 0 disables.
	// Experiments are not cancellable mid-run, so a timed-out experiment
	// is reported failed and its goroutine abandoned (it keeps a worker's
	// CPU busy but never blocks the sweep from finishing).
	Timeout time.Duration
}

// Run executes exps on a worker pool and returns one Result per
// experiment, in input order. Each experiment writes into a private
// buffer; buffers are flushed to w in input order as soon as their turn
// completes, so the streamed output is byte-identical to running the
// same experiments serially with RunOne — regardless of Parallel.
//
// A panicking experiment is contained: it yields a Result with Err set
// (and an error line on w) instead of killing the sweep.
func Run(w io.Writer, exps []Experiment, cfg RunnerConfig) []Result {
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]Result, len(exps))
	jobs := make(chan int)
	completed := make(chan int, len(exps))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx] = runGuarded(exps[idx], cfg.Quick, cfg.Timeout)
				completed <- idx
			}
		}()
	}
	go func() {
		for i := range exps {
			jobs <- i
		}
		close(jobs)
	}()

	// Flush in deterministic input order: a finished experiment waits
	// until every earlier one has been flushed.
	done := make([]bool, len(exps))
	next := 0
	for range exps {
		i := <-completed
		done[i] = true
		for next < len(exps) && done[next] {
			flushResult(w, &results[next])
			next++
		}
	}
	wg.Wait()
	return results
}

// flushResult writes one experiment's captured output, appending an
// error trailer for failed runs.
func flushResult(w io.Writer, r *Result) {
	io.WriteString(w, r.Output)
	if r.Failed() {
		fmt.Fprintf(w, "!!! %s failed: %s\n", r.ID, r.Err)
	}
}

// syncBuffer is a mutex-guarded output buffer. A timed-out experiment's
// abandoned goroutine may still be writing when the runner snapshots the
// partial output, so both sides must lock.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// runGuarded executes one experiment with panic recovery and an
// optional wall-clock timeout, capturing its output.
func runGuarded(e Experiment, quick bool, timeout time.Duration) Result {
	buf := &syncBuffer{}
	start := time.Now()
	opsBefore := sim.RetiredOps()
	errc := make(chan string, 1) // buffered: an abandoned run must not block
	go func() {
		var errText string
		defer func() {
			if r := recover(); r != nil {
				errText = fmt.Sprintf("panic: %v", r)
			}
			errc <- errText
		}()
		RunOne(buf, e, quick)
	}()

	res := Result{ID: e.ID, Title: e.Title}
	if timeout <= 0 {
		res.Err = <-errc
	} else {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case res.Err = <-errc:
		case <-timer.C:
			res.Err = fmt.Sprintf("timeout after %s (run abandoned)", timeout)
		}
	}
	res.WallTime = time.Since(start)
	res.SimOps = sim.RetiredOps() - opsBefore
	if s := res.WallTime.Seconds(); s > 0 {
		res.SimOpsPerSec = float64(res.SimOps) / s
	}
	res.Output = buf.String()
	return res
}

// WriteJSON writes results as an indented JSON array — one well-formed
// record per experiment — suitable for BENCH_*.json trajectory files.
func WriteJSON(w io.Writer, results []Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
