package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"prestores/internal/sim"
)

// Result records one experiment execution under the runner: what ran,
// how long it took on the wall clock, everything it printed, and the
// failure (panic, timeout or cancellation) if it did not complete.
// Results are what the -json emitter and the prestored daemon
// serialize, so benchmark trajectories can be diffed across revisions.
type Result struct {
	ID       string        `json:"id"`
	Title    string        `json:"title"`
	WallTime time.Duration `json:"wall_time_ns"`
	// SimOps is the number of simulated operations this experiment's own
	// machines retired, and SimOpsPerSec divides it by the wall time:
	// the simulator's host-side throughput. Each run carries a private
	// sim.OpsCounter on its context and every machine an experiment
	// constructs attaches to it, so per-experiment figures are exact
	// under any -parallel setting — concurrent experiments never inflate
	// each other's counts.
	SimOps       uint64  `json:"sim_ops"`
	SimOpsPerSec float64 `json:"sim_ops_per_sec"`
	Output       string  `json:"output"`
	Err          string  `json:"err,omitempty"`
}

// Failed reports whether the experiment did not complete normally.
func (r *Result) Failed() bool { return r.Err != "" }

// RunnerConfig tunes the experiment runner.
type RunnerConfig struct {
	// Parallel is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	// Experiments are independent — each constructs its own private
	// sim.Machine — so they scale across cores. 1 reproduces the serial
	// runner exactly.
	Parallel int
	// Quick shrinks sweeps for smoke tests.
	Quick bool
	// Timeout bounds each experiment's wall-clock time; 0 disables. The
	// deadline cancels the experiment's context; experiments observe it
	// at sweep-iteration boundaries, return, and free their worker for
	// the next experiment. An experiment that ignores its context keeps
	// its worker until it finishes on its own.
	Timeout time.Duration
}

// Run executes exps on a worker pool and returns one Result per
// experiment, in input order. Each experiment writes into a private
// buffer; buffers are flushed to w in input order as soon as their turn
// completes, so the streamed output is byte-identical to running the
// same experiments serially with RunOne — regardless of Parallel.
//
// A panicking experiment is contained: it yields a Result with Err set
// (and an error line on w) instead of killing the sweep. Cancelling ctx
// stops in-flight experiments at their next sweep-iteration boundary
// and fails the not-yet-flushed ones with a cancellation error.
//
// The returned error is the first write error w reported, if any (the
// sink hung up — remaining experiments are cancelled rather than
// simulated for nobody), else ctx's error if it was cancelled, else
// nil. Even on error the returned slice always has len(exps) entries.
func Run(ctx context.Context, w io.Writer, exps []Experiment, cfg RunnerConfig) ([]Result, error) {
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(exps))
	jobs := make(chan int)
	completed := make(chan int, len(exps))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx] = runGuarded(runCtx, exps[idx], cfg.Quick, cfg.Timeout)
				completed <- idx
			}
		}()
	}
	go func() {
		for i := range exps {
			jobs <- i
		}
		close(jobs)
	}()

	// Flush in deterministic input order: a finished experiment waits
	// until every earlier one has been flushed.
	var writeErr error
	done := make([]bool, len(exps))
	next := 0
	for range exps {
		i := <-completed
		done[i] = true
		for next < len(exps) && done[next] {
			if writeErr == nil {
				if err := flushResult(w, &results[next]); err != nil {
					// The sink hung up mid-stream: stop the remaining
					// experiments instead of simulating for nobody.
					writeErr = err
					cancel()
				}
			}
			next++
		}
	}
	wg.Wait()
	if writeErr != nil {
		return results, writeErr
	}
	return results, ctx.Err()
}

// flushResult writes one experiment's captured output, appending an
// error trailer for failed runs, and reports the first write error.
func flushResult(w io.Writer, r *Result) error {
	if _, err := io.WriteString(w, r.Output); err != nil {
		return err
	}
	if r.Failed() {
		if _, err := fmt.Fprintf(w, "!!! %s failed: %s\n", r.ID, r.Err); err != nil {
			return err
		}
	}
	return nil
}

// runGuarded executes one experiment with panic recovery and an
// optional wall-clock deadline, capturing its output. It runs the
// experiment on the calling goroutine: cancellation is cooperative
// (the experiment returns at its next sweep-iteration boundary), so
// a timed-out run frees its worker instead of being abandoned to burn
// CPU — and to pollute the process-wide SimOps counter — in the
// background.
func runGuarded(ctx context.Context, e Experiment, quick bool, timeout time.Duration) Result {
	r, _ := RunOneGuarded(ctx, nil, e, RunnerConfig{Quick: quick, Timeout: timeout})
	return r
}

// RunOneGuarded executes a single experiment with the runner's full
// harness — panic containment, cooperative timeout/cancellation
// labeling, SimOps accounting — while streaming output to sink as it
// is produced (Run buffers output for deterministic sweep
// interleaving; a single guarded run has nothing to interleave with).
// sink may be nil. The returned Result always captures the complete
// output; the returned error is the first write error sink reported,
// if any. cfg.Parallel is ignored.
func RunOneGuarded(ctx context.Context, sink io.Writer, e Experiment, cfg RunnerConfig) (Result, error) {
	rctx := ctx
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	var ops sim.OpsCounter
	rctx = sim.WithOpsSink(rctx, &ops)
	t := &teeWriter{sink: sink}
	start := time.Now()
	errText := runRecovered(rctx, t, e, cfg.Quick)

	res := Result{ID: e.ID, Title: e.Title, Err: errText}
	res.WallTime = time.Since(start)
	res.SimOps = ops.Total()
	if s := res.WallTime.Seconds(); s > 0 {
		res.SimOpsPerSec = float64(res.SimOps) / s
	}
	res.Output = t.buf.String()
	if res.Err == "" {
		switch err := rctx.Err(); {
		case err == nil:
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			res.Err = fmt.Sprintf("timeout after %s", cfg.Timeout)
		default:
			res.Err = fmt.Sprintf("cancelled: %v", err)
		}
	}
	return res, t.err
}

// teeWriter captures all output in buf and forwards it to sink
// best-effort, latching sink's first error without disturbing the
// capture (the Result must stay complete even when the sink dies).
type teeWriter struct {
	buf  bytes.Buffer
	sink io.Writer
	err  error
}

func (t *teeWriter) Write(p []byte) (int, error) {
	t.buf.Write(p)
	if t.sink != nil && t.err == nil {
		if _, err := t.sink.Write(p); err != nil {
			t.err = err
		}
	}
	return len(p), nil
}

// runRecovered executes RunOne with panic containment, returning the
// failure text ("" for a clean run).
func runRecovered(ctx context.Context, w io.Writer, e Experiment, quick bool) (errText string) {
	defer func() {
		if r := recover(); r != nil {
			errText = fmt.Sprintf("panic: %v", r)
		}
	}()
	if err := RunOne(ctx, w, e, quick); err != nil {
		return err.Error()
	}
	return ""
}

// WriteJSON writes results as an indented JSON array — one well-formed
// record per experiment — suitable for BENCH_*.json trajectory files.
func WriteJSON(w io.Writer, results []Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
