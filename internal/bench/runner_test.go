package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// synth builds a synthetic experiment that sleeps, then prints a
// deterministic body — enough to exercise ordering without the cost of
// a real simulation.
func synth(id string, sleep time.Duration, body string) Experiment {
	return Experiment{
		ID:    id,
		Title: "synthetic " + id,
		Paper: "n/a",
		Run: func(w io.Writer, quick bool) {
			time.Sleep(sleep)
			fmt.Fprintf(w, "%s quick=%v\n", body, quick)
		},
	}
}

// serialOutput is the reference rendering: a plain RunOne loop.
func serialOutput(exps []Experiment, quick bool) string {
	var sb strings.Builder
	for _, e := range exps {
		RunOne(&sb, e, quick)
	}
	return sb.String()
}

func TestRunParallelOutputMatchesSerial(t *testing.T) {
	// Later experiments finish first (descending sleeps), forcing the
	// runner to hold completed buffers until their turn.
	var exps []Experiment
	for i := 0; i < 16; i++ {
		sleep := time.Duration(16-i) * time.Millisecond
		exps = append(exps, synth(fmt.Sprintf("s%02d", i), sleep, fmt.Sprintf("body-%d", i)))
	}
	want := serialOutput(exps, true)
	for _, workers := range []int{1, 2, 8, 32} {
		var sb strings.Builder
		results := Run(&sb, exps, RunnerConfig{Parallel: workers, Quick: true})
		if got := sb.String(); got != want {
			t.Fatalf("parallel=%d output differs from serial:\n got: %q\nwant: %q", workers, got, want)
		}
		if len(results) != len(exps) {
			t.Fatalf("parallel=%d: %d results, want %d", workers, len(results), len(exps))
		}
		for i, r := range results {
			if r.ID != exps[i].ID {
				t.Fatalf("result %d has ID %q, want %q", i, r.ID, exps[i].ID)
			}
			if r.Failed() {
				t.Fatalf("%s unexpectedly failed: %s", r.ID, r.Err)
			}
			if !strings.Contains(r.Output, exps[i].Title) {
				t.Fatalf("%s output missing header: %q", r.ID, r.Output)
			}
		}
	}
}

func TestRunDefaultsAndEmpty(t *testing.T) {
	var sb strings.Builder
	if results := Run(&sb, nil, RunnerConfig{}); len(results) != 0 {
		t.Fatalf("empty run returned %d results", len(results))
	}
	// Parallel <= 0 falls back to GOMAXPROCS and still works.
	results := Run(&sb, []Experiment{synth("one", 0, "x")}, RunnerConfig{Parallel: -3})
	if len(results) != 1 || results[0].Failed() {
		t.Fatalf("default-parallel run broken: %+v", results)
	}
}

func TestRunContainsPanics(t *testing.T) {
	exps := []Experiment{
		synth("a", 0, "ok-a"),
		{ID: "boom", Title: "panicking experiment", Paper: "n/a",
			Run: func(w io.Writer, _ bool) {
				fmt.Fprintln(w, "partial output")
				panic("kaboom")
			}},
		synth("z", 0, "ok-z"),
	}
	var sb strings.Builder
	results := Run(&sb, exps, RunnerConfig{Parallel: 2, Quick: true})
	if results[0].Failed() || results[2].Failed() {
		t.Fatalf("healthy experiments failed: %+v", results)
	}
	r := results[1]
	if !r.Failed() || !strings.Contains(r.Err, "panic: kaboom") {
		t.Fatalf("panic not captured: %+v", r)
	}
	if !strings.Contains(r.Output, "partial output") {
		t.Fatalf("output before the panic lost: %q", r.Output)
	}
	out := sb.String()
	if !strings.Contains(out, "!!! boom failed: panic: kaboom") {
		t.Fatalf("error trailer missing from stream:\n%s", out)
	}
	if !strings.Contains(out, "ok-a") || !strings.Contains(out, "ok-z") {
		t.Fatalf("panic killed the sweep:\n%s", out)
	}
}

func TestRunTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	exps := []Experiment{
		{ID: "stuck", Title: "never finishes", Paper: "n/a",
			Run: func(w io.Writer, _ bool) {
				fmt.Fprintln(w, "started")
				<-block
			}},
		synth("after", 0, "still-runs"),
	}
	var sb strings.Builder
	start := time.Now()
	results := Run(&sb, exps, RunnerConfig{Parallel: 2, Quick: true, Timeout: 30 * time.Millisecond})
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timed-out experiment blocked the runner for %s", el)
	}
	r := results[0]
	if !r.Failed() || !strings.Contains(r.Err, "timeout after") {
		t.Fatalf("timeout not reported: %+v", r)
	}
	if r.WallTime < 30*time.Millisecond {
		t.Fatalf("timeout wall time %s below the limit", r.WallTime)
	}
	if !strings.Contains(r.Output, "started") {
		t.Fatalf("partial output of timed-out run lost: %q", r.Output)
	}
	if results[1].Failed() {
		t.Fatalf("experiment after the timeout failed: %+v", results[1])
	}
	if !strings.Contains(sb.String(), "!!! stuck failed: timeout") {
		t.Fatalf("stream missing timeout trailer:\n%s", sb.String())
	}
}

func TestRunAllEqualsRegistryOrder(t *testing.T) {
	// RunAll must keep its historical contract: every registered
	// experiment, ID order. Compare against All() without executing the
	// (slow) experiments — the runner itself is covered above.
	all := All()
	if len(all) == 0 {
		t.Fatal("registry empty")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("All() not in ID order")
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	in := []Result{
		{ID: "fig3", Title: "t", WallTime: 1500 * time.Millisecond, Output: "rows\n"},
		{ID: "fig5", Title: "u", WallTime: time.Millisecond, Output: "", Err: "panic: x"},
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, in); err != nil {
		t.Fatal(err)
	}
	var out []Result
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("emitted JSON not well-formed: %v\n%s", err, sb.String())
	}
	if len(out) != len(in) {
		t.Fatalf("%d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d round-tripped to %+v, want %+v", i, out[i], in[i])
		}
	}
}
