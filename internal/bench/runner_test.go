package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// synth builds a synthetic experiment that sleeps, then prints a
// deterministic body — enough to exercise ordering without the cost of
// a real simulation.
func synth(id string, sleep time.Duration, body string) Experiment {
	return Experiment{
		ID:    id,
		Title: "synthetic " + id,
		Paper: "n/a",
		Run: func(_ context.Context, w io.Writer, quick bool) {
			time.Sleep(sleep)
			fmt.Fprintf(w, "%s quick=%v\n", body, quick)
		},
	}
}

// serialOutput is the reference rendering: a plain RunOne loop.
func serialOutput(exps []Experiment, quick bool) string {
	var sb strings.Builder
	for _, e := range exps {
		RunOne(context.Background(), &sb, e, quick)
	}
	return sb.String()
}

func TestRunParallelOutputMatchesSerial(t *testing.T) {
	// Later experiments finish first (descending sleeps), forcing the
	// runner to hold completed buffers until their turn.
	var exps []Experiment
	for i := 0; i < 16; i++ {
		sleep := time.Duration(16-i) * time.Millisecond
		exps = append(exps, synth(fmt.Sprintf("s%02d", i), sleep, fmt.Sprintf("body-%d", i)))
	}
	want := serialOutput(exps, true)
	for _, workers := range []int{1, 2, 8, 32} {
		var sb strings.Builder
		results, err := Run(context.Background(), &sb, exps, RunnerConfig{Parallel: workers, Quick: true})
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if got := sb.String(); got != want {
			t.Fatalf("parallel=%d output differs from serial:\n got: %q\nwant: %q", workers, got, want)
		}
		if len(results) != len(exps) {
			t.Fatalf("parallel=%d: %d results, want %d", workers, len(results), len(exps))
		}
		for i, r := range results {
			if r.ID != exps[i].ID {
				t.Fatalf("result %d has ID %q, want %q", i, r.ID, exps[i].ID)
			}
			if r.Failed() {
				t.Fatalf("%s unexpectedly failed: %s", r.ID, r.Err)
			}
			if !strings.Contains(r.Output, exps[i].Title) {
				t.Fatalf("%s output missing header: %q", r.ID, r.Output)
			}
		}
	}
}

func TestRunDefaultsAndEmpty(t *testing.T) {
	var sb strings.Builder
	if results, err := Run(context.Background(), &sb, nil, RunnerConfig{}); len(results) != 0 || err != nil {
		t.Fatalf("empty run returned %d results, err %v", len(results), err)
	}
	// Parallel <= 0 falls back to GOMAXPROCS and still works.
	results, err := Run(context.Background(), &sb, []Experiment{synth("one", 0, "x")}, RunnerConfig{Parallel: -3})
	if err != nil || len(results) != 1 || results[0].Failed() {
		t.Fatalf("default-parallel run broken: %+v, err %v", results, err)
	}
}

func TestRunContainsPanics(t *testing.T) {
	exps := []Experiment{
		synth("a", 0, "ok-a"),
		{ID: "boom", Title: "panicking experiment", Paper: "n/a",
			Run: func(_ context.Context, w io.Writer, _ bool) {
				fmt.Fprintln(w, "partial output")
				panic("kaboom")
			}},
		synth("z", 0, "ok-z"),
	}
	var sb strings.Builder
	results, err := Run(context.Background(), &sb, exps, RunnerConfig{Parallel: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Failed() || results[2].Failed() {
		t.Fatalf("healthy experiments failed: %+v", results)
	}
	r := results[1]
	if !r.Failed() || !strings.Contains(r.Err, "panic: kaboom") {
		t.Fatalf("panic not captured: %+v", r)
	}
	if !strings.Contains(r.Output, "partial output") {
		t.Fatalf("output before the panic lost: %q", r.Output)
	}
	out := sb.String()
	if !strings.Contains(out, "!!! boom failed: panic: kaboom") {
		t.Fatalf("error trailer missing from stream:\n%s", out)
	}
	if !strings.Contains(out, "ok-a") || !strings.Contains(out, "ok-z") {
		t.Fatalf("panic killed the sweep:\n%s", out)
	}
}

// TestRunTimeoutCooperative proves the timeout path is cooperative:
// the experiment observes its context, returns, and frees the worker —
// no goroutine keeps simulating in the background after the Result is
// reported (the old runner abandoned it).
func TestRunTimeoutCooperative(t *testing.T) {
	var returned atomic.Bool
	exps := []Experiment{
		{ID: "stuck", Title: "waits for cancellation", Paper: "n/a",
			Run: func(ctx context.Context, w io.Writer, _ bool) {
				defer returned.Store(true)
				fmt.Fprintln(w, "started")
				<-ctx.Done() // a sweep loop blocked at an iteration boundary
			}},
		synth("after", 0, "still-runs"),
	}
	var sb strings.Builder
	start := time.Now()
	results, err := Run(context.Background(), &sb, exps, RunnerConfig{Parallel: 1, Quick: true, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timed-out experiment blocked the runner for %s", el)
	}
	if !returned.Load() {
		t.Fatal("timed-out experiment still running after Run returned (worker leaked)")
	}
	r := results[0]
	if !r.Failed() || !strings.Contains(r.Err, "timeout after") {
		t.Fatalf("timeout not reported: %+v", r)
	}
	if r.WallTime < 30*time.Millisecond {
		t.Fatalf("timeout wall time %s below the limit", r.WallTime)
	}
	if !strings.Contains(r.Output, "started") {
		t.Fatalf("partial output of timed-out run lost: %q", r.Output)
	}
	// Parallel: 1 means "after" only ran once the timed-out experiment
	// freed the single worker.
	if results[1].Failed() {
		t.Fatalf("experiment after the timeout failed: %+v", results[1])
	}
	if !strings.Contains(sb.String(), "!!! stuck failed: timeout") {
		t.Fatalf("stream missing timeout trailer:\n%s", sb.String())
	}
}

// TestRunCancel checks that cancelling the sweep context fails
// in-flight experiments with a cancellation error and surfaces
// ctx.Err() from Run.
func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	exps := []Experiment{
		{ID: "victim", Title: "cancelled mid-run", Paper: "n/a",
			Run: func(ctx context.Context, w io.Writer, _ bool) {
				fmt.Fprintln(w, "row 1")
				cancel() // simulate a client disconnect mid-sweep
				<-ctx.Done()
			}},
		synth("next", 0, "never-or-cancelled"),
	}
	var sb strings.Builder
	results, err := Run(ctx, &sb, exps, RunnerConfig{Parallel: 1, Quick: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if !results[0].Failed() || !strings.Contains(results[0].Err, "cancelled") {
		t.Fatalf("cancelled experiment not reported: %+v", results[0])
	}
	if !strings.Contains(results[0].Output, "row 1") {
		t.Fatalf("partial output lost: %q", results[0].Output)
	}
	if !results[1].Failed() {
		t.Fatalf("experiment queued behind the cancellation ran to completion: %+v", results[1])
	}
}

// failAfterWriter fails every write after the first n bytes — a client
// that hangs up mid-stream.
type failAfterWriter struct {
	n       int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written >= w.n {
		return 0, errors.New("broken pipe")
	}
	w.written += len(p)
	return len(p), nil
}

// TestRunWriteErrorPropagates checks the flush path: a failing sink
// surfaces as Run's error and cancels the experiments that have not
// been flushed yet instead of simulating for nobody.
func TestRunWriteErrorPropagates(t *testing.T) {
	var lateRan atomic.Bool
	exps := []Experiment{
		synth("first", 0, "body-1"),
		{ID: "late", Title: "behind the broken pipe", Paper: "n/a",
			Run: func(ctx context.Context, w io.Writer, _ bool) {
				// Wait for the runner to notice the dead sink; sweep
				// loops observe this as ctx cancellation.
				select {
				case <-ctx.Done():
				case <-time.After(5 * time.Second):
					lateRan.Store(true)
				}
				fmt.Fprintln(w, "late body")
			}},
	}
	w := &failAfterWriter{n: 0} // the very first flush fails
	results, err := Run(context.Background(), w, exps, RunnerConfig{Parallel: 1, Quick: true})
	if err == nil || !strings.Contains(err.Error(), "broken pipe") {
		t.Fatalf("Run returned %v, want broken pipe", err)
	}
	if lateRan.Load() {
		t.Fatal("write error did not cancel the remaining experiments")
	}
	if !results[1].Failed() {
		t.Fatalf("experiment behind the dead sink reported success: %+v", results[1])
	}
}

func TestRunOneWriteError(t *testing.T) {
	err := RunOne(context.Background(), &failAfterWriter{}, synth("x", 0, "b"), true)
	if err == nil || !strings.Contains(err.Error(), "broken pipe") {
		t.Fatalf("RunOne returned %v, want broken pipe", err)
	}
}

func TestRunAllEqualsRegistryOrder(t *testing.T) {
	// RunAll must keep its historical contract: every registered
	// experiment, ID order. Compare against All() without executing the
	// (slow) experiments — the runner itself is covered above.
	all := All()
	if len(all) == 0 {
		t.Fatal("registry empty")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("All() not in ID order")
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	in := []Result{
		{ID: "fig3", Title: "t", WallTime: 1500 * time.Millisecond, Output: "rows\n"},
		{ID: "fig5", Title: "u", WallTime: time.Millisecond, Output: "", Err: "panic: x"},
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, in); err != nil {
		t.Fatal(err)
	}
	var out []Result
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("emitted JSON not well-formed: %v\n%s", err, sb.String())
	}
	if len(out) != len(in) {
		t.Fatalf("%d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d round-tripped to %+v, want %+v", i, out[i], in[i])
		}
	}
}
