package bench

import (
	"context"
	"fmt"
	"io"
	"sort"

	"prestores/internal/scenario"
)

// The straightforward named experiments are thin instantiations of
// declarative scenario specs: registerSpec validates each spec at init
// time and registers an Experiment whose Run is the scenario grid
// runner. The golden-output guard (golden_test.go) pins these to the
// byte-exact tables the hand-written loops produced; experiments with
// quirky rendering or cross-run logic (listing3, the ablations, the
// kv comparison tables) stay code.

var specs = map[string]scenario.Spec{}

func registerSpec(s scenario.Spec) {
	if err := s.Validate(); err != nil {
		panic("bench: spec " + s.Name + ": " + err.Error())
	}
	specs[s.Name] = s
	register(Experiment{
		ID:    s.Name,
		Title: s.Title,
		Paper: s.Paper,
		Run:   specRun(s),
	})
}

// specRun adapts a spec to the Experiment.Run signature. Spec
// execution errors panic into the runner's panic containment: a spec
// that validated at init only fails on machine/workload-level
// contradictions, which are programming errors here.
func specRun(s scenario.Spec) func(context.Context, io.Writer, bool) {
	return func(ctx context.Context, w io.Writer, quick bool) {
		if err := s.Exec(ctx, w, quick); err != nil {
			panic(fmt.Sprintf("bench: spec %s: %v", s.Name, err))
		}
	}
}

// RunSpec validates and runs an ad-hoc declarative scenario spec with
// the standard experiment header — the entry point for `prestore-bench
// -spec file.json` and the daemon's /v1/scenarios jobs. Output for a
// spec dumped from a named experiment is byte-identical to running
// that experiment through RunOne.
func RunSpec(ctx context.Context, w io.Writer, s scenario.Spec, quick bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	title := s.Title
	if title == "" {
		title = "custom scenario"
	}
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "\n=== %s: %s ===\n", name, title)
	if s.Paper != "" {
		fmt.Fprintf(ew, "paper: %s\n", s.Paper)
	}
	if ew.err == nil && !cancelled(ctx) {
		if err := s.Exec(ctx, ew, quick); err != nil && ew.err == nil {
			return err
		}
	}
	return ew.err
}

// SpecFor returns the declarative spec behind a named experiment, for
// -dump-spec and the daemon's registry endpoint. Experiments that are
// not spec-driven report false.
func SpecFor(id string) (scenario.Spec, bool) {
	s, ok := specs[id]
	return s, ok
}

// SpecIDs returns the IDs of all spec-driven experiments, sorted.
func SpecIDs() []string {
	ids := make([]string, 0, len(specs))
	for id := range specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func init() {
	registerSpec(scenario.Spec{
		Version: 1,
		Name:    "fig3",
		Title:   "Listing 1 on Machine A: clean pre-store speedup and write amplification",
		Paper:   "Fig 3: up to 3x speedup at 5 threads; amp 1.8x (1 thread) / 3.3x (2+ threads) -> 1.0 with cleaning",
		Machine: scenario.MachineSpec{Preset: "machine-a"},
		Workload: scenario.WorkloadSpec{
			Name:   "listing1",
			Params: map[string]any{"volume": 48 << 20, "reread": true, "seed": 42},
		},
		Policy: scenario.PolicySpec{
			Ops: []string{"none", "clean"},
			Axes: []scenario.Axis{
				{Param: "threads", Values: []any{1, 2, 5}, Quick: []any{1, 2}},
				{Param: "elem_size", Values: []any{256, 1024, 4096}, Quick: []any{1024}},
			},
			Columns: []scenario.Column{
				{Title: "threads", Axis: "threads"},
				{Title: "elem", Axis: "elem_size", Format: "bytes"},
				{Title: "base cyc/op", Op: "none", Metric: "elapsed_per_op", Format: "f0"},
				{Title: "base amp", Op: "none", Metric: "write_amp", Format: "f2"},
				{Title: "clean amp", Op: "clean", Metric: "write_amp", Format: "f2"},
				{Title: "speedup", Op: "none", Metric: "elapsed", DenOp: "clean", Format: "x2"},
			},
		},
		Run: scenario.RunSpec{Quick: map[string]any{"volume": 12 << 20}},
	})

	registerSpec(scenario.Spec{
		Version: 1,
		Name:    "skipvsclean",
		Title:   "Listing 1 variants: when to skip vs clean",
		Paper:   "Section 5: with the re-read, skipping is 2x slower than cleaning; without it, skipping wins",
		Machine: scenario.MachineSpec{Preset: "machine-a"},
		Workload: scenario.WorkloadSpec{
			Name:   "listing1",
			Params: map[string]any{"elem_size": 256, "threads": 2, "volume": 48 << 20, "seed": 42},
		},
		Policy: scenario.PolicySpec{
			Ops: []string{"clean", "skip"},
			Axes: []scenario.Axis{
				{Param: "reread", Values: []any{true, false}},
			},
			Columns: []scenario.Column{
				{Title: "re-read?", Axis: "reread"},
				{Title: "clean cyc/op", Op: "clean", Metric: "elapsed_per_op", Format: "f0"},
				{Title: "skip cyc/op", Op: "skip", Metric: "elapsed_per_op", Format: "f0"},
				{Title: "skip/clean", Op: "skip", Metric: "elapsed_per_op", DenOp: "clean", Format: "x2"},
			},
		},
		Run: scenario.RunSpec{Quick: map[string]any{"volume": 12 << 20}},
	})

	registerSpec(scenario.Spec{
		Version: 1,
		Name:    "fig5",
		Title:   "Listing 2 on Machine B: demote pre-store vs reads-before-fence",
		Paper:   "Fig 5: up to 65% faster; no gain at 0 reads; fast FPGA peaks earlier than slow FPGA",
		Workload: scenario.WorkloadSpec{
			Name:   "listing2",
			Params: map[string]any{"elements": 100000, "iters": 20000, "seed": 7},
		},
		Policy: scenario.PolicySpec{
			Ops: []string{"none", "demote"},
			Axes: []scenario.Axis{
				{Param: "machine", Values: []any{"machine-b-fast", "machine-b-slow"},
					Labels: []string{"B-fast", "B-slow"}},
				{Param: "reads", Values: []any{0, 5, 10, 20, 40, 80, 160, 320},
					Quick: []any{0, 20, 80, 320}},
			},
			Columns: []scenario.Column{
				{Title: "machine", Axis: "machine"},
				{Title: "reads", Axis: "reads"},
				{Title: "base cyc", Op: "none", Metric: "cycles_per_iter", Format: "f0"},
				{Title: "demote cyc", Op: "demote", Metric: "cycles_per_iter", Format: "f0"},
				{Title: "improvement", Op: "none", Metric: "cycles_per_iter", DenOp: "demote", Format: "pct"},
			},
		},
		Run: scenario.RunSpec{Quick: map[string]any{"iters": 5000}},
	})

	registerSpec(scenario.Spec{
		Version: 1,
		Name:    "ext-cxlssd",
		Title:   "Extension: Listing 1 on Machine C (x86 + CXL SSD, 512B pages)",
		Paper:   "Beyond the paper's testbeds: Table 1 lists CXL SSDs at 256-512B; with 512B pages the worst-case amplification doubles to 8x and cleaning still removes it",
		Machine: scenario.MachineSpec{Preset: "machine-c"},
		Workload: scenario.WorkloadSpec{
			Name:   "listing1",
			Params: map[string]any{"threads": 2, "volume": 24 << 20, "reread": true, "seed": 42},
		},
		Policy: scenario.PolicySpec{
			Ops:    []string{"none", "clean"},
			Window: "cxlssd",
			Axes: []scenario.Axis{
				{Param: "elem_size", Values: []any{512, 2048, 8192}, Quick: []any{2048}},
			},
			Columns: []scenario.Column{
				{Title: "elem", Axis: "elem_size", Format: "bytes"},
				{Title: "base amp", Op: "none", Metric: "write_amp", Format: "f2"},
				{Title: "clean amp", Op: "clean", Metric: "write_amp", Format: "f2"},
				{Title: "speedup", Op: "none", Metric: "elapsed", DenOp: "clean", Format: "x2"},
			},
		},
		Run: scenario.RunSpec{Quick: map[string]any{"volume": 8 << 20}},
	})

	registerSpec(scenario.Spec{
		Version: 1,
		Name:    "ext-seqlog",
		Title:   "Extension: sequential-by-design writers still amplify",
		Paper:   "§8: data structures written in long sequential strides get no hardware eviction-order guarantee; DirtBuster/pre-stores enforce it",
		Machine: scenario.MachineSpec{Preset: "machine-a"},
		Workload: scenario.WorkloadSpec{
			Name:   "listing1",
			Params: map[string]any{"elem_size": 1024, "threads": 2, "volume": 48 << 20, "reread": true, "seed": 42},
		},
		Policy: scenario.PolicySpec{
			Axes: []scenario.Axis{
				{Param: "sequential", Values: []any{false, true}, Labels: []string{"random", "sequential"}},
				{Param: "op", Values: []any{"none", "clean"}, Labels: []string{"baseline", "clean"}},
			},
			Columns: []scenario.Column{
				{Title: "writer", Axis: "sequential"},
				{Title: "mode", Axis: "op"},
				{Title: "cyc/op", Metric: "elapsed_per_op", Format: "f0"},
				{Title: "write amp", Metric: "write_amp", Format: "f2"},
			},
			Footer: []string{
				"(even a perfectly sequential application write stream amplifies at the",
				" device until cleans enforce the eviction order)",
			},
		},
		Run: scenario.RunSpec{Quick: map[string]any{"volume": 12 << 20}},
	})

	registerSpec(scenario.Spec{
		Version: 1,
		Name:    "x9",
		Title:   "X9 message passing latency on Machine B",
		Paper:   "Section 7.3.2: demote cuts message latency 62% (B-fast) / 40% (B-slow)",
		Workload: scenario.WorkloadSpec{
			Name:   "x9",
			Params: map[string]any{"iters": 20000, "msg_size": 512, "seed": 3},
		},
		Policy: scenario.PolicySpec{
			Ops: []string{"none", "demote"},
			Axes: []scenario.Axis{
				{Param: "machine", Values: []any{"machine-b-fast", "machine-b-slow"},
					Labels: []string{"B-fast", "B-slow"}},
			},
			Columns: []scenario.Column{
				{Title: "machine", Axis: "machine"},
				{Title: "base lat", Op: "none", Metric: "latency_cyc", Format: "cyc0"},
				{Title: "demote lat", Op: "demote", Metric: "latency_cyc", Format: "cyc0"},
				{Title: "reduction", Op: "demote", Metric: "latency_cyc", DenOp: "none", Format: "drop0"},
			},
		},
		Run: scenario.RunSpec{Quick: map[string]any{"iters": 4000}},
	})
}
