package bench

import (
	// Scenario workloads no hand-written experiment references yet are
	// pulled in here, so every binary that serves the scenario registry
	// (prestore-bench, prestored and its shards) can run them.
	_ "prestores/internal/workloads/sites"
)
