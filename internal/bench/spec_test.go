package bench

import (
	"bytes"
	"context"
	"testing"

	"prestores/internal/scenario"
)

// TestSpecIDsRegistered pins which named experiments are spec-driven.
func TestSpecIDsRegistered(t *testing.T) {
	want := []string{"ext-cxlssd", "ext-seqlog", "fig3", "fig5", "skipvsclean", "x9"}
	got := SpecIDs()
	if len(got) != len(want) {
		t.Fatalf("SpecIDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SpecIDs() = %v, want %v", got, want)
		}
		if _, ok := Lookup(want[i]); !ok {
			t.Errorf("spec %s has no registered experiment", want[i])
		}
	}
}

// TestDumpedSpecByteIdentical runs every spec-driven experiment both
// through its registry entry and through RunSpec on its dumped
// (canonical JSON, re-decoded) spec, and requires byte-identical
// output — the acceptance oracle for the declarative refactor.
func TestDumpedSpecByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	ctx := context.Background()
	for _, id := range SpecIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			spec, ok := SpecFor(id)
			if !ok {
				t.Fatalf("SpecFor(%q) missing", id)
			}
			data, err := spec.Canonical()
			if err != nil {
				t.Fatalf("canonical: %v", err)
			}
			decoded, err := scenario.Decode(data)
			if err != nil {
				t.Fatalf("decode dumped spec: %v\njson: %s", err, data)
			}
			e, _ := Lookup(id)
			var legacy, viaSpec bytes.Buffer
			if err := RunOne(ctx, &legacy, e, true); err != nil {
				t.Fatalf("RunOne: %v", err)
			}
			if err := RunSpec(ctx, &viaSpec, decoded, true); err != nil {
				t.Fatalf("RunSpec: %v", err)
			}
			if legacy.String() != viaSpec.String() {
				t.Errorf("output differs:\n--- registry ---\n%s\n--- dumped spec ---\n%s",
					legacy.String(), viaSpec.String())
			}
		})
	}
}
