package bench

import (
	"context"
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure from the paper's evaluation must have an
	// experiment, plus the DESIGN.md ablations.
	want := []string{
		"table1", "table2",
		"fig3", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14",
		"listing3", "skipvsclean", "x9", "overhead",
		"ablate-drain", "ablate-llc", "ablate-dir", "ablate-pmembuf",
		"ycsb-mixes", "ext-cxlssd", "kv-threads", "ext-prefetch", "ext-seqlog",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("All() not sorted")
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown experiment found")
	}
}

func TestExperimentMetadata(t *testing.T) {
	for _, e := range All() {
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %q has incomplete metadata", e.ID)
		}
	}
}

func TestTable1Output(t *testing.T) {
	e, _ := Lookup("table1")
	var sb strings.Builder
	e.Run(context.Background(), &sb, true)
	out := sb.String()
	for _, want := range []string{"optane", "256B", "fpga", "64B"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds")
	}
	// A fast subset that exercises each experiment family end to end.
	for _, id := range []string{"listing3", "skipvsclean", "ablate-dir"} {
		e, _ := Lookup(id)
		var sb strings.Builder
		RunOne(context.Background(), &sb, e, true)
		if !strings.Contains(sb.String(), e.Title) {
			t.Errorf("%s output missing title", id)
		}
	}
}

func TestTable2WorkloadsNamed(t *testing.T) {
	names := map[string]bool{}
	for _, w := range Table2Workloads(true) {
		if w.Name == "" || w.NewMachine == nil || w.Run == nil {
			t.Fatalf("incomplete workload %+v", w)
		}
		if names[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
	}
	for _, want := range []string{"tensorflow", "x9", "clht", "masstree", "nas-mg", "nas-is", "nas-ep", "c-ray", "gzip", "rust-prime"} {
		if !names[want] {
			t.Errorf("table2 workloads missing %q", want)
		}
	}
}

func TestRunOneHeader(t *testing.T) {
	e := Experiment{ID: "t", Title: "Title", Paper: "P", Run: func(_ context.Context, w io.Writer, _ bool) {}}
	var sb strings.Builder
	RunOne(context.Background(), &sb, e, true)
	if !strings.Contains(sb.String(), "Title") || !strings.Contains(sb.String(), "P") {
		t.Fatal("header incomplete")
	}
}
