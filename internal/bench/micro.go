package bench

import (
	"context"
	"fmt"
	"io"

	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/micro"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Device internal read/write granularities",
		Paper: "Table 1: Intel CPU 64B, ThunderX ARM 128B, Optane PMEM 256B, CXL SSD 256-512B",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "listing3",
		Title: "Listing 3: cleaning a constantly re-written line",
		Paper: "Section 5: ~75x slowdown (ratio of memory vs cache write latency)",
		Run:   runListing3,
	})
	// fig3, skipvsclean and fig5 are registered as declarative scenario
	// specs in spec.go.
}

func runTable1(ctx context.Context, w io.Writer, _ bool) {
	header(w, "device", "granularity", "read lat", "machine")
	type dev struct{ machine, window string }
	rows := []dev{
		{"machine-A", sim.WindowDRAM},
		{"machine-A", sim.WindowPMEM},
		{"machine-B", sim.WindowDRAM},
		{"machine-B", sim.WindowRemote},
		{"machine-C", sim.WindowCXL},
	}
	machines := map[string]*sim.Machine{
		"machine-A": sim.MachineA().AttachOps(ctx),
		"machine-B": sim.MachineBFast().AttachOps(ctx),
		"machine-C": sim.MachineC().AttachOps(ctx),
	}
	for _, r := range rows {
		if cancelled(ctx) {
			return
		}
		d := machines[r.machine].Device(r.window)
		row(w, d.Name(), units.Bytes(d.InternalGranularity()),
			fmt.Sprintf("%d cyc", d.ReadLatency()), r.machine)
	}
	fmt.Fprintf(w, "CPU line sizes: machine-A %dB (x86), machine-B %dB (ThunderX ARM)\n",
		machines["machine-A"].LineSize(), machines["machine-B"].LineSize())
}

// fig3Volume is the data written per configuration (footprint rules in
// DESIGN.md §6: several times the LLC so evictions reach steady state).
func fig3Volume(quick bool) uint64 {
	if quick {
		return 12 * units.MiB
	}
	return 48 * units.MiB
}

func runListing3(ctx context.Context, w io.Writer, quick bool) {
	iters := 200000
	if quick {
		iters = 20000
	}
	base := micro.RunListing3(sim.MachineA().AttachOps(ctx), micro.Listing3Config{Iters: iters, Mode: micro.Baseline})
	if cancelled(ctx) {
		return
	}
	clean := micro.RunListing3(sim.MachineA().AttachOps(ctx), micro.Listing3Config{Iters: iters, Mode: micro.CleanPrestore})
	header(w, "variant", "cyc/rewrite", "slowdown")
	row(w, "baseline", fmt.Sprintf("%.1f", base.CyclesPerRew), "1.0x")
	row(w, "clean", fmt.Sprintf("%.1f", clean.CyclesPerRew),
		fmt.Sprintf("%.0fx", clean.CyclesPerRew/base.CyclesPerRew))
}
