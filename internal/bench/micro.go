package bench

import (
	"context"
	"fmt"
	"io"

	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/micro"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Device internal read/write granularities",
		Paper: "Table 1: Intel CPU 64B, ThunderX ARM 128B, Optane PMEM 256B, CXL SSD 256-512B",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Listing 1 on Machine A: clean pre-store speedup and write amplification",
		Paper: "Fig 3: up to 3x speedup at 5 threads; amp 1.8x (1 thread) / 3.3x (2+ threads) -> 1.0 with cleaning",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "listing3",
		Title: "Listing 3: cleaning a constantly re-written line",
		Paper: "Section 5: ~75x slowdown (ratio of memory vs cache write latency)",
		Run:   runListing3,
	})
	register(Experiment{
		ID:    "skipvsclean",
		Title: "Listing 1 variants: when to skip vs clean",
		Paper: "Section 5: with the re-read, skipping is 2x slower than cleaning; without it, skipping wins",
		Run:   runSkipVsClean,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Listing 2 on Machine B: demote pre-store vs reads-before-fence",
		Paper: "Fig 5: up to 65% faster; no gain at 0 reads; fast FPGA peaks earlier than slow FPGA",
		Run:   runFig5,
	})
}

func runTable1(ctx context.Context, w io.Writer, _ bool) {
	header(w, "device", "granularity", "read lat", "machine")
	type dev struct{ machine, window string }
	rows := []dev{
		{"machine-A", sim.WindowDRAM},
		{"machine-A", sim.WindowPMEM},
		{"machine-B", sim.WindowDRAM},
		{"machine-B", sim.WindowRemote},
		{"machine-C", sim.WindowCXL},
	}
	machines := map[string]*sim.Machine{
		"machine-A": sim.MachineA(),
		"machine-B": sim.MachineBFast(),
		"machine-C": sim.MachineC(),
	}
	for _, r := range rows {
		if cancelled(ctx) {
			return
		}
		d := machines[r.machine].Device(r.window)
		row(w, d.Name(), units.Bytes(d.InternalGranularity()),
			fmt.Sprintf("%d cyc", d.ReadLatency()), r.machine)
	}
	fmt.Fprintf(w, "CPU line sizes: machine-A %dB (x86), machine-B %dB (ThunderX ARM)\n",
		machines["machine-A"].LineSize(), machines["machine-B"].LineSize())
}

// fig3Volume is the data written per configuration (footprint rules in
// DESIGN.md §6: several times the LLC so evictions reach steady state).
func fig3Volume(quick bool) uint64 {
	if quick {
		return 12 * units.MiB
	}
	return 48 * units.MiB
}

func runFig3(ctx context.Context, w io.Writer, quick bool) {
	sizes := []uint64{256, 1024, 4096}
	threads := []int{1, 2, 5}
	if quick {
		sizes = []uint64{1024}
		threads = []int{1, 2}
	}
	header(w, "threads", "elem", "base cyc/op", "base amp", "clean amp", "speedup")
	for _, th := range threads {
		for _, esz := range sizes {
			if cancelled(ctx) {
				return
			}
			iters := int(fig3Volume(quick) / esz / uint64(th))
			elems := int(32 * units.MiB / esz)
			cfg := micro.Listing1Config{
				ElemSize: esz, Elements: elems, Threads: th, Iters: iters,
				ReRead: true, Seed: 42,
			}
			cfg.Mode = micro.Baseline
			base := micro.RunListing1(sim.MachineA(), cfg)
			cfg.Mode = micro.CleanPrestore
			clean := micro.RunListing1(sim.MachineA(), cfg)
			row(w, fmt.Sprint(th), units.Bytes(esz),
				fmt.Sprintf("%.0f", base.ElapsedPerOp),
				f2(base.WriteAmp), f2(clean.WriteAmp),
				fmt.Sprintf("%.2fx", float64(base.Elapsed)/float64(clean.Elapsed)))
		}
	}
}

func runListing3(ctx context.Context, w io.Writer, quick bool) {
	iters := 200000
	if quick {
		iters = 20000
	}
	base := micro.RunListing3(sim.MachineA(), micro.Listing3Config{Iters: iters, Mode: micro.Baseline})
	if cancelled(ctx) {
		return
	}
	clean := micro.RunListing3(sim.MachineA(), micro.Listing3Config{Iters: iters, Mode: micro.CleanPrestore})
	header(w, "variant", "cyc/rewrite", "slowdown")
	row(w, "baseline", fmt.Sprintf("%.1f", base.CyclesPerRew), "1.0x")
	row(w, "clean", fmt.Sprintf("%.1f", clean.CyclesPerRew),
		fmt.Sprintf("%.0fx", clean.CyclesPerRew/base.CyclesPerRew))
}

func runSkipVsClean(ctx context.Context, w io.Writer, quick bool) {
	esz := uint64(256)
	iters := int(fig3Volume(quick) / esz / 2)
	elems := int(32 * units.MiB / esz)
	header(w, "re-read?", "clean cyc/op", "skip cyc/op", "skip/clean")
	for _, reread := range []bool{true, false} {
		if cancelled(ctx) {
			return
		}
		cfg := micro.Listing1Config{
			ElemSize: esz, Elements: elems, Threads: 2, Iters: iters,
			ReRead: reread, Seed: 42,
		}
		cfg.Mode = micro.CleanPrestore
		clean := micro.RunListing1(sim.MachineA(), cfg)
		cfg.Mode = micro.SkipNT
		skip := micro.RunListing1(sim.MachineA(), cfg)
		row(w, fmt.Sprint(reread),
			fmt.Sprintf("%.0f", clean.ElapsedPerOp),
			fmt.Sprintf("%.0f", skip.ElapsedPerOp),
			fmt.Sprintf("%.2fx", skip.ElapsedPerOp/clean.ElapsedPerOp))
	}
}

func runFig5(ctx context.Context, w io.Writer, quick bool) {
	reads := []int{0, 5, 10, 20, 40, 80, 160, 320}
	iters := 20000
	if quick {
		reads = []int{0, 20, 80, 320}
		iters = 5000
	}
	header(w, "machine", "reads", "base cyc", "demote cyc", "improvement")
	for _, mk := range []struct {
		name string
		mk   func() *sim.Machine
	}{{"B-fast", sim.MachineBFast}, {"B-slow", sim.MachineBSlow}} {
		for _, n := range reads {
			if cancelled(ctx) {
				return
			}
			cfg := micro.Listing2Config{Elements: 100000, Reads: n, Iters: iters, Seed: 7}
			cfg.Mode = micro.Baseline
			base := micro.RunListing2(mk.mk(), cfg)
			cfg.Mode = micro.DemotePrestore
			dem := micro.RunListing2(mk.mk(), cfg)
			row(w, mk.name, fmt.Sprint(n),
				fmt.Sprintf("%.0f", base.CyclesPerIter),
				fmt.Sprintf("%.0f", dem.CyclesPerIter),
				pct(base.CyclesPerIter/dem.CyclesPerIter))
		}
	}
}
