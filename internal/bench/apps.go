package bench

import (
	"context"
	"fmt"
	"io"

	"prestores/internal/sim"
	"prestores/internal/workloads/nas"
	"prestores/internal/workloads/tensor"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "TensorFlow training proxy on Machine A: clean vs skip, batch-size sweep",
		Paper: "Fig 7: clean +47% at batch 1 dropping to +20% at large batches; skip loses ~20%",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "TensorFlow training proxy on Machine A: write amplification",
		Paper: "Fig 8: cleaning lowers amplification from ~3.7x to ~2.7x (only one function patched)",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "NAS kernels on Machine A: normalized runtime with clean pre-stores",
		Paper: "Fig 9: MG/FT/SP/UA/BT up to 40% faster; lower is better",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "overhead",
		Title: "Pre-store overhead when not needed (Section 7.4)",
		Paper: "NAS/tensor cleans on Machine B <=0.3% overhead; FT fftz2 manual clean ~3x slowdown; IS rank: no effect",
		Run:   runOverhead,
	})
}

func fig7Batches(quick bool) []int {
	if quick {
		return []int{1, 32}
	}
	return []int{1, 8, 32, 64, 128, 250}
}

func trainCfg(batch int, mode tensor.Mode, quick bool) tensor.TrainConfig {
	feat := 2048
	steps := 2
	if quick {
		feat = 1024
		steps = 1
	}
	return tensor.TrainConfig{BatchSize: batch, Features: feat, Steps: steps, Mode: mode}
}

func runFig7(ctx context.Context, w io.Writer, quick bool) {
	header(w, "batch", "base Mcyc", "clean gain", "skip gain")
	for _, batch := range fig7Batches(quick) {
		if cancelled(ctx) {
			return
		}
		base := tensor.Train(sim.MachineA().AttachOps(ctx), trainCfg(batch, tensor.Baseline, quick))
		clean := tensor.Train(sim.MachineA().AttachOps(ctx), trainCfg(batch, tensor.Clean, quick))
		skip := tensor.Train(sim.MachineA().AttachOps(ctx), trainCfg(batch, tensor.Skip, quick))
		row(w, fmt.Sprint(batch),
			fmt.Sprintf("%.1f", float64(base.Elapsed)/1e6),
			pct(float64(base.Elapsed)/float64(clean.Elapsed)),
			pct(float64(base.Elapsed)/float64(skip.Elapsed)))
	}
}

func runFig8(ctx context.Context, w io.Writer, quick bool) {
	header(w, "batch", "base amp", "clean amp")
	for _, batch := range fig7Batches(quick) {
		if cancelled(ctx) {
			return
		}
		base := tensor.Train(sim.MachineA().AttachOps(ctx), trainCfg(batch, tensor.Baseline, quick))
		clean := tensor.Train(sim.MachineA().AttachOps(ctx), trainCfg(batch, tensor.Clean, quick))
		row(w, fmt.Sprint(batch), f2(base.WriteAmp), f2(clean.WriteAmp))
	}
}

func nasKernels(quick bool) []nas.Kernel {
	if quick {
		return []nas.Kernel{nas.MG, nas.BT}
	}
	return []nas.Kernel{nas.MG, nas.FT, nas.SP, nas.UA, nas.BT, nas.IS}
}

func runFig9(ctx context.Context, w io.Writer, quick bool) {
	header(w, "kernel", "base amp", "clean amp", "norm runtime", "cksum ok")
	for _, k := range nasKernels(quick) {
		if cancelled(ctx) {
			return
		}
		cfg := nas.Config{Kernel: k, Iters: 1, Seed: 3}
		if quick {
			cfg.Scale = quickScale(k)
		}
		cfg.Mode = nas.Baseline
		base := nas.Run(sim.MachineA().AttachOps(ctx), cfg)
		cfg.Mode = nas.Clean
		clean := nas.Run(sim.MachineA().AttachOps(ctx), cfg)
		row(w, string(k), f2(base.WriteAmp), f2(clean.WriteAmp),
			f2(float64(clean.Elapsed)/float64(base.Elapsed)),
			fmt.Sprint(base.Checksum == clean.Checksum))
	}
}

// quickScale shrinks each kernel for smoke runs.
func quickScale(k nas.Kernel) int {
	switch k {
	case nas.MG, nas.SP:
		return 64
	case nas.BT:
		return 40
	case nas.FT:
		return 32
	case nas.UA:
		return 1 << 14
	case nas.IS:
		return 1 << 17
	default:
		return 0
	}
}

func runOverhead(ctx context.Context, w io.Writer, quick bool) {
	// 1. DirtBuster-recommended cleans on Machine B, where neither
	// mechanism applies (no write amplification on the FPGA, NAS uses
	// no fences): overhead should be negligible.
	fmt.Fprintln(w, "-- recommended pre-stores on the wrong machine (B-fast): overhead --")
	header(w, "kernel", "base Mcyc", "clean Mcyc", "overhead")
	for _, k := range []nas.Kernel{nas.MG, nas.SP} {
		if cancelled(ctx) {
			return
		}
		cfg := nas.Config{Kernel: k, Iters: 1, Seed: 3, Window: sim.WindowRemote}
		if quick {
			cfg.Scale = quickScale(k)
		}
		cfg.Mode = nas.Baseline
		base := nas.Run(sim.MachineBFast().AttachOps(ctx), cfg)
		cfg.Mode = nas.Clean
		clean := nas.Run(sim.MachineBFast().AttachOps(ctx), cfg)
		row(w, string(k),
			fmt.Sprintf("%.1f", float64(base.Elapsed)/1e6),
			fmt.Sprintf("%.1f", float64(clean.Elapsed)/1e6),
			pct(float64(clean.Elapsed)/float64(base.Elapsed)))
	}

	// 2. FT's fftz2: manually cleaning the hot in-cache scratch that
	// DirtBuster refuses to recommend (write-back per rewrite).
	if cancelled(ctx) {
		return
	}
	fmt.Fprintln(w, "-- FT fftz2: manual clean of the hot scratch (the trap) --")
	ftCfg := nas.Config{Kernel: nas.FT, Iters: 1, Seed: 3}
	if quick {
		ftCfg.Scale = quickScale(nas.FT)
	}
	ftCfg.Mode = nas.Baseline
	ftBase := nas.Run(sim.MachineA().AttachOps(ctx), ftCfg)
	ftCfg.Mode = nas.CleanHot
	ftHot := nas.Run(sim.MachineA().AttachOps(ctx), ftCfg)
	header(w, "variant", "Mcyc", "slowdown")
	row(w, "baseline", fmt.Sprintf("%.1f", float64(ftBase.Elapsed)/1e6), "1.0x")
	row(w, "clean fftz2", fmt.Sprintf("%.1f", float64(ftHot.Elapsed)/1e6),
		fmt.Sprintf("%.2fx", float64(ftHot.Elapsed)/float64(ftBase.Elapsed)))

	// 3. IS rank: small random writes, neither re-read nor sequential;
	// a clean is useless but also (nearly) free.
	if cancelled(ctx) {
		return
	}
	fmt.Fprintln(w, "-- IS rank: manual clean of random small writes (no effect expected) --")
	isCfg := nas.Config{Kernel: nas.IS, Iters: 1, Seed: 3}
	if quick {
		isCfg.Scale = quickScale(nas.IS)
	}
	isCfg.Mode = nas.Baseline
	isBase := nas.Run(sim.MachineA().AttachOps(ctx), isCfg)
	isCfg.Mode = nas.Clean
	isClean := nas.Run(sim.MachineA().AttachOps(ctx), isCfg)
	header(w, "variant", "Mcyc", "delta")
	row(w, "baseline", fmt.Sprintf("%.1f", float64(isBase.Elapsed)/1e6), "")
	row(w, "clean", fmt.Sprintf("%.1f", float64(isClean.Elapsed)/1e6),
		pct(float64(isClean.Elapsed)/float64(isBase.Elapsed)))
}
