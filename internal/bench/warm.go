package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"prestores/internal/checkpoint"
	"prestores/internal/obs"
	"prestores/internal/sim"
	"prestores/internal/workloads/kv"
	"prestores/internal/workloads/ycsb"
)

// kvWarmKey derives the content-addressed identity of a KV experiment's
// load phase. The YCSB load is RNG-free and runs on core 0 with
// baseline crafting, so the post-load state depends only on the store
// kind, the window, the record count, the value size and the heap size
// — mode, threads and mix sweeps all fork from the same warm state.
// The build version and the machine's config hash are part of the key,
// so a simulator change or a different machine never matches a stale
// checkpoint.
func kvWarmKey(m *sim.Machine, store kv.Store, heap *kv.ValueHeap, cfg ycsb.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "bench-kv\x00%s\x00%s\x00%s\x00%s\x00%d\x00%d\x00%d",
		checkpoint.Build(), m.ConfigHash(), store.Name(), cfg.Window,
		cfg.Records, cfg.ValueSize, heap.Size())
	return hex.EncodeToString(h.Sum(nil))
}

// kvLoad is the checkpoint-aware replacement for ycsb.Load at every
// bench call site. Without a checkpoint view on the context it is
// exactly the cold load; with one, the first grid point's post-load
// snapshot is memoized under its warm-prefix key and every sibling
// grid point forks from it instead of re-simulating the load.
//
// Snapshot restore is proven lossless and canonical (see
// internal/sim/snapshot_test.go), so warm-forked sweeps stay
// byte-identical to cold ones — the golden guard runs both ways.
func kvLoad(ctx context.Context, m *sim.Machine, store kv.Store, heap *kv.ValueHeap, cfg ycsb.Config) {
	view := checkpoint.FromContext(ctx)
	if view == nil {
		ycsb.Load(m, store, heap, cfg)
		return
	}
	key := kvWarmKey(m, store, heap, cfg)
	pc := &sim.PhaseControl{
		Restore: func(m *sim.Machine) ([]byte, bool) {
			// The lookup and restore are separate spans: a miss shows a
			// lookup followed by the full cold load, a hit shows the
			// restore replacing it — the timing difference checkpointing
			// exists to create, visible per job.
			lctx, lookup := obs.Start(ctx, "checkpoint.lookup", obs.KV("key", key[:12]))
			data, ok := view.Get(key)
			var ck *sim.Checkpoint
			if ok {
				var err error
				ck, err = sim.DecodeCheckpoint(data)
				if err != nil || ck.Build != checkpoint.Build() || ck.ConfigHash != m.ConfigHash() {
					// Stale or corrupt store entry: treat as a miss. The
					// machine is untouched, so the cold load is still safe.
					ok = false
				}
			}
			lookup.SetAttr("hit", fmt.Sprint(ok))
			lookup.End()
			if !ok {
				return nil, false
			}
			_, restore := obs.Start(lctx, "checkpoint.restore", obs.KV("key", key[:12]))
			defer restore.End()
			if err := ck.Restore(m); err != nil {
				// The header matched but the payload did not apply: the
				// machine may be partially mutated, so falling back to a
				// cold load would corrupt the run. Fail loudly instead —
				// the runner contains the panic into Result.Err.
				panic(fmt.Sprintf("checkpoint %s: restore failed: %v", key[:12], err))
			}
			return ck.Annex, true
		},
		Save: func(m *sim.Machine, annex []byte) {
			_, save := obs.Start(ctx, "checkpoint.save", obs.KV("key", key[:12]))
			defer save.End()
			ck, err := m.NewCheckpoint(checkpoint.Build(), annex)
			if err != nil {
				return // machine not snapshottable: siblings load cold
			}
			view.Put(key, ck.Encode())
		},
	}
	if err := ycsb.WarmLoad(m, store, heap, cfg, pc); err != nil {
		panic(fmt.Sprintf("checkpoint %s: %v", key[:12], err))
	}
}
