// Warm-start extension of the golden-determinism guard: the KV-store
// experiments, run with a checkpoint view on the context so sweeps fork
// sibling grid points from memoized post-warmup snapshots, must produce
// the exact bytes of a cold run.
package bench_test

import (
	"bytes"
	"context"
	"testing"

	"prestores/internal/bench"
	"prestores/internal/checkpoint"
)

// ckptIDs is a fast cross-section of the checkpoint-eligible
// experiments, covering both sweep shapes: fig13 forks across craft
// modes on two machines (runKVB), kv-threads forks every grid point
// from a single load (runKVThreads). The full set (fig10-fig14,
// ycsb-mixes) runs in CI's checkpoint smoke.
var ckptIDs = []string{"fig13", "kv-threads"}

// TestWarmForkByteIdentity is the acceptance bar for warm-state
// forking: checkpointing is a pure wall-time optimization, so the warm
// run's bytes must equal the cold run's exactly, and the store must
// actually see hits (a silent fall-back to cold loads would pass the
// comparison while losing the speedup).
func TestWarmForkByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the KV experiment cross-section twice; skipped with -short")
	}
	exps := make([]bench.Experiment, 0, len(ckptIDs))
	for _, id := range ckptIDs {
		e, ok := bench.Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	run := func(ctx context.Context) []byte {
		t.Helper()
		var buf bytes.Buffer
		results, err := bench.Run(ctx, &buf, exps, bench.RunnerConfig{Parallel: 4, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range results {
			if results[i].Failed() {
				t.Fatalf("%s failed: %s", results[i].ID, results[i].Err)
			}
		}
		return buf.Bytes()
	}

	cold := run(context.Background())

	store, err := checkpoint.NewStore(0, "")
	if err != nil {
		t.Fatal(err)
	}
	view := store.View()
	warm := run(checkpoint.NewContext(context.Background(), view))

	if !bytes.Equal(cold, warm) {
		t.Errorf("warm-forked output differs from cold run:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if view.Hits() == 0 {
		t.Errorf("checkpoint store saw no hits (misses=%d); warm forking never engaged", view.Misses())
	}
	t.Logf("checkpoints: %d hits, %d misses, %d bytes in store", view.Hits(), view.Misses(), store.Bytes())
}

// TestParallelSimOpsExact pins satellite behaviour of the per-run ops
// counter: an experiment's SimOps under a concurrent sweep equals its
// SimOps when run alone. Before the counter moved onto the run context,
// parallel experiments bled retired ops into each other's window of the
// process-wide total.
func TestParallelSimOpsExact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments; skipped with -short")
	}
	solo := func(id string) uint64 {
		t.Helper()
		e, ok := bench.Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		var buf bytes.Buffer
		res, err := bench.Run(context.Background(), &buf, []bench.Experiment{e}, bench.RunnerConfig{Parallel: 1, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Failed() {
			t.Fatalf("%s failed: %s", id, res[0].Err)
		}
		if res[0].SimOps == 0 {
			t.Fatalf("%s retired zero ops solo", id)
		}
		return res[0].SimOps
	}
	ids := []string{"listing3", "x9"}
	want := map[string]uint64{}
	var exps []bench.Experiment
	for _, id := range ids {
		want[id] = solo(id)
		e, _ := bench.Lookup(id)
		exps = append(exps, e)
	}

	var buf bytes.Buffer
	res, err := bench.Run(context.Background(), &buf, exps, bench.RunnerConfig{Parallel: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if got := res[i].SimOps; got != want[res[i].ID] {
			t.Errorf("%s: SimOps under Parallel:2 = %d; want %d (solo run)", res[i].ID, got, want[res[i].ID])
		}
	}
}
