package bench

import (
	"context"
	"fmt"
	"io"

	"prestores/internal/sim"
	"prestores/internal/workloads/kv"
	"prestores/internal/workloads/ycsb"
)

func init() {
	register(Experiment{
		ID:    "ycsb-mixes",
		Title: "CLHT on Machine A across YCSB mixes: pre-store gains track the write ratio",
		Paper: "Section 7.2.3: read-only/read-mostly workloads (YCSB B-D) do not benefit from pre-storing",
		Run:   runYCSBMixes,
	})
}

func runYCSBMixes(ctx context.Context, w io.Writer, quick bool) {
	mixes := []ycsb.Workload{ycsb.A, ycsb.B, ycsb.C, ycsb.F}
	header(w, "mix", "write ratio", "baseline", "clean", "clean gain")
	for _, mix := range mixes {
		results := map[kv.CraftMode]ycsb.Result{}
		for _, mode := range []kv.CraftMode{kv.CraftBaseline, kv.CraftClean} {
			if cancelled(ctx) {
				return
			}
			m, store, heap, cfg := kvSetup(ctx, sim.MachineA, "clht", sim.WindowPMEM, quick)
			cfg.ValueSize = 1024
			cfg.Workload = mix
			cfg.Craft = mode
			kvLoad(ctx, m, store, heap, cfg)
			results[mode] = ycsb.Run(m, store, heap, cfg)
		}
		base, clean := results[kv.CraftBaseline], results[kv.CraftClean]
		wr := "0%"
		switch mix {
		case ycsb.A, ycsb.F:
			wr = "50%"
		case ycsb.B:
			wr = "5%"
		}
		row(w, mix.String(), wr, mops(base.OpsPerSec), mops(clean.OpsPerSec),
			pct(clean.OpsPerSec/base.OpsPerSec))
	}
}

func init() {
	register(Experiment{
		ID:    "kv-threads",
		Title: "CLHT YCSB-A (1KB) on Machine A: thread scaling of baseline and clean",
		Paper: "Section 7.2.3 injects load with 10 threads, 'the configuration that provides the highest throughput'; the clean advantage requires enough threads to pressure the device",
		Run:   runKVThreads,
	})
}

func runKVThreads(ctx context.Context, w io.Writer, quick bool) {
	threads := []int{1, 2, 5, 10}
	if quick {
		threads = []int{2, 10}
	}
	header(w, "threads", "baseline", "clean", "clean gain")
	for _, th := range threads {
		results := map[kv.CraftMode]ycsb.Result{}
		for _, mode := range []kv.CraftMode{kv.CraftBaseline, kv.CraftClean} {
			if cancelled(ctx) {
				return
			}
			m, store, heap, cfg := kvSetup(ctx, sim.MachineA, "clht", sim.WindowPMEM, quick)
			cfg.ValueSize = 1024
			cfg.Threads = th
			cfg.Craft = mode
			kvLoad(ctx, m, store, heap, cfg)
			results[mode] = ycsb.Run(m, store, heap, cfg)
		}
		base, clean := results[kv.CraftBaseline], results[kv.CraftClean]
		row(w, fmt.Sprint(th), mops(base.OpsPerSec), mops(clean.OpsPerSec),
			pct(clean.OpsPerSec/base.OpsPerSec))
	}
}
