// Package pmcheck is a trace-driven persistence checker in the spirit
// of the tools the paper's related work surveys (PMTest, Mumak): it
// finds stores to persistent memory that are not covered by a clean
// pre-store (clwb) and an ordering point before the program declares a
// durability boundary.
//
// The paper uses cleaning instructions for *performance*; persistent
// programming uses the same instructions for *correctness*. Both
// workflows share the instrumentation substrate, so the checker
// consumes the same operation traces DirtBuster analyzes.
//
// Model: a store to the checked range is "volatile" until a clean
// covering its line is issued and a subsequent fence (or atomic)
// retires the clean. A Commit marker (any atomic or fence the caller
// designates through MarkCommit, or every fence when Strict) asserts
// that all previously written lines are persistent.
package pmcheck

import (
	"fmt"
	"sort"

	"prestores/internal/sim"
	"prestores/internal/trace"
	"prestores/internal/units"
)

// Violation reports one line that was not durably persisted at a
// commit point.
type Violation struct {
	Line     uint64 // line base address
	StoreFn  string // function that performed the unpersisted store
	CommitFn string // function executing at the commit point
	Instr    uint64 // commit's instruction count on its core
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("line %#x written in %s not persisted at commit in %s (instr %d)",
		v.Line, v.StoreFn, v.CommitFn, v.Instr)
}

// Config parameterizes a check.
type Config struct {
	// Range restricts checking to [Base, Base+Size) — normally the
	// persistent window. Zero Size checks everything.
	Base, Size uint64
	// LineSize of the traced machine.
	LineSize uint64
	// CommitFn: a fence/atomic executed inside a function with this
	// annotation is a durability boundary. Empty means every atomic is
	// a commit (locks and lock-free publishes usually are).
	CommitFn string
	// MaxViolations caps the report (0 = 64).
	MaxViolations int
}

// lineState tracks a line's persistence progress.
type lineState int

const (
	stateDirty   lineState = iota // stored, not cleaned
	statePending                  // cleaned, awaiting ordering fence
	stateDurable                  // cleaned + fenced
)

// Result summarizes a check.
type Result struct {
	Violations []Violation
	// StoresChecked counts line-stores to the checked range.
	StoresChecked uint64
	// Commits counts durability boundaries encountered.
	Commits uint64
}

// Ok reports whether no violations were found.
func (r Result) Ok() bool { return len(r.Violations) == 0 }

// Check replays the trace and reports unpersisted-at-commit lines.
func Check(tb *trace.Buffer, cfg Config) Result {
	if cfg.LineSize == 0 {
		cfg.LineSize = 64
	}
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = 64
	}
	inRange := func(addr uint64) bool {
		if cfg.Size == 0 {
			return true
		}
		return addr >= cfg.Base && addr < cfg.Base+cfg.Size
	}

	type lineInfo struct {
		state lineState
		fn    string
	}
	lines := map[uint64]*lineInfo{}
	var res Result

	tb.Replay(func(r trace.Record, fn string) {
		switch r.Kind {
		case sim.OpStore:
			for l := units.AlignDown(r.Addr, cfg.LineSize); l < r.Addr+r.Size; l += cfg.LineSize {
				if !inRange(l) {
					continue
				}
				res.StoresChecked++
				li := lines[l]
				if li == nil {
					li = &lineInfo{}
					lines[l] = li
				}
				li.state = stateDirty
				li.fn = fn
			}
		case sim.OpStoreNT:
			// Non-temporal stores go straight toward memory; they still
			// need an ordering fence.
			for l := units.AlignDown(r.Addr, cfg.LineSize); l < r.Addr+r.Size; l += cfg.LineSize {
				if !inRange(l) {
					continue
				}
				res.StoresChecked++
				li := lines[l]
				if li == nil {
					li = &lineInfo{}
					lines[l] = li
				}
				li.state = statePending
				li.fn = fn
			}
		case sim.OpPrestoreClean:
			for l := units.AlignDown(r.Addr, cfg.LineSize); l < r.Addr+r.Size; l += cfg.LineSize {
				if li := lines[l]; li != nil && li.state == stateDirty {
					li.state = statePending
				}
			}
		case sim.OpFence, sim.OpAtomic:
			// Ordering point: pending cleans retire.
			for _, li := range lines {
				if li.state == statePending {
					li.state = stateDurable
				}
			}
			isCommit := r.Kind == sim.OpAtomic || cfg.CommitFn != ""
			if cfg.CommitFn != "" && fn != cfg.CommitFn {
				isCommit = false
			}
			if !isCommit {
				return
			}
			res.Commits++
			// Every line written before the commit must be durable.
			var bad []uint64
			for l, li := range lines {
				if li.state != stateDurable {
					bad = append(bad, l)
				}
			}
			sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
			for _, l := range bad {
				if len(res.Violations) >= cfg.MaxViolations {
					break
				}
				res.Violations = append(res.Violations, Violation{
					Line:     l,
					StoreFn:  lines[l].fn,
					CommitFn: fn,
					Instr:    r.Instr,
				})
			}
			// Lines reported once per commit epoch.
			for _, l := range bad {
				delete(lines, l)
			}
		}
	})
	return res
}
