package pmcheck

import (
	"strings"
	"testing"

	"prestores/internal/sim"
	"prestores/internal/trace"
)

const pmBase = uint64(1) << 40

// record traces fn's operations on a fresh machine A.
func record(fn func(c *sim.Core)) *trace.Buffer {
	tb := trace.NewBuffer()
	m := sim.MachineA()
	m.SetHook(tb.Hook())
	fn(m.Core(0))
	m.SetHook(nil)
	return tb
}

func TestCorrectProtocolPasses(t *testing.T) {
	tb := record(func(c *sim.Core) {
		c.PushFunc("txn")
		for i := uint64(0); i < 50; i++ {
			addr := pmBase + i*256
			c.Write(addr, make([]byte, 256))
			c.Prestore(addr, 256, sim.Clean) // persist
		}
		c.Fence()                 // order
		c.CAS(pmBase+1<<20, 0, 1) // commit
		c.PopFunc()
	})
	res := Check(tb, Config{Base: pmBase, Size: 1 << 30, LineSize: 64})
	if !res.Ok() {
		t.Fatalf("correct protocol flagged: %v", res.Violations)
	}
	if res.Commits == 0 || res.StoresChecked == 0 {
		t.Fatalf("nothing checked: %+v", res)
	}
}

func TestMissingCleanFlagged(t *testing.T) {
	tb := record(func(c *sim.Core) {
		c.PushFunc("txn")
		c.Write(pmBase, make([]byte, 128))
		// Forgot the clean.
		c.CAS(pmBase+1<<20, 0, 1)
		c.PopFunc()
	})
	res := Check(tb, Config{Base: pmBase, Size: 1 << 30, LineSize: 64})
	if res.Ok() {
		t.Fatal("missing clean not flagged")
	}
	if len(res.Violations) != 2 { // two 64B lines of the 128B store
		t.Fatalf("violations = %d, want 2", len(res.Violations))
	}
	if res.Violations[0].StoreFn != "txn" {
		t.Fatalf("violation attribution: %+v", res.Violations[0])
	}
	if !strings.Contains(res.Violations[0].String(), "txn") {
		t.Fatal("render missing function")
	}
}

func TestCleanWithoutFenceFlagged(t *testing.T) {
	// The commit atomic itself is the first ordering point, so a clean
	// issued immediately before it has not retired: the classic missing
	// sfence bug... except the atomic *is* a fence, so the clean
	// retires at the commit. The genuinely buggy order is clean AFTER
	// the commit.
	tb := record(func(c *sim.Core) {
		c.PushFunc("txn")
		c.Write(pmBase, make([]byte, 64))
		c.CAS(pmBase+1<<20, 0, 1) // commit before the clean
		c.Prestore(pmBase, 64, sim.Clean)
		c.PopFunc()
	})
	res := Check(tb, Config{Base: pmBase, Size: 1 << 30, LineSize: 64})
	if res.Ok() {
		t.Fatal("late clean not flagged")
	}
}

func TestNTStoreNeedsOnlyFence(t *testing.T) {
	tb := record(func(c *sim.Core) {
		c.PushFunc("txn")
		c.WriteNT(pmBase, make([]byte, 256))
		c.Fence()
		c.CAS(pmBase+1<<20, 0, 1)
		c.PopFunc()
	})
	res := Check(tb, Config{Base: pmBase, Size: 1 << 30, LineSize: 64})
	if !res.Ok() {
		t.Fatalf("NT + fence flagged: %v", res.Violations)
	}
}

func TestRangeRestriction(t *testing.T) {
	tb := record(func(c *sim.Core) {
		c.PushFunc("txn")
		c.Write(100, make([]byte, 64)) // DRAM scratch: not checked
		c.CAS(pmBase+1<<20, 0, 1)
		c.PopFunc()
	})
	res := Check(tb, Config{Base: pmBase, Size: 1 << 30, LineSize: 64})
	if !res.Ok() {
		t.Fatalf("out-of-range store flagged: %v", res.Violations)
	}
}

func TestCommitFnFilter(t *testing.T) {
	tb := record(func(c *sim.Core) {
		c.PushFunc("worker")
		c.Write(pmBase, make([]byte, 64))
		c.Fence() // ordinary fence, not a commit under CommitFn
		c.PopFunc()
		c.PushFunc("log.commit")
		c.Fence()
		c.PopFunc()
	})
	res := Check(tb, Config{Base: pmBase, Size: 1 << 30, LineSize: 64, CommitFn: "log.commit"})
	if res.Ok() {
		t.Fatal("uncleaned store survived a named commit")
	}
	if res.Violations[0].CommitFn != "log.commit" {
		t.Fatalf("commit attribution: %+v", res.Violations[0])
	}
}

func TestViolationCap(t *testing.T) {
	tb := record(func(c *sim.Core) {
		c.PushFunc("txn")
		for i := uint64(0); i < 100; i++ {
			c.Write(pmBase+i*64, make([]byte, 64))
		}
		c.CAS(pmBase+1<<20, 0, 1)
		c.PopFunc()
	})
	res := Check(tb, Config{Base: pmBase, Size: 1 << 30, LineSize: 64, MaxViolations: 5})
	if len(res.Violations) != 5 {
		t.Fatalf("cap not applied: %d", len(res.Violations))
	}
}
