package memspace

import (
	"bytes"
	"testing"
	"testing/quick"

	"prestores/internal/xrand"
)

func TestStoreReadWriteRoundtrip(t *testing.T) {
	s := NewStore()
	data := []byte("hello, simulated memory")
	s.Write(1000, data)
	got := make([]byte, len(data))
	s.Read(1000, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("roundtrip: got %q", got)
	}
}

func TestStoreCrossPageWrite(t *testing.T) {
	s := NewStore()
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := uint64(PageSize - 100) // straddles three pages
	s.Write(addr, data)
	got := make([]byte, len(data))
	s.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page roundtrip mismatch")
	}
}

func TestStoreUnwrittenReadsZero(t *testing.T) {
	s := NewStore()
	buf := []byte{1, 2, 3, 4}
	s.Read(1<<40, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten memory read %v", buf)
		}
	}
}

func TestStoreU64(t *testing.T) {
	s := NewStore()
	s.WriteU64(512, 0xdeadbeefcafebabe)
	if got := s.ReadU64(512); got != 0xdeadbeefcafebabe {
		t.Fatalf("ReadU64 = %#x", got)
	}
	// Straddling a page boundary.
	s.WriteU64(PageSize-4, 0x1122334455667788)
	if got := s.ReadU64(PageSize - 4); got != 0x1122334455667788 {
		t.Fatalf("cross-page ReadU64 = %#x", got)
	}
}

func TestStoreFill(t *testing.T) {
	s := NewStore()
	s.Fill(100, 10000, 0xAB)
	buf := make([]byte, 10000)
	s.Read(100, buf)
	for i, b := range buf {
		if b != 0xAB {
			t.Fatalf("Fill missed offset %d: %#x", i, b)
		}
	}
	// Neighbours untouched.
	var edge [1]byte
	s.Read(99, edge[:])
	if edge[0] != 0 {
		t.Fatal("Fill wrote before start")
	}
	s.Read(10100, edge[:])
	if edge[0] != 0 {
		t.Fatal("Fill wrote past end")
	}
}

func TestStoreQuickRoundtrip(t *testing.T) {
	s := NewStore()
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		s.Write(uint64(addr), data)
		got := make([]byte, len(data))
		s.Read(uint64(addr), got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStoreOverlappingWrites(t *testing.T) {
	s := NewStore()
	rng := xrand.New(5)
	ref := make([]byte, 1<<16)
	for i := 0; i < 500; i++ {
		off := rng.Uint64n(uint64(len(ref) - 256))
		n := rng.Uint64n(255) + 1
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Uint32())
		}
		s.Write(off, b)
		copy(ref[off:], b)
	}
	got := make([]byte, len(ref))
	s.Read(0, got)
	if !bytes.Equal(got, ref) {
		t.Fatal("overlapping writes diverged from reference")
	}
}

func TestArenaWindows(t *testing.T) {
	a := NewArena()
	if err := a.AddWindow("w1", 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := a.AddWindow("w2", 1<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := a.AddWindow("w1", 1<<30, 1<<20); err == nil {
		t.Fatal("duplicate window name accepted")
	}
	if err := a.AddWindow("overlap", 1<<19, 1<<20); err == nil {
		t.Fatal("overlapping window accepted")
	}
}

func TestArenaAlloc(t *testing.T) {
	a := NewArena()
	if err := a.AddWindow("w", 4096, 1<<20); err != nil {
		t.Fatal(err)
	}
	r1, err := a.Alloc("w", "first", 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Base%64 != 0 || r1.Base < 4096 {
		t.Fatalf("bad base %#x", r1.Base)
	}
	r2, err := a.Alloc("w", "second", 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Base < r1.End() {
		t.Fatalf("regions overlap: %#x < %#x", r2.Base, r1.End())
	}
	if _, err := a.Alloc("missing", "x", 10, 8); err == nil {
		t.Fatal("alloc in unknown window accepted")
	}
	if _, err := a.Alloc("w", "zero", 0, 8); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
	if _, err := a.Alloc("w", "badalign", 10, 3); err == nil {
		t.Fatal("non-pow2 alignment accepted")
	}
	if _, err := a.Alloc("w", "huge", 1<<21, 64); err == nil {
		t.Fatal("over-size alloc accepted")
	}
}

func TestArenaNoOverlapProperty(t *testing.T) {
	a := NewArena()
	if err := a.AddWindow("w", 0, 1<<24); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(8)
	var regions []Region
	for i := 0; i < 200; i++ {
		size := rng.Uint64n(8192) + 1
		align := uint64(1) << rng.Uint64n(8)
		r, err := a.Alloc("w", "r", size, align)
		if err != nil {
			t.Fatal(err)
		}
		if r.Base%align != 0 {
			t.Fatalf("misaligned region %#x align %d", r.Base, align)
		}
		for _, prev := range regions {
			if r.Base < prev.End() && prev.Base < r.End() {
				t.Fatalf("regions overlap: %+v vs %+v", r, prev)
			}
		}
		regions = append(regions, r)
	}
}

func TestWindowOf(t *testing.T) {
	a := NewArena()
	a.AddWindow("low", 0, 1000)
	a.AddWindow("high", 1<<20, 1000)
	if got := a.WindowOf(500); got != "low" {
		t.Errorf("WindowOf(500) = %q", got)
	}
	if got := a.WindowOf(1<<20 + 10); got != "high" {
		t.Errorf("WindowOf(high) = %q", got)
	}
	if got := a.WindowOf(5000); got != "" {
		t.Errorf("WindowOf(hole) = %q", got)
	}
}

func TestRegionOf(t *testing.T) {
	a := NewArena()
	a.AddWindow("w", 0, 1<<20)
	r := a.MustAlloc("w", "named", 128, 64)
	got, ok := a.RegionOf(r.Base + 10)
	if !ok || got.Name != "named" {
		t.Fatalf("RegionOf = %+v, %v", got, ok)
	}
	if _, ok := a.RegionOf(r.End() + 1000); ok {
		t.Fatal("RegionOf found a region in unallocated space")
	}
}

func TestArenaReset(t *testing.T) {
	a := NewArena()
	a.AddWindow("w", 0, 1<<20)
	r1 := a.MustAlloc("w", "a", 128, 64)
	a.Reset()
	r2 := a.MustAlloc("w", "b", 128, 64)
	if r1.Base != r2.Base {
		t.Fatalf("reset did not rewind: %#x vs %#x", r1.Base, r2.Base)
	}
	if len(a.Regions()) != 1 {
		t.Fatalf("regions after reset = %d", len(a.Regions()))
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 100, Size: 50}
	if !r.Contains(100) || !r.Contains(149) {
		t.Fatal("Contains misses interior")
	}
	if r.Contains(99) || r.Contains(150) {
		t.Fatal("Contains includes exterior")
	}
}

func TestReservePreservesExistingPages(t *testing.T) {
	s := NewStore()
	// Materialize pages through the map first, then reserve over them:
	// the data must survive migration into the flat extent index.
	s.WriteU64(0x10_0000, 0xdeadbeef)
	s.WriteU64(0x10_2000, 42)
	s.Reserve(0x10_0000, 4*PageSize)
	if v := s.ReadU64(0x10_0000); v != 0xdeadbeef {
		t.Fatalf("ReadU64 after Reserve = %#x; want 0xdeadbeef", v)
	}
	if v := s.ReadU64(0x10_2000); v != 42 {
		t.Fatalf("ReadU64 after Reserve = %d; want 42", v)
	}
	// Writes inside the reserved range land in the extent, and the page
	// count reflects only materialized pages.
	s.WriteU64(0x10_1000, 7)
	if v := s.ReadU64(0x10_1000); v != 7 {
		t.Fatalf("ReadU64 in reserved range = %d; want 7", v)
	}
	if n := s.PagesAllocated(); n != 3 {
		t.Fatalf("PagesAllocated = %d; want 3", n)
	}
}

func TestReserveNoOps(t *testing.T) {
	s := NewStore()
	s.Reserve(0x1000, 0)     // zero size
	s.Reserve(0x1000, 5<<30) // over maxReserve
	s.Reserve(0x20_0000, 2*PageSize)
	s.Reserve(0x20_1000, 4*PageSize) // overlaps the extent above
	// All still readable/writable regardless of which path serves them.
	s.WriteU64(0x20_0000, 1)
	s.WriteU64(0x20_3000, 2) // outside extent: map path
	if s.ReadU64(0x20_0000) != 1 || s.ReadU64(0x20_3000) != 2 {
		t.Fatal("reserve no-op ranges not readable")
	}
}

func TestReserveUnwrittenReadsZero(t *testing.T) {
	s := NewStore()
	s.Reserve(0x30_0000, 8*PageSize)
	buf := make([]byte, 16)
	s.Read(0x30_4000, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d of unwritten reserved page = %d; want 0", i, b)
		}
	}
	if s.PagesAllocated() != 0 {
		t.Fatal("reading unwritten reserved pages materialized backing")
	}
}

// TestTranslationCacheCrossPage alternates accesses between two pages
// so every access misses the one-entry translation cache, and crosses a
// page boundary so the slow path splits; both must stay correct.
func TestTranslationCacheCrossPage(t *testing.T) {
	s := NewStore()
	s.Reserve(0x40_0000, 2*PageSize)
	a := uint64(0x40_0000) + PageSize - 4 // straddles the page boundary
	s.WriteU64(a, 0x1122334455667788)
	s.WriteU64(0x40_0000, 9) // evicts a's page from the cache
	if v := s.ReadU64(a); v != 0x1122334455667788 {
		t.Fatalf("cross-page ReadU64 = %#x", v)
	}
	if v := s.ReadU64(0x40_0000); v != 9 {
		t.Fatalf("ReadU64 = %d; want 9", v)
	}
}
