package memspace

import (
	"sort"

	"prestores/internal/snap"
)

// SnapshotState serializes the store's reserved extents and every
// materialized page. Extents are already kept sorted by start page;
// hash-map pages are written in ascending page-number order so the
// encoding never depends on map iteration order. The translation cache
// (lastPN/lastPage) is a pure lookup shortcut and is not written.
func (s *Store) SnapshotState(w *snap.Writer) {
	w.Section("MEMS")
	w.U64(uint64(len(s.extents)))
	for i := range s.extents {
		e := &s.extents[i]
		w.U64(e.startPN)
		w.U64(uint64(len(e.pages)))
		for _, p := range e.pages {
			if p == nil {
				w.Bool(false)
				continue
			}
			w.Bool(true)
			w.Raw(p[:])
		}
	}
	pns := make([]uint64, 0, len(s.pages))
	for pn := range s.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	w.U64(uint64(len(pns)))
	for _, pn := range pns {
		w.U64(pn)
		w.Raw(s.pages[pn][:])
	}
}

// RestoreState replaces the store's contents wholesale with the
// snapshot's: extents, pages and the lazy-materialization pattern all
// come back exactly as captured, so later PagesAllocated answers (and,
// more importantly, every byte read) match the snapshotted store.
func (s *Store) RestoreState(r *snap.Reader) error {
	r.Section("MEMS")
	nExt := r.U64()
	extents := make([]extent, 0, nExt)
	for i := uint64(0); i < nExt && r.Err() == nil; i++ {
		e := extent{startPN: r.U64()}
		n := r.U64()
		if r.Err() != nil {
			break
		}
		e.pages = make([]*page, n)
		for j := range e.pages {
			if r.Bool() {
				p := new(page)
				r.Raw(p[:])
				e.pages[j] = p
			}
		}
		extents = append(extents, e)
	}
	nMap := r.U64()
	pages := make(map[uint64]*page, nMap)
	for i := uint64(0); i < nMap && r.Err() == nil; i++ {
		pn := r.U64()
		p := new(page)
		r.Raw(p[:])
		pages[pn] = p
	}
	if err := r.Err(); err != nil {
		return err
	}
	s.extents = extents
	s.pages = pages
	s.lastPN, s.lastPage = 0, nil
	return nil
}
