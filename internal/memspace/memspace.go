// Package memspace provides the simulated physical address space: a
// sparse byte-addressable backing store plus a region allocator that
// hands out address ranges inside per-device windows.
//
// The backing store holds real bytes so that workloads built on the
// simulator (key-value stores, matrices, message rings) are functionally
// correct, not just timing models: a value written through the simulated
// hierarchy reads back byte-identical.
package memspace

import (
	"encoding/binary"
	"fmt"
	"sort"

	"prestores/internal/units"
)

// PageSize is the granularity of the sparse backing store.
const PageSize = 1 << 12

const pageShift = 12

// maxReserve caps the span a single Reserve call will index with a flat
// page table (8 bytes of index per page). Larger reservations fall back
// to the hash map, which costs lookups instead of memory.
const maxReserve = 4 << 30

type page [PageSize]byte

// zeroPage backs reads of never-written memory: a nil page's bytes are
// copied from here instead of being zeroed one byte at a time.
var zeroPage page

// extent is a flat page table over one reserved address range: page
// translation inside it is an array index instead of a map lookup.
// Pages are still materialized lazily on first write.
type extent struct {
	startPN uint64
	pages   []*page
}

// Store is a sparse byte-addressable memory. The zero value is empty
// and ready to use; unwritten bytes read as zero.
type Store struct {
	pages map[uint64]*page

	// Translation cache: the vast majority of accesses are sub-page
	// sequential or re-touch the same page, so remembering the last
	// translation turns the common case into two compares.
	lastPN   uint64
	lastPage *page

	extents []extent // sorted by startPN, non-overlapping
}

// NewStore returns an empty sparse store.
func NewStore() *Store {
	return &Store{pages: make(map[uint64]*page)}
}

// extentIdx returns the index of the extent containing pn, or -1.
func (s *Store) extentIdx(pn uint64) int {
	lo, hi := 0, len(s.extents)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		e := &s.extents[mid]
		switch {
		case pn < e.startPN:
			hi = mid
		case pn >= e.startPN+uint64(len(e.pages)):
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

func (s *Store) pageFor(addr uint64, create bool) (*page, uint64) {
	pn := addr >> pageShift
	off := addr & (PageSize - 1)
	if s.lastPage != nil && pn == s.lastPN {
		return s.lastPage, off
	}
	var p *page
	if i := s.extentIdx(pn); i >= 0 {
		e := &s.extents[i]
		p = e.pages[pn-e.startPN]
		if p == nil && create {
			p = new(page)
			e.pages[pn-e.startPN] = p
		}
	} else {
		p = s.pages[pn]
		if p == nil && create {
			p = new(page)
			s.pages[pn] = p
		}
	}
	if p != nil {
		s.lastPN, s.lastPage = pn, p
	}
	return p, off
}

// Reserve installs a flat page index over [addr, addr+size) so that
// translations inside the range bypass the page hash map. Reservations
// are a pure performance hint: overlapping, huge, or zero-size requests
// are served by the map instead. Existing pages in the range are
// migrated into the index.
func (s *Store) Reserve(addr, size uint64) {
	if size == 0 || size > maxReserve {
		return
	}
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	n := last - first + 1
	// Refuse ranges that overlap an existing extent (re-reserving an
	// already-indexed range, e.g. after an arena reset, is a no-op).
	for i := range s.extents {
		e := &s.extents[i]
		if first < e.startPN+uint64(len(e.pages)) && e.startPN <= last {
			return
		}
	}
	ext := extent{startPN: first, pages: make([]*page, n)}
	for pn := first; pn <= last; pn++ {
		if p, ok := s.pages[pn]; ok {
			ext.pages[pn-first] = p
			delete(s.pages, pn)
		}
	}
	s.extents = append(s.extents, ext)
	sort.Slice(s.extents, func(i, j int) bool { return s.extents[i].startPN < s.extents[j].startPN })
}

// Write copies data into the store at addr.
func (s *Store) Write(addr uint64, data []byte) {
	for len(data) > 0 {
		p, off := s.pageFor(addr, true)
		n := copy(p[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// Read copies len(buf) bytes starting at addr into buf. Unwritten
// bytes read as zero.
func (s *Store) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		p, off := s.pageFor(addr, false)
		n := PageSize - int(off)
		if n > len(buf) {
			n = len(buf)
		}
		if p == nil {
			p = &zeroPage
		}
		copy(buf[:n], p[off:])
		buf = buf[n:]
		addr += uint64(n)
	}
}

// WriteU64 stores v little-endian at addr.
func (s *Store) WriteU64(addr, v uint64) {
	if PageSize-(addr&(PageSize-1)) >= 8 {
		p, off := s.pageFor(addr, true)
		binary.LittleEndian.PutUint64(p[off:], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.Write(addr, b[:])
}

// ReadU64 loads a little-endian uint64 from addr.
func (s *Store) ReadU64(addr uint64) uint64 {
	if PageSize-(addr&(PageSize-1)) >= 8 {
		p, off := s.pageFor(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off:])
	}
	var b [8]byte
	s.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Fill sets n bytes starting at addr to v.
func (s *Store) Fill(addr uint64, n uint64, v byte) {
	for n > 0 {
		p, off := s.pageFor(addr, true)
		chunk := PageSize - off
		if chunk > n {
			chunk = n
		}
		seg := p[off : off+chunk]
		for i := range seg {
			seg[i] = v
		}
		addr += chunk
		n -= chunk
	}
}

// PagesAllocated returns the number of backing pages materialized so
// far (a measure of simulated footprint).
func (s *Store) PagesAllocated() int {
	n := len(s.pages)
	for i := range s.extents {
		for _, p := range s.extents[i].pages {
			if p != nil {
				n++
			}
		}
	}
	return n
}

// Region is a named, allocated address range bound to a device window.
type Region struct {
	Name string
	Base uint64
	Size uint64
	// Window identifies the device window the region was carved from.
	Window string
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// Window is an address range served by one memory device.
type Window struct {
	Name string
	Base uint64
	Size uint64
	next uint64 // bump pointer
}

// Arena allocates regions inside device windows. Windows must not
// overlap; Arena validates this at AddWindow time.
type Arena struct {
	windows map[string]*Window
	regions []Region
	sorted  []*Window // by base, for address->window lookup
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{windows: make(map[string]*Window)}
}

// AddWindow registers an address window served by a device.
func (a *Arena) AddWindow(name string, base, size uint64) error {
	if _, dup := a.windows[name]; dup {
		return fmt.Errorf("memspace: duplicate window %q", name)
	}
	for _, w := range a.sorted {
		if base < w.Base+w.Size && w.Base < base+size {
			return fmt.Errorf("memspace: window %q [%#x,%#x) overlaps %q", name, base, base+size, w.Name)
		}
	}
	w := &Window{Name: name, Base: base, Size: size, next: base}
	a.windows[name] = w
	a.sorted = append(a.sorted, w)
	sort.Slice(a.sorted, func(i, j int) bool { return a.sorted[i].Base < a.sorted[j].Base })
	return nil
}

// Alloc carves an aligned region out of the named window.
func (a *Arena) Alloc(window, name string, size, align uint64) (Region, error) {
	w, ok := a.windows[window]
	if !ok {
		return Region{}, fmt.Errorf("memspace: unknown window %q", window)
	}
	if size == 0 {
		return Region{}, fmt.Errorf("memspace: zero-size allocation %q", name)
	}
	if align == 0 {
		align = 1
	}
	if !units.IsPow2(align) {
		return Region{}, fmt.Errorf("memspace: alignment %d is not a power of two", align)
	}
	base := units.AlignUp(w.next, align)
	if base+size > w.Base+w.Size {
		return Region{}, fmt.Errorf("memspace: window %q exhausted: need %s, %s free",
			window, units.Bytes(size), units.Bytes(w.Base+w.Size-w.next))
	}
	w.next = base + size
	r := Region{Name: name, Base: base, Size: size, Window: window}
	a.regions = append(a.regions, r)
	return r, nil
}

// MustAlloc is Alloc but panics on failure; used by workloads whose
// footprints are fixed by the experiment configuration.
func (a *Arena) MustAlloc(window, name string, size, align uint64) Region {
	r, err := a.Alloc(window, name, size, align)
	if err != nil {
		panic(err)
	}
	return r
}

// WindowOf returns the name of the window containing addr, or "".
func (a *Arena) WindowOf(addr uint64) string {
	i := sort.Search(len(a.sorted), func(i int) bool { return a.sorted[i].Base+a.sorted[i].Size > addr })
	if i < len(a.sorted) && addr >= a.sorted[i].Base {
		return a.sorted[i].Name
	}
	return ""
}

// RegionOf returns the allocated region containing addr, if any.
func (a *Arena) RegionOf(addr uint64) (Region, bool) {
	for _, r := range a.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// Regions returns all allocations made so far, in allocation order.
func (a *Arena) Regions() []Region {
	return append([]Region(nil), a.regions...)
}

// Reset rewinds every window's bump pointer and forgets regions. The
// backing Store is not cleared; callers that reuse an arena across
// experiment repetitions rely on re-initializing their data.
func (a *Arena) Reset() {
	for _, w := range a.windows {
		w.next = w.Base
	}
	a.regions = a.regions[:0]
}
