package checkpoint

import "context"

// The context plumbing lives here (not in the consumers) so that both
// internal/bench and internal/scenario can look up the same view
// without importing each other.

type ctxKey struct{}

// NewContext returns a context carrying v, making warm-state forking
// available to every sweep layer below.
func NewContext(ctx context.Context, v *View) context.Context {
	return context.WithValue(ctx, ctxKey{}, v)
}

// FromContext returns the context's checkpoint view, or nil when the
// run has no checkpoint store (the cold path).
func FromContext(ctx context.Context) *View {
	v, _ := ctx.Value(ctxKey{}).(*View)
	return v
}
