// Package checkpoint provides the content-addressed warm-state store
// behind checkpoint-aware sweeps: encoded sim.Checkpoint payloads keyed
// by canonical warm-prefix keys, held in a byte-capped in-memory LRU
// with an optional disk tier.
//
// The store itself is dumb on purpose — it maps opaque keys to opaque
// bytes. All semantics (what a key covers, build/config validation)
// live with the producers: keys already encode the build version and
// machine config hash, and consumers re-verify both when decoding, so
// a stale disk tier can cause misses but never wrong results.
package checkpoint

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"prestores/internal/obs"
)

// DefaultMaxBytes bounds the in-memory tier when the caller passes 0.
const DefaultMaxBytes = 1 << 30 // 1 GiB

// Build returns the running binary's version string — the VCS revision
// when built from a checkout, "dev" otherwise. Warm-prefix keys embed
// it so that checkpoints never survive a simulator change.
func Build() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "dev"
}

type entry struct {
	key  string
	data []byte
	elem *list.Element
}

// Store is a byte-capped LRU checkpoint cache, safe for concurrent use.
// With a directory configured, every Put also lands on disk
// (atomically, via temp file + rename) and a memory miss falls back to
// a disk read, so checkpoints survive both LRU pressure and process
// restarts.
type Store struct {
	maxBytes int64
	dir      string

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used
	bytes   int64

	hits   atomic.Uint64
	misses atomic.Uint64

	// flight, when set, receives one record per cache decision (admit,
	// evict) so the daemon's flight recorder shows why a sweep suddenly
	// loads cold. Set once before the store is shared; nil is fine.
	flight *obs.FlightRecorder
}

// SetFlight wires the store's cache decisions into a flight recorder.
// Call before the store is shared across goroutines.
func (s *Store) SetFlight(f *obs.FlightRecorder) { s.flight = f }

// NewStore returns a store holding at most maxBytes in memory
// (DefaultMaxBytes when 0). A non-empty dir enables the disk tier; the
// directory is created if missing.
func NewStore(maxBytes int64, dir string) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
	}
	return &Store{
		maxBytes: maxBytes,
		dir:      dir,
		entries:  make(map[string]*entry),
		lru:      list.New(),
	}, nil
}

// diskPath maps a key to its file. Keys are hex SHA-256 strings, so
// they are safe as file names without escaping.
func (s *Store) diskPath(key string) string {
	return filepath.Join(s.dir, key+".ckpt")
}

// Get returns the checkpoint stored under key. A memory miss consults
// the disk tier (re-admitting a hit into memory). Hit/miss counters
// cover the lookup as a whole, not the tiers.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		data := e.data
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		s.hits.Add(1)
		return data, true
	}
	s.mu.Unlock()
	if s.dir != "" {
		if data, err := os.ReadFile(s.diskPath(key)); err == nil {
			s.admit(key, data)
			s.hits.Add(1)
			return data, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// Put stores data under key, evicting least-recently-used entries to
// stay under the byte cap, and writes through to the disk tier if one
// is configured. An entry larger than the whole cap is still kept (the
// alternative — silently never caching — would hide every hit).
func (s *Store) Put(key string, data []byte) {
	s.admit(key, data)
	if s.dir != "" {
		tmp, err := os.CreateTemp(s.dir, ".ckpt-*")
		if err != nil {
			return // disk tier is best-effort; memory tier already has it
		}
		name := tmp.Name()
		_, werr := tmp.Write(data)
		cerr := tmp.Close()
		if werr != nil || cerr != nil {
			os.Remove(name)
			return
		}
		if err := os.Rename(name, s.diskPath(key)); err != nil {
			os.Remove(name)
		}
	}
}

func (s *Store) admit(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		s.bytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		s.lru.MoveToFront(e.elem)
	} else {
		e := &entry{key: key, data: data}
		e.elem = s.lru.PushFront(e)
		s.entries[key] = e
		s.bytes += int64(len(data))
		s.flight.Recordf("ckpt.admit", "", "", "%s (%d bytes)", shortKey(key), len(data))
	}
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		victim := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, victim.key)
		s.bytes -= int64(len(victim.data))
		s.flight.Recordf("ckpt.evict", "", "", "%s (%d bytes, LRU pressure)",
			shortKey(victim.key), len(victim.data))
	}
}

func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// Hits returns the number of Get calls answered from either tier.
func (s *Store) Hits() uint64 { return s.hits.Load() }

// Misses returns the number of Get calls answered by neither tier.
func (s *Store) Misses() uint64 { return s.misses.Load() }

// Bytes returns the in-memory tier's current size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Len returns the number of in-memory entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// View wraps a store with per-consumer hit/miss counters, so a daemon
// job (or one CLI sweep) can report its own checkpoint behaviour while
// sharing the process-wide store.
type View struct {
	store  *Store
	hits   atomic.Uint64
	misses atomic.Uint64
}

// View returns a new per-consumer view of the store.
func (s *Store) View() *View { return &View{store: s} }

// Get looks up key, counting the outcome on both the view and the
// underlying store.
func (v *View) Get(key string) ([]byte, bool) {
	data, ok := v.store.Get(key)
	if ok {
		v.hits.Add(1)
	} else {
		v.misses.Add(1)
	}
	return data, ok
}

// Put stores data under key in the underlying store.
func (v *View) Put(key string, data []byte) { v.store.Put(key, data) }

// Hits returns this view's hit count.
func (v *View) Hits() uint64 { return v.hits.Load() }

// Misses returns this view's miss count.
func (v *View) Misses() uint64 { return v.misses.Load() }
