package checkpoint

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreBasics(t *testing.T) {
	s, err := NewStore(0, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store hit")
	}
	if s.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses())
	}
	s.Put("a", []byte("hello"))
	got, ok := s.Get("a")
	if !ok || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if s.Hits() != 1 || s.Bytes() != 5 || s.Len() != 1 {
		t.Fatalf("hits=%d bytes=%d len=%d", s.Hits(), s.Bytes(), s.Len())
	}
	// Replacing a key adjusts the byte accounting.
	s.Put("a", []byte("hi"))
	if s.Bytes() != 2 || s.Len() != 1 {
		t.Fatalf("after replace: bytes=%d len=%d", s.Bytes(), s.Len())
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s, err := NewStore(100, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), make([]byte, 30))
	}
	if s.Bytes() > 100 {
		t.Fatalf("store over cap: %d bytes", s.Bytes())
	}
	// The oldest keys were evicted, the newest survive.
	if _, ok := s.Get("k0"); ok {
		t.Fatal("k0 survived eviction")
	}
	if _, ok := s.Get("k9"); !ok {
		t.Fatal("k9 evicted")
	}
	// Touching an entry protects it from the next eviction round.
	s.Get("k7")
	s.Put("new1", make([]byte, 30))
	if _, ok := s.Get("k7"); !ok {
		t.Fatal("recently-used k7 evicted before older entries")
	}
	// An oversized entry is kept anyway (hits beat strict caps).
	s.Put("huge", make([]byte, 500))
	if _, ok := s.Get("huge"); !ok {
		t.Fatal("oversized entry not kept")
	}
}

func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("deadbeef", []byte("payload"))
	if _, err := os.Stat(filepath.Join(dir, "deadbeef.ckpt")); err != nil {
		t.Fatalf("disk tier file missing: %v", err)
	}
	// A second store over the same directory serves the key from disk.
	s2, err := NewStore(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("deadbeef")
	if !ok || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("disk read = %q, %v", got, ok)
	}
	if s2.Hits() != 1 {
		t.Fatalf("disk hit not counted: hits=%d", s2.Hits())
	}
	// No leftover temp files.
	matches, _ := filepath.Glob(filepath.Join(dir, ".ckpt-*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

func TestViewCounters(t *testing.T) {
	s, err := NewStore(0, "")
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := s.View(), s.View()
	v1.Put("k", []byte("x"))
	v1.Get("k")
	v2.Get("nope")
	if v1.Hits() != 1 || v1.Misses() != 0 {
		t.Fatalf("v1 hits=%d misses=%d", v1.Hits(), v1.Misses())
	}
	if v2.Hits() != 0 || v2.Misses() != 1 {
		t.Fatalf("v2 hits=%d misses=%d", v2.Hits(), v2.Misses())
	}
	// The store aggregates across views.
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Fatalf("store hits=%d misses=%d", s.Hits(), s.Misses())
	}
}

func TestContextPlumbing(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context returned a view")
	}
	s, _ := NewStore(0, "")
	v := s.View()
	ctx := NewContext(context.Background(), v)
	if FromContext(ctx) != v {
		t.Fatal("view lost in context round trip")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s, err := NewStore(1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%40)
				if i%3 == 0 {
					s.Put(key, make([]byte, 100))
				} else {
					s.Get(key)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
