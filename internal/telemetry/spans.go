package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"

	"prestores/internal/obs"
)

// WriteSpanTimeline exports a set of distributed-tracing spans as a
// Chrome trace-event JSON artifact, the same format WriteTimeline uses
// for simulator events, so one viewer (Perfetto, chrome://tracing)
// opens both. Layout: each (service, instance) pair is one trace
// "process"; within a process, spans of the same trace share a thread
// derived from the trace ID, so a request's lifecycle reads as one
// horizontal lane. Timestamps are wall-clock microseconds.
//
// The artifact also embeds the raw spans under "spans" so scripted
// consumers (CI assertions, the bench client's cross-process merge)
// can check parent/child structure without parsing trace events.
func WriteSpanTimeline(w io.Writer, spans []obs.Span, dropped int) error {
	bw := bufio.NewWriterSize(w, 1<<16)

	// Stable process numbering: sorted unique (service, instance).
	type proc struct{ service, instance string }
	pids := map[proc]int{}
	var procs []proc
	for _, sp := range spans {
		p := proc{sp.Service, sp.Instance}
		if _, ok := pids[p]; !ok {
			pids[p] = 0
			procs = append(procs, p)
		}
	}
	sort.Slice(procs, func(i, j int) bool {
		if procs[i].service != procs[j].service {
			return procs[i].service < procs[j].service
		}
		return procs[i].instance < procs[j].instance
	})
	for i, p := range procs {
		pids[p] = i
	}

	fmt.Fprintf(bw, `{"displayTimeUnit":"ms","otherData":{"clock":"wall us","droppedSpans":%d},"traceEvents":[`, dropped)
	first := true
	sep := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}

	for i, p := range procs {
		name := p.service
		if p.instance != "" {
			name += " " + p.instance
		}
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			i, strconv.Quote(name))
	}

	for i := range spans {
		sp := &spans[i]
		sep()
		fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%s,"args":{"trace_id":%q,"span_id":%q`,
			pids[proc{sp.Service, sp.Instance}], traceTID(sp.Trace),
			sp.Start/1e3, (sp.End-sp.Start)/1e3,
			strconv.Quote(sp.Name), sp.Trace.String(), sp.ID.String())
		if !sp.Parent.IsZero() {
			fmt.Fprintf(bw, `,"parent_span_id":%q`, sp.Parent.String())
		}
		for _, a := range sp.Attrs {
			fmt.Fprintf(bw, `,%s:%s`, strconv.Quote(a.Key), strconv.Quote(a.Value))
		}
		bw.WriteString(`}}`)
	}

	bw.WriteString(`],"spans":`)
	raw, err := json.Marshal(spans)
	if err != nil {
		return err
	}
	bw.Write(raw)
	bw.WriteString("}\n")
	return bw.Flush()
}

// traceTID derives a stable thread ID from the trace ID so all of one
// request's spans share a lane within their process.
func traceTID(t obs.TraceID) int {
	h := fnv.New32a()
	h.Write(t[:])
	return int(h.Sum32()&0x7fffff) + 1
}
