package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"prestores/internal/sim"
)

const base = uint64(1) << 40 // PMEM window of Machine A

// traceDoc is the subset of the Chrome trace-event format the tests
// inspect.
type traceDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		Clock         string `json:"clock"`
		DroppedEvents uint64 `json:"droppedEvents"`
	} `json:"otherData"`
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Name string         `json:"name"`
	Args map[string]any `json:"args"`
}

// runSmallWorkload drives enough traffic through core 0 to produce
// stores, loads, a fence stall and (after the flush) write-backs.
func runSmallWorkload(m *sim.Machine) {
	c := m.Core(0)
	c.PushFunc("test.writer")
	buf := make([]byte, 256)
	for i := uint64(0); i < 200; i++ {
		c.Write(base+i*256, buf)
	}
	c.Fence()
	for i := uint64(0); i < 50; i++ {
		c.ReadU64(base + i*256)
	}
	c.PopFunc()
	m.FlushCaches()
}

func recordSmallWorkload(t *testing.T, cfg Config) *Recorder {
	t.Helper()
	rec := New(cfg)
	m := sim.MachineA()
	rec.Attach(m)
	runSmallWorkload(m)
	return rec
}

func TestTimelineIsValidTraceEventJSON(t *testing.T) {
	rec := recordSmallWorkload(t, Config{Timeline: true})

	var buf bytes.Buffer
	if err := rec.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("timeline has no events")
	}

	var coreTrack, wbTrack, fenceStall, storeOps, meta bool
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M":
			meta = true
			if e.Name == "thread_name" {
				if n, _ := e.Args["name"].(string); strings.HasPrefix(n, "core ") {
					coreTrack = true
				}
			}
		case e.Name == "write-back":
			wbTrack = true
		case strings.HasSuffix(e.Name, " stall"):
			fenceStall = true
		case e.Name == "store":
			storeOps = true
			if e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("store event with negative time: %+v", e)
			}
			if fn, _ := e.Args["fn"].(string); fn != "test.writer" {
				t.Fatalf("store attributed to %q, want test.writer", fn)
			}
		}
	}
	for name, ok := range map[string]bool{
		"per-core track metadata": coreTrack,
		"write-back events":       wbTrack,
		"fence-stall events":      fenceStall,
		"store ops":               storeOps,
		"metadata events":         meta,
	} {
		if !ok {
			t.Errorf("timeline missing %s", name)
		}
	}
}

func TestTimelineRingOverwritesOldest(t *testing.T) {
	rec := recordSmallWorkload(t, Config{Timeline: true, MaxEvents: 64})

	if got := rec.Events(); got != 64 {
		t.Fatalf("ring holds %d events, want 64", got)
	}
	if rec.Dropped() == 0 {
		t.Fatal("expected dropped events on a full ring")
	}
	var buf bytes.Buffer
	if err := rec.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData.DroppedEvents != rec.Dropped() {
		t.Fatalf("droppedEvents = %d, want %d", doc.OtherData.DroppedEvents, rec.Dropped())
	}
}

func TestLineReportCountsRewritesAndRereads(t *testing.T) {
	rec := New(Config{LineReport: true})
	m := sim.MachineA()
	rec.Attach(m)
	c := m.Core(0)
	c.PushFunc("test.rw")
	c.WriteU64(base, 1)
	c.WriteU64(base, 2) // rewrite of the same line
	c.ReadU64(base)     // re-read after the last write
	c.WriteU64(base+64, 3)
	c.PopFunc()
	m.FlushCaches()

	rep := rec.LineReport(0)
	if rep.LinesTracked != 2 {
		t.Fatalf("tracked %d lines, want 2", rep.LinesTracked)
	}
	byAddr := map[uint64]LineStat{}
	for _, s := range rep.Lines {
		byAddr[s.Addr] = s
	}
	hot := byAddr[base]
	if hot.Writes != 2 || hot.Rewrites != 1 || hot.Rereads != 1 {
		t.Fatalf("line %#x: writes=%d rewrites=%d rereads=%d, want 2/1/1",
			base, hot.Writes, hot.Rewrites, hot.Rereads)
	}
	if hot.NearRewrites != 1 || hot.NearRereads != 1 {
		t.Fatalf("line %#x: near rewrites=%d rereads=%d, want 1/1",
			base, hot.NearRewrites, hot.NearRereads)
	}
	cold := byAddr[base+64]
	if cold.Writes != 1 || cold.Rewrites != 0 || cold.Rereads != 0 {
		t.Fatalf("line %#x: writes=%d rewrites=%d rereads=%d, want 1/0/0",
			base+64, cold.Writes, cold.Rewrites, cold.Rereads)
	}
	// Both dirty lines are flushed: the device receives two full lines
	// against 24 application bytes.
	if rep.TotalDeviceWriteBytes != 2*64 {
		t.Fatalf("device write bytes = %d, want 128", rep.TotalDeviceWriteBytes)
	}
	if rep.TotalAppWriteBytes != 24 {
		t.Fatalf("app write bytes = %d, want 24", rep.TotalAppWriteBytes)
	}
	if rep.WriteAmp == 0 {
		t.Fatal("write amplification not computed")
	}

	var txt bytes.Buffer
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cache-line attribution report", "write amplification", "hottest"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}
}

func TestLineTableBounded(t *testing.T) {
	rec := New(Config{LineReport: true, MaxLines: 4})
	m := sim.MachineA()
	rec.Attach(m)
	c := m.Core(0)
	for i := uint64(0); i < 16; i++ {
		c.WriteU64(base+i*64, i)
	}
	rep := rec.LineReport(0)
	if rep.LinesTracked != 4 {
		t.Fatalf("tracked %d lines, want 4 (bounded)", rep.LinesTracked)
	}
	if rep.DroppedLines != 12 {
		t.Fatalf("dropped %d lines, want 12", rep.DroppedLines)
	}
}

// TestDisabledHotPathAllocatesNothing is the pay-as-you-go guard: with
// no recorder attached the store/load path must not allocate, keeping
// the simulator's 0 allocs/op property with telemetry compiled in.
func TestDisabledHotPathAllocatesNothing(t *testing.T) {
	m := sim.MachineA()
	c := m.Core(0)
	buf := make([]byte, 64)
	// Warm the caches and any lazily grown simulator state.
	for i := uint64(0); i < 64; i++ {
		c.Write(base+i*64, buf)
		c.ReadU64(base + i*64)
	}
	allocs := testing.AllocsPerRun(200, func() {
		c.Write(base, buf)
		c.ReadU64(base)
		c.Fence()
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.1f objects/op with telemetry disabled, want 0", allocs)
	}
}

// TestObserveMachinesRegistry checks the global attach path prestore-bench
// uses: machines built after registration are observed, cancel stops it.
func TestObserveMachinesRegistry(t *testing.T) {
	rec := New(Config{Timeline: true})
	cancel := sim.ObserveMachines(rec.Attach)
	m := sim.MachineA()
	m.Core(0).WriteU64(base, 7)
	if rec.Events() == 0 {
		t.Fatal("machine built after ObserveMachines was not observed")
	}
	cancel()
	before := len(rec.machines)
	sim.MachineA()
	if got := len(rec.machines); got != before {
		t.Fatalf("machine observed after cancel: %d -> %d attaches", before, got)
	}
}
