package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"prestores/internal/obs"
)

func TestWriteSpanTimeline(t *testing.T) {
	trace := obs.NewTraceID()
	root := obs.NewSpanID()
	child := obs.NewSpanID()
	now := time.Now().UnixNano()
	spans := []obs.Span{
		{Trace: trace, ID: root, Name: "job", Service: "prestored", Instance: ":1",
			Start: now, End: now + int64(5*time.Millisecond)},
		{Trace: trace, ID: child, Parent: root, Name: "run", Service: "prestored", Instance: ":1",
			Start: now + int64(time.Millisecond), End: now + int64(4*time.Millisecond),
			Attrs: []obs.Attr{obs.KV("kind", "experiment")}},
		{Trace: trace, ID: obs.NewSpanID(), Name: "submit", Service: "bench-client",
			Start: now, End: now + int64(time.Millisecond)},
	}

	var buf bytes.Buffer
	if err := WriteSpanTimeline(&buf, spans, 2); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		OtherData struct {
			DroppedSpans int `json:"droppedSpans"`
		} `json:"otherData"`
		TraceEvents []map[string]any `json:"traceEvents"`
		Spans       []obs.Span       `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("artifact not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.OtherData.DroppedSpans != 2 {
		t.Fatalf("droppedSpans = %d", doc.OtherData.DroppedSpans)
	}
	if len(doc.Spans) != 3 {
		t.Fatalf("raw spans = %d", len(doc.Spans))
	}
	if doc.Spans[1].Parent != root {
		t.Fatal("raw span parent lost")
	}

	var meta, slices int
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			slices++
			pids[ev["pid"].(float64)] = true
			args := ev["args"].(map[string]any)
			if args["trace_id"] != trace.String() {
				t.Fatalf("trace_id = %v", args["trace_id"])
			}
			if ev["name"] == "run" {
				if args["parent_span_id"] != root.String() {
					t.Fatalf("parent_span_id = %v", args["parent_span_id"])
				}
				if args["kind"] != "experiment" {
					t.Fatalf("attr lost: %v", args)
				}
				if ev["dur"].(float64) != 3000 { // 3ms in us
					t.Fatalf("dur = %v", ev["dur"])
				}
			}
		}
	}
	// Two processes (bench-client, prestored :1), three slices.
	if meta != 2 || slices != 3 || len(pids) != 2 {
		t.Fatalf("meta=%d slices=%d pids=%d", meta, slices, len(pids))
	}
	// bench-client sorts before prestored → pid 0.
	if !strings.Contains(buf.String(), `{"ph":"M","pid":0,"name":"process_name","args":{"name":"bench-client"}}`) {
		t.Fatalf("process naming wrong:\n%s", buf.String())
	}
}

func TestWriteSpanTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpanTimeline(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty artifact invalid: %v\n%s", err, buf.String())
	}
}
