// Package telemetry is the simulator's opt-in observability layer. A
// Recorder subscribes to a machine's instruction stream (sim.Hook) and
// memory-system stream (sim.MemHook) and turns a run into two
// artifacts:
//
//   - a simulated-cycle timeline — per-core op tracks plus derived
//     tracks for cache fills, evictions, write-backs, store-buffer
//     drains, fence stalls and pre-store ops — exported as Chrome
//     trace-event JSON loadable in Perfetto (timeline.go), and
//   - a per-cache-line attribution report — write counts, re-write and
//     re-read distances, and device-level write amplification per
//     address bucket — reproducing DirtBuster step 3's decision inputs
//     online instead of from an offline trace (linereport.go).
//
// The recorder is pay-as-you-go: nothing here runs unless hooks are
// installed, the timeline is a fixed-capacity ring (oldest events are
// overwritten, with a drop counter), function names are interned to
// integer IDs, and the line table is bounded. With no recorder attached
// the simulator's fast path is a nil check.
package telemetry

import (
	"sync"

	"prestores/internal/sim"
)

// Config sizes a Recorder. Zero values select defaults.
type Config struct {
	// Timeline enables ring-buffered event capture for WriteTimeline.
	Timeline bool
	// LineReport enables per-line and per-bucket aggregation.
	LineReport bool
	// MaxEvents caps the timeline ring (default 131072 events, ~7 MiB).
	// When full, the oldest events are overwritten and counted dropped:
	// the timeline shows the run's tail.
	MaxEvents int
	// BucketBytes is the write-amplification bucket size (default 64 KiB).
	BucketBytes uint64
	// MaxLines caps the line table (default 1<<20). Further lines are
	// dropped and counted.
	MaxLines int
	// NearRewrite / NearReread are the distance thresholds (in
	// instructions) under which a re-write / re-read counts as "near" —
	// DirtBuster's pre-store decision inputs. Defaults match its
	// thresholds (4000 / 100000).
	NearRewrite uint64
	NearReread  uint64
}

func (c *Config) fillDefaults() {
	if c.MaxEvents == 0 {
		c.MaxEvents = 131072
	}
	if c.BucketBytes == 0 {
		c.BucketBytes = 64 << 10
	}
	if c.MaxLines == 0 {
		c.MaxLines = 1 << 20
	}
	if c.NearRewrite == 0 {
		c.NearRewrite = 4000
	}
	if c.NearReread == 0 {
		c.NearReread = 100_000
	}
}

// entry is one ring slot. kind encodes sim.OpKind directly (0..) and
// sim.MemEventKind offset by memKindBase.
type entry struct {
	start uint64
	dur   uint64
	addr  uint64
	size  uint64
	fn    uint32
	mach  uint16
	core  int16
	kind  uint8
}

const memKindBase = 100

// machineState is the recorder's view of one attached machine.
type machineState struct {
	idx      uint16
	name     string
	lineSize uint64
	cores    int
}

type lineKey struct {
	mach uint16
	line uint64
}

// lineRec mirrors DirtBuster's per-line record (its lineInfo), minus
// the sequentiality-context exclusion: telemetry has no notion of a
// write continuing a sequential streak, so streak-internal re-writes
// are counted here and excluded there.
type lineRec struct {
	writes       uint64
	rewrites     uint64
	rewriteSum   uint64
	nearRewrites uint64
	rereads      uint64
	rereadSum    uint64
	nearRereads  uint64
	lastWrite    uint64
	written      bool
}

type bucketKey struct {
	mach uint16
	base uint64
}

type bucketRec struct {
	appWriteBytes    uint64
	deviceWriteBytes uint64
	deviceReadBytes  uint64
}

// Recorder captures telemetry from one or more machines. Attach it to
// each machine whose run should be observed; all captured data lands in
// this one recorder, keyed by attach order. The hook path takes the
// recorder lock, so attaching one recorder to machines driven from
// multiple goroutines is safe (but serializes them — run observed
// experiments with a single worker).
type Recorder struct {
	cfg Config

	mu       sync.Mutex
	machines []*machineState

	ring    []entry
	head    int // oldest entry once the ring is full
	dropped uint64

	fnIDs map[string]uint32
	fns   []string

	lines        map[lineKey]*lineRec
	droppedLines uint64
	buckets      map[bucketKey]*bucketRec
}

// New builds a recorder. At least one of cfg.Timeline / cfg.LineReport
// should be set, or Attach records nothing.
func New(cfg Config) *Recorder {
	cfg.fillDefaults()
	r := &Recorder{cfg: cfg, fnIDs: map[string]uint32{"": 0}, fns: []string{""}}
	if cfg.Timeline {
		r.ring = make([]entry, 0, cfg.MaxEvents)
	}
	if cfg.LineReport {
		r.lines = make(map[lineKey]*lineRec)
		r.buckets = make(map[bucketKey]*bucketRec)
	}
	return r
}

// Attach subscribes the recorder to m's op and memory-system streams,
// replacing any previously installed hooks. Call before running the
// workload.
func (r *Recorder) Attach(m *sim.Machine) {
	r.mu.Lock()
	ms := &machineState{
		idx:      uint16(len(r.machines)),
		name:     m.Name(),
		lineSize: m.LineSize(),
		cores:    m.Cores(),
	}
	r.machines = append(r.machines, ms)
	r.mu.Unlock()
	if !r.cfg.Timeline && !r.cfg.LineReport {
		return
	}
	m.SetHook(func(ev sim.Event, c *sim.Core) { r.onOp(ms, ev, c) })
	m.SetMemHook(func(ev sim.MemEvent) { r.onMem(ms, ev) })
}

// Dropped returns how many timeline events were overwritten because the
// ring filled.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the number of timeline events currently held.
func (r *Recorder) Events() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

func (r *Recorder) onOp(ms *machineState, ev sim.Event, c *sim.Core) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.Timeline {
		// The event's cost is the cycles it advanced the core clock, and
		// the clock has already advanced: the op spans [now-cost, now].
		now := uint64(c.Now())
		r.push(entry{
			start: now - ev.Cost,
			dur:   ev.Cost,
			addr:  ev.Addr,
			size:  ev.Size,
			fn:    r.intern(ev.Fn),
			mach:  ms.idx,
			core:  int16(ev.Core),
			kind:  uint8(ev.Kind),
		})
	}
	if r.cfg.LineReport {
		switch ev.Kind {
		case sim.OpStore, sim.OpStoreNT:
			r.noteWrite(ms, ev)
		case sim.OpLoad:
			r.noteRead(ms, ev)
		}
	}
}

func (r *Recorder) onMem(ms *machineState, ev sim.MemEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.Timeline {
		r.push(entry{
			start: uint64(ev.Start),
			dur:   uint64(ev.End - ev.Start),
			addr:  ev.Addr,
			size:  ev.Size,
			mach:  ms.idx,
			core:  int16(ev.Core),
			kind:  memKindBase + uint8(ev.Kind),
		})
	}
	if r.cfg.LineReport {
		switch ev.Kind {
		case sim.MemWriteBack:
			r.bucketFor(ms, ev.Addr).deviceWriteBytes += ev.Size
		case sim.MemFill, sim.MemPrefetch:
			r.bucketFor(ms, ev.Addr).deviceReadBytes += ev.Size
		}
	}
}

func (r *Recorder) push(e entry) {
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
		return
	}
	r.ring[r.head] = e
	r.head++
	if r.head == len(r.ring) {
		r.head = 0
	}
	r.dropped++
}

// replay visits held timeline events oldest-first.
func (r *Recorder) replay(fn func(e entry)) {
	for i := r.head; i < len(r.ring); i++ {
		fn(r.ring[i])
	}
	for i := 0; i < r.head; i++ {
		fn(r.ring[i])
	}
}

func (r *Recorder) intern(fn string) uint32 {
	if id, ok := r.fnIDs[fn]; ok {
		return id
	}
	id := uint32(len(r.fns))
	r.fnIDs[fn] = id
	r.fns = append(r.fns, fn)
	return id
}

// noteWrite updates per-line write records, mirroring DirtBuster's
// onWrite: distances are instruction counts, a touch with a smaller
// counter (another core) carries no distance, and the event's Instr is
// applied to every line a multi-line write spans.
func (r *Recorder) noteWrite(ms *machineState, ev sim.Event) {
	end := ev.Addr + ev.Size
	for line := ev.Addr &^ (ms.lineSize - 1); line < end; line += ms.lineSize {
		li := r.lineFor(ms, line)
		if li == nil {
			continue
		}
		if li.written && ev.Instr >= li.lastWrite {
			d := ev.Instr - li.lastWrite
			li.rewrites++
			li.rewriteSum += d
			if d <= r.cfg.NearRewrite {
				li.nearRewrites++
			}
		}
		li.writes++
		li.written = true
		li.lastWrite = ev.Instr

		// Write-amplification numerator: bytes the program wrote into
		// this line (vs. whole lines the device will receive).
		lo, hi := ev.Addr, end
		if lo < line {
			lo = line
		}
		if hi > line+ms.lineSize {
			hi = line + ms.lineSize
		}
		r.bucketFor(ms, line).appWriteBytes += hi - lo
	}
}

// noteRead updates re-read distances for previously written lines,
// mirroring DirtBuster's onRead (lines never written are not tracked).
func (r *Recorder) noteRead(ms *machineState, ev sim.Event) {
	end := ev.Addr + ev.Size
	for line := ev.Addr &^ (ms.lineSize - 1); line < end; line += ms.lineSize {
		li, ok := r.lines[lineKey{ms.idx, line}]
		if !ok {
			continue
		}
		if li.written && ev.Instr >= li.lastWrite {
			d := ev.Instr - li.lastWrite
			li.rereads++
			li.rereadSum += d
			if d <= r.cfg.NearReread {
				li.nearRereads++
			}
		}
	}
}

func (r *Recorder) lineFor(ms *machineState, line uint64) *lineRec {
	k := lineKey{ms.idx, line}
	if li, ok := r.lines[k]; ok {
		return li
	}
	if len(r.lines) >= r.cfg.MaxLines {
		r.droppedLines++
		return nil
	}
	li := &lineRec{}
	r.lines[k] = li
	return li
}

func (r *Recorder) bucketFor(ms *machineState, addr uint64) *bucketRec {
	k := bucketKey{ms.idx, addr - addr%r.cfg.BucketBytes}
	if b, ok := r.buckets[k]; ok {
		return b
	}
	b := &bucketRec{}
	r.buckets[k] = b
	return b
}
