package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// LineStat is one cache line's attribution record.
type LineStat struct {
	Machine int    `json:"machine"`
	Addr    uint64 `json:"addr"`
	Writes  uint64 `json:"writes"`
	// Rewrites counts writes to an already-written line; the distance
	// sums are in instructions, DirtBuster's distance unit.
	Rewrites       uint64 `json:"rewrites"`
	RewriteDistSum uint64 `json:"rewrite_dist_sum"`
	NearRewrites   uint64 `json:"near_rewrites"`
	Rereads        uint64 `json:"rereads"`
	RereadDistSum  uint64 `json:"reread_dist_sum"`
	NearRereads    uint64 `json:"near_rereads"`
}

// AvgRewriteDist returns the mean re-write distance in instructions.
func (s LineStat) AvgRewriteDist() float64 {
	if s.Rewrites == 0 {
		return 0
	}
	return float64(s.RewriteDistSum) / float64(s.Rewrites)
}

// AvgRereadDist returns the mean re-read distance in instructions.
func (s LineStat) AvgRereadDist() float64 {
	if s.Rereads == 0 {
		return 0
	}
	return float64(s.RereadDistSum) / float64(s.Rereads)
}

// BucketStat aggregates device-level traffic for one address bucket.
// WriteAmp is device write bytes over application write bytes — the
// device-level write amplification the paper's Figure 3 sweeps.
type BucketStat struct {
	Machine          int     `json:"machine"`
	Base             uint64  `json:"base"`
	AppWriteBytes    uint64  `json:"app_write_bytes"`
	DeviceWriteBytes uint64  `json:"device_write_bytes"`
	DeviceReadBytes  uint64  `json:"device_read_bytes"`
	WriteAmp         float64 `json:"write_amp"`
}

// LineReport is the full attribution report.
type LineReport struct {
	LineSize    uint64   `json:"line_size"`
	BucketBytes uint64   `json:"bucket_bytes"`
	Machines    []string `json:"machines"`

	LinesTracked uint64 `json:"lines_tracked"`
	DroppedLines uint64 `json:"dropped_lines"`

	TotalAppWriteBytes    uint64  `json:"total_app_write_bytes"`
	TotalDeviceWriteBytes uint64  `json:"total_device_write_bytes"`
	TotalDeviceReadBytes  uint64  `json:"total_device_read_bytes"`
	WriteAmp              float64 `json:"write_amp"`

	// Lines is sorted by writes (descending), then machine and address.
	Lines []LineStat `json:"lines"`
	// Buckets is sorted by machine then base address.
	Buckets []BucketStat `json:"buckets"`
}

// LineReport builds the attribution report. maxLines caps the per-line
// list to the most-written lines (<= 0 keeps every tracked line).
func (r *Recorder) LineReport(maxLines int) *LineReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &LineReport{
		BucketBytes:  r.cfg.BucketBytes,
		LinesTracked: uint64(len(r.lines)),
		DroppedLines: r.droppedLines,
	}
	for _, ms := range r.machines {
		rep.Machines = append(rep.Machines, ms.name)
		if ms.lineSize > rep.LineSize {
			rep.LineSize = ms.lineSize
		}
	}
	for k, li := range r.lines {
		rep.Lines = append(rep.Lines, LineStat{
			Machine:        int(k.mach),
			Addr:           k.line,
			Writes:         li.writes,
			Rewrites:       li.rewrites,
			RewriteDistSum: li.rewriteSum,
			NearRewrites:   li.nearRewrites,
			Rereads:        li.rereads,
			RereadDistSum:  li.rereadSum,
			NearRereads:    li.nearRereads,
		})
	}
	sort.Slice(rep.Lines, func(i, j int) bool {
		a, b := rep.Lines[i], rep.Lines[j]
		if a.Writes != b.Writes {
			return a.Writes > b.Writes
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.Addr < b.Addr
	})
	if maxLines > 0 && len(rep.Lines) > maxLines {
		rep.Lines = rep.Lines[:maxLines]
	}
	for k, b := range r.buckets {
		bs := BucketStat{
			Machine:          int(k.mach),
			Base:             k.base,
			AppWriteBytes:    b.appWriteBytes,
			DeviceWriteBytes: b.deviceWriteBytes,
			DeviceReadBytes:  b.deviceReadBytes,
		}
		if bs.AppWriteBytes > 0 {
			bs.WriteAmp = float64(bs.DeviceWriteBytes) / float64(bs.AppWriteBytes)
		}
		rep.TotalAppWriteBytes += bs.AppWriteBytes
		rep.TotalDeviceWriteBytes += bs.DeviceWriteBytes
		rep.TotalDeviceReadBytes += bs.DeviceReadBytes
		rep.Buckets = append(rep.Buckets, bs)
	}
	sort.Slice(rep.Buckets, func(i, j int) bool {
		a, b := rep.Buckets[i], rep.Buckets[j]
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.Base < b.Base
	})
	if rep.TotalAppWriteBytes > 0 {
		rep.WriteAmp = float64(rep.TotalDeviceWriteBytes) / float64(rep.TotalAppWriteBytes)
	}
	return rep
}

// WriteJSON renders the report as indented JSON. The encoding is
// stable: struct field order is fixed, Lines and Buckets are sorted by
// the total orders LineReport establishes, and no timestamps or host
// state leak in — equal reports render equal bytes.
func (rep *LineReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// DecodeLineReport parses a report previously rendered by WriteJSON,
// strictly (unknown fields are errors — a skew between daemon and
// client versions fails loudly instead of silently dropping fields).
// This is how the autotuner consumes a probe run's report when the
// probe executed on a remote shard.
func DecodeLineReport(data []byte) (*LineReport, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep LineReport
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("telemetry: decoding line report: %w", err)
	}
	return &rep, nil
}

// LineTotals aggregates the per-line attribution columns over every
// line in the report. The autotuner's seeding rules consume these
// directly (rewrite/re-read frequency and nearness) instead of
// re-deriving them from the raw line list.
type LineTotals struct {
	Writes         uint64 `json:"writes"`
	Rewrites       uint64 `json:"rewrites"`
	RewriteDistSum uint64 `json:"rewrite_dist_sum"`
	NearRewrites   uint64 `json:"near_rewrites"`
	Rereads        uint64 `json:"rereads"`
	RereadDistSum  uint64 `json:"reread_dist_sum"`
	NearRereads    uint64 `json:"near_rereads"`
}

// AvgRewriteDist returns the mean re-write distance in instructions.
func (t LineTotals) AvgRewriteDist() float64 {
	if t.Rewrites == 0 {
		return 0
	}
	return float64(t.RewriteDistSum) / float64(t.Rewrites)
}

// AvgRereadDist returns the mean re-read distance in instructions.
func (t LineTotals) AvgRereadDist() float64 {
	if t.Rereads == 0 {
		return 0
	}
	return float64(t.RereadDistSum) / float64(t.Rereads)
}

// Totals sums the attribution columns over rep.Lines.
func (rep *LineReport) Totals() LineTotals {
	var t LineTotals
	for _, s := range rep.Lines {
		t.Writes += s.Writes
		t.Rewrites += s.Rewrites
		t.RewriteDistSum += s.RewriteDistSum
		t.NearRewrites += s.NearRewrites
		t.Rereads += s.Rereads
		t.RereadDistSum += s.RereadDistSum
		t.NearRereads += s.NearRereads
	}
	return t
}

// WriteText renders the report for humans: a traffic summary, the
// hottest lines, and the per-bucket write-amplification table.
func (rep *LineReport) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "cache-line attribution report\n")
	fmt.Fprintf(w, "  line size          %d B, bucket size %d B\n", rep.LineSize, rep.BucketBytes)
	fmt.Fprintf(w, "  lines tracked      %d (dropped %d)\n", rep.LinesTracked, rep.DroppedLines)
	fmt.Fprintf(w, "  app writes         %d B\n", rep.TotalAppWriteBytes)
	fmt.Fprintf(w, "  device writes      %d B\n", rep.TotalDeviceWriteBytes)
	fmt.Fprintf(w, "  device reads       %d B\n", rep.TotalDeviceReadBytes)
	fmt.Fprintf(w, "  write amplification %.2fx\n", rep.WriteAmp)

	const topLines = 20
	n := len(rep.Lines)
	if n > topLines {
		n = topLines
	}
	if n > 0 {
		fmt.Fprintf(w, "\nhottest %d of %d lines (by writes):\n", n, len(rep.Lines))
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  machine\taddr\twrites\trewrites\tavg rw dist\tnear rw\trereads\tavg rr dist\tnear rr")
		for _, s := range rep.Lines[:n] {
			fmt.Fprintf(tw, "  m%d\t0x%x\t%d\t%d\t%.0f\t%d\t%d\t%.0f\t%d\n",
				s.Machine, s.Addr, s.Writes, s.Rewrites, s.AvgRewriteDist(),
				s.NearRewrites, s.Rereads, s.AvgRereadDist(), s.NearRereads)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(rep.Buckets) > 0 {
		fmt.Fprintf(w, "\nwrite amplification by %d B address bucket:\n", rep.BucketBytes)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  machine\tbucket\tapp B\tdevice wr B\tdevice rd B\twrite amp")
		for _, b := range rep.Buckets {
			amp := "-"
			if b.AppWriteBytes > 0 {
				amp = fmt.Sprintf("%.2fx", b.WriteAmp)
			}
			fmt.Fprintf(tw, "  m%d\t0x%x\t%d\t%d\t%d\t%s\n",
				b.Machine, b.Base, b.AppWriteBytes, b.DeviceWriteBytes, b.DeviceReadBytes, amp)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
