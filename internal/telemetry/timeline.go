package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"prestores/internal/sim"
)

// Timeline track layout. Each attached machine is one trace "process"
// (pid = attach index); its cores are threads 1..N and the derived
// memory-system tracks live on fixed thread IDs above tidDerived so
// they group below the core tracks in Perfetto.
const (
	tidDerived    = 100
	tidWriteBacks = tidDerived + iota - 1
	tidFills
	tidEvictions
	tidPrefetches
	tidSBDrain
	tidFenceStall
	tidPrestores
)

// derivedTracks names the fixed derived-track thread IDs.
var derivedTracks = []struct {
	tid  int
	name string
}{
	{tidWriteBacks, "write-backs"},
	{tidFills, "fills"},
	{tidEvictions, "evictions"},
	{tidPrefetches, "prefetches"},
	{tidSBDrain, "sb-drain stalls"},
	{tidFenceStall, "fence stalls"},
	{tidPrestores, "prestores"},
}

// memTID maps a memory-event kind to its derived track.
func memTID(k sim.MemEventKind) int {
	switch k {
	case sim.MemWriteBack:
		return tidWriteBacks
	case sim.MemFill:
		return tidFills
	case sim.MemEvict:
		return tidEvictions
	case sim.MemPrefetch:
		return tidPrefetches
	case sim.MemSBDrain:
		return tidSBDrain
	default:
		return tidDerived
	}
}

// WriteTimeline exports the held events as Chrome trace-event JSON (the
// format Perfetto and chrome://tracing load). Timestamps are simulated
// cycles rendered as microseconds: 1 µs on the timeline is 1 simulated
// cycle.
func (r *Recorder) WriteTimeline(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, `{"displayTimeUnit":"ms","otherData":{"clock":"simulated cycles as us","droppedEvents":%d},"traceEvents":[`, r.dropped)
	first := true
	sep := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}

	// Track metadata: process per machine, thread per core plus the
	// derived memory-system tracks.
	for _, ms := range r.machines {
		name := ms.name
		if name == "" {
			name = "machine"
		}
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			ms.idx, strconv.Quote(fmt.Sprintf("m%d %s", ms.idx, name)))
		for c := 0; c < ms.cores; c++ {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"core %d"}}`,
				ms.idx, c+1, c)
		}
		for _, t := range derivedTracks {
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				ms.idx, t.tid, strconv.Quote(t.name))
		}
	}

	emitX := func(pid uint16, tid int, name string, e entry, withFn bool) {
		sep()
		fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%s,"args":{"addr":"0x%x","size":%d`,
			pid, tid, e.start, e.dur, strconv.Quote(name), e.addr, e.size)
		if withFn && e.fn != 0 {
			fmt.Fprintf(bw, `,"fn":%s`, strconv.Quote(r.fns[e.fn]))
		}
		bw.WriteString(`}}`)
	}

	r.replay(func(e entry) {
		if e.kind >= memKindBase {
			k := sim.MemEventKind(e.kind - memKindBase)
			emitX(e.mach, memTID(k), k.String(), e, false)
			return
		}
		k := sim.OpKind(e.kind)
		tid := int(e.core) + 1
		switch k {
		case sim.OpFuncEnter, sim.OpFuncExit:
			// Function boundaries become instants, not B/E slices: the
			// ring may have overwritten one half of a pair, and trace
			// viewers reject unbalanced nesting.
			sep()
			fmt.Fprintf(bw, `{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d,"name":%s}`,
				e.mach, tid, e.start, strconv.Quote(k.String()+" "+r.fns[e.fn]))
			return
		}
		emitX(e.mach, tid, k.String(), e, true)
		// Fan-outs: ordering ops that stalled also appear on the
		// fence-stall track, pre-stores on the prestore track — the
		// derived views the paper's figures aggregate over.
		if k.IsFenceSemantics() && e.dur > 0 {
			emitX(e.mach, tidFenceStall, k.String()+" stall", e, true)
		}
		if k == sim.OpPrestoreClean || k == sim.OpPrestoreDemote {
			emitX(e.mach, tidPrestores, k.String(), e, true)
		}
	})

	bw.WriteString("]}\n")
	return bw.Flush()
}
