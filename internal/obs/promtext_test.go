package obs

import (
	"strings"
	"testing"
)

const sampleExposition = `# HELP prestored_jobs_completed_total Jobs finished successfully.
# TYPE prestored_jobs_completed_total counter
prestored_jobs_completed_total 42
# HELP prestored_jobs_running Jobs currently running.
# TYPE prestored_jobs_running gauge
prestored_jobs_running 3
# HELP prestored_queue_wait_seconds Time jobs spend queued.
# TYPE prestored_queue_wait_seconds histogram
prestored_queue_wait_seconds_bucket{le="0.001"} 10
prestored_queue_wait_seconds_bucket{le="+Inf"} 42
prestored_queue_wait_seconds_sum 1.5
prestored_queue_wait_seconds_count 42
prestored_jobs_by_kind_total{kind="experiment",state="done"} 7
`

func TestParseMetrics(t *testing.T) {
	fams, err := ParseMetrics(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	c := byName["prestored_jobs_completed_total"]
	if c == nil || c.Type != "counter" || len(c.Samples) != 1 || c.Samples[0].Value != "42" {
		t.Fatalf("counter family wrong: %+v", c)
	}
	if c.Help == "" {
		t.Fatal("help lost")
	}
	g := byName["prestored_jobs_running"]
	if g == nil || g.Type != "gauge" {
		t.Fatalf("gauge family wrong: %+v", g)
	}
	h := byName["prestored_queue_wait_seconds"]
	if h == nil || h.Type != "histogram" || len(h.Samples) != 4 {
		t.Fatalf("histogram children not folded: %+v", h)
	}
	if byName["prestored_queue_wait_seconds_bucket"] != nil {
		t.Fatal("bucket series became its own family")
	}
	kv := byName["prestored_jobs_by_kind_total"]
	if kv == nil || len(kv.Samples) != 1 {
		t.Fatalf("labeled family wrong: %+v", kv)
	}
	s := kv.Samples[0]
	if s.Label("kind") != "experiment" || s.Label("state") != "done" {
		t.Fatalf("labels wrong: %+v", s.Labels)
	}
	if f, err := s.Float(); err != nil || f != 7 {
		t.Fatalf("Float = %v, %v", f, err)
	}
	// Untyped sample with no TYPE comment defaults to untyped.
	fams2, err := ParseMetrics(strings.NewReader("loose_metric 1\n"))
	if err != nil || len(fams2) != 1 || fams2[0].Type != "untyped" {
		t.Fatalf("untyped default: %+v, %v", fams2, err)
	}
}

func TestParseMetricsRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"metric",                       // no value
		"metric not_a_number\n",        // bad value
		"1metric 2\n",                  // bad name
		"metric{le=\"0.1\" 3\n",        // unterminated labels
		"metric{=\"v\"} 1\n",           // empty label name
		"# TYPE metric widget\nm 1\n",  // unknown type
		"metric{l=\"unterminated} 1\n", // unterminated label value quote
	} {
		if _, err := ParseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed exposition %q", bad)
		}
	}
}

func TestParseLabelEscapes(t *testing.T) {
	in := `m{path="a\"b\\c\nd"} 1` + "\n"
	fams, err := ParseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got := fams[0].Samples[0].Label("path")
	if got != "a\"b\\c\nd" {
		t.Fatalf("escape round-trip: %q", got)
	}
	// Re-emission escapes back.
	var b strings.Builder
	WriteSample(&b, fams[0].Samples[0])
	if b.String() != in {
		t.Fatalf("WriteSample = %q, want %q", b.String(), in)
	}
}

func TestSampleWithLabel(t *testing.T) {
	s := Sample{Name: "m", Labels: []Label{{Name: "kind", Value: "x"}}, Value: "1"}
	s2 := s.WithLabel("shard", "http://a")
	if s2.Label("shard") != "http://a" || s2.Label("kind") != "x" {
		t.Fatalf("labels: %+v", s2.Labels)
	}
	if len(s.Labels) != 1 {
		t.Fatal("WithLabel mutated the receiver")
	}
	// Sorted insertion.
	if s2.Labels[0].Name != "kind" || s2.Labels[1].Name != "shard" {
		t.Fatalf("not sorted: %+v", s2.Labels)
	}
	// Overwrite.
	s3 := s2.WithLabel("shard", "http://b")
	if s3.Label("shard") != "http://b" || len(s3.Labels) != 2 {
		t.Fatalf("overwrite: %+v", s3.Labels)
	}
	var b strings.Builder
	WriteSample(&b, s3)
	if b.String() != `m{kind="x",shard="http://b"} 1`+"\n" {
		t.Fatalf("WriteSample = %q", b.String())
	}
	// Unlabeled write.
	b.Reset()
	WriteSample(&b, Sample{Name: "m", Value: "2"})
	if b.String() != "m 2\n" {
		t.Fatalf("unlabeled WriteSample = %q", b.String())
	}
}
