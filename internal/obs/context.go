package obs

import "context"

type ctxKey int

const (
	ctxKeySpan ctxKey = iota
	ctxKeyTracer
)

// ContextWithSpan attaches a span context: downstream Start calls nest
// under it, outgoing HTTP requests propagate it (InjectContext), and
// the log handler stamps lines with it.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKeySpan, sc)
}

// SpanFromContext returns the active span context, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKeySpan).(SpanContext)
	return sc, ok && sc.Valid()
}

// ContextWithTracer attaches the process tracer so deep layers (the
// checkpoint-aware warm loader, the autotune engine, the chunk
// analysis driver) can open child spans without plumbing a Tracer
// through every signature.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, ctxKeyTracer, t)
}

// TracerFromContext returns the context's tracer (nil when absent —
// and a nil Tracer records nothing, so callers never need to check).
func TracerFromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(ctxKeyTracer).(*Tracer)
	return t
}

// Start opens a child span using the context's tracer. Outside a
// traced request it is a no-op returning ctx unchanged and a nil span
// (safe to End), which is what keeps span call sites out of the local
// CLI path and the simulator hot path entirely.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *ActiveSpan) {
	t := TracerFromContext(ctx)
	if !t.Enabled() {
		return ctx, nil
	}
	return t.Start(ctx, name, attrs...)
}
