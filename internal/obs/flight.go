package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// FlightRecord is one entry in the flight recorder: a timestamped
// state transition (job lifecycle step, shard demotion, cache
// decision, error) kept for postmortems.
type FlightRecord struct {
	Seq    uint64 `json:"seq"`
	Time   int64  `json:"time_unix_nano"`
	Kind   string `json:"kind"`
	Job    string `json:"job,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// FlightRecorder is an always-on bounded ring of recent FlightRecords.
// Writers are lock-free — one atomic increment claims a slot, one
// atomic pointer store publishes the record — so recording from the
// job scheduler's hot paths never contends. Readers (the debug
// endpoint, the panic dump) snapshot whatever is published; a record
// mid-overwrite is simply the newer one.
//
// A nil *FlightRecorder is valid and records nothing.
type FlightRecorder struct {
	mask  uint64
	next  atomic.Uint64
	slots []atomic.Pointer[FlightRecord]
}

// DefaultFlightSlots is the ring size of NewFlightRecorder(0).
const DefaultFlightSlots = 1024

// NewFlightRecorder builds a ring holding at least n records (rounded
// up to a power of two); n <= 0 means DefaultFlightSlots.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightSlots
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &FlightRecorder{
		mask:  uint64(size - 1),
		slots: make([]atomic.Pointer[FlightRecord], size),
	}
}

// Record appends one entry. job, trace and detail may be empty.
func (f *FlightRecorder) Record(kind, job, trace, detail string) {
	if f == nil {
		return
	}
	r := &FlightRecord{
		Time: time.Now().UnixNano(),
		Kind: kind, Job: job, Trace: trace, Detail: detail,
	}
	n := f.next.Add(1) - 1
	r.Seq = n
	f.slots[n&f.mask].Store(r)
}

// Recordf is Record with a formatted detail.
func (f *FlightRecorder) Recordf(kind, job, trace, format string, args ...any) {
	if f == nil {
		return
	}
	f.Record(kind, job, trace, fmt.Sprintf(format, args...))
}

// Snapshot returns the retained records, oldest first.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	out := make([]FlightRecord, 0, len(f.slots))
	for i := range f.slots {
		if r := f.slots[i].Load(); r != nil {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Recorded reports how many records have ever been appended (>= the
// retained count once the ring wraps).
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.next.Load()
}

// flightDump is the JSON shape of a flight-recorder dump.
type flightDump struct {
	Recorded uint64         `json:"recorded"`
	Retained int            `json:"retained"`
	Records  []FlightRecord `json:"records"`
}

// WriteJSON dumps the ring as JSON, oldest record first.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	recs := f.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flightDump{Recorded: f.Recorded(), Retained: len(recs), Records: recs})
}

// WriteText dumps the ring as one line per record, oldest first — the
// stderr postmortem format used on panic and forced shutdown.
func (f *FlightRecorder) WriteText(w io.Writer) {
	recs := f.Snapshot()
	fmt.Fprintf(w, "--- flight recorder: %d retained of %d recorded ---\n", len(recs), f.Recorded())
	for _, r := range recs {
		fmt.Fprintf(w, "%s #%d %s", time.Unix(0, r.Time).UTC().Format(time.RFC3339Nano), r.Seq, r.Kind)
		if r.Job != "" {
			fmt.Fprintf(w, " job=%s", r.Job)
		}
		if r.Trace != "" {
			fmt.Fprintf(w, " trace=%s", r.Trace)
		}
		if r.Detail != "" {
			fmt.Fprintf(w, " %s", r.Detail)
		}
		fmt.Fprintln(w)
	}
}

// DumpOnPanic is meant to be deferred at the top of main: if the
// goroutine is panicking it dumps the ring to w (the black box
// survives the crash) and re-panics so the process still dies loudly.
func (f *FlightRecorder) DumpOnPanic(w io.Writer) {
	if r := recover(); r != nil {
		f.Record("panic", "", "", fmt.Sprint(r))
		f.WriteText(w)
		panic(r)
	}
}
