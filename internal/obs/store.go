package obs

import "sync"

// Store is a bounded in-memory span store: spans grouped by trace,
// oldest trace evicted first, each trace capped so a runaway fan-out
// cannot hold the process hostage. It is the per-process backing of
// GET /v1/jobs/{id}/spans.
type Store struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int
	byTrace   map[TraceID]*traceEntry
	order     []TraceID // insertion order, eviction order
}

type traceEntry struct {
	spans   []Span
	dropped int
}

// DefaultMaxTraces and DefaultMaxSpansPerTrace bound a NewStore(0, 0).
const (
	DefaultMaxTraces        = 1024
	DefaultMaxSpansPerTrace = 4096
)

// NewStore builds a span store; non-positive bounds take the defaults.
func NewStore(maxTraces, maxSpansPerTrace int) *Store {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	return &Store{
		maxTraces: maxTraces,
		maxSpans:  maxSpansPerTrace,
		byTrace:   map[TraceID]*traceEntry{},
	}
}

// Add records one completed span. Spans with a zero trace ID are
// dropped — they cannot be retrieved and would pin the store.
func (s *Store) Add(sp Span) {
	if sp.Trace.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.byTrace[sp.Trace]
	if e == nil {
		e = &traceEntry{}
		s.byTrace[sp.Trace] = e
		s.order = append(s.order, sp.Trace)
		for len(s.order) > s.maxTraces {
			delete(s.byTrace, s.order[0])
			s.order = s.order[1:]
		}
	}
	if len(e.spans) >= s.maxSpans {
		e.dropped++
		return
	}
	e.spans = append(e.spans, sp)
}

// Spans returns a copy of the trace's spans in recording order, plus
// how many were dropped by the per-trace cap.
func (s *Store) Spans(id TraceID) (spans []Span, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.byTrace[id]
	if e == nil {
		return nil, 0
	}
	return append([]Span(nil), e.spans...), e.dropped
}

// Traces reports how many traces the store currently holds.
func (s *Store) Traces() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byTrace)
}

// All returns a copy of every stored span, grouped by trace in trace
// insertion order, plus the total dropped count. It serves whole-store
// exports (a client merging its own spans into one artifact).
func (s *Store) All() (spans []Span, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		e := s.byTrace[id]
		spans = append(spans, e.spans...)
		dropped += e.dropped
	}
	return spans, dropped
}
