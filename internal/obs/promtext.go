package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements a small parser for the Prometheus text
// exposition format (version 0.0.4) — enough for two consumers: the
// coordinator's /metrics federation endpoint (scrape each shard,
// re-label, re-emit) and the metric-hygiene tests (well-formedness,
// types, monotonic counters across scrapes).

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one metric line: name{labels} value.
type Sample struct {
	Name   string
	Labels []Label
	// Value keeps the original text so re-emission is byte-faithful;
	// Float() parses it on demand.
	Value string
}

// Float parses the sample's value.
func (s *Sample) Float() (float64, error) { return strconv.ParseFloat(s.Value, 64) }

// Label returns the value of the named label ("" when absent).
func (s *Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Family groups the samples of one metric name with its metadata.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "histogram", "summary", "untyped"
	Samples []Sample
}

// ParseMetrics parses a text-format exposition into families in
// first-appearance order. Histogram/summary child series (_bucket,
// _sum, _count) are folded into their parent family.
func ParseMetrics(r io.Reader) ([]*Family, error) {
	var (
		order []string
		fams  = map[string]*Family{}
	)
	fam := func(name string) *Family {
		f := fams[name]
		if f == nil {
			f = &Family{Name: name, Type: "untyped"}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(line[1:])
			switch {
			case strings.HasPrefix(rest, "HELP "):
				parts := strings.SplitN(rest[len("HELP "):], " ", 2)
				f := fam(parts[0])
				if len(parts) == 2 {
					f.Help = parts[1]
				}
			case strings.HasPrefix(rest, "TYPE "):
				parts := strings.Fields(rest[len("TYPE "):])
				if len(parts) != 2 {
					return nil, fmt.Errorf("metrics line %d: malformed TYPE comment %q", lineno, line)
				}
				switch parts[1] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("metrics line %d: unknown metric type %q", lineno, parts[1])
				}
				fam(parts[0]).Type = parts[1]
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %v", lineno, err)
		}
		f := fam(familyName(s.Name, fams))
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]*Family, 0, len(order))
	for _, name := range order {
		out = append(out, fams[name])
	}
	return out, nil
}

// familyName maps a sample name onto its family: histogram/summary
// children (_bucket/_sum/_count) belong to the family declared by
// their TYPE comment when one exists.
func familyName(sample string, fams map[string]*Family) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base == sample {
			continue
		}
		if f := fams[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
			return base
		}
	}
	return sample
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := strings.IndexAny(line, "{ \t")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Value = fields[0]
	if _, err := strconv.ParseFloat(s.Value, 64); err != nil {
		return s, fmt.Errorf("bad value %q", s.Value)
	}
	return s, nil
}

func parseLabels(s string) ([]Label, error) {
	var out []Label
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		// Find the closing quote, honouring backslash escapes.
		j := eq + 2
		var val strings.Builder
		for {
			if j >= len(s) {
				return nil, fmt.Errorf("unterminated label value for %q", name)
			}
			c := s[j]
			if c == '\\' && j+1 < len(s) {
				switch s[j+1] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					val.WriteByte(s[j+1])
				}
				j += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			j++
		}
		out = append(out, Label{Name: name, Value: val.String()})
		s = strings.TrimPrefix(strings.TrimSpace(s[j+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' ||
			i > 0 && '0' <= c && c <= '9'
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' ||
			i > 0 && '0' <= c && c <= '9'
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// WithLabel returns a copy of the sample with an extra label inserted
// (keeping label names sorted, which the federation endpoint relies on
// for deterministic output). An existing label of the same name is
// overwritten.
func (s Sample) WithLabel(name, value string) Sample {
	labels := make([]Label, 0, len(s.Labels)+1)
	replaced := false
	for _, l := range s.Labels {
		if l.Name == name {
			labels = append(labels, Label{Name: name, Value: value})
			replaced = true
			continue
		}
		labels = append(labels, l)
	}
	if !replaced {
		labels = append(labels, Label{Name: name, Value: value})
		sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	}
	s.Labels = labels
	return s
}

// WriteSample emits one sample line in exposition format.
func WriteSample(w io.Writer, s Sample) {
	if len(s.Labels) == 0 {
		fmt.Fprintf(w, "%s %s\n", s.Name, s.Value)
		return
	}
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteString("} ")
	b.WriteString(s.Value)
	b.WriteByte('\n')
	io.WriteString(w, b.String())
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
