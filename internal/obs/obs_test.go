package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	tr := NewTraceID()
	if tr.IsZero() {
		t.Fatal("NewTraceID returned zero")
	}
	got, err := ParseTraceID(tr.String())
	if err != nil || got != tr {
		t.Fatalf("ParseTraceID(%q) = %v, %v", tr.String(), got, err)
	}
	sp := NewSpanID()
	if sp.IsZero() {
		t.Fatal("NewSpanID returned zero")
	}
	gotSp, err := ParseSpanID(sp.String())
	if err != nil || gotSp != sp {
		t.Fatalf("ParseSpanID(%q) = %v, %v", sp.String(), gotSp, err)
	}
	if _, err := ParseTraceID("xyz"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}
	if _, err := ParseSpanID(strings.Repeat("0", 16)); err != nil {
		t.Fatalf("ParseSpanID rejected zero hex: %v", err)
	}
}

func TestIDJSONZeroOmits(t *testing.T) {
	sp := Span{Trace: NewTraceID(), ID: NewSpanID(), Name: "x"}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"parent":""`) {
		t.Fatalf("zero parent should render empty: %s", b)
	}
	var back Span
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != sp.Trace || back.ID != sp.ID || !back.Parent.IsZero() {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestTracerNesting(t *testing.T) {
	store := NewStore(0, 0)
	tr := &Tracer{Service: "svc", Instance: "i1", Store: store}
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child", KV("k", "v"))
	child.End()
	root.End()

	spans, dropped := store.Spans(root.Context().Trace)
	if dropped != 0 || len(spans) != 2 {
		t.Fatalf("got %d spans (%d dropped)", len(spans), dropped)
	}
	// child recorded first (ended first)
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("unexpected order: %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatal("child not parented to root")
	}
	if spans[0].Trace != spans[1].Trace {
		t.Fatal("trace IDs differ")
	}
	if spans[0].Attr("k") != "v" {
		t.Fatal("attr lost")
	}
	if spans[0].Service != "svc" || spans[0].Instance != "i1" {
		t.Fatalf("service/instance not stamped: %+v", spans[0])
	}
	if spans[1].Duration() < 0 {
		t.Fatal("negative duration")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	ctx, sp := tr.Start(context.Background(), "x")
	sp.SetAttr("a", "b")
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatal("nil span has valid context")
	}
	// Package-level Start without a tracer in ctx is also a no-op.
	ctx2, sp2 := Start(ctx, "y")
	sp2.End()
	if ctx2 != ctx {
		t.Fatal("no-op Start changed context")
	}
}

func TestRecordExplicitTimes(t *testing.T) {
	store := NewStore(0, 0)
	tr := &Tracer{Service: "svc", Store: store}
	parent := tr.Child(SpanContext{})
	start := time.Now().Add(-time.Second)
	end := time.Now()
	id := tr.Record(parent, "queue.wait", start, end, KV("pos", "3"))
	if id.IsZero() {
		t.Fatal("Record returned zero ID")
	}
	spans, _ := store.Spans(parent.Trace)
	if len(spans) != 1 || spans[0].Parent != parent.Span {
		t.Fatalf("unexpected spans: %+v", spans)
	}
	if d := spans[0].Duration(); d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Fatalf("duration %v not ~1s", d)
	}
}

func TestStoreEviction(t *testing.T) {
	s := NewStore(2, 3)
	traces := []TraceID{NewTraceID(), NewTraceID(), NewTraceID()}
	for _, id := range traces {
		s.Add(Span{Trace: id, ID: NewSpanID(), Name: "a"})
	}
	if s.Traces() != 2 {
		t.Fatalf("want 2 traces after eviction, got %d", s.Traces())
	}
	if spans, _ := s.Spans(traces[0]); spans != nil {
		t.Fatal("oldest trace not evicted")
	}
	// Per-trace cap.
	for i := 0; i < 5; i++ {
		s.Add(Span{Trace: traces[2], ID: NewSpanID(), Name: "b"})
	}
	spans, dropped := s.Spans(traces[2])
	if len(spans) != 3 || dropped != 3 {
		t.Fatalf("want 3 kept / 3 dropped, got %d / %d", len(spans), dropped)
	}
	// Zero-trace spans are ignored.
	s.Add(Span{ID: NewSpanID()})
	if s.Traces() != 2 {
		t.Fatal("zero-trace span stored")
	}
}

func TestInjectExtract(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	h := http.Header{}
	Inject(h, sc)
	got, ok := Extract(h)
	if !ok || got != sc {
		t.Fatalf("Extract = %+v, %v", got, ok)
	}

	// Invalid contexts do not inject.
	h2 := http.Header{}
	Inject(h2, SpanContext{})
	if h2.Get(TraceparentHeader) != "" {
		t.Fatal("invalid context injected")
	}

	for _, bad := range []string{
		"",
		"00-short-bad-01",
		"ff-" + sc.Trace.String() + "-" + sc.Span.String() + "-01", // forbidden version
		"00-" + strings.Repeat("0", 32) + "-" + sc.Span.String() + "-01", // zero trace
		"00-" + sc.Trace.String() + "-" + strings.Repeat("z", 16) + "-01",
	} {
		h := http.Header{}
		if bad != "" {
			h.Set(TraceparentHeader, bad)
		}
		if _, ok := Extract(h); ok {
			t.Fatalf("Extract accepted %q", bad)
		}
	}

	// Future version with extra fields still parses.
	h3 := http.Header{}
	h3.Set(TraceparentHeader, "01-"+sc.Trace.String()+"-"+sc.Span.String()+"-01-extrastuff")
	if got, ok := Extract(h3); !ok || got != sc {
		t.Fatal("future traceparent version rejected")
	}
}

func TestContextPropagation(t *testing.T) {
	store := NewStore(0, 0)
	tr := &Tracer{Service: "svc", Store: store}
	ctx, root := tr.Start(context.Background(), "root")
	// InjectContext picks up the active span.
	h := http.Header{}
	InjectContext(ctx, h)
	sc, ok := Extract(h)
	if !ok || sc != root.Context() {
		t.Fatalf("InjectContext/Extract mismatch: %+v vs %+v", sc, root.Context())
	}
	// TracerFromContext round-trips, so deep layers can Start.
	if TracerFromContext(ctx) != tr {
		t.Fatal("tracer not in context")
	}
	_, child := Start(ctx, "deep")
	child.End()
	root.End()
	if spans, _ := store.Spans(root.Context().Trace); len(spans) != 2 {
		t.Fatalf("deep span not recorded: %d", len(spans))
	}
}

func TestFlightRecorder(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		f.Recordf("state", "job-1", "", "step %d", i)
	}
	recs := f.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("want 4 retained, got %d", len(recs))
	}
	if f.Recorded() != 6 {
		t.Fatalf("want 6 recorded, got %d", f.Recorded())
	}
	// Oldest first, and the two oldest were overwritten.
	if recs[0].Seq != 2 || recs[3].Seq != 5 {
		t.Fatalf("unexpected seqs: %d..%d", recs[0].Seq, recs[3].Seq)
	}
	if recs[3].Detail != "step 5" {
		t.Fatalf("detail lost: %q", recs[3].Detail)
	}

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Recorded uint64         `json:"recorded"`
		Records  []FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Recorded != 6 || len(dump.Records) != 4 {
		t.Fatalf("bad dump: %+v", dump)
	}

	buf.Reset()
	f.WriteText(&buf)
	if !strings.Contains(buf.String(), "job=job-1") || !strings.Contains(buf.String(), "step 5") {
		t.Fatalf("text dump missing fields:\n%s", buf.String())
	}
}

func TestFlightRecorderNilAndConcurrent(t *testing.T) {
	var nilF *FlightRecorder
	nilF.Record("x", "", "", "")
	if nilF.Snapshot() != nil || nilF.Recorded() != 0 {
		t.Fatal("nil recorder not inert")
	}

	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.Record("k", "j", "", "d")
				f.Snapshot()
			}
		}()
	}
	wg.Wait()
	if f.Recorded() != 800 {
		t.Fatalf("lost records: %d", f.Recorded())
	}
	recs := f.Snapshot()
	if len(recs) != 64 {
		t.Fatalf("retained %d, want 64", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatal("snapshot not strictly ordered by seq")
		}
	}
}

func TestLogHandlerStampsTraceIDs(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(NewLogHandler(slog.NewTextHandler(&buf, nil)))
	store := NewStore(0, 0)
	tr := &Tracer{Service: "svc", Store: store}
	ctx, sp := tr.Start(context.Background(), "op")

	log.InfoContext(ctx, "traced line")
	log.Info("untraced line")
	sp.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	want := "trace_id=" + sp.Context().Trace.String()
	if !strings.Contains(lines[0], want) || !strings.Contains(lines[0], "span_id=") {
		t.Fatalf("traced line missing IDs: %s", lines[0])
	}
	if strings.Contains(lines[1], "trace_id=") {
		t.Fatalf("untraced line has trace_id: %s", lines[1])
	}

	// WithAttrs/WithGroup keep the wrapper.
	buf.Reset()
	log.With("a", "b").WithGroup("g").InfoContext(ctx, "still traced", "c", "d")
	if !strings.Contains(buf.String(), "trace_id=") {
		t.Fatalf("wrapped handler lost stamping: %s", buf.String())
	}
}

func TestVersion(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("empty version")
	}
	if gv := GoVersion(); !strings.HasPrefix(gv, "go") {
		t.Fatalf("odd go version %q", gv)
	}
	var buf bytes.Buffer
	PrintVersion(&buf, "prestored")
	if !strings.HasPrefix(buf.String(), "prestored ") {
		t.Fatalf("PrintVersion output %q", buf.String())
	}
}
