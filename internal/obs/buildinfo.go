package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Version reports this binary's build version: the embedded VCS
// revision (short, "-dirty" suffixed when the tree was modified), or
// "dev" when built without VCS stamping (go test, go run).
func Version() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev string
	var dirty bool
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// GoVersion reports the Go toolchain that built this binary.
func GoVersion() string { return runtime.Version() }

// PrintVersion writes the standard "-version" output all the cmd/
// binaries share.
func PrintVersion(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s %s (%s)\n", binary, Version(), GoVersion())
}
