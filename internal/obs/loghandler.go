package obs

import (
	"context"
	"log/slog"
)

// LogHandler wraps another slog.Handler and stamps every record whose
// context carries a span with trace_id/span_id attributes, so a grep
// for one trace ID reconstructs a request's full log story across the
// queue, the worker and the finalizer.
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner.
func NewLogHandler(inner slog.Handler) *LogHandler {
	return &LogHandler{inner: inner}
}

func (h *LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *LogHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sc, ok := SpanFromContext(ctx); ok {
		rec = rec.Clone()
		rec.AddAttrs(
			slog.String("trace_id", sc.Trace.String()),
			slog.String("span_id", sc.Span.String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &LogHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *LogHandler) WithGroup(name string) slog.Handler {
	return &LogHandler{inner: h.inner.WithGroup(name)}
}
