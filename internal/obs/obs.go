// Package obs is the fleet observability layer: request-scoped
// distributed tracing (trace/span IDs minted at API entry points and
// propagated across processes via the W3C traceparent header), a
// bounded in-memory span store per process, an always-on lock-free
// flight recorder of recent state transitions, a slog handler that
// stamps every log line with the active trace/span ID, the Prometheus
// text-exposition parser behind metrics federation, and build-info
// helpers shared by all the binaries.
//
// It is stdlib-only and deliberately decoupled from the simulator:
// spans wrap the *service* layer (queue wait, checkpoint restore,
// guarded runs, autotune eval fan-out, chunk analyses, stream replay),
// never the simulated memory hierarchy, so the hot path keeps its
// zero-allocation guarantee with tracing compiled in.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request across the fleet: minted
// by whichever process sees the request first (bench client,
// coordinator, or worker daemon) and propagated downstream unchanged.
type TraceID [16]byte

// SpanID identifies one operation within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// MarshalText renders the ID as lowercase hex; the zero ID renders as
// the empty string so JSON span dumps omit absent parents cleanly.
func (t TraceID) MarshalText() ([]byte, error) {
	if t.IsZero() {
		return nil, nil
	}
	return []byte(t.String()), nil
}

func (s SpanID) MarshalText() ([]byte, error) {
	if s.IsZero() {
		return nil, nil
	}
	return []byte(s.String()), nil
}

func (t *TraceID) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*t = TraceID{}
		return nil
	}
	id, err := ParseTraceID(string(b))
	if err != nil {
		return err
	}
	*t = id
	return nil
}

func (s *SpanID) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*s = SpanID{}
		return nil
	}
	id, err := ParseSpanID(string(b))
	if err != nil {
		return err
	}
	*s = id
	return nil
}

// ParseTraceID decodes a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("obs: trace ID %q: want 32 hex digits", s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: trace ID %q: %v", s, err)
	}
	return t, nil
}

// ParseSpanID decodes a 16-hex-digit span ID.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("obs: span ID %q: want 16 hex digits", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("obs: span ID %q: %v", s, err)
	}
	return id, nil
}

// idCounter de-duplicates IDs minted in the same crypto/rand failure
// window; it also makes NewSpanID unique under an exhausted entropy
// pool rather than silently colliding.
var idCounter atomic.Uint64

// NewTraceID mints a random trace ID. IDs come from crypto/rand; on
// the (effectively impossible) failure path a timestamp+counter ID
// keeps the service running rather than panicking mid-request.
func NewTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil || t.IsZero() {
		binary.BigEndian.PutUint64(t[:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(t[8:], idCounter.Add(1))
	}
	return t
}

// NewSpanID mints a random span ID.
func NewSpanID() SpanID {
	var s SpanID
	if _, err := rand.Read(s[:]); err != nil || s.IsZero() {
		binary.BigEndian.PutUint64(s[:], uint64(time.Now().UnixNano())^idCounter.Add(1))
	}
	return s
}

// SpanContext is the propagated pair: which trace a request belongs to
// and which span is its current parent.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether both halves are non-zero.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// KV builds an Attr.
func KV(k, v string) Attr { return Attr{Key: k, Value: v} }

// Span is one completed operation: a named wall-clock interval inside
// a trace, optionally parented to another span. Service/Instance name
// the process that recorded it (e.g. "prestored" at ":8345"), which is
// how a merged fleet-wide span dump keeps client, coordinator and
// worker work apart.
type Span struct {
	Trace    TraceID `json:"trace"`
	ID       SpanID  `json:"id"`
	Parent   SpanID  `json:"parent,omitempty"`
	Name     string  `json:"name"`
	Service  string  `json:"service"`
	Instance string  `json:"instance,omitempty"`
	Start    int64   `json:"start_unix_nano"`
	End      int64   `json:"end_unix_nano"`
	Attrs    []Attr  `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute ("" when absent).
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Duration is the span's wall-clock length.
func (s *Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Tracer mints and records spans for one process. A nil Tracer (and a
// Tracer with a nil Store) is valid and records nothing, so call sites
// never need to guard.
type Tracer struct {
	// Service names the process kind ("prestored", "coordinator",
	// "bench-client", ...).
	Service string
	// Instance distinguishes processes of the same service, typically
	// the listen address.
	Instance string
	// Store receives completed spans.
	Store *Store
}

// Enabled reports whether spans recorded through t go anywhere.
func (t *Tracer) Enabled() bool { return t != nil && t.Store != nil }

// Child derives the span context for a new operation under parent:
// same trace with a fresh span ID, or a brand-new trace when the
// parent is absent (this process is the entry point).
func (t *Tracer) Child(parent SpanContext) SpanContext {
	sc := SpanContext{Trace: parent.Trace, Span: NewSpanID()}
	if sc.Trace.IsZero() {
		sc.Trace = NewTraceID()
	}
	return sc
}

// Start opens a span as a child of ctx's span context (or as a new
// trace root) and returns a context carrying the new span, for further
// nesting, plus the live span to End. A disabled tracer returns ctx
// unchanged and a nil span — safe to End.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *ActiveSpan) {
	if !t.Enabled() {
		return ctx, nil
	}
	parent, _ := SpanFromContext(ctx)
	sc := t.Child(parent)
	a := &ActiveSpan{
		t: t,
		sp: Span{
			Trace: sc.Trace, ID: sc.Span, Parent: parent.Span,
			Name: name, Service: t.Service, Instance: t.Instance,
			Start: time.Now().UnixNano(), Attrs: attrs,
		},
	}
	return ContextWithSpan(ContextWithTracer(ctx, t), sc), a
}

// Record adds a completed span under parent with explicit start/end
// times (e.g. a queue wait measured after the fact) and returns its ID.
func (t *Tracer) Record(parent SpanContext, name string, start, end time.Time, attrs ...Attr) SpanID {
	if !t.Enabled() {
		return SpanID{}
	}
	sc := t.Child(parent)
	t.Store.Add(Span{
		Trace: sc.Trace, ID: sc.Span, Parent: parent.Span,
		Name: name, Service: t.Service, Instance: t.Instance,
		Start: start.UnixNano(), End: end.UnixNano(), Attrs: attrs,
	})
	return sc.Span
}

// Add records a fully formed span. Callers that pre-minted the span's
// context (a job's root span, opened at submit and closed at finalize)
// use this instead of Record.
func (t *Tracer) Add(sp Span) {
	if !t.Enabled() {
		return
	}
	if sp.Service == "" {
		sp.Service = t.Service
	}
	if sp.Instance == "" {
		sp.Instance = t.Instance
	}
	t.Store.Add(sp)
}

// ActiveSpan is a started, not-yet-recorded span.
type ActiveSpan struct {
	t  *Tracer
	sp Span
}

// SetAttr annotates the span. Nil-safe.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	a.sp.Attrs = append(a.sp.Attrs, Attr{Key: k, Value: v})
}

// Context returns the span's propagation context (zero when nil).
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.sp.Trace, Span: a.sp.ID}
}

// End stamps the end time and records the span. Nil-safe; recording
// twice is a no-op.
func (a *ActiveSpan) End() {
	if a == nil || a.t == nil {
		return
	}
	a.sp.End = time.Now().UnixNano()
	a.t.Add(a.sp)
	a.t = nil
}
