package obs

import (
	"context"
	"net/http"
)

// TraceparentHeader is the W3C Trace Context header the fleet
// propagates: "00-<32 hex trace>-<16 hex span>-<2 hex flags>". Using
// the standard format means an external tracing proxy in front of the
// daemon joins the same trace for free.
const TraceparentHeader = "traceparent"

// Inject writes sc into h as a traceparent header. Invalid contexts
// write nothing.
func Inject(h http.Header, sc SpanContext) {
	if !sc.Valid() {
		return
	}
	h.Set(TraceparentHeader, "00-"+sc.Trace.String()+"-"+sc.Span.String()+"-01")
}

// InjectContext propagates ctx's span context into h, if any. Call
// sites building outgoing requests use this unconditionally; untraced
// requests stay header-free.
func InjectContext(ctx context.Context, h http.Header) {
	if sc, ok := SpanFromContext(ctx); ok {
		Inject(h, sc)
	}
}

// Extract parses the traceparent header. It accepts any version whose
// first three dash-separated fields look like version, trace ID and
// span ID (the W3C rule: parse what you understand, ignore the rest).
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceparentHeader)
	if len(v) < 2+1+32+1+16 {
		return SpanContext{}, false
	}
	if !isHex(v[:2]) || v[2] != '-' || v[3+32] != '-' {
		return SpanContext{}, false
	}
	if v[:2] == "ff" {
		return SpanContext{}, false // forbidden version
	}
	trace, err := ParseTraceID(v[3 : 3+32])
	if err != nil {
		return SpanContext{}, false
	}
	span, err := ParseSpanID(v[3+32+1 : 3+32+1+16])
	if err != nil {
		return SpanContext{}, false
	}
	sc := SpanContext{Trace: trace, Span: span}
	return sc, sc.Valid()
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}
