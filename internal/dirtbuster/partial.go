// Chunked offline analysis: AnalyzeTrace re-cast as map(chunks) →
// reduce(partials) so DirtBuster scales past traces that fit in one
// buffer and across worker shards.
//
// The pipeline runs in two passes over the chunks, mirroring the
// paper's step structure:
//
//	pass 1  Stats     per-chunk function load/store/cycle aggregates;
//	                  pure sums, so Merge is commutative AND
//	                  associative in any order.
//	        Plan      step 1 (ranking, write-intensity, the monitored
//	                  set) computed once from the merged Stats.
//	pass 2  Partial   per-chunk event tape: the filtered records steps
//	                  2–3 react to (loads, fences, atomics, stores of
//	                  monitored functions). Merge splices tapes by
//	                  chunk-index range — associative by construction.
//	        Analysis  replays the merged tape, in chunk order, through
//	                  the identical state machine the monolithic path
//	                  uses, so the final Report is byte-identical.
//
// The per-line last-touch state of steps 2–3 is deliberately NOT
// summarized per chunk: sequentiality contexts extend across chunk
// boundaries and are matched in replay order, so a compact mergeable
// summary cannot reproduce the exact context structure. The tape keeps
// only the records the analysis consumes — typically a small fraction
// of a chunk — and the reduce replays them, which preserves exactness
// while the expensive work (decode, filtering, step-1 aggregation)
// parallelizes freely.
package dirtbuster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"prestores/internal/core"
	"prestores/internal/profile"
	"prestores/internal/sim"
	"prestores/internal/trace"
)

// FnAgg is one function's pass-1 aggregate.
type FnAgg struct {
	Loads       uint64 `json:"loads"`
	Stores      uint64 `json:"stores"` // includes non-temporal stores and atomics
	Cycles      uint64 `json:"cycles"`
	StoreCycles uint64 `json:"store_cycles"`
}

// Stats is the associative pass-1 aggregate of a set of chunks:
// everything step 1 needs, and nothing order-dependent.
type Stats struct {
	Fns         map[string]FnAgg `json:"fns"`
	TotalCycles uint64           `json:"total_cycles"`
	StoreCycles uint64           `json:"store_cycles"`
	MaxCore     int              `json:"max_core"`
	Records     uint64           `json:"records"`
}

// NewStats returns an empty aggregate.
func NewStats() *Stats { return &Stats{Fns: map[string]FnAgg{}} }

// AddRecord folds one record in. The signature matches the
// trace.Buffer.Replay callback.
func (s *Stats) AddRecord(r trace.Record, fn string) {
	if int(r.Core) > s.MaxCore {
		s.MaxCore = int(r.Core)
	}
	s.Records++
	s.TotalCycles += r.Cost
	a := s.Fns[fn]
	a.Cycles += r.Cost
	switch r.Kind {
	case sim.OpLoad:
		a.Loads++
	case sim.OpStore, sim.OpStoreNT, sim.OpAtomic:
		a.Stores++
		a.StoreCycles += r.Cost
		s.StoreCycles += r.Cost
	}
	s.Fns[fn] = a
}

// AddChunk folds one chunk in.
func (s *Stats) AddChunk(c *trace.Chunk) {
	for _, r := range c.Records {
		s.AddRecord(r, c.FuncName(r.Fn))
	}
}

// Merge folds another aggregate in. All fields are sums or maxima, so
// merge order never matters.
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	for fn, oa := range o.Fns {
		a := s.Fns[fn]
		a.Loads += oa.Loads
		a.Stores += oa.Stores
		a.Cycles += oa.Cycles
		a.StoreCycles += oa.StoreCycles
		s.Fns[fn] = a
	}
	s.TotalCycles += o.TotalCycles
	s.StoreCycles += o.StoreCycles
	if o.MaxCore > s.MaxCore {
		s.MaxCore = o.MaxCore
	}
	s.Records += o.Records
}

// Plan is the step-1 outcome: the function ranking, the
// write-intensity verdict and the monitored set that pass 2 filters
// against. It is JSON-round-trippable so a coordinator can ship it to
// worker shards (Go's shortest-roundtrip float encoding keeps the
// store shares exact).
type Plan struct {
	App            string             `json:"app"`
	Config         Config             `json:"config"`
	LineSize       uint64             `json:"line_size"`
	Cores          int                `json:"cores"`
	StoreShare     float64            `json:"store_share"`
	WriteIntensive bool               `json:"write_intensive"`
	Ranked         []profile.FuncStat `json:"ranked,omitempty"`
	Monitored      map[string]float64 `json:"monitored,omitempty"` // name → store share
}

// Plan computes step 1 from the merged aggregates, exactly as the
// monolithic AnalyzeTrace did.
func (s *Stats) Plan(app string, lineSize uint64, cfg Config) *Plan {
	cfg.fillDefaults()
	p := &Plan{App: app, Config: cfg, LineSize: lineSize, Cores: s.MaxCore + 1}
	if s.TotalCycles > 0 {
		p.StoreShare = float64(s.StoreCycles) / float64(s.TotalCycles)
	}
	p.WriteIntensive = p.StoreShare >= cfg.WriteIntensiveShare

	ranked := make([]profile.FuncStat, 0, len(s.Fns))
	var totalStores uint64
	for _, a := range s.Fns {
		totalStores += a.Stores
	}
	for fn, a := range s.Fns {
		fs := profile.FuncStat{Fn: fn, Loads: a.Loads, Stores: a.Stores}
		if totalStores > 0 {
			fs.StoreShare = float64(a.Stores) / float64(totalStores)
		}
		ranked = append(ranked, fs)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Stores != ranked[j].Stores {
			return ranked[i].Stores > ranked[j].Stores
		}
		return ranked[i].Fn < ranked[j].Fn
	})
	p.Ranked = ranked

	if p.WriteIntensive {
		p.Monitored = make(map[string]float64)
		for i, fs := range ranked {
			if i == cfg.TopFunctions || fs.Stores == 0 {
				break
			}
			p.Monitored[fs.Fn] = fs.StoreShare
		}
	}
	return p
}

// baseReport builds the report skeleton, including the full function
// list when the application is not write-intensive and steps 2–3 are
// skipped.
func (p *Plan) baseReport() *Report {
	rep := &Report{App: p.App, Config: p.Config, StoreShare: p.StoreShare, WriteIntensive: p.WriteIntensive}
	if !p.WriteIntensive {
		for i, fs := range p.Ranked {
			if i == p.Config.TopFunctions {
				break
			}
			rep.Functions = append(rep.Functions, FuncReport{
				Name:       fs.Fn,
				StoreShare: fs.StoreShare,
				Choice:     core.NoPrestore,
				Reason:     "application is not write-intensive",
			})
		}
	}
	return rep
}

// span is a tape over a contiguous range of chunks: the filtered
// records of chunks first..last, with their own interned name table.
type span struct {
	first, last int
	fns         []string
	ids         map[string]uint32
	recs        []trace.Record
}

func (s *span) intern(fn string) uint32 {
	if s.ids == nil {
		s.ids = make(map[string]uint32, len(s.fns))
		for i, name := range s.fns {
			s.ids[name] = uint32(i)
		}
	}
	if id, ok := s.ids[fn]; ok {
		return id
	}
	id := uint32(len(s.fns))
	s.ids[fn] = id
	s.fns = append(s.fns, fn)
	return id
}

// absorb appends a directly adjacent span (o.first == s.last+1).
func (s *span) absorb(o *span) {
	for _, r := range o.recs {
		r.Fn = s.intern(o.fns[r.Fn])
		s.recs = append(s.recs, r)
	}
	s.last = o.last
}

// Partial is the pass-2 map output for a set of chunks: the event tape
// steps 2–3 will replay, keyed by chunk-index ranges. Merging splices
// ranges together, so partials combine in any order — including
// shuffled, single-record and empty chunks — and always reduce to the
// same tape.
type Partial struct {
	spans []span
}

// AnalyzeChunk maps one chunk to its partial: the records the
// steps-2/3 state machine consumes. Loads, fences and atomics are
// always kept (they clear and classify per-line state regardless of
// function); stores only for monitored functions; everything else —
// compute, function enter/exit, pre-store ops — is dropped, exactly
// the kinds the analysis hook ignores.
func (p *Plan) AnalyzeChunk(c *trace.Chunk) *Partial {
	sp := span{first: c.Index, last: c.Index}
	for _, r := range c.Records {
		switch r.Kind {
		case sim.OpStore, sim.OpStoreNT:
			fn := c.FuncName(r.Fn)
			if _, ok := p.Monitored[fn]; !ok {
				continue
			}
			r.Fn = sp.intern(fn)
		case sim.OpLoad, sim.OpFence, sim.OpAtomic:
			r.Fn = sp.intern("")
		default:
			continue
		}
		sp.recs = append(sp.recs, r)
	}
	return &Partial{spans: []span{sp}}
}

// Chunks returns the covered chunk-index ranges, for diagnostics.
func (pt *Partial) Chunks() [][2]int {
	out := make([][2]int, 0, len(pt.spans))
	for _, sp := range pt.spans {
		out = append(out, [2]int{sp.first, sp.last})
	}
	return out
}

// Records returns the total tape length.
func (pt *Partial) Records() int {
	n := 0
	for _, sp := range pt.spans {
		n += len(sp.recs)
	}
	return n
}

// Merge folds another partial in. The operation is associative and
// commutative: spans are keyed by chunk-index ranges, kept sorted and
// coalesced when adjacent. Overlapping ranges mean the same chunk was
// analyzed twice into the same reduction — an orchestration bug — and
// fail loudly. o must not be used afterward.
func (pt *Partial) Merge(o *Partial) error {
	if o == nil {
		return nil
	}
	all := append(pt.spans, o.spans...)
	sort.Slice(all, func(i, j int) bool { return all[i].first < all[j].first })
	out := all[:0]
	for i := range all {
		if len(out) == 0 {
			out = append(out, all[i])
			continue
		}
		cur := &out[len(out)-1]
		switch {
		case all[i].first <= cur.last:
			return fmt.Errorf("dirtbuster: partial ranges [%d,%d] and [%d,%d] overlap",
				cur.first, cur.last, all[i].first, all[i].last)
		case all[i].first == cur.last+1:
			cur.absorb(&all[i])
		default:
			out = append(out, all[i])
		}
	}
	pt.spans = out
	return nil
}

// Analysis replays merged partials — or raw chunks — through the
// identical steps-2/3 state machine the live pipeline uses. Input must
// arrive in chunk order starting at chunk 0; partials merged out of
// order satisfy that automatically once they coalesce into a prefix.
type Analysis struct {
	plan *Plan
	an   *analysis
	next int // next expected chunk index
}

// NewAnalysis prepares the steps-2/3 replay for this plan.
func (p *Plan) NewAnalysis() *Analysis {
	monitored := make(map[string]*fnState, len(p.Monitored))
	for fn, share := range p.Monitored {
		monitored[fn] = &fnState{
			name:       fn,
			storeShare: share,
			buckets:    make(map[uint64]*bucketAgg),
		}
	}
	an := &analysis{cfg: p.Config, fns: monitored, lineSize: p.LineSize}
	cores := p.Cores
	if cores < 1 {
		cores = 1
	}
	an.cores = make([]coreState, cores)
	return &Analysis{plan: p, an: an}
}

func (a *Analysis) feed(r trace.Record, fn string) {
	a.an.hook(sim.Event{
		Core:  int(r.Core),
		Kind:  r.Kind,
		Addr:  r.Addr,
		Size:  r.Size,
		Fn:    fn,
		Instr: r.Instr,
	}, nil)
}

// Applied returns the number of leading chunks consumed so far.
func (a *Analysis) Applied() int { return a.next }

// AddChunk replays one raw chunk (the in-process fast path that skips
// building a Partial). Chunks must arrive in order.
func (a *Analysis) AddChunk(c *trace.Chunk) error {
	if c.Index != a.next {
		return fmt.Errorf("dirtbuster: chunk %d out of order, want %d", c.Index, a.next)
	}
	if c.MaxCore >= len(a.an.cores) {
		return fmt.Errorf("dirtbuster: chunk %d uses core %d beyond plan's %d cores", c.Index, c.MaxCore, len(a.an.cores))
	}
	for _, r := range c.Records {
		a.feed(r, c.FuncName(r.Fn))
	}
	a.next++
	return nil
}

// Apply replays a partial's tape. Its spans must continue exactly at
// the next unconsumed chunk index.
func (a *Analysis) Apply(pt *Partial) error {
	for i := range pt.spans {
		sp := &pt.spans[i]
		if sp.first != a.next {
			return fmt.Errorf("dirtbuster: partial covers chunks [%d,%d], want start %d", sp.first, sp.last, a.next)
		}
		for _, r := range sp.recs {
			if int(r.Fn) >= len(sp.fns) || int(r.Core) >= len(a.an.cores) {
				return fmt.Errorf("dirtbuster: malformed partial record in chunks [%d,%d]", sp.first, sp.last)
			}
			a.feed(r, sp.fns[r.Fn])
		}
		a.next = sp.last + 1
	}
	return nil
}

// Report finalizes steps 2–3 and assembles the report. The result is
// byte-identical to the monolithic AnalyzeTrace on the same records.
func (a *Analysis) Report() *Report {
	rep := a.plan.baseReport()
	if !a.plan.WriteIntensive {
		return rep
	}
	a.an.finish()
	fns := make([]*fnState, 0, len(a.an.fns))
	for _, st := range a.an.fns {
		fns = append(fns, st)
	}
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].storeShare != fns[j].storeShare {
			return fns[i].storeShare > fns[j].storeShare
		}
		return fns[i].name < fns[j].name
	})
	for _, st := range fns {
		rep.Functions = append(rep.Functions, st.report(a.plan.Config))
	}
	return rep
}

// Finish reduces one fully merged partial to the final report. The
// partial must cover a contiguous chunk range starting at 0 (any
// number of chunks, including none for a not-write-intensive plan).
func (p *Plan) Finish(pt *Partial) (*Report, error) {
	a := p.NewAnalysis()
	if p.WriteIntensive && pt != nil {
		if err := a.Apply(pt); err != nil {
			return nil, err
		}
	}
	return a.Report(), nil
}

// ChunkIter yields the chunks of a trace in order; trace.ChunkReader
// satisfies it.
type ChunkIter interface {
	Next() (*trace.Chunk, error)
}

// ChunkSource opens a fresh in-order pass over a trace's chunks. The
// two-pass pipeline calls it twice.
type ChunkSource func() (ChunkIter, error)

// AnalyzeChunkSource is the streaming, bounded-memory equivalent of
// AnalyzeTrace: two passes over the chunks, never holding more than
// one chunk in memory.
func AnalyzeChunkSource(app string, open ChunkSource, lineSize uint64, cfg Config) (*Report, error) {
	stats := NewStats()
	it, err := open()
	if err != nil {
		return nil, err
	}
	for {
		c, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		stats.AddChunk(c)
	}
	plan := stats.Plan(app, lineSize, cfg)
	a := plan.NewAnalysis()
	if plan.WriteIntensive {
		it, err = open()
		if err != nil {
			return nil, err
		}
		for {
			c, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			if err := a.AddChunk(c); err != nil {
				return nil, err
			}
		}
	}
	return a.Report(), nil
}

// Partial wire codec: a small length-prefixed binary reusing the
// trace record format, so worker shards return partials compactly.
const partialMagic = 0x4c505350 // "PSPL"

const maxPartialSpans = 1 << 20

// Encode writes the partial in binary form.
func (pt *Partial) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], partialMagic)
	binary.LittleEndian.PutUint32(hdr[4:], 1) // version
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(pt.spans)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var b [4]byte
	u32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(b[:], v)
		_, err := bw.Write(b[:])
		return err
	}
	for _, sp := range pt.spans {
		if err := u32(uint32(sp.first)); err != nil {
			return err
		}
		if err := u32(uint32(sp.last)); err != nil {
			return err
		}
		if err := u32(uint32(len(sp.fns))); err != nil {
			return err
		}
		for _, name := range sp.fns {
			if err := u32(uint32(len(name))); err != nil {
				return err
			}
			if _, err := bw.WriteString(name); err != nil {
				return err
			}
		}
		if err := u32(uint32(len(sp.recs))); err != nil {
			return err
		}
		var rec [trace.RecordSize]byte
		for _, r := range sp.recs {
			trace.PutRecord(rec[:], r)
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodePartial reads a partial written by Encode, validating ranges
// and function ids so a corrupt payload fails here rather than during
// replay.
func DecodePartial(r io.Reader) (*Partial, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != partialMagic {
		return nil, fmt.Errorf("dirtbuster: bad partial magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != 1 {
		return nil, fmt.Errorf("dirtbuster: unsupported partial version %d", v)
	}
	nSpans := binary.LittleEndian.Uint32(hdr[8:])
	if nSpans > maxPartialSpans {
		return nil, fmt.Errorf("dirtbuster: partial span count %d exceeds limit", nSpans)
	}
	var b [4]byte
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	pt := &Partial{spans: make([]span, 0, min(int(nSpans), 1<<12))}
	for i := uint32(0); i < nSpans; i++ {
		first, err := u32()
		if err != nil {
			return nil, err
		}
		last, err := u32()
		if err != nil {
			return nil, err
		}
		if int(last) < int(first) || first > 1<<31 || last > 1<<31 {
			return nil, fmt.Errorf("dirtbuster: partial span range [%d,%d] invalid", first, last)
		}
		nFns, err := u32()
		if err != nil {
			return nil, err
		}
		if nFns > trace.MaxFuncs {
			return nil, fmt.Errorf("dirtbuster: partial function table size %d exceeds limit", nFns)
		}
		sp := span{first: int(first), last: int(last), fns: make([]string, 0, min(int(nFns), 1<<12))}
		for j := uint32(0); j < nFns; j++ {
			n, err := u32()
			if err != nil {
				return nil, err
			}
			if n > 1<<16 {
				return nil, fmt.Errorf("dirtbuster: partial function name length %d too large", n)
			}
			name := make([]byte, n)
			if _, err := io.ReadFull(br, name); err != nil {
				return nil, err
			}
			sp.fns = append(sp.fns, string(name))
		}
		nRecs, err := u32()
		if err != nil {
			return nil, err
		}
		sp.recs = make([]trace.Record, 0, min(int(nRecs), 1<<16))
		var rec [trace.RecordSize]byte
		for j := uint32(0); j < nRecs; j++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, err
			}
			rr := trace.GetRecord(rec[:])
			if int(rr.Fn) >= len(sp.fns) {
				return nil, fmt.Errorf("dirtbuster: partial record references function id %d outside table of %d", rr.Fn, len(sp.fns))
			}
			sp.recs = append(sp.recs, rr)
		}
		pt.spans = append(pt.spans, sp)
	}
	return pt, nil
}
