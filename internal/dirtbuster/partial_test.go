package dirtbuster

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"prestores/internal/sim"
	"prestores/internal/trace"
)

// richWorkload exercises every code path of steps 2–3 across two
// cores: sequential streams, rewrites, rereads, fences, atomics,
// multiple monitored functions and unmonitored noise.
func richWorkload() Workload {
	return Workload{
		Name:       "rich",
		NewMachine: sim.MachineA,
		Run: func(m *sim.Machine) {
			c0, c1 := m.Core(0), m.Core(1)
			buf := make([]byte, 256)
			small := make([]byte, 16)

			c0.PushFunc("log.append")
			for i := uint64(0); i < 400; i++ {
				c0.Write(base+i*256, buf)
				if i%8 == 7 {
					c0.Fence()
				}
			}
			c0.PopFunc()

			c1.PushFunc("index.update")
			for i := uint64(0); i < 300; i++ {
				// Rewrite a small hot region, re-read some of it.
				c1.Write(base+1<<20+(i%32)*64, small)
				if i%3 == 0 {
					c1.Read(base+1<<20+(i%32)*64, small)
				}
				if i%16 == 0 {
					c1.AtomicAdd(base+1<<21, 1)
				}
			}
			c1.PopFunc()

			c0.PushFunc("cache.fill")
			for i := uint64(0); i < 200; i++ {
				c0.Write(base+1<<22+i*64, small)
			}
			c0.PopFunc()

			// Unmonitored noise: reads and compute in other functions.
			c1.PushFunc("scan.read")
			for i := uint64(0); i < 500; i++ {
				c1.Read(base+i*256, buf)
			}
			c1.PopFunc()
			c0.PushFunc("misc.think")
			c0.Compute(5000)
			c0.PopFunc()
		},
	}
}

// handChunks splits a buffer into chunks of the given record counts
// (zeros produce empty chunks), re-interning names per chunk.
func handChunks(t *testing.T, tb *trace.Buffer, sizes []int) []*trace.Chunk {
	t.Helper()
	var recs []trace.Record
	var fns []string
	tb.Replay(func(r trace.Record, fn string) { recs = append(recs, r); fns = append(fns, fn) })
	var chunks []*trace.Chunk
	pos := 0
	for _, n := range sizes {
		if pos+n > len(recs) {
			n = len(recs) - pos
		}
		c := &trace.Chunk{Index: len(chunks)}
		ids := map[string]uint32{}
		for i := pos; i < pos+n; i++ {
			r := recs[i]
			id, ok := ids[fns[i]]
			if !ok {
				id = uint32(len(c.Funcs))
				ids[fns[i]] = id
				c.Funcs = append(c.Funcs, fns[i])
			}
			r.Fn = id
			if int(r.Core) > c.MaxCore {
				c.MaxCore = int(r.Core)
			}
			c.Records = append(c.Records, r)
		}
		pos += n
		chunks = append(chunks, c)
	}
	if pos != len(recs) {
		t.Fatalf("hand chunks cover %d of %d records", pos, len(recs))
	}
	return chunks
}

// codecChunks splits a buffer by running it through the v2 codec.
func codecChunks(t testing.TB, tb *trace.Buffer, chunkRecords int) []*trace.Chunk {
	t.Helper()
	var buf bytes.Buffer
	if err := tb.EncodeChunked(&buf, chunkRecords); err != nil {
		t.Fatal(err)
	}
	cr, err := trace.NewChunkReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var chunks []*trace.Chunk
	for {
		c, err := cr.Next()
		if err != nil {
			break
		}
		chunks = append(chunks, c)
	}
	return chunks
}

// runChunked runs the full map/merge/reduce pipeline over the chunks,
// merging stats and partials in the shuffled order rnd picks, with an
// optional roundtrip of every partial through the wire codec.
func runChunked(t *testing.T, app string, chunks []*trace.Chunk, lineSize uint64, cfg Config, rnd *rand.Rand, wire bool) *Report {
	t.Helper()
	// Pass 1: per-chunk stats merged in shuffled order.
	stats := make([]*Stats, len(chunks))
	for i, c := range chunks {
		stats[i] = NewStats()
		stats[i].AddChunk(c)
	}
	rnd.Shuffle(len(stats), func(i, j int) { stats[i], stats[j] = stats[j], stats[i] })
	merged := NewStats()
	for _, s := range stats {
		merged.Merge(s)
	}
	plan := merged.Plan(app, lineSize, cfg)
	if !plan.WriteIntensive {
		rep, err := plan.Finish(nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Pass 2: per-chunk partials, pairwise-merged in random order.
	parts := make([]*Partial, len(chunks))
	for i, c := range chunks {
		parts[i] = plan.AnalyzeChunk(c)
		if wire {
			var buf bytes.Buffer
			if err := parts[i].Encode(&buf); err != nil {
				t.Fatal(err)
			}
			pt, err := DecodePartial(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			parts[i] = pt
		}
	}
	for len(parts) > 1 {
		i := rnd.Intn(len(parts))
		j := rnd.Intn(len(parts))
		if i == j {
			continue
		}
		if err := parts[i].Merge(parts[j]); err != nil {
			t.Fatal(err)
		}
		parts[j] = parts[len(parts)-1]
		parts = parts[:len(parts)-1]
	}
	var pt *Partial
	if len(parts) == 1 {
		pt = parts[0]
		if got := pt.Chunks(); len(got) != 1 || got[0][0] != 0 || got[0][1] != len(chunks)-1 {
			t.Fatalf("merged partial covers %v, want [[0 %d]]", got, len(chunks)-1)
		}
	}
	rep, err := plan.Finish(pt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func mustMatch(t *testing.T, got, want *Report, label string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: chunked report differs from monolithic\n--- chunked ---\n%s\n--- monolithic ---\n%s",
			label, got.Render(), want.Render())
	}
	if got.Render() != want.Render() {
		t.Fatalf("%s: rendered report not byte-identical", label)
	}
}

// TestChunkedAgreesWithMonolithic is the pipeline's contract: the
// map/merge/reduce path must be byte-identical to the monolithic
// AnalyzeTrace at every chunk size, with shuffled merge orders,
// 1-record chunks and empty chunks.
func TestChunkedAgreesWithMonolithic(t *testing.T) {
	tb, line := Record(richWorkload())
	cfg := Config{}
	want := AnalyzeTrace("rich", tb, line, cfg)
	if !want.WriteIntensive {
		t.Fatalf("rich workload not write-intensive (store share %.3f)", want.StoreShare)
	}

	for _, size := range []int{1, 7, 64, 1 << 20} {
		rnd := rand.New(rand.NewSource(int64(size)))
		chunks := codecChunks(t, tb, size)
		got := runChunked(t, "rich", chunks, line, cfg, rnd, size == 7)
		mustMatch(t, got, want, "codec chunks")
	}

	// Hand-built split with empty chunks sprinkled in, single-record
	// chunks and a large tail.
	sizes := []int{0, 1, 0, 5, 1, 0, 250, 0, 1, tb.Len()}
	rnd := rand.New(rand.NewSource(99))
	got := runChunked(t, "rich", handChunks(t, tb, sizes), line, cfg, rnd, true)
	mustMatch(t, got, want, "hand chunks with empties")
}

// TestChunkedAgreesNotWriteIntensive covers the step-1 early exit.
func TestChunkedAgreesNotWriteIntensive(t *testing.T) {
	tb, line := Record(wl("readonly", func(c *sim.Core) {
		buf := make([]byte, 256)
		c.PushFunc("reader")
		for i := uint64(0); i < 2000; i++ {
			c.Read(base+i*256, buf)
		}
		c.PopFunc()
	}))
	cfg := Config{}
	want := AnalyzeTrace("readonly", tb, line, cfg)
	if want.WriteIntensive {
		t.Fatal("readonly workload classified write-intensive")
	}
	rnd := rand.New(rand.NewSource(7))
	got := runChunked(t, "readonly", codecChunks(t, tb, 100), line, cfg, rnd, false)
	mustMatch(t, got, want, "not write-intensive")
}

// TestChunkedAgreesThroughStreaming checks the one-shot streaming
// helper against the monolithic path.
func TestChunkedAgreesThroughStreaming(t *testing.T) {
	tb, line := Record(richWorkload())
	var buf bytes.Buffer
	if err := tb.EncodeChunked(&buf, 97); err != nil {
		t.Fatal(err)
	}
	open := func() (ChunkIter, error) {
		return trace.NewChunkReader(bytes.NewReader(buf.Bytes()))
	}
	got, err := AnalyzeChunkSource("rich", open, line, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, got, AnalyzeTrace("rich", tb, line, Config{}), "streaming source")
}

func TestPartialMergeRejectsOverlap(t *testing.T) {
	tb, line := Record(richWorkload())
	chunks := codecChunks(t, tb, 100)
	stats := NewStats()
	for _, c := range chunks {
		stats.AddChunk(c)
	}
	plan := stats.Plan("rich", line, Config{})
	a := plan.AnalyzeChunk(chunks[0])
	b := plan.AnalyzeChunk(chunks[0])
	if err := a.Merge(b); err == nil {
		t.Fatal("merge accepted overlapping chunk ranges")
	}
}

func TestAnalysisRejectsGap(t *testing.T) {
	tb, line := Record(richWorkload())
	chunks := codecChunks(t, tb, 100)
	if len(chunks) < 3 {
		t.Fatalf("only %d chunks", len(chunks))
	}
	stats := NewStats()
	for _, c := range chunks {
		stats.AddChunk(c)
	}
	plan := stats.Plan("rich", line, Config{})
	pt := plan.AnalyzeChunk(chunks[0])
	if err := pt.Merge(plan.AnalyzeChunk(chunks[2])); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Finish(pt); err == nil {
		t.Fatal("analysis accepted a chunk gap")
	}
	a := plan.NewAnalysis()
	if err := a.AddChunk(chunks[1]); err == nil {
		t.Fatal("analysis accepted an out-of-order chunk")
	}
}

// FuzzDecodePartial throws arbitrary bytes at the partial decoder: it
// must return an error or a partial whose encode/decode is stable,
// never panic.
func FuzzDecodePartial(f *testing.F) {
	tb, line := Record(richWorkload())
	chunks := codecChunks(f, tb, 200)
	stats := NewStats()
	for _, c := range chunks {
		stats.AddChunk(c)
	}
	plan := stats.Plan("rich", line, Config{})
	seed := plan.AnalyzeChunk(chunks[0])
	var buf bytes.Buffer
	if err := seed.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PSPL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		pt, err := DecodePartial(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := pt.Encode(&out); err != nil {
			t.Fatalf("re-encode of decoded partial: %v", err)
		}
		if _, err := DecodePartial(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-decode of re-encoded partial: %v", err)
		}
	})
}
