package dirtbuster

import (
	"bytes"
	"testing"

	"prestores/internal/core"
	"prestores/internal/sim"
	"prestores/internal/trace"
)

func streamWorkload() Workload {
	return wl("stream", func(c *sim.Core) {
		c.PushFunc("stream.write")
		buf := make([]byte, 4096)
		for i := uint64(0); i < 1500; i++ {
			c.Write(base+i*4096, buf)
		}
		c.PopFunc()
	})
}

func TestOfflineMatchesLive(t *testing.T) {
	w := streamWorkload()
	live := Analyze(w, Config{})
	tb, line := Record(w)
	offline := AnalyzeTrace("stream", tb, line, Config{})

	if live.WriteIntensive != offline.WriteIntensive {
		t.Fatal("write-intensity classification differs offline")
	}
	if la, oa := live.Advice("stream.write"), offline.Advice("stream.write"); la != oa {
		t.Fatalf("advice differs: live %v vs offline %v", la, oa)
	}
	if len(live.Functions) == 0 || len(offline.Functions) == 0 {
		t.Fatal("missing functions")
	}
	lf, of := live.Functions[0], offline.Functions[0]
	if lf.SeqWriteShare != of.SeqWriteShare {
		t.Fatalf("seq share differs: %v vs %v", lf.SeqWriteShare, of.SeqWriteShare)
	}
}

func TestOfflineThroughEncodeDecode(t *testing.T) {
	w := streamWorkload()
	tb, line := Record(w)
	var buf bytes.Buffer
	if err := tb.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeTrace("stream", decoded, line, Config{})
	if got := rep.Advice("stream.write"); got != core.Skip {
		t.Fatalf("advice after file roundtrip = %v\n%s", got, rep.Render())
	}
}

func TestOfflineNotWriteIntensive(t *testing.T) {
	w := wl("reader", func(c *sim.Core) {
		c.PushFunc("init")
		c.Write(base, make([]byte, 64))
		c.PopFunc()
		var b [8]byte
		c.PushFunc("reader.loop")
		for i := 0; i < 4000; i++ {
			c.Read(base+uint64(i%8)*8, b[:])
			c.Compute(16)
		}
		c.PopFunc()
	})
	tb, line := Record(w)
	rep := AnalyzeTrace("reader", tb, line, Config{})
	if rep.WriteIntensive {
		t.Fatalf("read-mostly trace classified write-intensive (%.2f)", rep.StoreShare)
	}
}

func TestRecordProducesOps(t *testing.T) {
	tb, line := Record(streamWorkload())
	if tb.Len() == 0 {
		t.Fatal("empty recording")
	}
	if line != 64 {
		t.Fatalf("line size %d", line)
	}
}
