// Package dirtbuster implements the DirtBuster tool (paper §6): a
// dynamic analysis that finds the code locations where inserting a
// pre-store is beneficial and decides which kind to insert.
//
// The pipeline mirrors the paper's three steps:
//
//  1. Sampling (internal/profile, the perf stand-in) finds the
//     write-intensive functions cheaply.
//  2. Full instrumentation (the machine hook, the PIN stand-in) records
//     every access of those functions and classifies writes into
//     "sequentiality contexts" and writes-before-fences.
//  3. Re-read and re-write distances are computed per cache line
//     (stored in a B-tree, as the paper notes) and drive the final
//     recommendation: demote if re-written, clean if re-read, skip if
//     neither, nothing if the pattern would not benefit.
package dirtbuster

import (
	"sort"

	"prestores/internal/btree"
	"prestores/internal/core"
	"prestores/internal/profile"
	"prestores/internal/sim"
	"prestores/internal/units"
)

// Config tunes the analysis thresholds.
type Config struct {
	// SampleInterval is step 1's sampling period in memory ops.
	SampleInterval uint64
	// TopFunctions bounds how many write-intensive functions step 2
	// instruments.
	TopFunctions int
	// WriteIntensiveShare is the store share below which an application
	// is not worth patching (the paper's "less than 10% of their time
	// issuing store instructions" screen).
	WriteIntensiveShare float64
	// SeqGap is the maximum gap (bytes) between a write and a context's
	// last write for the write to extend the context.
	SeqGap uint64
	// NearRewrite is the re-write distance (instructions) under which
	// data counts as re-written (pre-store choice demote; cleaning
	// would cause a memory write per rewrite).
	NearRewrite uint64
	// NearReread is the re-read distance under which data counts as
	// re-read (pre-store choice clean).
	NearReread uint64
	// NearFence is the write-to-fence distance (instructions) under
	// which a write counts as "before a fence".
	NearFence uint64
	// MinSeqShare is the sequential-write share above which a function
	// counts as writing sequentially.
	MinSeqShare float64
	// MinFenceShare is the writes-before-fence share above which a
	// function counts as fence-bound.
	MinFenceShare float64
	// MaxContexts bounds the open sequentiality contexts tracked per
	// core (the paper tracks unboundedly; "in practice ... only a few
	// objects").
	MaxContexts int
}

func (c *Config) fillDefaults() {
	if c.SampleInterval == 0 {
		c.SampleInterval = 97
	}
	if c.TopFunctions == 0 {
		c.TopFunctions = 6
	}
	if c.WriteIntensiveShare == 0 {
		c.WriteIntensiveShare = 0.10
	}
	if c.SeqGap == 0 {
		c.SeqGap = 64
	}
	if c.NearRewrite == 0 {
		c.NearRewrite = 4000
	}
	if c.NearReread == 0 {
		c.NearReread = 100_000
	}
	if c.NearFence == 0 {
		c.NearFence = 400
	}
	if c.MinSeqShare == 0 {
		c.MinSeqShare = 0.25
	}
	if c.MinFenceShare == 0 {
		c.MinFenceShare = 0.25
	}
	if c.MaxContexts == 0 {
		c.MaxContexts = 128
	}
}

// Workload is an application DirtBuster can analyze: a factory for a
// fresh machine and a run function. Each analysis step runs the
// workload on its own machine so instrumentation never observes a
// warmed cache from a previous step.
type Workload struct {
	Name       string
	NewMachine func() *sim.Machine
	Run        func(m *sim.Machine)
}

// Analyze runs the full three-step pipeline on the workload.
func Analyze(w Workload, cfg Config) *Report {
	cfg.fillDefaults()

	// Step 1: sampling.
	sampler := profile.New(cfg.SampleInterval)
	m1 := w.NewMachine()
	m1.SetHook(sampler.Hook())
	w.Run(m1)
	m1.SetHook(nil)

	rep := &Report{
		App:        w.Name,
		Config:     cfg,
		StoreShare: sampler.StoreTimeShare(),
	}
	rep.WriteIntensive = rep.StoreShare >= cfg.WriteIntensiveShare
	funcStats := sampler.Report()
	if !rep.WriteIntensive {
		// The paper does not instrument non-write-intensive apps
		// further; adding pre-stores to them would have no effect.
		for i, fs := range funcStats {
			if i == cfg.TopFunctions {
				break
			}
			rep.Functions = append(rep.Functions, FuncReport{
				Name:       fs.Fn,
				StoreShare: fs.StoreShare,
				Callchains: fs.Callchains,
				Choice:     core.NoPrestore,
				Reason:     "application is not write-intensive",
			})
		}
		return rep
	}

	monitored := make(map[string]*fnState)
	for i, fs := range funcStats {
		if i == cfg.TopFunctions || fs.Stores == 0 {
			break
		}
		monitored[fs.Fn] = &fnState{
			name:       fs.Fn,
			storeShare: fs.StoreShare,
			callchains: fs.Callchains,
			buckets:    make(map[uint64]*bucketAgg),
		}
	}

	// Steps 2 and 3: full instrumentation of the monitored functions.
	an := &analysis{cfg: cfg, fns: monitored}
	m2 := w.NewMachine()
	an.lineSize = m2.LineSize()
	an.cores = make([]coreState, m2.Cores())
	m2.SetHook(an.hook)
	w.Run(m2)
	m2.SetHook(nil)
	an.finish()

	// Rank monitored functions by sampled store share.
	fns := make([]*fnState, 0, len(monitored))
	for _, st := range monitored {
		fns = append(fns, st)
	}
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].storeShare != fns[j].storeShare {
			return fns[i].storeShare > fns[j].storeShare
		}
		return fns[i].name < fns[j].name
	})
	for _, st := range fns {
		rep.Functions = append(rep.Functions, st.report(cfg))
	}
	return rep
}

// fnState accumulates per-function instrumentation.
type fnState struct {
	name       string
	storeShare float64
	callchains []string

	totalWrites uint64 // write ops observed
	seqWrites   uint64 // write ops that extended a context

	writesBeforeFence uint64 // writes within NearFence of the next fence
	fenceSamples      uint64 // writes with any following fence observed
	minFenceDist      uint64 // min write->fence distance (instructions)

	buckets map[uint64]*bucketAgg // context size class -> aggregate
}

// bucketAgg aggregates sequential contexts of one size class.
type bucketAgg struct {
	contexts     uint64
	writes       uint64
	rereads      uint64
	rereadSum    uint64
	nearRereads  uint64
	rewrites     uint64
	rewriteSum   uint64
	nearRewrites uint64
}

// seqCtx is an open sequentiality context: a region being written
// front-to-back (paper §6.2.2).
type seqCtx struct {
	id         uint32
	fn         string
	start      uint64
	lastEnd    uint64
	writes     uint64
	firstUnits uint64 // line units of the context's first write
}

// promote registers a context as sequential, assigning its id.
func (a *analysis) promote(c *seqCtx) {
	a.ctxMeta = append(a.ctxMeta, ctxMeta{fn: c.fn})
	a.nextCtx++
	c.id = a.nextCtx
}

// ctxMeta survives a context's closure for line attribution.
type ctxMeta struct {
	fn    string
	bytes uint64
}

// pendingWrite is a write awaiting its next fence (distance tracking).
type pendingWrite struct {
	fn    string
	instr uint64
	units uint64 // line units, so shares match totalWrites' units
}

// coreState is the per-core portion of the instrumentation.
type coreState struct {
	contexts []*seqCtx
	pending  []pendingWrite
}

// lineInfo is the per-cache-line record (stored in a B-tree, §6.2.3).
type lineInfo struct {
	lastWrite    uint64 // instruction count at last write
	ctxID        uint32 // context of the last write (0 = non-sequential)
	written      bool
	rereads      uint64
	rereadSum    uint64
	nearRereads  uint64 // re-reads within NearReread instructions
	rewrites     uint64
	rewriteSum   uint64
	nearRewrites uint64 // re-writes within NearRewrite instructions
}

type analysis struct {
	cfg      Config
	fns      map[string]*fnState
	cores    []coreState
	lineSize uint64

	lines   btree.Tree[lineInfo]
	ctxMeta []ctxMeta // index = ctx id - 1
	nextCtx uint32
}

func (a *analysis) hook(ev sim.Event, _ *sim.Core) {
	switch ev.Kind {
	case sim.OpStore, sim.OpStoreNT:
		if st := a.fns[ev.Fn]; st != nil {
			a.onWrite(st, ev)
		}
	case sim.OpLoad:
		a.onRead(ev)
	case sim.OpFence, sim.OpAtomic:
		a.onFence(ev)
	}
}

// onWrite classifies a write against the core's sequentiality contexts
// and updates the per-line records.
//
// Events aggregate the component stores of one memcpy/memset-style
// operation, so counting is normalized to line units: a single event
// spanning several lines is itself a sequential run of stores (PIN
// would see its component stores as adjacent).
func (a *analysis) onWrite(st *fnState, ev sim.Event) {
	lineUnits := (ev.Size + a.lineSize - 1) / a.lineSize
	if lineUnits == 0 {
		lineUnits = 1
	}
	st.totalWrites += lineUnits
	cs := &a.cores[ev.Core]

	// Find a context this write extends.
	var ctx *seqCtx
	for _, c := range cs.contexts {
		if ev.Addr >= c.lastEnd && ev.Addr <= c.lastEnd+a.cfg.SeqGap && c.fn == st.name {
			ctx = c
			break
		}
	}
	if ctx != nil {
		ctx.lastEnd = ev.Addr + ev.Size
		ctx.writes += lineUnits
		if ctx.id == 0 {
			a.promote(ctx)
			st.seqWrites += ctx.firstUnits // retroactively sequential
		}
		st.seqWrites += lineUnits
	} else {
		if len(cs.contexts) >= a.cfg.MaxContexts {
			a.closeCtx(cs.contexts[0])
			cs.contexts = cs.contexts[1:]
		}
		ctx = &seqCtx{fn: st.name, start: ev.Addr, lastEnd: ev.Addr + ev.Size, writes: lineUnits, firstUnits: lineUnits}
		cs.contexts = append(cs.contexts, ctx)
		if lineUnits >= 2 {
			// A multi-line write is a sequential run by itself.
			a.promote(ctx)
			st.seqWrites += lineUnits
		}
	}

	// Per-line re-write distances. A write that continues the same
	// sequential streak is not a rewrite (§6.2.3).
	for line := units.AlignDown(ev.Addr, a.lineSize); line < ev.Addr+ev.Size; line += a.lineSize {
		id := ctx.id
		instr := ev.Instr
		a.lines.Update(line, func(li *lineInfo) {
			// Distances are per-core instruction counts; a touch from a
			// different core (smaller counter) carries no distance.
			if li.written && instr >= li.lastWrite && (id == 0 || li.ctxID != id) {
				li.rewrites++
				li.rewriteSum += instr - li.lastWrite
				if instr-li.lastWrite <= a.cfg.NearRewrite {
					li.nearRewrites++
				}
			}
			li.written = true
			li.lastWrite = instr
			li.ctxID = id
		})
	}

	// Fence-distance tracking.
	cs.pending = append(cs.pending, pendingWrite{fn: st.name, instr: ev.Instr, units: lineUnits})
	if len(cs.pending) > 4096 {
		cs.pending = cs.pending[len(cs.pending)-4096:]
	}
}

// onRead updates re-read distances for previously written lines.
func (a *analysis) onRead(ev sim.Event) {
	for line := units.AlignDown(ev.Addr, a.lineSize); line < ev.Addr+ev.Size; line += a.lineSize {
		instr := ev.Instr
		if _, ok := a.lines.Get(line); !ok {
			continue // never written by a monitored function
		}
		a.lines.Update(line, func(li *lineInfo) {
			if li.written && instr >= li.lastWrite {
				li.rereads++
				li.rereadSum += instr - li.lastWrite
				if instr-li.lastWrite <= a.cfg.NearReread {
					li.nearRereads++
				}
			}
		})
	}
}

// onFence records write-to-fence distances for the issuing core.
func (a *analysis) onFence(ev sim.Event) {
	cs := &a.cores[ev.Core]
	for _, w := range cs.pending {
		st := a.fns[w.fn]
		if st == nil {
			continue
		}
		dist := ev.Instr - w.instr
		st.fenceSamples += w.units
		if st.fenceSamples == w.units || dist < st.minFenceDist {
			st.minFenceDist = dist
		}
		if dist <= a.cfg.NearFence {
			st.writesBeforeFence += w.units
		}
	}
	cs.pending = cs.pending[:0]
}

// closeCtx folds a finished context into its function's size buckets.
func (a *analysis) closeCtx(c *seqCtx) {
	if c.id == 0 {
		return // singleton: never became sequential
	}
	a.ctxMeta[c.id-1].bytes = c.lastEnd - c.start
}

// finish closes open contexts and attributes line distances to context
// size buckets.
func (a *analysis) finish() {
	for i := range a.cores {
		for _, c := range a.cores[i].contexts {
			a.closeCtx(c)
		}
		a.cores[i].contexts = nil
	}
	a.lines.Ascend(func(line uint64, li lineInfo) bool {
		if li.ctxID == 0 {
			return true
		}
		meta := a.ctxMeta[li.ctxID-1]
		st := a.fns[meta.fn]
		if st == nil {
			return true
		}
		b := st.buckets[sizeClass(meta.bytes)]
		if b == nil {
			b = &bucketAgg{}
			st.buckets[sizeClass(meta.bytes)] = b
		}
		// Weight by write events (first write plus every rewrite), so
		// bucket shares are comparable to the function's write counts.
		b.writes += li.rewrites + 1
		b.rereads += li.rereads
		b.rereadSum += li.rereadSum
		b.nearRereads += li.nearRereads
		b.rewrites += li.rewrites
		b.rewriteSum += li.rewriteSum
		b.nearRewrites += li.nearRewrites
		return true
	})
	// Count contexts per bucket.
	for _, meta := range a.ctxMeta {
		st := a.fns[meta.fn]
		if st == nil {
			continue
		}
		b := st.buckets[sizeClass(meta.bytes)]
		if b == nil {
			b = &bucketAgg{}
			st.buckets[sizeClass(meta.bytes)] = b
		}
		b.contexts++
	}
}

// sizeClass buckets a context size to the nearest power of two.
func sizeClass(bytes uint64) uint64 {
	if bytes == 0 {
		return 0
	}
	cls := uint64(1)
	for cls < bytes {
		cls <<= 1
	}
	return cls
}
