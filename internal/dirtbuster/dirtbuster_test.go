package dirtbuster

import (
	"math"
	"strings"
	"testing"

	"prestores/internal/core"
	"prestores/internal/sim"
	"prestores/internal/xrand"
)

// wl builds a workload around a body function run on a fresh Machine A.
func wl(name string, body func(c *sim.Core)) Workload {
	return Workload{
		Name:       name,
		NewMachine: sim.MachineA,
		Run:        func(m *sim.Machine) { body(m.Core(0)) },
	}
}

const base = uint64(1) << 40 // PMEM window

func TestSequentialNeverReusedRecommendsSkip(t *testing.T) {
	rep := Analyze(wl("stream", func(c *sim.Core) {
		c.PushFunc("stream.write")
		buf := make([]byte, 4096)
		for i := uint64(0); i < 2000; i++ {
			c.Write(base+i*4096, buf)
		}
		c.PopFunc()
	}), Config{})
	if !rep.WriteIntensive {
		t.Fatal("pure writer not write-intensive")
	}
	if got := rep.Advice("stream.write"); got != core.Skip {
		t.Fatalf("advice = %v, want skip\n%s", got, rep.Render())
	}
	fr := rep.Functions[0]
	if fr.SeqWriteShare < 0.95 {
		t.Fatalf("seq share = %v, want ~1", fr.SeqWriteShare)
	}
}

func TestSequentialRereadRecommendsClean(t *testing.T) {
	rep := Analyze(wl("writeread", func(c *sim.Core) {
		c.PushFunc("writeread.body")
		buf := make([]byte, 1024)
		for i := uint64(0); i < 3000; i++ {
			addr := base + i*1024
			c.Write(addr, buf)
			c.ReadU64(addr) // immediate re-read
		}
		c.PopFunc()
	}), Config{})
	if got := rep.Advice("writeread.body"); got != core.Clean {
		t.Fatalf("advice = %v, want clean\n%s", got, rep.Render())
	}
}

func TestRewrittenBeforeFenceRecommendsDemote(t *testing.T) {
	rep := Analyze(wl("msg", func(c *sim.Core) {
		buf := make([]byte, 512)
		c.PushFunc("msg.fill")
		for i := 0; i < 3000; i++ {
			slot := base + uint64(i%8)*512 // constantly rewritten ring
			c.Write(slot, buf)
			c.CAS(base+1<<20+uint64(i%8)*64, 0, 1)
		}
		c.PopFunc()
	}), Config{})
	if got := rep.Advice("msg.fill"); got != core.Demote {
		t.Fatalf("advice = %v, want demote\n%s", got, rep.Render())
	}
	fr := rep.Functions[0]
	if !fr.HasFences || fr.WritesBeforeFence < 0.5 {
		t.Fatalf("fence detection: %+v", fr)
	}
}

func TestRandomSmallWritesRecommendNothing(t *testing.T) {
	rep := Analyze(wl("rank", func(c *sim.Core) {
		rng := xrand.New(1)
		c.PushFunc("rank.count")
		for i := 0; i < 4000; i++ {
			addr := base + rng.Uint64n(1<<26)&^7
			c.WriteU64(addr, 1)
			c.Compute(8)
		}
		c.PopFunc()
	}), Config{})
	if got := rep.Advice("rank.count"); got != core.NoPrestore {
		t.Fatalf("advice = %v, want none\n%s", got, rep.Render())
	}
}

func TestNotWriteIntensiveSkipsInstrumentation(t *testing.T) {
	rep := Analyze(wl("readonly", func(c *sim.Core) {
		// Seed some data, then read 50x more than written.
		c.PushFunc("init")
		c.Write(base, make([]byte, 64))
		c.PopFunc()
		var b [8]byte
		c.PushFunc("reader.loop")
		for i := 0; i < 5000; i++ {
			c.Read(base+uint64(i%8)*8, b[:])
			c.Compute(16)
		}
		c.PopFunc()
	}), Config{})
	if rep.WriteIntensive {
		t.Fatalf("read-mostly app classified write-intensive (share %.2f)", rep.StoreShare)
	}
	for _, f := range rep.Functions {
		if f.Choice != core.NoPrestore {
			t.Fatalf("non-write-intensive app got advice %v", f.Choice)
		}
	}
	if !strings.Contains(rep.Render(), "not write-intensive") {
		t.Fatal("render missing the classification")
	}
}

func TestHotRewrittenLineNotCleaned(t *testing.T) {
	// Listing 3's pattern: one line rewritten constantly. DirtBuster
	// must not recommend clean (re-write distance is tiny).
	rep := Analyze(wl("hotline", func(c *sim.Core) {
		c.PushFunc("hot.loop")
		for i := 0; i < 5000; i++ {
			c.Memset(base, 64, byte(i))
			c.Compute(4)
		}
		c.PopFunc()
	}), Config{})
	got := rep.Advice("hot.loop")
	if got == core.Clean || got == core.Skip {
		t.Fatalf("advice = %v for a hot rewritten line\n%s", got, rep.Render())
	}
}

func TestContextSizesReported(t *testing.T) {
	rep := Analyze(wl("sizes", func(c *sim.Core) {
		big := make([]byte, 64*1024)
		small := make([]byte, 256)
		c.PushFunc("sizes.mixed")
		for i := uint64(0); i < 60; i++ {
			c.Write(base+i*(1<<20), big)
		}
		for i := uint64(0); i < 60; i++ {
			c.Write(base+1<<35+i*(1<<12), small)
		}
		c.PopFunc()
	}), Config{})
	if len(rep.Functions) == 0 {
		t.Fatal("no functions")
	}
	sizes := map[uint64]bool{}
	for _, cc := range rep.Functions[0].Contexts {
		sizes[cc.Size] = true
	}
	if !sizes[64*1024] || !sizes[256] {
		t.Fatalf("context sizes %v missing 64KiB or 256B\n%s", sizes, rep.Render())
	}
}

func TestRenderPaperFormat(t *testing.T) {
	rep := Analyze(wl("fmt", func(c *sim.Core) {
		buf := make([]byte, 2048)
		c.PushFunc("fmt.writer")
		for i := uint64(0); i < 1500; i++ {
			c.Write(base+i*2048, buf)
		}
		c.PopFunc()
	}), Config{})
	out := rep.Render()
	for _, want := range []string{
		"Location: fmt.writer",
		"Perc. Seq. Writes:",
		"Size:",
		"re-read",
		"re-write",
		"Pre-store choice:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestInfiniteDistanceRendering(t *testing.T) {
	if distString(math.Inf(1)) != "inf" {
		t.Fatal("inf distance")
	}
	if distString(23800) != "23.8K" {
		t.Fatalf("23.8K, got %s", distString(23800))
	}
	if distString(42) != "42" {
		t.Fatal("plain distance")
	}
}

func TestRecommendationsList(t *testing.T) {
	rep := Analyze(wl("recs", func(c *sim.Core) {
		buf := make([]byte, 4096)
		c.PushFunc("recs.writer")
		for i := uint64(0); i < 1500; i++ {
			c.Write(base+i*4096, buf)
		}
		c.PopFunc()
	}), Config{})
	recs := rep.Recommendations()
	if len(recs) == 0 {
		t.Fatal("no recommendations for a streaming writer")
	}
	if recs[0].Function != "recs.writer" || recs[0].Choice == core.NoPrestore {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestAdviceUnknownFunction(t *testing.T) {
	rep := &Report{}
	if rep.Advice("missing") != core.NoPrestore {
		t.Fatal("unknown function advice")
	}
}

func TestDecide(t *testing.T) {
	cases := []struct {
		eligible, rewritten, reread bool
		want                        core.Choice
	}{
		{false, true, true, core.NoPrestore},
		{true, true, false, core.Demote},
		{true, true, true, core.Demote}, // rewrite dominates
		{true, false, true, core.Clean},
		{true, false, false, core.Skip},
	}
	for _, c := range cases {
		if got := core.Decide(c.eligible, c.rewritten, c.reread); got != c.want {
			t.Errorf("Decide(%v,%v,%v) = %v, want %v",
				c.eligible, c.rewritten, c.reread, got, c.want)
		}
	}
}

// TestMixedSizeClassesVetoSkip reproduces the paper's TensorFlow
// finding (§7.2.1): a function whose writes are dominated by huge
// never-re-read tensors but that also writes small immediately-re-read
// tensors must be advised to clean, not skip — skipping would evict the
// small tensors that are re-read within a couple of instructions.
func TestMixedSizeClassesVetoSkip(t *testing.T) {
	rep := Analyze(wl("mixed", func(c *sim.Core) {
		big := make([]byte, 64*1024)
		small := make([]byte, 256)
		c.PushFunc("mixed.eval")
		for i := uint64(0); i < 100; i++ {
			// Large output tensor: written once, never revisited.
			c.Write(base+i*(1<<20), big)
			// Small tensors: written and re-read immediately, often.
			for j := uint64(0); j < 40; j++ {
				addr := base + 1<<37 + (i*40+j)*512
				c.Write(addr, small)
				c.ReadU64(addr)
			}
		}
		c.PopFunc()
	}), Config{})
	if got := rep.Advice("mixed.eval"); got != core.Clean {
		t.Fatalf("advice = %v, want clean\n%s", got, rep.Render())
	}
}
