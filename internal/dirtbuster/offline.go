package dirtbuster

import (
	"sort"

	"prestores/internal/core"
	"prestores/internal/profile"
	"prestores/internal/sim"
	"prestores/internal/trace"
)

// AnalyzeTrace runs the DirtBuster analysis on a previously recorded
// operation trace instead of a live machine — the paper's intended
// offline usage: profile an application once in a performance-critical
// environment, then analyze the recording as an optimization pass.
//
// Step 1's ranking is derived from the same trace (a full recording
// subsumes sampling); steps 2 and 3 replay the records through the
// identical analysis the live pipeline uses.
func AnalyzeTrace(app string, tb *trace.Buffer, lineSize uint64, cfg Config) *Report {
	cfg.fillDefaults()

	// Step 1: rank functions and classify write intensity from the
	// full recording.
	type agg struct {
		loads, stores uint64
	}
	byFn := map[string]*agg{}
	var storeTime, totalTime uint64
	maxCore := 0
	tb.Replay(func(r trace.Record, fn string) {
		if int(r.Core) > maxCore {
			maxCore = int(r.Core)
		}
		totalTime += r.Cost
		a := byFn[fn]
		if a == nil {
			a = &agg{}
			byFn[fn] = a
		}
		switch r.Kind {
		case sim.OpLoad:
			a.loads++
		case sim.OpStore, sim.OpStoreNT, sim.OpAtomic:
			a.stores++
			storeTime += r.Cost
		}
	})

	rep := &Report{App: app, Config: cfg}
	if totalTime > 0 {
		rep.StoreShare = float64(storeTime) / float64(totalTime)
	}
	rep.WriteIntensive = rep.StoreShare >= cfg.WriteIntensiveShare

	ranked := make([]profile.FuncStat, 0, len(byFn))
	var totalStores uint64
	for _, a := range byFn {
		totalStores += a.stores
	}
	for fn, a := range byFn {
		fs := profile.FuncStat{Fn: fn, Loads: a.loads, Stores: a.stores}
		if totalStores > 0 {
			fs.StoreShare = float64(a.stores) / float64(totalStores)
		}
		ranked = append(ranked, fs)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Stores != ranked[j].Stores {
			return ranked[i].Stores > ranked[j].Stores
		}
		return ranked[i].Fn < ranked[j].Fn
	})

	if !rep.WriteIntensive {
		for i, fs := range ranked {
			if i == cfg.TopFunctions {
				break
			}
			rep.Functions = append(rep.Functions, FuncReport{
				Name:       fs.Fn,
				StoreShare: fs.StoreShare,
				Choice:     core.NoPrestore,
				Reason:     "application is not write-intensive",
			})
		}
		return rep
	}

	monitored := make(map[string]*fnState)
	for i, fs := range ranked {
		if i == cfg.TopFunctions || fs.Stores == 0 {
			break
		}
		monitored[fs.Fn] = &fnState{
			name:       fs.Fn,
			storeShare: fs.StoreShare,
			buckets:    make(map[uint64]*bucketAgg),
		}
	}

	// Steps 2 and 3: replay through the live analysis.
	an := &analysis{cfg: cfg, fns: monitored, lineSize: lineSize}
	an.cores = make([]coreState, maxCore+1)
	tb.Replay(func(r trace.Record, fn string) {
		an.hook(sim.Event{
			Core:  int(r.Core),
			Kind:  r.Kind,
			Addr:  r.Addr,
			Size:  r.Size,
			Fn:    fn,
			Instr: r.Instr,
		}, nil)
	})
	an.finish()

	fns := make([]*fnState, 0, len(monitored))
	for _, st := range monitored {
		fns = append(fns, st)
	}
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].storeShare != fns[j].storeShare {
			return fns[i].storeShare > fns[j].storeShare
		}
		return fns[i].name < fns[j].name
	})
	for _, st := range fns {
		rep.Functions = append(rep.Functions, st.report(cfg))
	}
	return rep
}

// Record runs the workload once with full tracing and returns the
// recorded buffer plus the machine's line size (needed to analyze the
// trace later).
func Record(w Workload) (*trace.Buffer, uint64) {
	tb := trace.NewBuffer()
	m := w.NewMachine()
	m.SetHook(tb.Hook())
	w.Run(m)
	m.SetHook(nil)
	return tb, m.LineSize()
}
