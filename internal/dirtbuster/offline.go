package dirtbuster

import (
	"prestores/internal/sim"
	"prestores/internal/trace"
)

// AnalyzeTrace runs the DirtBuster analysis on a previously recorded
// operation trace instead of a live machine — the paper's intended
// offline usage: profile an application once in a performance-critical
// environment, then analyze the recording as an optimization pass.
//
// Step 1's ranking is derived from the same trace (a full recording
// subsumes sampling); steps 2 and 3 replay the records through the
// identical analysis the live pipeline uses. This is the in-memory
// convenience over the chunked Stats/Plan/Partial pipeline — both
// produce byte-identical reports.
func AnalyzeTrace(app string, tb *trace.Buffer, lineSize uint64, cfg Config) *Report {
	stats := NewStats()
	tb.Replay(stats.AddRecord)
	plan := stats.Plan(app, lineSize, cfg)
	a := plan.NewAnalysis()
	if plan.WriteIntensive {
		tb.Replay(a.feed)
	}
	return a.Report()
}

// Record runs the workload once with full tracing and returns the
// recorded buffer plus the machine's line size (needed to analyze the
// trace later).
func Record(w Workload) (*trace.Buffer, uint64) {
	tb := trace.NewBuffer()
	m := w.NewMachine()
	m.SetHook(tb.Hook())
	w.Run(m)
	m.SetHook(nil)
	return tb, m.LineSize()
}

// RecordStream runs the workload once streaming every operation into
// hook — typically a trace.Writer's — so recording memory stays
// bounded regardless of trace length. It returns the machine's line
// size.
func RecordStream(w Workload, hook sim.Hook) uint64 {
	m := w.NewMachine()
	m.SetHook(hook)
	w.Run(m)
	m.SetHook(nil)
	return m.LineSize()
}
