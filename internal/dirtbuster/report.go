package dirtbuster

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"prestores/internal/core"
	"prestores/internal/units"
)

// Report is DirtBuster's output for one application.
type Report struct {
	App            string
	Config         Config
	StoreShare     float64 // fraction of sampled memory ops that store
	WriteIntensive bool
	Functions      []FuncReport
}

// FuncReport is the per-function analysis, rendered in the paper's
// format (§7.2.1):
//
//	Location: <fn>
//	Perc. Seq. Writes: 50%
//	Size: 16.2MB - 10% - re-read inf - re-write inf
//	Pre-store choice: clean
type FuncReport struct {
	Name       string
	StoreShare float64
	Callchains []string

	SeqWriteShare float64
	Contexts      []ContextClass

	WritesBeforeFence float64 // share of writes within NearFence of a fence
	MinFenceDist      uint64
	HasFences         bool

	Choice core.Choice
	Reason string
}

// ContextClass summarizes the sequential contexts of one size class.
type ContextClass struct {
	Size        uint64  // size class in bytes
	WriteShare  float64 // share of the function's sequential writes
	RereadDist  float64 // average instructions write->re-read; +Inf if never
	RewriteDist float64 // average instructions write->re-write; +Inf if never
}

// report derives the FuncReport (including the recommendation) from the
// accumulated state.
func (st *fnState) report(cfg Config) FuncReport {
	fr := FuncReport{
		Name:       st.name,
		StoreShare: st.storeShare,
		Callchains: st.callchains,
	}
	if st.totalWrites > 0 {
		fr.SeqWriteShare = float64(st.seqWrites) / float64(st.totalWrites)
	}
	if st.fenceSamples > 0 {
		fr.HasFences = true
		fr.MinFenceDist = st.minFenceDist
		fr.WritesBeforeFence = float64(st.writesBeforeFence) / float64(st.totalWrites)
	}

	var totalSeq uint64
	for _, b := range st.buckets {
		totalSeq += b.writes
	}
	var wReread, wRewrite float64 // write-weighted average distances
	var rereadW, rewriteW float64
	for size, b := range st.buckets {
		cc := ContextClass{Size: size, RereadDist: math.Inf(1), RewriteDist: math.Inf(1)}
		if totalSeq > 0 {
			cc.WriteShare = float64(b.writes) / float64(totalSeq)
		}
		if b.rereads > 0 {
			cc.RereadDist = float64(b.rereadSum) / float64(b.rereads)
			wReread += cc.RereadDist * float64(b.rereads)
			rereadW += float64(b.rereads)
		}
		if b.rewrites > 0 {
			cc.RewriteDist = float64(b.rewriteSum) / float64(b.rewrites)
			wRewrite += cc.RewriteDist * float64(b.rewrites)
			rewriteW += float64(b.rewrites)
		}
		fr.Contexts = append(fr.Contexts, cc)
	}
	sort.Slice(fr.Contexts, func(i, j int) bool {
		return fr.Contexts[i].WriteShare > fr.Contexts[j].WriteShare
	})

	// Decision (§6.2.3), taken per size class: the same templated
	// function often writes both huge never-reused tensors and small
	// immediately-re-read ones (the paper's TensorFlow case), and a
	// single class with near re-use vetoes the cache-bypassing options.
	sequential := fr.SeqWriteShare >= cfg.MinSeqShare
	fenceBound := fr.HasFences && fr.WritesBeforeFence >= cfg.MinFenceShare
	eligible := sequential || fenceBound

	// Re-use is judged on *near* re-use counts rather than averaged
	// distances: the same size class often mixes data re-read two
	// instructions later with data re-read a layer later, and an
	// average would hide the near fraction that makes cleaning or
	// demoting worthwhile.
	var rewritten, reread bool
	for _, b := range st.buckets {
		if st.seqWrites == 0 || b.writes*50 < st.seqWrites {
			continue // insignificant class (<2% of sequential writes)
		}
		if b.nearRewrites*8 >= b.writes {
			rewritten = true
		}
		// Re-reads often touch only one line of a written region
		// (Listing 1 re-reads a single field), so this gate is
		// deliberately permissive.
		if b.nearRereads*32 >= b.writes {
			reread = true
		}
	}

	fr.Choice = core.Decide(eligible, rewritten, reread)
	switch {
	case !eligible:
		fr.Reason = "writes are neither sequential nor near a fence"
	case rewritten:
		fr.Reason = "a significant share of the data is re-written soon; keep it cached but publish early"
	case reread:
		fr.Reason = "a significant share of the data is re-read soon after being written; write back but keep cached"
	default:
		fr.Reason = "data neither re-read nor re-written; bypass the cache"
	}
	return fr
}

// Advice returns the recommendation for a function, or NoPrestore.
func (r *Report) Advice(fn string) core.Choice {
	for _, f := range r.Functions {
		if f.Name == fn {
			return f.Choice
		}
	}
	return core.NoPrestore
}

// Recommendations lists the functions with a non-trivial choice.
func (r *Report) Recommendations() []core.Advice {
	var out []core.Advice
	for _, f := range r.Functions {
		if f.Choice != core.NoPrestore {
			out = append(out, core.Advice{Function: f.Name, Choice: f.Choice, Reason: f.Reason})
		}
	}
	return out
}

// Render prints the report in the paper's style.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DirtBuster report for %s\n", r.App)
	fmt.Fprintf(&b, "Store share of sampled memory ops: %.1f%%", r.StoreShare*100)
	if !r.WriteIntensive {
		fmt.Fprintf(&b, " — not write-intensive; pre-stores would have no effect\n")
		return b.String()
	}
	fmt.Fprintf(&b, " — write-intensive\n")
	for _, f := range r.Functions {
		fmt.Fprintf(&b, "\nLocation: %s\n", f.Name)
		if len(f.Callchains) > 0 {
			fmt.Fprintf(&b, "Callchain: %s\n", f.Callchains[0])
		}
		fmt.Fprintf(&b, "Perc. Seq. Writes: %.0f%%\n", f.SeqWriteShare*100)
		for i, cc := range f.Contexts {
			if i == 4 || cc.WriteShare < 0.01 {
				break
			}
			fmt.Fprintf(&b, "Size: %s - %.0f%% - re-read %s - re-write %s\n",
				units.Bytes(cc.Size), cc.WriteShare*100,
				distString(cc.RereadDist), distString(cc.RewriteDist))
		}
		if f.HasFences {
			fmt.Fprintf(&b, "Writes before fence: %.0f%% (min distance %d instr)\n",
				f.WritesBeforeFence*100, f.MinFenceDist)
		}
		fmt.Fprintf(&b, "Pre-store choice: %s (%s)\n", f.Choice, f.Reason)
	}
	return b.String()
}

func distString(d float64) string {
	if math.IsInf(d, 1) || d > 1e12 {
		return "inf"
	}
	if d >= 10_000 {
		return fmt.Sprintf("%.1fK", d/1000)
	}
	return fmt.Sprintf("%.0f", d)
}
