package dirtbuster

import (
	"testing"

	"prestores/internal/sim"
	"prestores/internal/telemetry"
)

// TestTelemetryLineStatsAgree pins the telemetry recorder's per-line
// attribution to DirtBuster's step-3 analysis on the same workload.
//
// The two differ in exactly one rule: DirtBuster does not count a write
// that continues the same sequentiality context as a rewrite. The
// workload below writes single 8-byte words at a 256-byte stride, so no
// write ever lands within SeqGap of a context's end — every context
// stays an unpromoted singleton (ctx id 0) and the exclusion never
// fires. With that rule neutralized the two implementations must
// produce identical rewrite/re-read counts and distance sums per line.
func TestTelemetryLineStatsAgree(t *testing.T) {
	const (
		fn     = "agree.writer"
		stride = 256 // > SeqGap + line size: no context extension possible
		nLines = 40
	)
	body := func(m *sim.Machine) {
		c := m.Core(0)
		c.PushFunc(fn)
		for pass := uint64(0); pass < 3; pass++ {
			for i := uint64(0); i < nLines; i++ {
				c.WriteU64(base+i*stride, pass)
			}
			for i := uint64(0); i < nLines; i += 2 {
				c.ReadU64(base + i*stride)
			}
		}
		c.PopFunc()
	}

	// DirtBuster's step-2/3 instrumentation, as Analyze wires it.
	cfg := Config{}
	cfg.fillDefaults()
	an := &analysis{cfg: cfg, fns: map[string]*fnState{
		fn: {name: fn, buckets: make(map[uint64]*bucketAgg)},
	}}
	m1 := sim.MachineA()
	an.lineSize = m1.LineSize()
	an.cores = make([]coreState, m1.Cores())
	m1.SetHook(an.hook)
	body(m1)
	m1.SetHook(nil)
	an.finish()

	// The telemetry recorder on a fresh machine running the same body:
	// both machines are deterministic, so per-core instruction counts —
	// the distance unit — line up exactly.
	rec := telemetry.New(telemetry.Config{LineReport: true})
	m2 := sim.MachineA()
	rec.Attach(m2)
	body(m2)

	rep := rec.LineReport(0)
	stats := map[uint64]telemetry.LineStat{}
	for _, s := range rep.Lines {
		stats[s.Addr] = s
	}

	dbLines := 0
	an.lines.Ascend(func(line uint64, li lineInfo) bool {
		dbLines++
		s, ok := stats[line]
		if !ok {
			t.Errorf("line %#x tracked by DirtBuster but not telemetry", line)
			return true
		}
		if li.ctxID != 0 {
			t.Errorf("line %#x got context %d; the workload must not form sequential contexts", line, li.ctxID)
		}
		if s.Rewrites != li.rewrites || s.RewriteDistSum != li.rewriteSum || s.NearRewrites != li.nearRewrites {
			t.Errorf("line %#x rewrites: telemetry (%d, sum %d, near %d) != dirtbuster (%d, sum %d, near %d)",
				line, s.Rewrites, s.RewriteDistSum, s.NearRewrites, li.rewrites, li.rewriteSum, li.nearRewrites)
		}
		if s.Rereads != li.rereads || s.RereadDistSum != li.rereadSum || s.NearRereads != li.nearRereads {
			t.Errorf("line %#x rereads: telemetry (%d, sum %d, near %d) != dirtbuster (%d, sum %d, near %d)",
				line, s.Rereads, s.RereadDistSum, s.NearRereads, li.rereads, li.rereadSum, li.nearRereads)
		}
		if s.Writes != li.rewrites+1 {
			t.Errorf("line %#x writes = %d, want rewrites+1 = %d", line, s.Writes, li.rewrites+1)
		}
		return true
	})
	if dbLines != nLines {
		t.Fatalf("DirtBuster tracked %d lines, want %d", dbLines, nLines)
	}
	if len(stats) != dbLines {
		t.Fatalf("telemetry tracked %d lines, DirtBuster %d", len(stats), dbLines)
	}
	// Sanity: the workload actually exercises the counters.
	hot := stats[base]
	if hot.Rewrites != 2 || hot.Rereads == 0 {
		t.Fatalf("workload too weak: line %#x rewrites=%d rereads=%d", base, hot.Rewrites, hot.Rereads)
	}
}
