package units

import (
	"testing"
	"testing/quick"
)

func TestBytesFormatting(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{0, "0B"},
		{1, "1B"},
		{1023, "1023B"},
		{1024, "1.0KiB"},
		{1536, "1.5KiB"},
		{MiB, "1.0MiB"},
		{16*MiB + 200*KiB, "16.2MiB"},
		{GiB, "1.0GiB"},
		{TiB, "1.0TiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAlignDown(t *testing.T) {
	cases := []struct{ addr, align, want uint64 }{
		{0, 64, 0},
		{63, 64, 0},
		{64, 64, 64},
		{65, 64, 64},
		{255, 256, 0},
		{1000, 8, 1000},
	}
	for _, c := range cases {
		if got := AlignDown(c.addr, c.align); got != c.want {
			t.Errorf("AlignDown(%d,%d) = %d, want %d", c.addr, c.align, got, c.want)
		}
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct{ addr, align, want uint64 }{
		{0, 64, 0},
		{1, 64, 64},
		{64, 64, 64},
		{65, 64, 128},
	}
	for _, c := range cases {
		if got := AlignUp(c.addr, c.align); got != c.want {
			t.Errorf("AlignUp(%d,%d) = %d, want %d", c.addr, c.align, got, c.want)
		}
	}
}

func TestAlignProperties(t *testing.T) {
	f := func(addr uint64, shift uint8) bool {
		align := uint64(1) << (shift % 12)
		d := AlignDown(addr, align)
		u := AlignUp(addr, align)
		if d > addr || d%align != 0 {
			return false
		}
		if u < addr || u%align != 0 {
			return false
		}
		// Up and down differ by less than one alignment unit.
		return u-d < align || (u == d && addr%align == 0) || u-d == align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 64, 1 << 40} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range []uint64{0, 3, 6, 100, 1<<40 + 1} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint
	}{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {64, 6}, {1 << 20, 20}}
	for _, c := range cases {
		if got := Log2(c.in); got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(2_100_000_000, 2100*MHz); got != 1.0 {
		t.Errorf("Seconds = %v, want 1.0", got)
	}
}

func TestCyclesForBytes(t *testing.T) {
	// 64 B at 2.1 GB/s on a 2.1 GHz clock = 64 cycles.
	if got := CyclesForBytes(64, 2.1e9, 2100*MHz); got != 64 {
		t.Errorf("CyclesForBytes = %d, want 64", got)
	}
	if got := CyclesForBytes(64, 0, 2100*MHz); got != 0 {
		t.Errorf("CyclesForBytes with zero bandwidth = %d, want 0", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1.47); got != "+47.0%" {
		t.Errorf("Pct(1.47) = %q", got)
	}
	if got := Pct(0.8); got != "-20.0%" {
		t.Errorf("Pct(0.8) = %q", got)
	}
}
