// Package units provides size and cycle helpers shared across the
// simulator: byte-size constants, human-readable formatting, alignment
// arithmetic, and conversions between simulated cycles and wall time.
package units

import "fmt"

// Byte-size constants.
const (
	B   uint64 = 1
	KiB uint64 = 1 << 10
	MiB uint64 = 1 << 20
	GiB uint64 = 1 << 30
	TiB uint64 = 1 << 40
)

// Bytes formats a byte count with a binary-prefix unit, e.g. "16.2MiB".
func Bytes(n uint64) string {
	switch {
	case n >= TiB:
		return fmt.Sprintf("%.1fTiB", float64(n)/float64(TiB))
	case n >= GiB:
		return fmt.Sprintf("%.1fGiB", float64(n)/float64(GiB))
	case n >= MiB:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(MiB))
	case n >= KiB:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(KiB))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// AlignDown rounds addr down to a multiple of align. align must be a
// power of two.
func AlignDown(addr, align uint64) uint64 {
	return addr &^ (align - 1)
}

// AlignUp rounds addr up to a multiple of align. align must be a power
// of two.
func AlignUp(addr, align uint64) uint64 {
	return (addr + align - 1) &^ (align - 1)
}

// IsPow2 reports whether v is a non-zero power of two.
func IsPow2(v uint64) bool {
	return v != 0 && v&(v-1) == 0
}

// Log2 returns floor(log2(v)) for v > 0.
func Log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Cycles represents a simulated cycle count.
type Cycles = uint64

// Hz represents a clock frequency in cycles per second.
type Hz uint64

// Common clock frequencies for the evaluated machines.
const (
	GHz Hz = 1e9
	MHz Hz = 1e6
)

// Seconds converts a cycle count at frequency f to seconds.
func Seconds(c Cycles, f Hz) float64 {
	return float64(c) / float64(f)
}

// CyclesForBytes returns the number of cycles needed to transfer n
// bytes at bandwidth bytesPerSec on a clock of frequency f.
func CyclesForBytes(n uint64, bytesPerSec float64, f Hz) Cycles {
	if bytesPerSec <= 0 {
		return 0
	}
	return Cycles(float64(n) / bytesPerSec * float64(f))
}

// Pct formats a ratio as a signed percentage, e.g. 1.47 -> "+47.0%".
func Pct(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}
