// Package core holds the pre-store advice model — the vocabulary shared
// by DirtBuster (which produces advice) and the tooling and public API
// (which consume it).
//
// A pre-store placement decision is one of four choices (paper §6.2.3):
// demote when the data is re-written soon (keep it cached, publish it
// early), clean when it is re-read but not re-written (write it back,
// keep it cached), skip when it is neither (bypass the cache with
// non-temporal stores), or no pre-store at all when the access pattern
// would make one useless or harmful.
package core

import (
	"fmt"

	"prestores/internal/sim"
)

// Choice is a pre-store placement decision.
type Choice int

// Placement decisions, in the paper's decision order.
const (
	NoPrestore Choice = iota
	Demote
	Clean
	Skip
)

// String returns the choice name as the paper's reports print it.
func (c Choice) String() string {
	switch c {
	case NoPrestore:
		return "none"
	case Demote:
		return "demote"
	case Clean:
		return "clean"
	case Skip:
		return "skip"
	default:
		return fmt.Sprintf("Choice(%d)", int(c))
	}
}

// Decide applies the paper's decision procedure given the observed
// behaviour of a write region:
//
//   - eligible: the writes are sequential or shortly followed by a
//     fence (otherwise no pre-store helps);
//   - rewritten: the data is re-written soon after being written;
//   - reread: the data is re-read soon after being written.
func Decide(eligible, rewritten, reread bool) Choice {
	switch {
	case !eligible:
		return NoPrestore
	case rewritten:
		// Cleaning or skipping re-written data causes a memory write
		// per rewrite; demote publishes it but keeps it cached.
		return Demote
	case reread:
		return Clean
	default:
		return Skip
	}
}

// Apply issues the pre-store matching a choice over [addr, addr+size)
// on core cpu. Skip cannot be applied after the fact (non-temporal
// stores replace the original stores; see FallbackForSkip), so Apply
// treats it as Clean — the paper's recommended next-best option when
// rewriting the store path is impractical.
func Apply(cpu *sim.Core, addr, size uint64, c Choice) {
	switch c {
	case Demote:
		cpu.Prestore(addr, size, sim.Demote)
	case Clean, Skip:
		cpu.Prestore(addr, size, sim.Clean)
	case NoPrestore:
	}
}

// FallbackForSkip returns the choice to apply when the store path
// cannot be rewritten with non-temporal instructions (e.g. the paper's
// Fortran kernels, or ARM targets without NT story): Clean.
func FallbackForSkip(c Choice) Choice {
	if c == Skip {
		return Clean
	}
	return c
}

// Advice is one placement recommendation for a function.
type Advice struct {
	Function string
	Choice   Choice
	Reason   string
}

// String renders the advice in the paper's report style.
func (a Advice) String() string {
	return fmt.Sprintf("%s: pre-store choice: %s (%s)", a.Function, a.Choice, a.Reason)
}
