package core

import (
	"strings"
	"testing"

	"prestores/internal/sim"
)

func TestChoiceStrings(t *testing.T) {
	for c, want := range map[Choice]string{
		NoPrestore: "none", Demote: "demote", Clean: "clean", Skip: "skip",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestFallbackForSkip(t *testing.T) {
	if FallbackForSkip(Skip) != Clean {
		t.Fatal("skip fallback should be clean (paper: Fortran has no NT stores)")
	}
	for _, c := range []Choice{NoPrestore, Demote, Clean} {
		if FallbackForSkip(c) != c {
			t.Errorf("fallback changed %v", c)
		}
	}
}

func TestApplyDemote(t *testing.T) {
	m := sim.MachineA()
	c := m.Core(0)
	addr := uint64(1 << 40)
	c.Write(addr, make([]byte, 64))
	c.Fence()
	Apply(c, addr, 64, Demote)
	if c.L1().Contains(addr) {
		t.Fatal("demote advice did not demote")
	}
}

func TestApplyCleanAndSkip(t *testing.T) {
	for _, choice := range []Choice{Clean, Skip} {
		m := sim.MachineA()
		c := m.Core(0)
		dev := m.Device(sim.WindowPMEM)
		addr := uint64(1 << 40)
		c.Write(addr, make([]byte, 64))
		Apply(c, addr, 64, choice)
		c.Fence()
		if dev.Stats().BytesReceived == 0 {
			t.Fatalf("%v advice produced no write-back", choice)
		}
	}
}

func TestApplyNone(t *testing.T) {
	m := sim.MachineA()
	c := m.Core(0)
	addr := uint64(1 << 40)
	c.Write(addr, make([]byte, 64))
	before := c.Stats().Prestores
	Apply(c, addr, 64, NoPrestore)
	if c.Stats().Prestores != before {
		t.Fatal("NoPrestore issued a pre-store")
	}
}

func TestAdviceString(t *testing.T) {
	a := Advice{Function: "f", Choice: Clean, Reason: "re-read soon"}
	s := a.String()
	if !strings.Contains(s, "f") || !strings.Contains(s, "clean") || !strings.Contains(s, "re-read soon") {
		t.Fatalf("advice string %q", s)
	}
}
