// Package btree implements an in-memory B-tree keyed by uint64.
//
// DirtBuster stores one record per cache line touched by the traced
// functions (paper §6.2.3: "The information is currently stored in a
// B-Tree"); with large traces that is tens of millions of lines, so the
// structure needs cache-friendly fan-out rather than a binary tree or a
// hash map with unstable iteration order (reports iterate lines in
// address order).
package btree

// degree is the minimum number of children of an internal node. Each
// node holds between degree-1 and 2*degree-1 keys (except the root).
const degree = 32

const (
	maxKeys = 2*degree - 1
	minKeys = degree - 1
)

// Tree is a B-tree mapping uint64 keys to values of type V. The zero
// value is an empty tree ready to use.
type Tree[V any] struct {
	root *node[V]
	len  int
}

type node[V any] struct {
	keys     []uint64
	vals     []V
	children []*node[V] // nil for leaves
}

func (n *node[V]) leaf() bool { return n.children == nil }

// search returns the index of the first key >= k and whether it equals k.
func (n *node[V]) search(k uint64) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == k
}

// Len returns the number of keys stored in the tree.
func (t *Tree[V]) Len() int { return t.len }

// Get returns the value stored for key k.
func (t *Tree[V]) Get(k uint64) (V, bool) {
	n := t.root
	for n != nil {
		i, ok := n.search(k)
		if ok {
			return n.vals[i], true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	var zero V
	return zero, false
}

// Put stores v under key k, replacing any existing value.
func (t *Tree[V]) Put(k uint64, v V) {
	if t.root == nil {
		t.root = &node[V]{keys: []uint64{k}, vals: []V{v}}
		t.len = 1
		return
	}
	if len(t.root.keys) == maxKeys {
		old := t.root
		t.root = &node[V]{children: []*node[V]{old}}
		t.root.splitChild(0)
	}
	if t.root.insert(k, v) {
		t.len++
	}
}

// Update applies fn to the value stored under k, applying it to a
// fresh zero value first if k is absent. It avoids a separate Get+Put
// pair on the hot instrumentation path.
func (t *Tree[V]) Update(k uint64, fn func(v *V)) {
	if p := t.getPtr(k); p != nil {
		fn(p)
		return
	}
	var zero V
	fn(&zero)
	t.Put(k, zero)
}

// getPtr returns a pointer to the value stored under k, or nil. The
// pointer is invalidated by the next mutation of the tree.
func (t *Tree[V]) getPtr(k uint64) *V {
	n := t.root
	for n != nil {
		i, ok := n.search(k)
		if ok {
			return &n.vals[i]
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	return nil
}

// insert adds k/v below n, which must not be full. It reports whether a
// new key was inserted (false if an existing key was overwritten).
func (n *node[V]) insert(k uint64, v V) bool {
	for {
		i, ok := n.search(k)
		if ok {
			n.vals[i] = v
			return false
		}
		if n.leaf() {
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = k
			var zero V
			n.vals = append(n.vals, zero)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = v
			return true
		}
		if len(n.children[i].keys) == maxKeys {
			n.splitChild(i)
			// The promoted key may equal or precede k; re-search.
			continue
		}
		n = n.children[i]
	}
}

// splitChild splits the full child at index i, promoting its median key
// into n. n must not be full.
func (n *node[V]) splitChild(i int) {
	child := n.children[i]
	mid := maxKeys / 2
	midKey, midVal := child.keys[mid], child.vals[mid]

	right := &node[V]{
		keys: append([]uint64(nil), child.keys[mid+1:]...),
		vals: append([]V(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*node[V](nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]

	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = midKey
	var zero V
	n.vals = append(n.vals, zero)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = midVal
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key k, reporting whether it was present.
//
// Deletion uses the standard pre-emptive-merge CLRS algorithm so the
// descent never needs to back up.
func (t *Tree[V]) Delete(k uint64) bool {
	if t.root == nil {
		return false
	}
	deleted := t.root.delete(k)
	if len(t.root.keys) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	if len(t.root.keys) == 0 && t.root.leaf() {
		t.root = nil
	}
	if deleted {
		t.len--
	}
	return deleted
}

func (n *node[V]) delete(k uint64) bool {
	i, ok := n.search(k)
	if n.leaf() {
		if !ok {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	if ok {
		// Replace with predecessor from the left subtree (growing it
		// first if needed), then delete the predecessor.
		if len(n.children[i].keys) > minKeys {
			pk, pv := n.children[i].max()
			n.keys[i], n.vals[i] = pk, pv
			return n.children[i].delete(pk)
		}
		if len(n.children[i+1].keys) > minKeys {
			sk, sv := n.children[i+1].min()
			n.keys[i], n.vals[i] = sk, sv
			return n.children[i+1].delete(sk)
		}
		n.mergeChildren(i)
		return n.children[i].delete(k)
	}
	// Descend into child i, first ensuring it has > minKeys keys.
	if len(n.children[i].keys) == minKeys {
		switch {
		case i > 0 && len(n.children[i-1].keys) > minKeys:
			n.rotateRight(i)
		case i < len(n.children)-1 && len(n.children[i+1].keys) > minKeys:
			n.rotateLeft(i)
		case i > 0:
			n.mergeChildren(i - 1)
			i--
		default:
			n.mergeChildren(i)
		}
	}
	return n.children[i].delete(k)
}

func (n *node[V]) min() (uint64, V) {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0], n.vals[0]
}

func (n *node[V]) max() (uint64, V) {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	last := len(n.keys) - 1
	return n.keys[last], n.vals[last]
}

// rotateRight moves the last key of child i-1 up into n and n's
// separator down into child i.
func (n *node[V]) rotateRight(i int) {
	left, right := n.children[i-1], n.children[i]
	right.keys = append([]uint64{n.keys[i-1]}, right.keys...)
	right.vals = append([]V{n.vals[i-1]}, right.vals...)
	last := len(left.keys) - 1
	n.keys[i-1], n.vals[i-1] = left.keys[last], left.vals[last]
	left.keys = left.keys[:last]
	left.vals = left.vals[:last]
	if !left.leaf() {
		right.children = append([]*node[V]{left.children[len(left.children)-1]}, right.children...)
		left.children = left.children[:len(left.children)-1]
	}
}

// rotateLeft moves the first key of child i+1 up into n and n's
// separator down into child i.
func (n *node[V]) rotateLeft(i int) {
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.vals = append(left.vals, n.vals[i])
	n.keys[i], n.vals[i] = right.keys[0], right.vals[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	right.vals = append(right.vals[:0], right.vals[1:]...)
	if !left.leaf() {
		left.children = append(left.children, right.children[0])
		right.children = append(right.children[:0], right.children[1:]...)
	}
}

// mergeChildren merges child i, separator i, and child i+1 into one node.
func (n *node[V]) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.vals = append(left.vals, n.vals[i])
	left.keys = append(left.keys, right.keys...)
	left.vals = append(left.vals, right.vals...)
	if !left.leaf() {
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend calls fn for every key/value in ascending key order until fn
// returns false.
func (t *Tree[V]) Ascend(fn func(k uint64, v V) bool) {
	t.root.ascend(0, ^uint64(0), fn)
}

// AscendRange calls fn for keys in [lo, hi] in ascending order until fn
// returns false.
func (t *Tree[V]) AscendRange(lo, hi uint64, fn func(k uint64, v V) bool) {
	t.root.ascend(lo, hi, fn)
}

func (n *node[V]) ascend(lo, hi uint64, fn func(k uint64, v V) bool) bool {
	if n == nil {
		return true
	}
	i, _ := n.search(lo)
	for ; i < len(n.keys); i++ {
		if !n.leaf() && !n.children[i].ascend(lo, hi, fn) {
			return false
		}
		if n.keys[i] > hi {
			return true
		}
		if !fn(n.keys[i], n.vals[i]) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(lo, hi, fn)
	}
	return true
}
