package btree

import (
	"sort"
	"testing"
	"testing/quick"

	"prestores/internal/xrand"
)

func TestEmptyTree(t *testing.T) {
	var tr Tree[int]
	if tr.Len() != 0 {
		t.Fatalf("empty tree Len = %d", tr.Len())
	}
	if _, ok := tr.Get(42); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if tr.Delete(42) {
		t.Fatal("Delete on empty tree returned true")
	}
	tr.Ascend(func(k uint64, v int) bool {
		t.Fatal("Ascend on empty tree visited a key")
		return true
	})
}

func TestPutGet(t *testing.T) {
	var tr Tree[string]
	tr.Put(3, "three")
	tr.Put(1, "one")
	tr.Put(2, "two")
	for k, want := range map[uint64]string{1: "one", 2: "two", 3: "three"} {
		got, ok := tr.Get(k)
		if !ok || got != want {
			t.Errorf("Get(%d) = %q,%v want %q", k, got, ok, want)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
}

func TestPutOverwrite(t *testing.T) {
	var tr Tree[int]
	tr.Put(5, 50)
	tr.Put(5, 51)
	if v, _ := tr.Get(5); v != 51 {
		t.Fatalf("overwrite lost: got %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", tr.Len())
	}
}

func TestUpdate(t *testing.T) {
	var tr Tree[int]
	tr.Update(7, func(v *int) { *v += 3 })
	tr.Update(7, func(v *int) { *v += 4 })
	if v, _ := tr.Get(7); v != 7 {
		t.Fatalf("Update accumulated %d, want 7", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestManyInsertionsSplit(t *testing.T) {
	var tr Tree[uint64]
	const n = 10000
	for i := uint64(0); i < n; i++ {
		tr.Put(i*7%n, i*7%n*10)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tr.Get(i); !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	var tr Tree[int]
	rng := xrand.New(77)
	inserted := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := rng.Uint64n(100000)
		tr.Put(k, int(k))
		inserted[k] = true
	}
	var prev uint64
	first := true
	count := 0
	tr.Ascend(func(k uint64, v int) bool {
		if !first && k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if int(k) != v {
			t.Fatalf("value mismatch at %d", k)
		}
		prev, first = k, false
		count++
		return true
	})
	if count != len(inserted) {
		t.Fatalf("Ascend visited %d keys, want %d", count, len(inserted))
	}
}

func TestAscendEarlyStop(t *testing.T) {
	var tr Tree[int]
	for i := uint64(0); i < 100; i++ {
		tr.Put(i, int(i))
	}
	count := 0
	tr.Ascend(func(k uint64, v int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestAscendRange(t *testing.T) {
	var tr Tree[int]
	for i := uint64(0); i < 1000; i += 2 {
		tr.Put(i, int(i))
	}
	var keys []uint64
	tr.AscendRange(100, 110, func(k uint64, v int) bool {
		keys = append(keys, k)
		return true
	})
	want := []uint64{100, 102, 104, 106, 108, 110}
	if len(keys) != len(want) {
		t.Fatalf("range keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("range keys = %v, want %v", keys, want)
		}
	}
}

func TestDelete(t *testing.T) {
	var tr Tree[int]
	const n = 3000
	for i := uint64(0); i < n; i++ {
		tr.Put(i, int(i))
	}
	// Delete every third key.
	for i := uint64(0); i < n; i += 3 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		_, ok := tr.Get(i)
		if i%3 == 0 && ok {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%3 != 0 && !ok {
			t.Fatalf("key %d lost by deletion of others", i)
		}
	}
	if tr.Delete(12345678) {
		t.Fatal("Delete of absent key returned true")
	}
}

func TestDeleteAll(t *testing.T) {
	var tr Tree[int]
	rng := xrand.New(3)
	keys := rng.Perm(2000)
	for _, k := range keys {
		tr.Put(uint64(k), k)
	}
	for _, k := range rng.Perm(2000) {
		if !tr.Delete(uint64(k)) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after delete-all = %d", tr.Len())
	}
}

// TestAgainstMapReference drives the tree and a map with the same
// pseudo-random operation stream and checks they agree.
func TestAgainstMapReference(t *testing.T) {
	var tr Tree[uint64]
	ref := map[uint64]uint64{}
	rng := xrand.New(99)
	for i := 0; i < 50000; i++ {
		k := rng.Uint64n(4000)
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			tr.Put(k, v)
			ref[k] = v
		case 2:
			gotDel := tr.Delete(k)
			_, had := ref[k]
			if gotDel != had {
				t.Fatalf("step %d: Delete(%d) = %v, ref had %v", i, k, gotDel, had)
			}
			delete(ref, k)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		if got, ok := tr.Get(k); !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	// Ascend must match sorted ref keys exactly.
	var want []uint64
	for k := range ref {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []uint64
	tr.Ascend(func(k uint64, _ uint64) bool { got = append(got, k); return true })
	if len(got) != len(want) {
		t.Fatalf("Ascend count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestQuickInsertLookup(t *testing.T) {
	f := func(keys []uint64) bool {
		var tr Tree[int]
		ref := map[uint64]int{}
		for i, k := range keys {
			tr.Put(k, i)
			ref[k] = i
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// invariants walks the tree checking B-tree structural invariants.
func (t *Tree[V]) invariants(test *testing.T) {
	if t.root == nil {
		return
	}
	var walk func(n *node[V], depth int) int
	var leafDepth = -1
	walk = func(n *node[V], depth int) int {
		if len(n.keys) > maxKeys {
			test.Fatalf("node has %d keys > max %d", len(n.keys), maxKeys)
		}
		if n != t.root && len(n.keys) < minKeys {
			test.Fatalf("non-root node has %d keys < min %d", len(n.keys), minKeys)
		}
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				test.Fatalf("keys out of order in node: %v", n.keys)
			}
		}
		if n.leaf() {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				test.Fatalf("leaves at different depths: %d vs %d", leafDepth, depth)
			}
			return len(n.keys)
		}
		if len(n.children) != len(n.keys)+1 {
			test.Fatalf("internal node: %d children for %d keys", len(n.children), len(n.keys))
		}
		total := len(n.keys)
		for _, c := range n.children {
			total += walk(c, depth+1)
		}
		return total
	}
	if got := walk(t.root, 0); got != t.len {
		test.Fatalf("tree len %d, counted %d", t.len, got)
	}
}

func TestStructuralInvariants(t *testing.T) {
	var tr Tree[int]
	rng := xrand.New(1234)
	for i := 0; i < 20000; i++ {
		k := rng.Uint64n(5000)
		if rng.Intn(4) == 0 {
			tr.Delete(k)
		} else {
			tr.Put(k, int(k))
		}
		if i%2000 == 0 {
			tr.invariants(t)
		}
	}
	tr.invariants(t)
}
