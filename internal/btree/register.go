package btree

import (
	"fmt"

	"prestores/internal/scenario"
	"prestores/internal/sim"
)

func init() {
	// The B-tree is a host-memory structure (the verification oracle
	// the simulated stores are checked against), so the workload runs
	// no simulated cycles and supports no pre-store ops; it is
	// registered so spec-driven correctness sweeps can exercise it.
	scenario.Register(scenario.Workload{
		Name:        "btree",
		Description: "host-memory B-tree oracle: seeded insert/lookup/delete mix with structural self-checks",
		Params: []scenario.ParamDef{
			{Name: "keys", Kind: scenario.KindInt, Help: "keys inserted (default 10000)"},
			{Name: "deletes", Kind: scenario.KindInt, Help: "keys deleted afterwards (default keys/2)"},
			{Name: "seed", Kind: scenario.KindInt, Help: "key-mixing seed"},
		},
		Ops:         []string{"none"},
		MetricNames: []string{"inserted", "found", "deleted", "remaining"},
		Run: func(_ *sim.Machine, op string, p scenario.Params) (scenario.Metrics, error) {
			if op != "none" {
				return nil, fmt.Errorf("unknown op %q", op)
			}
			keys := p.Int("keys", 10000)
			deletes := p.Int("deletes", -1)
			if deletes < 0 {
				deletes = keys / 2
			}
			if deletes > keys {
				return nil, fmt.Errorf("deletes: must be at most keys (got %d > %d)", deletes, keys)
			}
			seed := p.Uint64("seed", 0)
			mix := func(i uint64) uint64 { // splitmix64 with the seed folded in
				z := i + seed + 0x9e3779b97f4a7c15
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				return z ^ (z >> 31)
			}
			var t Tree[uint64]
			for i := 0; i < keys; i++ {
				t.Put(mix(uint64(i)), uint64(i))
			}
			found := 0
			for i := 0; i < keys; i++ {
				if v, ok := t.Get(mix(uint64(i))); ok && v == uint64(i) {
					found++
				}
			}
			deleted := 0
			for i := 0; i < deletes; i++ {
				if t.Delete(mix(uint64(i))) {
					deleted++
				}
			}
			return scenario.Metrics{
				"inserted":  float64(keys),
				"found":     float64(found),
				"deleted":   float64(deleted),
				"remaining": float64(t.Len()),
			}, nil
		},
	})
}
