package btree

import (
	"encoding/binary"
	"testing"
)

// FuzzOps interprets the input as an operation stream and checks the
// tree against a map reference after every step.
func FuzzOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 250, 20, 30})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Tree[uint64]
		ref := map[uint64]uint64{}
		for i := 0; i+2 <= len(data); i += 2 {
			op := data[i] % 4
			key := uint64(data[i+1]) // small key space forces collisions
			switch op {
			case 0, 1:
				v := uint64(i)
				tr.Put(key, v)
				ref[key] = v
			case 2:
				gotDel := tr.Delete(key)
				_, had := ref[key]
				if gotDel != had {
					t.Fatalf("Delete(%d) = %v, ref %v", key, gotDel, had)
				}
				delete(ref, key)
			case 3:
				got, ok := tr.Get(key)
				want, had := ref[key]
				if ok != had || (ok && got != want) {
					t.Fatalf("Get(%d) = %d,%v want %d,%v", key, got, ok, want, had)
				}
			}
			if tr.Len() != len(ref) {
				t.Fatalf("Len %d != ref %d", tr.Len(), len(ref))
			}
		}
		// Final ascend must be sorted and complete.
		var prev uint64
		first := true
		count := 0
		tr.Ascend(func(k uint64, _ uint64) bool {
			if !first && k <= prev {
				t.Fatalf("out of order: %d after %d", k, prev)
			}
			prev, first = k, false
			count++
			return true
		})
		if count != len(ref) {
			t.Fatalf("ascend %d keys, ref %d", count, len(ref))
		}
	})
}

// FuzzWideKeys drives Put/Get with full-range keys.
func FuzzWideKeys(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Tree[int]
		ref := map[uint64]int{}
		for i := 0; i+8 <= len(data); i += 8 {
			k := binary.LittleEndian.Uint64(data[i : i+8])
			tr.Put(k, i)
			ref[k] = i
		}
		for k, v := range ref {
			if got, ok := tr.Get(k); !ok || got != v {
				t.Fatalf("Get(%d) = %d,%v want %d", k, got, ok, v)
			}
		}
	})
}
