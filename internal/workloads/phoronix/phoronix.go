// Package phoronix implements proxies for the Phoronix-suite
// applications of the paper's Table 2 that are *not* write-intensive —
// the rows DirtBuster screens out in step 1 (c-ray, gzip/lzma,
// build-kernel, rust-prime, numpy-like vector math). Each proxy runs a
// real miniature of the workload's algorithm against simulated memory,
// so its instruction and memory-op mix — not a synthetic stand-in —
// drives the classification.
package phoronix

import (
	"math"

	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/xrand"
)

// Result reports a proxy run.
type Result struct {
	Elapsed  units.Cycles
	Checksum float64
	Stores   uint64
	Instr    uint64
}

func measure(m *sim.Machine, fn func(c *sim.Core) float64) Result {
	c := m.Core(0)
	m.Drain()
	m.ResetStats()
	instr0 := c.Instructions()
	var sum float64
	elapsed := sim.Elapsed(m, []*sim.Core{c}, func() {
		sum = fn(c)
		m.Drain()
	})
	st := c.Stats()
	return Result{
		Elapsed:  elapsed,
		Checksum: sum,
		Stores:   st.Stores + st.NTStores,
		Instr:    c.Instructions() - instr0,
	}
}

// CRay runs a miniature of the c-ray benchmark: ray/sphere
// intersections over a small scene that lives comfortably in cache,
// with a tiny framebuffer write per pixel — overwhelmingly compute.
func CRay(m *sim.Machine, pixels int, seed uint64) Result {
	if pixels == 0 {
		pixels = 1 << 14
	}
	const spheres = 32
	scene := m.Alloc(sim.WindowDRAM, "cray.scene", spheres*4*8)
	frame := m.Alloc(sim.WindowDRAM, "cray.frame", uint64(pixels))
	// Scene setup (untimed: the benchmark loads its scene from a file
	// before the measured region).
	rng := xrand.New(seed ^ 0xc4a4)
	bk := m.Backing()
	for i := 0; i < spheres; i++ {
		base := scene.Base + uint64(i)*32
		bk.WriteU64(base, math.Float64bits(rng.Float64()*10-5))
		bk.WriteU64(base+8, math.Float64bits(rng.Float64()*10-5))
		bk.WriteU64(base+16, math.Float64bits(rng.Float64()*10-5))
		bk.WriteU64(base+24, math.Float64bits(rng.Float64()+0.2))
	}

	return measure(m, func(c *sim.Core) float64 {
		c.PushFunc("cray.render")
		defer c.PopFunc()
		var hits float64
		for p := 0; p < pixels; p++ {
			// Ray direction from the pixel grid.
			dx := float64(p%128)/64 - 1
			dy := float64(p/128%128)/64 - 1
			dz := 1.0
			norm := math.Sqrt(dx*dx + dy*dy + dz*dz)
			dx, dy, dz = dx/norm, dy/norm, dz/norm
			shade := 0.0
			for s := 0; s < spheres; s++ {
				base := scene.Base + uint64(s)*32
				cx := math.Float64frombits(c.ReadU64(base))
				cy := math.Float64frombits(c.ReadU64(base + 8))
				cz := math.Float64frombits(c.ReadU64(base + 16))
				r := math.Float64frombits(c.ReadU64(base + 24))
				// Ray-sphere: |o + t d - c|^2 = r^2 with o = origin.
				b := -2 * (dx*cx + dy*cy + dz*cz)
				cc := cx*cx + cy*cy + cz*cz - r*r
				disc := b*b - 4*cc
				c.Compute(24) // the intersection arithmetic
				if disc > 0 {
					t := (-b - math.Sqrt(disc)) / 2
					if t > 0 {
						shade = math.Max(shade, 1/(1+t))
						hits++
					}
				}
			}
			c.Write(frame.Base+uint64(p), []byte{byte(shade * 255)})
		}
		return hits
	})
}

// Gzip runs a miniature LZ77-style compressor over simulated memory:
// hash-chain match search (read-heavy) emitting a compressed stream a
// fraction of the input size. This is the gzip/lzma row of Table 2.
func Gzip(m *sim.Machine, inputSize int, seed uint64) Result {
	if inputSize == 0 {
		inputSize = 1 << 20
	}
	in := m.Alloc(sim.WindowDRAM, "gzip.in", uint64(inputSize))
	out := m.Alloc(sim.WindowDRAM, "gzip.out", uint64(inputSize))
	// Compressible input: repeated phrases with noise (untimed setup —
	// the benchmark reads its corpus from disk).
	rng := xrand.New(seed ^ 0x6219)
	bk := m.Backing()
	phrase := []byte("the quick brown fox jumps over the lazy dog. ")
	buf := make([]byte, 4096)
	for off := 0; off < inputSize; off += len(buf) {
		for i := range buf {
			if rng.Uint32()%16 == 0 {
				buf[i] = byte(rng.Uint32())
			} else {
				buf[i] = phrase[(off+i)%len(phrase)]
			}
		}
		bk.Write(in.Base+uint64(off), buf)
	}

	return measure(m, func(c *sim.Core) float64 {
		c.PushFunc("gzip.deflate")
		defer c.PopFunc()
		const window = 1 << 12
		head := make(map[uint32]int) // hash -> last position
		outPos := 0
		emitted := 0.0
		window4 := make([]byte, 4)
		tok := make([]byte, 3)
		for pos := 0; pos+4 < inputSize; {
			c.Read(in.Base+uint64(pos), window4)
			h := uint32(window4[0]) | uint32(window4[1])<<8 | uint32(window4[2])<<16
			c.Compute(8) // hashing
			prev, ok := head[h]
			head[h] = pos
			matchLen := 0
			if ok && pos-prev < window {
				// Verify the match byte by byte (reads).
				a := make([]byte, 16)
				b := make([]byte, 16)
				c.Read(in.Base+uint64(prev), a)
				c.Read(in.Base+uint64(pos), b)
				for matchLen < 16 && pos+matchLen+4 < inputSize && a[matchLen] == b[matchLen] {
					matchLen++
				}
				c.Compute(uint64(matchLen) + 4)
			}
			if matchLen >= 4 {
				tok[0] = 0xFF
				tok[1] = byte(pos - prev)
				tok[2] = byte(matchLen)
				c.Write(out.Base+uint64(outPos), tok)
				outPos += 3
				pos += matchLen
			} else {
				c.Write(out.Base+uint64(outPos), window4[:1])
				outPos++
				pos++
			}
			emitted++
		}
		return emitted + float64(outPos)
	})
}

// BuildKernel runs a miniature of a compile job: tokenize many small
// "source files" (reads + compute), build symbol tables in cache, and
// write small object outputs — the build-kernel / build-gcc rows.
func BuildKernel(m *sim.Machine, files int, seed uint64) Result {
	if files == 0 {
		files = 64
	}
	const fileSize = 8192
	src := m.Alloc(sim.WindowDRAM, "build.src", uint64(files*fileSize))
	obj := m.Alloc(sim.WindowDRAM, "build.obj", uint64(files*fileSize/8))
	// Source files are read from disk in the real benchmark (untimed).
	rng := xrand.New(seed ^ 0xb17d)
	bk := m.Backing()
	buf := make([]byte, fileSize)
	for f := 0; f < files; f++ {
		for i := range buf {
			buf[i] = byte('a' + rng.Uint32()%26)
			if rng.Uint32()%8 == 0 {
				buf[i] = ' '
			}
		}
		bk.Write(src.Base+uint64(f*fileSize), buf)
	}

	return measure(m, func(c *sim.Core) float64 {
		c.PushFunc("build.compile")
		defer c.PopFunc()
		var symbols float64
		line := make([]byte, 256)
		for f := 0; f < files; f++ {
			var hash uint64
			objPos := 0
			for off := 0; off < fileSize; off += len(line) {
				c.Read(src.Base+uint64(f*fileSize+off), line)
				// "Parse": token scanning and symbol hashing.
				for _, b := range line {
					if b == ' ' {
						symbols++
						hash = hash*31 + 7
					} else {
						hash = hash*131 + uint64(b)
					}
				}
				c.Compute(uint64(len(line) * 2))
			}
			// Emit a small object record.
			var rec [16]byte
			for i := range rec {
				rec[i] = byte(hash >> (uint(i) % 8 * 8))
			}
			c.Write(obj.Base+uint64(f*fileSize/8+objPos), rec[:])
			objPos += len(rec)
		}
		return symbols
	})
}

// RustPrime runs a miniature of the rust-prime benchmark: trial
// division over odd candidates — almost pure compute with a rare
// result write.
func RustPrime(m *sim.Machine, limit int, seed uint64) Result {
	if limit == 0 {
		limit = 30000
	}
	primes := m.Alloc(sim.WindowDRAM, "prime.out", uint64(limit)/4*8)
	return measure(m, func(c *sim.Core) float64 {
		c.PushFunc("prime.sieve")
		defer c.PopFunc()
		found := 0
		for n := 3; n < limit; n += 2 {
			isPrime := true
			trials := 0
			for d := 3; d*d <= n; d += 2 {
				trials++
				if n%d == 0 {
					isPrime = false
					break
				}
			}
			c.Compute(uint64(4 + trials*3))
			if isPrime {
				c.WriteU64(primes.Base+uint64(found)*8, uint64(n))
				found++
			}
		}
		return float64(found)
	})
}

// Numpy runs a miniature of a numpy-style reduction pipeline: large
// vector reads with scalar reductions — reads and FLOPs, few stores.
func Numpy(m *sim.Machine, n int, seed uint64) Result {
	if n == 0 {
		n = 1 << 18
	}
	vec := m.Alloc(sim.WindowDRAM, "numpy.vec", uint64(n)*8)
	// The array arrives from upstream (untimed setup).
	bk := m.Backing()
	buf := make([]byte, 4096)
	rng := xrand.New(seed ^ 0x0709)
	for off := uint64(0); off < vec.Size; off += uint64(len(buf)) {
		for i := 0; i+8 <= len(buf); i += 8 {
			v := math.Float64bits(rng.Float64())
			for b := 0; b < 8; b++ {
				buf[i+b] = byte(v >> (uint(b) * 8))
			}
		}
		bk.Write(vec.Base+off, buf)
	}
	return measure(m, func(c *sim.Core) float64 {
		c.PushFunc("numpy.reduce")
		defer c.PopFunc()
		var mean, m2 float64
		chunk := make([]byte, 4096)
		count := 0.0
		for pass := 0; pass < 3; pass++ {
			for off := uint64(0); off < vec.Size; off += uint64(len(chunk)) {
				c.Read(vec.Base+off, chunk)
				for i := 0; i+8 <= len(chunk); i += 8 {
					var v uint64
					for b := 0; b < 8; b++ {
						v |= uint64(chunk[i+b]) << (uint(b) * 8)
					}
					x := math.Float64frombits(v)
					count++
					d := x - mean
					mean += d / count
					m2 += d * (x - mean)
				}
				c.Compute(uint64(len(chunk) / 8 * 4))
			}
		}
		return mean + m2
	})
}
