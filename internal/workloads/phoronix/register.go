package phoronix

import (
	"fmt"

	"prestores/internal/scenario"
	"prestores/internal/sim"
)

// tests maps the registered test names to their entry points with the
// bench harness's default scales.
var tests = map[string]struct {
	defaultScale int
	run          func(m *sim.Machine, scale int, seed uint64) Result
}{
	"c-ray":        {1 << 11, CRay},
	"gzip":         {1 << 16, Gzip},
	"build-kernel": {12, BuildKernel},
	"rust-prime":   {8000, RustPrime},
	"numpy":        {1 << 15, Numpy},
}

func testNames() []string {
	return []string{"build-kernel", "c-ray", "gzip", "numpy", "rust-prime"}
}

func init() {
	scenario.Register(scenario.Workload{
		Name:        "phoronix",
		Description: "Phoronix suite proxies (Table 2's non-write-intensive set): c-ray, gzip, build-kernel, rust-prime, numpy",
		Params: []scenario.ParamDef{
			{Name: "test", Kind: scenario.KindString, Help: "test name: build-kernel c-ray gzip numpy rust-prime"},
			{Name: "scale", Kind: scenario.KindInt, Help: "input size (pixels, bytes, files, limit, or n); 0 picks the test default"},
			{Name: "seed", Kind: scenario.KindInt, Help: "PRNG seed"},
		},
		Ops:         []string{"none"},
		MetricNames: []string{"elapsed", "stores", "instr"},
		Run: func(m *sim.Machine, op string, p scenario.Params) (scenario.Metrics, error) {
			if op != "none" {
				return nil, fmt.Errorf("unknown op %q", op)
			}
			name := p.Str("test", "gzip")
			t, ok := tests[name]
			if !ok {
				return nil, fmt.Errorf("test: unknown test %q (one of %v)", name, testNames())
			}
			scale := p.Int("scale", 0)
			if scale == 0 {
				scale = t.defaultScale
			}
			r := t.run(m, scale, p.Uint64("seed", 0))
			return scenario.Metrics{
				"elapsed": float64(r.Elapsed),
				"stores":  float64(r.Stores),
				"instr":   float64(r.Instr),
			}, nil
		},
	})
}
