package phoronix

import (
	"testing"

	"prestores/internal/sim"
)

func TestCRayRuns(t *testing.T) {
	res := CRay(sim.MachineA(), 1<<10, 1)
	if res.Checksum == 0 {
		t.Fatal("no ray hits at all")
	}
	if res.Elapsed == 0 {
		t.Fatal("zero elapsed")
	}
}

func TestGzipCompresses(t *testing.T) {
	res := Gzip(sim.MachineA(), 1<<16, 1)
	if res.Checksum == 0 {
		t.Fatal("no tokens emitted")
	}
}

func TestBuildKernelRuns(t *testing.T) {
	res := BuildKernel(sim.MachineA(), 8, 1)
	if res.Checksum == 0 {
		t.Fatal("no symbols parsed")
	}
}

func TestRustPrimeCorrect(t *testing.T) {
	m := sim.MachineA()
	res := RustPrime(m, 1000, 1)
	// π(1000) = 168 primes; we skip 2, so expect 167.
	if res.Checksum != 167 {
		t.Fatalf("found %v odd primes below 1000, want 167", res.Checksum)
	}
}

func TestNumpyRuns(t *testing.T) {
	res := Numpy(sim.MachineA(), 1<<12, 1)
	if res.Checksum == 0 {
		t.Fatal("reduction produced zero")
	}
}

// TestNoneAreWriteIntensive is the Table 2 property: each proxy must
// classify below the paper's 10% store-instruction threshold.
func TestNoneAreWriteIntensive(t *testing.T) {
	cases := map[string]Result{
		"c-ray":        CRay(sim.MachineA(), 1<<11, 1),
		"gzip":         Gzip(sim.MachineA(), 1<<17, 1),
		"build-kernel": BuildKernel(sim.MachineA(), 12, 1),
		"rust-prime":   RustPrime(sim.MachineA(), 5000, 1),
		"numpy":        Numpy(sim.MachineA(), 1<<14, 1),
	}
	for name, res := range cases {
		share := float64(res.Stores) / float64(res.Instr)
		if share >= 0.10 {
			t.Errorf("%s: store share %.3f >= 0.10 — would wrongly classify as write-intensive", name, share)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Gzip(sim.MachineA(), 1<<15, 7)
	b := Gzip(sim.MachineA(), 1<<15, 7)
	if a.Elapsed != b.Elapsed || a.Checksum != b.Checksum {
		t.Fatal("gzip proxy diverged")
	}
}
