// Package kv defines the key-value store interface shared by the CLHT
// and Masstree implementations, and the value heap that the YCSB driver
// crafts values into.
//
// The paper's KV experiments (§7.2.3, §7.3.1) hinge on how the *value*
// is crafted before insertion: written normally (baseline), written and
// then cleaned with a pre-store, or written with non-temporal stores
// (skipping the cache). The index structures themselves are ordinary;
// it is the value traffic that dominates the write stream.
package kv

import (
	"prestores/internal/memspace"
	"prestores/internal/sim"
)

// Store is a key-value index over values held in simulated memory.
// Implementations are exercised by the YCSB driver.
type Store interface {
	Name() string
	// Put maps key to the value at [valAddr, valAddr+valLen). If the
	// key was already mapped, the previous value's location is
	// returned so the caller can free it (real stores recycle value
	// allocations through malloc; that recycling keeps hot values
	// cache-resident).
	Put(c *sim.Core, key, valAddr uint64, valLen uint32) (oldAddr uint64, oldLen uint32, replaced bool)
	// Get returns the current value location for key.
	Get(c *sim.Core, key uint64) (valAddr uint64, valLen uint32, ok bool)
}

// Scanner is the optional range-scan interface ordered stores
// implement (Masstree does; a hash table cannot).
type Scanner interface {
	// Scan visits up to limit entries with key >= start in key order,
	// stopping early when fn returns false.
	Scan(c *sim.Core, start uint64, limit int, fn func(key, valAddr uint64, valLen uint32) bool)
}

// CraftMode selects how values are written before insertion.
type CraftMode int

// Crafting treatments (paper Listing 6 and §7.2.3).
const (
	CraftBaseline CraftMode = iota // plain stores
	CraftClean                     // stores + clean pre-store
	CraftSkip                      // non-temporal stores
	CraftDemote                    // stores + demote pre-store
)

// String returns the mode name.
func (m CraftMode) String() string {
	switch m {
	case CraftBaseline:
		return "baseline"
	case CraftClean:
		return "clean"
	case CraftSkip:
		return "skip"
	case CraftDemote:
		return "demote"
	default:
		return "?"
	}
}

// ValueHeap is a malloc-like allocator for value storage: each Put
// crafts its value into a fresh slot, and superseded values are freed
// back onto per-size free lists. Recycling matters for realism: a hot
// key's successive values land on recently-freed, still-cached lines,
// exactly as ptmalloc-style allocators behave under the YCSB update
// stream.
type ValueHeap struct {
	region memspace.Region
	next   uint64
	align  uint64
	free   map[uint64][]uint64 // size class -> free slot addresses (LIFO)
}

// NewValueHeap carves size bytes from the window for value storage.
func NewValueHeap(m *sim.Machine, window string, size uint64) *ValueHeap {
	return &ValueHeap{
		region: m.Alloc(window, "kv.valueheap", size),
		align:  m.LineSize(),
		free:   make(map[uint64][]uint64),
	}
}

func (h *ValueHeap) class(n uint64) uint64 {
	return (n + h.align - 1) &^ (h.align - 1)
}

// Alloc reserves n bytes (line-aligned) and returns the address,
// preferring the most recently freed slot of the same size class.
func (h *ValueHeap) Alloc(n uint64) uint64 {
	sz := h.class(n)
	if list := h.free[sz]; len(list) > 0 {
		addr := list[len(list)-1]
		h.free[sz] = list[:len(list)-1]
		return addr
	}
	if h.next+sz > h.region.Size {
		// Heap exhausted with nothing freed: wrap (degenerate case for
		// insert-only workloads that out-size the heap).
		h.next = 0
	}
	addr := h.region.Base + h.next
	h.next += sz
	return addr
}

// Free returns a slot to its size-class free list.
func (h *ValueHeap) Free(addr uint64, n uint32) {
	sz := h.class(uint64(n))
	h.free[sz] = append(h.free[sz], addr)
}

// Craft writes val into a fresh slot using the given mode and returns
// its address. This is the paper's craftValue + optional prestore:
//
//	void *value = craftValue(...);
//	prestore(value, size, clean);     // CraftClean
func (h *ValueHeap) Craft(c *sim.Core, val []byte, mode CraftMode) uint64 {
	addr := h.Alloc(uint64(len(val)))
	// Generating the value contents (YCSB builds each field) costs real
	// on-core work before and between the stores.
	c.Compute(uint64(len(val)) / 8)
	switch mode {
	case CraftSkip:
		c.WriteNT(addr, val)
	default:
		c.Write(addr, val)
		switch mode {
		case CraftClean:
			c.Prestore(addr, uint64(len(val)), sim.Clean)
		case CraftDemote:
			c.Prestore(addr, uint64(len(val)), sim.Demote)
		}
	}
	return addr
}
