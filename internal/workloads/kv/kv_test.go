package kv

import (
	"bytes"
	"testing"

	"prestores/internal/sim"
	"prestores/internal/units"
)

func TestHeapAllocAlignment(t *testing.T) {
	m := sim.MachineA()
	h := NewValueHeap(m, sim.WindowPMEM, units.MiB)
	a := h.Alloc(100)
	b := h.Alloc(100)
	if a%64 != 0 || b%64 != 0 {
		t.Fatal("allocations not line-aligned")
	}
	if b < a+128 {
		t.Fatalf("allocations too close: %#x then %#x", a, b)
	}
}

func TestHeapFreeListRecycles(t *testing.T) {
	m := sim.MachineA()
	h := NewValueHeap(m, sim.WindowPMEM, units.MiB)
	a := h.Alloc(1024)
	h.Free(a, 1024)
	b := h.Alloc(1024)
	if b != a {
		t.Fatalf("free slot not recycled: %#x vs %#x", b, a)
	}
	// Different size class must not reuse it.
	h.Free(b, 1024)
	c := h.Alloc(64)
	if c == a {
		t.Fatal("size classes mixed")
	}
}

func TestHeapLIFO(t *testing.T) {
	m := sim.MachineA()
	h := NewValueHeap(m, sim.WindowPMEM, units.MiB)
	a := h.Alloc(256)
	b := h.Alloc(256)
	h.Free(a, 256)
	h.Free(b, 256)
	if got := h.Alloc(256); got != b {
		t.Fatalf("free list not LIFO: got %#x, want %#x", got, b)
	}
}

func TestCraftModes(t *testing.T) {
	val := make([]byte, 512)
	for i := range val {
		val[i] = byte(i * 11)
	}
	for _, mode := range []CraftMode{CraftBaseline, CraftClean, CraftSkip, CraftDemote} {
		m := sim.MachineA()
		h := NewValueHeap(m, sim.WindowPMEM, units.MiB)
		c := m.Core(0)
		addr := h.Craft(c, val, mode)
		got := make([]byte, len(val))
		c.Read(addr, got)
		if !bytes.Equal(got, val) {
			t.Fatalf("%v: crafted value corrupted", mode)
		}
	}
}

func TestCraftCleanPushesToDevice(t *testing.T) {
	m := sim.MachineA()
	h := NewValueHeap(m, sim.WindowPMEM, units.MiB)
	c := m.Core(0)
	dev := m.Device(sim.WindowPMEM)
	h.Craft(c, make([]byte, 1024), CraftClean)
	c.Fence()
	if dev.Stats().BytesReceived < 1024 {
		t.Fatalf("clean craft pushed only %d bytes", dev.Stats().BytesReceived)
	}
}

func TestCraftSkipBypassesCache(t *testing.T) {
	m := sim.MachineA()
	h := NewValueHeap(m, sim.WindowPMEM, units.MiB)
	c := m.Core(0)
	addr := h.Craft(c, make([]byte, 256), CraftSkip)
	c.Fence()
	if c.L1().Contains(addr) {
		t.Fatal("skip-crafted value is cached")
	}
}

func TestCraftModeString(t *testing.T) {
	for mode, want := range map[CraftMode]string{
		CraftBaseline: "baseline", CraftClean: "clean",
		CraftSkip: "skip", CraftDemote: "demote",
	} {
		if mode.String() != want {
			t.Errorf("%d.String() = %q", mode, mode.String())
		}
	}
}
