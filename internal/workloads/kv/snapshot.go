package kv

import (
	"fmt"
	"sort"

	"prestores/internal/snap"
)

// Size returns the heap's region size in bytes. Warm-prefix keys embed
// it: heaps of different sizes wrap and recycle differently, so their
// load-phase states are not interchangeable.
func (h *ValueHeap) Size() uint64 { return h.region.Size }

// SnapshotState serializes the heap's host-side allocator state — the
// bump cursor and the per-class free lists — for a checkpoint annex.
// Free classes are written in sorted order and each list in LIFO order,
// so identical heap states always produce identical bytes.
func (h *ValueHeap) SnapshotState(w *snap.Writer) {
	w.Section("KVHP")
	w.U64(h.next)
	classes := make([]uint64, 0, len(h.free))
	for c := range h.free {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	w.U64(uint64(len(classes)))
	for _, cl := range classes {
		w.U64(cl)
		list := h.free[cl]
		w.U64(uint64(len(list)))
		for _, addr := range list {
			w.U64(addr)
		}
	}
}

// RestoreState replaces the heap's allocator state with a serialized
// one. The heap must have been constructed with the same region and
// alignment as the producer's; the annex carries only mutable state.
func (h *ValueHeap) RestoreState(r *snap.Reader) error {
	r.Section("KVHP")
	next := r.U64()
	n := r.U64()
	free := make(map[uint64][]uint64, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		cl := r.U64()
		k := r.U64()
		var list []uint64
		for j := uint64(0); j < k && r.Err() == nil; j++ {
			list = append(list, r.U64())
		}
		free[cl] = list
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("kv: value heap: %w", err)
	}
	h.next = next
	h.free = free
	return nil
}
