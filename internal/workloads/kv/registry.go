package kv

import (
	"sort"

	"prestores/internal/sim"
)

// The store registry lets the scenario layer (and any other caller)
// construct a key-value store implementation by name. Store packages
// (clht, masstree) register factories at init time, so the "store"
// parameter of declarative workloads like ycsb is data, not code.

// StoreFactory builds a store instance on m with its values placed in
// the named memory window, using the package's default sizing.
type StoreFactory func(m *sim.Machine, window string) Store

var storeRegistry = map[string]StoreFactory{}

// RegisterStore adds a named store factory; duplicates panic at init
// time.
func RegisterStore(name string, f StoreFactory) {
	if name == "" || f == nil {
		panic("kv: store registration needs a name and a factory")
	}
	if _, dup := storeRegistry[name]; dup {
		panic("kv: duplicate store " + name)
	}
	storeRegistry[name] = f
}

// NewStore builds the named store.
func NewStore(name string, m *sim.Machine, window string) (Store, bool) {
	f, ok := storeRegistry[name]
	if !ok {
		return nil, false
	}
	return f(m, window), true
}

// Stores returns the registered store names, sorted.
func Stores() []string {
	out := make([]string, 0, len(storeRegistry))
	for n := range storeRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
