package x9

import (
	"testing"

	"prestores/internal/sim"
)

func TestMessagesDelivered(t *testing.T) {
	res := Run(sim.MachineBFast(), Config{Iters: 500, MsgSize: 256, Seed: 3})
	if res.Msgs != 500 {
		t.Fatalf("delivered %d messages", res.Msgs)
	}
	if res.Checksum == 0 {
		t.Fatal("consumer read no payload bytes")
	}
	if res.LatencyCyc <= 0 {
		t.Fatal("no latency measured")
	}
}

func TestDemotePreservesPayloads(t *testing.T) {
	base := Run(sim.MachineBFast(), Config{Iters: 500, MsgSize: 256, Seed: 3, Mode: Baseline})
	dem := Run(sim.MachineBFast(), Config{Iters: 500, MsgSize: 256, Seed: 3, Mode: Demote})
	if base.Checksum != dem.Checksum {
		t.Fatalf("demote changed message contents: %d vs %d", base.Checksum, dem.Checksum)
	}
}

func TestDemoteCutsLatency(t *testing.T) {
	for _, mk := range []func() *sim.Machine{sim.MachineBFast, sim.MachineBSlow} {
		base := Run(mk(), Config{Iters: 2000, MsgSize: 512, Seed: 3, Mode: Baseline})
		dem := Run(mk(), Config{Iters: 2000, MsgSize: 512, Seed: 3, Mode: Demote})
		if dem.LatencyCyc >= base.LatencyCyc {
			t.Fatalf("demote latency %.0f >= baseline %.0f", dem.LatencyCyc, base.LatencyCyc)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(sim.MachineBSlow(), Config{Iters: 300, MsgSize: 128, Seed: 3})
	b := Run(sim.MachineBSlow(), Config{Iters: 300, MsgSize: 128, Seed: 3})
	if a.LatencyCyc != b.LatencyCyc || a.Checksum != b.Checksum {
		t.Fatal("x9 runs diverged")
	}
}

func TestSlowFPGAHigherLatency(t *testing.T) {
	fast := Run(sim.MachineBFast(), Config{Iters: 1000, MsgSize: 512, Seed: 3})
	slow := Run(sim.MachineBSlow(), Config{Iters: 1000, MsgSize: 512, Seed: 3})
	if slow.LatencyCyc <= fast.LatencyCyc {
		t.Fatalf("slow FPGA latency %.0f <= fast %.0f", slow.LatencyCyc, fast.LatencyCyc)
	}
}

func TestModeString(t *testing.T) {
	if Baseline.String() != "baseline" || Demote.String() != "demote" {
		t.Fatal("mode names")
	}
}
