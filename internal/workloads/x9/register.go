package x9

import (
	"fmt"

	"prestores/internal/scenario"
	"prestores/internal/sim"
)

func modeFor(op string) (Mode, error) {
	switch op {
	case "none":
		return Baseline, nil
	case "demote":
		return Demote, nil
	}
	return 0, fmt.Errorf("unknown op %q", op)
}

func init() {
	scenario.Register(scenario.Workload{
		Name:        "x9",
		Description: "X9 message passing (Listing 8): producer fills slab-allocated messages, consumer polls; demote publishes the payload early",
		Params: []scenario.ParamDef{
			{Name: "slots", Kind: scenario.KindInt, Help: "ring capacity (default 8)"},
			{Name: "msg_size", Kind: scenario.KindInt, Help: "payload bytes (default 512)"},
			{Name: "iters", Kind: scenario.KindInt, Help: "messages (default 20000)"},
			{Name: "window", Kind: scenario.KindString, Help: "memory window (default the remote window)"},
			{Name: "seed", Kind: scenario.KindInt, Help: "PRNG seed"},
		},
		Ops:         []string{"none", "demote"},
		MetricNames: []string{"elapsed", "msgs", "latency_cyc", "producer_cas"},
		Run: func(m *sim.Machine, op string, p scenario.Params) (scenario.Metrics, error) {
			mode, err := modeFor(op)
			if err != nil {
				return nil, err
			}
			r := Run(m, Config{
				Slots:   p.Uint64("slots", 0),
				MsgSize: p.Uint64("msg_size", 0),
				Iters:   p.Int("iters", 20000),
				Mode:    mode,
				Window:  p.Str("window", ""),
				Seed:    p.Uint64("seed", 0),
			})
			return scenario.Metrics{
				"elapsed":      float64(r.Elapsed),
				"msgs":         float64(r.Msgs),
				"latency_cyc":  r.LatencyCyc,
				"producer_cas": float64(r.ProducerCAS),
			}, nil
		},
	})
}
