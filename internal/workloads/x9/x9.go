// Package x9 ports the X9 message-passing benchmark (paper §7.3.2,
// Listing 8): a producer thread fills a message structure and publishes
// it to an inbox with a compare-and-swap; a consumer polls the inbox,
// reads the payload, and releases the slot. X9 reuses the message
// structures to avoid per-message allocation, so the same lines are
// rewritten constantly — which is why DirtBuster recommends *demoting*
// (keep the data cached for the rewrite, but publish it early) rather
// than cleaning or skipping.
package x9

import (
	"prestores/internal/memspace"
	"prestores/internal/sim"
	"prestores/internal/units"
)

// Mode selects the pre-store treatment of fill_msg.
type Mode int

// Treatments.
const (
	Baseline Mode = iota
	Demote
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Demote {
		return "demote"
	}
	return "baseline"
}

// Slot states.
const (
	slotFree    = 0
	slotWriting = 1
	slotReady   = 2
)

// Inbox is a fixed ring of message slots in simulated memory. Each
// slot holds a state word in its own line followed by the payload.
type Inbox struct {
	region   memspace.Region
	slots    uint64
	slotSize uint64
	msgSize  uint64
	line     uint64
}

// Config parameterizes the benchmark.
type Config struct {
	Slots   uint64 // ring capacity; default 8
	MsgSize uint64 // payload bytes; default 512
	Iters   int
	Mode    Mode
	Window  string // default remote
	Seed    uint64
}

// Result reports message-passing latency.
type Result struct {
	Elapsed     units.Cycles
	Msgs        uint64
	LatencyCyc  float64 // average produce->consume latency per message
	Checksum    uint64
	ProducerCAS units.Cycles // cycles the producer spent in fences/atomics
}

// NewInbox allocates the ring.
func NewInbox(m *sim.Machine, cfg Config) *Inbox {
	line := m.LineSize()
	slotSize := line + units.AlignUp(cfg.MsgSize, line)
	return &Inbox{
		region:   m.Alloc(cfg.Window, "x9.inbox", cfg.Slots*slotSize),
		slots:    cfg.Slots,
		slotSize: slotSize,
		msgSize:  cfg.MsgSize,
		line:     line,
	}
}

func (ib *Inbox) stateAddr(i uint64) uint64   { return ib.region.Base + i*ib.slotSize }
func (ib *Inbox) payloadAddr(i uint64) uint64 { return ib.region.Base + i*ib.slotSize + ib.line }

// Run executes the ping-pong: producer on core 0, consumer on core 1,
// strictly alternating (the latency benchmark in §7.3.2 measures the
// time from message crafting to consumption).
func Run(m *sim.Machine, cfg Config) Result {
	if cfg.Slots == 0 {
		cfg.Slots = 8
	}
	if cfg.MsgSize == 0 {
		cfg.MsgSize = 512
	}
	if cfg.Window == "" {
		cfg.Window = sim.WindowRemote
	}
	ib := NewInbox(m, cfg)
	prod, cons := m.Core(0), m.Core(1)
	payload := make([]byte, cfg.MsgSize)
	buf := make([]byte, cfg.MsgSize)

	var res Result
	m.Drain()
	m.ResetStats()

	elapsed := sim.Elapsed(m, []*sim.Core{prod, cons}, func() {
		var totalLatency units.Cycles
		for i := 0; i < cfg.Iters; i++ {
			slot := uint64(i) % ib.slots
			m.SyncCores()
			start := prod.Now()

			// Producer: fill_msg + optional demote + publish via CAS.
			prod.PushFunc("x9.producer_fn")
			prod.PushFunc("x9.fill_msg")
			for b := range payload {
				payload[b] = byte(i + b)
			}
			prod.Write(ib.payloadAddr(slot), payload)
			prod.PopFunc()
			if cfg.Mode == Demote {
				// Listing 8: prestore(m[...], sizeof(msg), demote)
				prod.Prestore(ib.payloadAddr(slot), cfg.MsgSize, sim.Demote)
			}
			prod.PushFunc("x9.write_to_inbox")
			// x9_write_to_inbox first checks the slot is free (the
			// consumer wrote the state word last, so this read pulls
			// the line across the machine) and then publishes with a
			// CAS. The check is the window the demote overlaps with.
			for prod.ReadU64(ib.stateAddr(slot)) != slotFree {
				prod.Compute(4)
			}
			for !prod.CAS(ib.stateAddr(slot), slotFree, slotReady) {
				prod.Compute(4)
			}
			prod.PopFunc()

			// Consumer: poll the state, read the payload, release.
			cons.PushFunc("x9.consumer_fn")
			if cons.Now() < prod.Now() {
				// The consumer cannot observe the message before it is
				// published.
				waitUntil(cons, prod.Now())
			}
			for cons.ReadU64(ib.stateAddr(slot)) != slotReady {
				cons.Compute(4)
			}
			cons.Read(ib.payloadAddr(slot), buf)
			res.Checksum += uint64(buf[0]) + uint64(buf[len(buf)-1])
			cons.CAS(ib.stateAddr(slot), slotReady, slotFree)
			cons.PopFunc()

			totalLatency += cons.Now() - start
		}
		res.LatencyCyc = float64(totalLatency) / float64(cfg.Iters)
	})

	res.Elapsed = elapsed
	res.Msgs = uint64(cfg.Iters)
	res.ProducerCAS = prod.Stats().FenceStall
	return res
}

// waitUntil advances the core's clock to at least t (poll loop).
func waitUntil(c *sim.Core, t units.Cycles) {
	for c.Now() < t {
		c.Compute(4)
	}
}
