package clht

import (
	"testing"
	"testing/quick"

	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/xrand"
)

func newTable(t *testing.T) (*sim.Machine, *Table) {
	t.Helper()
	m := sim.MachineA()
	return m, New(m, Config{Buckets: 1 << 12, Overflow: 4 * units.MiB})
}

func TestPutGet(t *testing.T) {
	m, tab := newTable(t)
	c := m.Core(0)
	tab.Put(c, 1, 0x10000001000, 64)
	tab.Put(c, 2, 0x10000002000, 128)
	addr, n, ok := tab.Get(c, 1)
	if !ok || addr != 0x10000001000 || n != 64 {
		t.Fatalf("Get(1) = %#x,%d,%v", addr, n, ok)
	}
	addr, n, ok = tab.Get(c, 2)
	if !ok || addr != 0x10000002000 || n != 128 {
		t.Fatalf("Get(2) = %#x,%d,%v", addr, n, ok)
	}
}

func TestGetMissing(t *testing.T) {
	m, tab := newTable(t)
	if _, _, ok := tab.Get(m.Core(0), 999); ok {
		t.Fatal("Get of missing key succeeded")
	}
}

func TestKeyZero(t *testing.T) {
	m, tab := newTable(t)
	c := m.Core(0)
	tab.Put(c, 0, 0x10000000040, 8)
	if _, _, ok := tab.Get(c, 0); !ok {
		t.Fatal("key 0 not stored (empty-slot sentinel clash?)")
	}
}

func TestUpdateReturnsOld(t *testing.T) {
	m, tab := newTable(t)
	c := m.Core(0)
	if _, _, replaced := tab.Put(c, 7, 0x10000001000, 64); replaced {
		t.Fatal("fresh insert reported replacement")
	}
	old, oldLen, replaced := tab.Put(c, 7, 0x10000002000, 128)
	if !replaced || old != 0x10000001000 || oldLen != 64 {
		t.Fatalf("replace = %#x,%d,%v", old, oldLen, replaced)
	}
	if addr, n, _ := tab.Get(c, 7); addr != 0x10000002000 || n != 128 {
		t.Fatal("update lost")
	}
	if tab.Stats().Updates != 1 || tab.Stats().Inserts != 1 {
		t.Fatalf("stats %+v", tab.Stats())
	}
}

func TestChaining(t *testing.T) {
	m := sim.MachineA()
	// Tiny table: 16 buckets x 3 slots, force chains.
	tab := New(m, Config{Buckets: 16, Overflow: units.MiB})
	c := m.Core(0)
	const n = 300
	for k := uint64(0); k < n; k++ {
		tab.Put(c, k, 0x10000000000+k*64, 64)
	}
	if tab.Stats().Chained == 0 {
		t.Fatal("no overflow buckets despite 300 keys in 16 buckets")
	}
	for k := uint64(0); k < n; k++ {
		addr, _, ok := tab.Get(c, k)
		if !ok || addr != 0x10000000000+k*64 {
			t.Fatalf("chained Get(%d) = %#x,%v", k, addr, ok)
		}
	}
}

func TestAgainstMapReference(t *testing.T) {
	m, tab := newTable(t)
	c := m.Core(0)
	ref := map[uint64]uint64{}
	rng := xrand.New(31)
	for i := 0; i < 20000; i++ {
		k := rng.Uint64n(3000)
		v := 0x10000000000 + rng.Uint64n(1<<20)&^63
		tab.Put(c, k, v, 64)
		ref[k] = v
	}
	for k, v := range ref {
		got, _, ok := tab.Get(c, k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %#x,%v want %#x", k, got, ok, v)
		}
	}
}

func TestQuickRoundtrip(t *testing.T) {
	m, tab := newTable(t)
	c := m.Core(0)
	f := func(key uint64, off uint32) bool {
		key %= 1 << 30
		v := 0x10000000000 + uint64(off)&^63
		tab.Put(c, key, v, 64)
		got, _, ok := tab.Get(c, key)
		return ok && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-pow2 buckets accepted")
		}
	}()
	New(sim.MachineA(), Config{Buckets: 100})
}

func TestLockCyclesAreCounted(t *testing.T) {
	m, tab := newTable(t)
	c := m.Core(0)
	before := c.Stats().Atomics
	tab.Put(c, 1, 0x10000001000, 64)
	if c.Stats().Atomics == before {
		t.Fatal("put did not use an atomic for the bucket lock")
	}
}

func TestMachineBLineSize(t *testing.T) {
	// On Machine B (128B lines) buckets hold 7 slots.
	m := sim.MachineBFast()
	tab := New(m, Config{Buckets: 1 << 10, Window: sim.WindowRemote})
	c := m.Core(0)
	for k := uint64(0); k < 500; k++ {
		tab.Put(c, k, 0x10000000000+k*128, 128)
	}
	for k := uint64(0); k < 500; k++ {
		if _, _, ok := tab.Get(c, k); !ok {
			t.Fatalf("B-machine Get(%d) failed", k)
		}
	}
}
