// Package clht implements a cache-line hash table in simulated memory,
// following the CLHT design the paper evaluates (David, Guerraoui,
// Trigonakis: "Asynchronized Concurrency"): each bucket is exactly one
// cache line holding a lock word, a chain pointer, and key/value slots;
// readers are lock-free, writers lock the bucket with an atomic
// operation.
//
// The locking atomic is what couples CLHT to pre-stores on weak-memory
// machines: inserting an object computes its hash and locks its bucket,
// and "the atomic operations used in the lock have a fence semantics
// and force the CPU to make the crafted value visible to all the cores"
// (§7.3.1). Pre-storing the value after crafting overlaps that
// publication with the hash computation and bucket traversal.
package clht

import (
	"fmt"

	"prestores/internal/memspace"
	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/xrand"
)

// Bucket layout (one cache line):
//
//	offset 0:  lock word (0 free / 1 held)
//	offset 8:  next bucket address (0 = end of chain)
//	offset 16: slots: {key u64, valref u64} pairs filling the line
//
// A valref packs the value address (lower 48 bits) and length (upper 16
// bits). Key 0 marks an empty slot; user keys are offset by 1.
const (
	offLock  = 0
	offNext  = 8
	offSlots = 16
	slotSize = 16
)

func packRef(addr uint64, n uint32) uint64 { return addr | uint64(n)<<48 }
func unpackRef(ref uint64) (uint64, uint32) {
	return ref & (1<<48 - 1), uint32(ref >> 48)
}

// Stats counts table activity.
type Stats struct {
	Puts      uint64
	Gets      uint64
	Hits      uint64
	Updates   uint64
	Inserts   uint64
	Chained   uint64 // overflow buckets allocated
	LockSpins uint64
}

// Table is a CLHT-style hash table resident in simulated memory.
type Table struct {
	m        *sim.Machine
	buckets  memspace.Region
	overflow memspace.Region
	nBuckets uint64
	lineSize uint64
	slots    uint64 // slots per bucket
	nextOvf  uint64
	stats    Stats
}

// Config sizes the table.
type Config struct {
	Buckets  uint64 // power of two; default 1<<16
	Window   string // memory window; default PMEM
	Overflow uint64 // overflow pool bytes; default buckets/4 lines
}

// New allocates the bucket array and overflow pool on m.
func New(m *sim.Machine, cfg Config) *Table {
	if cfg.Buckets == 0 {
		cfg.Buckets = 1 << 16
	}
	if !units.IsPow2(cfg.Buckets) {
		panic(fmt.Sprintf("clht: bucket count %d not a power of two", cfg.Buckets))
	}
	if cfg.Window == "" {
		cfg.Window = sim.WindowPMEM
	}
	line := m.LineSize()
	if cfg.Overflow == 0 {
		cfg.Overflow = cfg.Buckets / 4 * line
	}
	return &Table{
		m:        m,
		buckets:  m.Alloc(cfg.Window, "clht.buckets", cfg.Buckets*line),
		overflow: m.Alloc(cfg.Window, "clht.overflow", cfg.Overflow),
		nBuckets: cfg.Buckets,
		lineSize: line,
		slots:    (line - offSlots) / slotSize,
	}
}

// Name implements kv.Store.
func (t *Table) Name() string { return "clht" }

// Stats returns activity counters.
func (t *Table) Stats() Stats { return t.stats }

func (t *Table) bucketAddr(c *sim.Core, key uint64) uint64 {
	// CLHT hashes the full key (YCSB keys are ~23-byte strings); the
	// hash plus bucket arithmetic is the window a pre-store of the
	// crafted value overlaps with (§7.3.1).
	c.Compute(96)
	h := xrand.Hash64(key + 1)
	return t.buckets.Base + (h&(t.nBuckets-1))*t.lineSize
}

// lock acquires the bucket lock with test-and-test-and-set: the lock
// word is read first (fetching the bucket line — often a remote-memory
// miss), then claimed with a CAS. The CAS has fence semantics — it is
// the instruction that forces crafted values out of private buffers
// (§7.3.1) — while the preceding load is the window a pre-store
// overlaps with.
func (t *Table) lock(c *sim.Core, bucket uint64) {
	for {
		if c.ReadU64(bucket+offLock) != 0 {
			t.stats.LockSpins++
			c.Compute(4) // back-off
			continue
		}
		if c.CAS(bucket+offLock, 0, 1) {
			return
		}
		t.stats.LockSpins++
		c.Compute(4)
	}
}

// unlock releases the bucket lock (release store: fence, then store).
func (t *Table) unlock(c *sim.Core, bucket uint64) {
	c.Fence()
	c.WriteU64(bucket+offLock, 0)
}

// Put inserts or updates key -> (valAddr, valLen), returning any
// replaced value's location so the caller can free it.
func (t *Table) Put(c *sim.Core, key, valAddr uint64, valLen uint32) (uint64, uint32, bool) {
	t.stats.Puts++
	c.PushFunc("clht.put")
	defer c.PopFunc()
	ukey := key + 1
	bucket := t.bucketAddr(c, key)
	t.lock(c, bucket)
	cur := bucket
	var freeSlot uint64
	for {
		for s := uint64(0); s < t.slots; s++ {
			slotAddr := cur + offSlots + s*slotSize
			k := c.ReadU64(slotAddr)
			switch k {
			case ukey:
				oldAddr, oldLen := unpackRef(c.ReadU64(slotAddr + 8))
				c.WriteU64(slotAddr+8, packRef(valAddr, valLen))
				t.stats.Updates++
				t.unlock(c, bucket)
				return oldAddr, oldLen, true
			case 0:
				if freeSlot == 0 {
					freeSlot = slotAddr
				}
			}
		}
		next := c.ReadU64(cur + offNext)
		if next == 0 {
			break
		}
		cur = next
	}
	if freeSlot == 0 {
		// Chain a fresh overflow bucket.
		if t.nextOvf+t.lineSize > t.overflow.Size {
			panic("clht: overflow pool exhausted; size the table for the key count")
		}
		nb := t.overflow.Base + t.nextOvf
		t.nextOvf += t.lineSize
		t.stats.Chained++
		c.Memset(nb, t.lineSize, 0)
		c.WriteU64(cur+offNext, nb)
		freeSlot = nb + offSlots
	}
	c.WriteU64(freeSlot+8, packRef(valAddr, valLen))
	c.WriteU64(freeSlot, ukey)
	t.stats.Inserts++
	t.unlock(c, bucket)
	return 0, 0, false
}

// Get returns the value reference for key. Reads are lock-free.
func (t *Table) Get(c *sim.Core, key uint64) (uint64, uint32, bool) {
	t.stats.Gets++
	c.PushFunc("clht.get")
	defer c.PopFunc()
	ukey := key + 1
	cur := t.bucketAddr(c, key)
	for cur != 0 {
		for s := uint64(0); s < t.slots; s++ {
			slotAddr := cur + offSlots + s*slotSize
			if c.ReadU64(slotAddr) == ukey {
				addr, n := unpackRef(c.ReadU64(slotAddr + 8))
				t.stats.Hits++
				return addr, n, true
			}
		}
		cur = c.ReadU64(cur + offNext)
	}
	return 0, 0, false
}
