package clht

import (
	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/kv"
)

func init() {
	// Default sizing matches the bench harness's kvSetup.
	kv.RegisterStore("clht", func(m *sim.Machine, window string) kv.Store {
		return New(m, Config{Window: window, Buckets: 1 << 18, Overflow: 64 * units.MiB})
	})
}
