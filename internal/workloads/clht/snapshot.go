package clht

import (
	"fmt"

	"prestores/internal/snap"
)

// SnapshotState serializes the table's host-side mutable state — the
// overflow-pool cursor and the activity counters — for a checkpoint
// annex. The bucket and overflow contents live in simulated memory and
// are covered by the machine snapshot.
func (t *Table) SnapshotState(w *snap.Writer) {
	w.Section("CLHT")
	w.U64(t.nextOvf)
	w.U64(t.stats.Puts)
	w.U64(t.stats.Gets)
	w.U64(t.stats.Hits)
	w.U64(t.stats.Updates)
	w.U64(t.stats.Inserts)
	w.U64(t.stats.Chained)
	w.U64(t.stats.LockSpins)
}

// RestoreState replaces the table's host-side state with a serialized
// one. The table must have been constructed with the same geometry as
// the producer's.
func (t *Table) RestoreState(r *snap.Reader) error {
	r.Section("CLHT")
	nextOvf := r.U64()
	var st Stats
	st.Puts = r.U64()
	st.Gets = r.U64()
	st.Hits = r.U64()
	st.Updates = r.U64()
	st.Inserts = r.U64()
	st.Chained = r.U64()
	st.LockSpins = r.U64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("clht: %w", err)
	}
	t.nextOvf = nextOvf
	t.stats = st
	return nil
}
