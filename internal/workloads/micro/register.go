package micro

import (
	"fmt"

	"prestores/internal/scenario"
	"prestores/internal/sim"
	"prestores/internal/units"
)

// Scenario-layer registration: the three listings become declarative
// workloads. Parameter derivations replicate the hand-written bench
// experiments exactly (iters = volume/elem_size/threads in uint64
// arithmetic, elements = footprint/elem_size), so specs reproduce
// their tables byte for byte.

func modeFor(op string) (Mode, error) {
	switch op {
	case "none":
		return Baseline, nil
	case "clean":
		return CleanPrestore, nil
	case "demote":
		return DemotePrestore, nil
	case "skip":
		return SkipNT, nil
	}
	return 0, fmt.Errorf("unknown op %q", op)
}

func init() {
	scenario.Register(scenario.Workload{
		Name:        "listing1",
		Description: "Listing 1 §4.1 microbenchmark: threads write elements to a tiered window, optionally re-reading one field",
		Params: []scenario.ParamDef{
			{Name: "elem_size", Kind: scenario.KindInt, Help: "element size in bytes (64B random .. 4KiB sequential)"},
			{Name: "footprint", Kind: scenario.KindInt, Help: "array footprint in bytes; elements = footprint/elem_size (default 32 MiB)"},
			{Name: "threads", Kind: scenario.KindInt, Help: "writer threads (default 1)"},
			{Name: "volume", Kind: scenario.KindInt, Help: "total bytes written; iters = volume/elem_size/threads (default 48 MiB)"},
			{Name: "iters", Kind: scenario.KindInt, Help: "element writes per thread; overrides volume when set"},
			{Name: "reread", Kind: scenario.KindBool, Help: "re-read one field after writing (Listing 1 line 5)"},
			{Name: "sequential", Kind: scenario.KindBool, Help: "sequential element order instead of random"},
			{Name: "window", Kind: scenario.KindString, Help: "memory window (default pmem)"},
			{Name: "seed", Kind: scenario.KindInt, Help: "PRNG seed"},
		},
		Ops:         []string{"none", "clean", "demote", "skip"},
		MetricNames: []string{"elapsed", "elapsed_per_op", "write_amp", "bytes_written", "media_bytes"},
		Run: func(m *sim.Machine, op string, p scenario.Params) (scenario.Metrics, error) {
			mode, err := modeFor(op)
			if err != nil {
				return nil, err
			}
			esz := p.Uint64("elem_size", 1024)
			if esz == 0 {
				return nil, fmt.Errorf("elem_size: must be positive")
			}
			threads := p.Int("threads", 1)
			if threads <= 0 || threads > m.Cores() {
				return nil, fmt.Errorf("threads: must be in 1..%d for %s", m.Cores(), m.Name())
			}
			iters := p.Int("iters", 0)
			if iters == 0 {
				iters = int(p.Uint64("volume", 48*units.MiB) / esz / uint64(threads))
			}
			r := RunListing1(m, Listing1Config{
				ElemSize:   esz,
				Elements:   int(p.Uint64("footprint", 32*units.MiB) / esz),
				Threads:    threads,
				Iters:      iters,
				Mode:       mode,
				ReRead:     p.Bool("reread", false),
				Sequential: p.Bool("sequential", false),
				Window:     p.Str("window", ""),
				Seed:       p.Uint64("seed", 0),
			})
			return scenario.Metrics{
				"elapsed":        float64(r.Elapsed),
				"elapsed_per_op": r.ElapsedPerOp,
				"write_amp":      r.WriteAmp,
				"bytes_written":  float64(r.BytesWritten),
				"media_bytes":    float64(r.MediaBytes),
			}, nil
		},
	})

	scenario.Register(scenario.Workload{
		Name:        "listing2",
		Description: "Listing 2 §4.2 microbenchmark: write, do unrelated reads, fence — measures fence drain stalls on weak machines",
		Params: []scenario.ParamDef{
			{Name: "elements", Kind: scenario.KindInt, Help: "one-line elements in remote memory (default 100000)"},
			{Name: "reads", Kind: scenario.KindInt, Help: "L1 reads between the write and the fence"},
			{Name: "iters", Kind: scenario.KindInt, Help: "write-prestore-read-fence sequences (default 20000)"},
			{Name: "window", Kind: scenario.KindString, Help: "memory window (default the remote window)"},
			{Name: "seed", Kind: scenario.KindInt, Help: "PRNG seed"},
		},
		Ops:         []string{"none", "demote"},
		MetricNames: []string{"elapsed", "fence_stall", "cycles_per_iter"},
		Run: func(m *sim.Machine, op string, p scenario.Params) (scenario.Metrics, error) {
			mode, err := modeFor(op)
			if err != nil {
				return nil, err
			}
			r := RunListing2(m, Listing2Config{
				Elements: p.Int("elements", 100000),
				Reads:    p.Int("reads", 0),
				Iters:    p.Int("iters", 20000),
				Mode:     mode,
				Window:   p.Str("window", ""),
				Seed:     p.Uint64("seed", 0),
			})
			return scenario.Metrics{
				"elapsed":         float64(r.Elapsed),
				"fence_stall":     float64(r.FenceStall),
				"cycles_per_iter": r.CyclesPerIter,
			}, nil
		},
	})

	scenario.Register(scenario.Workload{
		Name:        "listing3",
		Description: "Listing 3 §5 microbenchmark: cleaning a constantly re-written line",
		Params: []scenario.ParamDef{
			{Name: "iters", Kind: scenario.KindInt, Help: "rewrites (default 200000)"},
			{Name: "window", Kind: scenario.KindString, Help: "memory window (default pmem)"},
			{Name: "seed", Kind: scenario.KindInt, Help: "PRNG seed"},
		},
		Ops:         []string{"none", "clean"},
		MetricNames: []string{"elapsed", "cycles_per_rew"},
		Run: func(m *sim.Machine, op string, p scenario.Params) (scenario.Metrics, error) {
			mode, err := modeFor(op)
			if err != nil {
				return nil, err
			}
			r := RunListing3(m, Listing3Config{
				Iters:  p.Int("iters", 200000),
				Mode:   mode,
				Window: p.Str("window", ""),
				Seed:   p.Uint64("seed", 0),
			})
			return scenario.Metrics{
				"elapsed":        float64(r.Elapsed),
				"cycles_per_rew": r.CyclesPerRew,
			}, nil
		},
	})
}
