// Package micro contains the paper's microbenchmarks: Listing 1
// (random element writes with optional clean pre-stores, §4.1),
// Listing 2 (write + reads + fence with optional demote, §4.2), and
// Listing 3 (pathological cleaning of a hot line, §5), plus the skip
// variants discussed in §5.
package micro

import (
	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/xrand"
)

// Mode selects the pre-store treatment of a microbenchmark.
type Mode int

// Treatments.
const (
	Baseline Mode = iota
	CleanPrestore
	DemotePrestore
	SkipNT
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case CleanPrestore:
		return "clean"
	case DemotePrestore:
		return "demote"
	case SkipNT:
		return "skip"
	default:
		return "?"
	}
}

// Listing1Config parameterizes the §4.1 microbenchmark.
type Listing1Config struct {
	ElemSize uint64 // element size: 64 B (random writes) .. 4 KB (sequential)
	Elements int    // number of elements; footprint should exceed the LLC
	Threads  int
	Iters    int  // element writes per thread
	Mode     Mode // Baseline, CleanPrestore, or SkipNT
	ReRead   bool // line 5 of Listing 1: re-read the element's field
	// Sequential replaces the random element choice with a strictly
	// sequential walk — a log-structured writer. The paper's §8 notes
	// that sequential-by-design data structures still get no hardware
	// ordering guarantee; this knob demonstrates it.
	Sequential bool
	Window     string
	Seed       uint64
}

// Listing1Result reports elapsed simulated time and device-side
// amplification.
type Listing1Result struct {
	Elapsed       units.Cycles
	BytesWritten  uint64  // application-level bytes stored
	WriteAmp      float64 // device media bytes per byte received
	CheckSum      uint64  // functional check: sum of re-read fields
	ElapsedPerOp  float64 // cycles per element write
	MediaBytes    uint64
	BytesReceived uint64
}

// RunListing1 executes Listing 1 on m and returns the measurements.
//
//	parallel_for(...) {
//	    size_t idx = rand() % nb_elements;
//	    memcpy(&elts[idx], ..., <sizeof elt>);
//	    prestore(&elts[idx], <sizeof elt>, clean);   // mode=clean
//	    total += elt[idx].field;                     // if ReRead
//	}
func RunListing1(m *sim.Machine, cfg Listing1Config) Listing1Result {
	if cfg.Window == "" {
		cfg.Window = sim.WindowPMEM
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	region := m.Alloc(cfg.Window, "listing1.elts", cfg.ElemSize*uint64(cfg.Elements))
	dev := m.Device(cfg.Window)

	cores := make([]*sim.Core, cfg.Threads)
	rngs := make([]*xrand.PCG, cfg.Threads)
	for t := range cores {
		cores[t] = m.Core(t)
		rngs[t] = xrand.NewStream(cfg.Seed, uint64(t)+1)
	}
	var sum uint64
	m.Drain()
	m.ResetStats()
	dev.ResetStats()

	elapsed := sim.Elapsed(m, cores, func() {
		sim.RunInterleaved(cores, cfg.Iters, func(t, i int, c *sim.Core) {
			c.PushFunc("listing1.body")
			var idx uint64
			if cfg.Sequential {
				// Each thread appends to its own contiguous log span.
				span := uint64(cfg.Elements) / uint64(cfg.Threads)
				idx = uint64(t)*span + uint64(i)%span
			} else {
				idx = rngs[t].Uint64n(uint64(cfg.Elements))
			}
			addr := region.Base + idx*cfg.ElemSize
			switch cfg.Mode {
			case SkipNT:
				c.WriteNT(addr, fill(cfg.ElemSize, byte(i)))
			default:
				c.Write(addr, fill(cfg.ElemSize, byte(i)))
			}
			if cfg.Mode == CleanPrestore {
				c.Prestore(addr, cfg.ElemSize, sim.Clean)
			}
			if cfg.ReRead {
				sum += c.ReadU64(addr)
			}
			c.PopFunc()
		})
		m.Drain()
	})

	st := dev.Stats()
	res := Listing1Result{
		Elapsed:       elapsed,
		BytesWritten:  cfg.ElemSize * uint64(cfg.Iters) * uint64(cfg.Threads),
		WriteAmp:      st.WriteAmplification(),
		CheckSum:      sum,
		MediaBytes:    st.MediaBytesWritten,
		BytesReceived: st.BytesReceived,
	}
	res.ElapsedPerOp = float64(elapsed) / float64(cfg.Iters)
	return res
}

// fill returns a buffer of n bytes with a recognizable pattern.
func fill(n uint64, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

// Listing2Config parameterizes the §4.2 microbenchmark.
type Listing2Config struct {
	Elements int    // elements of one line each in remote memory
	Reads    int    // L1 reads between the write and the fence
	Iters    int    // write-prestore-read-fence sequences
	Mode     Mode   // Baseline or DemotePrestore
	Window   string // defaults to the remote window
	Seed     uint64
}

// Listing2Result reports elapsed time and fence stalls.
type Listing2Result struct {
	Elapsed       units.Cycles
	FenceStall    units.Cycles
	CyclesPerIter float64
}

// RunListing2 executes Listing 2 on m (normally a Machine B variant):
//
//	while(...) {
//	    size_t idx = rand() % num_elements;
//	    memset(&array[idx], ..., <line size>);
//	    prestore(&array[idx], <line size>, demote);  // mode=demote
//	    for (int i = 0; i < n; i++) read(&L1_data[i]);
//	    fence();
//	}
func RunListing2(m *sim.Machine, cfg Listing2Config) Listing2Result {
	if cfg.Window == "" {
		cfg.Window = sim.WindowRemote
	}
	line := m.LineSize()
	region := m.Alloc(cfg.Window, "listing2.array", line*uint64(cfg.Elements))
	// L1-resident scratch the loop reads from; lives in local DRAM.
	l1data := m.Alloc(sim.WindowDRAM, "listing2.l1data", 4*units.KiB)

	core := m.Core(0)
	rng := xrand.New(cfg.Seed)
	// Warm the L1-resident data once.
	var scratch [8]byte
	for off := uint64(0); off < l1data.Size; off += line {
		core.Read(l1data.Base+off, scratch[:])
	}
	m.ResetStats()

	elapsed := sim.Elapsed(m, []*sim.Core{core}, func() {
		for i := 0; i < cfg.Iters; i++ {
			core.PushFunc("listing2.body")
			idx := rng.Uint64n(uint64(cfg.Elements))
			addr := region.Base + idx*line
			core.Memset(addr, line, byte(i))
			if cfg.Mode == DemotePrestore {
				core.Prestore(addr, line, sim.Demote)
			}
			for r := 0; r < cfg.Reads; r++ {
				off := uint64(r) % (l1data.Size / line) * line
				core.Read(l1data.Base+off, scratch[:])
			}
			core.Fence()
			core.PopFunc()
		}
	})
	return Listing2Result{
		Elapsed:       elapsed,
		FenceStall:    core.Stats().FenceStall,
		CyclesPerIter: float64(elapsed) / float64(cfg.Iters),
	}
}

// Listing3Config parameterizes the §5 pathological microbenchmark.
type Listing3Config struct {
	Iters  int
	Mode   Mode // Baseline or CleanPrestore
	Window string
	Seed   uint64
}

// Listing3Result reports the elapsed cycles.
type Listing3Result struct {
	Elapsed      units.Cycles
	CyclesPerRew float64
}

// RunListing3 rewrites one cache line in a loop, optionally cleaning it
// each time:
//
//	char data[CACHE_LINE_SIZE];
//	while(...) {
//	    memset(data, ..., CACHE_LINE_SIZE);
//	    prestore(data, CACHE_LINE_SIZE, clean);   // mode=clean
//	}
//
// With clean, every iteration forces a write-back of a line that would
// otherwise just be overwritten in cache — the paper measures a ~75×
// slowdown.
func RunListing3(m *sim.Machine, cfg Listing3Config) Listing3Result {
	if cfg.Window == "" {
		cfg.Window = sim.WindowPMEM
	}
	line := m.LineSize()
	region := m.Alloc(cfg.Window, "listing3.data", line)
	core := m.Core(0)
	m.ResetStats()
	elapsed := sim.Elapsed(m, []*sim.Core{core}, func() {
		for i := 0; i < cfg.Iters; i++ {
			core.PushFunc("listing3.body")
			core.Memset(region.Base, line, byte(i))
			if cfg.Mode == CleanPrestore {
				core.Prestore(region.Base, line, sim.Clean)
			}
			core.PopFunc()
		}
		m.Drain()
	})
	return Listing3Result{
		Elapsed:      elapsed,
		CyclesPerRew: float64(elapsed) / float64(cfg.Iters),
	}
}
