package micro

import (
	"testing"

	"prestores/internal/sim"
	"prestores/internal/units"
)

func l1cfg(mode Mode, threads int) Listing1Config {
	// The written volume must exceed the caches several times over, or
	// the baseline legitimately absorbs its writes in cache and the
	// bandwidth effect never appears (DESIGN.md §6).
	return Listing1Config{
		ElemSize: 1024, Elements: int(16 * units.MiB / 1024),
		Threads: threads, Iters: 10000, Mode: mode, ReRead: true, Seed: 42,
	}
}

func TestListing1ChecksumInvariant(t *testing.T) {
	base := RunListing1(sim.MachineA(), l1cfg(Baseline, 2))
	clean := RunListing1(sim.MachineA(), l1cfg(CleanPrestore, 2))
	skip := RunListing1(sim.MachineA(), l1cfg(SkipNT, 2))
	if base.CheckSum != clean.CheckSum || base.CheckSum != skip.CheckSum {
		t.Fatalf("checksums diverge: %d / %d / %d", base.CheckSum, clean.CheckSum, skip.CheckSum)
	}
}

func TestListing1CleanEliminatesAmplification(t *testing.T) {
	base := RunListing1(sim.MachineA(), l1cfg(Baseline, 2))
	clean := RunListing1(sim.MachineA(), l1cfg(CleanPrestore, 2))
	if base.WriteAmp < 2.0 {
		t.Fatalf("baseline amp %.2f too low to be interesting", base.WriteAmp)
	}
	if clean.WriteAmp > 1.05 {
		t.Fatalf("clean amp %.2f, want ~1.0", clean.WriteAmp)
	}
	if clean.Elapsed >= base.Elapsed {
		t.Fatalf("clean (%d) not faster than baseline (%d)", clean.Elapsed, base.Elapsed)
	}
}

func TestListing1Determinism(t *testing.T) {
	a := RunListing1(sim.MachineA(), l1cfg(Baseline, 2))
	b := RunListing1(sim.MachineA(), l1cfg(Baseline, 2))
	if a.Elapsed != b.Elapsed || a.CheckSum != b.CheckSum {
		t.Fatal("listing1 runs diverged")
	}
}

func TestListing2DemoteShape(t *testing.T) {
	// No reads before the fence: demotion gains nothing; a medium read
	// count: demotion pays.
	run := func(reads int, mode Mode) float64 {
		return RunListing2(sim.MachineBFast(), Listing2Config{
			Elements: 20000, Reads: reads, Iters: 3000, Mode: mode, Seed: 7,
		}).CyclesPerIter
	}
	base0, dem0 := run(0, Baseline), run(0, DemotePrestore)
	if dem0 < base0*0.98 {
		t.Fatalf("demote helped with 0 reads: %v vs %v", dem0, base0)
	}
	base40, dem40 := run(40, Baseline), run(40, DemotePrestore)
	if dem40 >= base40*0.9 {
		t.Fatalf("demote did not help with 40 reads: %v vs %v", dem40, base40)
	}
}

func TestListing2FenceStallDrops(t *testing.T) {
	cfg := Listing2Config{Elements: 20000, Reads: 40, Iters: 2000, Seed: 7}
	cfg.Mode = Baseline
	base := RunListing2(sim.MachineBFast(), cfg)
	cfg.Mode = DemotePrestore
	dem := RunListing2(sim.MachineBFast(), cfg)
	if dem.FenceStall >= base.FenceStall {
		t.Fatalf("fence stall did not drop: %d vs %d", dem.FenceStall, base.FenceStall)
	}
}

func TestListing3Slowdown(t *testing.T) {
	base := RunListing3(sim.MachineA(), Listing3Config{Iters: 20000, Mode: Baseline})
	clean := RunListing3(sim.MachineA(), Listing3Config{Iters: 20000, Mode: CleanPrestore})
	slowdown := clean.CyclesPerRew / base.CyclesPerRew
	// The paper reports ~75x; the exact factor is the memory-vs-cache
	// write latency ratio, so accept a broad band.
	if slowdown < 20 {
		t.Fatalf("pathological clean slowdown only %.0fx", slowdown)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Baseline: "baseline", CleanPrestore: "clean",
		DemotePrestore: "demote", SkipNT: "skip",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestListing1SequentialStillAmplifies(t *testing.T) {
	// §8: a perfectly sequential application write stream gets no
	// hardware ordering guarantee — the baseline still amplifies.
	cfg := l1cfg(Baseline, 2)
	cfg.Sequential = true
	base := RunListing1(sim.MachineA(), cfg)
	if base.WriteAmp < 2.0 {
		t.Fatalf("sequential baseline amp %.2f — expected amplification", base.WriteAmp)
	}
	cfg.Mode = CleanPrestore
	clean := RunListing1(sim.MachineA(), cfg)
	if clean.WriteAmp > 1.05 {
		t.Fatalf("sequential clean amp %.2f", clean.WriteAmp)
	}
}
