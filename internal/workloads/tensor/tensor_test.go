package tensor

import (
	"testing"

	"prestores/internal/sim"
)

func TestTensorRoundtrip(t *testing.T) {
	m := sim.MachineA()
	c := m.Core(0)
	tn := NewTensor(m, sim.WindowPMEM, "t", 1000)
	tn.Fill(c, func(i int) float64 { return float64(i) * 0.5 })
	if got := tn.Checksum(m); got == 0 {
		t.Fatal("checksum zero after fill")
	}
}

func TestEvaluatorSum(t *testing.T) {
	m := sim.MachineA()
	c := m.Core(0)
	a := NewTensor(m, sim.WindowPMEM, "a", 256)
	b := NewTensor(m, sim.WindowPMEM, "b", 256)
	dst := NewTensor(m, sim.WindowPMEM, "d", 256)
	a.Fill(c, func(i int) float64 { return float64(i) })
	b.Fill(c, func(i int) float64 { return float64(2 * i) })
	NewEvaluator(m, c, Baseline).Run(SumOp, dst, a, b, false)
	// Spot-check dst[i] = 3i via the backing store.
	buf := make([]byte, 8)
	m.Backing().Read(dst.Addr(100), buf)
	got := leU64(buf)
	want := uint64(0)
	{
		var tmp [8]byte
		putF64(tmp[:], 300)
		want = leU64(tmp[:])
	}
	if got != want {
		t.Fatalf("dst[100] bits = %#x, want 3*100", got)
	}
}

func TestEvaluatorModesAgree(t *testing.T) {
	run := func(mode Mode) float64 {
		m := sim.MachineA()
		c := m.Core(0)
		a := NewTensor(m, sim.WindowPMEM, "a", 4096)
		b := NewTensor(m, sim.WindowPMEM, "b", 4096)
		dst := NewTensor(m, sim.WindowPMEM, "d", 4096)
		a.Fill(c, func(i int) float64 { return float64(i % 13) })
		b.Fill(c, func(i int) float64 { return float64(i % 7) })
		NewEvaluator(m, c, mode).Run(ProdOp, dst, a, b, false)
		return dst.Checksum(m)
	}
	base := run(Baseline)
	if clean := run(Clean); clean != base {
		t.Fatalf("clean checksum %v != %v", clean, base)
	}
	if skip := run(Skip); skip != base {
		t.Fatalf("skip checksum %v != %v", skip, base)
	}
}

func TestDependentEvalModesAgree(t *testing.T) {
	run := func(mode Mode) float64 {
		m := sim.MachineA()
		c := m.Core(0)
		a := NewTensor(m, sim.WindowPMEM, "a", 2048)
		b := NewTensor(m, sim.WindowPMEM, "b", 2048)
		dst := NewTensor(m, sim.WindowPMEM, "d", 2048)
		a.Fill(c, func(i int) float64 { return float64(i % 13) })
		b.Fill(c, func(i int) float64 { return float64(i % 5) })
		NewEvaluator(m, c, mode).Run(nil, dst, a, b, true)
		return dst.Checksum(m)
	}
	if run(Baseline) != run(Skip) {
		t.Fatal("previous-packet dependency broke under NT stores")
	}
}

func TestTrainChecksumInvariant(t *testing.T) {
	cfg := TrainConfig{BatchSize: 2, Features: 512, Layers: 2, Steps: 1}
	run := func(mode Mode) TrainResult {
		c := cfg
		c.Mode = mode
		return Train(sim.MachineA(), c)
	}
	base := run(Baseline)
	clean := run(Clean)
	skip := run(Skip)
	if base.Checksum != clean.Checksum || base.Checksum != skip.Checksum {
		t.Fatalf("training result depends on pre-store mode: %v / %v / %v",
			base.Checksum, clean.Checksum, skip.Checksum)
	}
}

func TestTrainCleanReducesAmplification(t *testing.T) {
	cfg := TrainConfig{BatchSize: 4, Features: 1024, Layers: 2, Steps: 1}
	base := Train(sim.MachineA(), TrainConfig{BatchSize: cfg.BatchSize, Features: cfg.Features, Layers: cfg.Layers, Steps: cfg.Steps, Mode: Baseline})
	clean := Train(sim.MachineA(), TrainConfig{BatchSize: cfg.BatchSize, Features: cfg.Features, Layers: cfg.Layers, Steps: cfg.Steps, Mode: Clean})
	if clean.WriteAmp >= base.WriteAmp {
		t.Fatalf("clean amp %.2f >= baseline %.2f", clean.WriteAmp, base.WriteAmp)
	}
}

func TestModeString(t *testing.T) {
	if Baseline.String() != "baseline" || Clean.String() != "clean" || Skip.String() != "skip" {
		t.Fatal("mode names")
	}
}
