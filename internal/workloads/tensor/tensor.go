// Package tensor ports the memory behaviour of TensorFlow's Eigen
// tensor evaluator (paper §7.2.1, Listing 4): the templated
// Eigen::TensorEvaluator<...>::run() loop evaluates an elementwise
// operation packet by packet and writes the result tensor sequentially.
//
// DirtBuster's findings on the real workload: the templated function
// accounts for 30-50% of all writes to memory; half of its writes are
// sequential; of those, large (16.2 MB) output tensors are never
// re-read or re-written (clean/skip candidates) while small (240 B)
// tensors are re-read within ~2 instructions (must NOT be skipped).
// Cleaning after each line is a one-line change (Listing 4 line 8);
// skipping requires rewriting evalPacket with non-temporal stores and
// loses because evalPacket re-reads previously written packets
// (a[x] = f(a[x - 4*PacketSize])).
package tensor

import (
	"math"

	"prestores/internal/memspace"
	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/xrand"
)

// Mode selects the pre-store treatment of the evaluator loop.
type Mode int

// Treatments (paper Figure 7).
const (
	Baseline Mode = iota
	Clean         // prestore(&data[i], 64, clean) in the unrolled loop
	Skip          // evalPacket rewritten with non-temporal stores
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case Clean:
		return "clean"
	case Skip:
		return "skip"
	default:
		return "?"
	}
}

// Tensor is a float64 vector in simulated memory.
type Tensor struct {
	region memspace.Region
	n      int
}

// NewTensor allocates an n-element tensor in the window.
func NewTensor(m *sim.Machine, window, name string, n int) *Tensor {
	return &Tensor{region: m.Alloc(window, name, uint64(n)*8), n: n}
}

// Len returns the element count.
func (t *Tensor) Len() int { return t.n }

// Addr returns the address of element i.
func (t *Tensor) Addr(i int) uint64 { return t.region.Base + uint64(i)*8 }

// Fill initializes the tensor (timed, baseline stores).
func (t *Tensor) Fill(c *sim.Core, f func(i int) float64) {
	const chunk = 512
	buf := make([]byte, chunk*8)
	for base := 0; base < t.n; base += chunk {
		n := chunk
		if base+n > t.n {
			n = t.n - base
		}
		for i := 0; i < n; i++ {
			putF64(buf[i*8:], f(base+i))
		}
		c.Write(t.Addr(base), buf[:n*8])
	}
}

// Checksum folds the tensor through the backing store (untimed).
func (t *Tensor) Checksum(m *sim.Machine) float64 {
	var sum float64
	buf := make([]byte, 8)
	for i := 0; i < t.n; i += 7 {
		m.Backing().Read(t.Addr(i), buf)
		sum += math.Float64frombits(leU64(buf))
	}
	return sum
}

// Op is a packet-wise tensor operation, mirroring Eigen's scalar_sum_op
// and friends.
type Op func(dst, a, b []float64)

// SumOp is Eigen::internal::scalar_sum_op: dst = a + b.
func SumOp(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// ProdOp is Eigen::internal::scalar_product_op: dst = a * b.
func ProdOp(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// ReluGradOp models an activation-gradient op with a dependency on the
// previously written packet, the pattern that makes skipping lose:
// dst[x] = f(dst[x - 4*PacketSize], a[x], b[x]).
func reluGradDep(dst, prev, a, b []float64) {
	for i := range dst {
		p := 0.0
		if prev != nil {
			p = prev[i]
		}
		v := a[i]*0.5 + b[i]*0.5 + p*0.01
		if v < 0 {
			v = 0
		}
		dst[i] = v
	}
}

// PacketSize matches Eigen's AVX packet of 8 doubles.
const PacketSize = 8

// unroll is the manual 4-packet unroll of TensorExecutor.h line 272.
const unroll = 4

// Evaluator runs elementwise tensor expressions, issuing the same
// memory traffic as Eigen::TensorEvaluator<...>::run().
type Evaluator struct {
	m    *sim.Machine
	core *sim.Core
	mode Mode
}

// NewEvaluator returns an evaluator on core c.
func NewEvaluator(m *sim.Machine, c *sim.Core, mode Mode) *Evaluator {
	return &Evaluator{m: m, core: c, mode: mode}
}

// Run evaluates dst = op(a, b) over whole tensors with the unrolled
// packet loop, applying the configured pre-store treatment.
func (e *Evaluator) Run(op Op, dst, a, b *Tensor, dependsOnPrev bool) {
	c := e.core
	c.PushFunc("eigen.TensorEvaluator.run")
	defer c.PopFunc()
	n := dst.n
	chunk := unroll * PacketSize // 32 doubles = 256 B = 4 lines
	abuf := make([]float64, chunk)
	bbuf := make([]float64, chunk)
	dbuf := make([]float64, chunk)
	prev := make([]float64, chunk)
	havePrev := false
	out := make([]byte, chunk*8)

	for i := 0; i+chunk <= n; i += chunk {
		readF64s(c, a.Addr(i), abuf)
		readF64s(c, b.Addr(i), bbuf)
		if dependsOnPrev {
			// evalPacket loads the previously written packet; with
			// non-temporal stores this load misses all the way to
			// memory, which is why skipping decreases performance.
			if havePrev && i >= chunk {
				readF64s(c, dst.Addr(i-chunk), prev)
			}
			if havePrev {
				reluGradDep(dbuf, prev, abuf, bbuf)
			} else {
				reluGradDep(dbuf, nil, abuf, bbuf)
			}
			havePrev = true
		} else {
			op(dbuf, abuf, bbuf)
		}
		for k := 0; k < chunk; k++ {
			putF64(out[k*8:], dbuf[k])
		}
		switch e.mode {
		case Skip:
			c.WriteNT(dst.Addr(i), out)
		default:
			c.Write(dst.Addr(i), out)
			if e.mode == Clean {
				// Listing 4 line 8: prestore(&evaluator.data()[i], ..., clean)
				c.Prestore(dst.Addr(i), uint64(len(out)), sim.Clean)
			}
		}
		c.Compute(uint64(chunk)) // packet ALU work
	}
}

// TrainConfig parameterizes the CNN-training proxy (pts/tensorflow).
type TrainConfig struct {
	BatchSize int // paper sweeps 1..250
	Features  int // per-sample activation width
	Layers    int
	Steps     int
	Mode      Mode
	Window    string
	Seed      uint64
}

// TrainResult reports a training run.
type TrainResult struct {
	Elapsed  units.Cycles
	WriteAmp float64
	Checksum float64
}

// Train runs the training proxy: per step and layer, a forward
// elementwise evaluation into large activation tensors (the
// 16.2 MB-tensor case), a backward pass with the previous-packet
// dependency, and a small-tensor bias update (the 240 B-tensor case
// that is re-read immediately and must stay cached). A batch-scaled
// im2col-style shuffle models the *other*, non-sequential write traffic
// the paper left unpatched: the evaluator's share of writes drops from
// ~50% at small batches to ~30% at large ones, which is why Figure 7's
// gain decays with batch size.
func Train(m *sim.Machine, cfg TrainConfig) TrainResult {
	if cfg.Window == "" {
		cfg.Window = sim.WindowPMEM
	}
	if cfg.Features == 0 {
		cfg.Features = 4096
	}
	if cfg.Layers == 0 {
		cfg.Layers = 3
	}
	if cfg.Steps == 0 {
		cfg.Steps = 2
	}
	c := m.Core(0)
	ev := NewEvaluator(m, c, cfg.Mode)
	// Activation tensors are large even at batch 1 (224x224 images);
	// batch size adds to the footprint rather than defining it.
	n := 1<<20 + cfg.BatchSize*cfg.Features
	// The unpatched write traffic grows with the batch.
	shuffleN := cfg.BatchSize * cfg.Features * 4

	acts := make([]*Tensor, cfg.Layers+1)
	grads := make([]*Tensor, cfg.Layers+1)
	for l := range acts {
		acts[l] = NewTensor(m, cfg.Window, "tensor.act", n)
		grads[l] = NewTensor(m, cfg.Window, "tensor.grad", n)
	}
	// Small per-layer bias tensors (240 B / 30 doubles in the paper).
	bias := make([]*Tensor, cfg.Layers)
	biasG := make([]*Tensor, cfg.Layers)
	for l := range bias {
		bias[l] = NewTensor(m, sim.WindowDRAM, "tensor.bias", 32)
		biasG[l] = NewTensor(m, sim.WindowDRAM, "tensor.biasgrad", 32)
	}

	// im2col-style scratch whose writes are scattered (unpatched).
	var shuffle *Tensor
	if shuffleN > 0 {
		shuffle = NewTensor(m, cfg.Window, "tensor.im2col", shuffleN)
	}

	c.PushFunc("tf.init")
	acts[0].Fill(c, func(i int) float64 { return float64(i%97) * 0.01 })
	for l := range bias {
		bias[l].Fill(c, func(i int) float64 { return float64(i) * 0.1 })
	}
	c.PopFunc()

	dev := m.Device(cfg.Window)
	m.Drain()
	m.ResetStats()
	dev.ResetStats()

	rng := xrand.New(cfg.Seed ^ 0x7f)
	elapsed := sim.ElapsedAll(m, func() {
		for s := 0; s < cfg.Steps; s++ {
			c.PushFunc("tf.forward")
			for l := 0; l < cfg.Layers; l++ {
				ev.Run(SumOp, acts[l+1], acts[l], acts[l], false)
			}
			c.PopFunc()
			// im2col / data layout shuffle: scattered writes that
			// DirtBuster reports as non-sequential; the paper tried
			// pre-storing such functions and measured no effect.
			if shuffle != nil {
				c.PushFunc("tf.im2col")
				var block [64]byte
				for i := 0; i < shuffleN/8; i++ {
					dst := rng.Intn(shuffleN - 8)
					c.Write(shuffle.Addr(dst), block[:])
					c.Compute(4)
				}
				c.PopFunc()
			}
			c.PushFunc("tf.backward")
			for l := cfg.Layers - 1; l >= 0; l-- {
				ev.Run(nil, grads[l], acts[l+1], acts[l], true)
				// Small-tensor traffic: bias/batch-norm updates run
				// through the same templated evaluator hundreds of
				// times per layer, each writing a ~256 B tensor that
				// is re-read within a couple of instructions. These
				// are the tensors that make DirtBuster choose clean
				// over skip (§7.2.1: "Size: 240B - 60% - re-read 2").
				smallEv := NewEvaluator(m, c, modeForSmall(cfg.Mode))
				for s := 0; s < 192; s++ {
					smallEv.Run(SumOp, biasG[l], bias[l], bias[l], false)
					var probe [8]byte
					c.Read(biasG[l].Addr(0), probe[:]) // immediate re-read
				}
			}
			c.PopFunc()
		}
		m.Drain()
	})
	return TrainResult{
		Elapsed:  elapsed,
		WriteAmp: dev.Stats().WriteAmplification(),
		Checksum: acts[cfg.Layers].Checksum(m) + grads[0].Checksum(m),
	}
}

// modeForSmall keeps the small-tensor path on the cached-write path:
// the paper's patch cleans only the large-tensor writes; DirtBuster's
// whole point is that skipping the small re-read tensors would hurt.
func modeForSmall(m Mode) Mode {
	if m == Skip {
		return Skip // the skip patch rewrites evalPacket for all callers
	}
	return Baseline
}

func readF64s(c *sim.Core, addr uint64, dst []float64) {
	buf := make([]byte, len(dst)*8)
	c.Read(addr, buf)
	for i := range dst {
		dst[i] = math.Float64frombits(leU64(buf[i*8:]))
	}
}

func putF64(b []byte, v float64) {
	u := math.Float64bits(v)
	b[0] = byte(u)
	b[1] = byte(u >> 8)
	b[2] = byte(u >> 16)
	b[3] = byte(u >> 24)
	b[4] = byte(u >> 32)
	b[5] = byte(u >> 40)
	b[6] = byte(u >> 48)
	b[7] = byte(u >> 56)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
