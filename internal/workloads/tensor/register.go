package tensor

import (
	"fmt"

	"prestores/internal/scenario"
	"prestores/internal/sim"
)

func modeFor(op string) (Mode, error) {
	switch op {
	case "none":
		return Baseline, nil
	case "clean":
		return Clean, nil
	case "skip":
		return Skip, nil
	}
	return 0, fmt.Errorf("unknown op %q", op)
}

func init() {
	scenario.Register(scenario.Workload{
		Name:        "tensor-train",
		Description: "x9lib tensor training loop (§7.3): per-batch activations written once, consumed next layer",
		Params: []scenario.ParamDef{
			{Name: "batch", Kind: scenario.KindInt, Help: "samples per step (paper sweeps 1..250)"},
			{Name: "features", Kind: scenario.KindInt, Help: "activation width per sample"},
			{Name: "layers", Kind: scenario.KindInt, Help: "layers per step"},
			{Name: "steps", Kind: scenario.KindInt, Help: "training steps"},
			{Name: "window", Kind: scenario.KindString, Help: "memory window (default pmem)"},
			{Name: "seed", Kind: scenario.KindInt, Help: "PRNG seed"},
		},
		Ops:         []string{"none", "clean", "skip"},
		MetricNames: []string{"elapsed", "write_amp"},
		Run: func(m *sim.Machine, op string, p scenario.Params) (scenario.Metrics, error) {
			mode, err := modeFor(op)
			if err != nil {
				return nil, err
			}
			r := Train(m, TrainConfig{
				BatchSize: p.Int("batch", 0),
				Features:  p.Int("features", 0),
				Layers:    p.Int("layers", 0),
				Steps:     p.Int("steps", 0),
				Mode:      mode,
				Window:    p.Str("window", ""),
				Seed:      p.Uint64("seed", 0),
			})
			return scenario.Metrics{
				"elapsed":   float64(r.Elapsed),
				"write_amp": r.WriteAmp,
			}, nil
		},
	})
}
