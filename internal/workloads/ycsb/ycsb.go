// Package ycsb implements the YCSB workload driver used to exercise the
// CLHT and Masstree stores (paper §7.2.3, §7.3.1): Zipfian key
// popularity, the standard A-D mixes, configurable value sizes, and the
// craft-value-then-insert PUT path where the pre-store treatments apply.
package ycsb

import (
	"fmt"

	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/kv"
	"prestores/internal/xrand"
)

// Workload selects the YCSB mix.
type Workload int

// Standard mixes.
const (
	A Workload = iota // 50% GET, 50% PUT
	B                 // 95% GET, 5% PUT
	C                 // 100% GET
	D                 // 95% GET (latest-skewed), 5% PUT
	E                 // 95% SCAN (ordered stores only), 5% PUT
	F                 // 50% GET, 50% read-modify-write
)

// String returns the workload letter.
func (w Workload) String() string { return [...]string{"A", "B", "C", "D", "E", "F"}[w] }

// readRatio returns the fraction of read-side operations (GETs or
// scans).
func (w Workload) readRatio() float64 {
	switch w {
	case A, F:
		return 0.5
	case B, D, E:
		return 0.95
	default:
		return 1.0
	}
}

// Config parameterizes a run.
type Config struct {
	Records   uint64 // keys loaded before the measured phase
	Ops       int    // operations per thread in the measured phase
	Threads   int
	ValueSize uint32
	Workload  Workload
	Craft     kv.CraftMode // treatment of crafted values on PUT
	Theta     float64      // Zipfian skew; default 0.99
	Window    string       // memory window for the value heap
	HeapSize  uint64       // value-heap ring size; default 64 MiB
	Seed      uint64
}

// Result reports a measured run.
type Result struct {
	Elapsed          units.Cycles
	Ops              uint64
	OpsPerSec        float64
	Reads            uint64
	Writes           uint64
	Scans            uint64
	ReadMisses       uint64
	WriteAmp         float64 // device-side, for the store's window
	DeviceWriteBytes uint64  // media bytes written in the store's window
	Checksum         uint64  // functional digest of all read values
}

// Load populates the store with cfg.Records sequential keys using
// baseline crafting on core 0. Call before Run.
func Load(m *sim.Machine, store kv.Store, heap *kv.ValueHeap, cfg Config) {
	c := m.Core(0)
	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = byte(i)
	}
	for k := uint64(0); k < cfg.Records; k++ {
		val[0] = byte(k)
		addr := heap.Craft(c, val, kv.CraftBaseline)
		if old, oldLen, replaced := store.Put(c, k, addr, cfg.ValueSize); replaced {
			heap.Free(old, oldLen)
		}
	}
}

// Run executes the measured phase and returns the result. The machine's
// stats are reset at the start, and all queues are drained before the
// device-side amplification is read.
func Run(m *sim.Machine, store kv.Store, heap *kv.ValueHeap, cfg Config) Result {
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Window == "" {
		cfg.Window = sim.WindowPMEM
	}
	dev := m.Device(cfg.Window)
	if dev == nil {
		panic(fmt.Sprintf("ycsb: machine has no window %q", cfg.Window))
	}

	cores := make([]*sim.Core, cfg.Threads)
	keyGen := make([]*xrand.Zipf, cfg.Threads)
	opRng := make([]*xrand.PCG, cfg.Threads)
	for t := range cores {
		cores[t] = m.Core(t)
		opRng[t] = xrand.NewStream(cfg.Seed+7, uint64(t)+100)
		keyGen[t] = xrand.NewZipf(xrand.NewStream(cfg.Seed+13, uint64(t)+200), cfg.Records, cfg.Theta)
	}

	val := make([]byte, cfg.ValueSize)
	buf := make([]byte, cfg.ValueSize)
	readRatio := cfg.Workload.readRatio()

	var res Result
	m.Drain()
	m.ResetStats()
	dev.ResetStats()

	res.Elapsed = sim.Elapsed(m, cores, func() {
		sim.RunInterleaved(cores, cfg.Ops, func(t, i int, c *sim.Core) {
			c.PushFunc("ycsb.op")
			// Client-side request handling: key generation, string
			// formatting, statistics — the work a real YCSB client
			// performs around every operation.
			c.Compute(200)
			key := keyGen[t].ScrambledNext()
			if cfg.Workload == D {
				// Latest distribution: skew toward recently-inserted keys.
				key = cfg.Records - 1 - keyGen[t].Next()%cfg.Records
			}
			if opRng[t].Float64() < readRatio {
				if cfg.Workload == E {
					// Range scan over ~50 consecutive keys, reading
					// each value's first line.
					scanner, ok := store.(kv.Scanner)
					if !ok {
						panic("ycsb: workload E needs an ordered store")
					}
					res.Scans++
					var probe [8]byte
					scanner.Scan(c, key, 50, func(_, valAddr uint64, _ uint32) bool {
						c.Read(valAddr, probe[:])
						res.Checksum += uint64(probe[0])
						return true
					})
				} else {
					res.Reads++
					if addr, n, ok := store.Get(c, key); ok {
						rd := buf[:n]
						c.Read(addr, rd)
						res.Checksum += uint64(rd[0]) + uint64(rd[n-1])
					} else {
						res.ReadMisses++
					}
				}
			} else {
				if cfg.Workload == F {
					// Read-modify-write: read the current value, then
					// write the updated one through the craft path.
					res.Reads++
					if addr, n, ok := store.Get(c, key); ok {
						c.Read(addr, buf[:n])
						val[1] = buf[0] + 1
					}
				}
				res.Writes++
				val[0] = byte(key)
				val[len(val)-1] = byte(i)
				c.PushFunc("ycsb.put")
				addr := heap.Craft(c, val, cfg.Craft)
				// Client-side bookkeeping between crafting the value
				// and calling into the store (YCSB builds the request,
				// serializes the key, updates its statistics). On
				// weak-memory machines this window is what a demote
				// pre-store overlaps the value publication with.
				c.Compute(80)
				if old, oldLen, replaced := store.Put(c, key, addr, cfg.ValueSize); replaced {
					heap.Free(old, oldLen)
				}
				c.PopFunc()
			}
			c.PopFunc()
		})
		m.Drain()
	})

	res.Ops = uint64(cfg.Ops) * uint64(cfg.Threads)
	res.OpsPerSec = float64(res.Ops) / m.Seconds(res.Elapsed)
	res.WriteAmp = dev.Stats().WriteAmplification()
	res.DeviceWriteBytes = dev.Stats().MediaBytesWritten
	return res
}
