package ycsb

import (
	"testing"

	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/clht"
	"prestores/internal/workloads/kv"
	"prestores/internal/workloads/masstree"
)

func setup(t *testing.T, w Workload, craft kv.CraftMode) Result {
	t.Helper()
	m := sim.MachineA()
	store := clht.New(m, clht.Config{Buckets: 1 << 12, Overflow: 4 * units.MiB})
	heap := kv.NewValueHeap(m, sim.WindowPMEM, 64*units.MiB)
	cfg := Config{
		Records: 5000, Ops: 400, Threads: 4, ValueSize: 256,
		Workload: w, Craft: craft, Seed: 9,
	}
	Load(m, store, heap, cfg)
	return Run(m, store, heap, cfg)
}

func TestWorkloadMixA(t *testing.T) {
	res := setup(t, A, kv.CraftBaseline)
	total := res.Reads + res.Writes
	if total != res.Ops {
		t.Fatalf("ops accounting: %d+%d != %d", res.Reads, res.Writes, res.Ops)
	}
	ratio := float64(res.Reads) / float64(total)
	if ratio < 0.42 || ratio > 0.58 {
		t.Fatalf("YCSB-A read ratio = %.2f, want ~0.5", ratio)
	}
}

func TestWorkloadMixC(t *testing.T) {
	res := setup(t, C, kv.CraftBaseline)
	if res.Writes != 0 {
		t.Fatalf("YCSB-C performed %d writes", res.Writes)
	}
}

func TestWorkloadMixB(t *testing.T) {
	res := setup(t, B, kv.CraftBaseline)
	ratio := float64(res.Reads) / float64(res.Reads+res.Writes)
	if ratio < 0.90 {
		t.Fatalf("YCSB-B read ratio = %.2f, want ~0.95", ratio)
	}
}

func TestNoReadMissesAfterLoad(t *testing.T) {
	res := setup(t, A, kv.CraftBaseline)
	if res.ReadMisses != 0 {
		t.Fatalf("%d read misses on loaded keys", res.ReadMisses)
	}
}

func TestDeterminism(t *testing.T) {
	a := setup(t, A, kv.CraftBaseline)
	b := setup(t, A, kv.CraftBaseline)
	if a.Elapsed != b.Elapsed || a.Checksum != b.Checksum {
		t.Fatalf("runs diverged: %d/%d vs %d/%d", a.Elapsed, a.Checksum, b.Elapsed, b.Checksum)
	}
}

func TestCraftModesFunctionallyEqual(t *testing.T) {
	// Pre-store treatments must not change what readers observe.
	base := setup(t, A, kv.CraftBaseline)
	clean := setup(t, A, kv.CraftClean)
	skip := setup(t, A, kv.CraftSkip)
	if base.Checksum != clean.Checksum || base.Checksum != skip.Checksum {
		t.Fatalf("checksums diverge: base=%d clean=%d skip=%d",
			base.Checksum, clean.Checksum, skip.Checksum)
	}
}

func TestThroughputPositive(t *testing.T) {
	res := setup(t, A, kv.CraftBaseline)
	if res.OpsPerSec <= 0 || res.Elapsed == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestWorkloadStrings(t *testing.T) {
	if A.String() != "A" || D.String() != "D" {
		t.Fatal("workload names")
	}
}

func TestWorkloadF(t *testing.T) {
	res := setup(t, F, kv.CraftBaseline)
	// Every write is preceded by a read: reads > writes overall.
	if res.Writes == 0 || res.Reads <= res.Writes {
		t.Fatalf("F mix: reads=%d writes=%d", res.Reads, res.Writes)
	}
}

func TestWorkloadEScans(t *testing.T) {
	m := sim.MachineA()
	store := masstree.New(m, masstree.Config{})
	heap := kv.NewValueHeap(m, sim.WindowPMEM, 64*units.MiB)
	cfg := Config{Records: 5000, Ops: 200, Threads: 2, ValueSize: 256,
		Workload: E, Seed: 9}
	Load(m, store, heap, cfg)
	res := Run(m, store, heap, cfg)
	if res.Scans == 0 {
		t.Fatal("no scans executed")
	}
	if res.Checksum == 0 {
		t.Fatal("scans read no values")
	}
}

func TestWorkloadEPanicsOnHashStore(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("E on a hash store did not panic")
		}
	}()
	setup(t, E, kv.CraftBaseline)
}
