package ycsb

import (
	"fmt"

	"prestores/internal/sim"
	"prestores/internal/snap"
	"prestores/internal/workloads/kv"
)

// warmState is the host-side state a store must serialize for its load
// phase to be checkpointable. Both registered stores (CLHT, Masstree)
// implement it; a store that does not simply always loads cold.
type warmState interface {
	SnapshotState(w *snap.Writer)
	RestoreState(r *snap.Reader) error
}

// WarmLoad populates the store like Load, but through the phase
// control: on a checkpoint hit the machine has already been restored by
// pc and WarmLoad decodes the host-side heap and store state from the
// annex; on a miss it runs the cold Load and hands the end state —
// machine implicit, heap and store serialized as the annex — to
// pc.Save. The load is deterministic and RNG-free, so a restored state
// is op-for-op indistinguishable from a cold load with the same
// (store, window, records, value size, heap size).
//
// A decode failure after the machine restore is an error, not a
// fallback: the machine is already warm, so silently re-running the
// cold load would corrupt the run.
func WarmLoad(m *sim.Machine, store kv.Store, heap *kv.ValueHeap, cfg Config, pc *sim.PhaseControl) error {
	ws, ok := store.(warmState)
	if !ok || pc == nil {
		Load(m, store, heap, cfg)
		return nil
	}
	if annex, hit := pc.TryRestore(m); hit {
		r := snap.NewReader(annex)
		if err := heap.RestoreState(r); err != nil {
			return fmt.Errorf("ycsb: warm annex: %w", err)
		}
		if err := ws.RestoreState(r); err != nil {
			return fmt.Errorf("ycsb: warm annex: %w", err)
		}
		if err := r.Done(); err != nil {
			return fmt.Errorf("ycsb: warm annex: %w", err)
		}
		return nil
	}
	Load(m, store, heap, cfg)
	var w snap.Writer
	heap.SnapshotState(&w)
	ws.SnapshotState(&w)
	pc.WarmupDone(m, w.Finish())
	return nil
}
