package ycsb

import (
	"fmt"

	"prestores/internal/scenario"
	"prestores/internal/sim"
	"prestores/internal/units"
	"prestores/internal/workloads/kv"
)

func craftFor(op string) (kv.CraftMode, error) {
	switch op {
	case "none":
		return kv.CraftBaseline, nil
	case "clean":
		return kv.CraftClean, nil
	case "skip":
		return kv.CraftSkip, nil
	case "demote":
		return kv.CraftDemote, nil
	}
	return 0, fmt.Errorf("unknown op %q", op)
}

func workloadFor(name string) (Workload, error) {
	for w := A; w <= F; w++ {
		if w.String() == name {
			return w, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown YCSB mix %q (A..F)", name)
}

func init() {
	scenario.Register(scenario.Workload{
		Name:        "ycsb",
		Description: "YCSB mixes A-F over a registered key-value store with value crafting in the tiered window",
		Params: []scenario.ParamDef{
			{Name: "store", Kind: scenario.KindString, Help: "store implementation (see kv.Stores; default clht)"},
			{Name: "records", Kind: scenario.KindInt, Help: "keys loaded before the measured phase (default 400000)"},
			{Name: "ops", Kind: scenario.KindInt, Help: "operations per thread (default 6000)"},
			{Name: "threads", Kind: scenario.KindInt, Help: "client threads (default 10)"},
			{Name: "value_size", Kind: scenario.KindInt, Help: "value bytes (default 256)"},
			{Name: "mix", Kind: scenario.KindString, Help: "YCSB workload letter A-F (default A)"},
			{Name: "theta", Kind: scenario.KindFloat, Help: "Zipfian skew (default 0.99)"},
			{Name: "heap", Kind: scenario.KindInt, Help: "value-heap ring bytes (default 4 GiB)"},
			{Name: "window", Kind: scenario.KindString, Help: "memory window for values (default pmem)"},
			{Name: "seed", Kind: scenario.KindInt, Help: "PRNG seed"},
		},
		Ops:         []string{"none", "clean", "skip", "demote"},
		MetricNames: []string{"elapsed", "ops_per_sec", "reads", "writes", "scans", "read_misses", "write_amp", "device_write_bytes"},
		Run: func(m *sim.Machine, op string, p scenario.Params) (scenario.Metrics, error) {
			return runScenario(m, op, p, nil)
		},
		// The load phase is RNG-free and baseline-crafted, so only these
		// parameters shape the post-load state; sweeps over op, mix,
		// threads, ops, theta or seed fork from one warm checkpoint.
		WarmParams: []string{"store", "records", "value_size", "heap", "window"},
		RunPhased:  runScenario,
		// One pre-store call site: the value-crafting path all puts go
		// through. A policy.table {"craft": op} steers it per-site.
		Sites: []string{"craft"},
	})
}

// runScenario is the registered entry point; with a non-nil pc the load
// phase goes through WarmLoad and can fork from a checkpoint.
func runScenario(m *sim.Machine, op string, p scenario.Params, pc *sim.PhaseControl) (scenario.Metrics, error) {
	craft, err := craftFor(scenario.SiteOp(p, "craft", op))
	if err != nil {
		return nil, err
	}
	mix, err := workloadFor(p.Str("mix", "A"))
	if err != nil {
		return nil, err
	}
	threads := p.Int("threads", 10)
	if threads <= 0 || threads > m.Cores() {
		return nil, fmt.Errorf("threads: must be in 1..%d for %s", m.Cores(), m.Name())
	}
	window := p.Str("window", sim.WindowPMEM)
	storeName := p.Str("store", "clht")
	store, ok := kv.NewStore(storeName, m, window)
	if !ok {
		return nil, fmt.Errorf("store: unknown store %q (one of %v)", storeName, kv.Stores())
	}
	heap := kv.NewValueHeap(m, window, p.Uint64("heap", 4*units.GiB))
	cfg := Config{
		Records:   p.Uint64("records", 400_000),
		Ops:       p.Int("ops", 6000),
		Threads:   threads,
		ValueSize: uint32(p.Uint64("value_size", 256)),
		Workload:  mix,
		Craft:     craft,
		Theta:     p.Float("theta", 0),
		Window:    window,
		Seed:      p.Uint64("seed", 0),
	}
	if err := WarmLoad(m, store, heap, cfg, pc); err != nil {
		return nil, err
	}
	r := Run(m, store, heap, cfg)
	return scenario.Metrics{
		"elapsed":            float64(r.Elapsed),
		"ops_per_sec":        r.OpsPerSec,
		"reads":              float64(r.Reads),
		"writes":             float64(r.Writes),
		"scans":              float64(r.Scans),
		"read_misses":        float64(r.ReadMisses),
		"write_amp":          r.WriteAmp,
		"device_write_bytes": float64(r.DeviceWriteBytes),
	}, nil
}
