// Package nas ports the memory behaviour of the NAS Parallel Benchmarks
// the paper evaluates (§7.2.2, §7.4.2) onto the simulator.
//
// Each kernel performs its real floating-point computation over grids
// held in simulated memory, issuing row-granular timed reads and writes
// so the cache and device see the same access stream the Fortran
// originals generate. The kernels the paper patches (MG, FT, SP, UA,
// BT) write large matrices sequentially — the clean-pre-store case —
// while IS writes small random data and LU/EP/CG are not
// write-intensive (Table 2), exercising DirtBuster's negative
// recommendations.
package nas

import (
	"fmt"
	"math"

	"prestores/internal/memspace"
	"prestores/internal/sim"
	"prestores/internal/units"
)

// Kernel names the benchmark.
type Kernel string

// The NAS kernels (paper Table 2).
const (
	MG Kernel = "mg" // multi-grid: psinv/resid write U and R sequentially
	FT Kernel = "ft" // 3-D FFT: cffts1 streams Y1 -> XOUT
	SP Kernel = "sp" // scalar penta-diagonal: compute_rhs writes RHS
	UA Kernel = "ua" // unstructured adaptive: sequential element writes
	BT Kernel = "bt" // block tri-diagonal: sequential matrix writes
	IS Kernel = "is" // integer sort: rank() writes small random data
	LU Kernel = "lu" // not write-intensive
	EP Kernel = "ep" // not write-intensive
	CG Kernel = "cg" // not write-intensive
)

// Kernels lists every kernel in Table 2 order.
var Kernels = []Kernel{UA, LU, EP, IS, FT, CG, BT, MG, SP}

// Mode selects the pre-store treatment.
type Mode int

// Treatments.
const (
	Baseline Mode = iota
	// Clean pre-stores the written rows as DirtBuster recommends for
	// the kernel (Listing 5's one-line change).
	Clean
	// CleanHot mis-applies a clean to the kernel's hot in-cache data
	// (FT's fftz2 scratch, §7.4.2) — the trap DirtBuster avoids.
	CleanHot
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case Clean:
		return "clean"
	case CleanHot:
		return "clean-hot"
	default:
		return "?"
	}
}

// Config parameterizes a kernel run.
type Config struct {
	Kernel Kernel
	Mode   Mode
	// Scale is the grid edge (points per dimension); each kernel picks
	// a default sized so its working set exceeds the simulated LLC.
	Scale int
	Iters int
	// Threads parallelizes the OpenMP-style plane loops (MG supports
	// it; other kernels run on one core). Interleaving multiple cores'
	// access streams at the shared LLC is part of what randomizes the
	// eviction order (§4.1).
	Threads int
	Window  string // defaults to PMEM
	Seed    uint64
}

// Result reports a kernel run.
type Result struct {
	Kernel   Kernel
	Mode     Mode
	Elapsed  units.Cycles
	Checksum float64 // functional digest; must match across modes
	WriteAmp float64
	Stores   uint64 // simulated store ops issued
	Loads    uint64
	Instr    uint64 // instructions retired (loads+stores+compute)
}

// Run executes the kernel on m.
func Run(m *sim.Machine, cfg Config) Result {
	if cfg.Window == "" {
		cfg.Window = sim.WindowPMEM
	}
	if cfg.Iters == 0 {
		cfg.Iters = 2
	}
	dev := m.Device(cfg.Window)
	core := m.Core(0)

	var fn func(*sim.Machine, *sim.Core, Config) float64
	switch cfg.Kernel {
	case MG:
		fn = runMG
	case FT:
		fn = runFT
	case SP:
		fn = runSP
	case UA:
		fn = runUA
	case BT:
		fn = runBT
	case IS:
		fn = runIS
	case LU:
		fn = runLU
	case EP:
		fn = runEP
	case CG:
		fn = runCG
	default:
		panic(fmt.Sprintf("nas: unknown kernel %q", cfg.Kernel))
	}

	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	m.Drain()
	m.ResetStats()
	dev.ResetStats()
	instrBefore := core.Instructions()
	var checksum float64
	elapsed := sim.Elapsed(m, []*sim.Core{core}, func() {
		checksum = fn(m, core, cfg)
		// Flush, not just drain: a kernel's deferred dirty lines are
		// real write work; the baseline must not hide them in the
		// caches past the measurement window.
		m.FlushCaches()
	})
	st := core.Stats()
	return Result{
		Kernel:   cfg.Kernel,
		Mode:     cfg.Mode,
		Elapsed:  elapsed,
		Checksum: checksum,
		WriteAmp: dev.Stats().WriteAmplification(),
		Stores:   st.Stores + st.NTStores,
		Loads:    st.Loads,
		Instr:    core.Instructions() - instrBefore,
	}
}

// WriteIntensive reports whether the kernel spends a significant share
// of its operations storing data (the paper's 10% threshold, Table 2).
func WriteIntensive(k Kernel) bool {
	switch k {
	case MG, FT, SP, UA, BT, IS:
		return true
	default:
		return false
	}
}

// grid is a 3-D float64 array in simulated memory with row-granular
// timed access helpers.
type grid struct {
	region memspace.Region
	n1     int // fastest-varying dimension (row length)
	n2, n3 int
}

func newGrid(m *sim.Machine, window, name string, n1, n2, n3 int) *grid {
	return &grid{
		region: m.Alloc(window, name, uint64(n1*n2*n3)*8),
		n1:     n1, n2: n2, n3: n3,
	}
}

// rowAddr returns the address of element (0, i2, i3).
func (g *grid) rowAddr(i2, i3 int) uint64 {
	return g.region.Base + uint64(i3*g.n2*g.n1+i2*g.n1)*8
}

// readRow loads row (.,i2,i3) into dst (timed).
func (g *grid) readRow(c *sim.Core, i2, i3 int, dst []float64) {
	buf := make([]byte, g.n1*8)
	c.Read(g.rowAddr(i2, i3), buf)
	for i := 0; i < g.n1; i++ {
		dst[i] = math.Float64frombits(leU64(buf[i*8:]))
	}
}

// writeRow stores src into row (.,i2,i3) (timed), optionally cleaning
// the row afterwards — the paper's Listing 5 one-line change.
func (g *grid) writeRow(c *sim.Core, i2, i3 int, src []float64, clean bool) {
	buf := make([]byte, g.n1*8)
	for i := 0; i < g.n1; i++ {
		putU64(buf[i*8:], math.Float64bits(src[i]))
	}
	addr := g.rowAddr(i2, i3)
	c.Write(addr, buf)
	if clean {
		c.Prestore(addr, uint64(len(buf)), sim.Clean)
	}
}

// fillRows initializes the grid (timed, baseline stores).
func (g *grid) fill(c *sim.Core, f func(i1, i2, i3 int) float64) {
	row := make([]float64, g.n1)
	for i3 := 0; i3 < g.n3; i3++ {
		for i2 := 0; i2 < g.n2; i2++ {
			for i1 := 0; i1 < g.n1; i1++ {
				row[i1] = f(i1, i2, i3)
			}
			g.writeRow(c, i2, i3, row, false)
		}
	}
}

// checksum folds the whole grid through the backing store (untimed).
func (g *grid) checksum(m *sim.Machine) float64 {
	var sum float64
	buf := make([]byte, g.n1*8)
	for i3 := 0; i3 < g.n3; i3++ {
		for i2 := 0; i2 < g.n2; i2++ {
			m.Backing().Read(g.rowAddr(i2, i3), buf)
			for i := 0; i < g.n1; i++ {
				v := math.Float64frombits(leU64(buf[i*8:]))
				sum += v * float64(1+(i+i2+i3)%7)
			}
		}
	}
	return sum
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
