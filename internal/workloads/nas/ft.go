package nas

import (
	"math"

	"prestores/internal/sim"
	"prestores/internal/units"
)

// runFT ports the NAS FT kernel: repeated 1-D FFTs along the first
// dimension of a 3-D complex array, as cffts1 does — copy a line into
// the Y1 scratch, run the fftz2 butterfly passes over the scratch, and
// stream the result into XOUT.
//
// DirtBuster's findings (§7.2.2, §7.4.2): cffts1 sequentially transfers
// results from Y1 to XOUT (clean helps); fftz2 rewrites the small
// in-cache scratch constantly (cleaning it costs ~3x — Mode CleanHot
// reproduces that trap).
func runFT(m *sim.Machine, c *sim.Core, cfg Config) float64 {
	n := cfg.Scale
	if n == 0 {
		n = 64
	}
	if !units.IsPow2(uint64(n)) {
		panic("nas: FT scale must be a power of two")
	}
	// Complex grids: interleaved re/im, so rows are 2n floats.
	x := newGrid(m, cfg.Window, "ft.x", 2*n, n, n)
	xout := newGrid(m, cfg.Window, "ft.xout", 2*n, n, n)
	// The Y1 scratch is an ordinary Fortran array; NAS runs place the
	// whole address space on the evaluated memory, so it lives in the
	// same window as the grids (that is what makes cleaning it §7.4.2's
	// trap: every clean forces a slow-memory write-back of data that is
	// rewritten in the very next butterfly pass).
	y1 := m.Alloc(cfg.Window, "ft.y1", uint64(2*n)*8).Base

	c.PushFunc("ft.init")
	x.fill(c, func(i1, i2, i3 int) float64 {
		// Deterministic pseudo-random initial field (compute_initial_conditions).
		h := uint64(i1+1)*2654435761 ^ uint64(i2+1)*40503 ^ uint64(i3+1)*2246822519
		return float64(h%2048)/2048.0 - 0.5
	})
	c.PopFunc()

	clean := cfg.Mode == Clean
	cleanHot := cfg.Mode == CleanHot
	row := make([]float64, 2*n)
	for it := 0; it < cfg.Iters; it++ {
		cffts1(m, c, x, xout, y1, row, n, clean, cleanHot)
		x, xout = xout, x // next iteration transforms the output
	}
	return x.checksum(m)
}

// cffts1 runs the 1-D FFT over every (i2, i3) line.
func cffts1(m *sim.Machine, c *sim.Core, x, xout *grid, y1 uint64, row []float64, n int, clean, cleanHot bool) {
	c.PushFunc("ft.cffts1")
	defer c.PopFunc()
	for i3 := 0; i3 < x.n3; i3++ {
		for i2 := 0; i2 < x.n2; i2++ {
			x.readRow(c, i2, i3, row)
			writeF64s(c, y1, row) // stage into the scratch
			fftz2(c, y1, row, n, cleanHot)
			xout.writeRow(c, i2, i3, row, clean)
		}
	}
}

// fftz2 performs the radix-2 butterfly passes in the Y1 scratch,
// re-reading and re-writing it log2(n) times. Cleaning the scratch
// (cleanHot) forces a memory write-back of data that is immediately
// rewritten — the §7.4.2 anti-pattern.
func fftz2(c *sim.Core, y1 uint64, row []float64, n int, cleanHot bool) {
	c.PushFunc("ft.fftz2")
	defer c.PopFunc()
	y1Size := uint64(len(row)) * 8
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			row[2*i], row[2*j] = row[2*j], row[2*i]
			row[2*i+1], row[2*j+1] = row[2*j+1], row[2*i+1]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	for span := 1; span < n; span <<= 1 {
		wr, wi := math.Cos(math.Pi/float64(span)), -math.Sin(math.Pi/float64(span))
		for start := 0; start < n; start += 2 * span {
			cr, ci := 1.0, 0.0
			for k := 0; k < span; k++ {
				a, b := start+k, start+k+span
				tr := cr*row[2*b] - ci*row[2*b+1]
				ti := cr*row[2*b+1] + ci*row[2*b]
				row[2*b], row[2*b+1] = row[2*a]-tr, row[2*a+1]-ti
				row[2*a], row[2*a+1] = row[2*a]+tr, row[2*a+1]+ti
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
		// The pass re-reads and re-writes the whole scratch.
		var tmp [8]byte
		c.Read(y1, tmp[:]) // representative load touching the scratch
		writeF64s(c, y1, row)
		c.Compute(uint64(2 * n)) // butterfly FLOPs
		if cleanHot {
			c.Prestore(y1, y1Size, sim.Clean)
		}
	}
}

// writeF64s stores a float64 slice at addr (timed).
func writeF64s(c *sim.Core, addr uint64, vals []float64) {
	buf := make([]byte, len(vals)*8)
	for i, v := range vals {
		putU64(buf[i*8:], math.Float64bits(v))
	}
	c.Write(addr, buf)
}
