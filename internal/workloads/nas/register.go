package nas

import (
	"fmt"

	"prestores/internal/scenario"
	"prestores/internal/sim"
)

func modeFor(op string) (Mode, error) {
	switch op {
	case "none":
		return Baseline, nil
	case "clean":
		return Clean, nil
	case "clean-hot":
		return CleanHot, nil
	}
	return 0, fmt.Errorf("unknown op %q", op)
}

func init() {
	scenario.Register(scenario.Workload{
		Name:        "nas",
		Description: "NAS parallel benchmark kernels (Table 2) with DirtBuster's recommended cleans",
		Params: []scenario.ParamDef{
			{Name: "kernel", Kind: scenario.KindString, Help: "kernel name: mg ft sp ua bt is lu ep cg"},
			{Name: "scale", Kind: scenario.KindInt, Help: "grid edge; 0 picks the kernel default"},
			{Name: "iters", Kind: scenario.KindInt, Help: "kernel iterations; 0 picks the kernel default"},
			{Name: "threads", Kind: scenario.KindInt, Help: "plane-loop threads (MG only; default 1)"},
			{Name: "window", Kind: scenario.KindString, Help: "memory window (default pmem)"},
			{Name: "seed", Kind: scenario.KindInt, Help: "PRNG seed"},
		},
		Ops:         []string{"none", "clean", "clean-hot"},
		MetricNames: []string{"elapsed", "write_amp", "stores", "loads", "instr"},
		Run: func(m *sim.Machine, op string, p scenario.Params) (scenario.Metrics, error) {
			mode, err := modeFor(op)
			if err != nil {
				return nil, err
			}
			kernel := Kernel(p.Str("kernel", string(MG)))
			found := false
			for _, k := range Kernels {
				if k == kernel {
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("kernel: unknown kernel %q (one of %v)", kernel, Kernels)
			}
			threads := p.Int("threads", 0)
			if threads > m.Cores() {
				return nil, fmt.Errorf("threads: must be at most %d for %s", m.Cores(), m.Name())
			}
			r := Run(m, Config{
				Kernel:  kernel,
				Mode:    mode,
				Scale:   p.Int("scale", 0),
				Iters:   p.Int("iters", 0),
				Threads: threads,
				Window:  p.Str("window", ""),
				Seed:    p.Uint64("seed", 0),
			})
			return scenario.Metrics{
				"elapsed":   float64(r.Elapsed),
				"write_amp": r.WriteAmp,
				"stores":    float64(r.Stores),
				"loads":     float64(r.Loads),
				"instr":     float64(r.Instr),
			}, nil
		},
	})
}
