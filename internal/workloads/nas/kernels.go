package nas

import (
	"math"

	"prestores/internal/sim"
	"prestores/internal/xrand"
)

// runSP ports the NAS SP kernel's write behaviour: compute_rhs writes
// the five-component RHS matrix sequentially from the U field.
// DirtBuster (§7.2.2): "SP allocates dozens of matrices, but a single
// matrix (RHS) accounts for most of the writes... mostly written in
// compute_rhs and rarely reused."
func runSP(m *sim.Machine, c *sim.Core, cfg Config) float64 {
	n := cfg.Scale
	if n == 0 {
		n = 64
	}
	u := newGrid(m, cfg.Window, "sp.u", n, n, n)
	rhs := make([]*grid, 5)
	for comp := range rhs {
		rhs[comp] = newGrid(m, cfg.Window, "sp.rhs", n, n, n)
	}
	c.PushFunc("sp.init")
	u.fill(c, func(i1, i2, i3 int) float64 {
		return math.Sin(float64(i1)*0.1) + math.Cos(float64(i2+i3)*0.07)
	})
	c.PopFunc()

	clean := cfg.Mode == Clean
	up := make([]float64, n)
	uc := make([]float64, n)
	un := make([]float64, n)
	out := make([]float64, n)
	for it := 0; it < cfg.Iters; it++ {
		c.PushFunc("sp.compute_rhs")
		for i3 := 1; i3 < n-1; i3++ {
			for i2 := 1; i2 < n-1; i2++ {
				u.readRow(c, i2-1, i3, up)
				u.readRow(c, i2, i3, uc)
				u.readRow(c, i2+1, i3, un)
				for comp := 0; comp < 5; comp++ {
					f := float64(comp + 1)
					for i1 := 1; i1 < n-1; i1++ {
						out[i1] = f*uc[i1] - 0.25*(up[i1]+un[i1]+uc[i1-1]+uc[i1+1])
					}
					out[0], out[n-1] = 0, 0
					rhs[comp].writeRow(c, i2, i3, out, clean)
				}
				c.Compute(uint64(5 * n))
			}
		}
		c.PopFunc()
		// The solve phases (x/y/z sweeps) read RHS back and update U.
		c.PushFunc("sp.solve")
		for i3 := 1; i3 < n-1; i3++ {
			for i2 := 1; i2 < n-1; i2++ {
				u.readRow(c, i2, i3, uc)
				rhs[0].readRow(c, i2, i3, out)
				for i1 := 0; i1 < n; i1++ {
					uc[i1] += 0.1 * out[i1]
				}
				u.writeRow(c, i2, i3, uc, false)
				c.Compute(uint64(n))
			}
		}
		c.PopFunc()
	}
	return u.checksum(m) + rhs[0].checksum(m)
}

// runBT ports the NAS BT kernel's write behaviour: like SP it assembles
// an RHS, then performs block-triangular sweeps writing the LHS blocks
// sequentially.
func runBT(m *sim.Machine, c *sim.Core, cfg Config) float64 {
	n := cfg.Scale
	if n == 0 {
		n = 56
	}
	u := newGrid(m, cfg.Window, "bt.u", n, n, n)
	rhs := newGrid(m, cfg.Window, "bt.rhs", n, n, n)
	// 5x5 blocks per point along rows: 25 doubles per point.
	lhs := newGrid(m, cfg.Window, "bt.lhs", 25*n, n, n)

	c.PushFunc("bt.init")
	u.fill(c, func(i1, i2, i3 int) float64 {
		return 1.0 + float64(i1%5)*0.5 - float64((i2+i3)%3)*0.25
	})
	c.PopFunc()

	clean := cfg.Mode == Clean
	uc := make([]float64, n)
	out := make([]float64, n)
	block := make([]float64, 25*n)
	for it := 0; it < cfg.Iters; it++ {
		c.PushFunc("bt.compute_rhs")
		for i3 := 1; i3 < n-1; i3++ {
			for i2 := 1; i2 < n-1; i2++ {
				u.readRow(c, i2, i3, uc)
				for i1 := 1; i1 < n-1; i1++ {
					out[i1] = 2.0*uc[i1] - 0.5*(uc[i1-1]+uc[i1+1])
				}
				rhs.writeRow(c, i2, i3, out, clean)
				c.Compute(uint64(n))
			}
		}
		c.PopFunc()
		c.PushFunc("bt.lhsinit")
		for i3 := 1; i3 < n-1; i3++ {
			for i2 := 1; i2 < n-1; i2++ {
				u.readRow(c, i2, i3, uc)
				for i1 := 0; i1 < n; i1++ {
					for b := 0; b < 25; b++ {
						block[i1*25+b] = uc[i1] * float64(b%5+1) * 0.04
					}
				}
				lhs.writeRow(c, i2, i3, block, clean)
				c.Compute(uint64(25 * n))
			}
		}
		c.PopFunc()
	}
	return rhs.checksum(m) + u.checksum(m)
}

// runUA ports the NAS UA kernel's write behaviour: adaptive mesh
// elements (512 B each) are visited through an index indirection and
// rewritten sequentially within each element.
func runUA(m *sim.Machine, c *sim.Core, cfg Config) float64 {
	elems := cfg.Scale
	if elems == 0 {
		elems = 1 << 16 // 64Ki elements x 512B = 32 MiB
	}
	const elemDoubles = 64 // 512 B per element
	data := newGrid(m, cfg.Window, "ua.elems", elemDoubles, elems, 1)
	c.PushFunc("ua.init")
	data.fill(c, func(i1, i2, _ int) float64 { return float64(i1+i2) * 0.001 })
	c.PopFunc()

	clean := cfg.Mode == Clean
	rng := xrand.New(cfg.Seed ^ 0x0a)
	buf := make([]float64, elemDoubles)
	c.PushFunc("ua.transfer")
	for it := 0; it < cfg.Iters; it++ {
		for e := 0; e < elems; e++ {
			// Adaptive refinement touches a mix of sequential and
			// mortar (random neighbour) elements.
			target := e
			if rng.Uint32()%8 == 0 {
				target = rng.Intn(elems)
			}
			data.readRow(c, target, 0, buf)
			for i := range buf {
				buf[i] = buf[i]*0.98 + 0.01
			}
			data.writeRow(c, target, 0, buf, clean)
			c.Compute(elemDoubles)
		}
	}
	c.PopFunc()
	return data.checksum(m)
}

// runIS ports the NAS IS kernel: the rank() function counts keys into a
// large bucket array with small random read-modify-writes. DirtBuster
// detects neither sequential writes nor fence proximity, so it does not
// recommend a pre-store; Mode Clean mis-applies one anyway (§7.4.2
// reports no gain and no overhead — the written lines are not re-used).
func runIS(m *sim.Machine, c *sim.Core, cfg Config) float64 {
	keys := cfg.Scale
	if keys == 0 {
		keys = 1 << 19
	}
	const buckets = 1 << 23
	counts := m.Alloc(cfg.Window, "is.counts", buckets*8)
	keyArr := m.Alloc(cfg.Window, "is.keys", uint64(keys)*8)

	c.PushFunc("is.create_seq")
	rng := xrand.New(cfg.Seed ^ 0x15)
	for i := 0; i < keys; i++ {
		c.WriteU64(keyArr.Base+uint64(i)*8, rng.Uint64n(buckets))
	}
	c.PopFunc()

	ranks := m.Alloc(cfg.Window, "is.ranks", uint64(keys)*8)
	clean := cfg.Mode == Clean
	c.PushFunc("is.rank")
	for it := 0; it < cfg.Iters; it++ {
		// Phase 1: histogram the keys (read-modify-writes).
		for i := 0; i < keys; i++ {
			k := c.ReadU64(keyArr.Base + uint64(i)*8)
			addr := counts.Base + k*8
			c.WriteU64(addr, c.ReadU64(addr)+1)
			if clean {
				c.Prestore(addr, 8, sim.Clean)
			}
			c.Compute(4)
		}
		// Phase 2: scatter each key's rank — small pure writes to
		// effectively random lines, the pattern §7.4.2 describes:
		// write-heavy, but neither sequential nor re-used.
		for i := 0; i < keys; i++ {
			k := c.ReadU64(keyArr.Base + uint64(i)*8)
			c.WriteU64(ranks.Base+(xrand.Hash64(k+uint64(it))%uint64(keys))*8, k)
			if clean {
				c.Prestore(ranks.Base+(xrand.Hash64(k+uint64(it))%uint64(keys))*8, 8, sim.Clean)
			}
			c.Compute(4)
		}
	}
	c.PopFunc()
	var sum float64
	for i := 0; i < 1024; i++ {
		sum += float64(m.Backing().ReadU64(counts.Base + uint64(i)*997*8))
	}
	return sum
}

// runLU models the LU kernel's profile: SSOR sweeps dominated by reads
// and FLOPs; under 10% of its time is spent storing (Table 2: not
// write-intensive).
func runLU(m *sim.Machine, c *sim.Core, cfg Config) float64 {
	n := cfg.Scale
	if n == 0 {
		n = 64
	}
	u := newGrid(m, cfg.Window, "lu.u", n, n, n)
	c.PushFunc("lu.init")
	u.fill(c, func(i1, i2, i3 int) float64 { return float64(i1+2*i2+3*i3) * 0.001 })
	c.PopFunc()
	row := make([]float64, n)
	acc := 0.0
	c.PushFunc("lu.ssor")
	for it := 0; it < cfg.Iters*4; it++ {
		for i3 := 0; i3 < n; i3++ {
			for i2 := 0; i2 < n; i2++ {
				u.readRow(c, i2, i3, row)
				for i1 := 0; i1 < n; i1++ {
					acc += row[i1] * 1.0000001
				}
				c.Compute(uint64(4 * n)) // heavy per-point FLOPs
			}
			// One row written per few planes: a ~1% store share.
			if i3%4 == 0 {
				u.writeRow(c, i3%n, i3, row, false)
			}
		}
	}
	c.PopFunc()
	return acc
}

// runEP models the EP kernel: embarrassingly parallel random-number
// generation with a tiny in-cache histogram — effectively no stores.
func runEP(m *sim.Machine, c *sim.Core, cfg Config) float64 {
	pairs := cfg.Scale
	if pairs == 0 {
		pairs = 1 << 18
	}
	hist := m.Alloc(cfg.Window, "ep.hist", 10*8)
	rng := xrand.New(cfg.Seed ^ 0xe9)
	var sx, sy float64
	c.PushFunc("ep.main")
	for it := 0; it < cfg.Iters; it++ {
		for i := 0; i < pairs; i++ {
			x := 2*rng.Float64() - 1
			y := 2*rng.Float64() - 1
			t := x*x + y*y
			c.Compute(24) // vranlc + sqrt/log pipeline
			if t <= 1 {
				f := math.Sqrt(-2 * math.Log(t) / t)
				sx += x * f
				sy += y * f
				bin := int(math.Min(math.Abs(x*f), math.Abs(y*f)))
				if bin > 9 {
					bin = 9
				}
				addr := hist.Base + uint64(bin)*8
				c.WriteU64(addr, c.ReadU64(addr)+1)
			}
		}
	}
	c.PopFunc()
	return sx + sy
}

// runCG models the CG kernel: sparse matrix-vector products dominated
// by indexed reads; the written vector is small relative to the reads.
func runCG(m *sim.Machine, c *sim.Core, cfg Config) float64 {
	n := cfg.Scale
	if n == 0 {
		n = 1 << 16
	}
	const nzPerRow = 16
	vals := m.Alloc(cfg.Window, "cg.vals", uint64(n*nzPerRow)*8)
	cols := m.Alloc(cfg.Window, "cg.cols", uint64(n*nzPerRow)*8)
	xv := m.Alloc(cfg.Window, "cg.x", uint64(n)*8)
	yv := m.Alloc(cfg.Window, "cg.y", uint64(n)*8)

	c.PushFunc("cg.init")
	rng := xrand.New(cfg.Seed ^ 0xc6)
	for i := 0; i < n*nzPerRow; i++ {
		c.WriteU64(vals.Base+uint64(i)*8, math.Float64bits(rng.Float64()))
		c.WriteU64(cols.Base+uint64(i)*8, uint64(rng.Intn(n)))
	}
	for i := 0; i < n; i++ {
		c.WriteU64(xv.Base+uint64(i)*8, math.Float64bits(1.0))
	}
	c.PopFunc()

	var norm float64
	c.PushFunc("cg.conj_grad")
	// Real CG amortizes its matrix setup over ~75 conj_grad iterations;
	// several sweeps per configured iteration keep the profile honest.
	for it := 0; it < cfg.Iters*6; it++ {
		norm = 0
		for i := 0; i < n; i++ {
			var sum float64
			base := uint64(i * nzPerRow)
			for z := 0; z < nzPerRow; z++ {
				v := math.Float64frombits(c.ReadU64(vals.Base + (base+uint64(z))*8))
				col := c.ReadU64(cols.Base + (base+uint64(z))*8)
				xval := math.Float64frombits(c.ReadU64(xv.Base + col*8))
				sum += v * xval
			}
			c.WriteU64(yv.Base+uint64(i)*8, math.Float64bits(sum))
			c.Compute(2 * nzPerRow)
			norm += sum * sum
		}
	}
	c.PopFunc()
	return norm
}
