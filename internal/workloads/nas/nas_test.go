package nas

import (
	"testing"

	"prestores/internal/sim"
)

// quickCfg shrinks a kernel for unit testing.
func quickCfg(k Kernel, mode Mode) Config {
	cfg := Config{Kernel: k, Mode: mode, Iters: 1, Seed: 3}
	switch k {
	case MG, SP:
		cfg.Scale = 32
	case BT:
		cfg.Scale = 24
	case FT:
		cfg.Scale = 16
	case UA:
		cfg.Scale = 1 << 10
	case IS:
		cfg.Scale = 1 << 14
	case LU:
		cfg.Scale = 24
	case EP:
		cfg.Scale = 1 << 12
	case CG:
		cfg.Scale = 1 << 10
	}
	return cfg
}

func TestAllKernelsRun(t *testing.T) {
	for _, k := range Kernels {
		k := k
		t.Run(string(k), func(t *testing.T) {
			res := Run(sim.MachineA(), quickCfg(k, Baseline))
			if res.Stores == 0 {
				t.Fatalf("%s issued no stores", k)
			}
			if res.Elapsed == 0 {
				t.Fatalf("%s took no time", k)
			}
		})
	}
}

// TestChecksumInvariantUnderPrestore is the key functional property:
// pre-stores must never change computed results, only timing.
func TestChecksumInvariantUnderPrestore(t *testing.T) {
	for _, k := range []Kernel{MG, FT, SP, UA, BT, IS} {
		k := k
		t.Run(string(k), func(t *testing.T) {
			base := Run(sim.MachineA(), quickCfg(k, Baseline))
			clean := Run(sim.MachineA(), quickCfg(k, Clean))
			if base.Checksum != clean.Checksum {
				t.Fatalf("%s: checksum changed by pre-store: %v vs %v",
					k, base.Checksum, clean.Checksum)
			}
		})
	}
}

func TestFTCleanHotChecksum(t *testing.T) {
	base := Run(sim.MachineA(), quickCfg(FT, Baseline))
	hot := Run(sim.MachineA(), quickCfg(FT, CleanHot))
	if base.Checksum != hot.Checksum {
		t.Fatal("clean-hot changed FT's result")
	}
	if hot.Elapsed <= base.Elapsed {
		t.Fatalf("cleaning the hot scratch should cost time: %d vs %d", hot.Elapsed, base.Elapsed)
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(sim.MachineA(), quickCfg(MG, Baseline))
	b := Run(sim.MachineA(), quickCfg(MG, Baseline))
	if a.Elapsed != b.Elapsed || a.Checksum != b.Checksum {
		t.Fatal("MG runs diverged")
	}
}

func TestWriteIntensiveClassification(t *testing.T) {
	// Table 2's split: MG/FT/SP/UA/BT/IS write-heavy, LU/EP/CG not.
	for _, k := range []Kernel{MG, FT, SP, UA, BT, IS} {
		if !WriteIntensive(k) {
			t.Errorf("%s should be write-intensive", k)
		}
	}
	for _, k := range []Kernel{LU, EP, CG} {
		if WriteIntensive(k) {
			t.Errorf("%s should not be write-intensive", k)
		}
	}
}

func TestStoreShareMatchesClassification(t *testing.T) {
	// The simulated kernels must actually exhibit the Table 2 split,
	// measured as the paper does: stores as a share of executed
	// instructions.
	shares := map[Kernel]float64{}
	for _, k := range []Kernel{MG, IS, LU, EP, CG} {
		res := Run(sim.MachineA(), quickCfg(k, Baseline))
		shares[k] = float64(res.Stores) / float64(res.Instr)
	}
	for _, k := range []Kernel{MG, IS} {
		if shares[k] < 0.10 {
			t.Errorf("%s store share %.2f < 0.10 but should be write-intensive", k, shares[k])
		}
	}
	for _, k := range []Kernel{LU, EP, CG} {
		if shares[k] >= 0.10 {
			t.Errorf("%s store share %.2f too high for a read/compute kernel", k, shares[k])
		}
	}
}

func TestUnknownKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kernel accepted")
		}
	}()
	Run(sim.MachineA(), Config{Kernel: "nope"})
}

func TestISCleanNoEffect(t *testing.T) {
	// §7.4.2: pre-storing IS's random small writes neither helps nor
	// hurts much.
	base := Run(sim.MachineA(), quickCfg(IS, Baseline))
	clean := Run(sim.MachineA(), quickCfg(IS, Clean))
	ratio := float64(clean.Elapsed) / float64(base.Elapsed)
	if ratio > 1.6 || ratio < 0.7 {
		t.Fatalf("IS clean changed runtime by %vx; expected a modest effect", ratio)
	}
}

func TestFTRequiresPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-pow2 FT scale accepted")
		}
	}()
	Run(sim.MachineA(), Config{Kernel: FT, Scale: 48, Iters: 1})
}

func TestGridRowRoundtrip(t *testing.T) {
	m := sim.MachineA()
	g := newGrid(m, sim.WindowPMEM, "t", 16, 4, 4)
	c := m.Core(0)
	want := make([]float64, 16)
	for i := range want {
		want[i] = float64(i) * 1.5
	}
	g.writeRow(c, 2, 3, want, false)
	got := make([]float64, 16)
	g.readRow(c, 2, 3, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row roundtrip[%d] = %v", i, got[i])
		}
	}
}

func TestMGThreadedChecksumMatches(t *testing.T) {
	// Parallelizing the plane loops must not change the result (bands
	// write disjoint planes and read a converged neighbourhood).
	cfg := quickCfg(MG, Baseline)
	single := Run(sim.MachineA(), cfg)
	cfg.Threads = 4
	multi := Run(sim.MachineA(), cfg)
	if single.Checksum != multi.Checksum {
		t.Fatalf("threaded MG checksum %v != single-thread %v", multi.Checksum, single.Checksum)
	}
}

func TestMGThreadedCleanStillWins(t *testing.T) {
	cfg := quickCfg(MG, Baseline)
	cfg.Threads = 4
	cfg.Scale = 80 // 3 grids x 4 MiB: exceeds the LLC
	base := Run(sim.MachineA(), cfg)
	cfg.Mode = Clean
	clean := Run(sim.MachineA(), cfg)
	if base.Checksum != clean.Checksum {
		t.Fatal("checksum changed")
	}
	if clean.WriteAmp >= base.WriteAmp {
		t.Fatalf("clean amp %.2f >= base %.2f with 4 threads", clean.WriteAmp, base.WriteAmp)
	}
}
