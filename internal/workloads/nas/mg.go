package nas

import "prestores/internal/sim"

// runMG ports the NAS MG multi-grid kernel: V-cycle iterations over
// grids U, V and R using the resid and psinv stencils plus the rprj3
// restriction and interp prolongation operators. DirtBuster's findings
// (§7.2.2): psinv writes U sequentially, resid writes R sequentially;
// the paper cleans the written row after each inner loop (Listing 5).
func runMG(m *sim.Machine, c *sim.Core, cfg Config) float64 {
	n := cfg.Scale
	if n == 0 {
		n = 96
	}
	u := newGrid(m, cfg.Window, "mg.u", n, n, n)
	v := newGrid(m, cfg.Window, "mg.v", n, n, n)
	r := newGrid(m, cfg.Window, "mg.r", n, n, n)
	// Coarse-level grids for the restriction/prolongation steps.
	nc := n / 2
	uc := newGrid(m, cfg.Window, "mg.uc", nc, nc, nc)
	rc := newGrid(m, cfg.Window, "mg.rc", nc, nc, nc)

	c.PushFunc("mg.init")
	v.fill(c, func(i1, i2, i3 int) float64 {
		// Sparse charge distribution, as mg.f90's zran3 plants +1/-1.
		h := uint64(i1*73856093 ^ i2*19349663 ^ i3*83492791)
		switch h % 1024 {
		case 0:
			return 1
		case 1:
			return -1
		default:
			return 0
		}
	})
	u.fill(c, func(_, _, _ int) float64 { return 0 })
	c.PopFunc()

	clean := cfg.Mode == Clean
	cores := make([]*sim.Core, cfg.Threads)
	for t := range cores {
		cores[t] = m.Core(t)
	}
	for it := 0; it < cfg.Iters; it++ {
		residMT(m, cores, u, v, r, clean)
		rprj3(c, r, rc, clean)
		psinvMT(m, cores, rc, uc, clean)
		interp(c, uc, u, clean)
		psinvMT(m, cores, r, u, clean)
	}
	m.SyncCores()
	return u.checksum(m) + r.checksum(m)
}

// planeBands splits the interior planes [1, n3-1) into per-thread
// contiguous bands, as an OpenMP static schedule would.
func planeBands(n3, threads int) [][2]int {
	interior := n3 - 2
	bands := make([][2]int, threads)
	per := interior / threads
	extra := interior % threads
	start := 1
	for t := 0; t < threads; t++ {
		count := per
		if t < extra {
			count++
		}
		bands[t] = [2]int{start, start + count}
		start += count
	}
	return bands
}

// residMT runs resid's plane loop across the given cores, one plane
// band per core, interleaving plane-by-plane (the memory mixing of
// concurrent OpenMP threads).
func residMT(m *sim.Machine, cores []*sim.Core, u, v, r *grid, clean bool) {
	if len(cores) == 1 {
		resid(cores[0], u, v, r, clean)
		return
	}
	bands := planeBands(u.n3, len(cores))
	maxPlanes := 0
	for _, b := range bands {
		if n := b[1] - b[0]; n > maxPlanes {
			maxPlanes = n
		}
	}
	m.SyncCores()
	sim.RunInterleaved(cores, maxPlanes, func(t, p int, c *sim.Core) {
		i3 := bands[t][0] + p
		if i3 >= bands[t][1] {
			return
		}
		residPlane(c, u, v, r, i3, clean)
	})
	m.SyncCores()
}

// psinvMT is residMT's counterpart for psinv.
func psinvMT(m *sim.Machine, cores []*sim.Core, r, u *grid, clean bool) {
	if len(cores) == 1 {
		psinv(cores[0], r, u, clean)
		return
	}
	bands := planeBands(u.n3, len(cores))
	maxPlanes := 0
	for _, b := range bands {
		if n := b[1] - b[0]; n > maxPlanes {
			maxPlanes = n
		}
	}
	m.SyncCores()
	sim.RunInterleaved(cores, maxPlanes, func(t, p int, c *sim.Core) {
		i3 := bands[t][0] + p
		if i3 >= bands[t][1] {
			return
		}
		psinvPlane(c, r, u, i3, clean)
	})
	m.SyncCores()
}

// Stencil coefficients from mg.f90 (class-independent smoother).
var (
	mgA = [4]float64{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}
	mgC = [4]float64{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0}
)

// resid computes r = v - A*u with the 27-point stencil
// (mg.f90 line 544; DirtBuster: 100% sequential writes, re-read 23.8K,
// re-write inf -> clean).
func resid(c *sim.Core, u, v, r *grid, clean bool) {
	for i3 := 1; i3 < u.n3-1; i3++ {
		residPlane(c, u, v, r, i3, clean)
	}
}

// residPlane computes one i3 plane of resid.
func residPlane(c *sim.Core, u, v, r *grid, i3 int, clean bool) {
	c.PushFunc("mg.resid")
	defer c.PopFunc()
	n1, n2 := u.n1, u.n2
	rows := stencilRows(n1)
	out := make([]float64, n1)
	vrow := make([]float64, n1)
	for i2 := 1; i2 < n2-1; i2++ {
		u1, u2 := gatherStencil(c, u, i2, i3, rows)
		v.readRow(c, i2, i3, vrow)
		ur := rows[4] // center row (i2, i3)
		for i1 := 1; i1 < n1-1; i1++ {
			out[i1] = vrow[i1] - mgA[0]*ur[i1] - mgA[2]*u2[i1] - mgA[3]*(u1[i1-1]+u1[i1+1])
		}
		out[0], out[n1-1] = 0, 0
		r.writeRow(c, i2, i3, out, clean)
		c.Compute(uint64(n1)) // per-point FLOP cost
	}
}

// psinv computes u = u + C*r with the smoother stencil (mg.f90 line
// 614; DirtBuster: 100% sequential writes, never re-read -> skip, but
// Fortran has no non-temporal stores, so the paper cleans instead).
func psinv(c *sim.Core, r, u *grid, clean bool) {
	for i3 := 1; i3 < u.n3-1; i3++ {
		psinvPlane(c, r, u, i3, clean)
	}
}

// psinvPlane computes one i3 plane of psinv.
func psinvPlane(c *sim.Core, r, u *grid, i3 int, clean bool) {
	c.PushFunc("mg.psinv")
	defer c.PopFunc()
	n1, n2 := u.n1, u.n2
	rows := stencilRows(n1)
	out := make([]float64, n1)
	urow := make([]float64, n1)
	for i2 := 1; i2 < n2-1; i2++ {
		r1, r2 := gatherStencil(c, r, i2, i3, rows)
		u.readRow(c, i2, i3, urow)
		rr := rows[4]
		for i1 := 1; i1 < n1-1; i1++ {
			out[i1] = urow[i1] + mgC[0]*rr[i1] + mgC[1]*r1[i1] + mgC[2]*(r2[i1-1]+r2[i1+1])
		}
		out[0], out[n1-1] = urow[0], urow[n1-1]
		u.writeRow(c, i2, i3, out, clean)
		c.Compute(uint64(n1))
	}
}

// stencilRows allocates the 9 row buffers a 27-point stencil touches.
func stencilRows(n1 int) [][]float64 {
	rows := make([][]float64, 9)
	for i := range rows {
		rows[i] = make([]float64, n1)
	}
	return rows
}

// gatherStencil reads the 3x3 neighbourhood of rows around (i2, i3)
// and returns the first- and second-neighbour partial sums, as mg.f90
// precomputes u1/u2.
func gatherStencil(c *sim.Core, g *grid, i2, i3 int, rows [][]float64) (u1, u2 []float64) {
	idx := 0
	for d3 := -1; d3 <= 1; d3++ {
		for d2 := -1; d2 <= 1; d2++ {
			g.readRow(c, i2+d2, i3+d3, rows[idx])
			idx++
		}
	}
	n1 := g.n1
	u1 = make([]float64, n1)
	u2 = make([]float64, n1)
	for i1 := 0; i1 < n1; i1++ {
		// First neighbours: face-adjacent rows; second: edge rows.
		u1[i1] = rows[1][i1] + rows[3][i1] + rows[5][i1] + rows[7][i1]
		u2[i1] = rows[0][i1] + rows[2][i1] + rows[6][i1] + rows[8][i1]
	}
	return u1, u2
}

// rprj3 restricts the fine residual to the coarse grid (half-weighting).
func rprj3(c *sim.Core, fine, coarse *grid, clean bool) {
	c.PushFunc("mg.rprj3")
	defer c.PopFunc()
	n1 := coarse.n1
	row0 := make([]float64, fine.n1)
	row1 := make([]float64, fine.n1)
	out := make([]float64, n1)
	for i3 := 0; i3 < coarse.n3; i3++ {
		for i2 := 0; i2 < coarse.n2; i2++ {
			f2, f3 := i2*2, i3*2
			if f3+1 >= fine.n3 || f2+1 >= fine.n2 {
				continue
			}
			fine.readRow(c, f2, f3, row0)
			fine.readRow(c, f2+1, f3+1, row1)
			for i1 := 0; i1 < n1; i1++ {
				f1 := i1 * 2
				if f1+1 < fine.n1 {
					out[i1] = 0.5*row0[f1] + 0.25*(row0[f1+1]+row1[f1])
				}
			}
			coarse.writeRow(c, i2, i3, out, clean)
			c.Compute(uint64(n1))
		}
	}
}

// interp prolongates the coarse correction onto the fine grid.
func interp(c *sim.Core, coarse, fine *grid, clean bool) {
	c.PushFunc("mg.interp")
	defer c.PopFunc()
	crow := make([]float64, coarse.n1)
	frow := make([]float64, fine.n1)
	for i3 := 0; i3 < coarse.n3; i3++ {
		for i2 := 0; i2 < coarse.n2; i2++ {
			coarse.readRow(c, i2, i3, crow)
			f2, f3 := i2*2, i3*2
			if f3 >= fine.n3 || f2 >= fine.n2 {
				continue
			}
			fine.readRow(c, f2, f3, frow)
			for i1 := 0; i1 < coarse.n1; i1++ {
				f1 := i1 * 2
				frow[f1] += crow[i1]
				if f1+1 < fine.n1 {
					frow[f1+1] += 0.5 * crow[i1]
				}
			}
			fine.writeRow(c, f2, f3, frow, clean)
			c.Compute(uint64(coarse.n1))
		}
	}
}
