package masstree

import (
	"fmt"

	"prestores/internal/snap"
)

// SnapshotState serializes the tree's host-side mutable state — the
// node-pool cursor and the activity counters — for a checkpoint annex.
// The nodes themselves live in simulated memory and are covered by the
// machine snapshot; rootCell is fixed at construction.
func (t *Tree) SnapshotState(w *snap.Writer) {
	w.Section("MTRE")
	w.U64(t.nextNode)
	w.U64(t.stats.Puts)
	w.U64(t.stats.Gets)
	w.U64(t.stats.Hits)
	w.U64(t.stats.Updates)
	w.U64(t.stats.Inserts)
	w.U64(t.stats.Splits)
	w.U64(t.stats.Restarts)
	w.I64(int64(t.stats.Depth))
}

// RestoreState replaces the tree's host-side state with a serialized
// one. The tree must have been constructed with the same pool geometry
// as the producer's.
func (t *Tree) RestoreState(r *snap.Reader) error {
	r.Section("MTRE")
	nextNode := r.U64()
	var st Stats
	st.Puts = r.U64()
	st.Gets = r.U64()
	st.Hits = r.U64()
	st.Updates = r.U64()
	st.Inserts = r.U64()
	st.Splits = r.U64()
	st.Restarts = r.U64()
	st.Depth = int(r.I64())
	if err := r.Err(); err != nil {
		return fmt.Errorf("masstree: %w", err)
	}
	t.nextNode = nextNode
	t.stats = st
	return nil
}
