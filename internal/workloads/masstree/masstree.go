// Package masstree implements a Masstree-style B+tree in simulated
// memory (Mao, Kohler, Morris: "Cache craftiness for fast multicore
// key-value storage"), specialized to 8-byte keys.
//
// The structure matters to the paper through its concurrency protocol
// (§7.3.1, Listing 7): every object carries a version number; readers
// and writers check the version, fence, manipulate the node, fence, and
// re-check the version to detect concurrent changes. "The fences are
// mandatory for correctness, but they may cause the CPU to stall if the
// crafted value has not been made visible to all the cores" — which is
// exactly the stall a demote/clean pre-store on the crafted value
// removes.
package masstree

import (
	"prestores/internal/memspace"
	"prestores/internal/sim"
)

// Node layout (one nodeSize-byte block):
//
//	offset 0:   version word (bit 0 = lock, higher bits = counter)
//	offset 8:   key count
//	offset 16:  node type (0 = leaf, 1 = internal)
//	offset 24:  next-leaf address (leaves only)
//	offset 32:  keys   [fanout]u64
//	offset 152: leaf value refs [fanout]u64 / internal children [fanout+1]u64
const (
	nodeSize = 512
	fanout   = 15

	offVersion = 0
	offCount   = 8
	offType    = 16
	offNext    = 24
	offKeys    = 32
	offVals    = offKeys + 8*fanout // 152
)

const (
	typeLeaf     = 0
	typeInternal = 1
)

func packRef(addr uint64, n uint32) uint64 { return addr | uint64(n)<<48 }
func unpackRef(ref uint64) (uint64, uint32) {
	return ref & (1<<48 - 1), uint32(ref >> 48)
}

// Stats counts tree activity.
type Stats struct {
	Puts     uint64
	Gets     uint64
	Hits     uint64
	Updates  uint64
	Inserts  uint64
	Splits   uint64
	Restarts uint64
	Depth    int
}

// Tree is the Masstree-style index.
type Tree struct {
	m        *sim.Machine
	pool     memspace.Region
	rootCell uint64 // address of the root pointer
	nextNode uint64
	stats    Stats
}

// Config sizes the tree.
type Config struct {
	Window string // default PMEM
	// PoolNodes is the node-pool capacity; default 1<<17 nodes.
	PoolNodes uint64
}

// New allocates the node pool and an empty root leaf.
func New(m *sim.Machine, cfg Config) *Tree {
	if cfg.Window == "" {
		cfg.Window = sim.WindowPMEM
	}
	if cfg.PoolNodes == 0 {
		cfg.PoolNodes = 1 << 17
	}
	t := &Tree{
		m:    m,
		pool: m.AllocAligned(cfg.Window, "masstree.nodes", cfg.PoolNodes*nodeSize+8, nodeSize),
	}
	t.rootCell = t.pool.Base
	t.nextNode = nodeSize // node storage starts one block in
	root := t.allocNode(typeLeaf)
	t.m.Backing().WriteU64(t.rootCell, root)
	return t
}

// Name implements kv.Store.
func (t *Tree) Name() string { return "masstree" }

// Stats returns activity counters.
func (t *Tree) Stats() Stats { return t.stats }

// allocNode carves a zeroed node from the pool (setup-time, untimed
// except for the type word the caller writes).
func (t *Tree) allocNode(typ uint64) uint64 {
	if t.nextNode+nodeSize > t.pool.Size {
		panic("masstree: node pool exhausted; size the tree for the key count")
	}
	addr := t.pool.Base + t.nextNode
	t.nextNode += nodeSize
	t.m.Backing().Fill(addr, nodeSize, 0)
	t.m.Backing().WriteU64(addr+offType, typ)
	return addr
}

func (t *Tree) root(c *sim.Core) uint64 { return c.ReadU64(t.rootCell) }

// readVersion reads a node's version word.
func readVersion(c *sim.Core, node uint64) uint64 { return c.ReadU64(node + offVersion) }

func isLocked(v uint64) bool { return v&1 == 1 }

// lockNode acquires the node's version lock with a CAS loop.
func (t *Tree) lockNode(c *sim.Core, node uint64) uint64 {
	for {
		v := readVersion(c, node)
		if !isLocked(v) && c.CAS(node+offVersion, v, v|1) {
			return v
		}
		c.Compute(4)
	}
}

// unlockNode bumps the version counter and clears the lock bit.
func (t *Tree) unlockNode(c *sim.Core, node, v uint64) {
	c.Fence()
	c.WriteU64(node+offVersion, v+2)
}

// search returns the index of the first key >= key within the node and
// whether it matches exactly, issuing the loads for the scanned keys.
func (t *Tree) search(c *sim.Core, node, key uint64) (int, bool) {
	n := int(c.ReadU64(node + offCount))
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		k := c.ReadU64(node + offKeys + uint64(mid)*8)
		if k < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	exact := false
	if lo < n {
		exact = c.ReadU64(node+offKeys+uint64(lo)*8) == key
	}
	return lo, exact
}

// Get looks key up with the optimistic version-validation protocol of
// Listing 7.
func (t *Tree) Get(c *sim.Core, key uint64) (uint64, uint32, bool) {
	t.stats.Gets++
	c.PushFunc("masstree.get")
	defer c.PopFunc()
	ukey := key + 1
restart:
	node := t.root(c)
	for {
		v := readVersion(c, node)
		if isLocked(v) {
			t.stats.Restarts++
			c.Compute(4)
			goto restart
		}
		c.Fence()
		typ := c.ReadU64(node + offType)
		i, exact := t.search(c, node, ukey)
		var next, ref uint64
		if typ == typeInternal {
			ci := i
			if exact {
				ci = i + 1
			}
			next = c.ReadU64(node + offVals + uint64(ci)*8)
		} else if exact {
			ref = c.ReadU64(node + offVals + uint64(i)*8)
		}
		c.Fence()
		if readVersion(c, node) != v {
			t.stats.Restarts++
			goto restart
		}
		if typ == typeLeaf {
			if !exact {
				return 0, 0, false
			}
			addr, n := unpackRef(ref)
			t.stats.Hits++
			return addr, n, true
		}
		node = next
	}
}

// Put inserts or updates key -> (valAddr, valLen), locking the leaf
// (and ancestors during splits) with version locks. It returns any
// replaced value's location so the caller can free it.
func (t *Tree) Put(c *sim.Core, key, valAddr uint64, valLen uint32) (uint64, uint32, bool) {
	t.stats.Puts++
	c.PushFunc("masstree.put")
	defer c.PopFunc()
	ukey := key + 1

restart:
	// Descend, remembering the path for splits.
	var path []uint64
	node := t.root(c)
	for {
		v := readVersion(c, node)
		if isLocked(v) {
			t.stats.Restarts++
			c.Compute(4)
			goto restart
		}
		c.Fence()
		typ := c.ReadU64(node + offType)
		if typ == typeLeaf {
			break
		}
		i, exact := t.search(c, node, ukey)
		ci := i
		if exact {
			ci = i + 1
		}
		next := c.ReadU64(node + offVals + uint64(ci)*8)
		c.Fence()
		if readVersion(c, node) != v {
			t.stats.Restarts++
			goto restart
		}
		path = append(path, node)
		node = next
	}

	v := t.lockNode(c, node)
	i, exact := t.search(c, node, ukey)
	if exact {
		oldAddr, oldLen := unpackRef(c.ReadU64(node + offVals + uint64(i)*8))
		c.WriteU64(node+offVals+uint64(i)*8, packRef(valAddr, valLen))
		t.stats.Updates++
		t.unlockNode(c, node, v)
		return oldAddr, oldLen, true
	}
	n := int(c.ReadU64(node + offCount))
	if n < fanout {
		t.insertAt(c, node, n, i, ukey, packRef(valAddr, valLen))
		t.stats.Inserts++
		t.unlockNode(c, node, v)
		return 0, 0, false
	}
	// Leaf full: split, then insert into the proper half.
	right, sep := t.splitLeaf(c, node)
	if ukey >= sep {
		vi, _ := t.search(c, right, ukey)
		rn := int(c.ReadU64(right + offCount))
		t.insertAt(c, right, rn, vi, ukey, packRef(valAddr, valLen))
	} else {
		vi, _ := t.search(c, node, ukey)
		ln := int(c.ReadU64(node + offCount))
		t.insertAt(c, node, ln, vi, ukey, packRef(valAddr, valLen))
	}
	t.stats.Inserts++
	t.insertParent(c, path, node, right, sep)
	t.unlockNode(c, node, v)
	return 0, 0, false
}

// insertAt shifts keys/vals right from index i and writes the new pair.
func (t *Tree) insertAt(c *sim.Core, node uint64, n, i int, key, val uint64) {
	for j := n; j > i; j-- {
		c.WriteU64(node+offKeys+uint64(j)*8, c.ReadU64(node+offKeys+uint64(j-1)*8))
		c.WriteU64(node+offVals+uint64(j)*8, c.ReadU64(node+offVals+uint64(j-1)*8))
	}
	c.WriteU64(node+offKeys+uint64(i)*8, key)
	c.WriteU64(node+offVals+uint64(i)*8, val)
	c.WriteU64(node+offCount, uint64(n+1))
}

// splitLeaf moves the upper half of node into a fresh leaf and returns
// (rightNode, separatorKey).
func (t *Tree) splitLeaf(c *sim.Core, node uint64) (uint64, uint64) {
	t.stats.Splits++
	right := t.allocNode(typeLeaf)
	half := fanout / 2
	moved := fanout - half
	for j := 0; j < moved; j++ {
		c.WriteU64(right+offKeys+uint64(j)*8, c.ReadU64(node+offKeys+uint64(half+j)*8))
		c.WriteU64(right+offVals+uint64(j)*8, c.ReadU64(node+offVals+uint64(half+j)*8))
	}
	c.WriteU64(right+offCount, uint64(moved))
	c.WriteU64(right+offNext, c.ReadU64(node+offNext))
	c.WriteU64(node+offNext, right)
	c.WriteU64(node+offCount, uint64(half))
	sep := c.ReadU64(right + offKeys)
	return right, sep
}

// insertParent links a freshly split right node under the parent chain,
// splitting internal nodes as needed (path holds the descent ancestors,
// root first).
func (t *Tree) insertParent(c *sim.Core, path []uint64, left, right, sep uint64) {
	if len(path) == 0 {
		// Split of the root: grow the tree.
		newRoot := t.allocNode(typeInternal)
		c.WriteU64(newRoot+offCount, 1)
		c.WriteU64(newRoot+offKeys, sep)
		c.WriteU64(newRoot+offVals, left)
		c.WriteU64(newRoot+offVals+8, right)
		c.Fence()
		c.WriteU64(t.rootCell, newRoot)
		t.stats.Depth++
		return
	}
	parent := path[len(path)-1]
	pv := t.lockNode(c, parent)
	n := int(c.ReadU64(parent + offCount))
	i, _ := t.search(c, parent, sep)
	if n < fanout {
		// Shift keys and children right of position i.
		for j := n; j > i; j-- {
			c.WriteU64(parent+offKeys+uint64(j)*8, c.ReadU64(parent+offKeys+uint64(j-1)*8))
		}
		for j := n + 1; j > i+1; j-- {
			c.WriteU64(parent+offVals+uint64(j)*8, c.ReadU64(parent+offVals+uint64(j-1)*8))
		}
		c.WriteU64(parent+offKeys+uint64(i)*8, sep)
		c.WriteU64(parent+offVals+uint64(i+1)*8, right)
		c.WriteU64(parent+offCount, uint64(n+1))
		t.unlockNode(c, parent, pv)
		return
	}
	// Internal split: move upper half (keys after the median) right.
	t.stats.Splits++
	newRight := t.allocNode(typeInternal)
	half := fanout / 2
	midKey := c.ReadU64(parent + offKeys + uint64(half)*8)
	moved := fanout - half - 1
	for j := 0; j < moved; j++ {
		c.WriteU64(newRight+offKeys+uint64(j)*8, c.ReadU64(parent+offKeys+uint64(half+1+j)*8))
	}
	for j := 0; j <= moved; j++ {
		c.WriteU64(newRight+offVals+uint64(j)*8, c.ReadU64(parent+offVals+uint64(half+1+j)*8))
	}
	c.WriteU64(newRight+offCount, uint64(moved))
	c.WriteU64(parent+offCount, uint64(half))
	// Now insert sep/right into the proper half.
	target := parent
	if sep >= midKey {
		target = newRight
	}
	tn := int(c.ReadU64(target + offCount))
	ti, _ := t.search(c, target, sep)
	for j := tn; j > ti; j-- {
		c.WriteU64(target+offKeys+uint64(j)*8, c.ReadU64(target+offKeys+uint64(j-1)*8))
	}
	for j := tn + 1; j > ti+1; j-- {
		c.WriteU64(target+offVals+uint64(j)*8, c.ReadU64(target+offVals+uint64(j-1)*8))
	}
	c.WriteU64(target+offKeys+uint64(ti)*8, sep)
	c.WriteU64(target+offVals+uint64(ti+1)*8, right)
	c.WriteU64(target+offCount, uint64(tn+1))
	t.unlockNode(c, parent, pv)
	t.insertParent(c, path[:len(path)-1], parent, newRight, midKey)
}

// Scan walks the leaf chain from the first key >= start, calling fn for
// up to limit entries — the YCSB-E operation.
func (t *Tree) Scan(c *sim.Core, start uint64, limit int, fn func(key uint64, valAddr uint64, valLen uint32) bool) {
	c.PushFunc("masstree.scan")
	defer c.PopFunc()
	ukey := start + 1
	node := t.root(c)
	for {
		typ := c.ReadU64(node + offType)
		if typ == typeLeaf {
			break
		}
		i, exact := t.search(c, node, ukey)
		ci := i
		if exact {
			ci = i + 1
		}
		node = c.ReadU64(node + offVals + uint64(ci)*8)
	}
	leafStart, _ := t.search(c, node, ukey)
	seen := 0
	for node != 0 && seen < limit {
		// Per-leaf version validation (Listing 7), as masstree's scans
		// perform between leaf hops. A failed validation re-reads the
		// same leaf from its starting index.
		v := readVersion(c, node)
		if isLocked(v) {
			t.stats.Restarts++
			c.Compute(4)
			continue
		}
		c.Fence()
		n := int(c.ReadU64(node + offCount))
		type entry struct {
			k, addr uint64
			ln      uint32
		}
		var batch []entry
		for i := leafStart; i < n && seen+len(batch) < limit; i++ {
			k := c.ReadU64(node + offKeys + uint64(i)*8)
			addr, ln := unpackRef(c.ReadU64(node + offVals + uint64(i)*8))
			batch = append(batch, entry{k, addr, ln})
		}
		next := c.ReadU64(node + offNext)
		c.Fence()
		if readVersion(c, node) != v {
			t.stats.Restarts++
			continue // re-read this leaf
		}
		for _, e := range batch {
			if !fn(e.k-1, e.addr, e.ln) {
				return
			}
			seen++
		}
		node = next
		leafStart = 0
	}
}
