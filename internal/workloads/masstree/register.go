package masstree

import (
	"prestores/internal/sim"
	"prestores/internal/workloads/kv"
)

func init() {
	// Default sizing matches the bench harness's kvSetup.
	kv.RegisterStore("masstree", func(m *sim.Machine, window string) kv.Store {
		return New(m, Config{Window: window, PoolNodes: 1 << 17})
	})
}
