package masstree

import (
	"testing"
	"testing/quick"

	"prestores/internal/sim"
	"prestores/internal/xrand"
)

func newTree(t *testing.T) (*sim.Machine, *Tree) {
	t.Helper()
	m := sim.MachineA()
	return m, New(m, Config{PoolNodes: 1 << 14})
}

func TestPutGet(t *testing.T) {
	m, tr := newTree(t)
	c := m.Core(0)
	tr.Put(c, 10, 0x10000001000, 64)
	tr.Put(c, 5, 0x10000002000, 128)
	tr.Put(c, 20, 0x10000003000, 256)
	for _, tc := range []struct {
		k    uint64
		addr uint64
		n    uint32
	}{{10, 0x10000001000, 64}, {5, 0x10000002000, 128}, {20, 0x10000003000, 256}} {
		addr, n, ok := tr.Get(c, tc.k)
		if !ok || addr != tc.addr || n != tc.n {
			t.Fatalf("Get(%d) = %#x,%d,%v", tc.k, addr, n, ok)
		}
	}
}

func TestGetMissing(t *testing.T) {
	m, tr := newTree(t)
	c := m.Core(0)
	tr.Put(c, 5, 0x10000001000, 64)
	if _, _, ok := tr.Get(c, 4); ok {
		t.Fatal("missing key found")
	}
	if _, _, ok := tr.Get(c, 6); ok {
		t.Fatal("missing key found")
	}
}

func TestUpdateReturnsOld(t *testing.T) {
	m, tr := newTree(t)
	c := m.Core(0)
	tr.Put(c, 3, 0x10000001000, 64)
	old, oldLen, replaced := tr.Put(c, 3, 0x10000002000, 128)
	if !replaced || old != 0x10000001000 || oldLen != 64 {
		t.Fatalf("replace = %#x,%d,%v", old, oldLen, replaced)
	}
	if tr.Stats().Updates != 1 {
		t.Fatalf("stats %+v", tr.Stats())
	}
}

func TestSplitsAndDepth(t *testing.T) {
	m, tr := newTree(t)
	c := m.Core(0)
	const n = 5000
	for k := uint64(0); k < n; k++ {
		tr.Put(c, k, 0x10000000000+k*64, 64)
	}
	if tr.Stats().Splits == 0 {
		t.Fatal("5000 sequential inserts caused no splits")
	}
	if tr.Stats().Depth == 0 {
		t.Fatal("tree never grew")
	}
	for k := uint64(0); k < n; k++ {
		addr, _, ok := tr.Get(c, k)
		if !ok || addr != 0x10000000000+k*64 {
			t.Fatalf("post-split Get(%d) = %#x,%v", k, addr, ok)
		}
	}
}

func TestRandomInsertOrder(t *testing.T) {
	m, tr := newTree(t)
	c := m.Core(0)
	rng := xrand.New(17)
	perm := rng.Perm(4000)
	for _, k := range perm {
		tr.Put(c, uint64(k), 0x10000000000+uint64(k)*64, 64)
	}
	for k := uint64(0); k < 4000; k++ {
		if _, _, ok := tr.Get(c, k); !ok {
			t.Fatalf("random-order Get(%d) failed", k)
		}
	}
}

func TestAgainstMapReference(t *testing.T) {
	m, tr := newTree(t)
	c := m.Core(0)
	ref := map[uint64]uint64{}
	rng := xrand.New(41)
	for i := 0; i < 20000; i++ {
		k := rng.Uint64n(2500)
		v := 0x10000000000 + rng.Uint64n(1<<20)&^63
		tr.Put(c, k, v, 64)
		ref[k] = v
	}
	for k, v := range ref {
		got, _, ok := tr.Get(c, k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %#x,%v want %#x", k, got, ok, v)
		}
	}
}

func TestScanOrder(t *testing.T) {
	m, tr := newTree(t)
	c := m.Core(0)
	for k := uint64(0); k < 1000; k += 2 {
		tr.Put(c, k, 0x10000000000+k*64, 64)
	}
	var keys []uint64
	tr.Scan(c, 100, 20, func(k uint64, _ uint64, _ uint32) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 20 {
		t.Fatalf("scan returned %d keys", len(keys))
	}
	for i, k := range keys {
		want := uint64(100 + 2*i)
		if k != want {
			t.Fatalf("scan[%d] = %d, want %d", i, k, want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	m, tr := newTree(t)
	c := m.Core(0)
	for k := uint64(0); k < 100; k++ {
		tr.Put(c, k, 0x10000000000+k*64, 64)
	}
	count := 0
	tr.Scan(c, 0, 100, func(uint64, uint64, uint32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestVersionProtocolFences(t *testing.T) {
	m, tr := newTree(t)
	c := m.Core(0)
	tr.Put(c, 1, 0x10000001000, 64)
	before := c.Stats().Fences
	tr.Get(c, 1)
	// Listing 7: at least two fences per node visited.
	if c.Stats().Fences < before+2 {
		t.Fatalf("get used %d fences, want >= 2", c.Stats().Fences-before)
	}
}

func TestQuickRoundtrip(t *testing.T) {
	m, tr := newTree(t)
	c := m.Core(0)
	f := func(key uint64, off uint32) bool {
		key %= 1 << 28
		v := 0x10000000000 + uint64(off)&^63
		tr.Put(c, key, v, 64)
		got, _, ok := tr.Get(c, key)
		return ok && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
