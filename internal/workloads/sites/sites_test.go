package sites

import (
	"testing"

	"prestores/internal/sim"
)

var allOps = []string{"none", "clean", "skip", "demote"}

func runPlan(t *testing.T, hotOp, onceOp string) Result {
	t.Helper()
	m := sim.NewMachine(sim.ConfigA())
	return Run(m, Config{
		HotLines:  64,
		OnceLines: 8192,
		Rounds:    16,
		Stride:    4,
		Window:    sim.WindowPMEM,
		HotOp:     hotOp,
		OnceOp:    onceOp,
	})
}

// TestKnownBestPlan pins the property the autotuner's convergence tests
// rely on: over the full 4x4 plan matrix, {hot: demote, once: clean} is
// the unique elapsed optimum. Cleaning the once stream removes the
// device write backlog (amp 3.6x -> 1.0x) that none/demote pay and the
// device read-backs skip pays; demoting the hot set removes the
// cross-core dirty-forward penalty that none pays and the write-back
// cost clean pays.
func TestKnownBestPlan(t *testing.T) {
	type entry struct {
		hot, once string
		r         Result
	}
	var best entry
	first := true
	for _, hotOp := range allOps {
		for _, onceOp := range allOps {
			r := runPlan(t, hotOp, onceOp)
			t.Logf("hot=%-6s once=%-6s elapsed=%12d device_write=%12d device_read=%12d amp=%.2f",
				hotOp, onceOp, r.Elapsed, r.DeviceWriteBytes, r.DeviceReadBytes, r.WriteAmp)
			if first || r.Elapsed < best.r.Elapsed {
				best = entry{hotOp, onceOp, r}
				first = false
			}
		}
	}
	if best.hot != "demote" || best.once != "clean" {
		t.Fatalf("best plan = {hot: %s, once: %s}, want {hot: demote, once: clean}", best.hot, best.once)
	}
}

// TestDeterministic pins run-to-run byte equality of the metrics the
// search scores on.
func TestDeterministic(t *testing.T) {
	a := runPlan(t, "demote", "clean")
	b := runPlan(t, "demote", "clean")
	if a != b {
		t.Fatalf("two identical runs disagree:\n%+v\n%+v", a, b)
	}
}
