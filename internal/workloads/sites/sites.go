// Package sites is a synthetic two-site workload with a known-best
// pre-store plan, built to exercise per-site policy search:
//
//   - The "hot" site rewrites a small, cache-resident set of lines
//     every round on a producer core; a consumer core reads them right
//     after. With no pre-store the consumer pays the dirty-remote
//     cache-to-cache forward on every round; demoting the freshly
//     written lines to the shared LLC removes it, cheaper than clean
//     (which pays the device write-back every round) and skip (which
//     sends the reads to the device). Demote is the optimum.
//
//   - The "once" site appends a write-once sequential stream about
//     twice the LLC, sampling it back shortly after writing. Left
//     alone, the stream is evicted in scrambled order and the
//     256 B-block device pays partial-flush write amplification and its
//     backlog (paper §4.1); cleaning each chunk as it is written
//     restores eviction sequentiality, and — unlike skip — keeps the
//     lines cached for the near re-read. Clean is the optimum.
//
// The autotuner's convergence tests assert that the search minimizes
// elapsed to {hot: demote, once: clean} from a cold start within a
// bounded budget; the sites test pins that this is the true optimum of
// the full plan matrix.
package sites

import (
	"fmt"

	"prestores/internal/scenario"
	"prestores/internal/sim"
	"prestores/internal/units"
)

// Config parameterizes one run. Site ops are already resolved
// (scenario.SiteOp) by the time Run sees them.
type Config struct {
	HotLines  int    // producer-rewritten, consumer-read lines per round
	OnceLines int    // fresh sequential lines appended per round
	Rounds    int    // rounds; once-stream footprint = Rounds*OnceLines*line
	Stride    int    // once-site re-read sampling stride (0 = no re-read)
	Window    string // memory window both sites live in
	HotOp     string // none | clean | skip | demote
	OnceOp    string
}

// Result reports one measured run.
type Result struct {
	Elapsed          units.Cycles
	DeviceWriteBytes uint64
	DeviceReadBytes  uint64
	WriteAmp         float64
	Checksum         uint64
}

// site applies one write through a site's resolved pre-store op.
func site(c *sim.Core, addr uint64, data []byte, op string) {
	if op == "skip" {
		c.WriteNT(addr, data)
		return
	}
	c.Write(addr, data)
	switch op {
	case "clean":
		c.Prestore(addr, uint64(len(data)), sim.Clean)
	case "demote":
		c.Prestore(addr, uint64(len(data)), sim.Demote)
	}
}

// Run executes the workload. Core 0 produces the hot set; core 1
// consumes it and owns the once stream, so the consumer core is the
// critical path and the hot site's forwarding cost shows up in Elapsed.
func Run(m *sim.Machine, cfg Config) Result {
	if cfg.Window == "" {
		cfg.Window = sim.WindowPMEM
	}
	line := m.LineSize()
	hot := m.Alloc(cfg.Window, "sites.hot", uint64(cfg.HotLines)*line)
	pool := m.Alloc(cfg.Window, "sites.once", uint64(cfg.Rounds)*uint64(cfg.OnceLines)*line)
	dev := m.Device(cfg.Window)
	if dev == nil {
		panic(fmt.Sprintf("sites: machine has no window %q", cfg.Window))
	}

	prod, cons := m.Core(0), m.Core(1)
	buf := make([]byte, line)
	rd := make([]byte, line)

	var res Result
	m.Drain()
	m.ResetStats()
	dev.ResetStats()

	res.Elapsed = sim.Elapsed(m, []*sim.Core{prod, cons}, func() {
		oncePtr := pool.Base
		for round := 0; round < cfg.Rounds; round++ {
			// Hot site: the producer rewrites every line...
			for i := 0; i < cfg.HotLines; i++ {
				buf[0] = byte(round + i)
				site(prod, hot.Base+uint64(i)*line, buf, cfg.HotOp)
			}
			// ...and the consumer reads them all.
			for i := 0; i < cfg.HotLines; i++ {
				cons.Read(hot.Base+uint64(i)*line, rd)
				res.Checksum += uint64(rd[0])
			}
			// Once site: the consumer appends a fresh chunk...
			chunk := oncePtr
			for i := 0; i < cfg.OnceLines; i++ {
				buf[0] = byte(i)
				site(cons, oncePtr, buf, cfg.OnceOp)
				oncePtr += line
			}
			// ...and samples it back while it is still near.
			if cfg.Stride > 0 {
				for i := 0; i < cfg.OnceLines; i += cfg.Stride {
					cons.Read(chunk+uint64(i)*line, rd)
					res.Checksum += uint64(rd[0])
				}
			}
		}
		m.Drain()
	})

	st := dev.Stats()
	res.DeviceWriteBytes = st.MediaBytesWritten
	res.DeviceReadBytes = st.MediaBytesRead
	res.WriteAmp = st.WriteAmplification()
	return res
}

func init() {
	scenario.Register(scenario.Workload{
		Name:        "sites",
		Description: "synthetic two-site policy workload: a hot cross-core set (demote wins) and a write-once stream (clean wins)",
		Params: []scenario.ParamDef{
			{Name: "hot_lines", Kind: scenario.KindInt, Help: "hot lines rewritten and cross-core read per round (default 64)"},
			{Name: "once_lines", Kind: scenario.KindInt, Help: "write-once lines appended per round (default 8192)"},
			{Name: "rounds", Kind: scenario.KindInt, Help: "rounds (default 16); stream footprint = rounds*once_lines*line"},
			{Name: "stride", Kind: scenario.KindInt, Help: "once-stream re-read sampling stride (default 4, 0 disables)"},
			{Name: "window", Kind: scenario.KindString, Help: "memory window (default pmem)"},
		},
		Ops:         []string{"none", "clean", "skip", "demote"},
		MetricNames: []string{"elapsed", "device_write_bytes", "device_read_bytes", "write_amp"},
		Sites:       []string{"hot", "once"},
		Run: func(m *sim.Machine, op string, p scenario.Params) (scenario.Metrics, error) {
			if m.Cores() < 2 {
				return nil, fmt.Errorf("machine: sites needs at least 2 cores")
			}
			r := Run(m, Config{
				HotLines:  p.Int("hot_lines", 64),
				OnceLines: p.Int("once_lines", 8192),
				Rounds:    p.Int("rounds", 16),
				Stride:    p.Int("stride", 4),
				Window:    p.Str("window", sim.WindowPMEM),
				HotOp:     scenario.SiteOp(p, "hot", op),
				OnceOp:    scenario.SiteOp(p, "once", op),
			})
			return scenario.Metrics{
				"elapsed":            float64(r.Elapsed),
				"device_write_bytes": float64(r.DeviceWriteBytes),
				"device_read_bytes":  float64(r.DeviceReadBytes),
				"write_amp":          r.WriteAmp,
			}, nil
		},
	})
}
