// Package snap implements the fixed-width little-endian binary codec
// used by the simulator's checkpoint/restore machinery.
//
// The format is deliberately trivial: every value is written at a fixed
// width (no varints), multi-byte values are little-endian, and
// variable-length data is length-prefixed with a uint64. Determinism is
// the point — the same machine state must always serialize to the same
// bytes, because warm-forked sweeps are proven byte-identical to cold
// sweeps, and any encoder cleverness (map iteration order, varint width
// choices) is a place for that guarantee to leak.
//
// Readers latch their first error: after a failure every subsequent
// read returns the zero value, so decode paths can be written straight-
// line and check Err (or Done) once at the end.
package snap

import (
	"encoding/binary"
	"fmt"
)

// Writer serializes values into a growing buffer. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a byte 0 or 1.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends a little-endian two's-complement int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Raw appends b with no length prefix; the reader must know the size.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Bytes appends a uint64 length prefix followed by b.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends s length-prefixed.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Section appends a four-byte tag marking the start of a state section,
// so a reader that drifts out of sync fails at the next boundary
// instead of silently misinterpreting bytes. It panics on a tag whose
// length is not exactly four — that is an encoder bug, not input data.
func (w *Writer) Section(tag string) {
	if len(tag) != 4 {
		panic(fmt.Sprintf("snap: section tag %q must be 4 bytes", tag))
	}
	w.buf = append(w.buf, tag...)
}

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Finish returns the accumulated buffer. The writer must not be used
// afterwards.
func (w *Writer) Finish() []byte { return w.buf }

// Reader decodes a buffer produced by Writer. The first failure latches:
// every later read returns the zero value and Err keeps reporting it.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format+" at offset %d", append(args, r.off)...)
	}
}

// take returns the next n bytes, or nil after latching a truncation
// error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf)-r.off < n {
		r.fail("truncated: need %d bytes, have %d", n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a byte and reports whether it is nonzero.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian two's-complement int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Raw reads exactly len(dst) bytes into dst.
func (r *Reader) Raw(dst []byte) {
	b := r.take(len(dst))
	if b != nil {
		copy(dst, b)
	}
}

// Bytes reads a length-prefixed byte slice. The returned slice aliases
// the reader's buffer; callers that retain it must copy.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("bad length prefix %d (only %d bytes left)", n, len(r.buf)-r.off)
		return nil
	}
	return r.take(int(n))
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Section consumes a four-byte tag and latches an error if it does not
// match the expected one.
func (r *Reader) Section(tag string) {
	if len(tag) != 4 {
		panic(fmt.Sprintf("snap: section tag %q must be 4 bytes", tag))
	}
	b := r.take(4)
	if b == nil {
		return
	}
	if string(b) != tag {
		r.off -= 4
		r.fail("section mismatch: want %q, got %q", tag, string(b))
	}
}

// Err returns the latched error, if any.
func (r *Reader) Err() error { return r.err }

// Done returns the latched error, or an error if undecoded bytes
// remain — a decoder that leaves a tail has drifted out of sync with
// the encoder even if nothing failed outright.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("snap: %d trailing bytes after decode", len(r.buf)-r.off)
	}
	return nil
}
