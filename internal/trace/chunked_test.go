package trace

import (
	"bytes"
	"io"
	"testing"

	"prestores/internal/sim"
)

// recordMany records count store/load/fence ops across two functions
// and two cores so chunked encodings exercise fn-table deltas and core
// masks.
func recordMany(t *testing.T, count int) *Buffer {
	t.Helper()
	b := NewBuffer()
	m := sim.MachineA()
	m.SetHook(b.Hook())
	c0, c1 := m.Core(0), m.Core(1)
	c0.PushFunc("writer")
	c1.PushFunc("reader")
	payload := make([]byte, 64)
	for i := 0; b.Len() < count; i++ {
		c0.Write(1<<40+uint64(i)*64, payload)
		c1.Read(1<<40+uint64(i)*64, payload)
		if i%17 == 0 {
			c0.Fence()
		}
	}
	c0.PopFunc()
	c1.PopFunc()
	m.SetHook(nil)
	return b
}

func flatten(t *testing.T, cr *ChunkReader) (recs []Record, fns []string, chunks int) {
	t.Helper()
	for {
		c, err := cr.Next()
		if err == io.EOF {
			return recs, fns, chunks
		}
		if err != nil {
			t.Fatalf("chunk %d: %v", chunks, err)
		}
		if c.Index != chunks {
			t.Fatalf("chunk index %d, want %d", c.Index, chunks)
		}
		for _, r := range c.Records {
			recs = append(recs, r)
			fns = append(fns, c.FuncName(r.Fn))
		}
		chunks++
	}
}

func compareReplay(t *testing.T, want *Buffer, recs []Record, fns []string) {
	t.Helper()
	var wrecs []Record
	var wfns []string
	want.Replay(func(r Record, fn string) { wrecs = append(wrecs, r); wfns = append(wfns, fn) })
	if len(wrecs) != len(recs) {
		t.Fatalf("got %d records, want %d", len(recs), len(wrecs))
	}
	for i := range wrecs {
		// Fn ids can be re-interned; compare everything else plus the name.
		a, b := wrecs[i], recs[i]
		a.Fn, b.Fn = 0, 0
		if a != b || wfns[i] != fns[i] {
			t.Fatalf("record %d mismatch: %+v (%q) vs %+v (%q)", i, wrecs[i], wfns[i], recs[i], fns[i])
		}
	}
}

func TestWriterChunkReaderRoundtrip(t *testing.T) {
	b := recordMany(t, 1000)
	var buf bytes.Buffer
	if err := b.EncodeChunked(&buf, 64); err != nil {
		t.Fatal(err)
	}
	cr, err := NewChunkReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cr.ChunkRecords() != 64 {
		t.Fatalf("chunk target %d, want 64", cr.ChunkRecords())
	}
	recs, fns, chunks := flatten(t, cr)
	if want := (b.Len() + 63) / 64; chunks != want {
		t.Fatalf("read %d chunks, want %d", chunks, want)
	}
	compareReplay(t, b, recs, fns)
	// A drained reader keeps returning io.EOF.
	if _, err := cr.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v", err)
	}
}

func TestDecodeReadsChunked(t *testing.T) {
	b := recordMany(t, 500)
	var buf bytes.Buffer
	if err := b.EncodeChunked(&buf, 100); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	var fns []string
	got.Replay(func(r Record, fn string) { recs = append(recs, r); fns = append(fns, fn) })
	compareReplay(t, b, recs, fns)
}

func TestChunkReaderReadsV1(t *testing.T) {
	b := recordSome(t)
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	cr, err := NewChunkReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, fns, chunks := flatten(t, cr)
	if chunks != 1 {
		t.Fatalf("small v1 trace synthesized %d chunks, want 1", chunks)
	}
	compareReplay(t, b, recs, fns)
}

func TestWriterBoundedBuffer(t *testing.T) {
	w := NewWriter(io.Discard, WriterOptions{ChunkRecords: 32})
	for i := 0; i < 32*16; i++ {
		if err := w.Append(Record{Addr: uint64(i)}, "fn"); err != nil {
			t.Fatal(err)
		}
		// The in-memory record buffer never exceeds one chunk: chunks
		// are flushed as they fill, keeping recording RSS flat.
		if len(w.recs) > 32 || cap(w.recs) > 32 {
			t.Fatalf("buffered %d records (cap %d) with chunk target 32", len(w.recs), cap(w.recs))
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 32*16 || w.Chunks() != 16 {
		t.Fatalf("wrote %d records in %d chunks", w.Records(), w.Chunks())
	}
}

func TestWriterEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cr, err := NewChunkReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Next(); err != io.EOF {
		t.Fatalf("empty trace Next: %v", err)
	}
	if tb, err := Decode(bytes.NewReader(buf.Bytes())); err != nil || tb.Len() != 0 {
		t.Fatalf("Decode empty v2: %v, %d records", err, tb.Len())
	}
}

func TestWriterFlushWithoutClose(t *testing.T) {
	// A writer that never reached Close (crashed recorder) leaves a
	// footer-less file whose flushed chunks are still readable.
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{ChunkRecords: 8})
	for i := 0; i < 20; i++ {
		if err := w.Append(Record{Addr: uint64(i)}, "fn"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cr, err := NewChunkReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, chunks := flatten(t, cr)
	if len(recs) != 20 || chunks != 3 {
		t.Fatalf("read %d records in %d chunks, want 20 in 3", len(recs), chunks)
	}
}

func TestStandaloneChunkRoundtrip(t *testing.T) {
	b := recordMany(t, 200)
	var buf bytes.Buffer
	if err := b.EncodeChunked(&buf, 64); err != nil {
		t.Fatal(err)
	}
	cr, err := NewChunkReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for {
		c, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		var one bytes.Buffer
		if err := EncodeChunk(&one, c); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeChunk(bytes.NewReader(one.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != c.Index || len(got.Records) != len(c.Records) ||
			len(got.Funcs) != len(c.Funcs) || got.CoreMask != c.CoreMask || got.MaxCore != c.MaxCore {
			t.Fatalf("standalone chunk mismatch: %+v vs %+v", got.Index, c.Index)
		}
		for i := range c.Records {
			if got.Records[i] != c.Records[i] {
				t.Fatalf("record %d mismatch", i)
			}
		}
	}
}

func TestReadIndex(t *testing.T) {
	b := recordMany(t, 400)
	var buf bytes.Buffer
	if err := b.EncodeChunked(&buf, 64); err != nil {
		t.Fatal(err)
	}
	idx, err := ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if idx.ChunkRecords != 64 {
		t.Fatalf("index chunk target %d", idx.ChunkRecords)
	}
	if idx.TotalRecords != uint64(b.Len()) {
		t.Fatalf("index claims %d records, want %d", idx.TotalRecords, b.Len())
	}
	var sum uint64
	var prev uint64
	for i, ci := range idx.Chunks {
		sum += uint64(ci.Records)
		if ci.Offset <= prev {
			t.Fatalf("chunk %d offset %d not past %d", i, ci.Offset, prev)
		}
		prev = ci.Offset
	}
	if sum != idx.TotalRecords {
		t.Fatalf("index chunk records sum to %d, want %d", sum, idx.TotalRecords)
	}
	// The v1 format has no footer.
	var v1 bytes.Buffer
	if err := b.Encode(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bytes.NewReader(v1.Bytes())); err == nil {
		t.Fatal("ReadIndex accepted a v1 trace")
	}
}

func TestDecodeRejectsCorruptFnID(t *testing.T) {
	// v1: patch the single record's fn id past the table.
	b := NewBuffer()
	b.records = append(b.records, Record{Fn: b.intern("f"), Addr: 64})
	var v1 bytes.Buffer
	if err := b.Encode(&v1); err != nil {
		t.Fatal(err)
	}
	raw := v1.Bytes()
	// Record starts after 12B header + (4+1)B name entry; fn id at +19.
	raw[12+5+19] = 0xff
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("v1 decode accepted out-of-table fn id")
	}

	// v2: same corruption inside the chunk payload.
	var v2 bytes.Buffer
	if err := b.EncodeChunked(&v2, 16); err != nil {
		t.Fatal(err)
	}
	raw = v2.Bytes()
	raw[fileHeaderSize+chunkHeaderSize+5+19] = 0xff
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("v2 decode accepted out-of-table fn id")
	}
}

func TestDecodeRejectsOversizedFnTable(t *testing.T) {
	b := recordSome(t)
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4], raw[5], raw[6], raw[7] = 0xff, 0xff, 0xff, 0xff
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("decode accepted an oversized function table")
	}
	if _, err := NewChunkReader(bytes.NewReader(raw)); err == nil {
		t.Fatal("chunk reader accepted an oversized function table")
	}
}

func TestChunkReaderTruncated(t *testing.T) {
	b := recordMany(t, 300)
	var buf bytes.Buffer
	if err := b.EncodeChunked(&buf, 50); err != nil {
		t.Fatal(err)
	}
	// Cut inside a chunk payload: the reader must error, not succeed.
	trunc := buf.Bytes()[:fileHeaderSize+chunkHeaderSize+10]
	cr, err := NewChunkReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated chunk read: %v", err)
	}
}
