package trace

import (
	"bytes"
	"strings"
	"testing"

	"prestores/internal/sim"
)

func recordSome(t *testing.T) *Buffer {
	t.Helper()
	b := NewBuffer()
	m := sim.MachineA()
	m.SetHook(b.Hook())
	c := m.Core(0)
	c.PushFunc("alpha")
	c.Write(1<<40, []byte{1, 2, 3})
	var buf [3]byte
	c.Read(1<<40, buf[:])
	c.PopFunc()
	c.PushFunc("beta")
	c.Fence()
	c.PopFunc()
	m.SetHook(nil)
	return b
}

func TestRecording(t *testing.T) {
	b := recordSome(t)
	if b.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	var kinds []sim.OpKind
	var fns []string
	b.Replay(func(r Record, fn string) {
		kinds = append(kinds, r.Kind)
		fns = append(fns, fn)
	})
	// Expect func-enter, store, load, func-exit, func-enter, fence, func-exit.
	wantKinds := []sim.OpKind{
		sim.OpFuncEnter, sim.OpStore, sim.OpLoad, sim.OpFuncExit,
		sim.OpFuncEnter, sim.OpFence, sim.OpFuncExit,
	}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("recorded %v", kinds)
	}
	for i := range wantKinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("record %d = %v, want %v", i, kinds[i], wantKinds[i])
		}
	}
	if fns[1] != "alpha" || fns[5] != "beta" {
		t.Fatalf("function attribution: %v", fns)
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer()
	b.Filter = func(fn string) bool { return fn == "keep" }
	m := sim.MachineA()
	m.SetHook(b.Hook())
	c := m.Core(0)
	c.PushFunc("keep")
	c.Write(1<<40, []byte{1})
	c.PopFunc()
	c.PushFunc("drop")
	c.Write(1<<40+64, []byte{1})
	c.PopFunc()
	m.SetHook(nil)
	count := 0
	b.Replay(func(r Record, fn string) {
		if r.Kind == sim.OpStore {
			count++
			if fn != "keep" {
				t.Fatalf("filtered record from %q", fn)
			}
		}
	})
	if count != 1 {
		t.Fatalf("kept %d stores, want 1", count)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	b := recordSome(t)
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != b.Len() {
		t.Fatalf("decoded %d records, want %d", got.Len(), b.Len())
	}
	var orig, decoded []Record
	var origFns, decodedFns []string
	b.Replay(func(r Record, fn string) { orig = append(orig, r); origFns = append(origFns, fn) })
	got.Replay(func(r Record, fn string) { decoded = append(decoded, r); decodedFns = append(decodedFns, fn) })
	for i := range orig {
		if orig[i] != decoded[i] || origFns[i] != decodedFns[i] {
			t.Fatalf("record %d mismatch: %+v (%q) vs %+v (%q)",
				i, orig[i], origFns[i], decoded[i], decodedFns[i])
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := Decode(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	b := recordSome(t)
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestReset(t *testing.T) {
	b := recordSome(t)
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset kept records")
	}
	// Interning table survives.
	if b.FuncName(0) == "?" {
		t.Fatal("Reset dropped the function table")
	}
}

func TestFuncNameUnknown(t *testing.T) {
	b := NewBuffer()
	if b.FuncName(42) != "?" {
		t.Fatal("unknown id did not map to ?")
	}
}

func TestTimeByFunction(t *testing.T) {
	b := NewBuffer()
	m := sim.MachineA()
	m.SetHook(b.Hook())
	c := m.Core(0)
	c.PushFunc("writer")
	for i := uint64(0); i < 200; i++ {
		c.Write(1<<40+i*4096, make([]byte, 256))
	}
	c.PopFunc()
	c.PushFunc("thinker")
	c.Compute(50)
	c.PopFunc()
	m.SetHook(nil)
	rep := b.TimeByFunction()
	if len(rep) < 2 {
		t.Fatalf("report has %d functions", len(rep))
	}
	if rep[0].Fn != "writer" {
		t.Fatalf("top function %q, want writer", rep[0].Fn)
	}
	if rep[0].StoreCyc == 0 || rep[0].TimeShare <= 0 {
		t.Fatalf("writer attribution: %+v", rep[0])
	}
	var total float64
	for _, ft := range rep {
		total += ft.TimeShare
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("time shares sum to %v", total)
	}
}
