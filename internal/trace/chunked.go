// Chunked (v2) trace format: the streaming counterpart to the v1
// whole-buffer codec. A v2 file is a sequence of fixed-target record
// chunks, each carrying its own header (record count, core set, delta
// of newly interned function names) so a reader never needs more than
// one chunk in memory, followed by a trailing index that lets seekable
// consumers jump straight to a chunk. The record wire format is shared
// with v1.
//
// Layout (all little-endian):
//
//	file header   magic2 u32 | version u32 | chunkRecords u32 | reserved u32
//	chunk         chunkMagic u32 | index u32 | nRecs u32 | fnBase u32 |
//	              nNewFns u32 | maxCore u32 | coreMask u64
//	              nNewFns × (len u32 | name bytes)
//	              nRecs × record (RecordSize bytes)
//	footer        indexMagic u32 | nChunks u32 | totalRecords u64 |
//	              nChunks × (offset u64 | records u32 | funcs u32 | coreMask u64) |
//	              indexOffset u64 | magic2 u32
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"prestores/internal/sim"
)

const (
	magic2     = 0x32545350 // "PST2"
	chunkMagic = 0x4b4e4843 // "CHNK"
	indexMagic = 0x58444e49 // "INDX"

	formatVersion2 = 2

	fileHeaderSize  = 16
	chunkHeaderSize = 32
	indexEntrySize  = 24
	trailerSize     = 12
)

// DefaultChunkRecords is the records-per-chunk target used when a
// Writer or a v1 synthesizing ChunkReader is not told otherwise.
const DefaultChunkRecords = 1 << 16

// maxChunkRecords bounds a single chunk on the decode side: corrupt
// counts must not force a multi-gigabyte allocation.
const maxChunkRecords = 1 << 22

// Chunk is one decoded slice of a trace. Records index into Funcs,
// the cumulative interned-name table as of this chunk — a chunk is
// therefore self-contained and can be shipped to a remote analyzer
// with EncodeChunk.
type Chunk struct {
	Index    int      // position in the trace, 0-based
	Records  []Record
	Funcs    []string // cumulative function table; Record.Fn indexes it
	CoreMask uint64   // bit min(core,63) set for every core seen
	MaxCore  int      // highest core id seen in this chunk
}

// FuncName resolves an interned function id against the chunk's table.
func (c *Chunk) FuncName(id uint32) string {
	if int(id) < len(c.Funcs) {
		return c.Funcs[id]
	}
	return "?"
}

// ChunkInfo is one trailing-index entry.
type ChunkInfo struct {
	Offset   uint64 // file offset of the chunk header
	Records  uint32
	Funcs    uint32 // cumulative interned names after this chunk
	CoreMask uint64
}

// Index is the decoded trailing index of a v2 file.
type Index struct {
	ChunkRecords int
	TotalRecords uint64
	Chunks       []ChunkInfo
}

// WriterOptions configures a streaming trace Writer.
type WriterOptions struct {
	// ChunkRecords is the per-chunk record target; chunks are flushed
	// to the underlying writer as they fill. 0 means
	// DefaultChunkRecords.
	ChunkRecords int
}

// Writer streams trace records to an io.Writer in the chunked v2
// format with bounded memory: at most one chunk of records is ever
// buffered, so recording RSS stays flat in the trace length.
type Writer struct {
	bw      *bufio.Writer
	target  int
	started bool
	closed  bool
	err     error

	fnIDs      map[string]uint32
	fnNames    []string
	flushedFns int // names already persisted by earlier chunks

	recs     []Record
	coreMask uint64
	maxCore  uint32

	index []ChunkInfo
	total uint64
	off   uint64 // bytes written so far

	// Filter, when non-nil, drops hooked events whose function name
	// does not satisfy it (mirrors Buffer.Filter).
	Filter func(fn string) bool
}

// NewWriter returns a streaming v2 writer over w.
func NewWriter(w io.Writer, opts WriterOptions) *Writer {
	target := opts.ChunkRecords
	if target <= 0 {
		target = DefaultChunkRecords
	}
	if target > maxChunkRecords {
		target = maxChunkRecords
	}
	return &Writer{
		bw:     bufio.NewWriter(w),
		target: target,
		fnIDs:  make(map[string]uint32),
		recs:   make([]Record, 0, target),
	}
}

// Hook returns a sim.Hook that appends every operation to the writer.
// I/O errors stick and surface from Flush or Close.
func (w *Writer) Hook() sim.Hook {
	return func(ev sim.Event, _ *sim.Core) {
		if w.Filter != nil && !w.Filter(ev.Fn) {
			return
		}
		w.Append(Record{
			Core:  uint16(ev.Core),
			Kind:  ev.Kind,
			Addr:  ev.Addr,
			Size:  ev.Size,
			Instr: ev.Instr,
			Cost:  ev.Cost,
		}, ev.Fn)
	}
}

// Append adds one record; fn is the record's function name and
// replaces any Fn id already in r. The signature mirrors the
// Buffer.Replay callback so a buffer re-encodes with
//
//	tb.Replay(func(r Record, fn string) { w.Append(r, fn) })
func (w *Writer) Append(r Record, fn string) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("trace: append to closed writer")
	}
	id, ok := w.fnIDs[fn]
	if !ok {
		if len(w.fnNames) >= MaxFuncs {
			w.err = fmt.Errorf("trace: function table overflow (limit %d)", MaxFuncs)
			return w.err
		}
		id = uint32(len(w.fnNames))
		w.fnIDs[fn] = id
		w.fnNames = append(w.fnNames, fn)
	}
	r.Fn = id
	w.recs = append(w.recs, r)
	w.coreMask |= 1 << min(int(r.Core), 63)
	if uint32(r.Core) > w.maxCore {
		w.maxCore = uint32(r.Core)
	}
	if len(w.recs) >= w.target {
		return w.flushChunk()
	}
	return nil
}

// Err reports the first error the writer hit — useful while feeding it
// through Hook, which has no error return.
func (w *Writer) Err() error { return w.err }

// Records returns the number of records accepted so far.
func (w *Writer) Records() uint64 { return w.total + uint64(len(w.recs)) }

// Chunks returns the number of chunks flushed so far.
func (w *Writer) Chunks() int { return len(w.index) }

func (w *Writer) start() error {
	if w.started {
		return nil
	}
	w.started = true
	var hdr [fileHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic2)
	binary.LittleEndian.PutUint32(hdr[4:], formatVersion2)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.target))
	return w.write(hdr[:])
}

func (w *Writer) write(b []byte) error {
	n, err := w.bw.Write(b)
	w.off += uint64(n)
	if err != nil {
		w.err = err
	}
	return err
}

func (w *Writer) flushChunk() error {
	if err := w.start(); err != nil {
		return err
	}
	if len(w.recs) == 0 {
		return nil
	}
	info := ChunkInfo{
		Offset:   w.off,
		Records:  uint32(len(w.recs)),
		Funcs:    uint32(len(w.fnNames)),
		CoreMask: w.coreMask,
	}
	newFns := w.fnNames[w.flushedFns:]
	var hdr [chunkHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], chunkMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(w.index)))
	binary.LittleEndian.PutUint32(hdr[8:], info.Records)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(w.flushedFns))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(newFns)))
	binary.LittleEndian.PutUint32(hdr[20:], w.maxCore)
	binary.LittleEndian.PutUint64(hdr[24:], w.coreMask)
	if err := w.write(hdr[:]); err != nil {
		return err
	}
	var lenb [4]byte
	for _, name := range newFns {
		binary.LittleEndian.PutUint32(lenb[:], uint32(len(name)))
		if err := w.write(lenb[:]); err != nil {
			return err
		}
		if err := w.write([]byte(name)); err != nil {
			return err
		}
	}
	var rec [RecordSize]byte
	for _, r := range w.recs {
		PutRecord(rec[:], r)
		if err := w.write(rec[:]); err != nil {
			return err
		}
	}
	w.flushedFns = len(w.fnNames)
	w.index = append(w.index, info)
	w.total += uint64(info.Records)
	w.recs = w.recs[:0]
	w.coreMask = 0
	w.maxCore = 0
	return nil
}

// Flush writes any partially filled chunk and flushes buffered bytes.
// The file is still missing its footer until Close.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.flushChunk(); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
	}
	return w.err
}

// Close flushes the final chunk, writes the trailing index and footer,
// and flushes the underlying writer. The Writer is unusable afterward.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if err := w.start(); err != nil {
		return err
	}
	if err := w.flushChunk(); err != nil {
		return err
	}
	indexOff := w.off
	var b [16]byte
	binary.LittleEndian.PutUint32(b[0:], indexMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(len(w.index)))
	binary.LittleEndian.PutUint64(b[8:], w.total)
	if err := w.write(b[:]); err != nil {
		return err
	}
	var ent [indexEntrySize]byte
	for _, info := range w.index {
		binary.LittleEndian.PutUint64(ent[0:], info.Offset)
		binary.LittleEndian.PutUint32(ent[8:], info.Records)
		binary.LittleEndian.PutUint32(ent[12:], info.Funcs)
		binary.LittleEndian.PutUint64(ent[16:], info.CoreMask)
		if err := w.write(ent[:]); err != nil {
			return err
		}
	}
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:], indexOff)
	binary.LittleEndian.PutUint32(tr[8:], magic2)
	if err := w.write(tr[:]); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
	}
	return w.err
}

// EncodeChunked writes the buffer in the chunked v2 format.
func (b *Buffer) EncodeChunked(w io.Writer, chunkRecords int) error {
	cw := NewWriter(w, WriterOptions{ChunkRecords: chunkRecords})
	for _, r := range b.records {
		if err := cw.Append(r, b.FuncName(r.Fn)); err != nil {
			return err
		}
	}
	return cw.Close()
}

// ChunkReader streams chunks out of a trace with bounded memory. It
// reads both formats: v2 files yield their native chunks, v1 files are
// synthesized into chunks of DefaultChunkRecords so every consumer of
// big traces has one code path.
type ChunkReader struct {
	br      *bufio.Reader
	v1      bool
	target  int
	fnNames []string
	next    int
	nRead   uint64 // records delivered so far
	remain  uint32 // v1: records left
	done    bool
	err     error
}

// NewChunkReader sniffs the format of r and returns a chunk iterator.
func NewChunkReader(r io.Reader) (*ChunkReader, error) {
	br := bufio.NewReader(r)
	m, err := peekMagic(br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	cr := &ChunkReader{br: br}
	switch m {
	case magic:
		cr.v1 = true
		cr.target = DefaultChunkRecords
		var hdr [12]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, err
		}
		nFns := binary.LittleEndian.Uint32(hdr[4:])
		cr.remain = binary.LittleEndian.Uint32(hdr[8:])
		if nFns > MaxFuncs {
			return nil, fmt.Errorf("trace: function table size %d exceeds limit %d", nFns, MaxFuncs)
		}
		cr.fnNames = make([]string, 0, nFns)
		for i := uint32(0); i < nFns; i++ {
			name, err := readName(br)
			if err != nil {
				return nil, err
			}
			cr.fnNames = append(cr.fnNames, name)
		}
	case magic2:
		var hdr [fileHeaderSize]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, err
		}
		if v := binary.LittleEndian.Uint32(hdr[4:]); v != formatVersion2 {
			return nil, fmt.Errorf("trace: unsupported format version %d", v)
		}
		cr.target = int(binary.LittleEndian.Uint32(hdr[8:]))
		if cr.target <= 0 || cr.target > maxChunkRecords {
			return nil, fmt.Errorf("trace: chunk record target %d out of range", cr.target)
		}
	default:
		return nil, fmt.Errorf("trace: bad magic")
	}
	return cr, nil
}

// ChunkRecords returns the file's per-chunk record target.
func (cr *ChunkReader) ChunkRecords() int { return cr.target }

// Next returns the next chunk, or io.EOF after the last one. The
// returned chunk does not alias reader state that later calls mutate.
func (cr *ChunkReader) Next() (*Chunk, error) {
	if cr.err != nil {
		return nil, cr.err
	}
	if cr.done {
		return nil, io.EOF
	}
	c, err := cr.read()
	if err != nil {
		if err == io.EOF {
			cr.done = true
		} else {
			cr.err = err
		}
		return nil, err
	}
	cr.next++
	cr.nRead += uint64(len(c.Records))
	return c, nil
}

func (cr *ChunkReader) read() (*Chunk, error) {
	if cr.v1 {
		return cr.readV1()
	}
	m, err := peekMagic(cr.br)
	if err != nil {
		if err == io.EOF {
			// A writer that crashed before Close leaves no footer;
			// everything up to here is still a valid prefix.
			return nil, io.EOF
		}
		return nil, err
	}
	if m == indexMagic {
		return nil, cr.checkFooter()
	}
	if m != chunkMagic {
		return nil, fmt.Errorf("trace: bad chunk magic")
	}
	var hdr [chunkHeaderSize]byte
	if _, err := io.ReadFull(cr.br, hdr[:]); err != nil {
		return nil, unexpectedEOF(err)
	}
	idx := binary.LittleEndian.Uint32(hdr[4:])
	nRecs := binary.LittleEndian.Uint32(hdr[8:])
	fnBase := binary.LittleEndian.Uint32(hdr[12:])
	nNewFns := binary.LittleEndian.Uint32(hdr[16:])
	maxCore := binary.LittleEndian.Uint32(hdr[20:])
	coreMask := binary.LittleEndian.Uint64(hdr[24:])
	if int(idx) != cr.next {
		return nil, fmt.Errorf("trace: chunk index %d, want %d", idx, cr.next)
	}
	if int(fnBase) != len(cr.fnNames) {
		return nil, fmt.Errorf("trace: chunk function base %d, want %d", fnBase, len(cr.fnNames))
	}
	if nRecs > maxChunkRecords {
		return nil, fmt.Errorf("trace: chunk record count %d exceeds limit %d", nRecs, maxChunkRecords)
	}
	if uint64(fnBase)+uint64(nNewFns) > MaxFuncs {
		return nil, fmt.Errorf("trace: function table size %d exceeds limit %d", uint64(fnBase)+uint64(nNewFns), MaxFuncs)
	}
	for i := uint32(0); i < nNewFns; i++ {
		name, err := readName(cr.br)
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		cr.fnNames = append(cr.fnNames, name)
	}
	recs, err := cr.readRecords(nRecs)
	if err != nil {
		return nil, err
	}
	return &Chunk{
		Index:    int(idx),
		Records:  recs,
		Funcs:    cr.fnNames[:len(cr.fnNames):len(cr.fnNames)],
		CoreMask: coreMask,
		MaxCore:  int(maxCore),
	}, nil
}

func (cr *ChunkReader) readV1() (*Chunk, error) {
	if cr.remain == 0 {
		return nil, io.EOF
	}
	n := uint32(cr.target)
	if cr.remain < n {
		n = cr.remain
	}
	recs, err := cr.readRecords(n)
	if err != nil {
		return nil, err
	}
	cr.remain -= n
	c := &Chunk{
		Index:   cr.next,
		Records: recs,
		Funcs:   cr.fnNames[:len(cr.fnNames):len(cr.fnNames)],
	}
	for _, r := range recs {
		c.CoreMask |= 1 << min(int(r.Core), 63)
		if int(r.Core) > c.MaxCore {
			c.MaxCore = int(r.Core)
		}
	}
	return c, nil
}

func (cr *ChunkReader) readRecords(n uint32) ([]Record, error) {
	recs := make([]Record, 0, n)
	var rec [RecordSize]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(cr.br, rec[:]); err != nil {
			return nil, unexpectedEOF(err)
		}
		r := GetRecord(rec[:])
		if int(r.Fn) >= len(cr.fnNames) {
			return nil, fmt.Errorf("trace: record references function id %d outside table of %d", r.Fn, len(cr.fnNames))
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// checkFooter consumes the index header, cross-checks it against what
// the reader actually saw, and ends the stream.
func (cr *ChunkReader) checkFooter() error {
	var b [16]byte
	if _, err := io.ReadFull(cr.br, b[:]); err != nil {
		return unexpectedEOF(err)
	}
	nChunks := binary.LittleEndian.Uint32(b[4:])
	total := binary.LittleEndian.Uint64(b[8:])
	if int(nChunks) != cr.next {
		return fmt.Errorf("trace: footer claims %d chunks, read %d", nChunks, cr.next)
	}
	if total != cr.nRead {
		return fmt.Errorf("trace: footer claims %d records, read %d", total, cr.nRead)
	}
	return io.EOF
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// decodeV2 assembles a chunked stream back into one Buffer.
func decodeV2(br *bufio.Reader) (*Buffer, error) {
	cr := &ChunkReader{br: br}
	var hdr [fileHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != formatVersion2 {
		return nil, fmt.Errorf("trace: unsupported format version %d", v)
	}
	cr.target = int(binary.LittleEndian.Uint32(hdr[8:]))
	if cr.target <= 0 || cr.target > maxChunkRecords {
		return nil, fmt.Errorf("trace: chunk record target %d out of range", cr.target)
	}
	b := NewBuffer()
	for {
		c, err := cr.Next()
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return nil, err
		}
		// Chunk ids are assigned in interning order, so re-interning
		// the cumulative table reproduces them exactly.
		for _, name := range c.Funcs[len(b.fnNames):] {
			b.intern(name)
		}
		b.records = append(b.records, c.Records...)
	}
}

// EncodeChunk writes one chunk standalone: full function table, no
// delta — the unit shipped to a remote chunk analyzer.
func EncodeChunk(w io.Writer, c *Chunk) error {
	bw := bufio.NewWriter(w)
	var hdr [chunkHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], chunkMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(c.Index))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(c.Records)))
	binary.LittleEndian.PutUint32(hdr[12:], 0)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(c.Funcs)))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(c.MaxCore))
	binary.LittleEndian.PutUint64(hdr[24:], c.CoreMask)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, name := range c.Funcs {
		if err := writeName(bw, name); err != nil {
			return err
		}
	}
	var rec [RecordSize]byte
	for _, r := range c.Records {
		PutRecord(rec[:], r)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeChunk reads one standalone chunk written by EncodeChunk.
func DecodeChunk(r io.Reader) (*Chunk, error) {
	br := bufio.NewReader(r)
	var hdr [chunkHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != chunkMagic {
		return nil, fmt.Errorf("trace: bad chunk magic")
	}
	idx := binary.LittleEndian.Uint32(hdr[4:])
	nRecs := binary.LittleEndian.Uint32(hdr[8:])
	fnBase := binary.LittleEndian.Uint32(hdr[12:])
	nFns := binary.LittleEndian.Uint32(hdr[16:])
	if fnBase != 0 {
		return nil, fmt.Errorf("trace: standalone chunk has function base %d, want 0", fnBase)
	}
	if nFns > MaxFuncs {
		return nil, fmt.Errorf("trace: function table size %d exceeds limit %d", nFns, MaxFuncs)
	}
	if nRecs > maxChunkRecords {
		return nil, fmt.Errorf("trace: chunk record count %d exceeds limit %d", nRecs, maxChunkRecords)
	}
	c := &Chunk{
		Index:    int(idx),
		Funcs:    make([]string, 0, min(int(nFns), 1<<12)),
		CoreMask: binary.LittleEndian.Uint64(hdr[24:]),
		MaxCore:  int(binary.LittleEndian.Uint32(hdr[20:])),
	}
	for i := uint32(0); i < nFns; i++ {
		name, err := readName(br)
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		c.Funcs = append(c.Funcs, name)
	}
	c.Records = make([]Record, 0, min(int(nRecs), 1<<16))
	var rec [RecordSize]byte
	for i := uint32(0); i < nRecs; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, unexpectedEOF(err)
		}
		r := GetRecord(rec[:])
		if int(r.Fn) >= len(c.Funcs) {
			return nil, fmt.Errorf("trace: record references function id %d outside table of %d", r.Fn, len(c.Funcs))
		}
		c.Records = append(c.Records, r)
	}
	return c, nil
}

// ReadIndex seeks to the trailing index of a v2 file and decodes it
// without touching the chunk payloads.
func ReadIndex(rs io.ReadSeeker) (*Index, error) {
	end, err := rs.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	if end < fileHeaderSize+trailerSize {
		return nil, fmt.Errorf("trace: file too small for a v2 footer")
	}
	if _, err := rs.Seek(end-trailerSize, io.SeekStart); err != nil {
		return nil, err
	}
	var tr [trailerSize]byte
	if _, err := io.ReadFull(rs, tr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(tr[8:]) != magic2 {
		return nil, fmt.Errorf("trace: bad footer magic")
	}
	indexOff := binary.LittleEndian.Uint64(tr[0:])
	if indexOff < fileHeaderSize || indexOff > uint64(end-trailerSize) {
		return nil, fmt.Errorf("trace: index offset %d out of range", indexOff)
	}
	if _, err := rs.Seek(int64(indexOff), io.SeekStart); err != nil {
		return nil, err
	}
	br := bufio.NewReader(io.LimitReader(rs, end-trailerSize-int64(indexOff)))
	var b [16]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(b[0:]) != indexMagic {
		return nil, fmt.Errorf("trace: bad index magic")
	}
	nChunks := binary.LittleEndian.Uint32(b[4:])
	idx := &Index{TotalRecords: binary.LittleEndian.Uint64(b[8:])}
	if uint64(nChunks)*indexEntrySize != uint64(end-trailerSize)-indexOff-16 {
		return nil, fmt.Errorf("trace: index size mismatch")
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	var hdr [fileHeaderSize]byte
	if _, err := io.ReadFull(rs, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic2 {
		return nil, fmt.Errorf("trace: bad magic")
	}
	idx.ChunkRecords = int(binary.LittleEndian.Uint32(hdr[8:]))
	if _, err := rs.Seek(int64(indexOff)+16, io.SeekStart); err != nil {
		return nil, err
	}
	br = bufio.NewReader(io.LimitReader(rs, int64(nChunks)*indexEntrySize))
	var ent [indexEntrySize]byte
	idx.Chunks = make([]ChunkInfo, 0, min(int(nChunks), 1<<16))
	for i := uint32(0); i < nChunks; i++ {
		if _, err := io.ReadFull(br, ent[:]); err != nil {
			return nil, err
		}
		idx.Chunks = append(idx.Chunks, ChunkInfo{
			Offset:   binary.LittleEndian.Uint64(ent[0:]),
			Records:  binary.LittleEndian.Uint32(ent[8:]),
			Funcs:    binary.LittleEndian.Uint32(ent[12:]),
			CoreMask: binary.LittleEndian.Uint64(ent[16:]),
		})
	}
	return idx, nil
}
