// Package trace records the simulator's operation stream — the
// equivalent of the Intel PIN instrumentation DirtBuster uses in its
// second step — and can persist it for offline analysis.
//
// A Buffer subscribes to a machine's hook and stores one compact record
// per operation, interning function names. Traces encode to a simple
// length-prefixed binary format (encoding/binary) so an application can
// be traced once and analyzed many times, mirroring the paper's
// "intended usage ... executed offline, as an optimization pass".
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"prestores/internal/sim"
)

// Record is one traced operation.
type Record struct {
	Core  uint16
	Kind  sim.OpKind
	Addr  uint64
	Size  uint64
	Fn    uint32 // interned function id; see Buffer.FuncName
	Instr uint64 // issuing core's instruction counter
	Cost  uint64 // cycles the op advanced the issuing core
}

// Buffer accumulates trace records in memory.
type Buffer struct {
	records []Record
	fnIDs   map[string]uint32
	fnNames []string
	// Filter, when non-nil, drops records whose function name does not
	// satisfy it (DirtBuster only instruments the write-intensive
	// functions found by sampling).
	Filter func(fn string) bool
}

// NewBuffer returns an empty trace buffer.
func NewBuffer() *Buffer {
	return &Buffer{fnIDs: make(map[string]uint32)}
}

// Hook returns a sim.Hook that appends every operation to the buffer.
func (b *Buffer) Hook() sim.Hook {
	return func(ev sim.Event, _ *sim.Core) {
		if b.Filter != nil && !b.Filter(ev.Fn) {
			return
		}
		b.records = append(b.records, Record{
			Core:  uint16(ev.Core),
			Kind:  ev.Kind,
			Addr:  ev.Addr,
			Size:  ev.Size,
			Fn:    b.intern(ev.Fn),
			Instr: ev.Instr,
			Cost:  ev.Cost,
		})
	}
}

func (b *Buffer) intern(fn string) uint32 {
	if id, ok := b.fnIDs[fn]; ok {
		return id
	}
	id := uint32(len(b.fnNames))
	b.fnIDs[fn] = id
	b.fnNames = append(b.fnNames, fn)
	return id
}

// Len returns the number of records.
func (b *Buffer) Len() int { return len(b.records) }

// FuncName resolves an interned function id.
func (b *Buffer) FuncName(id uint32) string {
	if int(id) < len(b.fnNames) {
		return b.fnNames[id]
	}
	return "?"
}

// Replay calls fn for every record in order.
func (b *Buffer) Replay(fn func(r Record, fnName string)) {
	for _, r := range b.records {
		fn(r, b.FuncName(r.Fn))
	}
}

// Reset drops all records but keeps the interning table.
func (b *Buffer) Reset() { b.records = b.records[:0] }

const magic = 0x50535452 // "PSTR"

// MaxFuncs bounds the interned function table. Real traces intern a
// handful of names; a corrupt header must not make a decoder allocate
// or index an unbounded table.
const MaxFuncs = 1 << 20

// maxNameLen bounds a single interned function name on the wire.
const maxNameLen = 1 << 16

// RecordSize is the fixed on-wire size of one encoded Record, shared
// by the v1 format, the v2 chunk format and the Partial wire codec.
const RecordSize = 39

// PutRecord encodes r into b, which must be at least RecordSize bytes.
func PutRecord(b []byte, r Record) {
	binary.LittleEndian.PutUint16(b[0:], r.Core)
	b[2] = byte(r.Kind)
	binary.LittleEndian.PutUint64(b[3:], r.Addr)
	binary.LittleEndian.PutUint64(b[11:], r.Size)
	binary.LittleEndian.PutUint32(b[19:], r.Fn)
	binary.LittleEndian.PutUint64(b[23:], r.Instr)
	binary.LittleEndian.PutUint64(b[31:], r.Cost)
}

// GetRecord decodes a record from b, which must be at least RecordSize
// bytes.
func GetRecord(b []byte) Record {
	return Record{
		Core:  binary.LittleEndian.Uint16(b[0:]),
		Kind:  sim.OpKind(b[2]),
		Addr:  binary.LittleEndian.Uint64(b[3:]),
		Size:  binary.LittleEndian.Uint64(b[11:]),
		Fn:    binary.LittleEndian.Uint32(b[19:]),
		Instr: binary.LittleEndian.Uint64(b[23:]),
		Cost:  binary.LittleEndian.Uint64(b[31:]),
	}
}

// Encode writes the trace in the v1 binary form.
func (b *Buffer) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(b.fnNames)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(b.records)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, name := range b.fnNames {
		if err := writeName(bw, name); err != nil {
			return err
		}
	}
	var rec [RecordSize]byte
	for _, r := range b.records {
		PutRecord(rec[:], r)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeName(bw *bufio.Writer, name string) error {
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
		return err
	}
	_, err := bw.WriteString(name)
	return err
}

func readName(br *bufio.Reader) (string, error) {
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", fmt.Errorf("trace: function name length %d too large", n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(br, name); err != nil {
		return "", err
	}
	return string(name), nil
}

// Decode reads a trace written by Encode (v1) or by a Writer (v2
// chunked): the chunked form is assembled back into one in-memory
// Buffer. Decoding fails on corrupt input, including records whose
// function id falls outside the interned table.
func Decode(r io.Reader) (*Buffer, error) {
	br := bufio.NewReader(r)
	m, err := peekMagic(br)
	if err != nil {
		return nil, err
	}
	if m == magic2 {
		return decodeV2(br)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	nFns := binary.LittleEndian.Uint32(hdr[4:])
	nRecs := binary.LittleEndian.Uint32(hdr[8:])
	if nFns > MaxFuncs {
		return nil, fmt.Errorf("trace: function table size %d exceeds limit %d", nFns, MaxFuncs)
	}
	b := NewBuffer()
	for i := uint32(0); i < nFns; i++ {
		name, err := readName(br)
		if err != nil {
			return nil, err
		}
		b.intern(name)
	}
	// Cap the preallocation: the header is untrusted input, and a
	// corrupt count must not force a huge allocation before the reads
	// fail naturally.
	prealloc := nRecs
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	b.records = make([]Record, 0, prealloc)
	var rec [RecordSize]byte
	for i := uint32(0); i < nRecs; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, err
		}
		rr := GetRecord(rec[:])
		if rr.Fn >= nFns {
			return nil, fmt.Errorf("trace: record %d references function id %d outside table of %d", i, rr.Fn, nFns)
		}
		b.records = append(b.records, rr)
	}
	return b, nil
}

func peekMagic(br *bufio.Reader) (uint32, error) {
	p, err := br.Peek(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(p), nil
}

// FnTime is the per-function time attribution of a trace.
type FnTime struct {
	Fn        string
	Cycles    uint64 // total cycles attributed to the function's ops
	StoreCyc  uint64 // cycles in stores/NT stores/atomics
	LoadCyc   uint64
	Ops       uint64
	TimeShare float64 // fraction of the trace's total cycles
}

// TimeByFunction aggregates per-function cycle attribution — a
// perf-report-style view of a recording.
func (b *Buffer) TimeByFunction() []FnTime {
	agg := map[string]*FnTime{}
	var total uint64
	b.Replay(func(r Record, fn string) {
		ft := agg[fn]
		if ft == nil {
			ft = &FnTime{Fn: fn}
			agg[fn] = ft
		}
		ft.Cycles += r.Cost
		ft.Ops++
		total += r.Cost
		switch r.Kind {
		case sim.OpStore, sim.OpStoreNT, sim.OpAtomic:
			ft.StoreCyc += r.Cost
		case sim.OpLoad:
			ft.LoadCyc += r.Cost
		}
	})
	out := make([]FnTime, 0, len(agg))
	for _, ft := range agg {
		if total > 0 {
			ft.TimeShare = float64(ft.Cycles) / float64(total)
		}
		out = append(out, *ft)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Fn < out[j].Fn
	})
	return out
}
