package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the trace decoder: it must
// return an error or a valid buffer, never panic or hang.
func FuzzDecode(f *testing.F) {
	// Seed with a real encoding.
	b := NewBuffer()
	b.records = append(b.records, Record{Core: 1, Addr: 64, Size: 8, Fn: b.intern("f"), Instr: 3, Cost: 5})
	var seed bytes.Buffer
	if err := b.Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PSTR"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tb, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must replay and re-encode cleanly.
		count := 0
		tb.Replay(func(Record, string) { count++ })
		if count != tb.Len() {
			t.Fatalf("replay visited %d of %d records", count, tb.Len())
		}
		var out bytes.Buffer
		if err := tb.Encode(&out); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
	})
}

// FuzzRoundtrip checks that any record content survives encode/decode.
func FuzzRoundtrip(f *testing.F) {
	f.Add(uint16(0), uint8(1), uint64(64), uint64(8), uint64(10), uint64(4), "fn")
	f.Fuzz(func(t *testing.T, core uint16, kind uint8, addr, size, instr, cost uint64, fn string) {
		b := NewBuffer()
		b.records = append(b.records, Record{
			Core: core, Kind: 0, Addr: addr, Size: size,
			Fn: b.intern(fn), Instr: instr, Cost: cost,
		})
		_ = kind
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var orig, dec Record
		var origFn, decFn string
		b.Replay(func(r Record, n string) { orig, origFn = r, n })
		got.Replay(func(r Record, n string) { dec, decFn = r, n })
		if orig != dec || origFn != decFn {
			t.Fatalf("roundtrip mismatch: %+v/%q vs %+v/%q", orig, origFn, dec, decFn)
		}
	})
}
