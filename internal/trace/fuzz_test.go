package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the trace decoder: it must
// return an error or a valid buffer, never panic or hang.
func FuzzDecode(f *testing.F) {
	// Seed with a real encoding.
	b := NewBuffer()
	b.records = append(b.records, Record{Core: 1, Addr: 64, Size: 8, Fn: b.intern("f"), Instr: 3, Cost: 5})
	var seed bytes.Buffer
	if err := b.Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PSTR"))
	// v2 chunked seeds alongside the v1 corpus.
	var seed2 bytes.Buffer
	if err := b.EncodeChunked(&seed2, 1); err != nil {
		f.Fatal(err)
	}
	f.Add(seed2.Bytes())
	f.Add([]byte("PST2"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tb, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must replay and re-encode cleanly.
		count := 0
		tb.Replay(func(Record, string) { count++ })
		if count != tb.Len() {
			t.Fatalf("replay visited %d of %d records", count, tb.Len())
		}
		var out bytes.Buffer
		if err := tb.Encode(&out); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
	})
}

// FuzzChunkReader throws arbitrary bytes at the streaming chunk
// reader: it must return errors or well-formed chunks, never panic.
func FuzzChunkReader(f *testing.F) {
	b := NewBuffer()
	b.records = append(b.records,
		Record{Core: 1, Addr: 64, Size: 8, Fn: b.intern("f"), Instr: 3, Cost: 5},
		Record{Core: 2, Addr: 128, Size: 8, Fn: b.intern("g"), Instr: 4, Cost: 6},
	)
	var v1, v2 bytes.Buffer
	if err := b.Encode(&v1); err != nil {
		f.Fatal(err)
	}
	if err := b.EncodeChunked(&v2, 1); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v2.Bytes()[:v2.Len()/2])
	var standalone bytes.Buffer
	cr0, err := NewChunkReader(bytes.NewReader(v2.Bytes()))
	if err != nil {
		f.Fatal(err)
	}
	c0, err := cr0.Next()
	if err != nil {
		f.Fatal(err)
	}
	if err := EncodeChunk(&standalone, c0); err != nil {
		f.Fatal(err)
	}
	f.Add(standalone.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		cr, err := NewChunkReader(bytes.NewReader(data))
		if err == nil {
			for i := 0; i < 1<<12; i++ {
				c, err := cr.Next()
				if err != nil {
					break
				}
				// Every delivered record must resolve in the table.
				for _, r := range c.Records {
					if int(r.Fn) >= len(c.Funcs) {
						t.Fatalf("chunk %d: fn id %d outside table of %d", c.Index, r.Fn, len(c.Funcs))
					}
				}
				// A delivered chunk must survive the standalone codec.
				var buf bytes.Buffer
				if err := EncodeChunk(&buf, c); err != nil {
					t.Fatalf("re-encode of decoded chunk: %v", err)
				}
				if _, err := DecodeChunk(bytes.NewReader(buf.Bytes())); err != nil {
					t.Fatalf("re-decode of re-encoded chunk: %v", err)
				}
			}
		}
		_, _ = DecodeChunk(bytes.NewReader(data))
	})
}

// FuzzRoundtrip checks that any record content survives encode/decode.
func FuzzRoundtrip(f *testing.F) {
	f.Add(uint16(0), uint8(1), uint64(64), uint64(8), uint64(10), uint64(4), "fn")
	f.Fuzz(func(t *testing.T, core uint16, kind uint8, addr, size, instr, cost uint64, fn string) {
		b := NewBuffer()
		b.records = append(b.records, Record{
			Core: core, Kind: 0, Addr: addr, Size: size,
			Fn: b.intern(fn), Instr: instr, Cost: cost,
		})
		_ = kind
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var orig, dec Record
		var origFn, decFn string
		b.Replay(func(r Record, n string) { orig, origFn = r, n })
		got.Replay(func(r Record, n string) { dec, decFn = r, n })
		if orig != dec || origFn != decFn {
			t.Fatalf("roundtrip mismatch: %+v/%q vs %+v/%q", orig, origFn, dec, decFn)
		}
	})
}
