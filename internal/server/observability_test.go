package server

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"prestores/internal/dirtbuster"
)

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// histBuckets extracts one histogram series' cumulative bucket counts in
// exposition order, plus its _count and _sum.
func histBuckets(t *testing.T, text, name, kind string) (buckets []int64, count int64, sum float64) {
	t.Helper()
	bucketRe := regexp.MustCompile(`^` + name + `_bucket\{kind="` + kind + `",le="([^"]+)"\} (\d+)$`)
	count = -1
	sum = -1
	for _, line := range strings.Split(text, "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", line, err)
			}
			buckets = append(buckets, v)
			continue
		}
		if rest, ok := strings.CutPrefix(line, name+`_count{kind="`+kind+`"} `); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("count %q: %v", line, err)
			}
			count = v
		}
		if rest, ok := strings.CutPrefix(line, name+`_sum{kind="`+kind+`"} `); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("sum %q: %v", line, err)
			}
			sum = v
		}
	}
	return buckets, count, sum
}

// checkHistogram asserts the Prometheus invariants of one series:
// cumulative buckets are monotonic, the +Inf bucket equals _count, and
// _sum is consistent with at least one observation.
func checkHistogram(t *testing.T, text, name, kind string, wantCount int64) {
	t.Helper()
	buckets, count, sum := histBuckets(t, text, name, kind)
	if len(buckets) != len(durBuckets)+1 {
		t.Fatalf("%s{kind=%q}: %d buckets, want %d:\n%s", name, kind, len(buckets), len(durBuckets)+1, text)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Fatalf("%s{kind=%q}: bucket %d (%d) < bucket %d (%d): not cumulative",
				name, kind, i, buckets[i], i-1, buckets[i-1])
		}
	}
	if count != wantCount {
		t.Fatalf("%s_count{kind=%q} = %d, want %d", name, kind, count, wantCount)
	}
	if inf := buckets[len(buckets)-1]; inf != count {
		t.Fatalf("%s{kind=%q}: +Inf bucket %d != count %d", name, kind, inf, count)
	}
	if sum < 0 {
		t.Fatalf("%s_sum{kind=%q} missing or negative: %g", name, kind, sum)
	}
}

func TestMetricsHistogramsPerKind(t *testing.T) {
	e := synthExperiment("h1", "histogram rows")
	_, ts := newTestServer(t, Config{
		Workers:   1,
		Lookup:    lookupOf(e),
		Workloads: func(bool) []dirtbuster.Workload { return []dirtbuster.Workload{synthWorkload()} },
	})

	// A mixed workload: two experiment runs (the second is submitted
	// under a different quick flag so it is not a cache hit) and one
	// DirtBuster analysis.
	st := submit(t, ts.URL, map[string]any{"id": "h1", "quick": true})
	waitFinal(t, ts.URL, st.ID)
	st = submit(t, ts.URL, map[string]any{"id": "h1", "quick": false})
	waitFinal(t, ts.URL, st.ID)
	code, data := postJSON(t, ts.URL+"/v1/dirtbuster", map[string]any{"workload": "synthwl", "quick": true})
	if code != http.StatusAccepted {
		t.Fatalf("dirtbuster submit: status %d: %s", code, data)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	waitFinal(t, ts.URL, st.ID)

	text := scrapeMetrics(t, ts.URL)
	for _, name := range []string{"prestored_job_queue_wait_seconds", "prestored_job_run_seconds"} {
		if !strings.Contains(text, "# TYPE "+name+" histogram") {
			t.Fatalf("metrics missing histogram family %s:\n%s", name, text)
		}
		checkHistogram(t, text, name, "experiment", 2)
		checkHistogram(t, text, name, "dirtbuster", 1)
	}
	for _, want := range []string{
		`prestored_jobs_finished_total{kind="dirtbuster",state="done"} 1`,
		`prestored_jobs_finished_total{kind="experiment",state="done"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// telemetryScenario is customScenario plus a telemetry block: the job
// must record a timeline and a line report as artifacts.
const telemetryScenario = `{
  "version": 1,
  "name": "telemetry-pmem",
  "title": "listing1 with telemetry",
  "machine": {"preset": "machine-a"},
  "workload": {"name": "listing1",
    "params": {"elem_size": 512, "threads": 1, "volume": 1048576, "reread": false, "seed": 5}},
  "policy": {
    "ops": ["none"],
    "columns": [{"title": "amp", "op": "none", "metric": "write_amp", "format": "f2"}]
  },
  "telemetry": {"timeline": true, "line_report": true}
}`

func getArtifact(t *testing.T, base, id, name string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get("Content-Type")
}

func TestScenarioTelemetryArtifacts(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	code, data := postRaw(t, ts.URL+"/v1/scenarios",
		`{"spec": `+telemetryScenario+`, "quick": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	st = waitFinal(t, ts.URL, st.ID)
	if st.State != "done" {
		t.Fatalf("job state %q: %+v", st.State, st)
	}

	code, body, ctype := getArtifact(t, ts.URL, st.ID, "timeline")
	if code != http.StatusOK {
		t.Fatalf("GET timeline: status %d: %s", code, body)
	}
	if ctype != "application/json" {
		t.Fatalf("timeline content-type %q", ctype)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("timeline has no events")
	}

	code, body, _ = getArtifact(t, ts.URL, st.ID, "linereport")
	if code != http.StatusOK {
		t.Fatalf("GET linereport: status %d: %s", code, body)
	}
	var rep struct {
		Lines []json.RawMessage `json:"lines"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("line report is not valid JSON: %v", err)
	}
	if len(rep.Lines) == 0 {
		t.Fatal("line report tracked no lines")
	}
	// The job's human-readable output also carries the text rendering.
	if !strings.Contains(st.Result.Output, "cache-line attribution report") {
		t.Errorf("job output missing text line report:\n%s", st.Result.Output)
	}
}

func TestArtifactErrorPaths(t *testing.T) {
	e := synthExperiment("a1", "no artifacts here")
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	// Unknown job.
	code, _, _ := getArtifact(t, ts.URL, "job-999", "timeline")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", code)
	}

	// A finished job that never recorded telemetry.
	st := submit(t, ts.URL, map[string]any{"id": "a1", "quick": true})
	waitFinal(t, ts.URL, st.ID)
	code, body, _ := getArtifact(t, ts.URL, st.ID, "timeline")
	if code != http.StatusNotFound {
		t.Fatalf("no-telemetry job: status %d, want 404: %s", code, body)
	}
	if !strings.Contains(string(body), "telemetry block") {
		t.Fatalf("error should point at the telemetry block: %s", body)
	}

	// A telemetry spec that enables nothing is rejected at submit.
	code, body = postRaw(t, ts.URL+"/v1/scenarios",
		`{"spec": `+strings.Replace(telemetryScenario,
			`"telemetry": {"timeline": true, "line_report": true}`,
			`"telemetry": {}`, 1)+`, "quick": true}`)
	if code != http.StatusBadRequest {
		t.Fatalf("empty telemetry block: status %d, want 400: %s", code, body)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	_, tsOff := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(tsOff.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: status %d, want 404", resp.StatusCode)
	}

	_, tsOn := newTestServer(t, Config{Workers: 1, EnablePprof: true})
	resp, err = http.Get(tsOn.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof on: status %d, want 200", resp.StatusCode)
	}
}
