package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"prestores/internal/sim"
)

// metrics holds the daemon's monotonic counters. Gauges that are
// derived from scheduler state (queue depth, cache size) are sampled
// at scrape time and passed to render as metricsGauges.
type metrics struct {
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	coalesced     atomic.Int64
	rejected      atomic.Int64
	running       atomic.Int64

	startOps uint64 // sim.RetiredOps() at server start
	start    time.Time
}

func (m *metrics) init() {
	m.startOps = sim.RetiredOps()
	m.start = time.Now()
}

// metricsGauges is the point-in-time scheduler state sampled per scrape.
type metricsGauges struct {
	queueDepth    int
	queueCapacity int
	workers       int
	inflight      int
	cacheEntries  int
	uptime        time.Duration
}

// render writes the Prometheus text exposition format (version 0.0.4).
func (m *metrics) render(w io.Writer, g metricsGauges) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("prestored_jobs_completed_total", "Jobs that finished successfully.", m.jobsDone.Load())
	counter("prestored_jobs_failed_total", "Jobs that finished with an error (panic or timeout).", m.jobsFailed.Load())
	counter("prestored_jobs_cancelled_total", "Jobs cancelled before completion.", m.jobsCancelled.Load())
	counter("prestored_jobs_rejected_total", "Submits rejected with 429 because the queue was full.", m.rejected.Load())
	counter("prestored_cache_hits_total", "Submits answered from the result cache.", m.cacheHits.Load())
	counter("prestored_cache_misses_total", "Submits that enqueued new work.", m.cacheMisses.Load())
	counter("prestored_coalesced_total", "Submits attached to an identical in-flight job.", m.coalesced.Load())

	gauge("prestored_jobs_running", "Jobs currently executing on a worker.", float64(m.running.Load()))
	gauge("prestored_queue_depth", "Jobs waiting in the queue.", float64(g.queueDepth))
	gauge("prestored_queue_capacity", "Bound on queued jobs; full queue rejects with 429.", float64(g.queueCapacity))
	gauge("prestored_workers", "Worker-pool size.", float64(g.workers))
	gauge("prestored_inflight_keys", "Distinct cache keys currently queued or running.", float64(g.inflight))
	gauge("prestored_cache_entries", "Results held in the cache.", float64(g.cacheEntries))
	gauge("prestored_uptime_seconds", "Seconds since the daemon started.", g.uptime.Seconds())

	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	gauge("prestored_cache_hit_ratio", "cache_hits / (cache_hits + cache_misses) since start.", ratio)

	ops := sim.RetiredOps() - m.startOps
	counter("prestored_sim_ops_total", "Simulated operations retired since the daemon started.", int64(ops))
	opsPerSec := 0.0
	if sec := time.Since(m.start).Seconds(); sec > 0 {
		opsPerSec = float64(ops) / sec
	}
	gauge("prestored_sim_ops_per_second", "Average simulated-operation throughput since start.", opsPerSec)
}
