package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prestores/internal/sim"
)

// durBuckets are the histogram upper bounds (seconds) shared by the
// queue-wait and run-duration families: exponential from 5 ms to 5 min,
// wide enough for both a cache-warm quick experiment and a full sweep.
var durBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// histogram is one Prometheus histogram series: per-bucket counts (the
// last slot is +Inf), an observation count and a sum in nanoseconds.
// Counts are stored per bucket and cumulated at render time.
type histogram struct {
	counts   [16]atomic.Int64 // len(durBuckets)+1; last is +Inf
	total    atomic.Int64
	sumNanos atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	slot := len(durBuckets)
	for i, b := range durBuckets {
		if s <= b {
			slot = i
			break
		}
	}
	h.counts[slot].Add(1)
	h.total.Add(1)
	h.sumNanos.Add(int64(d))
}

// histogramVec is a histogram family labeled by job kind.
type histogramVec struct {
	mu     sync.Mutex
	byKind map[string]*histogram
}

func (v *histogramVec) observe(kind string, d time.Duration) {
	v.mu.Lock()
	h := v.byKind[kind]
	if h == nil {
		if v.byKind == nil {
			v.byKind = map[string]*histogram{}
		}
		h = &histogram{}
		v.byKind[kind] = h
	}
	v.mu.Unlock()
	h.observe(d)
}

// snapshot returns the family's kinds in sorted order for deterministic
// rendering.
func (v *histogramVec) snapshot() (kinds []string, hists []*histogram) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for k := range v.byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		hists = append(hists, v.byKind[k])
	}
	return kinds, hists
}

// counterVec is a counter family labeled by job kind and final state.
type counterVec struct {
	mu     sync.Mutex
	counts map[[2]string]int64
}

func (v *counterVec) inc(kind, state string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.counts == nil {
		v.counts = map[[2]string]int64{}
	}
	v.counts[[2]string{kind, state}]++
}

func (v *counterVec) snapshot() (keys [][2]string, vals []int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for k := range v.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		vals = append(vals, v.counts[k])
	}
	return keys, vals
}

// metrics holds the daemon's monotonic counters. Gauges that are
// derived from scheduler state (queue depth, cache size) are sampled
// at scrape time and passed to render as metricsGauges.
type metrics struct {
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	coalesced     atomic.Int64
	rejected      atomic.Int64
	running       atomic.Int64

	// Autotuning-search counters (POST /v1/autotune).
	autotuneSearches  atomic.Int64
	autotuneEvals     atomic.Int64
	autotuneConverged atomic.Int64

	// Trace-pipeline counters (POST /v1/traces, /v1/analyses).
	traceUploads     atomic.Int64
	traceUploadBytes atomic.Int64
	traceAnalyses    atomic.Int64
	traceChunks      atomic.Int64

	// Labeled families: per-kind scheduling latency and run duration,
	// and per-kind/state completion counts.
	queueWait histogramVec
	runDur    histogramVec
	finished  counterVec

	startOps uint64 // sim.RetiredOps() at server start
	start    time.Time
}

func (m *metrics) init() {
	m.startOps = sim.RetiredOps()
	m.start = time.Now()
}

// metricsGauges is the point-in-time scheduler state sampled per scrape.
type metricsGauges struct {
	queueDepth    int
	queueCapacity int
	workers       int
	inflight      int
	cacheEntries  int
	uptime        time.Duration

	// Warm-state checkpoint store counters, sampled from the shared
	// store; the family is omitted when checkpointing is disabled.
	ckptEnabled bool
	ckptHits    uint64
	ckptMisses  uint64
	ckptBytes   int64

	// Trace-store occupancy, sampled from the store per scrape.
	traceBytes  int64
	traceStored int

	// Build identity and observability-store occupancy.
	version       string
	goVersion     string
	spanTraces    int
	flightRecords uint64
}

// render writes the Prometheus text exposition format (version 0.0.4).
func (m *metrics) render(w io.Writer, g metricsGauges) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	// Build identity as the conventional constant-1 info gauge: joins
	// let dashboards slice any series by the build that produced it.
	fmt.Fprintf(w, "# HELP prestored_build_info Build identity of this daemon; constant 1.\n")
	fmt.Fprintf(w, "# TYPE prestored_build_info gauge\nprestored_build_info{version=%q,go=%q} 1\n",
		g.version, g.goVersion)

	counter("prestored_jobs_completed_total", "Jobs that finished successfully.", m.jobsDone.Load())
	counter("prestored_jobs_failed_total", "Jobs that finished with an error (panic or timeout).", m.jobsFailed.Load())
	counter("prestored_jobs_cancelled_total", "Jobs cancelled before completion.", m.jobsCancelled.Load())
	counter("prestored_jobs_rejected_total", "Submits rejected with 429 because the queue was full.", m.rejected.Load())
	counter("prestored_cache_hits_total", "Submits answered from the result cache.", m.cacheHits.Load())
	counter("prestored_cache_misses_total", "Submits that enqueued new work.", m.cacheMisses.Load())
	counter("prestored_coalesced_total", "Submits attached to an identical in-flight job.", m.coalesced.Load())
	counter("prestored_autotune_searches_total", "Autotuning searches that completed successfully.", m.autotuneSearches.Load())
	counter("prestored_autotune_evals_total", "Candidate plan evaluations performed by autotuning searches.", m.autotuneEvals.Load())
	counter("prestored_autotune_converged_total", "Autotuning searches that reached a local optimum within budget.", m.autotuneConverged.Load())
	counter("prestored_trace_uploads_total", "Trace recordings accepted into the store (one-shot or committed resumable uploads).", m.traceUploads.Load())
	counter("prestored_trace_upload_bytes_total", "Encoded bytes of accepted trace recordings.", m.traceUploadBytes.Load())
	counter("prestored_trace_analyses_total", "Chunked trace analyses that completed successfully.", m.traceAnalyses.Load())
	counter("prestored_trace_chunks_total", "Trace chunks processed by analysis passes (local or on behalf of a coordinator).", m.traceChunks.Load())
	gauge("prestored_trace_store_bytes", "Bytes held by the trace store (stored traces plus open upload buffers).", float64(g.traceBytes))
	gauge("prestored_trace_stored", "Recordings currently in the trace store.", float64(g.traceStored))

	if g.ckptEnabled {
		// Unsigned counters rendered with %d directly: a uint64 past
		// 1<<63 must not appear negative.
		uctr := func(name, help string, v uint64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		uctr("prestored_checkpoint_hits_total", "Warm-state checkpoint lookups answered from the store.", g.ckptHits)
		uctr("prestored_checkpoint_misses_total", "Warm-state checkpoint lookups that loaded cold.", g.ckptMisses)
		gauge("prestored_checkpoint_store_bytes", "Bytes of warm-state checkpoints held in memory.", float64(g.ckptBytes))
	}

	if keys, vals := m.finished.snapshot(); len(keys) > 0 {
		fmt.Fprintf(w, "# HELP prestored_jobs_finished_total Jobs reaching a final state, by kind and state.\n")
		fmt.Fprintf(w, "# TYPE prestored_jobs_finished_total counter\n")
		for i, k := range keys {
			fmt.Fprintf(w, "prestored_jobs_finished_total{kind=%q,state=%q} %d\n", k[0], k[1], vals[i])
		}
	}

	m.renderHistogram(w, "prestored_job_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up, by kind.", &m.queueWait)
	m.renderHistogram(w, "prestored_job_run_seconds",
		"Wall-clock run duration of jobs, by kind.", &m.runDur)

	gauge("prestored_jobs_running", "Jobs currently executing on a worker.", float64(m.running.Load()))
	gauge("prestored_queue_depth", "Jobs waiting in the queue.", float64(g.queueDepth))
	gauge("prestored_queue_capacity", "Bound on queued jobs; full queue rejects with 429.", float64(g.queueCapacity))
	gauge("prestored_workers", "Worker-pool size.", float64(g.workers))
	gauge("prestored_inflight_keys", "Distinct cache keys currently queued or running.", float64(g.inflight))
	gauge("prestored_cache_entries", "Results held in the cache.", float64(g.cacheEntries))
	gauge("prestored_uptime_seconds", "Seconds since the daemon started.", g.uptime.Seconds())
	gauge("prestored_span_traces", "Traces currently held by the span store.", float64(g.spanTraces))
	fmt.Fprintf(w, "# HELP prestored_flight_records_total Entries appended to the flight recorder since start.\n")
	fmt.Fprintf(w, "# TYPE prestored_flight_records_total counter\nprestored_flight_records_total %d\n", g.flightRecords)

	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	gauge("prestored_cache_hit_ratio", "cache_hits / (cache_hits + cache_misses) since start.", ratio)

	// The op count is unsigned: a uint64 past 1<<63 must not render as a
	// negative counter.
	ops := sim.RetiredOps() - m.startOps
	fmt.Fprintf(w, "# HELP prestored_sim_ops_total Simulated operations retired since the daemon started.\n")
	fmt.Fprintf(w, "# TYPE prestored_sim_ops_total counter\nprestored_sim_ops_total %d\n", ops)
	opsPerSec := 0.0
	if sec := time.Since(m.start).Seconds(); sec > 0 {
		opsPerSec = float64(ops) / sec
	}
	gauge("prestored_sim_ops_per_second", "Average simulated-operation throughput since start.", opsPerSec)
}

// renderHistogram writes one labeled histogram family. Buckets are
// cumulative per Prometheus semantics; the sum is in seconds.
func (m *metrics) renderHistogram(w io.Writer, name, help string, v *histogramVec) {
	kinds, hists := v.snapshot()
	if len(kinds) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, kind := range kinds {
		h := hists[i]
		var cum int64
		for bi, bound := range durBuckets {
			cum += h.counts[bi].Load()
			fmt.Fprintf(w, "%s_bucket{kind=%q,le=%q} %d\n", name, kind,
				strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += h.counts[len(durBuckets)].Load()
		fmt.Fprintf(w, "%s_bucket{kind=%q,le=\"+Inf\"} %d\n", name, kind, cum)
		fmt.Fprintf(w, "%s_sum{kind=%q} %g\n", name, kind,
			time.Duration(h.sumNanos.Load()).Seconds())
		fmt.Fprintf(w, "%s_count{kind=%q} %d\n", name, kind, h.total.Load())
	}
}
