package server

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"prestores/internal/bench"
	"prestores/internal/dirtbuster"
	"prestores/internal/pmcheck"
	"prestores/internal/sim"
)

// experimentSpec is the POST /v1/experiments body. Its JSON encoding
// (fixed field order) is part of the cache key.
type experimentSpec struct {
	ID    string `json:"id"`
	Quick bool   `json:"quick"`
}

// dirtbusterSpec is the POST /v1/dirtbuster body.
type dirtbusterSpec struct {
	Workload string `json:"workload"`
	Quick    bool   `json:"quick"`
}

// traceSpec is the POST /v1/trace body: record the named workload's
// operation trace, then analyze it offline. Mode selects the analysis:
// "dirtbuster" (default) for the paper-format report, "report" for the
// perf-report-style per-function time profile, "pmcheck" for the
// persistence checker.
type traceSpec struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	PMBase   uint64 `json:"pm_base,omitempty"`
	PMSize   uint64 `json:"pm_size,omitempty"`
}

// experimentRun builds the run function for an experiment job: the
// bench runner's single-experiment harness (panic containment,
// timeout, cooperative cancellation, SimOps accounting), streaming
// output into the progress log as rows are produced. The output bytes
// are exactly what bench.RunOne writes for the same experiment, which
// is what the golden-determinism guard asserts.
func (s *Server) experimentRun(e bench.Experiment, quick bool) func(context.Context, *job) bench.Result {
	return func(ctx context.Context, j *job) bench.Result {
		r, _ := bench.RunOneGuarded(ctx, j.out, e, bench.RunnerConfig{
			Quick:   quick,
			Timeout: s.cfg.JobTimeout,
		})
		return r
	}
}

// analysisRun wraps a DirtBuster or trace analysis in the same
// guarded shape as an experiment run: panic containment, wall-time and
// SimOps accounting, cancellation labeling. The analyses themselves
// are single pipeline stages over a private simulated machine, so
// cancellation is observed between stages rather than mid-simulation.
// The body receives the job so it can attach artifacts. SimOps comes
// from a per-run counter the body's machines attach to via the
// context, so concurrent jobs never inflate each other's counts.
func analysisRun(id, title string, timeout time.Duration,
	body func(ctx context.Context, j *job, out *bytes.Buffer) error) func(context.Context, *job) bench.Result {
	return func(ctx context.Context, j *job) bench.Result {
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		var ops sim.OpsCounter
		ctx = sim.WithOpsSink(ctx, &ops)
		var out bytes.Buffer
		start := time.Now()
		errText := func() (errText string) {
			defer func() {
				if r := recover(); r != nil {
					errText = fmt.Sprintf("panic: %v", r)
				}
			}()
			if err := ctx.Err(); err != nil {
				return fmt.Sprintf("cancelled: %v", err)
			}
			if err := body(ctx, j, &out); err != nil {
				return err.Error()
			}
			return ""
		}()
		res := bench.Result{ID: id, Title: title, Err: errText}
		res.WallTime = time.Since(start)
		res.SimOps = ops.Total()
		if sec := res.WallTime.Seconds(); sec > 0 {
			res.SimOpsPerSec = float64(res.SimOps) / sec
		}
		res.Output = out.String()
		j.out.Write(out.Bytes())
		return res
	}
}

// attachOps returns a copy of wl whose machines report retired ops to
// the context's per-run counter (see sim.WithOpsSink).
func attachOps(ctx context.Context, wl dirtbuster.Workload) dirtbuster.Workload {
	mk := wl.NewMachine
	wl.NewMachine = func() *sim.Machine { return mk().AttachOps(ctx) }
	return wl
}

// lookupWorkload finds a DirtBuster-analyzable workload by name.
func (s *Server) lookupWorkload(name string, quick bool) (dirtbuster.Workload, bool) {
	for _, w := range s.cfg.Workloads(quick) {
		if w.Name == name {
			return w, true
		}
	}
	return dirtbuster.Workload{}, false
}

// dirtbusterRun builds the run function for a DirtBuster analysis job.
func (s *Server) dirtbusterRun(wl dirtbuster.Workload) func(context.Context, *job) bench.Result {
	return analysisRun("dirtbuster/"+wl.Name, "DirtBuster analysis of "+wl.Name, s.cfg.JobTimeout,
		func(ctx context.Context, _ *job, out *bytes.Buffer) error {
			wl := attachOps(ctx, wl)
			rep := dirtbuster.Analyze(wl, dirtbuster.Config{})
			fmt.Fprintln(out, rep.Render())
			return nil
		})
}

// traceRun builds the run function for a trace-analysis job: record
// the workload's full operation trace, then analyze the recording
// offline per spec.Mode. Cancellation is checked between the record
// and analyze stages.
func (s *Server) traceRun(wl dirtbuster.Workload, spec traceSpec) func(context.Context, *job) bench.Result {
	mode := spec.Mode
	if mode == "" {
		mode = "dirtbuster"
	}
	return analysisRun("trace/"+mode+"/"+wl.Name, "trace analysis ("+mode+") of "+wl.Name, s.cfg.JobTimeout,
		func(ctx context.Context, _ *job, out *bytes.Buffer) error {
			wl := attachOps(ctx, wl)
			tb, line := dirtbuster.Record(wl)
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("cancelled: %w", err)
			}
			switch mode {
			case "dirtbuster":
				rep := dirtbuster.AnalyzeTrace(wl.Name, tb, line, dirtbuster.Config{})
				fmt.Fprintln(out, rep.Render())
			case "report":
				fmt.Fprintf(out, "%-32s %10s %8s %8s %8s\n", "function", "cycles", "time%", "store%", "ops")
				for _, ft := range tb.TimeByFunction() {
					if ft.Fn == "" {
						ft.Fn = "(untagged)"
					}
					storePct := 0.0
					if ft.Cycles > 0 {
						storePct = 100 * float64(ft.StoreCyc) / float64(ft.Cycles)
					}
					fmt.Fprintf(out, "%-32s %10d %7.1f%% %7.1f%% %8d\n",
						ft.Fn, ft.Cycles, ft.TimeShare*100, storePct, ft.Ops)
				}
			case "pmcheck":
				base, size := spec.PMBase, spec.PMSize
				if base == 0 {
					base = 1 << 40
				}
				if size == 0 {
					size = 256 << 30
				}
				res := pmcheck.Check(tb, pmcheck.Config{Base: base, Size: size, LineSize: line})
				fmt.Fprintf(out, "pmcheck: %d line-stores checked, %d commits, %d violations\n",
					res.StoresChecked, res.Commits, len(res.Violations))
				for _, v := range res.Violations {
					fmt.Fprintln(out, "  ", v)
				}
			default:
				return fmt.Errorf("unknown trace mode %q (want dirtbuster, report or pmcheck)", mode)
			}
			return nil
		})
}
