package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"prestores/internal/bench"
	"prestores/internal/memdev"
	"prestores/internal/scenario"
	"prestores/internal/sim"
	"prestores/internal/telemetry"
	"prestores/internal/workloads/kv"
)

// scenarioSpec is the POST /v1/scenarios body: a full declarative
// scenario spec (see internal/scenario) plus the quick flag.
type scenarioSpec struct {
	Spec  json.RawMessage `json:"spec"`
	Quick bool            `json:"quick"`
}

// scenarioKey is the cache-key form of a scenario submit: the spec's
// canonical bytes rather than the client's formatting, so semantically
// identical submits — reordered keys, extra whitespace — coalesce onto
// the same cache entry.
type scenarioKey struct {
	Spec  json.RawMessage `json:"spec"`
	Quick bool            `json:"quick"`
}

func (s *Server) handleSubmitScenario(w http.ResponseWriter, r *http.Request) {
	var body scenarioSpec
	if !decodeBody(w, r, &body) {
		return
	}
	if len(body.Spec) == 0 {
		writeError(w, http.StatusBadRequest, "spec: required (a scenario spec object; GET /v1/registry lists the building blocks)")
		return
	}
	sp, err := scenario.Decode(body.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid scenario spec: %v", err)
		return
	}
	canon, err := sp.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid scenario spec: %v", err)
		return
	}
	key := scenarioKey{Spec: canon, Quick: body.Quick}
	st, j, err := s.submit("scenario", key, !streamRequested(r), parentFrom(r), s.scenarioRun(sp, body.Quick))
	s.respondSubmit(w, r, st, j, err)
}

// scenarioRun builds the run function for a scenario job: the guarded
// analysis harness around the declarative grid runner. A spec with a
// telemetry block gets a per-job recorder attached (via the context
// observer, so concurrent jobs never see each other's machines); the
// recorded timeline and line report become job artifacts served from
// GET /v1/jobs/{id}/timeline and .../linereport.
func (s *Server) scenarioRun(sp scenario.Spec, quick bool) func(context.Context, *job) bench.Result {
	name := sp.Name
	if name == "" {
		name = "custom"
	}
	title := sp.Title
	if title == "" {
		title = "custom scenario"
	}
	return analysisRun("scenario/"+name, title, s.cfg.JobTimeout,
		func(ctx context.Context, j *job, out *bytes.Buffer) error {
			t := sp.Telemetry
			if t == nil {
				return bench.RunSpec(ctx, out, sp, quick)
			}
			rec := telemetry.New(telemetry.Config{
				Timeline:    t.Timeline,
				LineReport:  t.LineReport,
				MaxEvents:   t.MaxEvents,
				BucketBytes: t.BucketBytes,
			})
			err := bench.RunSpec(scenario.WithObserver(ctx, rec.Attach), out, sp, quick)
			if t.Timeline {
				var b bytes.Buffer
				if werr := rec.WriteTimeline(&b); werr == nil {
					j.setArtifact("timeline", b.Bytes())
				}
			}
			if t.LineReport {
				rep := rec.LineReport(256)
				var b bytes.Buffer
				if werr := rep.WriteJSON(&b); werr == nil {
					j.setArtifact("linereport", b.Bytes())
				}
				fmt.Fprintln(out)
				rep.WriteText(out)
			}
			return err
		})
}

// registryDevices describes the device-kind registry: the kinds a
// machine.devices patch (or a custom config) may instantiate and the
// parameter keys each accepts.
type registryDevices struct {
	Kinds  []string `json:"kinds"`
	Params []string `json:"params"`
}

// registryWorkload is one workload's registry listing.
type registryWorkload struct {
	Name        string              `json:"name"`
	Description string              `json:"description,omitempty"`
	Params      []scenario.ParamDef `json:"params,omitempty"`
	Ops         []string            `json:"ops"`
	Metrics     []string            `json:"metrics"`
	// Sites lists the workload's named pre-store call sites — the
	// dimensions a policy.table (and the autotuner) can steer per-site.
	Sites []string `json:"sites,omitempty"`
}

// registryResponse is the GET /v1/registry body: every building block a
// scenario spec may reference.
type registryResponse struct {
	Machines  []sim.Preset       `json:"machines"`
	Devices   registryDevices    `json:"devices"`
	Workloads []registryWorkload `json:"workloads"`
	Stores    []string           `json:"stores"`
	Formats   []string           `json:"formats"`
	Specs     []string           `json:"spec_experiments"`
}

func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	resp := registryResponse{
		Machines: sim.Presets(),
		Devices:  registryDevices{Kinds: memdev.Kinds(), Params: memdev.ParamNames()},
		Stores:   kv.Stores(),
		Formats:  scenario.Formats(),
		Specs:    bench.SpecIDs(),
	}
	for _, wl := range scenario.Workloads() {
		resp.Workloads = append(resp.Workloads, registryWorkload{
			Name:        wl.Name,
			Description: wl.Description,
			Params:      wl.Params,
			Ops:         wl.Ops,
			Metrics:     wl.MetricNames,
			Sites:       wl.Sites,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
