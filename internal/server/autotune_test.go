package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"prestores/internal/autotune"
)

// autotuneBase is the single-point sites spec autotune tests search
// over; the sites workload pins {hot: demote, once: clean} as the
// unique elapsed optimum of its plan matrix.
const autotuneBase = `{
  "version": 1,
  "machine": {"preset": "machine-a"},
  "workload": {"name": "sites"},
  "policy": {"ops": ["none"], "columns": [{"title": "elapsed", "op": "none", "metric": "elapsed"}]}
}`

// mustArtifact fetches a finished job's artifact, failing on non-200.
func mustArtifact(t *testing.T, base, id, name string) []byte {
	t.Helper()
	code, data, _ := getArtifact(t, base, id, name)
	if code != http.StatusOK {
		t.Fatalf("GET %s for job %s: status %d: %s", name, id, code, data)
	}
	return data
}

// TestAutotuneSearchEndToEnd drives the full daemon-side loop: submit a
// search, read the trajectory and winner artifacts, re-evaluate the
// recorded winner spec through POST /v1/eval and check it reproduces
// the recorded metrics byte for byte, then confirm result caching and
// the autotune metric families.
func TestAutotuneSearchEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	const request = `{"spec": ` + autotuneBase + `, "seed": 7, "objective": "elapsed"}`
	code, data := postRaw(t, ts.URL+"/v1/autotune", request)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (want 202): %s", code, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	st = waitFinal(t, ts.URL, st.ID)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("autotune job did not finish cleanly: %+v", st)
	}
	if !strings.Contains(st.Result.Output, `"event":"done"`) {
		t.Errorf("job output carries no progress stream:\n%s", st.Result.Output)
	}

	traj, err := autotune.DecodeTrajectory(mustArtifact(t, ts.URL, st.ID, "trajectory"))
	if err != nil {
		t.Fatalf("trajectory artifact does not decode: %v", err)
	}
	if traj.Evals > traj.Budget || len(traj.Iterations) != traj.Evals {
		t.Fatalf("trajectory bookkeeping wrong: evals %d, budget %d, iterations %d",
			traj.Evals, traj.Budget, len(traj.Iterations))
	}
	base := traj.Iterations[0]
	if base.Source != "baseline" {
		t.Errorf("iteration 0 source = %q, want baseline", base.Source)
	}
	if traj.Winner.Objective >= base.Objective {
		t.Errorf("winner objective %g does not beat the all-none baseline %g",
			traj.Winner.Objective, base.Objective)
	}
	if got := traj.Winner.Plan.Table; got["hot"] != "demote" || got["once"] != "clean" {
		t.Errorf("winner plan = %v, want {hot: demote, once: clean}", got)
	}

	var winner autotune.Winner
	if err := json.Unmarshal(mustArtifact(t, ts.URL, st.ID, "winner"), &winner); err != nil {
		t.Fatalf("winner artifact does not decode: %v", err)
	}
	if winner.Iter != traj.Winner.Iter {
		t.Errorf("winner artifact iter %d, trajectory says %d", winner.Iter, traj.Winner.Iter)
	}

	// The recorded winner spec, replayed through the eval endpoint, must
	// reproduce the recorded metrics exactly — the contract the CI smoke
	// checks over a real socket.
	code, data = postRaw(t, ts.URL+"/v1/eval", `{"spec": `+string(traj.Winner.Spec)+`}`)
	if code != http.StatusAccepted {
		t.Fatalf("eval submit: status %d: %s", code, data)
	}
	var est JobStatus
	if err := json.Unmarshal(data, &est); err != nil {
		t.Fatal(err)
	}
	est = waitFinal(t, ts.URL, est.ID)
	if est.State != "done" || est.Result == nil {
		t.Fatalf("eval job did not finish cleanly: %+v", est)
	}
	wantOut, err := json.Marshal(traj.Winner.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if est.Result.Output != string(wantOut)+"\n" {
		t.Errorf("eval of winner spec = %q, want %q", est.Result.Output, string(wantOut)+"\n")
	}

	// A request differing only in parallelism is the same search: the
	// cache key zeroes Parallel, so this must be a hit.
	code, data = postRaw(t, ts.URL+"/v1/autotune",
		`{"spec": `+autotuneBase+`, "seed": 7, "objective": "elapsed", "parallel": 4}`)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d (want 200 cache hit): %s", code, data)
	}
	var second JobStatus
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Errorf("parallel-only resubmit not served from cache: %+v", second)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"prestored_autotune_searches_total 1",
		"prestored_autotune_converged_total",
		"prestored_autotune_evals_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestAutotuneSubmitRejectsInvalidRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name, body, wantErr string
	}{
		{"missing spec", `{"budget": 4}`, "spec: required"},
		{"unknown objective", `{"spec": ` + autotuneBase + `, "objective": "nope"}`, "objective: unknown metric"},
		{"budget over limit", `{"spec": ` + autotuneBase + `, "budget": 100000}`, "exceeds the limit"},
		{"siteless workload", `{"spec": {"version": 1, "machine": {"preset": "machine-a"},
			"workload": {"name": "listing1"},
			"policy": {"ops": ["none"], "columns": [{"title": "e", "op": "none", "metric": "elapsed"}]}}}`,
			"no pre-store sites"},
		{"swept spec", `{"spec": {"version": 1, "machine": {"preset": "machine-a"},
			"workload": {"name": "sites"},
			"policy": {"ops": ["none", "clean"],
				"axes": [{"param": "rounds", "values": [1, 2]}],
				"columns": [{"title": "e", "op": "none", "metric": "elapsed"}]}}}`,
			"policy.axes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, data := postRaw(t, ts.URL+"/v1/autotune", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d (want 400): %s", code, data)
			}
			var body map[string]string
			if err := json.Unmarshal(data, &body); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(body["error"], tc.wantErr) {
				t.Errorf("error %q does not name %q", body["error"], tc.wantErr)
			}
		})
	}
}

func TestEvalRejectsSweptSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	code, data := postRaw(t, ts.URL+"/v1/eval", `{"spec": {"version": 1,
		"machine": {"preset": "machine-a"},
		"workload": {"name": "sites"},
		"policy": {"ops": ["none", "clean"],
			"columns": [{"title": "e", "op": "none", "metric": "elapsed"}]}}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d (want 400): %s", code, data)
	}
	if !strings.Contains(string(data), "policy.ops") {
		t.Errorf("error %s does not name policy.ops", data)
	}
}
