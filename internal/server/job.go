package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"prestores/internal/bench"
	"prestores/internal/checkpoint"
	"prestores/internal/obs"
)

// jobState is a job's position in its lifecycle.
type jobState int

const (
	stateQueued jobState = iota
	stateRunning
	stateDone
	stateFailed
	stateCancelled
)

func (s jobState) String() string {
	switch s {
	case stateQueued:
		return "queued"
	case stateRunning:
		return "running"
	case stateDone:
		return "done"
	case stateFailed:
		return "failed"
	case stateCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("jobState(%d)", int(s))
}

// job is one unit of work on the scheduler: an experiment run, a
// DirtBuster analysis or a trace analysis. Its context is the
// cancellation channel — DELETE, a last-watcher disconnect and a
// shutdown deadline all cancel it, and the work underneath observes it
// at sweep-iteration boundaries (bench.Run) or between pipeline stages.
type job struct {
	id   string
	kind string
	key  string
	// run executes the work, writing human-readable output to the
	// job's progress log as it is produced, and returns the final
	// Result. It receives the job so it can attach artifacts
	// (setArtifact) such as recorded telemetry.
	run func(ctx context.Context, j *job) bench.Result

	ctx       context.Context
	cancel    context.CancelFunc
	out       *progressLog
	done      chan struct{} // closed when the job reaches a final state
	submitted time.Time
	// sc is the job's root span context: minted at submit, continued
	// from the request's traceparent header when one was sent (so the
	// trace ID is the caller's), closed at finalize. parent is the
	// caller's span the root nests under (zero when this daemon is the
	// trace root).
	sc     obs.SpanContext
	parent obs.SpanID
	// ckpt is the job's view of the shared warm-state checkpoint store,
	// set by the worker before run starts and read by finalize for the
	// lifecycle log; nil when checkpointing is disabled or the job was
	// abandoned before a worker picked it up.
	ckpt *checkpoint.View

	mu        sync.Mutex
	state     jobState
	result    *bench.Result
	detached  bool // an async submit owns it: run to completion even with no watchers
	watchers  int  // active stream connections
	artifacts map[string][]byte
}

// logCtx is a context carrying only the job's span identifiers, for
// stamping lifecycle log lines with trace_id/span_id (the job's own
// ctx is cancelled by then, and slog only reads values, never deadlines).
func (j *job) logCtx() context.Context {
	return obs.ContextWithSpan(context.Background(), j.sc)
}

// setArtifact attaches a named byte artifact (e.g. a recorded timeline)
// to the job, retrievable over GET /v1/jobs/{id}/{name} while the job
// is retained.
func (j *job) setArtifact(name string, data []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.artifacts == nil {
		j.artifacts = map[string][]byte{}
	}
	j.artifacts[name] = data
}

// artifact returns a named artifact.
func (j *job) artifact(name string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, ok := j.artifacts[name]
	return data, ok
}

// JobStatus is the wire representation of a job.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	Key   string `json:"key"`
	State string `json:"state"`
	// Cached marks a submit answered from the result cache without
	// running anything; Coalesced marks a submit attached to an
	// identical in-flight job.
	Cached    bool          `json:"cached,omitempty"`
	Coalesced bool          `json:"coalesced,omitempty"`
	Error     string        `json:"error,omitempty"`
	Result    *bench.Result `json:"result,omitempty"`
	// Trace is the job's trace ID: the cross-link between the job
	// handle and GET /v1/jobs/{id}/spans, and what a client needs to
	// merge the daemon's spans with its own.
	Trace string `json:"trace_id,omitempty"`
}

// status snapshots the job for the wire.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, Kind: j.kind, Key: j.key, State: j.state.String(),
		Trace: j.sc.Trace.String()}
	if j.result != nil {
		st.Result = j.result
		st.Error = j.result.Err
	}
	return st
}

// trySetRunning moves queued → running; it fails if the job was
// cancelled while waiting in the queue.
func (j *job) trySetRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateQueued {
		return false
	}
	j.state = stateRunning
	return true
}

// finished reports whether the job reached a final state.
func (j *job) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == stateDone || j.state == stateFailed || j.state == stateCancelled
}

// progressLog is a job's output stream: an append-only buffer that
// wakes streaming readers on every write and is closed exactly once
// when the job finishes. Readers follow it with next.
type progressLog struct {
	mu     sync.Mutex
	buf    []byte
	closed bool
	wake   chan struct{}
}

func newProgressLog() *progressLog {
	return &progressLog{wake: make(chan struct{})}
}

func (l *progressLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = append(l.buf, p...)
	if !l.closed {
		close(l.wake)
		l.wake = make(chan struct{})
	}
	return len(p), nil
}

// close marks the log complete and releases any waiting readers.
func (l *progressLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.wake)
	}
}

// next returns the bytes appended since off, the new offset, whether
// the log is complete, and — when there is nothing new yet — a channel
// that is closed on the next write (or on close).
func (l *progressLog) next(off int) (chunk []byte, noff int, done bool, wake <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if off < len(l.buf) {
		chunk = append([]byte(nil), l.buf[off:]...)
		return chunk, len(l.buf), l.closed, nil
	}
	return nil, off, l.closed, l.wake
}
