package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"prestores/internal/dirtbuster"
	"prestores/internal/trace"
)

// encodedTrace records the synthetic workload and returns its chunked
// encoding (small chunks so even the tiny trace spans several), the
// buffer and the machine line size.
func encodedTrace(t *testing.T) ([]byte, *trace.Buffer, uint64) {
	t.Helper()
	tb, line := dirtbuster.Record(synthWorkload())
	var buf bytes.Buffer
	if err := tb.EncodeChunked(&buf, 64); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tb, line
}

func postTrace(t *testing.T, base string, data []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestTraceUploadOneShot(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	data, _, _ := encodedTrace(t)

	code, body := postTrace(t, ts.URL, data)
	if code != http.StatusCreated {
		t.Fatalf("POST /v1/traces: status %d: %s", code, body)
	}
	var info TraceInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Address != traceAddress(data) {
		t.Fatalf("address %q, want content hash %q", info.Address, traceAddress(data))
	}
	if info.Bytes != int64(len(data)) || info.Chunks < 2 || info.Records == 0 {
		t.Fatalf("implausible info: %+v", info)
	}

	// Re-uploading identical bytes dedupes onto the same entry.
	code, body = postTrace(t, ts.URL, data)
	if code != http.StatusCreated {
		t.Fatalf("re-POST: status %d: %s", code, body)
	}
	var again TraceInfo
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.Address != info.Address {
		t.Fatalf("re-upload address %q != %q", again.Address, info.Address)
	}

	// Listing, fetching and deleting round-trip.
	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list []TraceInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Address != info.Address {
		t.Fatalf("list = %+v, want the one trace", list)
	}
	resp, err = http.Get(ts.URL + "/v1/traces/" + info.Address)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, data) {
		t.Fatalf("GET trace: status %d, %d bytes (want %d)", resp.StatusCode, len(got), len(data))
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/traces/"+info.Address, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE trace: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/traces/" + info.Address)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET deleted trace: status %d, want 404", resp.StatusCode)
	}
}

func putPart(t *testing.T, base, id string, offset int64, part []byte) (int, []byte) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/traces/uploads/%s?offset=%d", base, id, offset)
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(part))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func TestTraceUploadResumable(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	data, _, _ := encodedTrace(t)

	code, body := postJSON(t, ts.URL+"/v1/traces?resume=1", nil)
	if code != http.StatusCreated {
		t.Fatalf("open resumable upload: status %d: %s", code, body)
	}
	var opened struct {
		Upload string `json:"upload"`
		Offset int64  `json:"offset"`
	}
	if err := json.Unmarshal(body, &opened); err != nil {
		t.Fatal(err)
	}

	// Upload in three parts; replay part 2 (a stale retry) and verify
	// the duplicate is acknowledged; then try a wrong offset and use
	// the 409's offset to resume.
	third := len(data) / 3
	parts := [][]byte{data[:third], data[third : 2*third], data[2*third:]}
	off := int64(0)
	for i, p := range parts {
		code, body := putPart(t, ts.URL, opened.Upload, off, p)
		if code != http.StatusOK {
			t.Fatalf("part %d: status %d: %s", i, code, body)
		}
		off += int64(len(p))
		if i == 1 {
			if code, _ := putPart(t, ts.URL, opened.Upload, off-int64(len(p)), p); code != http.StatusOK {
				t.Fatalf("duplicate part retry: status %d, want 200", code)
			}
		}
	}
	code, body = putPart(t, ts.URL, opened.Upload, off+999, []byte("x"))
	if code != http.StatusConflict {
		t.Fatalf("bad offset: status %d, want 409: %s", code, body)
	}
	var conflict struct {
		Offset int64 `json:"offset"`
	}
	if err := json.Unmarshal(body, &conflict); err != nil {
		t.Fatal(err)
	}
	if conflict.Offset != off {
		t.Fatalf("409 offset %d, want %d", conflict.Offset, off)
	}

	code, body = postJSON(t, ts.URL+"/v1/traces/uploads/"+opened.Upload+"/commit", nil)
	if code != http.StatusCreated {
		t.Fatalf("commit: status %d: %s", code, body)
	}
	var info TraceInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Address != traceAddress(data) {
		t.Fatalf("committed address %q, want %q", info.Address, traceAddress(data))
	}
	// The upload is gone once committed.
	if code, _ := putPart(t, ts.URL, opened.Upload, off, []byte("x")); code != http.StatusNotFound {
		t.Fatalf("PUT after commit: status %d, want 404", code)
	}
}

func TestTraceUploadRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, TraceQuotaBytes: 128})

	// Corrupt bytes are rejected at validation time.
	if code, body := postTrace(t, ts.URL, []byte("not a trace")); code != http.StatusBadRequest {
		t.Fatalf("corrupt trace: status %d, want 400: %s", code, body)
	}
	// A valid trace over the 128-byte quota is rejected with 413.
	data, _, _ := encodedTrace(t)
	if code, body := postTrace(t, ts.URL, data); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-quota trace: status %d, want 413: %s", code, body)
	}
	// Resumable parts hit the same quota.
	code, body := postJSON(t, ts.URL+"/v1/traces?resume=1", nil)
	if code != http.StatusCreated {
		t.Fatalf("open upload: status %d: %s", code, body)
	}
	var opened struct {
		Upload string `json:"upload"`
	}
	if err := json.Unmarshal(body, &opened); err != nil {
		t.Fatal(err)
	}
	if code, _ := putPart(t, ts.URL, opened.Upload, 0, data); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-quota part: status %d, want 413", code)
	}
}

func TestAnalysisEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	data, tb, line := encodedTrace(t)

	code, body := postTrace(t, ts.URL, data)
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", code, body)
	}
	var info TraceInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	spec := map[string]any{"trace": info.Address, "app": "synthwl", "line_size": line}
	code, body = postJSON(t, ts.URL+"/v1/analyses", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit analysis: status %d: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	st = waitFinal(t, ts.URL, st.ID)
	if st.State != "done" {
		t.Fatalf("analysis %s: %s", st.State, st.Result.Err)
	}

	want := dirtbuster.AnalyzeTrace("synthwl", tb, line, dirtbuster.Config{}).Render() + "\n"
	if st.Result.Output != want {
		t.Fatalf("sharded analysis output differs from monolithic\n--- got ---\n%s\n--- want ---\n%s",
			st.Result.Output, want)
	}

	// An identical resubmit is a cache hit.
	code, body = postJSON(t, ts.URL+"/v1/analyses", spec)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200 cache hit: %s", code, body)
	}
	var hit JobStatus
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Result.Output != want {
		t.Fatalf("resubmit not served from cache: %+v", hit)
	}

	// Unknown traces are rejected at submit time, not at run time.
	if code, _ := postJSON(t, ts.URL+"/v1/analyses", map[string]any{"trace": "nope"}); code != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", code)
	}

	// The trace-pipeline metric families are live.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtext, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"prestored_trace_uploads_total 1",
		"prestored_trace_stored 1",
		"prestored_trace_analyses_total 1",
	} {
		if !strings.Contains(string(mtext), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestAnalyzeChunkEndpoint exercises the synchronous per-chunk map
// primitive the cluster coordinator fans out.
func TestAnalyzeChunkEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	data, tb, line := encodedTrace(t)

	cr, err := trace.NewChunkReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	c, err := cr.Next()
	if err != nil {
		t.Fatal(err)
	}
	body, err := StatsChunkRequest(c)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/analyses/chunks", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st dirtbuster.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.Records != uint64(len(c.Records)) {
		t.Fatalf("stats phase: status %d, records %d (want %d)", resp.StatusCode, st.Records, len(c.Records))
	}

	// Partial phase under a real plan.
	full := dirtbuster.NewStats()
	tb.Replay(full.AddRecord)
	plan := full.Plan("synthwl", line, dirtbuster.Config{})
	body, err = PartialChunkRequest(plan, c)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/analyses/chunks", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial phase: status %d: %s", resp.StatusCode, raw)
	}
	pt, err := dirtbuster.DecodePartial(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got := pt.Chunks(); len(got) != 1 || got[0] != [2]int{0, 0} {
		t.Fatalf("partial covers %v, want [[0 0]]", got)
	}

	// Unknown phases and garbage framing are rejected.
	bad, err := EncodeChunkRequest(chunkJobHeader{Phase: "nope"}, c)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/analyses/chunks", "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown phase: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/analyses/chunks", "application/octet-stream", strings.NewReader("xx"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated request: status %d, want 400", resp.StatusCode)
	}
}
