package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"prestores/internal/obs"
)

// spanDoc is the decoded /spans artifact: the Chrome trace events plus
// the raw span array embedded for programmatic assertions.
type spanDoc struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
	Spans       []obs.Span        `json:"spans"`
}

func getSpans(t *testing.T, base, id string) spanDoc {
	t.Helper()
	code, data, ctype := getArtifact(t, base, id, "spans")
	if code != http.StatusOK {
		t.Fatalf("GET spans: status %d: %s", code, data)
	}
	if ctype != "application/json" {
		t.Fatalf("spans content-type %q", ctype)
	}
	var doc spanDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("spans artifact is not valid JSON: %v", err)
	}
	return doc
}

func findSpan(spans []obs.Span, name string) *obs.Span {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
	}
	return nil
}

// TestJobSpanTree submits with a client traceparent header and asserts
// the daemon's span artifact: every span shares the client's trace ID,
// the job root span nests under the client span, and queue-wait and
// run spans nest under the root with queue-wait ending before run ends.
func TestJobSpanTree(t *testing.T) {
	e := synthExperiment("sp1", "span tree")
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	const clientTrace = "0123456789abcdef0123456789abcdef"
	const clientSpan = "00f067aa0ba902b7"
	req, err := http.NewRequest("POST", ts.URL+"/v1/experiments",
		bytes.NewReader([]byte(`{"id":"sp1","quick":true}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-"+clientTrace+"-"+clientSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Trace != clientTrace {
		t.Fatalf("job status trace_id %q, want the client's %q", st.Trace, clientTrace)
	}
	st = waitFinal(t, ts.URL, st.ID)
	if st.State != "done" {
		t.Fatalf("job state %q: %+v", st.State, st)
	}

	doc := getSpans(t, ts.URL, st.ID)
	if len(doc.TraceEvents) == 0 {
		t.Fatal("spans artifact has no trace events")
	}
	for _, sp := range doc.Spans {
		if got := sp.Trace.String(); got != clientTrace {
			t.Fatalf("span %q on trace %s, want %s", sp.Name, got, clientTrace)
		}
		if sp.End < sp.Start {
			t.Fatalf("span %q ends before it starts", sp.Name)
		}
	}

	root := findSpan(doc.Spans, "job")
	if root == nil {
		t.Fatalf("no job root span in %+v", doc.Spans)
	}
	if got := root.Parent.String(); got != clientSpan {
		t.Fatalf("job root parent %q, want the client span %q", got, clientSpan)
	}
	if root.Attr("state") != "done" {
		t.Fatalf("job root state attr %q, want done", root.Attr("state"))
	}
	for _, name := range []string{"queue.wait", "run"} {
		sp := findSpan(doc.Spans, name)
		if sp == nil {
			t.Fatalf("no %s span in %+v", name, doc.Spans)
		}
		if sp.Parent != root.ID {
			t.Fatalf("%s span parent %s, want job root %s", name, sp.Parent, root.ID)
		}
	}
	qw, run := findSpan(doc.Spans, "queue.wait"), findSpan(doc.Spans, "run")
	if qw.End > run.End {
		t.Fatalf("queue.wait ends (%d) after run ends (%d)", qw.End, run.End)
	}
}

// TestJobSpansWithoutTraceparent: a submit with no traceparent still
// gets a trace (minted at the API entry) and a parentless root span.
func TestJobSpansWithoutTraceparent(t *testing.T) {
	e := synthExperiment("sp2", "minted trace")
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	st := submit(t, ts.URL, map[string]any{"id": "sp2", "quick": true})
	if st.Trace == "" {
		t.Fatal("job status has no trace_id")
	}
	st = waitFinal(t, ts.URL, st.ID)

	doc := getSpans(t, ts.URL, st.ID)
	root := findSpan(doc.Spans, "job")
	if root == nil {
		t.Fatalf("no job root span in %+v", doc.Spans)
	}
	if !root.Parent.IsZero() {
		t.Fatalf("minted root should have no parent, got %s", root.Parent)
	}
	if got := root.Trace.String(); got != st.Trace {
		t.Fatalf("root trace %s != status trace_id %s", got, st.Trace)
	}
}

// TestCacheHitSpan: a repeated submit resolves from the result cache
// and records a zero-duration cache.hit span on the caller's trace —
// the hit is a scheduling decision on the caller's timeline, not a new
// job.
func TestCacheHitSpan(t *testing.T) {
	e := synthExperiment("sp3", "cache hit")
	s, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	st := submit(t, ts.URL, map[string]any{"id": "sp3", "quick": true})
	waitFinal(t, ts.URL, st.ID)

	const clientTrace = "aaaabbbbccccddddaaaabbbbccccdddd"
	req, err := http.NewRequest("POST", ts.URL+"/v1/experiments",
		bytes.NewReader([]byte(`{"id":"sp3","quick":true}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-"+clientTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit: status %d: %s", resp.StatusCode, data)
	}
	var st2 JobStatus
	if err := json.Unmarshal(data, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatalf("second submit not cached: %+v", st2)
	}

	id, err := obs.ParseTraceID(clientTrace)
	if err != nil {
		t.Fatal(err)
	}
	spans, _ := s.spans.Spans(id)
	sp := findSpan(spans, "cache.hit")
	if sp == nil {
		t.Fatalf("no cache.hit span on the client trace; have %+v", spans)
	}
	if sp.Attr("job") != st.ID {
		t.Fatalf("cache.hit span points at job %q, want %q", sp.Attr("job"), st.ID)
	}
}

// TestFlightRecorderEndpoint: the always-on flight recorder captures
// the job lifecycle and serves it over /v1/debug/flightrecorder.
func TestFlightRecorderEndpoint(t *testing.T) {
	e := synthExperiment("fr1", "flight recorder")
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	st := submit(t, ts.URL, map[string]any{"id": "fr1", "quick": true})
	waitFinal(t, ts.URL, st.ID)

	resp, err := http.Get(ts.URL + "/v1/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flightrecorder: status %d: %s", resp.StatusCode, data)
	}
	var dump struct {
		Recorded uint64             `json:"recorded"`
		Retained int                `json:"retained"`
		Records  []obs.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v\n%s", err, data)
	}
	if dump.Recorded == 0 || len(dump.Records) == 0 {
		t.Fatalf("flight recorder empty after a job: %s", data)
	}
	kinds := map[string]bool{}
	for _, r := range dump.Records {
		kinds[r.Kind] = true
	}
	for _, want := range []string{"job.queued", "job.start", "job.done"} {
		if !kinds[want] {
			t.Errorf("flight recorder missing %q records; have %v", want, kinds)
		}
	}
	for _, r := range dump.Records {
		if r.Kind == "job.done" && r.Job == st.ID && r.Trace != st.Trace {
			t.Errorf("job.done flight record trace %q != job trace %q", r.Trace, st.Trace)
		}
	}
}

// TestMetricsParseAndMonotonic runs the daemon /metrics through the
// strict promtext parser twice with work in between: the exposition
// must stay well formed, every family typed, counters monotonic, and
// the build-info gauge present with version and go labels.
func TestMetricsParseAndMonotonic(t *testing.T) {
	e := synthExperiment("pm1", "promtext")
	_, ts := newTestServer(t, Config{Workers: 1, Lookup: lookupOf(e)})

	parse := func() map[string]*obs.Family {
		t.Helper()
		fams, err := obs.ParseMetrics(strings.NewReader(scrapeMetrics(t, ts.URL)))
		if err != nil {
			t.Fatalf("daemon /metrics does not parse: %v", err)
		}
		byName := map[string]*obs.Family{}
		for _, f := range fams {
			if f.Type == "" {
				t.Errorf("family %s has no TYPE line", f.Name)
			}
			if byName[f.Name] != nil {
				t.Errorf("family %s declared twice", f.Name)
			}
			byName[f.Name] = f
		}
		return byName
	}

	before := parse()
	bi := before["prestored_build_info"]
	if bi == nil || len(bi.Samples) == 0 {
		t.Fatal("no prestored_build_info family")
	}
	if bi.Samples[0].Label("version") == "" || bi.Samples[0].Label("go") == "" {
		t.Fatalf("build_info missing version/go labels: %+v", bi.Samples[0])
	}

	st := submit(t, ts.URL, map[string]any{"id": "pm1", "quick": true})
	waitFinal(t, ts.URL, st.ID)

	after := parse()
	for name, f := range before {
		if f.Type != "counter" {
			continue
		}
		af := after[name]
		if af == nil {
			t.Errorf("counter family %s vanished between scrapes", name)
			continue
		}
		for _, s := range f.Samples {
			for _, as := range af.Samples {
				if as.Name != s.Name || !labelsEqual(as.Labels, s.Labels) {
					continue
				}
				sv, _ := s.Float()
				av, _ := as.Float()
				if av < sv {
					t.Errorf("counter %s went backwards: %g -> %g", s.Name, sv, av)
				}
			}
		}
	}
	if f := after["prestored_jobs_finished_total"]; f == nil {
		t.Error("no prestored_jobs_finished_total after a job")
	}
}

func labelsEqual(a, b []obs.Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
