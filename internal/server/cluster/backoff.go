// Package cluster scales prestored horizontally: a coordinator fronts
// a fleet of worker daemons, routing each submitted job to a shard by
// consistent hashing of its content-address routing key (so the
// workers' content-addressed result caches compose into a distributed
// cache with stable key→shard placement), proxying status, stream and
// artifact requests to the owning shard, and requeuing jobs to the
// next ring position when a shard dies. Because every job's output is
// deterministic (the golden byte-identity guard), a requeued job
// re-produces the exact bytes the dead shard would have produced, and
// the coordinator resumes the client's stream at the byte offset it
// had already forwarded — the cluster boundary is invisible to
// clients, exactly as the single-daemon boundary is.
//
// Everything here is stdlib-only, like the rest of the daemon.
package cluster

import (
	"context"
	"math/rand"
	"time"
)

// Backoff is a capped exponential backoff schedule with jitter. The
// zero value is usable: 50 ms base, 5 s cap, factor 2, equal jitter.
// It is shared by the coordinator's shard client and by
// prestore-bench's remote client (429 retries, stream reconnects), so
// a fleet of clients facing a full queue spreads out instead of
// thundering in lockstep.
type Backoff struct {
	// Base is the delay before the first retry; <= 0 means 50 ms.
	Base time.Duration
	// Cap bounds the grown delay; <= 0 means 5 s.
	Cap time.Duration
	// Factor is the per-attempt growth; < 1 means 2.
	Factor float64
	// Jitter is the fraction of each delay that is randomized in
	// [0, Jitter); 0 means 0.5 ("equal jitter": half fixed, half
	// random). Set negative for a deterministic schedule.
	Jitter float64
	// Rand returns a float64 in [0, 1); nil means math/rand. Tests
	// inject a fixed source so schedules are asserted without sleeping.
	Rand func() float64
}

func (b Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 50 * time.Millisecond
	}
	return b.Base
}

func (b Backoff) cap() time.Duration {
	if b.Cap <= 0 {
		return 5 * time.Second
	}
	return b.Cap
}

func (b Backoff) factor() float64 {
	if b.Factor < 1 {
		return 2
	}
	return b.Factor
}

// Delay returns the pause before retry attempt (0-based): base·factor^attempt,
// capped, with the configured fraction of it re-drawn uniformly at
// random. The jittered delay never exceeds the cap and never falls
// below (1−jitter)·capped.
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	d := float64(b.base())
	capped := float64(b.cap())
	for i := 0; i < attempt; i++ {
		d *= b.factor()
		if d >= capped {
			d = capped
			break
		}
	}
	jitter := b.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	if jitter > 0 {
		r := b.Rand
		if r == nil {
			r = rand.Float64
		}
		if jitter > 1 {
			jitter = 1
		}
		d = d*(1-jitter) + d*jitter*r()
	}
	return time.Duration(d)
}

// Sleep pauses for Delay(attempt), or returns ctx's error first: the
// context is the total retry budget, so a deadline or cancellation
// ends a retry loop mid-pause instead of after it.
func (b Backoff) Sleep(ctx context.Context, attempt int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t := time.NewTimer(b.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
