package cluster

import (
	"context"
	"testing"
	"time"
)

// The schedule is asserted directly — no sleeping: Delay is pure once
// the random source is injected.
func TestBackoffScheduleGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second, // stays capped
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := b.Delay(-3); got != 100*time.Millisecond {
		t.Errorf("Delay(-3) = %v, want base", got)
	}
	if got := b.Delay(200); got != time.Second {
		t.Errorf("Delay(200) = %v, want cap (no overflow)", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// Injected extremes: rand=0 gives the floor, rand→1 the ceiling.
	lo := Backoff{Base: time.Second, Cap: time.Minute, Jitter: 0.5, Rand: func() float64 { return 0 }}
	hi := Backoff{Base: time.Second, Cap: time.Minute, Jitter: 0.5, Rand: func() float64 { return 0.999999 }}
	if got := lo.Delay(0); got != 500*time.Millisecond {
		t.Errorf("floor Delay(0) = %v, want 500ms", got)
	}
	if got := hi.Delay(0); got < 999*time.Millisecond || got > time.Second {
		t.Errorf("ceiling Delay(0) = %v, want just under 1s", got)
	}
	// Default jitter (field zero) behaves as equal jitter, not none.
	def := Backoff{Base: time.Second, Cap: time.Minute, Rand: func() float64 { return 0 }}
	if got := def.Delay(0); got != 500*time.Millisecond {
		t.Errorf("default-jitter floor Delay(0) = %v, want 500ms", got)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	b.Jitter = -1
	if got := b.Delay(0); got != 50*time.Millisecond {
		t.Errorf("zero-value base = %v, want 50ms", got)
	}
	if got := b.Delay(100); got != 5*time.Second {
		t.Errorf("zero-value cap = %v, want 5s", got)
	}
}

// Sleep honors the context as the total retry budget: an expired
// context returns immediately, without waiting out the delay.
func TestBackoffSleepHonorsContextBudget(t *testing.T) {
	b := Backoff{Base: time.Hour, Jitter: -1} // would sleep forever
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := b.Sleep(ctx, 0); err != context.Canceled {
		t.Fatalf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Sleep waited %v despite cancelled ctx", elapsed)
	}
}
